// Package jdvs is a from-scratch Go implementation of the real-time visual
// search system described in "The Design and Implementation of a Real Time
// Visual Search System on JD E-commerce Platform" (Li et al., MIDDLEWARE
// 2018).
//
// The system answers "find products that look like this photo" over a
// continuously changing e-commerce catalog. Its two halves mirror the
// paper's Fig. 1:
//
//   - Indexing: periodic full indexing rebuilds every partition from the
//     day's update log, while real-time indexing applies each product
//     addition, deletion and attribute change to the live index within
//     milliseconds — lock-free with respect to concurrent searches.
//   - Search: a three-level Blender → Broker → Searcher hierarchy fans a
//     query's CNN features out to every index partition, merges the
//     nearest images, and ranks the resulting products by sales, praise
//     and price. Inside each partition the probed inverted lists are
//     additionally striped across a pool of scan goroutines (§2.4
//     multi-thread searching) — Config.SearchWorkers sets the width,
//     defaulting to a GOMAXPROCS-derived value; 1 restores the serial
//     scan. With Config.PQSubvectors set, shards scan product-quantized
//     codes (internal/pq): candidates cost M table lookups instead of a
//     Dim×4-byte feature-row read, and the over-fetched top RerankK are
//     re-ranked exactly before the final top-k — several times the scan
//     throughput at recall@10 ≳ 0.97. Config.FeatureStore = "mmap" then
//     tiers the raw float rows (touched only for re-rank and training)
//     onto page-cache-served spill files, so a shard's RAM budget buys
//     M bytes per image instead of Dim×4 — several× more images per
//     searcher at the same RAM.
//
// Quick start (an in-process cluster over a synthetic catalog):
//
//	cl, err := jdvs.Start(jdvs.Config{Partitions: 4, SearchWorkers: 4})
//	if err != nil { ... }
//	defer cl.Close()
//
//	c, err := cl.Client()
//	if err != nil { ... }
//	defer c.Close()
//
//	photo := cl.Catalog.QueryImage(&cl.Catalog.Products[0])
//	resp, err := c.Query(ctx, jdvs.NewQuery(photo.Encode(), 6))
//
// Everything — the IVF index, the message queue, the feature store, the
// RPC fabric, the simulated CNN — is built on the standard library alone.
package jdvs

import (
	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/core"
	"jdvs/internal/imaging"
	"jdvs/internal/search/client"
)

// Config sizes a cluster: partitions, replicas, brokers, blenders, index
// shape and the synthetic catalog. See cluster.Config for field docs.
type Config = cluster.Config

// Cluster is a running topology (searchers, brokers, blenders, frontend,
// message queue, feature DB, image store).
type Cluster = cluster.Cluster

// Client issues queries against a cluster's frontend.
type Client = client.Client

// CatalogConfig configures the synthetic product corpus.
type CatalogConfig = catalog.Config

// Catalog is the generated corpus (categories, products, images).
type Catalog = catalog.Catalog

// Product is one synthetic product.
type Product = catalog.Product

// Image is a decoded synthetic product image.
type Image = imaging.Image

// QueryRequest is an image query: blob plus retrieval parameters.
type QueryRequest = core.QueryRequest

// SearchResponse is a ranked result set.
type SearchResponse = core.SearchResponse

// Hit is one ranked result.
type Hit = core.Hit

// AllCategories disables category scoping in a QueryRequest.
const AllCategories = core.AllCategories

// Start boots a cluster: generates the catalog, runs full indexing, and
// brings up every tier on loopback TCP. Callers must Close it.
func Start(cfg Config) (*Cluster, error) { return cluster.Start(cfg) }

// Dial connects a client to a frontend address with n pooled connections.
func Dial(addr string, n int) (*Client, error) { return client.Dial(addr, n) }

// NewQuery builds a query for the top k products similar to the encoded
// image, searching all categories.
func NewQuery(imageBlob []byte, k int) *QueryRequest {
	return &QueryRequest{ImageBlob: imageBlob, TopK: k, CategoryScope: AllCategories}
}

// NewScopedQuery builds a query that lets the blender detect the item,
// identify its category, and restrict the search to it (§2.4).
func NewScopedQuery(imageBlob []byte, k int) *QueryRequest {
	return &QueryRequest{ImageBlob: imageBlob, TopK: k, AutoCategory: true}
}
