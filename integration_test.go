package jdvs_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jdvs"
	"jdvs/internal/msg"
	"jdvs/internal/workload"
)

// TestCategoryScopedQueryEndToEnd drives the §2.4 pipeline: the blender
// detects the item, classifies it, and restricts the search to the
// predicted category.
func TestCategoryScopedQueryEndToEnd(t *testing.T) {
	cl := startCluster(t, jdvs.Config{
		Partitions: 3,
		NLists:     16,
		Catalog:    jdvs.CatalogConfig{Products: 400, Categories: 8, Seed: 61},
	})
	c, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	correctScope := 0
	const trials = 15
	for i := 0; i < trials; i++ {
		target := &cl.Catalog.Products[i*13%len(cl.Catalog.Products)]
		resp, err := c.Query(ctx, jdvs.NewScopedQuery(cl.Catalog.QueryImage(target).Encode(), 8))
		if err != nil {
			t.Fatalf("scoped query %d: %v", i, err)
		}
		if len(resp.Hits) == 0 {
			continue
		}
		allSame := true
		for _, h := range resp.Hits {
			if h.Category != resp.Hits[0].Category {
				allSame = false
			}
		}
		if !allSame {
			t.Fatalf("scoped query %d returned mixed categories: %+v", i, resp.Hits)
		}
		if resp.Hits[0].Category == target.Category {
			correctScope++
		}
	}
	// The classifier is a nearest-prototype simulation; demand a strong
	// majority, not perfection.
	if correctScope < trials*7/10 {
		t.Fatalf("classifier scoped correctly in %d/%d queries", correctScope, trials)
	}
}

// TestSearcherCrashDegradesGracefully kills one partition's only searcher
// mid-load: queries must keep succeeding with reduced coverage, and the
// dead partition's products disappear rather than erroring the query.
func TestSearcherCrashDegradesGracefully(t *testing.T) {
	cl := startCluster(t, jdvs.Config{
		Partitions: 3,
		NLists:     16,
		Catalog:    jdvs.CatalogConfig{Products: 300, Categories: 6, Seed: 67},
	})
	c, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	query := func() *jdvs.SearchResponse {
		t.Helper()
		blob := cl.Catalog.QueryImage(&cl.Catalog.Products[1]).Encode()
		resp, err := c.Query(ctx, jdvs.NewQuery(blob, 30))
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		return resp
	}
	before := query()
	if len(before.Hits) == 0 {
		t.Fatal("no hits before crash")
	}

	cl.Searcher(1, 0).Close() // partition 1 is gone
	for i := 0; i < 5; i++ {
		resp := query()
		for _, h := range resp.Hits {
			if h.Image.Partition == 1 {
				t.Fatalf("hit from crashed partition: %+v", h)
			}
		}
	}
}

// TestConcurrentQueriesAndUpdatesStress runs the full production workload
// shape at once: query clients + a Table 1 update stream + periodic full
// reindex, all against one cluster. Run with -race.
func TestConcurrentQueriesAndUpdatesStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	var applied atomic.Int64
	cl := startCluster(t, jdvs.Config{
		Partitions: 3,
		NLists:     16,
		Catalog:    jdvs.CatalogConfig{Products: 500, Categories: 8, Seed: 71},
		OnApplied: func(u *msg.ProductUpdate, kind string, reused bool, lat time.Duration) {
			applied.Add(1)
		},
	})
	c, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Query blobs are pre-generated before anything touches the catalog
	// concurrently: the mix generator owns the catalog (its rng, its
	// product slice) once the updater goroutine starts.
	blobs := make([][]byte, 32)
	{
		rng := rand.New(rand.NewSource(17))
		for i := range blobs {
			blobs[i] = cl.Catalog.QueryImage(&cl.Catalog.Products[rng.Intn(500)]).Encode()
		}
	}

	// Updates: the Table 1 mix, full speed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := workload.NewMix(workload.MixConfig{Seed: 3}, cl.Catalog, cl.Images)
		for i := 0; i < 3_000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u, _, _, err := gen.Next()
			if err != nil {
				t.Errorf("mix: %v", err)
				return
			}
			u.EventTimeNanos = time.Now().UnixNano()
			if err := cl.Publish(u); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	var queries atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Query(ctx, jdvs.NewQuery(blobs[rng.Intn(len(blobs))], 10)); err != nil {
					t.Errorf("query under stress: %v", err)
					return
				}
				queries.Add(1)
			}
		}(w)
	}

	// One full reindex in the middle of it all.
	time.Sleep(100 * time.Millisecond)
	if err := cl.Reindex(); err != nil {
		t.Fatalf("reindex under stress: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if queries.Load() == 0 || applied.Load() == 0 {
		t.Fatalf("stress exercised nothing: %d queries, %d updates", queries.Load(), applied.Load())
	}
}

// TestFreshProductSearchableAfterExtraction covers the fresh-add path end
// to end: a brand-new product (never in the catalog, never extracted) is
// published through the queue and must become searchable, this time with
// real CNN work.
func TestFreshProductSearchableAfterExtraction(t *testing.T) {
	cl := startCluster(t, jdvs.Config{
		Partitions: 2,
		NLists:     16,
		Catalog:    jdvs.CatalogConfig{Products: 200, Categories: 6, Seed: 73},
	})
	c, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	fresh, err := cl.Catalog.NewProduct(999_999)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Catalog.UploadImages(&fresh, cl.Images); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := cl.Features.Stats()
	if err := cl.Publish(cl.AddProductEvent(&fresh)); err != nil {
		t.Fatal(err)
	}
	if !cl.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}
	_, missesAfter := cl.Features.Stats()
	if got := missesAfter - missesBefore; got != int64(len(fresh.ImageURLs)) {
		t.Fatalf("fresh add extracted %d features, want %d", got, len(fresh.ImageURLs))
	}

	blob, err := cl.Images.Get(fresh.ImageURLs[0])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(ctx, jdvs.NewQuery(blob, 10))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range resp.Hits {
		if h.ProductID == fresh.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("fresh product not searchable after extraction")
	}
}

// TestHitsCarryCompleteAttributes checks every field the ranking and the
// UI depend on survives the three-tier trip.
func TestHitsCarryCompleteAttributes(t *testing.T) {
	cl := startCluster(t, jdvs.Config{
		Partitions: 2,
		NLists:     16,
		Catalog:    jdvs.CatalogConfig{Products: 150, Categories: 4, Seed: 79},
	})
	c, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	byID := map[uint64]*jdvs.Product{}
	for i := range cl.Catalog.Products {
		byID[cl.Catalog.Products[i].ID] = &cl.Catalog.Products[i]
	}
	blob := cl.Catalog.QueryImage(&cl.Catalog.Products[3]).Encode()
	resp, err := c.Query(ctx, jdvs.NewQuery(blob, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range resp.Hits {
		p, ok := byID[h.ProductID]
		if !ok {
			t.Fatalf("hit for unknown product %d", h.ProductID)
		}
		if h.Category != p.Category || h.Sales != p.Sales || h.PriceCents != p.PriceCents {
			t.Fatalf("hit attrs diverge from catalog: %+v vs %+v", h, p)
		}
		if h.URL == "" || h.Score == 0 {
			t.Fatalf("incomplete hit: %+v", h)
		}
		found := false
		for _, u := range p.ImageURLs {
			if u == h.URL {
				found = true
			}
		}
		if !found {
			t.Fatalf("hit URL %q not among product %d's images", h.URL, p.ID)
		}
	}
}
