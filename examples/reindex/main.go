// Command reindex runs the weekly full indexing cycle of §2.2 against live
// traffic — the message log is replayed, fresh partition shards are built,
// and each searcher hot-swaps to the new index with zero query downtime.
//
//	go run ./examples/reindex
//
// The demo mutates the catalog through the real-time path (so live index
// and log diverge from the bootstrap state), runs Reindex() while a query
// loop hammers the frontend, and verifies (a) no query ever failed, and
// (b) the post-swap index reflects the full log.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"jdvs"
)

func main() {
	log.SetFlags(0)
	cl, err := jdvs.Start(jdvs.Config{
		Partitions: 3,
		Catalog:    jdvs.CatalogConfig{Products: 1_500, Categories: 8, Seed: 3},
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	c, err := cl.Client()
	if err != nil {
		log.Fatalf("dial frontend: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Mutate: delist one product, reprice another — through the real-time
	// path, so the weekly rebuild must fold these in from the log.
	gone := &cl.Catalog.Products[10]
	repriced := &cl.Catalog.Products[20]
	if err := cl.Publish(cl.RemoveProductEvent(gone)); err != nil {
		log.Fatal(err)
	}
	if err := cl.Publish(cl.UpdateAttrsEvent(repriced, repriced.Sales, repriced.Praise, 999_99)); err != nil {
		log.Fatal(err)
	}
	if !cl.WaitForDrain(5 * time.Second) {
		log.Fatal("real-time indexing did not drain")
	}
	fmt.Println("live updates applied: product", gone.ID, "delisted, product", repriced.ID, "repriced")

	// Query loop during the rebuild.
	var queries, failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			probe := cl.Catalog.QueryImage(&cl.Catalog.Products[w*3]).Encode()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Query(ctx, jdvs.NewQuery(probe, 5)); err != nil {
					failures.Add(1)
				} else {
					queries.Add(1)
				}
			}
		}(w)
	}

	fmt.Println("running full reindex under live query load...")
	t0 := time.Now()
	if err := cl.Reindex(); err != nil {
		log.Fatalf("reindex: %v", err)
	}
	rebuildTime := time.Since(t0)
	time.Sleep(100 * time.Millisecond) // a little post-swap traffic
	close(stop)
	wg.Wait()

	fmt.Printf("reindex + hot swap done in %s — %d queries served during rebuild, %d failures\n",
		rebuildTime.Round(time.Millisecond), queries.Load(), failures.Load())
	if failures.Load() > 0 {
		log.Fatal("zero-downtime violated")
	}

	// Verify the fresh index reflects the log. Query each product with its
	// own stored photo — an exact visual match, so presence/absence depends
	// purely on index state.
	exactPhoto := func(p *jdvs.Product) []byte {
		blob, err := cl.Images.Get(p.ImageURLs[0])
		if err != nil {
			log.Fatalf("fetch photo: %v", err)
		}
		return blob
	}
	// k=30: business ranking can place visually close, high-sales siblings
	// above an exact match, so give the verification enough depth.
	resp, err := c.Query(ctx, jdvs.NewQuery(exactPhoto(gone), 30))
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range resp.Hits {
		if h.ProductID == gone.ID {
			log.Fatalf("delisted product %d resurrected by reindex", gone.ID)
		}
	}
	fmt.Printf("post-swap: delisted product %d stays out of results\n", gone.ID)

	resp, err = c.Query(ctx, jdvs.NewQuery(exactPhoto(repriced), 30))
	if err != nil {
		log.Fatal(err)
	}
	verified := false
	for _, h := range resp.Hits {
		if h.ProductID == repriced.ID {
			if h.PriceCents != 999_99 {
				log.Fatalf("reindex lost the price update: ¥%.2f", float64(h.PriceCents)/100)
			}
			verified = true
			fmt.Printf("post-swap: product %d carries its updated price ¥%.2f\n",
				repriced.ID, float64(h.PriceCents)/100)
		}
	}
	if !verified {
		log.Fatalf("repriced product %d missing from its own photo's results", repriced.ID)
	}
	fmt.Println("\nweekly full indexing completed with zero downtime and full log fidelity.")
}
