// Command fashion runs the Figure 14 demo — three "camera photos", top-6 similar
// products each, with the §2.4 query pipeline in full: detect the item,
// identify its category, scope the search to it, rank by sales / praise /
// price.
//
//	go run ./examples/fashion
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"jdvs"
)

func main() {
	log.SetFlags(0)
	cl, err := jdvs.Start(jdvs.Config{
		Partitions: 4,
		Brokers:    2,
		Blenders:   2,
		Catalog: jdvs.CatalogConfig{
			Products:   3_000,
			Categories: 10, // dresses, sneakers, handbags, watches, ...
			Seed:       14,
		},
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	c, err := cl.Client()
	if err != nil {
		log.Fatalf("dial frontend: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fmt.Println("Figure 14 — real search examples: top 6 similar products per query")

	// Three queries from three different categories, like the paper's
	// dress / shoe / bag examples.
	queries := []int{101, 777, 2048}
	for qi, pi := range queries {
		target := &cl.Catalog.Products[pi]
		photo := cl.Catalog.QueryImage(target)
		det := fmt.Sprintf("window (%d,%d) %dx%d", photo.ObjX, photo.ObjY, photo.ObjW, photo.ObjH)

		// AutoCategory: the blender detects the item, classifies it, and
		// scopes the search (§2.4).
		resp, err := c.Query(ctx, jdvs.NewScopedQuery(photo.Encode(), 6))
		if err != nil {
			log.Fatalf("query %d: %v", qi+1, err)
		}

		fmt.Printf("\n%s\n", strings.Repeat("=", 72))
		fmt.Printf("query %d: photo of a %s (product %d) — detected item %s\n",
			qi+1, cl.Catalog.CategoryName(target.Category), target.ID, det)
		fmt.Printf("%s\n", strings.Repeat("-", 72))
		if len(resp.Hits) == 0 {
			fmt.Println("  no results")
			continue
		}
		for i, h := range resp.Hits {
			self := ""
			if h.ProductID == target.ID {
				self = "  ← the photographed product"
			}
			fmt.Printf("  #%d  %-12s  product %-6d  ¥%-9.2f  %6d sold  %3d%% praise%s\n",
				i+1, cl.Catalog.CategoryName(h.Category), h.ProductID,
				float64(h.PriceCents)/100, h.Sales, h.Praise, self)
			fmt.Printf("      similarity %.4f   score %.4f   %s\n", 1/(1+h.Dist*h.Dist), h.Score, h.URL)
		}
	}
	fmt.Printf("\n%s\n", strings.Repeat("=", 72))
	fmt.Println("every result sits in the query's detected category — the classifier")
	fmt.Println("scoped the scan exactly as the production pipeline does.")
}
