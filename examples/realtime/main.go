// Command realtime shows the paper's core claim, live — product updates become visible
// to search in sub-second time (§2.3, Fig. 4), including the
// remove-then-relist cycle that reuses previously extracted features.
//
//	go run ./examples/realtime
//
// The demo delists a product, proves it vanished from search results,
// relists it (with zero new CNN work), proves it came back, and then
// updates its price and watches the new price surface in results — timing
// every propagation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jdvs"
)

func main() {
	log.SetFlags(0)
	cl, err := jdvs.Start(jdvs.Config{
		Partitions: 3,
		Catalog:    jdvs.CatalogConfig{Products: 1_000, Categories: 8, Seed: 2},
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	c, err := cl.Client()
	if err != nil {
		log.Fatalf("dial frontend: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	target := &cl.Catalog.Products[7]
	// Query with the product's own stored photo: an exact visual match, so
	// the product's presence in results depends purely on index validity —
	// exactly what this demo tracks.
	photo, err := cl.Images.Get(target.ImageURLs[0])
	if err != nil {
		log.Fatalf("fetch product photo: %v", err)
	}
	fmt.Printf("target: product %d (%s)\n\n", target.ID, cl.Catalog.CategoryName(target.Category))

	inResults := func() (bool, uint32) {
		resp, err := c.Query(ctx, jdvs.NewQuery(photo, 20))
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		for _, h := range resp.Hits {
			if h.ProductID == target.ID {
				return true, h.PriceCents
			}
		}
		return false, 0
	}

	// propagate publishes an event and polls search until the predicate
	// flips, returning the end-to-end freshness latency.
	propagate := func(action string, publish func() error, want func() bool) time.Duration {
		t0 := time.Now()
		if err := publish(); err != nil {
			log.Fatalf("%s: %v", action, err)
		}
		for !want() {
			if time.Since(t0) > 5*time.Second {
				log.Fatalf("%s: not visible after 5s — freshness broken", action)
			}
			time.Sleep(500 * time.Microsecond)
		}
		return time.Since(t0)
	}

	if ok, _ := inResults(); !ok {
		log.Fatal("sanity: target not found before any updates")
	}
	fmt.Println("baseline: product is searchable")

	// Feature-DB misses are the true count of product-image CNN
	// extractions (the query pipeline's own extractions don't touch it).
	_, missesBefore := cl.Features.Stats()

	d := propagate("delist",
		func() error { return cl.Publish(cl.RemoveProductEvent(target)) },
		func() bool { ok, _ := inResults(); return !ok })
	fmt.Printf("delisted  → invisible to search in %12s\n", d)

	d = propagate("relist",
		func() error { return cl.Publish(cl.AddProductEvent(target)) },
		func() bool { ok, _ := inResults(); return ok })
	_, missesAfter := cl.Features.Stats()
	fmt.Printf("relisted  → searchable again in  %12s  (product-image CNN extractions during cycle: %d — features reused)\n",
		d, missesAfter-missesBefore)

	d = propagate("price update",
		func() error { return cl.Publish(cl.UpdateAttrsEvent(target, target.Sales, target.Praise, 123_45)) },
		func() bool { _, price := inResults(); return price == 123_45 })
	fmt.Printf("repriced  → new price visible in %12s\n", d)

	fmt.Println("\nall three update kinds propagated to live search results sub-second,")
	fmt.Println("with searches running lock-free against the same index throughout.")
}
