// Command quickstart boots a complete in-process visual search cluster over a
// synthetic catalog, photographs a product, and asks "what looks like this?"
//
//	go run ./examples/quickstart
//
// Everything real is here — the Blender → Broker → Searcher hierarchy over
// TCP, the IVF index, the message queue, the feature pipeline — just scaled
// to a laptop.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jdvs"
)

func main() {
	log.SetFlags(0)

	start := time.Now()
	cl, err := jdvs.Start(jdvs.Config{
		Partitions: 4, // searcher partitions (paper testbed: 20)
		Brokers:    2,
		Blenders:   2,
		Catalog: jdvs.CatalogConfig{
			Products:   2_000,
			Categories: 12,
			Seed:       1,
		},
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	fmt.Printf("cluster up in %s: %d partitions, frontend at %s\n",
		time.Since(start).Round(time.Millisecond), cl.Partitions(), cl.FrontendAddr())

	c, err := cl.Client()
	if err != nil {
		log.Fatalf("dial frontend: %v", err)
	}
	defer c.Close()

	// Take a fresh "camera photo" of a product the index has never seen
	// this exact picture of, and search.
	target := &cl.Catalog.Products[42]
	photo := cl.Catalog.QueryImage(target)
	fmt.Printf("\nquerying with a new photo of product %d (%s, ¥%.2f)\n\n",
		target.ID, cl.Catalog.CategoryName(target.Category), float64(target.PriceCents)/100)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	t0 := time.Now()
	resp, err := c.Query(ctx, jdvs.NewQuery(photo.Encode(), 6))
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("top %d similar products in %s (%d candidates scanned across %d inverted lists):\n\n",
		len(resp.Hits), time.Since(t0).Round(time.Microsecond), resp.Scanned, resp.Probed)
	fmt.Printf("%4s  %9s  %-12s  %8s  %8s  %7s  %8s\n",
		"rank", "product", "category", "dist", "score", "sales", "price")
	for i, h := range resp.Hits {
		marker := " "
		if h.ProductID == target.ID {
			marker = "*" // the product we photographed
		}
		fmt.Printf("%3d%s  %9d  %-12s  %8.4f  %8.4f  %7d  ¥%7.2f\n",
			i+1, marker, h.ProductID, cl.Catalog.CategoryName(h.Category),
			h.Dist, h.Score, h.Sales, float64(h.PriceCents)/100)
	}
	fmt.Println("\n(*) the photographed product — visual search found it among",
		len(cl.Catalog.Products), "products")
}
