package msg

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleUpdate() *ProductUpdate {
	return &ProductUpdate{
		Type:           TypeAddProduct,
		ProductID:      987654321,
		Category:       12,
		Sales:          44444,
		Praise:         97,
		PriceCents:     129900,
		ImageURLs:      []string{"jfs://img/p1/0.jpg", "jfs://img/p1/1.jpg"},
		EventTimeNanos: 1533340800 * 1e9,
		Seq:            42,
	}
}

func equalUpdates(a, b *ProductUpdate) bool {
	if a.Type != b.Type || a.ProductID != b.ProductID || a.Category != b.Category ||
		a.Sales != b.Sales || a.Praise != b.Praise || a.PriceCents != b.PriceCents ||
		a.EventTimeNanos != b.EventTimeNanos || a.Seq != b.Seq ||
		len(a.ImageURLs) != len(b.ImageURLs) {
		return false
	}
	for i := range a.ImageURLs {
		if a.ImageURLs[i] != b.ImageURLs[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, typ := range []Type{TypeAddProduct, TypeRemoveProduct, TypeUpdateAttrs} {
		u := sampleUpdate()
		u.Type = typ
		got, err := Decode(u.Encode())
		if err != nil {
			t.Fatalf("%v: decode: %v", typ, err)
		}
		if !equalUpdates(u, got) {
			t.Fatalf("%v roundtrip mismatch:\nin:  %+v\nout: %+v", typ, u, got)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := sampleUpdate().Encode()
	tests := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short", valid[:10]},
		{"bad version", append([]byte{99}, valid[1:]...)},
		{"bad type", func() []byte {
			d := append([]byte(nil), valid...)
			d[1] = 0
			return d
		}()},
		{"truncated urls", valid[:len(valid)-3]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.b); err == nil {
				t.Error("corrupt frame accepted")
			}
		})
	}
}

func TestNoURLs(t *testing.T) {
	u := sampleUpdate()
	u.ImageURLs = nil
	got, err := Decode(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ImageURLs) != 0 {
		t.Fatalf("urls = %v, want none", got.ImageURLs)
	}
}

func TestLongURL(t *testing.T) {
	u := sampleUpdate()
	u.ImageURLs = []string{strings.Repeat("u", 60000)}
	got, err := Decode(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ImageURLs[0] != u.ImageURLs[0] {
		t.Fatal("long URL corrupted")
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{TypeAddProduct, "add-product"},
		{TypeRemoveProduct, "remove-product"},
		{TypeUpdateAttrs, "update-attrs"},
		{Type(0), "msg.Type(0)"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

// Property: encode∘decode is the identity for arbitrary field values.
func TestRoundtripProperty(t *testing.T) {
	f := func(pid uint64, cat uint16, sales, praise, price uint32, ts int64, seq uint64, urls []string, typSel uint8) bool {
		for i, u := range urls {
			if len(u) > 1000 {
				urls[i] = u[:1000]
			}
		}
		if len(urls) > 100 {
			urls = urls[:100]
		}
		u := &ProductUpdate{
			Type:           Type(typSel%3) + 1,
			ProductID:      pid,
			Category:       cat,
			Sales:          sales,
			Praise:         praise,
			PriceCents:     price,
			ImageURLs:      urls,
			EventTimeNanos: ts,
			Seq:            seq,
		}
		got, err := Decode(u.Encode())
		if err != nil {
			return false
		}
		return equalUpdates(u, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics (returns error or a
// valid event).
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
