// Package msg defines the product/image update events that flow through the
// message queue into both indexing paths (Figs. 2 and 4): product addition,
// product removal, and numeric attribute modification.
//
// Events use a compact versioned binary encoding; a day's worth of events
// (about one billion in production, §1) is buffered in the message log and
// replayed by the weekly full indexing, so the codec is designed for
// sequential streaming.
package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type enumerates update event kinds (Fig. 6). Values start at 1 so the
// zero value is invalid and corrupt frames are caught.
type Type uint8

const (
	// TypeAddProduct lists a product (possibly one previously removed from
	// the market, in which case its images' features are reused, §2.3).
	TypeAddProduct Type = iota + 1
	// TypeRemoveProduct takes a product off the market: every image's
	// validity bit flips to 0 (§2.3 "Deletion").
	TypeRemoveProduct
	// TypeUpdateAttrs modifies a product's numeric attributes in place
	// (§2.3 "Update").
	TypeUpdateAttrs
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeAddProduct:
		return "add-product"
	case TypeRemoveProduct:
		return "remove-product"
	case TypeUpdateAttrs:
		return "update-attrs"
	default:
		return fmt.Sprintf("msg.Type(%d)", uint8(t))
	}
}

// ProductUpdate is one update event about a product and its images.
type ProductUpdate struct {
	Type      Type
	ProductID uint64
	Category  uint16
	Sales     uint32
	Praise    uint32
	// PriceCents is the product price in integer cents, following the
	// guides' advice to avoid floats for money.
	PriceCents uint32
	// ImageURLs lists the product's images. Present for additions; empty
	// for attribute updates and removals (the index resolves the product's
	// images itself).
	ImageURLs []string
	// EventTimeNanos is the event's origin timestamp (Unix nanoseconds),
	// used to measure real-time indexing latency end to end.
	EventTimeNanos int64
	// Seq is the event's sequence number within its day, assigned by the
	// producer; full indexing replays events in Seq order.
	Seq uint64
}

const codecVersion = 1

// ErrCodec is wrapped by all decode failures.
var ErrCodec = errors.New("msg: codec error")

// maxURLs bounds decoded image lists as a corruption guard.
const maxURLs = 1 << 16

// Encode serialises the event.
func (u *ProductUpdate) Encode() []byte {
	size := 1 + 1 + 8 + 2 + 4 + 4 + 4 + 8 + 8 + 2
	for _, s := range u.ImageURLs {
		size += 2 + len(s)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, codecVersion, byte(u.Type))
	dst = binary.LittleEndian.AppendUint64(dst, u.ProductID)
	dst = binary.LittleEndian.AppendUint16(dst, u.Category)
	dst = binary.LittleEndian.AppendUint32(dst, u.Sales)
	dst = binary.LittleEndian.AppendUint32(dst, u.Praise)
	dst = binary.LittleEndian.AppendUint32(dst, u.PriceCents)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(u.EventTimeNanos))
	dst = binary.LittleEndian.AppendUint64(dst, u.Seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(u.ImageURLs)))
	for _, s := range u.ImageURLs {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// Decode deserialises an event produced by Encode.
func Decode(b []byte) (*ProductUpdate, error) {
	if len(b) < 42 {
		return nil, fmt.Errorf("%w: frame too short (%d bytes)", ErrCodec, len(b))
	}
	if b[0] != codecVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCodec, b[0])
	}
	u := &ProductUpdate{Type: Type(b[1])}
	switch u.Type {
	case TypeAddProduct, TypeRemoveProduct, TypeUpdateAttrs:
	default:
		return nil, fmt.Errorf("%w: unknown event type %d", ErrCodec, b[1])
	}
	u.ProductID = binary.LittleEndian.Uint64(b[2:10])
	u.Category = binary.LittleEndian.Uint16(b[10:12])
	u.Sales = binary.LittleEndian.Uint32(b[12:16])
	u.Praise = binary.LittleEndian.Uint32(b[16:20])
	u.PriceCents = binary.LittleEndian.Uint32(b[20:24])
	u.EventTimeNanos = int64(binary.LittleEndian.Uint64(b[24:32]))
	u.Seq = binary.LittleEndian.Uint64(b[32:40])
	n := int(binary.LittleEndian.Uint16(b[40:42]))
	if n > maxURLs {
		return nil, fmt.Errorf("%w: %d urls", ErrCodec, n)
	}
	b = b[42:]
	if n > 0 {
		u.ImageURLs = make([]string, 0, n)
		for i := 0; i < n; i++ {
			if len(b) < 2 {
				return nil, fmt.Errorf("%w: short url header", ErrCodec)
			}
			l := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			if len(b) < l {
				return nil, fmt.Errorf("%w: short url body", ErrCodec)
			}
			u.ImageURLs = append(u.ImageURLs, string(b[:l]))
			b = b[l:]
		}
	}
	return u, nil
}
