// Package cache provides a sharded, byte-accounted LRU used to front the
// expensive stages of the serving path: the blender's feature cache (content
// hash → CNN feature vector) and the broker's result cache (request digest →
// encoded result page). Keys are strings — typically a binary digest — and the
// key space is split across power-of-two shards by FNV-1a hash so concurrent
// lookups from many query workers do not serialise on one mutex. Capacity is
// bounded by entry count per cache (split evenly across shards); the Bytes
// counter tracks the payload footprint for operational visibility rather than
// enforcement, matching how the paper's serving tier reports cache memory.
package cache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// numShards is the fixed shard count. 16 keeps per-shard contention low at
// the concurrency levels the closed-loop workloads drive (tens of workers)
// without fragmenting small caches into uselessly tiny LRU lists.
const numShards = 16

// entry is one cached value with its accounting cost.
type entry[V any] struct {
	key   string
	value V
	bytes int64
}

// shard is one independently locked LRU segment.
type shard[V any] struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	cap   int
}

// Cache is a sharded LRU keyed by string. The zero value is not usable; use
// New. A nil *Cache is a valid no-op cache: Get always misses and Put is
// dropped, so callers can leave caching disabled without branching.
type Cache[V any] struct {
	shards    [numShards]shard[V]
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	removals  atomic.Int64
	bytes     atomic.Int64
	entries   atomic.Int64
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"` // capacity evictions (LRU pressure)
	Removals  int64 `json:"removals"`  // explicit Remove calls (e.g. staleness)
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// New builds a cache holding at most capacity entries across all shards.
// capacity <= 0 returns nil — the no-op cache — so a zero-valued size knob
// disables caching end to end.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	c := &Cache[V]{}
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].cap = per
	}
	return c
}

// shardFor picks the shard for key by FNV-1a.
func (c *Cache[V]) shardFor(key string) *shard[V] {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&(numShards-1)]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry[V]).value
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return zero, false
}

// Put inserts or refreshes key with the given payload cost in bytes,
// evicting from the tail of the shard's LRU list if the shard is full.
func (c *Cache[V]) Put(key string, value V, bytes int64) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry[V])
		c.bytes.Add(bytes - e.bytes)
		e.value, e.bytes = value, bytes
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	var evicted *entry[V]
	if s.ll.Len() >= s.cap {
		if back := s.ll.Back(); back != nil {
			evicted = back.Value.(*entry[V])
			delete(s.items, evicted.key)
			s.ll.Remove(back)
		}
	}
	s.items[key] = s.ll.PushFront(&entry[V]{key: key, value: value, bytes: bytes})
	s.mu.Unlock()
	if evicted != nil {
		c.evictions.Add(1)
		c.bytes.Add(-evicted.bytes)
		c.entries.Add(-1)
	}
	c.bytes.Add(bytes)
	c.entries.Add(1)
}

// Remove drops key if present, reporting whether it was. Explicit removals
// (staleness invalidation) are counted separately from capacity evictions.
func (c *Cache[V]) Remove(key string) bool {
	if c == nil {
		return false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var freed int64
	if ok {
		e := el.Value.(*entry[V])
		freed = e.bytes
		delete(s.items, key)
		s.ll.Remove(el)
	}
	s.mu.Unlock()
	if ok {
		c.removals.Add(1)
		c.bytes.Add(-freed)
		c.entries.Add(-1)
	}
	return ok
}

// Len reports the live entry count.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	return int(c.entries.Load())
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Removals:  c.removals.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
	}
}
