package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, 10)
	c.Put("b", 2, 20)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 2 || st.Bytes != 30 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 2 entries, 30 bytes", st)
	}
}

func TestPutRefresh(t *testing.T) {
	c := New[int](64)
	c.Put("a", 1, 10)
	c.Put("a", 2, 25)
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("refreshed value = %d; want 2", v)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 25 {
		t.Fatalf("stats = %+v; want 1 entry, 25 bytes", st)
	}
}

// TestEviction fills one shard past capacity and checks LRU order: the
// least-recently-used key goes first and its bytes are released.
func TestEviction(t *testing.T) {
	c := New[int](numShards) // one slot per shard
	s := c.shardFor("x")
	// Find two keys landing in the same shard as "x".
	var same []string
	for i := 0; len(same) < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == s {
			same = append(same, k)
		}
	}
	c.Put(same[0], 1, 100)
	c.Put(same[1], 2, 50) // evicts same[0]
	if _, ok := c.Get(same[0]); ok {
		t.Fatalf("evicted key %q still present", same[0])
	}
	if v, ok := c.Get(same[1]); !ok || v != 2 {
		t.Fatalf("surviving key %q = %v, %v; want 2, true", same[1], v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 50 {
		t.Fatalf("stats = %+v; want 1 eviction, 50 bytes", st)
	}
}

func TestRemove(t *testing.T) {
	c := New[string](8)
	c.Put("a", "x", 7)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false; want true")
	}
	if c.Remove("a") {
		t.Fatal("second Remove(a) = true; want false")
	}
	st := c.Stats()
	if st.Removals != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v; want 1 removal, 0 entries, 0 bytes", st)
	}
}

// TestNilCache checks the disabled-cache contract: every method is a safe
// no-op on nil, so callers thread a zero size knob straight through.
func TestNilCache(t *testing.T) {
	var c *Cache[int] = New[int](0)
	if c != nil {
		t.Fatal("New(0) should return nil")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put("a", 1, 1)
	if c.Remove("a") {
		t.Fatal("nil cache removal")
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache has state")
	}
}

// TestConcurrent hammers all operations from many goroutines; correctness
// here is "no race, no panic, accounting lands at zero after removal".
func TestConcurrent(t *testing.T) {
	c := New[int](256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("k%d", (w*1000+i)%128)
				c.Put(k, i, int64(i%97))
				c.Get(k)
				if i%17 == 0 {
					c.Remove(k)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("negative accounting: %+v", st)
	}
	for i := 0; i < 128; i++ {
		c.Remove(fmt.Sprintf("k%d", i))
	}
	st = c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after draining: %+v; want 0 entries, 0 bytes", st)
	}
}
