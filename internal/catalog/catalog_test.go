package catalog

import (
	"strings"
	"testing"

	"jdvs/internal/imagestore"
	"jdvs/internal/imaging"
	"jdvs/internal/vecmath"
)

func TestGenerateBasics(t *testing.T) {
	store := imagestore.New()
	cat, err := Generate(Config{Products: 50, Categories: 5, Seed: 1}, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Categories) != 5 {
		t.Fatalf("categories = %d", len(cat.Categories))
	}
	if len(cat.Products) != 50 {
		t.Fatalf("products = %d", len(cat.Products))
	}
	totalImages := 0
	seenIDs := make(map[uint64]bool)
	for i := range cat.Products {
		p := &cat.Products[i]
		if seenIDs[p.ID] {
			t.Fatalf("duplicate product ID %d", p.ID)
		}
		seenIDs[p.ID] = true
		if int(p.Category) >= len(cat.Categories) {
			t.Fatalf("product %d category %d out of range", p.ID, p.Category)
		}
		if len(p.ImageURLs) == 0 {
			t.Fatalf("product %d has no images", p.ID)
		}
		totalImages += len(p.ImageURLs)
		for _, url := range p.ImageURLs {
			if !store.Has(url) {
				t.Fatalf("image %s not uploaded", url)
			}
			if !strings.HasPrefix(url, "jfs://") {
				t.Fatalf("unexpected URL scheme: %s", url)
			}
		}
	}
	if store.Len() != totalImages {
		t.Fatalf("store has %d blobs, want %d", store.Len(), totalImages)
	}
}

func TestGenerateWithoutStore(t *testing.T) {
	cat, err := Generate(Config{Products: 10, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Products) != 10 {
		t.Fatalf("products = %d", len(cat.Products))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Generate(Config{Products: 20, Categories: 4, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Products: 20, Categories: 4, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Products {
		pa, pb := a.Products[i], b.Products[i]
		if pa.ID != pb.ID || pa.Category != pb.Category || pa.Sales != pb.Sales {
			t.Fatalf("product %d differs across same-seed runs", i)
		}
		for d := range pa.Latent {
			if pa.Latent[d] != pb.Latent[d] {
				t.Fatalf("product %d latent differs", i)
			}
		}
	}
}

// TestCategoryStructure: products are closer to their own category
// prototype than to other categories' prototypes, on average.
func TestCategoryStructure(t *testing.T) {
	cat, err := Generate(Config{Products: 200, Categories: 6, Seed: 3, CategorySpread: 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range cat.Products {
		p := &cat.Products[i]
		best, bestD := -1, float32(0)
		for c := range cat.Categories {
			d := vecmath.L2Squared(p.Latent, cat.Categories[c].Prototype)
			if best == -1 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == int(p.Category) {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(cat.Products)); frac < 0.9 {
		t.Fatalf("category purity %.2f, want >= 0.9", frac)
	}
}

func TestImagesShareProductLatent(t *testing.T) {
	store := imagestore.New()
	cat, err := Generate(Config{Products: 10, Seed: 4, ImageNoise: 0.05}, store)
	if err != nil {
		t.Fatal(err)
	}
	p := &cat.Products[0]
	for _, url := range p.ImageURLs {
		blob, err := store.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		im, err := imaging.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if d := vecmath.L2Squared(im.Latent[:], p.Latent); d > 1.0 {
			t.Fatalf("image %s latent too far from product: %v", url, d)
		}
		if im.Category != p.Category {
			t.Fatalf("image category %d, product %d", im.Category, p.Category)
		}
	}
}

func TestQueryImageNearProduct(t *testing.T) {
	cat, err := Generate(Config{Products: 5, Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &cat.Products[2]
	q := cat.QueryImage(p)
	if d := vecmath.L2Squared(q.Latent[:], p.Latent); d > 2.0 {
		t.Fatalf("query image too far from product: %v", d)
	}
}

func TestNewProductMintsDistinct(t *testing.T) {
	cat, err := Generate(Config{Products: 5, Seed: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cat.NewProduct(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != 10_000 {
		t.Fatalf("ID = %d", p.ID)
	}
	if len(p.ImageURLs) == 0 {
		t.Fatal("new product has no images")
	}
}

func TestImageURLScheme(t *testing.T) {
	u := ImageURL(77, 2)
	if u != "jfs://img.jd.local/p77/img2.jpg" {
		t.Fatalf("ImageURL = %q", u)
	}
}

func TestCategoryName(t *testing.T) {
	cat, err := Generate(Config{Products: 1, Categories: 3, Seed: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cat.CategoryName(0) == "" {
		t.Fatal("empty category name")
	}
	if got := cat.CategoryName(250); got != "category-250" {
		t.Fatalf("out-of-range name = %q", got)
	}
}

func TestTrainingLatents(t *testing.T) {
	cat, err := Generate(Config{Products: 5, Categories: 4, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples := cat.TrainingLatents(32)
	if len(samples) != 32 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if len(s) != imaging.LatentDim {
			t.Fatalf("sample dim = %d", len(s))
		}
	}
}

func TestAttrsForURL(t *testing.T) {
	cat, err := Generate(Config{Products: 3, Seed: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &cat.Products[0]
	a := p.Attrs(p.ImageURLs[0])
	if a.ProductID != p.ID || a.URL != p.ImageURLs[0] || a.Category != p.Category {
		t.Fatalf("Attrs = %+v", a)
	}
}
