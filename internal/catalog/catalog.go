// Package catalog is the synthetic product-catalog substrate: the source of
// products, images and attribute distributions that stand in for JD's
// 100-billion-image corpus.
//
// Structure mirrors what makes e-commerce visual search data interesting:
// products belong to categories; a category has a feature-space "look";
// products within a category are similar but distinct; a product's several
// photos are near-duplicates of each other. Sales follow a Zipf-like
// distribution and prices are category-scaled, so business ranking (§2.4)
// has realistic signal.
//
// All generation is deterministic for a given seed.
package catalog

import (
	"fmt"
	"math/rand"
	"sync"

	"jdvs/internal/core"
	"jdvs/internal/imagestore"
	"jdvs/internal/imaging"
)

// CategoryNames are the stock category labels (cycled if more categories
// are requested). They are cosmetic; search logic only sees numeric IDs.
var CategoryNames = []string{
	"dresses", "sneakers", "handbags", "watches", "phones",
	"laptops", "headphones", "jackets", "sunglasses", "toys",
	"cookware", "furniture", "cosmetics", "snacks", "cameras",
	"bicycles", "luggage", "jewelry", "appliances", "books",
}

// Config controls catalog generation.
type Config struct {
	// Categories is the number of product categories (default 12).
	Categories int
	// Products is the number of products (default 1000).
	Products int
	// ImagesPerProduct is the range of photos per product (default 1..3).
	MinImages, MaxImages int
	// Seed drives all randomness.
	Seed int64
	// CategorySpread scales how far product latents deviate from their
	// category prototype (default 0.30).
	CategorySpread float64
	// ImageNoise scales how much a product's photos deviate from the
	// product latent (default 0.05).
	ImageNoise float64
	// PayloadBytes sizes each synthetic image blob (default 2048).
	PayloadBytes int
}

func (c *Config) fill() {
	if c.Categories <= 0 {
		c.Categories = 12
	}
	if c.Products <= 0 {
		c.Products = 1000
	}
	if c.MinImages <= 0 {
		c.MinImages = 1
	}
	if c.MaxImages < c.MinImages {
		c.MaxImages = c.MinImages + 2
	}
	if c.CategorySpread <= 0 {
		c.CategorySpread = 0.30
	}
	if c.ImageNoise <= 0 {
		c.ImageNoise = 0.05
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 2048
	}
}

// Category is one product category with its latent-space prototype.
type Category struct {
	ID        uint16
	Name      string
	Prototype []float32 // LatentDim components
}

// Product is one synthetic product.
type Product struct {
	ID         uint64
	Category   uint16
	Latent     []float32
	Sales      uint32
	Praise     uint32
	PriceCents uint32
	ImageURLs  []string
}

// Attrs returns the product's attribute record for one of its images.
func (p *Product) Attrs(url string) core.Attrs {
	return core.Attrs{
		ProductID:  p.ID,
		Sales:      p.Sales,
		Praise:     p.Praise,
		PriceCents: p.PriceCents,
		Category:   p.Category,
		URL:        url,
	}
}

// Catalog is a generated corpus.
//
// Concurrency: the rng-backed generation methods (NewProduct,
// UploadImages, QueryImage, TrainingLatents) serialise internally, so
// distinct goroutines may generate concurrently. The Products slice itself
// is NOT synchronised — a goroutine growing the catalog (a workload
// generator minting fresh products) must be the only one touching
// Products for the duration; query sides should pre-generate their probe
// images first (workload.MakeQueryBlobs).
type Catalog struct {
	Categories []Category
	Products   []Product
	cfg        Config

	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

// Generate builds a catalog and uploads every product image into store
// (pass nil to skip blob generation, e.g. for pure index benchmarks).
func Generate(cfg Config, store *imagestore.Store) (*Catalog, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Catalog{cfg: cfg, rng: rng}

	c.Categories = make([]Category, cfg.Categories)
	for i := range c.Categories {
		proto := make([]float32, imaging.LatentDim)
		for d := range proto {
			proto[d] = float32(rng.NormFloat64())
		}
		c.Categories[i] = Category{
			ID:        uint16(i),
			Name:      CategoryNames[i%len(CategoryNames)],
			Prototype: proto,
		}
	}

	c.Products = make([]Product, 0, cfg.Products)
	for i := 0; i < cfg.Products; i++ {
		p, err := c.newProduct(uint64(i + 1))
		if err != nil {
			return nil, err
		}
		if store != nil {
			if err := c.UploadImages(&p, store); err != nil {
				return nil, err
			}
		}
		c.Products = append(c.Products, p)
	}
	return c, nil
}

// newProduct draws a product from a random category.
func (c *Catalog) newProduct(id uint64) (Product, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cat := &c.Categories[c.rng.Intn(len(c.Categories))]
	latent := make([]float32, imaging.LatentDim)
	for d := range latent {
		latent[d] = cat.Prototype[d] + float32(c.rng.NormFloat64()*c.cfg.CategorySpread)
	}
	// Zipf-ish sales: a few blockbusters, a long tail.
	sales := uint32(c.rng.Intn(100))
	if c.rng.Float64() < 0.05 {
		sales = uint32(10_000 + c.rng.Intn(990_000))
	} else if c.rng.Float64() < 0.3 {
		sales = uint32(100 + c.rng.Intn(9_900))
	}
	p := Product{
		ID:         id,
		Category:   cat.ID,
		Latent:     latent,
		Sales:      sales,
		Praise:     uint32(c.rng.Intn(101)), // praise rate 0..100
		PriceCents: uint32((1 + c.rng.Intn(500)) * 100 * (1 + int(cat.ID)%5)),
	}
	n := c.cfg.MinImages + c.rng.Intn(c.cfg.MaxImages-c.cfg.MinImages+1)
	p.ImageURLs = make([]string, n)
	for j := 0; j < n; j++ {
		p.ImageURLs[j] = ImageURL(id, j)
	}
	return p, nil
}

// NewProduct mints a fresh product with a new unique ID — used by workload
// generators to create never-seen-before products mid-run.
func (c *Catalog) NewProduct(id uint64) (Product, error) {
	return c.newProduct(id)
}

// UploadImages generates and stores the blobs for every image of p.
func (c *Catalog) UploadImages(p *Product, store *imagestore.Store) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, url := range p.ImageURLs {
		im := imaging.Generate(c.rng, p.Latent, p.Category, imaging.GenConfig{
			PayloadBytes: c.cfg.PayloadBytes,
			Noise:        c.cfg.ImageNoise,
		})
		if err := store.Put(url, im.Encode()); err != nil {
			return fmt.Errorf("catalog: upload %s: %w", url, err)
		}
	}
	return nil
}

// QueryImage generates a fresh, never-indexed photo of product p — the
// "user points their camera at the product" query of §2.4 and Fig. 14.
func (c *Catalog) QueryImage(p *Product) *imaging.Image {
	c.mu.Lock()
	defer c.mu.Unlock()
	return imaging.Generate(c.rng, p.Latent, p.Category, imaging.GenConfig{
		PayloadBytes: c.cfg.PayloadBytes,
		Noise:        c.cfg.ImageNoise * 2, // camera photos are noisier than studio shots
	})
}

// ImageURL is the canonical URL scheme for product photo j of product id.
func ImageURL(productID uint64, j int) string {
	return fmt.Sprintf("jfs://img.jd.local/p%d/img%d.jpg", productID, j)
}

// CategoryName returns the display name for a category ID.
func (c *Catalog) CategoryName(id uint16) string {
	if int(id) >= len(c.Categories) {
		return fmt.Sprintf("category-%d", id)
	}
	return c.Categories[id].Name
}

// TrainingLatents returns n image-like latent samples drawn the same way
// product photos are, for codebook training (§2.2 trains k-means "on a set
// of training data set (i.e., image features)").
func (c *Catalog) TrainingLatents(n int) [][]float32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]float32, 0, n)
	for i := 0; i < n; i++ {
		cat := &c.Categories[c.rng.Intn(len(c.Categories))]
		v := make([]float32, imaging.LatentDim)
		for d := range v {
			v[d] = cat.Prototype[d] + float32(c.rng.NormFloat64()*c.cfg.CategorySpread)
		}
		out = append(out, v)
	}
	return out
}
