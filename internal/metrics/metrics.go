// Package metrics provides the measurement substrate for the evaluation:
// lock-free latency histograms with percentile queries (Figs. 11(b), 12(b),
// 13(b)), QPS counters (Figs. 12(a), 13(a)) and hourly time-series
// aggregation (Fig. 11).
//
// Histograms are HDR-style: each power-of-two octave of nanoseconds is
// split into 16 linear sub-buckets, giving ≈6% relative quantile error
// across nanoseconds-to-minutes — ample for reproducing the paper's
// latency shapes. Recording is a single atomic increment.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

const (
	subBits    = 4
	subBuckets = 1 << subBits // 16 sub-buckets per octave
	octaves    = 44           // covers up to ~4.8 hours in nanoseconds
	nBuckets   = octaves * subBuckets
)

// Histogram is a concurrent latency histogram. The zero value is ready to
// use.
type Histogram struct {
	buckets [nBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	maxNS   atomic.Uint64
	minNS   atomic.Uint64 // offset by +1 so zero means "unset"
}

func bucketFor(ns uint64) int {
	if ns < subBuckets {
		return int(ns) // first octave is exact
	}
	oct := 63 - leadingZeros64(ns)
	sub := (ns >> (uint(oct) - subBits)) & (subBuckets - 1)
	idx := (oct-subBits+1)*subBuckets + int(sub)
	if idx >= nBuckets {
		return nBuckets - 1
	}
	return idx
}

// bucketLow returns the inclusive lower bound of bucket idx in nanoseconds.
func bucketLow(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	oct := idx/subBuckets + subBits - 1
	sub := uint64(idx % subBuckets)
	return 1<<uint(oct) | sub<<(uint(oct)-subBits)
}

func leadingZeros64(x uint64) int { return bits.LeadingZeros64(x) }

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.minNS.Load()
		if old != 0 && ns+1 >= old {
			break
		}
		if h.minNS.CompareAndSwap(old, ns+1) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean observation.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Min returns the smallest observation (0 if none).
func (h *Histogram) Min() time.Duration {
	v := h.minNS.Load()
	if v == 0 {
		return 0
	}
	return time.Duration(v - 1)
}

// Percentile returns the p-th percentile (0 < p <= 100) as the lower bound
// of the bucket containing that rank.
func (h *Histogram) Percentile(p float64) time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(c)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < nBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(bucketLow(i))
		}
	}
	return h.Max()
}

// Merge adds other's observations into h. (Used to combine per-worker
// histograms after a run; not linearisable with concurrent Records, which
// is fine for post-hoc aggregation.)
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < nBuckets; i++ {
		if v := other.buckets[i].Load(); v != 0 {
			h.buckets[i].Add(v)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if m := other.maxNS.Load(); m > h.maxNS.Load() {
		h.maxNS.Store(m)
	}
	if m := other.minNS.Load(); m != 0 && (h.minNS.Load() == 0 || m < h.minNS.Load()) {
		h.minNS.Store(m)
	}
}

// Reset zeroes the histogram. Not safe concurrently with Record.
func (h *Histogram) Reset() {
	for i := 0; i < nBuckets; i++ {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.maxNS.Store(0)
	h.minNS.Store(0)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64 // cumulative fraction of observations <= Latency
}

// CDF returns the empirical CDF with up to maxPoints points (bucket
// resolution), suitable for regenerating Fig. 13(b).
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	total := h.count.Load()
	if total == 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, 64)
	var seen uint64
	for i := 0; i < nBuckets; i++ {
		v := h.buckets[i].Load()
		if v == 0 {
			continue
		}
		seen += v
		pts = append(pts, CDFPoint{
			Latency:  time.Duration(bucketLow(i)),
			Fraction: float64(seen) / float64(total),
		})
	}
	if maxPoints > 0 && len(pts) > maxPoints {
		// Downsample evenly, always keeping the last point (fraction 1.0).
		out := make([]CDFPoint, 0, maxPoints)
		step := float64(len(pts)-1) / float64(maxPoints-1)
		for i := 0; i < maxPoints; i++ {
			out = append(out, pts[int(float64(i)*step+0.5)])
		}
		out[len(out)-1] = pts[len(pts)-1]
		return out
	}
	return pts
}

// Counter is a concurrent event counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one. Add adds delta. Value reads the total.
func (c *Counter) Inc()               { c.n.Add(1) }
func (c *Counter) Add(delta int64)    { c.n.Add(delta) }
func (c *Counter) Value() int64       { return c.n.Load() }
func (c *Counter) Reset()             { c.n.Store(0) }
func (c *Counter) Swap(v int64) int64 { return c.n.Swap(v) }

// HourlyKinds is the set of update kinds tracked per hour for Fig. 11(a).
type HourlyKinds struct {
	Updates   Counter
	Additions Counter
	Deletions Counter
}

// Total returns the sum across kinds.
func (k *HourlyKinds) Total() int64 {
	return k.Updates.Value() + k.Additions.Value() + k.Deletions.Value()
}

// HourlySeries aggregates per-hour counts and latency histograms over a
// (simulated) 24-hour day — the exact structure of Figs. 11(a) and 11(b).
type HourlySeries struct {
	Kinds [24]HourlyKinds
	Lat   [24]Histogram
}

// NewHourlySeries returns an empty series.
func NewHourlySeries() *HourlySeries { return &HourlySeries{} }

// RecordUpdate notes one real-time index event of the given kind at hour h
// with processing latency d.
func (s *HourlySeries) RecordUpdate(h int, kind string, d time.Duration) {
	if h < 0 || h > 23 {
		return
	}
	switch kind {
	case "update":
		s.Kinds[h].Updates.Inc()
	case "addition":
		s.Kinds[h].Additions.Inc()
	case "deletion":
		s.Kinds[h].Deletions.Inc()
	}
	s.Lat[h].Record(d)
}

// Table renders the series as aligned text rows (hour, counts by kind,
// avg/p90/p99 latency), the textual equivalent of Fig. 11.
func (s *HourlySeries) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %12s %12s %12s %12s\n",
		"hour", "updates", "additions", "deletions", "total", "avg", "p90", "p99")
	for h := 0; h < 24; h++ {
		k := &s.Kinds[h]
		if k.Total() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%02d:00  %12d %12d %12d %12d %12s %12s %12s\n",
			h, k.Updates.Value(), k.Additions.Value(), k.Deletions.Value(), k.Total(),
			s.Lat[h].Mean().Round(time.Microsecond),
			s.Lat[h].Percentile(90).Round(time.Microsecond),
			s.Lat[h].Percentile(99).Round(time.Microsecond))
	}
	return b.String()
}

// Quantiles computes exact quantiles from a raw sample (used where the full
// sample is small enough to keep, e.g. per-setting response times in
// Fig. 12(b)). The input is sorted in place.
func Quantiles(samples []time.Duration, qs ...float64) []time.Duration {
	if len(samples) == 0 {
		return make([]time.Duration, len(qs))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		idx := int(math.Ceil(q/100*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		out[i] = samples[idx]
	}
	return out
}
