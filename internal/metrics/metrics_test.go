package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatal("zero histogram not empty")
	}
	h.Record(100 * time.Millisecond)
	h.Record(200 * time.Millisecond)
	h.Record(300 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); m != 200*time.Millisecond {
		t.Fatalf("Mean = %s, want 200ms", m)
	}
	if h.Max() != 300*time.Millisecond {
		t.Fatalf("Max = %s", h.Max())
	}
	if h.Min() != 100*time.Millisecond {
		t.Fatalf("Min = %s", h.Min())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record mishandled: max=%s count=%d", h.Max(), h.Count())
	}
}

// TestPercentileAccuracy: bucketed percentiles must be within the bucket
// resolution (~6%) of exact order statistics.
func TestPercentileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform between 1µs and 1s — spans many octaves.
		exp := rng.Float64() * 6 // 10^0 .. 10^6 microseconds
		d := time.Duration(math10(exp) * float64(time.Microsecond))
		samples = append(samples, d)
		h.Record(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(p/100*float64(len(samples)))-1]
		got := h.Percentile(p)
		lo := float64(exact) * 0.85
		hi := float64(exact) * 1.15
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("p%v = %s, exact %s (outside ±15%%)", p, got, exact)
		}
	}
}

func math10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	if x > 0 {
		// linear interpolation within the final decade is fine for test data
		r *= 1 + 9*x
	}
	return r
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for ns := uint64(0); ns < 1<<22; ns += 97 {
		b := bucketFor(ns)
		if b < prev {
			t.Fatalf("bucketFor not monotone at %d: %d < %d", ns, b, prev)
		}
		prev = b
		if low := bucketLow(b); low > ns {
			t.Fatalf("bucketLow(%d)=%d exceeds value %d", b, low, ns)
		}
	}
}

func TestBucketLowInverse(t *testing.T) {
	for b := 0; b < nBuckets; b++ {
		low := bucketLow(b)
		if got := bucketFor(low); got != b {
			t.Fatalf("bucketFor(bucketLow(%d)) = %d", b, got)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	a.Record(2 * time.Millisecond)
	b.Record(time.Second)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != time.Second {
		t.Fatalf("merged max = %s", a.Max())
	}
	if a.Min() != time.Millisecond {
		t.Fatalf("merged min = %s", a.Min())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
}

func TestCDF(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	pts := h.CDF(0)
	if len(pts) == 0 {
		t.Fatal("empty CDF")
	}
	if last := pts[len(pts)-1]; last.Fraction != 1.0 {
		t.Fatalf("CDF does not reach 1.0: %v", last)
	}
	prevF := 0.0
	prevL := time.Duration(-1)
	for _, p := range pts {
		if p.Fraction < prevF || p.Latency <= prevL {
			t.Fatalf("CDF not monotone: %+v", pts)
		}
		prevF, prevL = p.Fraction, p.Latency
	}
	// Downsampling keeps the terminal point.
	small := h.CDF(5)
	if len(small) > 5 {
		t.Fatalf("downsample returned %d points", len(small))
	}
	if small[len(small)-1].Fraction != 1.0 {
		t.Fatal("downsampled CDF lost the 1.0 point")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
	if old := c.Swap(0); old != 5 {
		t.Fatalf("Swap returned %d", old)
	}
	if c.Value() != 0 {
		t.Fatal("Swap did not reset")
	}
	c.Inc()
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestHourlySeries(t *testing.T) {
	s := NewHourlySeries()
	s.RecordUpdate(11, "addition", 5*time.Millisecond)
	s.RecordUpdate(11, "addition", 7*time.Millisecond)
	s.RecordUpdate(11, "deletion", time.Millisecond)
	s.RecordUpdate(3, "update", 2*time.Millisecond)
	s.RecordUpdate(-1, "update", time.Millisecond) // ignored
	s.RecordUpdate(24, "update", time.Millisecond) // ignored

	if got := s.Kinds[11].Additions.Value(); got != 2 {
		t.Fatalf("hour 11 additions = %d", got)
	}
	if got := s.Kinds[11].Total(); got != 3 {
		t.Fatalf("hour 11 total = %d", got)
	}
	if got := s.Kinds[3].Updates.Value(); got != 1 {
		t.Fatalf("hour 3 updates = %d", got)
	}
	table := s.Table()
	if table == "" {
		t.Fatal("empty table")
	}
	// Hours with no traffic are omitted.
	if countLines(table) != 3 { // header + hour 3 + hour 11
		t.Fatalf("table has %d lines:\n%s", countLines(table), table)
	}
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}

func TestQuantiles(t *testing.T) {
	samples := []time.Duration{5, 1, 4, 2, 3}
	qs := Quantiles(samples, 50, 100)
	if qs[0] != 3 {
		t.Fatalf("p50 = %d, want 3", qs[0])
	}
	if qs[1] != 5 {
		t.Fatalf("p100 = %d, want 5", qs[1])
	}
	empty := Quantiles(nil, 50)
	if len(empty) != 1 || empty[0] != 0 {
		t.Fatalf("empty quantiles = %v", empty)
	}
}
