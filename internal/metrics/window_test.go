package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestWindowQuantileExact(t *testing.T) {
	w := NewWindow(100)
	for i := 1; i <= 100; i++ {
		w.Record(time.Duration(i) * time.Millisecond)
	}
	if got := w.Quantile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := w.Quantile(95); got != 95*time.Millisecond {
		t.Fatalf("p95 = %v, want 95ms", got)
	}
	if got := w.Quantile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	qs := w.Quantiles(50, 95, 99)
	if qs[0] != 50*time.Millisecond || qs[1] != 95*time.Millisecond || qs[2] != 99*time.Millisecond {
		t.Fatalf("Quantiles = %v", qs)
	}
}

func TestWindowEmptyAndPartial(t *testing.T) {
	w := NewWindow(64)
	if w.Quantile(99) != 0 {
		t.Fatal("empty window quantile not zero")
	}
	if w.Count() != 0 {
		t.Fatal("empty window count not zero")
	}
	// Partial fill: quantiles read only the filled slots, not the zeroed
	// remainder of the ring.
	for i := 0; i < 10; i++ {
		w.Record(7 * time.Millisecond)
	}
	if got := w.Quantile(50); got != 7*time.Millisecond {
		t.Fatalf("partial-fill p50 = %v, want 7ms", got)
	}
}

func TestWindowSlides(t *testing.T) {
	w := NewWindow(16)
	for i := 0; i < 16; i++ {
		w.Record(time.Second) // old regime
	}
	for i := 0; i < 16; i++ {
		w.Record(time.Millisecond) // new regime overwrites the ring
	}
	if got := w.Quantile(99); got != time.Millisecond {
		t.Fatalf("window did not slide: p99 = %v, want 1ms", got)
	}
}

func TestWindowTrackedRefreshes(t *testing.T) {
	w := NewWindow(128, 95)
	if got := w.Tracked(0); got != 0 {
		t.Fatalf("tracked quantile before any refresh = %v, want 0 (warm-up)", got)
	}
	// Recording past the refresh interval must populate the cache.
	for i := 0; i < windowRefreshEvery*2; i++ {
		w.Record(5 * time.Millisecond)
	}
	if got := w.Tracked(0); got != 5*time.Millisecond {
		t.Fatalf("tracked p95 = %v, want 5ms", got)
	}
	// Out-of-range indexes are inert.
	if w.Tracked(-1) != 0 || w.Tracked(1) != 0 {
		t.Fatal("out-of-range Tracked not zero")
	}
}

func TestWindowDefaultSizeAndNegativeClamp(t *testing.T) {
	w := NewWindow(0)
	if len(w.ring) != DefaultWindowSize {
		t.Fatalf("default size = %d, want %d", len(w.ring), DefaultWindowSize)
	}
	w.Record(-time.Second)
	if got := w.Quantile(100); got != 0 {
		t.Fatalf("negative sample recorded as %v, want 0", got)
	}
}

// TestWindowQuantileBeforeWarmup: below windowRefreshEvery records the
// cached estimate is still warm-up zero, but the on-demand Quantile is
// already exact over the partial fill — the two read paths must disagree
// in exactly this way, or hedging would act on empty estimates.
func TestWindowQuantileBeforeWarmup(t *testing.T) {
	w := NewWindow(64, 95)
	for i := 0; i < windowRefreshEvery-1; i++ {
		w.Record(3 * time.Millisecond)
	}
	if got := w.Tracked(0); got != 0 {
		t.Fatalf("Tracked before first refresh = %v, want 0", got)
	}
	if got := w.Quantile(95); got != 3*time.Millisecond {
		t.Fatalf("on-demand Quantile before warmup = %v, want 3ms", got)
	}
	// The next record crosses the refresh boundary and populates the cache.
	w.Record(3 * time.Millisecond)
	if got := w.Tracked(0); got != 3*time.Millisecond {
		t.Fatalf("Tracked after refresh = %v, want 3ms", got)
	}
}

// TestWindowWrapAtRefreshInterval sizes the ring to exactly
// windowRefreshEvery so the first wrap position coincides with the first
// refresh. The refresh must see the fully-filled ring (not an empty or
// doubled view), and the next record must overwrite slot 0.
func TestWindowWrapAtRefreshInterval(t *testing.T) {
	w := NewWindow(windowRefreshEvery, 100)
	for i := 1; i <= windowRefreshEvery; i++ {
		w.Record(time.Duration(i) * time.Millisecond)
	}
	if w.Count() != windowRefreshEvery {
		t.Fatalf("count = %d, want %d", w.Count(), windowRefreshEvery)
	}
	wantMax := time.Duration(windowRefreshEvery) * time.Millisecond
	if got := w.Tracked(0); got != wantMax {
		t.Fatalf("Tracked(p100) at wrap boundary = %v, want %v", got, wantMax)
	}
	if got := w.Quantile(100); got != wantMax {
		t.Fatalf("Quantile(100) at wrap boundary = %v, want %v", got, wantMax)
	}
	// Record windowRefreshEvery+1 wraps to slot 0: the 1ms sample is
	// evicted and the new maximum takes its place.
	w.Record(2 * wantMax)
	if got := w.Quantile(100); got != 2*wantMax {
		t.Fatalf("post-wrap Quantile(100) = %v, want %v", got, 2*wantMax)
	}
	qs := w.Quantiles(1)
	if qs[0] != 2*time.Millisecond {
		t.Fatalf("post-wrap minimum = %v, want 2ms (slot 0 overwritten)", qs[0])
	}
}

// TestWindowConcurrentRecordQuantile races on-demand Quantile snapshots
// against writers continuously wrapping a tiny ring — under -race this
// pins down that snapshot reads and slot overwrites stay torn-free.
func TestWindowConcurrentRecordQuantile(t *testing.T) {
	w := NewWindow(windowRefreshEvery, 50)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				w.Record(time.Duration(g+i) * time.Microsecond)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}
	for i := 0; i < 500; i++ {
		_ = w.Quantile(95)
		_ = w.Quantiles(50, 99)
		_ = w.Tracked(0)
	}
	close(stop)
	wg.Wait()
	if w.Count() == 0 {
		t.Fatal("no samples recorded")
	}
}

// TestWindowConcurrent hammers Record/Tracked/Quantile from many
// goroutines; run under -race this is the lock-cheapness contract.
func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(256, 50, 99)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w.Record(time.Duration(g*1000+i) * time.Microsecond)
				if i%100 == 0 {
					_ = w.Tracked(0)
					_ = w.Quantile(95)
				}
			}
		}(g)
	}
	wg.Wait()
	if w.Count() != 16000 {
		t.Fatalf("count = %d, want 16000", w.Count())
	}
	if w.Tracked(1) == 0 {
		t.Fatal("tracked p99 never refreshed")
	}
}
