package metrics

import (
	"sync/atomic"
	"time"
)

const (
	// DefaultWindowSize is the sample capacity a zero-configured Window
	// gets: large enough for stable tail estimates, small enough that the
	// periodic quantile refresh sorts in a few microseconds.
	DefaultWindowSize = 512
	// windowRefreshEvery is how many records pass between refreshes of the
	// cached tracked quantiles. The refresh cost (copy + sort of the
	// window) is borne by one recording goroutine every windowRefreshEvery
	// records, so the amortised per-record cost stays a handful of
	// comparisons.
	windowRefreshEvery = 32
)

// Window is a fixed-size ring of the most recent latency samples with
// lock-cheap recording and cached quantile tracking — the streaming
// estimator behind latency-adaptive decisions like the broker's hedged
// requests, where the hot path needs "what is this replica group's p95
// right now?" for the price of an atomic load.
//
// Record is two atomic operations (a counter add and a slot store);
// every windowRefreshEvery records the recording goroutine additionally
// recomputes the tracked quantiles from a snapshot of the ring, guarded by
// a try-lock so concurrent recorders never queue behind the sort. Tracked
// reads the cached value. Quantile/Quantiles sort a fresh snapshot on
// demand — exact over the current window, meant for stats endpoints, not
// per-request paths.
//
// Because slots are overwritten in place, a snapshot taken while writers
// are active mixes samples from adjacent windows; each value is itself
// torn-free (atomic), so quantiles are approximate only in which recent
// samples they see — exactly the tolerance a tail estimator has anyway.
type Window struct {
	ring    []atomic.Int64
	count   atomic.Uint64
	tracked []float64
	cached  []atomic.Int64
	busy    atomic.Bool
}

// NewWindow returns a Window holding the last size samples (size <= 0
// takes DefaultWindowSize). The tracked quantiles (percentile values in
// (0,100], e.g. 95 for p95) are kept fresh by Record and read with
// Tracked.
func NewWindow(size int, tracked ...float64) *Window {
	if size <= 0 {
		size = DefaultWindowSize
	}
	return &Window{
		ring:    make([]atomic.Int64, size),
		tracked: append([]float64(nil), tracked...),
		cached:  make([]atomic.Int64, len(tracked)),
	}
}

// Record adds one observation. Negative durations clamp to zero.
func (w *Window) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	pos := w.count.Add(1) - 1
	w.ring[pos%uint64(len(w.ring))].Store(int64(d))
	if len(w.tracked) > 0 && pos%windowRefreshEvery == windowRefreshEvery-1 {
		w.refresh()
	}
}

// Count returns the total number of observations recorded (not capped at
// the window size).
func (w *Window) Count() uint64 { return w.count.Load() }

// Tracked returns the cached value of the i-th tracked quantile. It is 0
// until the first refresh has run (i.e. during warm-up) — callers gate on
// that to avoid acting on an empty estimate.
func (w *Window) Tracked(i int) time.Duration {
	if i < 0 || i >= len(w.cached) {
		return 0
	}
	return time.Duration(w.cached[i].Load())
}

// refresh recomputes the tracked quantiles from a snapshot. The try-lock
// makes concurrent refreshes free: losers skip, the estimate is at most
// windowRefreshEvery records stale.
func (w *Window) refresh() {
	if !w.busy.CompareAndSwap(false, true) {
		return
	}
	defer w.busy.Store(false)
	vals := Quantiles(w.snapshot(), w.tracked...)
	for i := range w.tracked {
		w.cached[i].Store(int64(vals[i]))
	}
}

// snapshot copies the filled portion of the ring (unsorted; the shared
// Quantiles helper sorts).
func (w *Window) snapshot() []time.Duration {
	n := w.count.Load()
	filled := len(w.ring)
	if n < uint64(filled) {
		filled = int(n)
	}
	out := make([]time.Duration, filled)
	for i := 0; i < filled; i++ {
		out[i] = time.Duration(w.ring[i].Load())
	}
	return out
}

// Quantile returns the q-th percentile (0 < q <= 100) over the current
// window, exact at the time of the call (sorts a snapshot; stats-path
// cost, not hot-path cost). Returns 0 with no samples.
func (w *Window) Quantile(q float64) time.Duration {
	return Quantiles(w.snapshot(), q)[0]
}

// Quantiles returns several percentiles from one snapshot (one sort).
func (w *Window) Quantiles(qs ...float64) []time.Duration {
	return Quantiles(w.snapshot(), qs...)
}
