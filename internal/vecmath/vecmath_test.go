package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestL2SquaredKnown(t *testing.T) {
	tests := []struct {
		name string
		a, b []float32
		want float32
	}{
		{"zero", []float32{0, 0, 0}, []float32{0, 0, 0}, 0},
		{"unit-axes", []float32{1, 0}, []float32{0, 1}, 2},
		{"3-4-5", []float32{0, 0}, []float32{3, 4}, 25},
		{"negatives", []float32{-1, -2, -3}, []float32{1, 2, 3}, 4 + 16 + 36},
		{"single", []float32{2}, []float32{5}, 9},
		{"len5-unrolled-tail", []float32{1, 1, 1, 1, 1}, []float32{0, 0, 0, 0, 0}, 5},
		{"empty", nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := L2Squared(tt.a, tt.b); got != tt.want {
				t.Errorf("L2Squared(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestL2SquaredPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	L2Squared([]float32{1, 2}, []float32{1})
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot([]float32{1, 2, 3}, []float32{1})
}

// TestL2SquaredMatchesNaive cross-checks the unrolled loop against a
// straightforward implementation across many dimensions (odd lengths hit
// the scalar tail).
func TestL2SquaredMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for dim := 0; dim <= 67; dim++ {
		a := make([]float32, dim)
		b := make([]float32, dim)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		var want float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			want += d * d
		}
		got := float64(L2Squared(a, b))
		if !almostEqual(got, want, 1e-5) {
			t.Errorf("dim %d: unrolled %v, naive %v", dim, got, want)
		}
	}
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for dim := 0; dim <= 67; dim++ {
		a := make([]float32, dim)
		b := make([]float32, dim)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		if !almostEqual(got, want, 1e-5) {
			t.Errorf("dim %d: unrolled %v, naive %v", dim, got, want)
		}
	}
}

// Property: distance symmetry and identity.
func TestL2SquaredProperties(t *testing.T) {
	f := func(raw []byte) bool {
		// Derive two equal-length vectors from the fuzz input.
		n := len(raw) / 2
		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = float32(int8(raw[i])) / 16
			b[i] = float32(int8(raw[n+i])) / 16
		}
		sym := L2Squared(a, b) == L2Squared(b, a)
		ident := L2Squared(a, a) == 0
		nonneg := L2Squared(a, b) >= 0
		return sym && ident && nonneg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if n := Norm(v); !almostEqual(float64(n), 1, 1e-6) {
		t.Errorf("norm after Normalize = %v, want 1", n)
	}
	// Zero vector unchanged.
	z := []float32{0, 0, 0}
	Normalize(z)
	for _, x := range z {
		if x != 0 {
			t.Errorf("zero vector mutated: %v", z)
		}
	}
}

func TestAddScale(t *testing.T) {
	dst := []float32{1, 2, 3}
	Add(dst, []float32{10, 20, 30})
	want := []float32{11, 22, 33}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Add: got %v, want %v", dst, want)
		}
	}
	Scale(dst, 2)
	want = []float32{22, 44, 66}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Scale: got %v, want %v", dst, want)
		}
	}
}

func TestNearestCentroid(t *testing.T) {
	centroids := []float32{
		0, 0, // c0
		10, 0, // c1
		0, 10, // c2
	}
	tests := []struct {
		v    []float32
		want int
	}{
		{[]float32{1, 1}, 0},
		{[]float32{9, 1}, 1},
		{[]float32{1, 9}, 2},
		{[]float32{5.1, 0}, 1}, // just past the midpoint
	}
	for _, tt := range tests {
		got, _ := NearestCentroid(tt.v, centroids, 2)
		if got != tt.want {
			t.Errorf("NearestCentroid(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestTopCentroidsOrderingAndClamp(t *testing.T) {
	centroids := []float32{
		0, 0,
		1, 0,
		5, 0,
		20, 0,
	}
	got := TopCentroids([]float32{0.4, 0}, centroids, 2, 3)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("TopCentroids returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopCentroids returned %v, want %v", got, want)
		}
	}
	// n larger than k clamps.
	if got := TopCentroids([]float32{0, 0}, centroids, 2, 99); len(got) != 4 {
		t.Fatalf("clamp: got %d centroids, want 4", len(got))
	}
	if got := TopCentroids([]float32{0, 0}, centroids, 2, 0); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
}

// Property: TopCentroids(1) agrees with NearestCentroid.
func TestTopCentroidsAgreesWithNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const dim, k = 8, 32
	centroids := make([]float32, k*dim)
	for i := range centroids {
		centroids[i] = float32(rng.NormFloat64())
	}
	for trial := 0; trial < 100; trial++ {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		best, _ := NearestCentroid(v, centroids, dim)
		top := TopCentroids(v, centroids, dim, 1)
		if len(top) != 1 || top[0] != best {
			t.Fatalf("trial %d: TopCentroids=%v, NearestCentroid=%d", trial, top, best)
		}
	}
}

// TestTopCentroidsIntoMatchesTopCentroids checks the scratch-reusing
// variant selects identically and actually reuses caller buffers.
func TestTopCentroidsIntoMatchesTopCentroids(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim = 8
	centroids := make([]float32, 50*dim)
	for i := range centroids {
		centroids[i] = float32(rng.NormFloat64())
	}
	var idx []int
	var dist []float32
	for trial := 0; trial < 30; trial++ {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		n := rng.Intn(60) // sometimes above k to exercise clamping
		want := TopCentroids(v, centroids, dim, n)
		idx, dist = TopCentroidsInto(idx, dist, v, centroids, dim, n)
		if len(idx) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(idx), len(want))
		}
		for i := range want {
			if idx[i] != want[i] {
				t.Fatalf("trial %d: idx[%d] = %d, want %d", trial, i, idx[i], want[i])
			}
		}
	}
	// Warmed buffers must be reused, not reallocated.
	idx, dist = TopCentroidsInto(idx, dist, make([]float32, dim), centroids, dim, 10)
	i0, d0 := &idx[0], &dist[0]
	idx, dist = TopCentroidsInto(idx, dist, make([]float32, dim), centroids, dim, 10)
	if &idx[0] != i0 || &dist[0] != d0 {
		t.Fatal("TopCentroidsInto reallocated warmed scratch")
	}
}

// Property: TopCentroids returns distances in ascending order.
func TestTopCentroidsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const dim, k = 6, 24
	centroids := make([]float32, k*dim)
	for i := range centroids {
		centroids[i] = float32(rng.NormFloat64())
	}
	for trial := 0; trial < 50; trial++ {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		top := TopCentroids(v, centroids, dim, 8)
		prev := float32(-1)
		for _, c := range top {
			d := L2Squared(v, centroids[c*dim:(c+1)*dim])
			if prev >= 0 && d < prev {
				t.Fatalf("trial %d: centroid distances not ascending", trial)
			}
			prev = d
		}
	}
}
