// Package vecmath provides small, allocation-free float32 vector primitives
// used throughout the index and search paths: squared Euclidean distance,
// dot products, norms and batched distance computation.
//
// All functions panic on dimension mismatch: a mismatch is a programming
// error (features of different dimensionality can never be compared), and
// silently truncating would corrupt search results.
package vecmath

import "math"

// L2Squared returns the squared Euclidean distance between a and b.
// The inner loop is unrolled by four, which the compiler turns into
// reasonably tight code without any assembly.
func L2Squared(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float32 {
	return float32(math.Sqrt(float64(L2Squared(a, b))))
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	return float32(math.Sqrt(float64(Dot(v, v))))
}

// Normalize scales v in place to unit Euclidean norm. A zero vector is left
// unchanged (there is no meaningful direction to preserve).
func Normalize(v []float32) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// Add accumulates src into dst element-wise.
func Add(dst, src []float32) {
	if len(dst) != len(src) {
		panic("vecmath: dimension mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of v by f.
func Scale(v []float32, f float32) {
	for i := range v {
		v[i] *= f
	}
}

// NearestCentroid returns the index of the centroid closest (squared L2) to
// v, along with that squared distance. centroids is a flat row-major matrix
// of k rows of dim columns. It panics if the layout is inconsistent or k is
// zero.
func NearestCentroid(v []float32, centroids []float32, dim int) (best int, bestDist float32) {
	if dim <= 0 || len(centroids)%dim != 0 {
		panic("vecmath: bad centroid layout")
	}
	k := len(centroids) / dim
	if k == 0 {
		panic("vecmath: no centroids")
	}
	if len(v) != dim {
		panic("vecmath: dimension mismatch")
	}
	best = 0
	bestDist = L2Squared(v, centroids[:dim])
	for c := 1; c < k; c++ {
		d := L2Squared(v, centroids[c*dim:(c+1)*dim])
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best, bestDist
}

// TopCentroids returns the indices of the n closest centroids to v in
// ascending distance order. It is used to select which inverted lists to
// probe. n is clamped to the number of centroids.
func TopCentroids(v []float32, centroids []float32, dim, n int) []int {
	idx, _ := TopCentroidsInto(nil, nil, v, centroids, dim, n)
	return idx
}

// TopCentroidsInto is TopCentroids writing into caller-supplied scratch:
// idx receives the selected centroid indices and dist carries their
// distances during selection. Both are grown only when too small, so a
// pooled pair of buffers makes repeated probe selection allocation-free.
// It returns the filled index slice and the (possibly regrown) distance
// scratch for the caller to retain.
func TopCentroidsInto(idx []int, dist []float32, v, centroids []float32, dim, n int) ([]int, []float32) {
	if dim <= 0 || len(centroids)%dim != 0 {
		panic("vecmath: bad centroid layout")
	}
	k := len(centroids) / dim
	if n > k {
		n = k
	}
	if n <= 0 {
		return idx[:0], dist[:0]
	}
	if cap(idx) < n {
		idx = make([]int, 0, n)
	}
	if cap(dist) < n {
		dist = make([]float32, 0, n)
	}
	idx, dist = idx[:0], dist[:0]
	// Simple selection: maintain the best n in an insertion-sorted pair of
	// parallel arrays. k is the number of IVF lists (hundreds to low
	// thousands); n is small.
	for c := 0; c < k; c++ {
		d := L2Squared(v, centroids[c*dim:(c+1)*dim])
		if len(idx) < n {
			idx = append(idx, c)
			dist = append(dist, d)
			for i := len(idx) - 1; i > 0 && dist[i] < dist[i-1]; i-- {
				idx[i], idx[i-1] = idx[i-1], idx[i]
				dist[i], dist[i-1] = dist[i-1], dist[i]
			}
			continue
		}
		if d >= dist[n-1] {
			continue
		}
		idx[n-1], dist[n-1] = c, d
		for i := n - 1; i > 0 && dist[i] < dist[i-1]; i-- {
			idx[i], idx[i-1] = idx[i-1], idx[i]
			dist[i], dist[i-1] = dist[i-1], dist[i]
		}
	}
	return idx, dist
}
