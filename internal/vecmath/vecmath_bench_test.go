package vecmath

import (
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func BenchmarkL2Squared(b *testing.B) {
	for _, dim := range []int{64, 128, 512} {
		b.Run(sizeName(dim), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x, y := randVec(rng, dim), randVec(rng, dim)
			b.ReportAllocs()
			b.ResetTimer()
			var sink float32
			for i := 0; i < b.N; i++ {
				sink += L2Squared(x, y)
			}
			if sink == 0 {
				b.Log(sink)
			}
		})
	}
}

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randVec(rng, 64), randVec(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	if sink == 0 {
		b.Log(sink)
	}
}

func BenchmarkNearestCentroid(b *testing.B) {
	const dim, k = 64, 256
	rng := rand.New(rand.NewSource(3))
	cents := randVec(rng, dim*k)
	q := randVec(rng, dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NearestCentroid(q, cents, dim)
	}
}

func BenchmarkTopCentroids(b *testing.B) {
	const dim, k = 64, 256
	rng := rand.New(rand.NewSource(4))
	cents := randVec(rng, dim*k)
	q := randVec(rng, dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopCentroids(q, cents, dim, 8)
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "dim=64"
	case 128:
		return "dim=128"
	default:
		return "dim=512"
	}
}
