package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"jdvs/internal/core"
)

// relistShard builds a PQ-enabled shard whose IVF centroids are far apart,
// so features built near distinct centroids land in distinct inverted
// lists — re-listing with a vector from another cluster must move the
// image.
func relistShard(t *testing.T) (*Shard, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	feats := clusteredFeatures(rng, 2000, testDim, 8, 0.2)
	train := make([]float32, 0, 2000*testDim)
	for _, f := range feats {
		train = append(train, f...)
	}
	s, err := New(Config{Dim: testDim, NLists: 8, DefaultNProbe: 8, SearchWorkers: 1, PQSubvectors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Train(train, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.TrainPQ(train, 3); err != nil {
		t.Fatal(err)
	}
	for i, f := range feats {
		a := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://relist/%d.jpg", i)}
		if _, _, err := s.Insert(a, f); err != nil {
			t.Fatal(err)
		}
	}
	return s, feats
}

// topURL returns the URL of the closest hit for a query vector.
func topURL(t *testing.T, s *Shard, q []float32) (string, float32) {
	t.Helper()
	resp, err := s.Search(&core.SearchRequest{Feature: q, TopK: 1, NProbe: 8, Category: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("no hits")
	}
	return resp.Hits[0].URL, resp.Hits[0].Dist
}

// TestRelistChangedFeature is the headline regression: re-listing a URL
// with a different vector must make the image searchable at its new
// location — fresh feature row, fresh PQ code, entry in the new vector's
// inverted list — instead of serving the old vector forever.
func TestRelistChangedFeature(t *testing.T) {
	s, feats := relistShard(t)
	const victim = 7
	url := fmt.Sprintf("jfs://relist/%d.jpg", victim)
	oldFeat := feats[victim]

	// Pick a replacement vector from a different IVF cluster.
	oldCluster := s.codebook.Assign(oldFeat)
	var newFeat []float32
	for _, f := range feats {
		if s.codebook.Assign(f) != oldCluster {
			newFeat = append([]float32(nil), f...)
			break
		}
	}
	if newFeat == nil {
		t.Fatal("corpus collapsed into one cluster")
	}
	// Perturb so the vector is unique in the corpus.
	newFeat[0] += 0.01

	// Before: the URL is the exact match for its old vector.
	if got, dist := topURL(t, s, oldFeat); got != url || dist != 0 {
		t.Fatalf("precondition: top(old) = %q dist %v, want %q dist 0", got, dist, url)
	}

	oldID := s.byURL[url]
	id, reused, err := s.Insert(core.Attrs{ProductID: uint64(victim + 1), URL: url, Sales: 777}, newFeat)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("changed-vector re-listing reported as reuse")
	}
	if id == oldID {
		t.Fatalf("changed-vector re-listing kept id %d", id)
	}

	// The stale generation is tombstoned; the URL maps to the new one.
	if s.valid.Get(oldID) {
		t.Fatal("stale generation still valid")
	}
	if got := s.byURL[url]; got != id {
		t.Fatalf("byURL = %d, want %d", got, id)
	}

	// ADC path (PQ enabled): the new vector finds the URL at distance 0 —
	// the code was re-encoded and the id lives in the new inverted list.
	if got, dist := topURL(t, s, newFeat); got != url || dist != 0 {
		t.Fatalf("ADC top(new) = %q dist %v, want %q dist 0", got, dist, url)
	}
	// The old vector no longer resolves to the URL at distance 0.
	if got, dist := topURL(t, s, oldFeat); got == url && dist == 0 {
		t.Fatal("old vector still serves the re-listed URL at distance 0")
	}
	// The shard-held row and code reflect the new vector.
	if !rowsEqual(s.Feature(id), newFeat) {
		t.Fatal("stored row is not the new vector")
	}
	ps := s.pqState.Load()
	want := make([]byte, ps.cb.M)
	if err := ps.cb.Encode(newFeat, want); err != nil {
		t.Fatal(err)
	}
	got := ps.codes.Row(id)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ADC code not re-encoded: got %v, want %v", got, want)
		}
	}
	// Attributes rode along.
	if a, ok := s.Attrs(id); !ok || a.Sales != 777 {
		t.Fatalf("attrs = %+v, want Sales 777", a)
	}
	if st := s.Stats(); st.FeatureRefreshes != 1 {
		t.Fatalf("FeatureRefreshes = %d, want 1", st.FeatureRefreshes)
	}

	// Exact path: same corpus without PQ.
	se, err := New(Config{Dim: testDim, NLists: 8, DefaultNProbe: 8, SearchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := se.SetCodebook(s.Codebook()); err != nil {
		t.Fatal(err)
	}
	for i, f := range feats {
		a := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://relist/%d.jpg", i)}
		if _, _, err := se.Insert(a, f); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := se.Insert(core.Attrs{ProductID: uint64(victim + 1), URL: url}, newFeat); err != nil {
		t.Fatal(err)
	}
	if got, dist := topURL(t, se, newFeat); got != url || dist != 0 {
		t.Fatalf("exact top(new) = %q dist %v, want %q dist 0", got, dist, url)
	}
}

// TestRelistChangedFeatureMovesProduct: a changed-vector re-listing that
// also changes owners must move the image between byProduct entries, like
// the plain reuse path does.
func TestRelistChangedFeatureMovesProduct(t *testing.T) {
	s, feats := relistShard(t)
	const victim = 3
	url := fmt.Sprintf("jfs://relist/%d.jpg", victim)
	newFeat := append([]float32(nil), feats[victim]...)
	newFeat[1] += 5 // changed vector
	id, _, err := s.Insert(core.Attrs{ProductID: 9_999, URL: url}, newFeat)
	if err != nil {
		t.Fatal(err)
	}
	if imgs := s.ProductImages(uint64(victim + 1)); len(imgs) != 0 {
		t.Fatalf("old product still owns %v", imgs)
	}
	imgs := s.ProductImages(9_999)
	if len(imgs) != 1 || imgs[0] != id {
		t.Fatalf("new product owns %v, want [%d]", imgs, id)
	}
}

// TestRelistSameFeatureReuses: supplying the identical vector on a
// re-listing keeps the cheap §2.3 reuse path — validity flip plus
// attribute refresh, no new generation.
func TestRelistSameFeatureReuses(t *testing.T) {
	s, feats := relistShard(t)
	const victim = 11
	url := fmt.Sprintf("jfs://relist/%d.jpg", victim)
	before := s.Stats()
	id, reused, err := s.Insert(core.Attrs{ProductID: uint64(victim + 1), URL: url, Sales: 5}, feats[victim])
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("identical-vector re-listing did not reuse")
	}
	after := s.Stats()
	if after.Images != before.Images || after.FeatureRefreshes != 0 {
		t.Fatalf("reuse appended a generation: %+v -> %+v", before, after)
	}
	if a, ok := s.Attrs(id); !ok || a.Sales != 5 {
		t.Fatalf("attrs not refreshed: %+v", a)
	}
}

// TestRelistDimValidation: the reuse path must reject a wrong-dimension
// vector exactly like the fresh-insert path, instead of silently
// succeeding.
func TestRelistDimValidation(t *testing.T) {
	s, _ := relistShard(t)
	url := "jfs://relist/0.jpg"
	if _, _, err := s.Insert(core.Attrs{ProductID: 1, URL: url}, make([]float32, 3)); err == nil {
		t.Fatal("wrong-dim re-listing accepted")
	}
	// nil feature stays the explicit feature-reuse request.
	if _, reused, err := s.Insert(core.Attrs{ProductID: 1, URL: url}, nil); err != nil || !reused {
		t.Fatalf("nil-feature reuse: reused=%v err=%v", reused, err)
	}
}

// TestADCRerankBackfill: when raw rows are unavailable at re-rank time,
// the ADC path must backfill from the next approximate candidates (scored
// by their ADC distance) instead of returning fewer than k results.
func TestADCRerankBackfill(t *testing.T) {
	s, feats := relistShard(t)
	n := s.feats.Len()
	// Simulate a store-level gap: all but the first 20 rows' raw features
	// vanish while their codes remain scannable (the condition disk-backed
	// rows make reachable) — re-rank then has fewer than k exact rows.
	const kept = 20
	s.feats.(*featMat).length.Store(kept)

	const k = 10
	missingHits := 0
	for qi := 0; qi < 20; qi++ {
		resp, err := s.Search(&core.SearchRequest{Feature: feats[n-1-qi], TopK: k, NProbe: 8, Category: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Hits) != k {
			t.Fatalf("query %d: %d hits, want %d (shard holds %d valid images)", qi, len(resp.Hits), k, n)
		}
		seen := make(map[uint32]bool, k)
		for _, h := range resp.Hits {
			if seen[h.Image.Local] {
				t.Fatalf("duplicate hit %d", h.Image.Local)
			}
			seen[h.Image.Local] = true
			if h.Image.Local >= kept {
				missingHits++
			}
		}
	}
	if missingHits == 0 {
		t.Fatal("no backfilled candidates surfaced; test exercised nothing")
	}
}

// TestRelistSnapshotRoundTrip: a snapshot written after a changed-vector
// re-listing must rebuild the same lookup state on load — the tombstoned
// stale generation stays out of byProduct, so replicas loaded from the
// stream agree with the shard that wrote it.
func TestRelistSnapshotRoundTrip(t *testing.T) {
	s, feats := relistShard(t)
	const victim = 5
	url := fmt.Sprintf("jfs://relist/%d.jpg", victim)
	newFeat := append([]float32(nil), feats[victim]...)
	newFeat[2] += 4
	id, _, err := s.Insert(core.Attrs{ProductID: uint64(victim + 1), URL: url, Sales: 321}, newFeat)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dup, err := New(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := dup.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	want := s.ProductImages(uint64(victim + 1))
	got := dup.ProductImages(uint64(victim + 1))
	if len(want) != 1 || want[0] != id {
		t.Fatalf("source byProduct = %v, want [%d]", want, id)
	}
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("loaded byProduct = %v, source has %v (stale generation resurfaced?)", got, want)
	}
	// A delisted-but-not-superseded image keeps its byProduct entry so it
	// can be re-listed (validity is the only tombstone for plain removal).
	if _, err := s.RemoveImageURL("jfs://relist/9.jpg"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dup2, err := New(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := dup2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if imgs := dup2.ProductImages(10); len(imgs) != 1 {
		t.Fatalf("delisted image lost its product membership on load: %v", imgs)
	}
	// And the re-listed URL still searches at its new location on the
	// loaded replica.
	if got, dist := topURL(t, dup, newFeat); got != url || dist != 0 {
		t.Fatalf("loaded replica top(new) = %q dist %v, want %q dist 0", got, dist, url)
	}
}

// TestInsertRejectsOversizedURL: a URL the forward index would refuse is
// rejected up front — before the feature row commits — so one bad insert
// cannot skew the matrices and wedge the shard's write path.
func TestInsertRejectsOversizedURL(t *testing.T) {
	s, feats := relistShard(t)
	before := s.Stats()
	huge := "jfs://" + strings.Repeat("x", 2<<20)
	if _, _, err := s.Insert(core.Attrs{ProductID: 1, URL: huge}, feats[0]); err == nil {
		t.Fatal("oversized URL accepted")
	}
	if st := s.Stats(); st.Images != before.Images {
		t.Fatalf("failed insert committed state: %+v", st)
	}
	// The shard keeps ingesting: the matrices stayed aligned.
	if _, _, err := s.Insert(core.Attrs{ProductID: 1, URL: "jfs://relist/after.jpg"}, feats[0]); err != nil {
		t.Fatalf("shard wedged after rejected insert: %v", err)
	}
}
