//go:build linux || darwin

package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// mmapMat is the disk-tiered feature-row store: rows live in an unlinked
// spill file mapped MAP_SHARED, so reads are served through the OS page
// cache and the rows cost the shard no Go heap. The real-time writer
// appends by copying the row into the mapping and publishing it with an
// atomic length store — freshly appended rows sit in dirty page-cache
// pages (the in-RAM tail of the store) until kernel writeback tiers them
// to disk, and cold rows fault back in on the first re-rank touch.
//
// Concurrency matches chunkMat exactly: committed rows are immutable, a
// row becomes visible only through the length counter, and any number of
// readers run against the single writer without locks. Capacity grows by
// ftruncate-and-remap (geometric doubling); superseded mappings stay
// mapped until Close so in-flight readers holding row slices never touch
// unmapped memory — they address the same file pages, so the cost is
// address space, not RAM.
//
// The spill file is unlinked at creation: storage is reclaimed by the
// kernel when the file handle closes, even on crash. A finalizer backstops
// shards dropped without Close (e.g. hot-swapped out by a snapshot push).
type mmapMat struct {
	width int // floats per row

	mu     sync.Mutex // serialises Append, growth and snapshot replace
	f      *os.File   // unlinked spill file
	view   atomic.Pointer[mmapView]
	length atomic.Uint32

	retired [][]byte // superseded mappings, unmapped only at Close
	closed  atomic.Bool
}

// mmapView is the atomically published mapping generation: raw is the
// mmap'd byte region, rows the same memory as float32s.
type mmapView struct {
	raw     []byte
	rows    []float32
	capRows int
}

// mmapMinRows sizes the first mapping (4096 rows — 1 MiB at dim 64), so
// one ftruncate covers the first few thousand real-time appends.
const mmapMinRows = 1 << 12

// nativeLittleEndian gates the zero-decode snapshot load: the feature
// section's little-endian float32 stream is the in-memory layout on every
// little-endian platform, so it can be read straight into the mapping.
var nativeLittleEndian = func() bool {
	var buf [2]byte
	*(*uint16)(unsafe.Pointer(&buf[0])) = 0x0102
	return buf[0] == 0x02
}()

var errMmapClosed = errors.New("index: mmap feature store is closed")

func newMmapMat(dim int, spillDir string) (rowStore, error) {
	if spillDir == "" {
		spillDir = os.TempDir()
	}
	f, err := os.CreateTemp(spillDir, "jdvs-feat-*.spill")
	if err != nil {
		return nil, fmt.Errorf("index: create feature spill file: %w", err)
	}
	// Unlink immediately: the storage lives exactly as long as the fd (and
	// the mappings), so no spill file can outlive its shard, crash
	// included.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, fmt.Errorf("index: unlink feature spill file: %w", err)
	}
	m := &mmapMat{width: dim, f: f}
	m.view.Store(&mmapView{})
	runtime.SetFinalizer(m, func(m *mmapMat) { _ = m.Close() })
	return m, nil
}

// Len returns the number of committed rows.
func (m *mmapMat) Len() int { return int(m.length.Load()) }

// Row returns committed row id as a slice into the mapped file. The load
// order matters: length first (acquire), then the view — views only ever
// cover more rows, so a view loaded after the length check always holds
// row id.
func (m *mmapMat) Row(id uint32) []float32 {
	if id >= m.length.Load() {
		return nil
	}
	v := m.view.Load()
	lo, hi := int(id)*m.width, (int(id)+1)*m.width
	return v.rows[lo:hi:hi]
}

// Append commits row as the next row, growing the spill file as needed.
func (m *mmapMat) Append(row []float32) (uint32, error) {
	if len(row) != m.width {
		return 0, fmt.Errorf("index: feature dim %d, shard feature dim %d", len(row), m.width)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed.Load() {
		return 0, errMmapClosed
	}
	id := m.length.Load()
	v := m.view.Load()
	if int(id) >= v.capRows {
		var err error
		if v, err = m.grow(int(id) + 1); err != nil {
			return 0, err
		}
	}
	copy(v.rows[int(id)*m.width:(int(id)+1)*m.width], row)
	m.length.Store(id + 1) // publish
	return id, nil
}

// grow extends the spill file to hold at least need rows and publishes a
// mapping covering it. Caller holds mu.
func (m *mmapMat) grow(need int) (*mmapView, error) {
	v := m.view.Load()
	capRows := v.capRows
	if capRows == 0 {
		capRows = mmapMinRows
	}
	for capRows < need {
		capRows *= 2
	}
	size := capRows * m.width * 4
	if err := m.f.Truncate(int64(size)); err != nil {
		return nil, fmt.Errorf("index: grow feature spill file: %w", err)
	}
	// Reserve the blocks now (where the platform can): a bare ftruncate
	// leaves the file sparse, and a later ENOSPC would surface as an
	// uncatchable SIGBUS on the first store into an unbackable page —
	// killing the daemon mid-insert instead of returning an error here.
	if err := reserveSpill(m.f, int64(size)); err != nil {
		return nil, fmt.Errorf("index: reserve feature spill file: %w", err)
	}
	raw, err := syscall.Mmap(int(m.f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("index: map feature spill file: %w", err)
	}
	rows := unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), capRows*m.width)
	if v.raw != nil {
		// In-flight readers may still hold slices into the old mapping;
		// retire it but keep it mapped until Close.
		m.retired = append(m.retired, v.raw)
	}
	nv := &mmapView{raw: raw, rows: rows, capRows: capRows}
	m.view.Store(nv)
	return nv, nil
}

// writeTo serialises the snapshot feature section — the shared codec, so
// the stream is byte-identical to the RAM store's.
func (m *mmapMat) writeTo(w io.Writer) (int64, error) {
	return writeFloatRows(w, m.width, m.length.Load(), m.Row)
}

// readFrom replaces the contents from a writeTo stream. The feature
// section is read straight into the mapping — the rows never pass through
// heap chunks — then published with one length store. Not concurrent-safe.
//
//jdvs:blocking-ok snapshot load is writer-context with searches quiesced; mu is held across the reads only to exclude Close
func (m *mmapMat) readFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [8]byte
	k, err := io.ReadFull(r, hdr[:])
	read += int64(k)
	if err != nil {
		return read, err
	}
	dim := int(binary.LittleEndian.Uint32(hdr[0:4]))
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if dim != m.width {
		return read, fmt.Errorf("index: snapshot dim %d, shard dim %d", dim, m.width)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed.Load() {
		return read, errMmapClosed
	}
	m.length.Store(0)
	v := m.view.Load()
	if int(n) > v.capRows {
		if v, err = m.grow(int(n)); err != nil {
			return read, err
		}
	}
	if n > 0 {
		if nativeLittleEndian {
			k, err := io.ReadFull(r, v.raw[:int(n)*m.width*4])
			read += int64(k)
			if err != nil {
				return read, err
			}
		} else {
			buf := make([]byte, 4*m.width)
			for id := uint32(0); id < n; id++ {
				k, err := io.ReadFull(r, buf)
				read += int64(k)
				if err != nil {
					return read, err
				}
				row := v.rows[int(id)*m.width : (int(id)+1)*m.width]
				for i := range row {
					row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
				}
			}
		}
	}
	m.length.Store(n)
	return read, nil
}

// heapBytes: the rows live in the page cache, not the Go heap; only the
// bookkeeping struct and retired-mapping headers are heap-resident. Takes
// mu because stats readers run concurrently with the writer's grow()
// appending to retired.
func (m *mmapMat) heapBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(unsafe.Sizeof(*m)) + int64(len(m.retired))*int64(unsafe.Sizeof([]byte{}))
}

// dropPages advises the kernel to evict the store's resident pages — the
// cold-page fault injector behind the re-rank benchmarks. Contents are
// not lost (MAP_SHARED pages re-fault from the file); the next row reads
// pay the fault cost a memory-pressured shard would.
func (m *mmapMat) dropPages() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.view.Load()
	if v.raw == nil {
		return nil
	}
	return syscall.Madvise(v.raw, syscall.MADV_DONTNEED)
}

// Close unmaps every mapping generation and closes the (already unlinked)
// spill file, releasing its storage. Reads and writes must be quiesced.
//
//jdvs:blocking-ok teardown with reads quiesced; mu must cover the unmaps to exclude a concurrent load or grow
func (m *mmapMat) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	runtime.SetFinalizer(m, nil)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.length.Store(0)
	v := m.view.Load()
	m.view.Store(&mmapView{})
	var firstErr error
	if v.raw != nil {
		firstErr = syscall.Munmap(v.raw)
	}
	for _, raw := range m.retired {
		if err := syscall.Munmap(raw); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.retired = nil
	if err := m.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
