package index

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// chunkMat is the shared core of the shard's row matrices (featMat's
// float32 feature rows, codeMat's byte PQ codes): row i belongs to image
// ID i, aligned with the forward index. Rows live in fixed-size chunks
// behind an atomically published directory, so the search path reads rows
// lock-free while the (single) real-time indexing writer appends — a row
// is visible only once the length counter publishes it, and committed
// rows are immutable. Keeping this concurrency-sensitive protocol in one
// generic type means a fix to the publish ordering cannot silently miss
// one of the matrices.
type chunkMat[T any] struct {
	label    string // row-kind noun for error messages, e.g. "feature dim"
	width    int    // elements per row
	perChunk int    // rows per chunk

	mu     sync.Mutex
	dir    atomic.Pointer[[]*matChunk[T]]
	length atomic.Uint32
}

type matChunk[T any] struct {
	rows []T // perChunk × width, allocated once
}

// init prepares the matrix in place (chunkMat holds a mutex and atomics,
// so it is embedded and initialised rather than returned by value).
func (m *chunkMat[T]) init(label string, width, perChunk int) {
	m.label = label
	m.width = width
	m.perChunk = perChunk
	dir := []*matChunk[T]{}
	m.dir.Store(&dir)
}

// Len returns the number of committed rows.
func (m *chunkMat[T]) Len() int { return int(m.length.Load()) }

// Append stores row as the next row and returns its row index. row must
// have exactly width elements.
func (m *chunkMat[T]) Append(row []T) (uint32, error) {
	if len(row) != m.width {
		return 0, fmt.Errorf("index: %s %d, shard %s %d", m.label, len(row), m.label, m.width)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.length.Load()
	chunks := *m.dir.Load()
	ci := int(id) / m.perChunk
	if ci >= len(chunks) {
		next := make([]*matChunk[T], ci+1)
		copy(next, chunks)
		for i := len(chunks); i <= ci; i++ {
			next[i] = &matChunk[T]{rows: make([]T, m.perChunk*m.width)}
		}
		m.dir.Store(&next)
		chunks = next
	}
	off := (int(id) % m.perChunk) * m.width
	copy(chunks[ci].rows[off:off+m.width], row)
	m.length.Store(id + 1) // publish
	return id, nil
}

// Row returns row id as a sub-slice of chunk storage. Rows are immutable
// once committed; callers must not modify the result. Returns nil for
// uncommitted ids.
func (m *chunkMat[T]) Row(id uint32) []T {
	if id >= m.length.Load() {
		return nil
	}
	chunks := *m.dir.Load()
	off := (int(id) % m.perChunk) * m.width
	return chunks[int(id)/m.perChunk].rows[off : off+m.width]
}

// replace swaps in another matrix's contents (snapshot load). Not
// concurrent-safe with readers or the writer.
func (m *chunkMat[T]) replace(fresh *chunkMat[T]) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Bound before backing, matching Row's read order; fresh is
	// quiescent here, so this is for uniformity, not correctness.
	length := fresh.length.Load()
	m.dir.Store(fresh.dir.Load())
	m.length.Store(length)
}
