package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"jdvs/internal/core"
)

// buildPQBitsPair builds two shards over the identical corpus: one exact
// reference, one product-quantized at the requested code bit width.
func buildPQBitsPair(t testing.TB, n, dim, nlists, m, bits int) (exact, quantized *Shard, feats [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	feats = clusteredFeatures(rng, n, dim, 24, 0.25)
	train := make([]float32, 0, min(n, 2000)*dim)
	for i := 0; i < min(n, 2000); i++ {
		train = append(train, feats[i]...)
	}
	mk := func(pqM int) *Shard {
		cfg := Config{Dim: dim, NLists: nlists, DefaultNProbe: 8, SearchWorkers: 1, PQSubvectors: pqM}
		if pqM > 0 {
			cfg.PQBits = bits
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Train(train, 5); err != nil {
			t.Fatal(err)
		}
		if pqM > 0 {
			if err := s.TrainPQ(train, 5); err != nil {
				t.Fatal(err)
			}
		}
		for i, f := range feats {
			a := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://pq4/%d.jpg", i), Category: uint16(i % 4)}
			if _, _, err := s.Insert(a, f); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	return mk(0), mk(m), feats
}

// TestPQRecallGuardrail4Bit is the accuracy gate on the 4-bit fast-scan
// path: recall@10 of the blocked-kernel scan + exact re-rank against the
// exact scan at the same probe count must stay at least 0.95, matching
// the 8-bit guardrail. The 16-centroid subquantizers are coarser, so this
// leans on the deeper bit-width default re-rank (defaultRerankMul4).
func TestPQRecallGuardrail4Bit(t *testing.T) {
	const n, dim, queries = 6000, 64, 60
	exact, quant, feats := buildPQBitsPair(t, n, dim, 32, 16, 4)
	defer quant.Close()
	if !quant.PQEnabled() {
		t.Fatal("quantized shard did not enable PQ")
	}
	if st := quant.Stats(); st.PQBits != 4 {
		t.Fatalf("Stats.PQBits = %d, want 4", st.PQBits)
	}
	rng := rand.New(rand.NewSource(77))
	var hit, want int
	for qi := 0; qi < queries; qi++ {
		base := feats[rng.Intn(n)]
		q := make([]float32, dim)
		for d := range q {
			q[d] = base[d] + float32(rng.NormFloat64()*0.05)
		}
		req := &core.SearchRequest{Feature: q, TopK: 10, NProbe: 8, Category: -1}
		re, err := exact.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[uint32]bool, len(re.Hits))
		for _, h := range re.Hits {
			truth[h.Image.Local] = true
		}
		want += len(re.Hits)
		for _, h := range rq.Hits {
			if truth[h.Image.Local] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(want)
	t.Logf("4-bit fast-scan recall@10 over %d queries: %.4f", queries, recall)
	if recall < 0.95 {
		t.Fatalf("recall@10 = %.4f, want >= 0.95", recall)
	}
}

// TestPQ4SerialParallelEquivalence: the striped 4-bit blocked scan must
// return exactly the serial scan's results — the block kernel, the tail
// scalar path and the threshold skip may not depend on worker count.
func TestPQ4SerialParallelEquivalence(t *testing.T) {
	const n, dim = 3000, 32
	_, quant, feats := buildPQBitsPair(t, n, dim, 16, 8, 4)
	rng := rand.New(rand.NewSource(5))
	for qi := 0; qi < 20; qi++ {
		q := feats[rng.Intn(n)]
		req := &core.SearchRequest{Feature: q, TopK: 15, NProbe: 6, Category: -1}
		quant.SetSearchWorkers(1)
		serial, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		quant.SetSearchWorkers(4)
		parallel, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		quant.SetSearchWorkers(0)
		if len(serial.Hits) != len(parallel.Hits) {
			t.Fatalf("query %d: serial %d hits, parallel %d", qi, len(serial.Hits), len(parallel.Hits))
		}
		for i := range serial.Hits {
			if serial.Hits[i].Image != parallel.Hits[i].Image || serial.Hits[i].Dist != parallel.Hits[i].Dist {
				t.Fatalf("query %d hit %d: serial %+v, parallel %+v", qi, i, serial.Hits[i], parallel.Hits[i])
			}
		}
	}
}

// TestPQ4InsertLockstep: inserts after a 4-bit quantizer is installed
// must append packed codes to the owning list's block storage in slot
// lockstep with the inverted list, and the fresh images must be findable
// through the blocked scan (including from a partially filled tail
// block).
func TestPQ4InsertLockstep(t *testing.T) {
	const n, dim = 1000, 32
	_, quant, _ := buildPQBitsPair(t, n, dim, 16, 8, 4)
	rng := rand.New(rand.NewSource(9))
	fresh := clusteredFeatures(rng, 50, dim, 3, 0.1)
	for i, f := range fresh {
		url := fmt.Sprintf("jfs://pq4-late/%d.jpg", i)
		id, reused, err := quant.Insert(core.Attrs{ProductID: uint64(9000 + i), URL: url}, f)
		if err != nil || reused {
			t.Fatalf("insert %d: id=%d reused=%v err=%v", i, id, reused, err)
		}
		resp, err := quant.Search(&core.SearchRequest{Feature: f, TopK: 1, NProbe: quant.cfg.NLists, Category: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Hits) != 1 || resp.Hits[0].Image.Local != id {
			t.Fatalf("freshly inserted image %d not the nearest to its own feature: %+v", id, resp.Hits)
		}
	}
	st := quant.Stats()
	if st.PQCodes != st.Images {
		t.Fatalf("codes %d out of lockstep with images %d", st.PQCodes, st.Images)
	}
	// Every list's code count matches its inverted length (slot alignment).
	ps := quant.pqState.Load()
	for l, cb := range ps.lists {
		if int(cb.published()) != quant.inv.ListLen(l) {
			t.Fatalf("list %d: %d codes, %d inverted entries", l, cb.published(), quant.inv.ListLen(l))
		}
	}
}

// TestPQ4CodeMemoryHalved: the point of 4-bit codes is half the code
// memory per image. Chunk rounding costs a little, so gate at 0.6× the
// 8-bit heap rather than exactly 0.5×.
func TestPQ4CodeMemoryHalved(t *testing.T) {
	const n, dim, nlists, m = 20000, 32, 16, 8
	_, quant8, _ := buildPQBitsPair(t, n, dim, nlists, m, 8)
	_, quant4, _ := buildPQBitsPair(t, n, dim, nlists, m, 4)
	st8, st4 := quant8.Stats(), quant4.Stats()
	if st8.PQCodeBytes <= 0 || st4.PQCodeBytes <= 0 {
		t.Fatalf("code heap not reported: 8-bit %d, 4-bit %d", st8.PQCodeBytes, st4.PQCodeBytes)
	}
	t.Logf("code heap: 8-bit %d B, 4-bit %d B (%.2fx)", st8.PQCodeBytes, st4.PQCodeBytes,
		float64(st4.PQCodeBytes)/float64(st8.PQCodeBytes))
	if float64(st4.PQCodeBytes) > 0.6*float64(st8.PQCodeBytes) {
		t.Fatalf("4-bit code heap %d B is not ~half the 8-bit %d B", st4.PQCodeBytes, st8.PQCodeBytes)
	}
}

// writeSnapshotV2 emits the v2 snapshot layout — covered offset + always-
// 8-bit PQ section without the bit-width byte — byte-identical to what a
// PR-8-era binary wrote.
func writeSnapshotV2(s *Shard, w io.Writer) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{snapVersionV2}); err != nil {
		return err
	}
	var off [8]byte
	binary.LittleEndian.PutUint64(off[:], uint64(s.coveredOffset.Load()))
	if _, err := w.Write(off[:]); err != nil {
		return err
	}
	if err := writeCodebook(w, s.codebook); err != nil {
		return err
	}
	if _, err := s.fwd.WriteTo(w); err != nil {
		return err
	}
	if _, err := s.inv.WriteTo(w); err != nil {
		return err
	}
	if err := writeBitmap(w, s.valid); err != nil {
		return err
	}
	if _, err := s.feats.writeTo(w); err != nil {
		return err
	}
	ps := s.pqState.Load()
	if ps == nil {
		_, err := w.Write([]byte{0})
		return err
	}
	if _, err := w.Write([]byte{1}); err != nil {
		return err
	}
	if err := writePQCodebook(w, ps.cb); err != nil {
		return err
	}
	_, err := ps.codes.writeTo(w)
	return err
}

// TestSnapshotBackCompatV2: a v2 snapshot (written before the bit-width
// byte existed) must load onto the 8-bit ADC path with identical results
// and its covered offset intact.
func TestSnapshotBackCompatV2(t *testing.T) {
	const n, dim = 1500, 32
	_, quant, feats := buildPQPair(t, n, dim, 16, 8)
	quant.SetCoveredOffset(777)

	var v2 bytes.Buffer
	if err := writeSnapshotV2(quant, &v2); err != nil {
		t.Fatal(err)
	}
	loaded, err := New(quant.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadSnapshot(bytes.NewReader(v2.Bytes())); err != nil {
		t.Fatalf("v2 snapshot failed to load: %v", err)
	}
	if !loaded.PQEnabled() {
		t.Fatal("v2 snapshot lost its quantizer")
	}
	if off := loaded.CoveredOffset(); off != 777 {
		t.Fatalf("covered offset %d, want 777", off)
	}
	st := loaded.Stats()
	if st.PQBits != 8 {
		t.Fatalf("v2 snapshot loaded onto %d-bit path, want 8", st.PQBits)
	}
	if wt := quant.Stats(); st.PQCodes != wt.PQCodes || st.Images != wt.Images {
		t.Fatalf("v2 load stats %+v vs %+v", st, wt)
	}
	for qi := 0; qi < 10; qi++ {
		req := &core.SearchRequest{Feature: feats[qi*11], TopK: 8, NProbe: 8, Category: -1}
		want, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Hits) != len(got.Hits) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			if want.Hits[i].Image != got.Hits[i].Image || want.Hits[i].Dist != got.Hits[i].Dist {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, i, got.Hits[i], want.Hits[i])
			}
		}
	}
}

// TestSnapshotV3RoundTrip4Bit: a 4-bit shard's snapshot must round-trip
// the packed codes through the de-interleaved wire format back into
// blocked storage, with slot alignment validated and identical results.
func TestSnapshotV3RoundTrip4Bit(t *testing.T) {
	const n, dim = 1500, 32
	_, quant, feats := buildPQBitsPair(t, n, dim, 16, 8, 4)
	quant.SetCoveredOffset(4242)

	var buf bytes.Buffer
	if err := quant.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := New(quant.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !loaded.PQEnabled() {
		t.Fatal("4-bit PQ state lost in snapshot round trip")
	}
	if off := loaded.CoveredOffset(); off != 4242 {
		t.Fatalf("covered offset %d, want 4242", off)
	}
	st, wt := loaded.Stats(), quant.Stats()
	if st.PQBits != 4 {
		t.Fatalf("round trip landed on %d-bit path, want 4", st.PQBits)
	}
	if st.PQCodes != wt.PQCodes || st.Images != wt.Images {
		t.Fatalf("round trip stats %+v vs %+v", st, wt)
	}
	for qi := 0; qi < 10; qi++ {
		req := &core.SearchRequest{Feature: feats[qi*7], TopK: 8, NProbe: 8, Category: -1}
		want, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Hits) != len(got.Hits) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			if want.Hits[i].Image != got.Hits[i].Image || want.Hits[i].Dist != got.Hits[i].Dist {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, i, got.Hits[i], want.Hits[i])
			}
		}
	}
	// And the loaded replica keeps accepting real-time inserts in slot
	// lockstep: the fresh image must surface through the blocked scan. (A
	// near-duplicate of feats[0] can tie with the original inside the
	// coarse 4-bit ADC ranking, so ask for a page rather than the single
	// nearest.)
	f := make([]float32, dim)
	for d, v := range feats[0] {
		f[d] = v + 0.01
	}
	id, _, err := loaded.Insert(core.Attrs{ProductID: 424242, URL: "jfs://pq4-rt/0.jpg"}, f)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := loaded.Search(&core.SearchRequest{Feature: f, TopK: 10, NProbe: loaded.cfg.NLists, Category: -1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range resp.Hits {
		found = found || h.Image.Local == id
	}
	if !found {
		t.Fatalf("post-load insert %d not findable: %+v", id, resp.Hits)
	}
	if st := loaded.Stats(); st.PQCodes != st.Images {
		t.Fatalf("post-load insert: codes %d out of lockstep with images %d", st.PQCodes, st.Images)
	}
}

// TestConfigPQBitsValidation: PQBits accepts only 0 (→8), 8 and 4; 4-bit
// codes need an even subquantizer count.
func TestConfigPQBitsValidation(t *testing.T) {
	if _, err := New(Config{Dim: 64, NLists: 4, PQSubvectors: 16, PQBits: 5}); err == nil {
		t.Fatal("PQBits 5 accepted")
	}
	if _, err := New(Config{Dim: 66, NLists: 4, PQSubvectors: 11, PQBits: 4}); err == nil {
		t.Fatal("odd PQSubvectors accepted with PQBits 4")
	}
	s, err := New(Config{Dim: 64, NLists: 4, PQSubvectors: 16})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().PQBits != 8 {
		t.Fatalf("defaulted PQBits = %d, want 8", s.Config().PQBits)
	}
	s4, err := New(Config{Dim: 64, NLists: 4, PQSubvectors: 16, PQBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s4.Config().PQBits != 4 {
		t.Fatalf("PQBits = %d, want 4", s4.Config().PQBits)
	}
}

// TestConcurrent4BitSearchDuringInserts: the blocked 4-bit scan — single
// and batched — is lock-free against the real-time writer. Full blocks go
// through the gather kernel; the partially filled tail block is read
// per published slot, byte-disjoint from the writer's unpublished-slot
// lane writes, which is exactly what the race detector checks here.
func TestConcurrent4BitSearchDuringInserts(t *testing.T) {
	const n, dim = 2000, 32
	_, quant, feats := buildPQBitsPair(t, n, dim, 16, 8, 4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single real-time writer
		defer wg.Done()
		defer close(done)
		wrng := rand.New(rand.NewSource(99))
		fresh := clusteredFeatures(wrng, 1500, dim, 24, 0.25)
		for i, f := range fresh {
			a := core.Attrs{ProductID: uint64(50000 + i), URL: fmt.Sprintf("jfs://pq4-rt/%d.jpg", i), Category: uint16(i % 4)}
			if _, _, err := quant.Insert(a, f); err != nil {
				t.Errorf("rt insert: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-done:
					return
				default:
				}
				if w%2 == 0 {
					q := feats[qrng.Intn(len(feats))]
					if _, err := quant.Search(&core.SearchRequest{Feature: q, TopK: 10, NProbe: 8, Category: -1}); err != nil {
						t.Errorf("search during inserts: %v", err)
						return
					}
				} else {
					reqs := batchRequests(qrng, feats, 4)
					_, errs := quant.SearchBatch(reqs)
					for _, err := range errs {
						if err != nil {
							t.Errorf("batched search during inserts: %v", err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := quant.Stats()
	if st.PQCodes != st.Images {
		t.Fatalf("codes %d out of lockstep with images %d after concurrent inserts", st.PQCodes, st.Images)
	}
}
