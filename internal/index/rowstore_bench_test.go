//go:build linux || darwin

package index

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"jdvs/internal/core"
)

// BenchmarkFeatureStoreRerank tracks the latency cost of tiering raw
// feature rows onto mmap, per commit, in BENCH_searcher.json. Every
// variant runs the full ADC query path (probe → code scan → exact re-rank
// over RerankK raw rows) at the ADC benchmark's operating point; only
// where the re-ranked rows live differs:
//
//   - store=ram: heap chunks (the baseline BenchmarkADCScan measures).
//   - store=mmap/pages=warm: spill-file rows resident in the page cache —
//     the steady state, which must stay within 15% of ram.
//   - store=mmap/pages=cold: the store's pages are dropped before every
//     query (MADV_DONTNEED), so each re-rank row faults back in — the
//     worst case a memory-pressured shard pays.
//
// It also reports featheap-bytes: the Go-heap cost of feature storage per
// variant — the capacity axis of the same trade.
func BenchmarkFeatureStoreRerank(b *testing.B) {
	const n, dim, m = 100_000, 64, 16
	rng := rand.New(rand.NewSource(41))
	feats := clusteredFeatures(rng, n, dim, 64, 0.25)
	train := make([]float32, 0, 2000*dim)
	for i := 0; i < 2000; i++ {
		train = append(train, feats[i]...)
	}
	build := func(store string) *Shard {
		s, err := New(Config{
			Dim: dim, NLists: 64, DefaultNProbe: 8, SearchWorkers: 1,
			PQSubvectors: m, FeatureStore: store, SpillDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Train(train, 1); err != nil {
			b.Fatal(err)
		}
		if err := s.TrainPQ(train, 1); err != nil {
			b.Fatal(err)
		}
		for i, f := range feats {
			a := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://tier/%d.jpg", i)}
			if _, _, err := s.Insert(a, f); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	shards := map[string]*Shard{
		FeatureStoreRAM:  build(FeatureStoreRAM),
		FeatureStoreMmap: build(FeatureStoreMmap),
	}
	defer shards[FeatureStoreRAM].Close()
	defer shards[FeatureStoreMmap].Close()

	run := func(b *testing.B, s *Shard, dropEach bool) {
		b.Helper()
		var mmapStore *mmapMat
		if dropEach {
			mmapStore = s.feats.(*mmapMat)
		}
		b.ReportAllocs()
		b.ReportMetric(float64(s.Stats().FeatureHeapBytes), "featheap-bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if dropEach {
				if err := mmapStore.dropPages(); err != nil {
					b.Fatal(err)
				}
			}
			req := &core.SearchRequest{Feature: feats[(i*37)%n], TopK: 10, NProbe: 8, Category: -1}
			if _, err := s.Search(req); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("store=ram", func(b *testing.B) { run(b, shards[FeatureStoreRAM], false) })
	b.Run("store=mmap/pages=warm", func(b *testing.B) { run(b, shards[FeatureStoreMmap], false) })
	b.Run("store=mmap/pages=cold", func(b *testing.B) { run(b, shards[FeatureStoreMmap], true) })
	runtime.KeepAlive(shards)
}
