//go:build linux || darwin

package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"jdvs/internal/core"
)

// buildStorePair builds two shards over the identical corpus — one per
// feature store — with the same codebooks, so every search must agree
// byte for byte.
func buildStorePair(t testing.TB, n, dim, nlists, m int) (ram, mmapped *Shard, feats [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(53))
	feats = clusteredFeatures(rng, n, dim, 24, 0.25)
	sample := min(n, 2000)
	train := make([]float32, 0, sample*dim)
	for i := 0; i < sample; i++ {
		train = append(train, feats[i]...)
	}
	mk := func(store string) *Shard {
		s, err := New(Config{
			Dim: dim, NLists: nlists, DefaultNProbe: 8, SearchWorkers: 1,
			PQSubvectors: m, FeatureStore: store, SpillDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Train(train, 5); err != nil {
			t.Fatal(err)
		}
		if m > 0 {
			if err := s.TrainPQ(train, 5); err != nil {
				t.Fatal(err)
			}
		}
		for i, f := range feats {
			a := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://store/%d.jpg", i), Category: uint16(i % 4)}
			if _, _, err := s.Insert(a, f); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	ram, mmapped = mk(FeatureStoreRAM), mk(FeatureStoreMmap)
	return ram, mmapped, feats
}

// TestFeatureStoreParity: exact-path and ADC-path responses and snapshot
// streams must be byte-identical across the RAM and mmap stores — tiering
// can never change results.
func TestFeatureStoreParity(t *testing.T) {
	for _, m := range []int{0, 8} { // exact path, ADC path
		t.Run(fmt.Sprintf("pqM=%d", m), func(t *testing.T) {
			const n, dim = 4000, 32
			ram, mm, feats := buildStorePair(t, n, dim, 16, m)
			defer ram.Close()
			defer mm.Close()
			rng := rand.New(rand.NewSource(3))
			for qi := 0; qi < 40; qi++ {
				base := feats[rng.Intn(n)]
				q := make([]float32, dim)
				for d := range q {
					q[d] = base[d] + float32(rng.NormFloat64()*0.05)
				}
				req := &core.SearchRequest{Feature: q, TopK: 10, NProbe: 8, Category: -1}
				rr, err := ram.Search(req)
				if err != nil {
					t.Fatal(err)
				}
				rm, err := mm.Search(req)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(core.EncodeSearchResponse(rr), core.EncodeSearchResponse(rm)) {
					t.Fatalf("query %d: responses differ across stores", qi)
				}
			}
			var bufRAM, bufMM bytes.Buffer
			if err := ram.WriteSnapshot(&bufRAM); err != nil {
				t.Fatal(err)
			}
			if err := mm.WriteSnapshot(&bufMM); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bufRAM.Bytes(), bufMM.Bytes()) {
				t.Fatal("snapshot streams differ across stores")
			}
		})
	}
}

// TestFeatureStoreSnapshotCrossLoad: a snapshot written by either store
// loads into a shard running the other — the wire format is one format,
// and the mmap load maps the feature section instead of copying it into
// heap chunks.
func TestFeatureStoreSnapshotCrossLoad(t *testing.T) {
	const n, dim = 3000, 32
	ram, mm, feats := buildStorePair(t, n, dim, 16, 8)
	defer ram.Close()
	defer mm.Close()
	cross := func(src *Shard, dstStore string) {
		t.Helper()
		var buf bytes.Buffer
		if err := src.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		cfg := src.Config()
		cfg.FeatureStore = dstStore
		cfg.SpillDir = t.TempDir()
		dst, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer dst.Close()
		if err := dst.LoadSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		req := &core.SearchRequest{Feature: feats[42], TopK: 10, NProbe: 8, Category: -1}
		want, err := src.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(core.EncodeSearchResponse(want), core.EncodeSearchResponse(got)) {
			t.Fatalf("cross-load %s: responses differ", dstStore)
		}
		// The loaded shard keeps taking real-time appends.
		extra := append([]float32(nil), feats[0]...)
		extra[0] += 3
		if _, _, err := dst.Insert(core.Attrs{ProductID: 1 << 40, URL: "jfs://store/fresh.jpg"}, extra); err != nil {
			t.Fatal(err)
		}
	}
	cross(ram, FeatureStoreMmap)
	cross(mm, FeatureStoreRAM)
}

// TestMmapStoreGrowth: appends crossing mapping-growth boundaries stay
// readable, and row slices handed out before a growth keep reading the
// same values afterwards (retired mappings stay mapped).
func TestMmapStoreGrowth(t *testing.T) {
	const dim = 8
	st, err := newMmapMat(dim, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := st.(*mmapMat)
	defer m.Close()
	rows := mmapMinRows*2 + 77 // forces at least one remap
	mk := func(i int) []float32 {
		f := make([]float32, dim)
		for d := range f {
			f[d] = float32(i*dim + d)
		}
		return f
	}
	var early []float32
	for i := 0; i < rows; i++ {
		id, err := m.Append(mk(i))
		if err != nil {
			t.Fatal(err)
		}
		if id != uint32(i) {
			t.Fatalf("id %d, want %d", id, i)
		}
		if i == 5 {
			early = m.Row(5)
		}
	}
	if m.Len() != rows {
		t.Fatalf("Len = %d, want %d", m.Len(), rows)
	}
	for _, i := range []int{0, 5, mmapMinRows - 1, mmapMinRows, rows - 1} {
		if !rowsEqual(m.Row(uint32(i)), mk(i)) {
			t.Fatalf("row %d corrupted after growth", i)
		}
	}
	if !rowsEqual(early, mk(5)) {
		t.Fatal("pre-growth row slice no longer readable")
	}
	if m.Row(uint32(rows)) != nil {
		t.Fatal("uncommitted row readable")
	}
	// Close is idempotent and Append after Close fails cleanly.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(mk(0)); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestFeatureStoreCapacity is the tiering acceptance gate at the issue's
// operating point (100k images, dim 64, M=16): the mmap store's feature
// heap must be at most half the RAM store's (it is ~zero — rows live in
// the page cache), with search results identical. Under -short a scaled
// corpus proves the same ratio.
func TestFeatureStoreCapacity(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 20_000
	}
	const dim, m = 64, 16
	ram, mm, feats := buildStorePair(t, n, dim, 64, m)
	defer ram.Close()
	defer mm.Close()

	ramHeap := ram.Stats().FeatureHeapBytes
	mmHeap := mm.Stats().FeatureHeapBytes
	t.Logf("feature heap at %d images, dim %d, M=%d: ram=%d bytes (%.1f MiB), mmap=%d bytes",
		n, dim, m, ramHeap, float64(ramHeap)/(1<<20), mmHeap)
	if minWant := int64(n) * dim * 4; ramHeap < minWant {
		t.Fatalf("ram store accounts %d bytes, want >= %d", ramHeap, minWant)
	}
	if mmHeap*2 > ramHeap {
		t.Fatalf("mmap feature heap %d > 50%% of ram store's %d", mmHeap, ramHeap)
	}
	for qi := 0; qi < 10; qi++ {
		req := &core.SearchRequest{Feature: feats[(qi*997)%n], TopK: 10, NProbe: 8, Category: -1}
		rr, err := ram.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := mm.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(core.EncodeSearchResponse(rr), core.EncodeSearchResponse(rm)) {
			t.Fatalf("query %d: responses differ across stores", qi)
		}
	}
}

// TestPQRecallGuardrailMmap re-runs the recall@10 >= 0.95 accuracy gate
// with the quantized shard's rows tiered onto mmap, so feature tiering
// can never silently change ADC results.
func TestPQRecallGuardrailMmap(t *testing.T) {
	runPQRecallGuardrail(t, FeatureStoreMmap)
}
