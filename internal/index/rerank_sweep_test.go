package index

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"jdvs/internal/core"
)

// TestRerankSweep is the measured tuning pass behind the per-bit-width
// default re-rank multipliers (defaultRerankMul8 / defaultRerankMul4): it
// sweeps the ADC over-fetch depth at both code widths over the benchmark
// corpus (100k images, dim 64, nprobe 8, k=10) and prints recall@10
// against the exact scan plus mean query latency at each depth. The sweep
// table lives in docs/OPERATIONS.md; re-run it with
//
//	JDVS_RERANK_SWEEP=1 go test ./internal/index/ -run TestRerankSweep -v
//
// after changing the kernels or the quantizer. Gated behind an env var:
// it builds three 100k-image shards and takes minutes, which is tuning
// work, not regression coverage.
func TestRerankSweep(t *testing.T) {
	if os.Getenv("JDVS_RERANK_SWEEP") == "" {
		t.Skip("set JDVS_RERANK_SWEEP=1 to run the re-rank depth sweep")
	}
	// 512 visual motifs over 100k images ≈ 195 near-variants per motif —
	// the e-commerce shape (hot products re-share near-identical hero
	// images) and the regime where re-rank depth is a real trade: the true
	// neighbours sit inside the query's motif, so recall climbs as RerankK
	// digs through the motif's variants and saturates once it covers them.
	// (The nc=64 benchmark corpus packs ~1,500 variants per motif; there
	// no practical depth can cover a motif and every depth looks equally
	// bad — density tuning, not depth tuning.) PQ trains on 10k rows, the
	// production default (jdvsd -pq-train-sample).
	const n, dim, m, nlists, k, nprobe, queries = 100_000, 64, 16, 64, 10, 8, 200
	const trainRows = 10_000
	rng := rand.New(rand.NewSource(41))
	feats := clusteredFeatures(rng, n, dim, 512, 0.25)
	train := make([]float32, 0, trainRows*dim)
	for i := 0; i < trainRows; i++ {
		train = append(train, feats[i]...)
	}
	build := func(pqM, bits, rerankK int) *Shard {
		s, err := New(Config{
			Dim: dim, NLists: nlists, DefaultNProbe: nprobe, SearchWorkers: 1,
			PQSubvectors: pqM, PQBits: bits, RerankK: rerankK,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Train(train, 1); err != nil {
			t.Fatal(err)
		}
		if pqM > 0 {
			if err := s.TrainPQ(train, 1); err != nil {
				t.Fatal(err)
			}
		}
		for i, f := range feats {
			a := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://sweep/%d.jpg", i)}
			if _, _, err := s.Insert(a, f); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}

	// Queries follow the guardrail convention: an indexed image re-shot
	// with small jitter, not the stored row itself.
	qfeats := make([][]float32, queries)
	for q := range qfeats {
		base := feats[(q*499)%n]
		f := make([]float32, dim)
		for d := range f {
			f[d] = base[d] + float32(rng.NormFloat64()*0.05)
		}
		qfeats[q] = f
	}

	// Ground truth: the exact scan over the same probe set, so the sweep
	// isolates quantization loss from IVF probe loss. Two recall notions:
	// identity recall (the exact top-10's image ids) and tie-aware recall
	// (a hit counts if its exact re-ranked distance is within the true
	// 10th-nearest distance, so a returned neighbour exactly as close as
	// the "true" one still counts).
	exact := build(0, 0, 0)
	truthIDs := make([][]uint64, queries)
	truthRadius := make([]float32, queries)
	for q := 0; q < queries; q++ {
		req := &core.SearchRequest{Feature: qfeats[q], TopK: k, NProbe: nprobe, Category: -1}
		resp, err := exact.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, 0, len(resp.Hits))
		var radius float32
		for _, h := range resp.Hits {
			ids = append(ids, uint64(h.Image.Local))
			if h.Dist > radius {
				radius = h.Dist
			}
		}
		truthIDs[q] = ids
		truthRadius[q] = radius
	}

	for _, bits := range []int{8, 4} {
		t.Logf("bits=%d  (RerankK = mul x k, k=%d, nprobe=%d, %d queries)", bits, k, nprobe, queries)
		for _, mul := range []int{1, 2, 5, 10, 20, 30, 50, 100} {
			s := build(m, bits, mul*k)
			var idHits, tieHits, want int
			start := time.Now()
			for q := 0; q < queries; q++ {
				req := &core.SearchRequest{Feature: qfeats[q], TopK: k, NProbe: nprobe, Category: -1}
				resp, err := s.Search(req)
				if err != nil {
					t.Fatal(err)
				}
				got := make(map[uint64]bool, len(resp.Hits))
				for _, h := range resp.Hits {
					got[uint64(h.Image.Local)] = true
					if h.Dist <= truthRadius[q]*(1+1e-6) {
						tieHits++
					}
				}
				for _, id := range truthIDs[q] {
					want++
					if got[id] {
						idHits++
					}
				}
			}
			mean := time.Since(start) / queries
			t.Logf("  mul=%-3d recall@10=%.4f  identity=%.4f  mean=%s",
				mul, float64(tieHits)/float64(want), float64(idHits)/float64(want), mean.Round(time.Microsecond))
		}
	}
}
