package index

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"jdvs/internal/pq"
)

// codeBlocks is one inverted list's packed 4-bit PQ codes in the fast-scan
// blocked layout (pq/kernel_generic.go): codes live in groups of
// pq.BlockCodes, interleaved by packed-byte lane, so a scan streams whole
// blocks through pq.ScanBlock4 instead of chasing per-candidate code rows.
// Unlike the 8-bit codeMat — which is keyed by image ID — this storage is
// keyed by *list position*: slot i holds the code of the i-th id the
// owning inverted list yields, which is what lets the scan pair a block of
// distances with a block of ids without any id→code indirection. The
// single real-time writer appends a code here *before* the matching
// inverted-list append publishes the id (appendRow), so every scannable id
// has a committed code at its slot.
//
// Lock-free reader contract, same shape as chunkMat: bytes are written
// into chunk storage first, then the length counter publishes the slot.
// Readers load the length before the chunk directory and only touch bytes
// of published slots — full blocks through the gather kernel, the
// partially filled tail block through the per-slot scalar path, which
// reads only lane bytes of slots below the loaded length. Chunks are
// append-only and never moved, so a reader's directory snapshot stays
// valid for the whole scan.
type codeBlocks struct {
	mb     int // packed bytes per code (M/2)
	dir    atomic.Pointer[[][]byte]
	length atomic.Uint32
}

// blocksPerChunk sizes codeBlocks chunks: 32 blocks = 1024 codes,
// 1024×mb bytes per chunk (8 KiB at mb=8). Chunks are per inverted list,
// so they are kept small enough that the rounding slack across many
// lists stays well below the code bytes themselves — otherwise the
// 4-bit mode's halved code memory would be eaten by chunk padding.
const blocksPerChunk = 32

func newCodeBlocks(mb int) *codeBlocks {
	cb := &codeBlocks{mb: mb}
	dir := [][]byte{}
	cb.dir.Store(&dir)
	return cb
}

// published returns the number of committed codes.
func (cb *codeBlocks) published() uint32 { return cb.length.Load() }

// block returns the mb×BlockCodes bytes of block b. The caller must only
// read lane bytes of slots it observed as published.
func (cb *codeBlocks) block(b int) []byte {
	chunks := *cb.dir.Load()
	base := (b % blocksPerChunk) * cb.mb * pq.BlockCodes
	return chunks[b/blocksPerChunk][base : base+cb.mb*pq.BlockCodes]
}

// append commits one packed code (mb bytes) at the next slot. Single
// writer only. The slot's lane bytes are written before the length store
// publishes them, and a fresh chunk's directory publishes before the
// length does, so a reader that observes the new length also observes the
// chunk and the bytes.
func (cb *codeBlocks) append(code []byte) {
	i := cb.length.Load()
	b := int(i) / pq.BlockCodes
	chunks := *cb.dir.Load()
	if ci := b / blocksPerChunk; ci >= len(chunks) {
		next := make([][]byte, ci+1)
		copy(next, chunks)
		for j := len(chunks); j <= ci; j++ {
			next[j] = make([]byte, blocksPerChunk*pq.BlockCodes*cb.mb)
		}
		cb.dir.Store(&next)
		chunks = next
	}
	base := (b % blocksPerChunk) * cb.mb * pq.BlockCodes
	blk := chunks[b/blocksPerChunk][base : base+cb.mb*pq.BlockCodes]
	slot := int(i) % pq.BlockCodes
	for j := 0; j < cb.mb; j++ {
		blk[j*pq.BlockCodes+slot] = code[j]
	}
	cb.length.Store(i + 1) // publish
}

// extract copies the packed code at slot (which must be published) into
// out (mb bytes) — the de-interleaving inverse of append, used by the
// snapshot writer.
func (cb *codeBlocks) extract(slot uint32, out []byte) {
	blk := cb.block(int(slot) / pq.BlockCodes)
	s := int(slot) % pq.BlockCodes
	for j := 0; j < cb.mb; j++ {
		out[j] = blk[j*pq.BlockCodes+s]
	}
}

// heapBytes reports chunk storage held (chunk-rounded).
func (cb *codeBlocks) heapBytes() int64 {
	n := int64(0)
	for _, c := range *cb.dir.Load() {
		n += int64(len(c))
	}
	return n
}

// writeCodeBlockLists serialises every list's packed codes, de-interleaved
// to the portable per-code layout: [4B nlists] then per list
// [4B count][count×mb bytes]. The blocked interleaving is rebuilt on load,
// so the wire format stays independent of pq.BlockCodes.
func writeCodeBlockLists(w io.Writer, lists []*codeBlocks, mb int) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(lists)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 4+blocksPerChunk*pq.BlockCodes*mb)
	for _, cb := range lists {
		n := cb.published()
		buf = binary.LittleEndian.AppendUint32(buf[:0], n)
		for i := uint32(0); i < n; i++ {
			at := len(buf)
			buf = append(buf, make([]byte, mb)...)
			cb.extract(i, buf[at:at+mb])
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readCodeBlockLists deserialises writeCodeBlockLists output into fresh
// per-list block storage.
func readCodeBlockLists(r io.Reader, nlists, mb int) ([]*codeBlocks, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if got := int(binary.LittleEndian.Uint32(hdr[:])); got != nlists {
		return nil, fmt.Errorf("index: snapshot pq code lists %d, shard NLists %d", got, nlists)
	}
	lists := make([]*codeBlocks, nlists)
	code := make([]byte, mb)
	for l := range lists {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		cb := newCodeBlocks(mb)
		for i := uint32(0); i < n; i++ {
			if _, err := io.ReadFull(r, code); err != nil {
				return nil, err
			}
			cb.append(code)
		}
		lists[l] = cb
	}
	return lists, nil
}
