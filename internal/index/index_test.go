package index

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"jdvs/internal/core"
)

const testDim = 16

// testShard builds a trained shard over nClusters synthetic clusters.
func testShard(t *testing.T, nLists int) (*Shard, *rand.Rand) {
	t.Helper()
	s, err := New(Config{Dim: testDim, NLists: nLists, DefaultNProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	train := make([]float32, 0, 500*testDim)
	for i := 0; i < 500; i++ {
		for d := 0; d < testDim; d++ {
			train = append(train, float32(rng.NormFloat64()))
		}
	}
	if err := s.Train(train, 1); err != nil {
		t.Fatal(err)
	}
	return s, rng
}

func randFeature(rng *rand.Rand) []float32 {
	f := make([]float32, testDim)
	for i := range f {
		f[i] = float32(rng.NormFloat64())
	}
	return f
}

func attrsFor(i int) core.Attrs {
	return core.Attrs{
		ProductID:  uint64(i/2 + 1), // two images per product
		Sales:      uint32(i),
		Praise:     uint32(i % 101),
		PriceCents: uint32(1000 + i),
		Category:   uint16(i % 4),
		URL:        fmt.Sprintf("jfs://img/p%d/%d.jpg", i/2+1, i%2),
	}
}

func TestInsertRequiresTraining(t *testing.T) {
	s, err := New(Config{Dim: testDim, NLists: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Insert(core.Attrs{URL: "u"}, make([]float32, testDim))
	if !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if _, err := s.Search(&core.SearchRequest{Feature: make([]float32, testDim)}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("search err = %v, want ErrNotTrained", err)
	}
}

func TestInsertValidation(t *testing.T) {
	s, rng := testShard(t, 8)
	if _, _, err := s.Insert(core.Attrs{}, randFeature(rng)); err == nil {
		t.Fatal("insert without URL accepted")
	}
	if _, _, err := s.Insert(core.Attrs{URL: "u"}, make([]float32, 3)); err == nil {
		t.Fatal("wrong-dim feature accepted")
	}
}

func TestInsertSearchRoundtrip(t *testing.T) {
	s, rng := testShard(t, 8)
	feats := make([][]float32, 40)
	for i := range feats {
		feats[i] = randFeature(rng)
		id, reused, err := s.Insert(attrsFor(i), feats[i])
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if reused {
			t.Fatalf("insert %d reported reuse", i)
		}
		if id != uint32(i) {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	// Searching with an indexed feature must return that exact image first
	// (distance 0) when probing all lists.
	for i := 0; i < 40; i += 7 {
		resp, err := s.Search(&core.SearchRequest{Feature: feats[i], TopK: 3, NProbe: 8, Category: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Hits) == 0 {
			t.Fatalf("no hits for indexed feature %d", i)
		}
		if resp.Hits[0].Image.Local != uint32(i) || resp.Hits[0].Dist != 0 {
			t.Fatalf("self-query %d returned %+v", i, resp.Hits[0])
		}
		want := attrsFor(i)
		h := resp.Hits[0]
		if h.ProductID != want.ProductID || h.URL != want.URL || h.Sales != want.Sales {
			t.Fatalf("hit attrs %+v, want %+v", h, want)
		}
	}
}

func TestReuseOnReinsert(t *testing.T) {
	s, rng := testShard(t, 8)
	a := attrsFor(0)
	f := randFeature(rng)
	id1, _, err := s.Insert(a, f)
	if err != nil {
		t.Fatal(err)
	}
	// Re-insert same URL with updated attrs and nil feature: must reuse.
	a2 := a
	a2.Sales = 777777
	id2, reused, err := s.Insert(a2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reused || id2 != id1 {
		t.Fatalf("reinsert: id=%d reused=%v", id2, reused)
	}
	got, _ := s.Attrs(id1)
	if got.Sales != 777777 {
		t.Fatalf("attrs not refreshed on reuse: %+v", got)
	}
	st := s.Stats()
	if st.Images != 1 || st.Inserts != 2 || st.ReusedInserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemoveAndRevalidate(t *testing.T) {
	s, rng := testShard(t, 8)
	f := randFeature(rng)
	a := attrsFor(0)
	id, _, err := s.Insert(a, f)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.RemoveProduct(a.ProductID)
	if err != nil || n != 1 {
		t.Fatalf("RemoveProduct = %d, %v", n, err)
	}
	if s.Valid(id) {
		t.Fatal("image still valid after removal")
	}
	// Deleted images are excluded from search.
	resp, err := s.Search(&core.SearchRequest{Feature: f, TopK: 5, NProbe: 8, Category: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range resp.Hits {
		if h.Image.Local == id {
			t.Fatal("deleted image returned by search")
		}
	}
	// Re-add: validity flips back, same record.
	id2, reused, err := s.Insert(a, nil)
	if err != nil || !reused || id2 != id {
		t.Fatalf("re-add: id=%d reused=%v err=%v", id2, reused, err)
	}
	if !s.Valid(id) {
		t.Fatal("image invalid after re-add")
	}
	resp, _ = s.Search(&core.SearchRequest{Feature: f, TopK: 1, NProbe: 8, Category: -1})
	if len(resp.Hits) != 1 || resp.Hits[0].Image.Local != id {
		t.Fatalf("re-added image not searchable: %+v", resp.Hits)
	}
}

func TestRemoveUnknownProduct(t *testing.T) {
	s, _ := testShard(t, 8)
	if _, err := s.RemoveProduct(12345); !errors.Is(err, ErrUnknownProduct) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.UpdateAttrs(12345, 1, 2, 3, 0); !errors.Is(err, ErrUnknownProduct) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.RemoveImageURL("nope"); !errors.Is(err, ErrUnknownProduct) {
		t.Fatalf("err = %v", err)
	}
	if err := s.UpdateAttrsURL("nope", 1, 2, 3, 0); !errors.Is(err, ErrUnknownProduct) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateAttrs(t *testing.T) {
	s, rng := testShard(t, 8)
	a0, a1 := attrsFor(0), attrsFor(1) // same product, two images
	if _, _, err := s.Insert(a0, randFeature(rng)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Insert(a1, randFeature(rng)); err != nil {
		t.Fatal(err)
	}
	n, err := s.UpdateAttrs(a0.ProductID, 500, 60, 700, 9)
	if err != nil || n != 2 {
		t.Fatalf("UpdateAttrs = %d, %v", n, err)
	}
	for id := uint32(0); id < 2; id++ {
		got, _ := s.Attrs(id)
		if got.Sales != 500 || got.Praise != 60 || got.PriceCents != 700 || got.Category != 9 {
			t.Fatalf("image %d attrs = %+v", id, got)
		}
	}
	// URL-level update touches only one image.
	if err := s.UpdateAttrsURL(a0.URL, 1, 2, 3, 4); err != nil {
		t.Fatal(err)
	}
	g0, _ := s.Attrs(0)
	g1, _ := s.Attrs(1)
	if g0.Sales != 1 || g1.Sales != 500 || g0.Category != 4 || g1.Category != 9 {
		t.Fatalf("URL-level update leaked: %+v %+v", g0, g1)
	}
}

func TestCategoryScopedSearch(t *testing.T) {
	s, rng := testShard(t, 8)
	for i := 0; i < 40; i++ {
		if _, _, err := s.Insert(attrsFor(i), randFeature(rng)); err != nil {
			t.Fatal(err)
		}
	}
	q := randFeature(rng)
	resp, err := s.Search(&core.SearchRequest{Feature: q, TopK: 20, NProbe: 8, Category: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("category scope returned nothing")
	}
	for _, h := range resp.Hits {
		if h.Category != 2 {
			t.Fatalf("hit outside category scope: %+v", h)
		}
	}
}

func TestSearchDefaults(t *testing.T) {
	s, rng := testShard(t, 8)
	for i := 0; i < 30; i++ {
		if _, _, err := s.Insert(attrsFor(i), randFeature(rng)); err != nil {
			t.Fatal(err)
		}
	}
	// TopK and NProbe default when zero.
	resp, err := s.Search(&core.SearchRequest{Feature: randFeature(rng), Category: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 || len(resp.Hits) > 10 {
		t.Fatalf("default search returned %d hits", len(resp.Hits))
	}
	if resp.Probed != 4 { // DefaultNProbe from config
		t.Fatalf("probed %d lists, want 4", resp.Probed)
	}
	if _, err := s.Search(&core.SearchRequest{Feature: make([]float32, 3)}); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
}

// TestRecallNProbe: recall@1 for self-queries must increase with nprobe
// and reach 1.0 at full probe width.
func TestRecallNProbe(t *testing.T) {
	s, rng := testShard(t, 16)
	const n = 300
	feats := make([][]float32, n)
	for i := range feats {
		feats[i] = randFeature(rng)
		a := attrsFor(i)
		a.URL = fmt.Sprintf("u-%d", i) // distinct URLs
		a.ProductID = uint64(i + 1)
		if _, _, err := s.Insert(a, feats[i]); err != nil {
			t.Fatal(err)
		}
	}
	recallAt := func(nprobe int) float64 {
		hits := 0
		for i := 0; i < n; i++ {
			resp, err := s.Search(&core.SearchRequest{Feature: feats[i], TopK: 1, NProbe: nprobe, Category: -1})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Hits) > 0 && resp.Hits[0].Image.Local == uint32(i) {
				hits++
			}
		}
		return float64(hits) / n
	}
	r1, rFull := recallAt(1), recallAt(16)
	if rFull != 1.0 {
		t.Fatalf("full-probe recall = %v, want 1.0", rFull)
	}
	if r1 > rFull {
		t.Fatalf("recall@nprobe=1 (%v) exceeds full probe (%v)", r1, rFull)
	}
	// nprobe=1 must still find the exact match most of the time (the query
	// IS the indexed vector, so its nearest centroid is the right list).
	if r1 < 0.99 {
		t.Fatalf("self-query recall at nprobe=1 = %v, want >= 0.99", r1)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	s, rng := testShard(t, 8)
	feats := make([][]float32, 60)
	for i := range feats {
		feats[i] = randFeature(rng)
		if _, _, err := s.Insert(attrsFor(i), feats[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.RemoveProduct(attrsFor(4).ProductID) // some invalid bits
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	dup, err := New(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := dup.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	// Same contents: self-queries, attributes, validity, reuse tables.
	for i := 0; i < 60; i += 11 {
		want, _ := s.Attrs(uint32(i))
		got, ok := dup.Attrs(uint32(i))
		if !ok || got != want {
			t.Fatalf("attrs %d: %+v vs %+v", i, got, want)
		}
		if s.Valid(uint32(i)) != dup.Valid(uint32(i)) {
			t.Fatalf("validity %d differs", i)
		}
	}
	if !dup.HasURL(attrsFor(3).URL) {
		t.Fatal("byURL table not rebuilt")
	}
	if got := dup.ProductImages(attrsFor(0).ProductID); len(got) != 2 {
		t.Fatalf("byProduct table not rebuilt: %v", got)
	}
	resp, err := dup.Search(&core.SearchRequest{Feature: feats[10], TopK: 1, NProbe: 8, Category: -1})
	if err != nil || len(resp.Hits) == 0 || resp.Hits[0].Image.Local != 10 {
		t.Fatalf("snapshot search broken: %+v, %v", resp, err)
	}
	// Deleted product remains deleted.
	resp, _ = dup.Search(&core.SearchRequest{Feature: feats[8], TopK: 60, NProbe: 8, Category: -1})
	for _, h := range resp.Hits {
		if h.ProductID == attrsFor(4).ProductID {
			t.Fatal("deleted product resurrected by snapshot")
		}
	}
}

func TestLoadSnapshotCorrupt(t *testing.T) {
	s, rng := testShard(t, 4)
	if _, _, err := s.Insert(attrsFor(0), randFeature(rng)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 9, buf.Len() / 2, buf.Len() - 1} {
		dup, _ := New(s.Config())
		if err := dup.LoadSnapshot(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
	// Bad magic.
	dup, _ := New(s.Config())
	bad := append([]byte("NOTMAGIC!"), buf.Bytes()[9:]...)
	if err := dup.LoadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

// TestConcurrentSearchDuringRealtimeOps is the shard-level version of the
// paper's search/update concurrency claim. Run with -race.
func TestConcurrentSearchDuringRealtimeOps(t *testing.T) {
	s, rng := testShard(t, 8)
	const initial = 200
	feats := make([][]float32, initial)
	for i := range feats {
		feats[i] = randFeature(rng)
		if _, _, err := s.Insert(attrsFor(i), feats[i]); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	// Single writer: mixed inserts, removals, re-adds, attr updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		wrng := rand.New(rand.NewSource(99))
		for i := 0; i < 3000; i++ {
			switch wrng.Intn(4) {
			case 0:
				a := core.Attrs{
					ProductID: uint64(1000 + i),
					URL:       fmt.Sprintf("rt-%d", i),
					Category:  uint16(i % 4),
				}
				if _, _, err := s.Insert(a, randFeature(wrng)); err != nil {
					t.Errorf("rt insert: %v", err)
					return
				}
			case 1:
				_, _ = s.RemoveProduct(uint64(wrng.Intn(initial/2) + 1))
			case 2:
				a := attrsFor(wrng.Intn(initial))
				if _, _, err := s.Insert(a, nil); err != nil {
					t.Errorf("rt re-add: %v", err)
					return
				}
			case 3:
				_, _ = s.UpdateAttrs(uint64(wrng.Intn(initial/2)+1), uint32(i), 1, 2, uint16(i%4))
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := feats[qrng.Intn(len(feats))]
				resp, err := s.Search(&core.SearchRequest{Feature: q, TopK: 10, NProbe: 8, Category: -1})
				if err != nil {
					t.Errorf("search during rt ops: %v", err)
					return
				}
				for _, h := range resp.Hits {
					if h.URL == "" {
						t.Error("hit with empty URL during rt ops")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSearchSerialParallelEquivalence pins the tentpole contract: for any
// worker count, Search returns exactly the hits of the serial scan, across
// probe widths, result sizes, category scoping and deletions.
func TestSearchSerialParallelEquivalence(t *testing.T) {
	s, rng := testShard(t, 32)
	configuredWorkers := s.SearchWorkers() // before any runtime override
	const n = 1500
	for i := 0; i < n; i++ {
		if _, _, err := s.Insert(attrsFor(i), randFeature(rng)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a slice of products so validity filtering is exercised too.
	for pid := uint64(1); pid <= 100; pid += 3 {
		if _, err := s.RemoveProduct(pid); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([][]float32, 10)
	for i := range queries {
		queries[i] = randFeature(rng)
	}
	for _, nprobe := range []int{1, 4, 8, 16, 32} {
		for _, k := range []int{1, 10, 40} {
			for _, category := range []int32{-1, 2} {
				// Serial reference per query, then every parallel width
				// must reproduce it exactly.
				serial := make([]*core.SearchResponse, len(queries))
				s.SetSearchWorkers(1)
				for qi, q := range queries {
					resp, err := s.Search(&core.SearchRequest{Feature: q, TopK: k, NProbe: nprobe, Category: category})
					if err != nil {
						t.Fatal(err)
					}
					serial[qi] = resp
				}
				for _, workers := range []int{2, 3, 4, 7} {
					s.SetSearchWorkers(workers)
					for qi, q := range queries {
						got, err := s.Search(&core.SearchRequest{Feature: q, TopK: k, NProbe: nprobe, Category: category})
						if err != nil {
							t.Fatal(err)
						}
						want := serial[qi]
						if len(got.Hits) != len(want.Hits) || got.Scanned != want.Scanned || got.Probed != want.Probed {
							t.Fatalf("nprobe=%d k=%d cat=%d workers=%d query=%d: shape %d/%d/%d, serial %d/%d/%d",
								nprobe, k, category, workers, qi,
								len(got.Hits), got.Scanned, got.Probed,
								len(want.Hits), want.Scanned, want.Probed)
						}
						for i := range got.Hits {
							if got.Hits[i] != want.Hits[i] {
								t.Fatalf("nprobe=%d k=%d cat=%d workers=%d query=%d hit %d: %+v, serial %+v",
									nprobe, k, category, workers, qi, i, got.Hits[i], want.Hits[i])
							}
						}
					}
				}
			}
		}
	}
	s.SetSearchWorkers(0) // restore configured default
	if got := s.SearchWorkers(); got != configuredWorkers {
		t.Fatalf("SetSearchWorkers(0) restored %d, want configured %d", got, configuredWorkers)
	}
}

// TestSearchTopKClamped guards the wire boundary: an absurd TopK must not
// size per-worker selectors at the requested depth.
func TestSearchTopKClamped(t *testing.T) {
	s, rng := testShard(t, 8)
	for i := 0; i < 20; i++ {
		if _, _, err := s.Insert(attrsFor(i), randFeature(rng)); err != nil {
			t.Fatal(err)
		}
	}
	s.SetSearchWorkers(4)
	defer s.SetSearchWorkers(0)
	resp, err := s.Search(&core.SearchRequest{Feature: randFeature(rng), TopK: 1 << 30, NProbe: 8, Category: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 || len(resp.Hits) > MaxTopK {
		t.Fatalf("clamped search returned %d hits", len(resp.Hits))
	}
}

// TestParallelSearchDuringRealtimeOps is the §2.4 concurrency claim with
// the parallel scan path on: the single real-time writer mutates the shard
// while readers fan each query across multiple scan goroutines. Run with
// -race.
func TestParallelSearchDuringRealtimeOps(t *testing.T) {
	s, rng := testShard(t, 8)
	s.SetSearchWorkers(4)
	const initial = 200
	feats := make([][]float32, initial)
	for i := range feats {
		feats[i] = randFeature(rng)
		if _, _, err := s.Insert(attrsFor(i), feats[i]); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	// Single writer: mixed inserts, removals, re-adds, attr updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		wrng := rand.New(rand.NewSource(42))
		for i := 0; i < 2000; i++ {
			switch wrng.Intn(4) {
			case 0:
				a := core.Attrs{
					ProductID: uint64(2000 + i),
					URL:       fmt.Sprintf("rt-par-%d", i),
					Category:  uint16(i % 4),
				}
				if _, _, err := s.Insert(a, randFeature(wrng)); err != nil {
					t.Errorf("rt insert: %v", err)
					return
				}
			case 1:
				_, _ = s.RemoveProduct(uint64(wrng.Intn(initial/2) + 1))
			case 2:
				if _, _, err := s.Insert(attrsFor(wrng.Intn(initial)), nil); err != nil {
					t.Errorf("rt re-add: %v", err)
					return
				}
			case 3:
				_, _ = s.UpdateAttrs(uint64(wrng.Intn(initial/2)+1), uint32(i), 1, 2, uint16(i%4))
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := feats[qrng.Intn(len(feats))]
				resp, err := s.Search(&core.SearchRequest{Feature: q, TopK: 10, NProbe: 8, Category: -1})
				if err != nil {
					t.Errorf("parallel search during rt ops: %v", err)
					return
				}
				for _, h := range resp.Hits {
					if h.URL == "" {
						t.Error("hit with empty URL during rt ops")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestReListingRefreshesCategory pins the re-listing bugfix: a product
// removed from the market and put back under a different category must
// serve the new category to scoped searches, not the stale one.
func TestReListingRefreshesCategory(t *testing.T) {
	s, rng := testShard(t, 8)
	a := core.Attrs{ProductID: 7, Category: 1, URL: "jfs://relist/0.jpg"}
	f := randFeature(rng)
	id, _, err := s.Insert(a, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveProduct(a.ProductID); err != nil {
		t.Fatal(err)
	}
	// Re-listed under category 3.
	a.Category = 3
	id2, reused, err := s.Insert(a, nil)
	if err != nil || !reused || id2 != id {
		t.Fatalf("re-list: id=%d reused=%v err=%v", id2, reused, err)
	}
	got, _ := s.Attrs(id)
	if got.Category != 3 {
		t.Fatalf("category after re-listing = %d, want 3", got.Category)
	}
	for _, tc := range []struct {
		category int32
		found    bool
	}{{3, true}, {1, false}} {
		resp, err := s.Search(&core.SearchRequest{Feature: f, TopK: 5, NProbe: 8, Category: tc.category})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, h := range resp.Hits {
			if h.Image.Local == id {
				found = true
			}
		}
		if found != tc.found {
			t.Fatalf("category %d scoped search found=%v, want %v", tc.category, found, tc.found)
		}
	}
}

// TestReListingMovesProduct pins the companion fix: a URL re-listed under
// a different product must be addressable — for product-level removal and
// attribute updates — under its new owner, not its old one.
func TestReListingMovesProduct(t *testing.T) {
	s, rng := testShard(t, 8)
	a := core.Attrs{ProductID: 7, Category: 1, URL: "jfs://move/0.jpg"}
	id, _, err := s.Insert(a, randFeature(rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveProduct(7); err != nil {
		t.Fatal(err)
	}
	a.ProductID = 9
	if _, reused, err := s.Insert(a, nil); err != nil || !reused {
		t.Fatalf("re-list: reused=%v err=%v", reused, err)
	}
	got, _ := s.Attrs(id)
	if got.ProductID != 9 {
		t.Fatalf("ProductID after re-listing = %d, want 9", got.ProductID)
	}
	if imgs := s.ProductImages(9); len(imgs) != 1 || imgs[0] != id {
		t.Fatalf("ProductImages(9) = %v", imgs)
	}
	if imgs := s.ProductImages(7); len(imgs) != 0 {
		t.Fatalf("image still mapped to old product: %v", imgs)
	}
	// Product-level ops address the new owner; the old one is gone.
	if n, err := s.UpdateAttrs(9, 5, 6, 7, 2); err != nil || n != 1 {
		t.Fatalf("UpdateAttrs(9) = %d, %v", n, err)
	}
	if _, err := s.UpdateAttrs(7, 1, 1, 1, 1); !errors.Is(err, ErrUnknownProduct) {
		t.Fatalf("UpdateAttrs(7) err = %v, want ErrUnknownProduct", err)
	}
	if n, err := s.RemoveProduct(9); err != nil || n != 1 {
		t.Fatalf("RemoveProduct(9) = %d, %v", n, err)
	}
	if s.Valid(id) {
		t.Fatal("image still valid after removal under new product")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0, NLists: 4}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := New(Config{Dim: 4, NLists: 0}); err == nil {
		t.Fatal("zero lists accepted")
	}
	s, err := New(Config{Dim: 4, NLists: 2, DefaultNProbe: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().DefaultNProbe != 2 {
		t.Fatalf("nprobe not clamped: %d", s.Config().DefaultNProbe)
	}
	// SearchWorkers defaults from GOMAXPROCS and round-trips through
	// Config for derived shards.
	if s.Config().SearchWorkers < 1 {
		t.Fatalf("SearchWorkers not defaulted: %d", s.Config().SearchWorkers)
	}
	s2, err := New(Config{Dim: 4, NLists: 2, SearchWorkers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if s2.SearchWorkers() != 6 || s2.Config().SearchWorkers != 6 {
		t.Fatalf("explicit SearchWorkers lost: %d", s2.SearchWorkers())
	}
	s2.SetSearchWorkers(2)
	if s2.Config().SearchWorkers != 2 {
		t.Fatalf("runtime SearchWorkers not reflected in Config: %d", s2.Config().SearchWorkers)
	}
}

func TestSetCodebookValidation(t *testing.T) {
	s, _ := testShard(t, 8)
	other, _ := testShard(t, 8)
	if err := s.SetCodebook(other.Codebook()); err != nil {
		t.Fatalf("compatible codebook rejected: %v", err)
	}
	wrong, err := New(Config{Dim: testDim, NLists: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = wrong
	// K mismatch.
	small, _ := New(Config{Dim: testDim, NLists: 4})
	rng := rand.New(rand.NewSource(1))
	train := make([]float32, 100*testDim)
	for i := range train {
		train[i] = float32(rng.NormFloat64())
	}
	if err := small.Train(train, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCodebook(small.Codebook()); err == nil {
		t.Fatal("K-mismatched codebook accepted")
	}
}
