//go:build linux

package index

import (
	"os"
	"syscall"
)

// reserveSpill allocates backing blocks for the first size bytes of the
// spill file, so running out of disk fails the fallocate (a returnable
// error) instead of SIGBUSing the process on a later page fault.
// Filesystems without fallocate support degrade to the sparse-file
// behaviour rather than failing the grow.
func reserveSpill(f *os.File, size int64) error {
	for {
		err := syscall.Fallocate(int(f.Fd()), 0, 0, size)
		switch err {
		case syscall.EINTR:
			continue
		case syscall.EOPNOTSUPP, syscall.ENOSYS:
			return nil // best-effort: fall back to the sparse file
		default:
			return err
		}
	}
}
