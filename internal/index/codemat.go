package index

import (
	"encoding/binary"
	"fmt"
	"io"
)

// codeMat is the in-shard PQ code matrix: row i holds the M-byte product
// quantization code of image ID i, aligned with the forward index and the
// feature matrix. The lock-free chunked storage lives in chunkMat — the
// ADC scan path reads codes exactly as the exact path reads feature rows;
// this wrapper owns the raw-byte snapshot codec.
type codeMat struct {
	chunkMat[byte]
}

const codeRowsPerChunk = 1 << 14 // 16384 rows per chunk

func newCodeMat(m int) *codeMat {
	c := &codeMat{}
	c.init("code length", m, codeRowsPerChunk)
	return c
}

// heapBytes reports chunk storage held (chunk-rounded).
func (c *codeMat) heapBytes() int64 {
	var n int64
	for _, ch := range *c.dir.Load() {
		n += int64(len(ch.rows))
	}
	return n
}

// writeTo serialises the matrix: [4B m][4B rows][rows×m bytes].
func (c *codeMat) writeTo(w io.Writer) (int64, error) {
	var written int64
	var hdr [8]byte
	n := c.length.Load()
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(c.width))
	binary.LittleEndian.PutUint32(hdr[4:8], n)
	k, err := w.Write(hdr[:])
	written += int64(k)
	if err != nil {
		return written, err
	}
	for id := uint32(0); id < n; id++ {
		k, err = w.Write(c.Row(id))
		written += int64(k)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// readFrom replaces the matrix contents. Not concurrent-safe.
func (c *codeMat) readFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [8]byte
	k, err := io.ReadFull(r, hdr[:])
	read += int64(k)
	if err != nil {
		return read, err
	}
	m := int(binary.LittleEndian.Uint32(hdr[0:4]))
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if m != c.width {
		return read, fmt.Errorf("index: snapshot code length %d, shard code length %d", m, c.width)
	}
	fresh := newCodeMat(m)
	row := make([]byte, m)
	for id := uint32(0); id < n; id++ {
		k, err = io.ReadFull(r, row)
		read += int64(k)
		if err != nil {
			return read, err
		}
		if _, err := fresh.Append(row); err != nil {
			return read, err
		}
	}
	c.replace(&fresh.chunkMat)
	return read, nil
}
