package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"

	"jdvs/internal/core"
	"jdvs/internal/pq"
	"jdvs/internal/topk"
	"jdvs/internal/vecmath"
)

// batchQuery is one member of an in-flight SearchBatch: the per-query
// state (scratch, admission filter, ADC lookup table, candidate
// selector) that the shared inverted-list traversal scores against.
type batchQuery struct {
	req     *core.SearchRequest
	idx     int // position in the caller's request slice
	k       int
	rerankK int
	sc      *searchScratch
	adm     admission
	lutp    *[]float32
	sel     *topk.Selector
	scanned int
}

// SearchBatch executes several queries in one pass over the shard's
// inverted lists. Each query keeps its own probe set, admission filter,
// lookup table and top-k selector — exactly as Search builds them — but
// the scan visits each probed list once, scoring every batched query that
// probes it against the same resident code bytes. On the 4-bit fast-scan
// path that means a code block is loaded once and swept through
// pq.ScanBlock4 for each member while it is still cache-hot; on the 8-bit
// path a candidate's code row is read once and scored per member. Requests
// that are identical field for field are single-flighted: one member scans
// on behalf of all of them and the duplicates receive copies of its
// response. Batch members are scored on the calling goroutine — the batch
// itself is the concurrency — so SearchWorkers does not apply here.
//
// Results are exactly the per-query Search results over the same corpus
// snapshot: candidate selection is a pure function of the scored
// candidate multiset (topk orders by (Dist, ID), so push order is
// irrelevant), and every kernel path is bit-identical by the summation
// contract in pq/kernel_generic.go. The returned slices are parallel to
// reqs: position i holds the query's response or its error.
//
// Shards without a product quantizer fall back to per-query Search: exact
// scoring reads a feature row per candidate either way, so there is no
// shared work for a batch to amortise.
func (s *Shard) SearchBatch(reqs []*core.SearchRequest) ([]*core.SearchResponse, []error) {
	resps := make([]*core.SearchResponse, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return resps, errs
	}
	ps := s.pqState.Load()
	if len(reqs) == 1 || ps == nil {
		for i, req := range reqs {
			resps[i], errs[i] = s.Search(req)
		}
		return resps, errs
	}
	// Raw rows are read during the per-query exact re-rank; keep a
	// disk-backed store's mapping alive for the duration (see Search).
	defer runtime.KeepAlive(s)

	// Single-flight identical requests: the skewed concurrent traffic this
	// path exists for routinely lands the same hot query several times in
	// one collection window. A duplicate rides its leader — one lookup
	// table, one share of every list scan — and takes a deep copy of the
	// leader's response (batch members belong to different caller
	// goroutines, which mutate their hits after the batch returns).
	leaderOf := make([]int, len(reqs))
	seen := make(map[string]int, len(reqs))
	var kbuf []byte
	for i, req := range reqs {
		kbuf = batchKey(kbuf, req)
		if j, ok := seen[string(kbuf)]; ok {
			leaderOf[i] = j
			continue
		}
		seen[string(kbuf)] = i
		leaderOf[i] = i
	}

	members := make([]*batchQuery, 0, len(reqs))
	defer func() {
		for _, q := range members {
			lutPool.Put(q.lutp)
			searchScratchPool.Put(q.sc)
		}
	}()

	// Per-query setup, mirroring Search step for step so a batched query
	// probes the same lists at the same re-rank depth as an unbatched one.
	for i, req := range reqs {
		if leaderOf[i] != i {
			continue
		}
		if s.codebook == nil {
			errs[i] = ErrNotTrained
			continue
		}
		if len(req.Feature) != s.cfg.Dim {
			errs[i] = fmt.Errorf("index: query dim %d, shard dim %d", len(req.Feature), s.cfg.Dim)
			continue
		}
		k := req.TopK
		if k <= 0 {
			k = 10
		}
		if k > MaxTopK {
			k = MaxTopK
		}
		nprobe := req.NProbe
		if nprobe <= 0 {
			nprobe = s.cfg.DefaultNProbe
		}
		sc := searchScratchPool.Get().(*searchScratch)
		adm := s.buildAdmission(req, sc)
		rerankBoost := 1
		if adm.live == nil {
			s.filteredSearches.Add(1)
			if adm.matches == 0 && adm.exhaustive {
				resps[i] = &core.SearchResponse{}
				searchScratchPool.Put(sc)
				continue
			}
			widened := s.widenNProbe(nprobe, k, adm.matches)
			if widened > nprobe {
				rerankBoost = (widened + nprobe - 1) / nprobe
				nprobe = widened
			}
		}
		sc.probe, sc.probeDist = vecmath.TopCentroidsInto(
			sc.probe, sc.probeDist, req.Feature, s.codebook.Centroids, s.cfg.Dim, nprobe)
		lutp := lutPool.Get().(*[]float32)
		*lutp, _ = ps.cb.BuildLUT(req.Feature, *lutp)
		rerankK := s.widenRerank(s.rerankDepth(k, ps.cb.Bits), rerankBoost)
		members = append(members, &batchQuery{
			req:     req,
			idx:     i,
			k:       k,
			rerankK: rerankK,
			sc:      sc,
			adm:     adm,
			lutp:    lutp,
			sel:     sc.selectors(1, rerankK)[0],
		})
	}
	if len(members) == 0 {
		return resps, errs
	}

	// Invert the probe sets: list → the batch members that probe it, so
	// the traversal below touches each list's codes exactly once. The
	// sorted order only makes traversal deterministic; results do not
	// depend on it.
	byList := make(map[int][]*batchQuery, len(members)*len(members[0].sc.probe))
	for _, q := range members {
		for _, l := range q.sc.probe {
			byList[l] = append(byList[l], q)
		}
	}
	lists := make([]int, 0, len(byList))
	for l := range byList {
		lists = append(lists, l)
	}
	sort.Ints(lists)

	if ps.lists != nil {
		s.scanBatchADC4(lists, byList, members, ps)
	} else {
		s.scanBatchADC(lists, byList, ps)
	}

	for _, q := range members {
		sc := q.sc
		sc.merged = topk.MergeInto(sc.merged, q.rerankK, q.sel.Sorted())
		items := s.rerankExact(q.req, q.k, sc, &q.adm)
		resps[q.idx] = s.assembleResponse(items, q.scanned, len(sc.probe))
	}
	for i, j := range leaderOf {
		if j == i {
			continue
		}
		errs[i] = errs[j]
		if r := resps[j]; r != nil {
			cp := *r
			// Deep-copy the hits: batch members belong to concurrent
			// callers, and the searcher stamps its partition into each
			// hit after the batch returns — aliased hit slices would race.
			cp.Hits = append([]core.Hit(nil), r.Hits...)
			resps[i] = &cp
		}
	}
	return resps, errs
}

// batchKey renders a request's full identity — the feature's bit pattern
// and every scalar parameter — into buf, reused across calls. Two requests
// with equal keys are answered identically by Search, which is what lets
// SearchBatch single-flight them.
func batchKey(buf []byte, req *core.SearchRequest) []byte {
	buf = buf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, uint64(req.TopK))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(req.NProbe))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Category))
	buf = binary.LittleEndian.AppendUint32(buf, req.MinPriceCents)
	buf = binary.LittleEndian.AppendUint32(buf, req.MaxPriceCents)
	buf = binary.LittleEndian.AppendUint32(buf, req.MinSales)
	for _, v := range req.Feature {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// scanBatchADC4 is the batched 4-bit fast-scan traversal: one id snapshot
// and one pass over the blocked codes per list, with every member that
// probes the list scoring each code block while its bytes are resident.
// Per-member skip/admit/push logic is identical to scanListsADC4, and the
// scanned count keeps that path's "codes scored" semantics per member.
func (s *Shard) scanBatchADC4(lists []int, byList map[int][]*batchQuery, members []*batchQuery, ps *shardPQ) {
	mb := ps.cb.CodeBytes()
	var dists [pq.BlockCodes]float32
	// The id snapshot buffer is borrowed from the first member's scratch:
	// the batch traversal is serial, so worker slot 0 is free.
	host := members[0].sc
	host.ensureIDBufs(1)
	ids := host.ids[0][:0]
	for _, l := range lists {
		qs := byList[l]
		ids = ids[:0]
		s.inv.Scan(l, func(id uint32) bool { ids = append(ids, id); return true })
		for _, q := range qs {
			q.scanned += len(ids)
		}
		blocks := ps.lists[l]
		full := len(ids) / pq.BlockCodes
		for b := 0; b < full; b++ {
			blk := blocks.block(b)
			base := b * pq.BlockCodes
			for _, q := range qs {
				pq.ScanBlock4(*q.lutp, blk, mb, &dists)
				worst, bounded := q.sel.WorstDist()
				for sl, d := range dists {
					// See scanListsADC4: the threshold skip never changes
					// the selected set, it only skips admission reads.
					if bounded && d > worst {
						continue
					}
					id := ids[base+sl]
					if !q.adm.admit(id) {
						continue
					}
					if q.sel.Push(uint64(id), d) {
						worst, bounded = q.sel.WorstDist()
					}
				}
			}
		}
		if tail := len(ids) % pq.BlockCodes; tail > 0 {
			// Partially filled tail block: per-slot scalar path touching
			// only published slots' lane bytes (see scanListsADC4).
			blk := blocks.block(full)
			base := full * pq.BlockCodes
			for _, q := range qs {
				for sl := 0; sl < tail; sl++ {
					d := pq.ADCDistBlockSlot(*q.lutp, blk, mb, sl)
					id := ids[base+sl]
					if !q.adm.admit(id) {
						continue
					}
					q.sel.Push(uint64(id), d)
				}
			}
		}
	}
	host.ids[0] = ids
}

// scanBatchADC is the batched 8-bit traversal: each candidate's code row
// is located once per list visit and scored against every member that
// probes the list. Per-member admit/score order matches scanListsADC, so
// the per-member scanned count keeps that path's "candidates admitted"
// semantics.
func (s *Shard) scanBatchADC(lists []int, byList map[int][]*batchQuery, ps *shardPQ) {
	for _, l := range lists {
		qs := byList[l]
		s.inv.Scan(l, func(id uint32) bool {
			code := ps.codes.Row(id)
			for _, q := range qs {
				if !q.adm.admit(id) {
					continue
				}
				if code == nil {
					continue
				}
				q.scanned++
				q.sel.Push(uint64(id), pq.ADCDist(*q.lutp, code))
			}
			return true
		})
	}
}
