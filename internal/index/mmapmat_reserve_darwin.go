//go:build darwin

package index

import "os"

// reserveSpill is a no-op on darwin: the stdlib syscall package exposes no
// fallocate (F_PREALLOCATE would need raw fcntl plumbing), so the spill
// file stays sparse and a full disk surfaces as SIGBUS like any other
// mmap-writing program there. Linux — the deployment platform — reserves
// for real.
func reserveSpill(*os.File, int64) error { return nil }
