package index

import (
	"encoding/binary"
	"io"
	"math"
)

// Feature-row storage selectors for Config.FeatureStore. The scan path
// reads M-byte PQ codes (codeMat, always RAM-resident); the raw float rows
// behind them are touched only for exact re-rank, the exact-path fallback
// and PQ training, so where they live is a capacity/latency trade:
//
//   - FeatureStoreRAM: rows in heap chunks (chunkMat). Dim×4 bytes of RAM
//     per image; every row read is a plain memory load.
//   - FeatureStoreMmap: rows in an unlinked spill file served through the
//     OS page cache. Per-image RAM drops to the M code bytes (plus the
//     spill file's resident pages, which the kernel evicts under
//     pressure), so one shard's RAM budget holds several× more images —
//     at the cost of a possible page fault on a cold re-rank row.
const (
	FeatureStoreRAM  = "ram"
	FeatureStoreMmap = "mmap"
)

// rowStore is the feature matrix behind a shard: row i holds the feature
// vector of image ID i, aligned with the forward index. Implementations
// share the shard's concurrency contract — one real-time writer appends
// while any number of search threads read committed rows lock-free — and
// one snapshot wire format, so WriteSnapshot/LoadSnapshot streams are
// byte-identical and interchangeable across stores.
type rowStore interface {
	// Append commits row as the next row and returns its index. Rows are
	// immutable once committed. Single-writer.
	Append(row []float32) (uint32, error)
	// Row returns committed row id (nil if uncommitted). Callers must not
	// modify the result, and must not retain it past the owning shard's
	// lifetime (the mmap store unmaps its pages on Close).
	Row(id uint32) []float32
	// Len returns the number of committed rows.
	Len() int
	// writeTo serialises [4B dim][4B rows][rows×dim little-endian float32]
	// — the snapshot feature section, identical across stores.
	writeTo(w io.Writer) (int64, error)
	// readFrom replaces the contents from a writeTo stream. Not
	// concurrent-safe with readers or the writer.
	readFrom(r io.Reader) (int64, error)
	// heapBytes reports the Go-heap bytes held for row storage — the
	// number the FeatureStoreMmap capacity win is measured against
	// (mmap'd pages are page cache, not heap).
	heapBytes() int64
	// Close releases storage (spill file and mappings for the mmap
	// store). Reads and writes must be quiesced. Idempotent.
	Close() error
}

// newFeatStore builds the feature-row store cfg selects. cfg must already
// be validated (Config.validate normalises and rejects FeatureStore
// values; it is the single place that knows the legal set).
func newFeatStore(cfg Config) (rowStore, error) {
	if cfg.FeatureStore == FeatureStoreMmap {
		return newMmapMat(cfg.Dim, cfg.SpillDir)
	}
	return newFeatMat(cfg.Dim), nil
}

// writeFloatRows is the shared snapshot encoder behind every rowStore's
// writeTo: one codec, so stores can never drift apart on the wire.
func writeFloatRows(w io.Writer, width int, n uint32, row func(uint32) []float32) (int64, error) {
	var written int64
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(width))
	binary.LittleEndian.PutUint32(hdr[4:8], n)
	k, err := w.Write(hdr[:])
	written += int64(k)
	if err != nil {
		return written, err
	}
	buf := make([]byte, 4*width)
	for id := uint32(0); id < n; id++ {
		for i, v := range row(id) {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		k, err = w.Write(buf)
		written += int64(k)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
