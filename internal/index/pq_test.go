package index

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"jdvs/internal/core"
)

// clusteredFeatures synthesises n feature rows around nc cluster centres —
// the distribution PQ is built for (and roughly what CNN embeddings of
// product photos look like).
func clusteredFeatures(rng *rand.Rand, n, dim, nc int, spread float64) [][]float32 {
	centres := make([]float32, nc*dim)
	for i := range centres {
		centres[i] = float32(rng.NormFloat64() * 4)
	}
	rows := make([][]float32, n)
	for i := range rows {
		c := rng.Intn(nc)
		f := make([]float32, dim)
		for d := range f {
			f[d] = centres[c*dim+d] + float32(rng.NormFloat64()*spread)
		}
		rows[i] = f
	}
	return rows
}

// buildPQPair builds two shards over the identical corpus: one exact, one
// with a trained product quantizer.
func buildPQPair(t testing.TB, n, dim, nlists, m int) (exact, quantized *Shard, feats [][]float32) {
	return buildPQPairStore(t, n, dim, nlists, m, FeatureStoreRAM)
}

// buildPQPairStore is buildPQPair with the quantized shard's feature rows
// in the chosen store (the exact shard stays on RAM as the reference).
func buildPQPairStore(t testing.TB, n, dim, nlists, m int, store string) (exact, quantized *Shard, feats [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	feats = clusteredFeatures(rng, n, dim, 24, 0.25)
	train := make([]float32, 0, min(n, 2000)*dim)
	for i := 0; i < min(n, 2000); i++ {
		train = append(train, feats[i]...)
	}
	mk := func(pqM int) *Shard {
		cfg := Config{Dim: dim, NLists: nlists, DefaultNProbe: 8, SearchWorkers: 1, PQSubvectors: pqM}
		if pqM > 0 && store != FeatureStoreRAM {
			cfg.FeatureStore = store
			cfg.SpillDir = t.TempDir()
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Train(train, 5); err != nil {
			t.Fatal(err)
		}
		if pqM > 0 {
			if err := s.TrainPQ(train, 5); err != nil {
				t.Fatal(err)
			}
		}
		for i, f := range feats {
			a := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://pq/%d.jpg", i), Category: uint16(i % 4)}
			if _, _, err := s.Insert(a, f); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	return mk(0), mk(m), feats
}

// TestPQRecallGuardrail is the accuracy gate on the ADC path: over a set
// of queries, recall@10 of the ADC scan + exact re-rank against the exact
// scan at the same probe count must stay at least 0.95. The mmap-store
// variant (TestPQRecallGuardrailMmap) runs the identical gate with the
// rows tiered onto disk.
func TestPQRecallGuardrail(t *testing.T) {
	runPQRecallGuardrail(t, FeatureStoreRAM)
}

func runPQRecallGuardrail(t *testing.T, store string) {
	const n, dim, queries = 6000, 64, 60
	exact, quant, feats := buildPQPairStore(t, n, dim, 32, 16, store)
	defer quant.Close()
	if !quant.PQEnabled() {
		t.Fatal("quantized shard did not enable PQ")
	}
	rng := rand.New(rand.NewSource(77))
	var hit, want int
	for qi := 0; qi < queries; qi++ {
		base := feats[rng.Intn(n)]
		q := make([]float32, dim)
		for d := range q {
			q[d] = base[d] + float32(rng.NormFloat64()*0.05)
		}
		req := &core.SearchRequest{Feature: q, TopK: 10, NProbe: 8, Category: -1}
		re, err := exact.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[uint32]bool, len(re.Hits))
		for _, h := range re.Hits {
			truth[h.Image.Local] = true
		}
		want += len(re.Hits)
		for _, h := range rq.Hits {
			if truth[h.Image.Local] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(want)
	t.Logf("ADC+rerank recall@10 over %d queries: %.4f", queries, recall)
	if recall < 0.95 {
		t.Fatalf("recall@10 = %.4f, want >= 0.95", recall)
	}
}

// TestPQSerialParallelEquivalence: the striped ADC scan must return
// exactly the serial ADC scan's results, like the exact path.
func TestPQSerialParallelEquivalence(t *testing.T) {
	const n, dim = 3000, 32
	_, quant, feats := buildPQPair(t, n, dim, 16, 8)
	rng := rand.New(rand.NewSource(5))
	for qi := 0; qi < 20; qi++ {
		q := feats[rng.Intn(n)]
		req := &core.SearchRequest{Feature: q, TopK: 15, NProbe: 6, Category: -1}
		quant.SetSearchWorkers(1)
		serial, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		quant.SetSearchWorkers(4)
		parallel, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		quant.SetSearchWorkers(0)
		if len(serial.Hits) != len(parallel.Hits) {
			t.Fatalf("query %d: serial %d hits, parallel %d", qi, len(serial.Hits), len(parallel.Hits))
		}
		for i := range serial.Hits {
			if serial.Hits[i].Image != parallel.Hits[i].Image || serial.Hits[i].Dist != parallel.Hits[i].Dist {
				t.Fatalf("query %d hit %d: serial %+v, parallel %+v", qi, i, serial.Hits[i], parallel.Hits[i])
			}
		}
	}
}

// TestPQInsertLockstep: inserts after PQ is installed must encode codes in
// lockstep, and the new images must be findable through the ADC path.
func TestPQInsertLockstep(t *testing.T) {
	const n, dim = 1000, 32
	_, quant, _ := buildPQPair(t, n, dim, 16, 8)
	rng := rand.New(rand.NewSource(9))
	fresh := clusteredFeatures(rng, 10, dim, 3, 0.1)
	for i, f := range fresh {
		url := fmt.Sprintf("jfs://pq-late/%d.jpg", i)
		id, reused, err := quant.Insert(core.Attrs{ProductID: uint64(9000 + i), URL: url}, f)
		if err != nil || reused {
			t.Fatalf("insert %d: id=%d reused=%v err=%v", i, id, reused, err)
		}
		resp, err := quant.Search(&core.SearchRequest{Feature: f, TopK: 1, NProbe: quant.cfg.NLists, Category: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Hits) != 1 || resp.Hits[0].Image.Local != id {
			t.Fatalf("freshly inserted image %d not the nearest to its own feature: %+v", id, resp.Hits)
		}
	}
	st := quant.Stats()
	if st.PQCodes != st.Images {
		t.Fatalf("codes %d out of lockstep with images %d", st.PQCodes, st.Images)
	}
}

// TestPQCategoryFilter: the ADC path must honour category scoping like the
// exact path.
func TestPQCategoryFilter(t *testing.T) {
	const n, dim = 2000, 32
	_, quant, feats := buildPQPair(t, n, dim, 16, 8)
	req := &core.SearchRequest{Feature: feats[0], TopK: 20, NProbe: 16, Category: 2}
	resp, err := quant.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("category-scoped ADC search returned nothing")
	}
	for _, h := range resp.Hits {
		if h.Category != 2 {
			t.Fatalf("hit leaked category %d through the ADC scan", h.Category)
		}
	}
}

// writeSnapshotV1 emits the legacy (pre-PQ, pre-covered-offset) snapshot
// layout, byte-identical to what a PR-3-era binary wrote.
func writeSnapshotV1(s *Shard, w io.Writer) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{snapVersionV1}); err != nil {
		return err
	}
	if err := writeCodebook(w, s.codebook); err != nil {
		return err
	}
	if _, err := s.fwd.WriteTo(w); err != nil {
		return err
	}
	if _, err := s.inv.WriteTo(w); err != nil {
		return err
	}
	if err := writeBitmap(w, s.valid); err != nil {
		return err
	}
	_, err := s.feats.writeTo(w)
	return err
}

// TestSnapshotBackCompatV1: a legacy snapshot must still load — serving
// the exact scan path — and TrainPQStored must lazily re-encode it onto
// the ADC path with consistent results.
func TestSnapshotBackCompatV1(t *testing.T) {
	const n, dim = 1500, 32
	exact, _, feats := buildPQPair(t, n, dim, 16, 8)

	var v1 bytes.Buffer
	if err := writeSnapshotV1(exact, &v1); err != nil {
		t.Fatal(err)
	}
	loaded, err := New(Config{Dim: dim, NLists: 16, DefaultNProbe: 8, SearchWorkers: 1, PQSubvectors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadSnapshot(bytes.NewReader(v1.Bytes())); err != nil {
		t.Fatalf("v1 snapshot failed to load: %v", err)
	}
	if loaded.PQEnabled() {
		t.Fatal("v1 snapshot cannot carry PQ codes")
	}
	if off := loaded.CoveredOffset(); off != 0 {
		t.Fatalf("v1 snapshot produced covered offset %d", off)
	}
	req := &core.SearchRequest{Feature: feats[3], TopK: 5, NProbe: 8, Category: -1}
	want, err := exact.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Hits) != len(got.Hits) || want.Hits[0].Image != got.Hits[0].Image {
		t.Fatalf("v1-loaded shard disagrees with source: %+v vs %+v", got.Hits, want.Hits)
	}

	// Lazy re-encode: train PQ from the loaded shard's own rows.
	if err := loaded.TrainPQStored(0, 5); err != nil {
		t.Fatal(err)
	}
	if !loaded.PQEnabled() {
		t.Fatal("TrainPQStored did not enable PQ")
	}
	if st := loaded.Stats(); st.PQCodes != st.Images {
		t.Fatalf("re-encode produced %d codes for %d images", st.PQCodes, st.Images)
	}
	adc, err := loaded.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(adc.Hits) == 0 || adc.Hits[0].Image != want.Hits[0].Image {
		t.Fatalf("re-encoded shard lost the nearest neighbour: %+v vs %+v", adc.Hits, want.Hits)
	}
}

// TestSnapshotV2RoundTripPQ: a PQ-bearing snapshot must round-trip the
// quantizer, the codes and the covered offset, and serve identical
// results.
func TestSnapshotV2RoundTripPQ(t *testing.T) {
	const n, dim = 1500, 32
	_, quant, feats := buildPQPair(t, n, dim, 16, 8)
	quant.SetCoveredOffset(4242)

	var buf bytes.Buffer
	if err := quant.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := New(quant.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !loaded.PQEnabled() {
		t.Fatal("PQ state lost in snapshot round trip")
	}
	if off := loaded.CoveredOffset(); off != 4242 {
		t.Fatalf("covered offset %d, want 4242", off)
	}
	if st, wt := loaded.Stats(), quant.Stats(); st.PQCodes != wt.PQCodes || st.Images != wt.Images {
		t.Fatalf("round trip stats %+v vs %+v", st, wt)
	}
	for qi := 0; qi < 10; qi++ {
		req := &core.SearchRequest{Feature: feats[qi*7], TopK: 8, NProbe: 8, Category: -1}
		want, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Hits) != len(got.Hits) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			if want.Hits[i].Image != got.Hits[i].Image || want.Hits[i].Dist != got.Hits[i].Dist {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, i, got.Hits[i], want.Hits[i])
			}
		}
	}
}

// TestSnapshotV2NoPQ: shards without a quantizer keep round-tripping
// (flag byte 0) and stay on the exact path.
func TestSnapshotV2NoPQ(t *testing.T) {
	const n, dim = 800, 32
	exact, _, feats := buildPQPair(t, n, dim, 16, 8)
	var buf bytes.Buffer
	if err := exact.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := New(exact.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.PQEnabled() {
		t.Fatal("exact shard grew a quantizer through the snapshot")
	}
	req := &core.SearchRequest{Feature: feats[1], TopK: 3, NProbe: 8, Category: -1}
	want, _ := exact.Search(req)
	got, err := loaded.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if want.Hits[0].Image != got.Hits[0].Image {
		t.Fatal("round-tripped exact shard disagrees")
	}
}

// TestPQConfigValidation: PQSubvectors must divide Dim.
func TestPQConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 64, NLists: 4, PQSubvectors: 7}); err == nil {
		t.Fatal("PQSubvectors 7 over Dim 64 accepted")
	}
	s, err := New(Config{Dim: 64, NLists: 4, PQSubvectors: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().PQSubvectors != 16 {
		t.Fatalf("derived PQSubvectors = %d, want 16", s.Config().PQSubvectors)
	}
	if _, err := New(Config{Dim: 64, NLists: 4}); err != nil {
		t.Fatal(err)
	}
}
