//go:build !(linux || darwin)

package index

import "errors"

// newMmapMat is the non-mmap platform stub: Config.FeatureStore "mmap"
// needs MAP_SHARED file mappings, which this port does not provide. Shards
// here run the RAM store (the default) unchanged.
func newMmapMat(dim int, spillDir string) (rowStore, error) {
	return nil, errors.New("index: FeatureStore \"mmap\" is not supported on this platform")
}
