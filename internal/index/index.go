// Package index implements the per-partition shard index a Searcher owns —
// the composition of every §2 structure into one searchable, real-time
// updatable unit:
//
//   - the forward index (product attributes, atomic field updates, Fig. 7);
//   - the IVF inverted index (lock-free appends/scans, expansion, Figs. 5,
//     8, 9) keyed by a k-means codebook;
//   - the validity bitmap (deletion and re-listing without structural
//     mutation);
//   - the in-shard feature matrix (distance computation on the scan path);
//   - URL → image and product → images lookup tables driving feature reuse
//     and product-level operations.
//
// Concurrency contract, straight from the paper: one real-time indexing
// writer per shard (the searcher's queue consumer, Fig. 4) mutates the
// index while any number of search threads read, without locks on the read
// path ("there is no conflict between search and update processes for
// maximum concurrency").
package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"jdvs/internal/bitmapx"
	"jdvs/internal/core"
	"jdvs/internal/forward"
	"jdvs/internal/inverted"
	"jdvs/internal/kmeans"
	"jdvs/internal/pq"
	"jdvs/internal/topk"
	"jdvs/internal/vecmath"
)

// Config parameterises a shard.
type Config struct {
	// Dim is the feature dimensionality. Required.
	Dim int
	// NLists is the number of IVF inverted lists (k-means K). Required.
	NLists int
	// ListInitialCap pre-allocates each inverted list (default
	// inverted.DefaultInitialCap).
	ListInitialCap int
	// DefaultNProbe is the number of lists probed when a query does not
	// specify one (default 8, clamped to NLists).
	DefaultNProbe int
	// SearchWorkers is the number of goroutines one Search call uses to
	// scan its probed inverted lists — the paper's §2.4 "multi-thread
	// searching" inside a searcher. 1 scans serially on the calling
	// goroutine; values above 1 stripe the probed lists across that many
	// workers, each with its own top-k selector, merged at the end. The
	// default (when <= 0) derives from GOMAXPROCS. Parallel scans keep the
	// lock-free reader contract: any number of scan workers may run while
	// the single real-time writer mutates the shard.
	SearchWorkers int
	// PQSubvectors configures the product-quantized ADC scan path: the
	// number of subquantizers M; must divide Dim. 0 disables PQ training;
	// negative picks a dimension-derived default (pq.DefaultSubvectors).
	// Note the scan path itself follows the installed codebook, not this
	// knob: a shard only scans ADC codes once TrainPQ/SetPQCodebook has
	// run (or a PQ-bearing snapshot loaded), and falls back to the exact
	// float scan until then.
	PQSubvectors int
	// PQBits selects the centroid index width PQ training uses: 8 (256
	// centroids per subquantizer, M code bytes per image — the default
	// when zero) or 4 (16 centroids, two subquantizers packed per byte —
	// M/2 code bytes per image, scanned through the blocked fast-scan
	// kernel; requires an even PQSubvectors). Like PQSubvectors this knob
	// steers training; a loaded snapshot's codebook decides the live scan
	// path.
	PQBits int
	// RerankK is the ADC over-fetch depth: the approximate scan selects
	// this many candidates, which are then re-ranked exactly against the
	// raw feature rows before the final top-k. <= 0 derives a bit-width
	// default per query — 20×TopK at 8-bit codes, 30×TopK at 4-bit — from
	// the measured sweep recorded in docs/OPERATIONS.md (recall@10 ≥ 0.99
	// on the 100k sweep corpus, guarded by TestPQRecallGuardrail).
	// Clamped to [TopK, MaxTopK].
	RerankK int
	// FilterMaxNProbe caps the adaptive probe widening applied to
	// filtered queries (category scope or attribute predicates): when the
	// admission bitmap shows the filter is selective, the scan raises
	// nprobe — aiming for enough admitted candidates to fill the result
	// page — up to this many lists. 0 derives 8× the query's base nprobe,
	// clamped to NLists. Set it to NLists to let very selective filters
	// degrade to a full-shard scan and return every match.
	FilterMaxNProbe int
	// FilterMaxRerankK caps the matching ADC over-fetch widening: a
	// filtered query's re-rank depth scales with the same factor as its
	// probe widening, bounded by this knob. 0 derives 4× the unfiltered
	// depth, clamped to MaxTopK.
	FilterMaxRerankK int
	// FeatureStore selects where raw feature rows live: FeatureStoreRAM
	// ("ram", the default — heap chunks) or FeatureStoreMmap ("mmap" — an
	// unlinked spill file served through the page cache). With the ADC
	// scan path on M-byte codes, rows are touched only for re-rank,
	// exact-path fallback and PQ training, so tiering them to mmap drops
	// the per-image RAM cost from Dim×4 + M bytes to M bytes plus
	// whatever spill pages the kernel keeps resident — several× more
	// images per shard at the same RAM budget. Snapshots are
	// format-compatible across both stores.
	FeatureStore string
	// SpillDir is the directory FeatureStoreMmap creates spill files in
	// (default os.TempDir()). Files are unlinked at creation, so nothing
	// is left behind even on crash.
	SpillDir string
}

// MaxTopK caps a single query's result size. SearchRequest.TopK arrives
// from the wire as an unvalidated integer; without a bound a hostile
// request could size one top-k selector per scan worker at TopK entries
// each — and the scratch pool would pin those arrays after the query
// finished. 4096 is far above any real retrieval depth (the paper's
// searchers return tens of candidates per partition).
const MaxTopK = 4096

// maxDefaultSearchWorkers caps the GOMAXPROCS-derived default. Measured
// on BenchmarkSearchWorkers (50k images, nprobe 8/16/32): 8 workers never
// beat 4 at any probe width — at nprobe=8 each of 8 workers gets a single
// list, so per-query fan-out overhead eats the scan savings, and per-query
// allocations double (2720 B vs 1824 B). GitHub's ubuntu-latest CI runners
// (the BENCH_searcher.json source) expose 4 vCPUs, so a wider default was
// never exercisable there anyway. PR 1 guessed 8; the measurements say 4.
const maxDefaultSearchWorkers = 4

func defaultSearchWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxDefaultSearchWorkers {
		n = maxDefaultSearchWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (c *Config) validate() error {
	if c.Dim <= 0 {
		return errors.New("index: Dim must be positive")
	}
	if c.NLists <= 0 {
		return errors.New("index: NLists must be positive")
	}
	if c.DefaultNProbe <= 0 {
		c.DefaultNProbe = 8
	}
	if c.DefaultNProbe > c.NLists {
		c.DefaultNProbe = c.NLists
	}
	if c.SearchWorkers <= 0 {
		c.SearchWorkers = defaultSearchWorkers()
	}
	if c.PQSubvectors < 0 {
		c.PQSubvectors = pq.DefaultSubvectors(c.Dim)
	}
	if c.PQSubvectors > 0 && c.Dim%c.PQSubvectors != 0 {
		return fmt.Errorf("index: PQSubvectors %d must divide Dim %d", c.PQSubvectors, c.Dim)
	}
	switch c.PQBits {
	case 0:
		c.PQBits = 8
	case 8:
	case 4:
		if c.PQSubvectors > 0 && c.PQSubvectors%2 != 0 {
			return fmt.Errorf("index: PQBits 4 packs two subquantizers per byte; PQSubvectors %d must be even", c.PQSubvectors)
		}
	default:
		return fmt.Errorf("index: PQBits must be 4 or 8, got %d", c.PQBits)
	}
	if c.RerankK < 0 {
		c.RerankK = 0
	}
	if c.FilterMaxNProbe < 0 {
		c.FilterMaxNProbe = 0
	}
	if c.FilterMaxNProbe > c.NLists {
		c.FilterMaxNProbe = c.NLists
	}
	if c.FilterMaxRerankK < 0 {
		c.FilterMaxRerankK = 0
	}
	if c.FilterMaxRerankK > MaxTopK {
		c.FilterMaxRerankK = MaxTopK
	}
	switch c.FeatureStore {
	case "":
		c.FeatureStore = FeatureStoreRAM
	case FeatureStoreRAM, FeatureStoreMmap:
	default:
		return fmt.Errorf("index: unknown FeatureStore %q (want %q or %q)",
			c.FeatureStore, FeatureStoreRAM, FeatureStoreMmap)
	}
	return nil
}

// Stats is a point-in-time summary of shard state.
type Stats struct {
	Images      int // total records ever appended
	ValidImages int // images whose validity bit is set
	Products    int // distinct product IDs seen
	Lists       int
	PQCodes     int // PQ-encoded rows (0 when the shard scans exact floats)
	// PQBits is the installed quantizer's centroid index width (8 or 4;
	// 0 when the shard scans exact floats), and PQCodeBytes the memory its
	// code storage holds (chunk-rounded) — the number 4-bit mode halves.
	PQBits        int
	PQCodeBytes   int64
	Inserts       int64
	ReusedInserts int64 // insertions satisfied by flipping validity back on
	// FeatureRefreshes counts re-listings whose feature vector differed
	// from the stored row: the image was re-indexed under a fresh row,
	// code and inverted entry, and the stale generation tombstoned.
	FeatureRefreshes int64
	Deletions        int64
	AttrUpdates      int64
	// FilteredSearches counts queries that took the bitmap-admission path
	// (category scope or attribute predicates set).
	FilteredSearches int64
	// FeatureHeapBytes is the Go-heap memory held by raw feature-row
	// storage — Dim×4 per image (rounded up to chunks) for the RAM store,
	// near zero for the mmap store, whose rows live in the page cache.
	FeatureHeapBytes int64
}

// Shard is one partition's index. Construct with New, then Train (or
// install a codebook / load a snapshot) before inserting.
type Shard struct {
	cfg Config

	codebook *kmeans.Codebook // immutable once installed
	fwd      *forward.Index
	inv      *inverted.Index
	valid    *bitmapx.Bitmap
	feats    rowStore

	// cats is the atomically published per-category bitmap directory,
	// indexed by category value: cats[c] holds a set bit for every image
	// whose forward record carries category c. Maintained by the single
	// real-time writer under the same lock-free publish protocol as valid
	// (membership bit set before the image's validity publishes it, and on
	// category moves the new bit is set before the old one clears), read
	// by any number of filtered scans. Validity is NOT encoded here — the
	// admission path intersects with valid — so deletion and re-listing
	// stay single-bit flips.
	cats atomic.Pointer[[]*bitmapx.Bitmap]

	// attrEpoch counts price/sales mutations; the predicate-bitmap cache
	// keys on it so a materialised price/sales bitmap is dropped once the
	// attributes under it move. Appends don't bump it: cached bitmaps
	// record the row count they covered and the scan falls back to
	// per-candidate checks beyond it.
	attrEpoch atomic.Uint64
	// predCache is the atomically published set of materialised
	// attribute-predicate bitmaps, built lazily by querying goroutines
	// (construction reads only lock-free structures) and replaced
	// wholesale when attrEpoch moves.
	predCache atomic.Pointer[predState]

	filteredSearches atomic.Int64

	// pqState is the atomically published (codebook, code matrix) pair of
	// the ADC scan path. nil means no product quantizer is installed and
	// searches take the exact float path. Published only after every
	// existing feature row has been encoded, so readers always see codes
	// in lockstep with features; thereafter the single real-time writer
	// appends to both.
	pqState atomic.Pointer[shardPQ]
	// codeScratch is the writer's per-insert encode buffer (single-writer
	// contract: Insert is never concurrent with itself).
	codeScratch []byte

	// coveredOffset is the message-queue offset this shard's contents
	// cover (the next offset a real-time consumer should read). Carried in
	// snapshots so a pushed full index tells the receiving searcher how
	// far it can skip.
	coveredOffset atomic.Int64

	// Lookup tables for the real-time indexing writer. Guarded by tabMu:
	// written only by the single writer, read by Stats/tests and the
	// writer itself.
	tabMu     sync.RWMutex
	byURL     map[string]core.ImageID
	byProduct map[uint64][]core.ImageID

	// searchWorkers is the live intra-query scan parallelism, initialised
	// from cfg.SearchWorkers and adjustable at runtime (SetSearchWorkers)
	// while searches are in flight.
	searchWorkers atomic.Int32

	statsMu sync.Mutex
	stats   Stats
}

// New returns an untrained shard.
func New(cfg Config) (*Shard, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	feats, err := newFeatStore(cfg)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		cfg:       cfg,
		fwd:       forward.New(),
		inv:       inverted.New(cfg.NLists, cfg.ListInitialCap),
		valid:     bitmapx.New(0),
		feats:     feats,
		byURL:     make(map[string]core.ImageID),
		byProduct: make(map[uint64][]core.ImageID),
	}
	s.searchWorkers.Store(int32(cfg.SearchWorkers))
	return s, nil
}

// Close releases feature-store resources — the mmap store's spill file
// and mappings; a no-op for the RAM store. Searches and the writer must
// be quiesced. Shards dropped without Close (e.g. hot-swapped out by a
// snapshot push) are backstopped by a finalizer on the store.
func (s *Shard) Close() error { return s.feats.Close() }

// ErrNotTrained is returned by operations requiring a codebook.
var ErrNotTrained = errors.New("index: codebook not trained")

// ErrUnknownProduct is returned by product-level operations on products the
// shard has never seen.
var ErrUnknownProduct = errors.New("index: unknown product")

// Train fits the IVF codebook on the given training features (flat row-major
// n×Dim) — §2.2's "k-mean algorithm on a set of training data set".
func (s *Shard) Train(features []float32, seed int64) error {
	cb, err := kmeans.Train(kmeans.Config{K: s.cfg.NLists, Dim: s.cfg.Dim, Seed: seed}, features)
	if err != nil {
		return fmt.Errorf("index: train: %w", err)
	}
	s.codebook = cb
	return nil
}

// SetCodebook installs a pre-trained codebook (full indexing distributes
// one codebook to all shards so cluster IDs agree).
func (s *Shard) SetCodebook(cb *kmeans.Codebook) error {
	if cb.Dim != s.cfg.Dim {
		return fmt.Errorf("index: codebook dim %d, shard dim %d", cb.Dim, s.cfg.Dim)
	}
	if cb.K != s.cfg.NLists {
		return fmt.Errorf("index: codebook K %d, shard NLists %d", cb.K, s.cfg.NLists)
	}
	s.codebook = cb
	return nil
}

// Codebook returns the installed codebook (nil if untrained).
func (s *Shard) Codebook() *kmeans.Codebook { return s.codebook }

// Trained reports whether a codebook is installed.
func (s *Shard) Trained() bool { return s.codebook != nil }

// shardPQ is the published state of the ADC scan path: the product
// quantizer and the code storage it produced, always in lockstep with the
// feature matrix. 8-bit codebooks fill codes (an ID-keyed matrix, scanned
// per candidate); 4-bit codebooks fill lists (per-inverted-list blocked
// fast-scan storage, scanned per 32-code block) — exactly one of the two
// is non-nil.
type shardPQ struct {
	cb    *pq.Codebook
	codes *codeMat      // 8-bit: code of image id at row id
	lists []*codeBlocks // 4-bit: code of a list's i-th entry at slot i
}

// codeCount returns the number of committed codes.
func (ps *shardPQ) codeCount() int {
	if ps.codes != nil {
		return ps.codes.Len()
	}
	n := 0
	for _, cb := range ps.lists {
		n += int(cb.published())
	}
	return n
}

// codeHeapBytes returns the memory code storage holds (chunk-rounded).
func (ps *shardPQ) codeHeapBytes() int64 {
	if ps.codes != nil {
		return ps.codes.heapBytes()
	}
	n := int64(0)
	for _, cb := range ps.lists {
		n += cb.heapBytes()
	}
	return n
}

// TrainPQ fits the product-quantization codebook on the given training
// features (flat row-major n×Dim), encodes every stored feature row, and
// switches searches to the ADC scan path. Requires Config.PQSubvectors.
// Like snapshot operations it must run in the writer's context (no
// concurrent Insert); searches keep running on the exact path until the
// encoded codes publish atomically.
func (s *Shard) TrainPQ(features []float32, seed int64) error {
	if s.cfg.PQSubvectors <= 0 {
		return errors.New("index: PQSubvectors not configured")
	}
	cb, err := pq.Train(pq.Config{Dim: s.cfg.Dim, M: s.cfg.PQSubvectors, Bits: s.cfg.PQBits, Seed: seed}, features)
	if err != nil {
		return fmt.Errorf("index: train pq: %w", err)
	}
	return s.installPQ(cb)
}

// TrainPQStored is TrainPQ training on up to sample of the shard's own
// stored feature rows — the lazy re-encode path for shards loaded from a
// pre-PQ snapshot, which carry features but no codes. sample <= 0 trains
// on every row. The sample strides evenly across the matrix rather than
// taking a prefix: rows arrive in insertion order (often product- or
// time-clustered), and a prefix sample would fit the quantizer to one
// slice of the feature distribution.
func (s *Shard) TrainPQStored(sample int, seed int64) error {
	// Keep the mmap mapping alive across the Row reads (see Search).
	defer runtime.KeepAlive(s)
	n := s.feats.Len()
	if n == 0 {
		return errors.New("index: no stored features to train PQ on")
	}
	if sample <= 0 || sample > n {
		sample = n
	}
	stride := n / sample
	train := make([]float32, 0, sample*s.cfg.Dim)
	for i := 0; i < sample; i++ {
		train = append(train, s.feats.Row(uint32(i*stride))...)
	}
	return s.TrainPQ(train, seed)
}

// SetPQCodebook installs a pre-trained product quantizer (full indexing
// distributes one PQ codebook to all shards alongside the IVF codebook),
// encoding every stored row before the ADC path publishes. Writer-context
// only, like TrainPQ.
func (s *Shard) SetPQCodebook(cb *pq.Codebook) error {
	if err := cb.Valid(); err != nil {
		return err
	}
	if cb.Dim != s.cfg.Dim {
		return fmt.Errorf("index: pq codebook dim %d, shard dim %d", cb.Dim, s.cfg.Dim)
	}
	return s.installPQ(cb)
}

// installPQ backfills codes for every committed feature row and publishes
// the ADC state. 8-bit codes backfill the ID-keyed matrix in row order;
// 4-bit codes backfill each inverted list's blocked storage in list order,
// because a 4-bit slot must match the position of the id the list yields
// (codeBlocks contract). Writer-context only — the list walk below assumes
// no concurrent appends.
func (s *Shard) installPQ(cb *pq.Codebook) error {
	// Keep the mmap mapping alive across the Row reads (see Search).
	defer runtime.KeepAlive(s)
	if cb.Bits == 4 {
		lists := make([]*codeBlocks, s.cfg.NLists)
		code := make([]byte, cb.CodeBytes())
		var encErr error
		for l := range lists {
			blocks := newCodeBlocks(cb.CodeBytes())
			s.inv.Scan(l, func(id uint32) bool {
				row := s.feats.Row(id)
				if row == nil {
					encErr = fmt.Errorf("index: pq backfill: list %d id %d has no feature row", l, id)
					return false
				}
				if err := cb.Encode(row, code); err != nil {
					encErr = fmt.Errorf("index: pq encode row %d: %w", id, err)
					return false
				}
				blocks.append(code)
				return true
			})
			if encErr != nil {
				return encErr
			}
			lists[l] = blocks
		}
		s.pqState.Store(&shardPQ{cb: cb, lists: lists})
		return nil
	}
	codes := newCodeMat(cb.M)
	n := uint32(s.feats.Len())
	code := make([]byte, cb.M)
	for id := uint32(0); id < n; id++ {
		if err := cb.Encode(s.feats.Row(id), code); err != nil {
			return fmt.Errorf("index: pq encode row %d: %w", id, err)
		}
		if _, err := codes.Append(code); err != nil {
			return fmt.Errorf("index: pq backfill row %d: %w", id, err)
		}
	}
	s.pqState.Store(&shardPQ{cb: cb, codes: codes})
	return nil
}

// PQEnabled reports whether searches currently scan ADC codes.
func (s *Shard) PQEnabled() bool { return s.pqState.Load() != nil }

// PQCodebook returns the installed product quantizer (nil when the shard
// scans exact floats).
func (s *Shard) PQCodebook() *pq.Codebook {
	if ps := s.pqState.Load(); ps != nil {
		return ps.cb
	}
	return nil
}

// CoveredOffset returns the message-queue offset this shard's contents
// cover (0 when unknown).
func (s *Shard) CoveredOffset() int64 { return s.coveredOffset.Load() }

// SetCoveredOffset records the queue offset the shard's contents cover; it
// travels with snapshots so receivers can fast-forward their real-time
// consumers past replayed messages.
func (s *Shard) SetCoveredOffset(off int64) {
	if off < 0 {
		off = 0
	}
	s.coveredOffset.Store(off)
}

// Config returns the shard's configuration, reflecting any runtime
// SetSearchWorkers adjustment so derived shards (snapshot loads, clones)
// inherit the live setting.
func (s *Shard) Config() Config {
	cfg := s.cfg
	cfg.SearchWorkers = int(s.searchWorkers.Load())
	return cfg
}

// SearchWorkers returns the current intra-query scan parallelism.
func (s *Shard) SearchWorkers() int { return int(s.searchWorkers.Load()) }

// SetSearchWorkers adjusts the intra-query scan parallelism at runtime;
// n <= 0 restores the configured value. Safe to call concurrently with
// searches — in-flight queries finish at the old width.
func (s *Shard) SetSearchWorkers(n int) {
	if n <= 0 {
		n = s.cfg.SearchWorkers
	}
	s.searchWorkers.Store(int32(n))
}

// Insert adds an image with its feature vector and product attributes
// (Fig. 8). If the URL was indexed before — the product was "removed from
// the market and put back" (§2.3) — and the supplied feature is nil or
// matches the stored row, the record and features are reused: the
// validity bit flips on, attributes refresh, and no new forward/inverted
// entries are created. A re-listing that supplies a *different* vector is
// NOT a reuse: the image is re-indexed under a fresh row, PQ code and
// inverted-list entry (serving the old vector forever was the stale-
// feature hole this closes), and the stale generation is tombstoned. It
// returns the image's (possibly new) ID and whether an existing record
// was reused.
func (s *Shard) Insert(attrs core.Attrs, feature []float32) (core.ImageID, bool, error) {
	// The reuse path below compares against a stored row; keep the mmap
	// mapping alive across that read (see Search).
	defer runtime.KeepAlive(s)
	if s.codebook == nil {
		return 0, false, ErrNotTrained
	}
	if attrs.URL == "" {
		return 0, false, errors.New("index: insert needs an image URL")
	}
	if len(attrs.URL) > forward.MaxURLLen {
		// Reject before appendRow commits anything: the feature row is
		// appended before the forward record, so a URL the forward index
		// would refuse must never reach it — a half-committed generation
		// would leave the matrices permanently skewed.
		return 0, false, fmt.Errorf("index: %w (%d bytes)", forward.ErrURLTooLong, len(attrs.URL))
	}

	s.tabMu.RLock()
	id, exists := s.byURL[attrs.URL]
	s.tabMu.RUnlock()
	if exists {
		if feature != nil {
			// The reuse path historically skipped this validation, so a
			// wrong-dim re-listing silently succeeded.
			if len(feature) != s.cfg.Dim {
				return 0, false, fmt.Errorf("index: feature dim %d, shard dim %d", len(feature), s.cfg.Dim)
			}
			if !rowsEqual(s.feats.Row(id), feature) {
				return s.refreshFeature(id, attrs, feature)
			}
		}
		// Reuse path: refresh numeric attributes — including the category,
		// or a product re-listed under a new category keeps serving its old
		// one to category-scoped searches — then revalidate. The validity
		// bit is the publish step (as in the fresh-insert path): flipping it
		// before the refresh would let a concurrent scoped search serve the
		// image under its stale attributes.
		s.fwd.SetSales(id, attrs.Sales)
		s.fwd.SetPraise(id, attrs.Praise)
		s.fwd.SetPrice(id, attrs.PriceCents)
		s.moveCategory(id, attrs.Category)
		s.attrEpoch.Add(1)
		// A re-listing may also attach the image to a different product:
		// move it so product-level removals and updates address it under
		// its current owner (full indexing rebuilds this mapping from the
		// event log; the real-time path must agree).
		if old, ok := s.fwd.ProductID(id); ok && old != attrs.ProductID {
			s.fwd.SetProductID(id, attrs.ProductID)
			s.tabMu.Lock()
			s.dropProductImageLocked(old, id)
			s.byProduct[attrs.ProductID] = append(s.byProduct[attrs.ProductID], id)
			s.tabMu.Unlock()
		}
		s.valid.Set(id)
		s.bump(func(st *Stats) { st.Inserts++; st.ReusedInserts++ })
		return id, true, nil
	}

	if len(feature) != s.cfg.Dim {
		return 0, false, fmt.Errorf("index: feature dim %d, shard dim %d", len(feature), s.cfg.Dim)
	}
	id, err := s.appendRow(attrs, feature)
	if err != nil {
		return 0, false, err
	}
	s.valid.Set(id)

	s.tabMu.Lock()
	s.byURL[attrs.URL] = id
	s.byProduct[attrs.ProductID] = append(s.byProduct[attrs.ProductID], id)
	s.tabMu.Unlock()

	s.bump(func(st *Stats) { st.Inserts++ })
	return id, false, nil
}

// appendRow commits a new image generation — feature row, forward record,
// PQ code (when a quantizer is installed) and inverted-list entry — and
// returns its ID. The caller publishes it by setting the validity bit.
// The feature row goes first: with a disk-backed store it is the one step
// that can genuinely fail at runtime (spill-file growth hitting ENOSPC),
// and appending it before anything else means such a failure commits
// nothing — the shard keeps ingesting once space frees, instead of being
// wedged behind a forward record with no row (permanent id skew). The
// remaining appends only fail on invariant violations.
func (s *Shard) appendRow(attrs core.Attrs, feature []float32) (core.ImageID, error) {
	fid, err := s.feats.Append(feature)
	if err != nil {
		return 0, fmt.Errorf("index: feature append: %w", err)
	}
	id, err := s.fwd.Append(attrs)
	if err != nil {
		return 0, fmt.Errorf("index: forward append: %w", err)
	}
	if fid != id {
		return 0, fmt.Errorf("index: id skew: forward %d, features %d", id, fid)
	}
	// Category membership publishes before the validity bit does (the
	// caller's publish step), so a scoped scan that sees the image as
	// valid also finds it in its category's bitmap.
	s.ensureCat(attrs.Category).Set(id)
	cluster := s.codebook.Assign(feature)
	if ps := s.pqState.Load(); ps != nil {
		// Keep code storage in lockstep: the code must be committed before
		// the inverted entry and validity bit make the id scannable. The
		// 4-bit layout is keyed by list position, so its append targets the
		// id's inverted list and must slot in exactly where inv.Append is
		// about to place the id.
		mb := ps.cb.CodeBytes()
		if cap(s.codeScratch) < mb {
			s.codeScratch = make([]byte, mb)
		}
		code := s.codeScratch[:mb]
		if err := ps.cb.Encode(feature, code); err != nil {
			return 0, fmt.Errorf("index: pq encode: %w", err)
		}
		if ps.codes != nil {
			cid, err := ps.codes.Append(code)
			if err != nil {
				return 0, fmt.Errorf("index: pq code append: %w", err)
			}
			if cid != id {
				return 0, fmt.Errorf("index: id skew: forward %d, codes %d", id, cid)
			}
		} else {
			blocks := ps.lists[cluster]
			if slot, have := int(blocks.published()), s.inv.ListLen(cluster); slot != have {
				return 0, fmt.Errorf("index: list %d slot skew: codes %d, inverted %d", cluster, slot, have)
			}
			blocks.append(code)
		}
	}
	if err := s.inv.Append(cluster, id); err != nil {
		return 0, fmt.Errorf("index: inverted append: %w", err)
	}
	return id, nil
}

// refreshFeature re-indexes a re-listed URL whose feature vector changed.
// Rows, codes and inverted entries are immutable under the lock-free
// reader contract, so the refresh appends a fresh generation — new row,
// new code, entry in the vector's *current* inverted list — and
// tombstones the stale ID instead of mutating it in place (which would
// tear under concurrent scans). The new generation is appended first
// (invisible until its validity bit publishes it), so a failed append
// leaves the old generation serving; then the stale ID's bit is cleared
// just before the new one is set. A search strictly between the two bit
// flips misses the image; one that straddles them (checked the stale bit
// before the clear, reached the new entry after the set) can transiently
// score both generations and return the URL twice — the same
// single-writer visibility window every non-atomic §2.3 update has, gone
// by the next query.
func (s *Shard) refreshFeature(stale core.ImageID, attrs core.Attrs, feature []float32) (core.ImageID, bool, error) {
	oldProduct, hadProduct := s.fwd.ProductID(stale)
	id, err := s.appendRow(attrs, feature)
	if err != nil {
		return 0, false, err
	}
	s.valid.Clear(stale)
	s.valid.Set(id)

	s.tabMu.Lock()
	s.byURL[attrs.URL] = id
	if hadProduct {
		s.dropProductImageLocked(oldProduct, stale)
	}
	s.byProduct[attrs.ProductID] = append(s.byProduct[attrs.ProductID], id)
	s.tabMu.Unlock()

	s.bump(func(st *Stats) { st.Inserts++; st.FeatureRefreshes++ })
	return id, false, nil
}

// dropProductImageLocked removes id from byProduct[product], deleting the
// entry when it empties. Caller holds tabMu.
func (s *Shard) dropProductImageLocked(product uint64, id core.ImageID) {
	olds := s.byProduct[product]
	kept := make([]core.ImageID, 0, max(len(olds)-1, 0))
	for _, v := range olds {
		if v != id {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		delete(s.byProduct, product)
	} else {
		s.byProduct[product] = kept
	}
}

// rowsEqual compares a stored row against an incoming vector bitwise —
// NaNs compare equal to themselves, so a NaN-carrying vector cannot force
// a fresh generation on every re-listing.
func rowsEqual(row, feature []float32) bool {
	if len(row) != len(feature) {
		return false
	}
	for i := range row {
		if math.Float32bits(row[i]) != math.Float32bits(feature[i]) {
			return false
		}
	}
	return true
}

// catBitmap returns the live membership bitmap of category cat, or nil if
// the shard has never indexed an image under it.
func (s *Shard) catBitmap(cat uint16) *bitmapx.Bitmap {
	dir := s.cats.Load()
	if dir == nil || int(cat) >= len(*dir) {
		return nil
	}
	return (*dir)[cat]
}

// ensureCat returns category cat's bitmap, growing the directory
// copy-on-write when absent. Called only from the single real-time
// indexing writer (or quiesced loads), so the load-copy-store below never
// races with another writer; concurrent filtered scans see either the old
// or the new directory, both internally consistent.
func (s *Shard) ensureCat(cat uint16) *bitmapx.Bitmap {
	if b := s.catBitmap(cat); b != nil {
		return b
	}
	var old []*bitmapx.Bitmap
	if dir := s.cats.Load(); dir != nil {
		old = *dir
	}
	next := make([]*bitmapx.Bitmap, max(len(old), int(cat)+1))
	copy(next, old)
	b := bitmapx.New(0)
	next[cat] = b
	s.cats.Store(&next)
	return b
}

// moveCategory keeps the per-category bitmaps in lockstep with a forward
// category update. Publication order is the category-bitmap invariant: the
// new category's bit is set first, then the forward record, and the old
// bit clears last — a valid image is always a member of at least the
// bitmap matching its forward category, so a scoped scan intersecting
// (valid ∧ category) never drops an image mid-move. The transient overlap
// (member of both bitmaps) can admit the image into a scan scoped to its
// old category for one visibility window; the hit carries its forward
// (new) category, so the blender's post-merge re-check drops it.
func (s *Shard) moveCategory(id core.ImageID, newCat uint16) {
	_, _, _, old, ok := s.fwd.Numeric(id)
	s.ensureCat(newCat).Set(id)
	s.fwd.SetCategory(id, newCat)
	if ok && old != newCat {
		if b := s.catBitmap(old); b != nil {
			b.Clear(id)
		}
	}
}

// predKey identifies one attribute-predicate combination.
type predKey struct {
	minSales, minPrice, maxPrice uint32
}

// predEntry is one materialised predicate bitmap: a set bit for every
// forward record — valid or not; validity is intersected separately —
// whose sales/price pass the key's predicates, covering rows
// [0, builtLen). Ids at or beyond builtLen take the per-candidate slow
// path instead.
type predEntry struct {
	words    bitmapx.Words
	builtLen uint32
}

// predState is the predicate-bitmap cache published for one attrEpoch
// value; an epoch mismatch discards it wholesale.
type predState struct {
	epoch   uint64
	entries map[predKey]*predEntry
}

// maxPredEntries bounds the cache; predicate combinations beyond it evict
// arbitrarily on the next publish.
const maxPredEntries = 8

// predWords returns the materialised bitmap for the request's attribute
// predicates, building and caching it when absent. Any querying goroutine
// may build — construction reads only lock-free structures — and when two
// race, the last publish wins and the loser's work is one wasted O(rows)
// pass. A price/sales update concurrent with a build can leave one stale
// bit in the entry for the rest of the epoch; that is the same visibility
// window as any §2.3 non-atomic update, and the blender's post-merge
// re-check drops such a hit.
func (s *Shard) predWords(req *core.SearchRequest) *predEntry {
	key := predKey{minSales: req.MinSales, minPrice: req.MinPriceCents, maxPrice: req.MaxPriceCents}
	epoch := s.attrEpoch.Load()
	cur := s.predCache.Load()
	if cur != nil && cur.epoch == epoch {
		if e, ok := cur.entries[key]; ok {
			return e
		}
	}
	n := uint32(s.fwd.Len())
	e := &predEntry{builtLen: n, words: make(bitmapx.Words, (n+63)/64)}
	for id := uint32(0); id < n; id++ {
		sales, _, price, _, ok := s.fwd.Numeric(id)
		if ok && req.MatchesAttrs(sales, price) {
			e.words[id/64] |= 1 << (id % 64)
		}
	}
	next := &predState{epoch: epoch, entries: map[predKey]*predEntry{key: e}}
	if cur != nil && cur.epoch == epoch {
		for k, v := range cur.entries {
			if len(next.entries) >= maxPredEntries {
				break
			}
			next.entries[k] = v
		}
	}
	s.predCache.Store(next)
	return e
}

// admission is the per-query candidate filter shared by the exact and ADC
// scan paths. Unfiltered queries keep the zero-copy live path: one atomic
// read against the validity bitmap per candidate. Filtered queries
// pre-intersect validity ∧ category ∧ attribute predicates into one flat
// bitmap, so the scan admits a candidate with a single word test instead
// of a forward lookup each, and the set-bit count prices the filter's
// selectivity before any list is probed. The bitmap is a snapshot: rows
// published or delisted mid-query are invisible to it — the usual
// single-writer visibility window. Ids at or beyond tail (rows appended
// after the snapshot, or past a cached predicate bitmap's build length)
// fall back to the pre-pushdown per-candidate check.
type admission struct {
	s          *Shard
	req        *core.SearchRequest
	live       *bitmapx.Bitmap // unfiltered: consult the live validity bitmap
	words      bitmapx.Words   // filtered: pre-intersected admission words
	tail       uint32          // ids ≥ tail take the slow per-candidate path
	matches    int             // set bits in words (selectivity estimate)
	exhaustive bool            // words covered every committed row at build time
}

// admit reports whether candidate id passes the query's filter.
func (a *admission) admit(id uint32) bool {
	if a.live != nil {
		return a.live.Get(id)
	}
	if id >= a.tail {
		return a.s.admitSlow(id, a.req)
	}
	return a.words.Get(id)
}

// admitSlow is the per-candidate fallback for ids beyond the admission
// bitmap's coverage: one validity read plus one forward lookup, exactly
// the pre-pushdown check.
func (s *Shard) admitSlow(id uint32, req *core.SearchRequest) bool {
	if !s.valid.Get(id) {
		return false
	}
	sales, _, price, cat, ok := s.fwd.Numeric(id)
	if !ok {
		return false
	}
	if req.Category >= 0 && int32(cat) != req.Category {
		return false
	}
	return req.MatchesAttrs(sales, price)
}

// buildAdmission assembles the query's candidate filter into the pooled
// scratch buffers. The empty-and-exhaustive result (no committed row can
// pass, e.g. a never-seen category) lets Search return an empty page
// without probing anything.
func (s *Shard) buildAdmission(req *core.SearchRequest, sc *searchScratch) admission {
	if req.Category < 0 && !req.HasPredicates() {
		return admission{live: s.valid}
	}
	a := admission{s: s, req: req}
	if req.Category > math.MaxUint16 {
		// Forward records store the category as uint16; nothing can match.
		a.exhaustive = true
		return a
	}
	sc.adm = s.valid.AppendWords(sc.adm[:0])
	tail := uint32(len(sc.adm)) * 64
	if req.Category >= 0 {
		cb := s.catBitmap(uint16(req.Category))
		if cb == nil {
			// No committed row has ever carried the category.
			a.exhaustive = true
			return a
		}
		sc.admCat = cb.AppendWords(sc.admCat[:0])
		// The category bitmap may trail the validity bitmap in growth;
		// absent words mean "not a member", so pad with zeros rather than
		// letting And truncate the coverage.
		for len(sc.admCat) < len(sc.adm) {
			sc.admCat = append(sc.admCat, 0)
		}
		sc.adm = bitmapx.And(sc.adm, sc.adm, sc.admCat)
	}
	if req.HasPredicates() {
		e := s.predWords(req)
		sc.adm = bitmapx.And(sc.adm, sc.adm, e.words)
		if t := uint32(len(sc.adm)) * 64; t < tail {
			tail = t
		}
		if e.builtLen < tail {
			tail = e.builtLen
		}
	}
	a.words = sc.adm
	a.tail = tail
	a.matches = a.words.Count()
	a.exhaustive = tail >= uint32(s.fwd.Len())
	return a
}

// filterCandidateTarget is how many admitted candidates — as a multiple of
// k — the widened probe set should surface in expectation.
const filterCandidateTarget = 3

// widenNProbe adaptively raises a filtered query's probe width: with
// matches admitted images spread across NLists lists, probing nprobe lists
// surfaces ≈ matches·nprobe/NLists admitted candidates in expectation; aim
// for filterCandidateTarget·k of them, clamped to FilterMaxNProbe (0
// derives 8× the base width). An explicit wide nprobe is never narrowed.
func (s *Shard) widenNProbe(nprobe, k, matches int) int {
	maxProbe := s.cfg.FilterMaxNProbe
	if maxProbe <= 0 {
		maxProbe = 8 * nprobe
	}
	if maxProbe > s.cfg.NLists {
		maxProbe = s.cfg.NLists
	}
	if maxProbe < nprobe {
		return nprobe
	}
	if matches <= 0 {
		// Every match (if any) lives past the bitmap's coverage — fresh
		// appends only; assume worst-case selectivity.
		return maxProbe
	}
	want := (filterCandidateTarget*k*s.cfg.NLists + matches - 1) / matches
	if want <= nprobe {
		return nprobe
	}
	if want > maxProbe {
		want = maxProbe
	}
	return want
}

// widenRerank scales a filtered query's ADC over-fetch depth by the same
// factor as its probe widening, capped by FilterMaxRerankK (0 derives 4×
// the unfiltered depth) and MaxTopK.
func (s *Shard) widenRerank(r, boost int) int {
	if boost <= 1 {
		return r
	}
	maxR := s.cfg.FilterMaxRerankK
	if maxR <= 0 {
		maxR = 4 * r
	}
	if maxR > MaxTopK {
		maxR = MaxTopK
	}
	if maxR < r {
		maxR = r
	}
	if r > maxR/boost {
		return maxR
	}
	return r * boost
}

// HasURL reports whether the shard has ever indexed url (valid or not).
func (s *Shard) HasURL(url string) bool {
	s.tabMu.RLock()
	defer s.tabMu.RUnlock()
	_, ok := s.byURL[url]
	return ok
}

// RemoveProduct flips the validity bit of every image of the product to 0
// (§2.3 "Deletion: ... as simple as changing the corresponding validity
// flag in the bitmap from 1 (valid) to 0 (invalid)").
func (s *Shard) RemoveProduct(productID uint64) (int, error) {
	s.tabMu.RLock()
	ids := s.byProduct[productID]
	s.tabMu.RUnlock()
	if len(ids) == 0 {
		return 0, fmt.Errorf("%w: %d", ErrUnknownProduct, productID)
	}
	n := 0
	for _, id := range ids {
		if s.valid.Clear(id) {
			n++
		}
	}
	s.bump(func(st *Stats) { st.Deletions += int64(n) })
	return n, nil
}

// RemoveImageURL flips the validity bit of one image addressed by URL —
// the per-image deletion path used when update events are routed by
// hash(URL) to the owning partition. It reports whether the bit changed.
func (s *Shard) RemoveImageURL(url string) (bool, error) {
	s.tabMu.RLock()
	id, ok := s.byURL[url]
	s.tabMu.RUnlock()
	if !ok {
		return false, fmt.Errorf("%w: url %q", ErrUnknownProduct, url)
	}
	changed := s.valid.Clear(id)
	if changed {
		s.bump(func(st *Stats) { st.Deletions++ })
	}
	return changed, nil
}

// UpdateAttrsURL atomically updates the numeric attributes — sales,
// praise, price and category — of one image addressed by URL (Fig. 7).
func (s *Shard) UpdateAttrsURL(url string, sales, praise, price uint32, category uint16) error {
	s.tabMu.RLock()
	id, ok := s.byURL[url]
	s.tabMu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: url %q", ErrUnknownProduct, url)
	}
	s.fwd.SetSales(id, sales)
	s.fwd.SetPraise(id, praise)
	s.fwd.SetPrice(id, price)
	s.moveCategory(id, category)
	s.attrEpoch.Add(1)
	s.bump(func(st *Stats) { st.AttrUpdates++ })
	return nil
}

// UpdateAttrs atomically updates the numeric attributes — sales, praise,
// price and category — of every image of the product (Fig. 7). Unknown
// products return ErrUnknownProduct so the caller can decide whether the
// update was misrouted.
func (s *Shard) UpdateAttrs(productID uint64, sales, praise, price uint32, category uint16) (int, error) {
	s.tabMu.RLock()
	ids := s.byProduct[productID]
	s.tabMu.RUnlock()
	if len(ids) == 0 {
		return 0, fmt.Errorf("%w: %d", ErrUnknownProduct, productID)
	}
	for _, id := range ids {
		s.fwd.SetSales(id, sales)
		s.fwd.SetPraise(id, praise)
		s.fwd.SetPrice(id, price)
		s.moveCategory(id, category)
	}
	s.attrEpoch.Add(1)
	s.bump(func(st *Stats) { st.AttrUpdates++ })
	return len(ids), nil
}

// ProductImages returns the image IDs of a product (empty if unknown).
func (s *Shard) ProductImages(productID uint64) []core.ImageID {
	s.tabMu.RLock()
	defer s.tabMu.RUnlock()
	ids := s.byProduct[productID]
	out := make([]core.ImageID, len(ids))
	copy(out, ids)
	return out
}

// Valid reports whether image id is currently searchable.
func (s *Shard) Valid(id core.ImageID) bool { return s.valid.Get(id) }

// Attrs returns the forward-index record of image id.
func (s *Shard) Attrs(id core.ImageID) (core.Attrs, bool) { return s.fwd.Get(id) }

// Feature returns image id's feature row (nil if unknown). Callers must
// not modify it, and must keep the shard reachable while using it: with
// FeatureStoreMmap the slice points into a mapping that is unmapped when
// the shard is finalized or Closed.
//
//jdvs:pinned accessor returns the raw row; the doc contract above moves the pin to the caller
func (s *Shard) Feature(id core.ImageID) []float32 { return s.feats.Row(id) }

// searchScratch is the pooled per-query scratch: probe-selection buffers,
// one top-k selector per scan worker, and the merge output. Pooling keeps
// the hot path free of per-query allocations across serial and parallel
// scans.
type searchScratch struct {
	probe     []int
	probeDist []float32
	sels      []*topk.Selector
	parts     [][]topk.Item
	merged    []topk.Item
	counts    []int
	ids       [][]uint32  // per-worker id snapshots of the blocked 4-bit scan
	missing   []topk.Item // re-rank candidates whose raw row was unavailable
	adm       bitmapx.Words
	admCat    bitmapx.Words
}

var searchScratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// lutPool pools ADC lookup tables separately from searchScratch: the
// batched path needs one live LUT per batch member — a variable number no
// single scratch field can serve — and sharing one pool between the
// single-query and batched paths keeps both allocation-free at steady
// state (visible in BenchmarkADCScan's allocs/op). Tables are stored as
// pointers so pool puts don't allocate, and BuildLUT grows a too-small
// table in place of the pooled slice.
var lutPool = sync.Pool{New: func() any { return new([]float32) }}

// ensureIDBufs guarantees n per-worker id buffers exist. Must run before
// scan workers fan out: workers index sc.ids[w] concurrently, so the
// slice header may not grow under them.
func (sc *searchScratch) ensureIDBufs(n int) {
	for len(sc.ids) < n {
		sc.ids = append(sc.ids, nil)
	}
}

// selectors returns n selectors reconfigured for capacity k.
func (sc *searchScratch) selectors(n, k int) []*topk.Selector {
	for len(sc.sels) < n {
		sc.sels = append(sc.sels, topk.New(k))
	}
	sels := sc.sels[:n]
	for _, sel := range sels {
		sel.ResetK(k)
	}
	return sels
}

// workerCounts returns n zeroed per-worker scanned counters.
func (sc *searchScratch) workerCounts(n int) []int {
	if cap(sc.counts) < n {
		sc.counts = make([]int, n)
	}
	sc.counts = sc.counts[:n]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	return sc.counts
}

// Search scans the nprobe nearest inverted lists and returns the k nearest
// valid images with their attributes (§2.4); TopK is clamped to MaxTopK.
// Lock-free with respect to the real-time indexing writer. When the
// shard's SearchWorkers is above 1 the
// probed lists are striped across that many goroutines, each selecting a
// private top-k over its share, merged at the end; results are identical
// to the serial scan.
//
// When a product quantizer is installed (TrainPQ / SetPQCodebook / a
// PQ-bearing snapshot) the scan scores ADC codes instead of float rows: a
// per-query lookup table turns each candidate into M byte-indexed table
// adds, the scan over-fetches RerankK candidates, and that short list is
// re-ranked exactly against the raw feature rows before the final top-k.
// Shards without a quantizer take the exact float path unchanged.
func (s *Shard) Search(req *core.SearchRequest) (*core.SearchResponse, error) {
	if s.codebook == nil {
		return nil, ErrNotTrained
	}
	if len(req.Feature) != s.cfg.Dim {
		return nil, fmt.Errorf("index: query dim %d, shard dim %d", len(req.Feature), s.cfg.Dim)
	}
	k := req.TopK
	if k <= 0 {
		k = 10
	}
	if k > MaxTopK {
		k = MaxTopK
	}
	nprobe := req.NProbe
	if nprobe <= 0 {
		nprobe = s.cfg.DefaultNProbe
	}

	sc := searchScratchPool.Get().(*searchScratch)
	defer searchScratchPool.Put(sc)

	// Build the candidate-admission filter before probe selection: its
	// set-bit count prices the filter's selectivity, which may widen the
	// probe set (and the ADC re-rank depth, by the same factor) so that
	// selective filters still fill the result page.
	adm := s.buildAdmission(req, sc)
	rerankBoost := 1
	if adm.live == nil {
		s.filteredSearches.Add(1)
		if adm.matches == 0 && adm.exhaustive {
			// No committed row passes the filter; nothing to probe.
			return &core.SearchResponse{}, nil
		}
		widened := s.widenNProbe(nprobe, k, adm.matches)
		if widened > nprobe {
			rerankBoost = (widened + nprobe - 1) / nprobe
			nprobe = widened
		}
	}

	sc.probe, sc.probeDist = vecmath.TopCentroidsInto(
		sc.probe, sc.probeDist, req.Feature, s.codebook.Centroids, s.cfg.Dim, nprobe)
	lists := sc.probe

	workers := int(s.searchWorkers.Load())
	if workers > len(lists) {
		workers = len(lists)
	}
	if workers < 1 {
		workers = 1
	}

	// Pin the shard for the whole query: row slices handed out by a
	// disk-backed feature store point into mmap'd memory that the store's
	// finalizer unmaps once the shard is unreachable (e.g. hot-swapped out
	// mid-query). The receiver alone does not guarantee liveness across
	// the last row read under precise stack maps; the KeepAlive below
	// does.
	defer runtime.KeepAlive(s)

	var items []topk.Item
	scanned := 0
	if ps := s.pqState.Load(); ps != nil {
		items, scanned = s.searchADC(req, lists, workers, k, sc, ps, &adm, rerankBoost)
	} else {
		scanned = s.scanStriped(workers, k, sc, func(start, stride int, sel *topk.Selector) int {
			return s.scanLists(req, lists, start, stride, sel, &adm)
		})
		items = sc.merged
	}

	return s.assembleResponse(items, scanned, len(lists)), nil
}

// assembleResponse joins the final ranked items with their forward-index
// attributes — the shared last step of Search and SearchBatch, so batched
// responses match unbatched ones field for field.
func (s *Shard) assembleResponse(items []topk.Item, scanned, probed int) *core.SearchResponse {
	resp := &core.SearchResponse{
		Hits:    make([]core.Hit, 0, len(items)),
		Scanned: scanned,
		Probed:  probed,
	}
	for _, it := range items {
		id := uint32(it.ID)
		a, ok := s.fwd.Get(id)
		if !ok {
			continue
		}
		resp.Hits = append(resp.Hits, core.Hit{
			Image:      core.ImageRef{Local: id},
			Dist:       it.Dist,
			ProductID:  a.ProductID,
			Sales:      a.Sales,
			Praise:     a.Praise,
			PriceCents: a.PriceCents,
			Category:   a.Category,
			URL:        a.URL,
		})
	}
	return resp
}

// scanLists scans every probed list whose index ≡ start (mod stride),
// pushing admitted candidates into sel, and returns how many it scanned.
// Striding interleaves the (distance-ordered, unevenly sized) lists across
// workers for balanced shares. Validity, category scope and attribute
// predicates are all decided by the admission filter — a single word test
// on the pre-intersected bitmap for filtered queries, a validity-bit read
// otherwise.
func (s *Shard) scanLists(req *core.SearchRequest, lists []int, start, stride int, sel *topk.Selector, adm *admission) int {
	// Search pins the shard for the whole query, but workers run this on
	// their own goroutines; pin here too so the row reads stay covered no
	// matter who calls.
	defer runtime.KeepAlive(s)
	scanned := 0
	scan := func(id uint32) bool {
		if !adm.admit(id) {
			return true // off-market or filtered out (§2.2 validity, scope, predicates)
		}
		row := s.feats.Row(id)
		if row == nil {
			return true
		}
		scanned++
		sel.Push(uint64(id), vecmath.L2Squared(req.Feature, row))
		return true
	}
	for i := start; i < len(lists); i += stride {
		s.inv.Scan(lists[i], scan)
	}
	return scanned
}

// Per-bit-width default ADC over-fetch multipliers (RerankK = mul×TopK
// when the knob is unset), from the measured sweep on the 100k image /
// dim 64 / nprobe 8 corpus of ~195-image near-duplicate motifs recorded
// in docs/OPERATIONS.md (re-run: JDVS_RERANK_SWEEP=1 go test
// ./internal/index/ -run TestRerankSweep -v). The sweep's finding: at
// production corpus-to-codebook ratios the depth that matters is the one
// that covers the query's near-duplicate group — both widths climb the
// same curve and pass recall@10 0.99 at mul=20 (8-bit 0.9915, 4-bit
// 0.9930), saturating at 1.0 by mul=30. 8-bit defaults to that knee; the
// 16-centroid 4-bit quantizer gets the full-saturation depth as margin
// for corpora fine-grained enough for codebook resolution to matter —
// which its cheaper scan more than pays for (610µs/query vs the 8-bit
// default's 963µs on the sweep corpus).
const (
	defaultRerankMul8 = 20
	defaultRerankMul4 = 30
)

// rerankDepth derives the ADC over-fetch depth for one query under the
// installed quantizer's bit width.
func (s *Shard) rerankDepth(k, bits int) int {
	mul := defaultRerankMul8
	if bits == 4 {
		mul = defaultRerankMul4
	}
	r := mul * k
	if s.cfg.RerankK > 0 {
		r = s.cfg.RerankK
	}
	if r < k {
		r = k
	}
	if r > MaxTopK {
		r = MaxTopK
	}
	return r
}

// scanStriped runs scan(start, stride, sel) striped across the workers —
// the §2.4 multi-thread fan-out shared by the exact and ADC paths — and
// leaves the merged best-k candidates in sc.merged, returning the total
// candidates scored. scan must be safe for concurrent calls with distinct
// (start, sel) pairs.
func (s *Shard) scanStriped(workers, k int, sc *searchScratch, scan func(start, stride int, sel *topk.Selector) int) int {
	if workers == 1 {
		sel := sc.selectors(1, k)[0]
		n := scan(0, 1, sel)
		sc.merged = topk.MergeInto(sc.merged, k, sel.Sorted())
		return n
	}
	sels := sc.selectors(workers, k)
	counts := sc.workerCounts(workers)
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts[w] = scan(w, workers, sels[w])
		}(w)
	}
	// Worker 0 runs on the calling goroutine.
	counts[0] = scan(0, workers, sels[0])
	wg.Wait()
	parts := sc.parts[:0]
	scanned := 0
	for w := 0; w < workers; w++ {
		scanned += counts[w]
		parts = append(parts, sels[w].Sorted())
	}
	sc.parts = parts
	sc.merged = topk.MergeInto(sc.merged, k, parts...)
	return scanned
}

// searchADC is the product-quantized scan: build the query's ADC lookup
// table, select the rerankDepth approximate-nearest candidates over the
// probed lists (striped across workers exactly like the exact scan), then
// re-rank that short list against the raw feature rows and keep the exact
// top k. Returns the final items and the number of candidates scored.
func (s *Shard) searchADC(req *core.SearchRequest, lists []int, workers, k int, sc *searchScratch, ps *shardPQ, adm *admission, rerankBoost int) ([]topk.Item, int) {
	// The exact re-rank reads raw rows; keep the mmap mapping alive for
	// the duration (see Search).
	defer runtime.KeepAlive(s)
	// Dimensions were validated against the shard config, and the codebook
	// was validated against the shard at install time, so BuildLUT cannot
	// fail here.
	lutp := lutPool.Get().(*[]float32)
	defer lutPool.Put(lutp)
	*lutp, _ = ps.cb.BuildLUT(req.Feature, *lutp)
	lut := *lutp
	rerankK := s.widenRerank(s.rerankDepth(k, ps.cb.Bits), rerankBoost)
	var scanned int
	if ps.lists != nil {
		sc.ensureIDBufs(workers)
		scanned = s.scanStriped(workers, rerankK, sc, func(start, stride int, sel *topk.Selector) int {
			return s.scanListsADC4(lists, start, stride, sel, ps, lut, adm, sc)
		})
	} else {
		scanned = s.scanStriped(workers, rerankK, sc, func(start, stride int, sel *topk.Selector) int {
			return s.scanListsADC(req, lists, start, stride, sel, ps, lut, adm)
		})
	}
	return s.rerankExact(req, k, sc, adm), scanned
}

// rerankExact re-ranks the ADC-selected candidates in sc.merged exactly
// against the raw feature rows and returns the final top k — the shared
// last stage of the single-query and batched ADC paths.
func (s *Shard) rerankExact(req *core.SearchRequest, k int, sc *searchScratch, adm *admission) []topk.Item {
	// Raw row reads below; keep the mmap mapping alive (see Search).
	defer runtime.KeepAlive(s)
	// The candidates are safely copied into sc.merged, so the pooled
	// selectors can be reconfigured for the final top-k.
	sel := sc.selectors(1, k)[0]
	ranked := 0
	missing := sc.missing[:0]
	for _, it := range sc.merged {
		row := s.feats.Row(uint32(it.ID))
		if row == nil {
			// The raw row is unavailable (it was scannable by code, so
			// this is a store-level gap, not an invalid image). Dropping
			// it silently could return fewer than k results even though
			// the shard holds ≥ k valid images; remember it for backfill.
			missing = append(missing, it)
			continue
		}
		ranked++
		sel.Push(it.ID, vecmath.L2Squared(req.Feature, row))
	}
	if ranked < k {
		// Backfill from the next approximate candidates: sc.merged is
		// ADC-distance-ordered, and the ADC estimate is the best score
		// available for a row the store cannot produce. Only the shortfall
		// is filled, so an approximate score never displaces an exact one
		// when k exact candidates exist.
		for _, it := range missing {
			if ranked == k {
				break
			}
			// Re-check admission before backfilling: the scan admitted this
			// candidate, but it may have been delisted or drifted out of the
			// filter between the scan and the re-rank, and unlike the exact
			// branch this one reads nothing else that would catch it.
			if !adm.admit(uint32(it.ID)) {
				continue
			}
			ranked++
			sel.Push(it.ID, it.Dist)
		}
	}
	sc.missing = missing[:0]
	return sel.Sorted()
}

// scanListsADC is scanLists scoring PQ codes through the query's lookup
// table instead of float rows: M byte-indexed adds per candidate instead
// of Dim float subtract-multiply-adds over a Dim×4-byte row.
func (s *Shard) scanListsADC(req *core.SearchRequest, lists []int, start, stride int, sel *topk.Selector, ps *shardPQ, lut []float32, adm *admission) int {
	scanned := 0
	scan := func(id uint32) bool {
		if !adm.admit(id) {
			return true // off-market or filtered out (§2.2 validity, scope, predicates)
		}
		code := ps.codes.Row(id)
		if code == nil {
			return true
		}
		scanned++
		sel.Push(uint64(id), pq.ADCDist(lut, code))
		return true
	}
	for i := start; i < len(lists); i += stride {
		s.inv.Scan(lists[i], scan)
	}
	return scanned
}

// scanListsADC4 is the 4-bit fast-scan list walk: snapshot the list's
// published ids (insertion order, which by the codeBlocks contract is
// slot order), stream its full code blocks through the gather kernel, and
// score the partially filled tail block per slot. Distances come first
// and admission second — the reverse of the 8-bit path — because the
// blocked kernel scores 32 candidates in one sweep for less than the cost
// of 32 admission reads, and the current-worst threshold then discards
// most candidates before any admission word is touched. The scanned count
// is therefore "codes scored" (every published code in the probed lists),
// not "candidates admitted" as on the 8-bit path; the batched path counts
// identically, so batched and unbatched responses match field for field.
//
// The slice of per-worker id buffers is indexed by start: scanStriped
// hands worker w the stripe starting at w (and 0 on the serial path), and
// sc.ensureIDBufs ran before the fan-out.
func (s *Shard) scanListsADC4(lists []int, start, stride int, sel *topk.Selector, ps *shardPQ, lut []float32, adm *admission, sc *searchScratch) int {
	mb := ps.cb.CodeBytes()
	var dists [pq.BlockCodes]float32
	ids := sc.ids[start][:0]
	scanned := 0
	for i := start; i < len(lists); i += stride {
		l := lists[i]
		ids = ids[:0]
		s.inv.Scan(l, func(id uint32) bool { ids = append(ids, id); return true })
		scanned += len(ids)
		blocks := ps.lists[l]
		full := len(ids) / pq.BlockCodes
		for b := 0; b < full; b++ {
			pq.ScanBlock4(lut, blocks.block(b), mb, &dists)
			worst, bounded := sel.WorstDist()
			base := b * pq.BlockCodes
			for sl, d := range dists {
				// Skipping on d > worst never changes the result — the
				// selector would reject the push — it only skips the
				// admission read, so batched/unbatched/serial/parallel
				// scans still select identical candidates.
				if bounded && d > worst {
					continue
				}
				id := ids[base+sl]
				if !adm.admit(id) {
					continue
				}
				if sel.Push(uint64(id), d) {
					worst, bounded = sel.WorstDist()
				}
			}
		}
		if tail := len(ids) % pq.BlockCodes; tail > 0 {
			// The tail block has unpublished slots whose lane bytes the
			// writer may still be filling; the per-slot scalar path reads
			// only published slots' bytes (bit-identical to the kernel).
			blk := blocks.block(full)
			base := full * pq.BlockCodes
			for sl := 0; sl < tail; sl++ {
				d := pq.ADCDistBlockSlot(lut, blk, mb, sl)
				id := ids[base+sl]
				if !adm.admit(id) {
					continue
				}
				sel.Push(uint64(id), d)
			}
		}
	}
	sc.ids[start] = ids
	return scanned
}

// Stats returns a snapshot of shard counters.
func (s *Shard) Stats() Stats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	st.Images = s.fwd.Len()
	st.ValidImages = s.valid.Count()
	st.FilteredSearches = s.filteredSearches.Load()
	st.Lists = s.inv.Lists()
	st.FeatureHeapBytes = s.feats.heapBytes()
	if ps := s.pqState.Load(); ps != nil {
		st.PQCodes = ps.codeCount()
		st.PQBits = 8
		if ps.cb.Bits == 4 {
			st.PQBits = 4
		}
		st.PQCodeBytes = ps.codeHeapBytes()
	}
	s.tabMu.RLock()
	st.Products = len(s.byProduct)
	s.tabMu.RUnlock()
	return st
}

func (s *Shard) bump(fn func(*Stats)) {
	s.statsMu.Lock()
	fn(&s.stats)
	s.statsMu.Unlock()
}

// snapshot format identifiers. Version 1 ends after the feature matrix;
// version 2 adds an 8-byte covered queue offset after the version byte and
// a trailing PQ section ([1B present] + PQ codebook + code matrix);
// version 3 inserts a bit-width byte after the present flag ([1B present]
// [1B bits] + codebook + codes) so 4-bit quantizers serialise — 8-bit
// codes keep the v2 code-matrix layout, 4-bit codes serialise per
// inverted list (writeCodeBlockLists). Older streams still load: v1
// installs no quantizer (the shard serves the exact float path until
// TrainPQ/TrainPQStored re-encodes it) and v2's missing bits byte reads
// as 8.
const (
	snapMagic     = "JDVSSNAP"
	snapVersionV1 = 1
	snapVersionV2 = 2
	snapVersion   = 3
)

// WriteSnapshot serialises the full shard (covered offset, codebook,
// forward, inverted, bitmap, features, PQ codebook + codes when
// installed). The real-time writer must be quiesced.
func (s *Shard) WriteSnapshot(w io.Writer) error {
	if s.codebook == nil {
		return ErrNotTrained
	}
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{snapVersion}); err != nil {
		return err
	}
	var off [8]byte
	binary.LittleEndian.PutUint64(off[:], uint64(s.coveredOffset.Load()))
	if _, err := w.Write(off[:]); err != nil {
		return err
	}
	if err := writeCodebook(w, s.codebook); err != nil {
		return fmt.Errorf("index: snapshot codebook: %w", err)
	}
	if _, err := s.fwd.WriteTo(w); err != nil {
		return fmt.Errorf("index: snapshot forward: %w", err)
	}
	if _, err := s.inv.WriteTo(w); err != nil {
		return fmt.Errorf("index: snapshot inverted: %w", err)
	}
	if err := writeBitmap(w, s.valid); err != nil {
		return fmt.Errorf("index: snapshot bitmap: %w", err)
	}
	if _, err := s.feats.writeTo(w); err != nil {
		return fmt.Errorf("index: snapshot features: %w", err)
	}
	ps := s.pqState.Load()
	if ps == nil {
		if _, err := w.Write([]byte{0}); err != nil {
			return err
		}
		return nil
	}
	bits := byte(8)
	if ps.cb.Bits == 4 {
		bits = 4
	}
	if _, err := w.Write([]byte{1, bits}); err != nil {
		return err
	}
	if err := writePQCodebook(w, ps.cb); err != nil {
		return fmt.Errorf("index: snapshot pq codebook: %w", err)
	}
	if ps.codes != nil {
		if _, err := ps.codes.writeTo(w); err != nil {
			return fmt.Errorf("index: snapshot pq codes: %w", err)
		}
	} else if err := writeCodeBlockLists(w, ps.lists, ps.cb.CodeBytes()); err != nil {
		return fmt.Errorf("index: snapshot pq code lists: %w", err)
	}
	return nil
}

// LoadSnapshot replaces the shard contents from a WriteSnapshot stream and
// rebuilds the lookup tables from the forward index. Readers and the
// writer must be quiesced. The current v3 layout (bit-width-tagged PQ),
// the v2 layout (always-8-bit PQ) and the legacy v1 layout are all
// accepted.
func (s *Shard) LoadSnapshot(r io.Reader) error {
	magic := make([]byte, len(snapMagic)+1)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("index: snapshot header: %w", err)
	}
	if string(magic[:len(snapMagic)]) != snapMagic {
		return errors.New("index: bad snapshot magic")
	}
	version := magic[len(snapMagic)]
	if version != snapVersionV1 && version != snapVersionV2 && version != snapVersion {
		return fmt.Errorf("index: unsupported snapshot version %d", version)
	}
	covered := int64(0)
	if version >= snapVersionV2 {
		var off [8]byte
		if _, err := io.ReadFull(r, off[:]); err != nil {
			return fmt.Errorf("index: snapshot covered offset: %w", err)
		}
		covered = int64(binary.LittleEndian.Uint64(off[:]))
		if covered < 0 {
			return fmt.Errorf("index: corrupt snapshot covered offset %d", covered)
		}
	}
	cb, err := readCodebook(r)
	if err != nil {
		return fmt.Errorf("index: snapshot codebook: %w", err)
	}
	if err := s.SetCodebook(cb); err != nil {
		return err
	}
	if _, err := s.fwd.ReadFrom(r); err != nil {
		return fmt.Errorf("index: snapshot forward: %w", err)
	}
	if _, err := s.inv.ReadFrom(r); err != nil {
		return fmt.Errorf("index: snapshot inverted: %w", err)
	}
	if err := readBitmap(r, s.valid); err != nil {
		return fmt.Errorf("index: snapshot bitmap: %w", err)
	}
	if _, err := s.feats.readFrom(r); err != nil {
		return fmt.Errorf("index: snapshot features: %w", err)
	}
	var fresh *shardPQ
	if version >= snapVersionV2 {
		var flag [1]byte
		if _, err := io.ReadFull(r, flag[:]); err != nil {
			return fmt.Errorf("index: snapshot pq flag: %w", err)
		}
		if flag[0] == 1 {
			// v2 has no bit-width byte: its codes are always 8-bit.
			bits := 8
			if version >= snapVersion {
				var bb [1]byte
				if _, err := io.ReadFull(r, bb[:]); err != nil {
					return fmt.Errorf("index: snapshot pq bits: %w", err)
				}
				if bb[0] != 4 && bb[0] != 8 {
					return fmt.Errorf("index: corrupt snapshot pq bits %d", bb[0])
				}
				bits = int(bb[0])
			}
			pcb, err := readPQCodebook(r, bits)
			if err != nil {
				return fmt.Errorf("index: snapshot pq codebook: %w", err)
			}
			if pcb.Dim != s.cfg.Dim {
				return fmt.Errorf("index: snapshot pq dim %d, shard dim %d", pcb.Dim, s.cfg.Dim)
			}
			if bits == 4 {
				lists, err := readCodeBlockLists(r, s.cfg.NLists, pcb.CodeBytes())
				if err != nil {
					return fmt.Errorf("index: snapshot pq code lists: %w", err)
				}
				// Slot alignment is the 4-bit scan's correctness condition:
				// every list's code count must match its inverted length,
				// and (with each row in exactly one list) the total must
				// match the feature rows, mirroring the 8-bit row check.
				total := 0
				for l, cb := range lists {
					if int(cb.published()) != s.inv.ListLen(l) {
						return fmt.Errorf("index: snapshot pq list %d has %d codes, inverted %d entries",
							l, cb.published(), s.inv.ListLen(l))
					}
					total += int(cb.published())
				}
				if total != s.feats.Len() {
					return fmt.Errorf("index: snapshot pq codes %d, features %d", total, s.feats.Len())
				}
				fresh = &shardPQ{cb: pcb, lists: lists}
			} else {
				codes := newCodeMat(pcb.M)
				if _, err := codes.readFrom(r); err != nil {
					return fmt.Errorf("index: snapshot pq codes: %w", err)
				}
				if codes.Len() != s.feats.Len() {
					return fmt.Errorf("index: snapshot pq codes %d rows, features %d", codes.Len(), s.feats.Len())
				}
				fresh = &shardPQ{cb: pcb, codes: codes}
			}
		} else if flag[0] != 0 {
			return fmt.Errorf("index: corrupt snapshot pq flag %d", flag[0])
		}
	}
	s.pqState.Store(fresh)
	// Rebuild the per-category bitmaps from the forward records. Stale
	// generations (tombstoned by feature refreshes) keep their bits — their
	// validity bit is 0, and admission intersects with validity — so a
	// snapshot-loaded replica filters identically to the shard that wrote
	// it. The snapshot's attributes also replace whatever the predicate
	// cache was built against.
	catsDir := []*bitmapx.Bitmap{}
	for id := uint32(0); id < uint32(s.fwd.Len()); id++ {
		_, _, _, cat, ok := s.fwd.Numeric(id)
		if !ok {
			continue
		}
		for int(cat) >= len(catsDir) {
			catsDir = append(catsDir, nil)
		}
		if catsDir[cat] == nil {
			catsDir[cat] = bitmapx.New(0)
		}
		catsDir[cat].Set(id)
	}
	s.cats.Store(&catsDir)
	s.attrEpoch.Add(1)
	s.predCache.Store(nil)
	// Rebuild lookup tables from the forward index. Two passes: byURL
	// first (ascending scan, so the newest generation of a re-listed URL
	// wins), then byProduct from only the records byURL still points at —
	// a stale generation tombstoned by a feature refresh must not
	// resurface as a product member on a snapshot-loaded replica, or
	// ProductImages/UpdateAttrs would diverge from the shard that wrote
	// the snapshot. (Images merely delisted keep their byProduct entries:
	// their URL still maps to them, and they can be re-listed.)
	byURL := make(map[string]core.ImageID, s.fwd.Len())
	byProduct := make(map[uint64][]core.ImageID)
	for id := uint32(0); id < uint32(s.fwd.Len()); id++ {
		a, ok := s.fwd.Get(id)
		if !ok || a.URL == "" {
			continue
		}
		byURL[a.URL] = id
	}
	for id := uint32(0); id < uint32(s.fwd.Len()); id++ {
		a, ok := s.fwd.Get(id)
		if !ok {
			continue
		}
		if a.URL != "" && byURL[a.URL] != id {
			continue // superseded by a feature-refresh generation
		}
		byProduct[a.ProductID] = append(byProduct[a.ProductID], id)
	}
	s.tabMu.Lock()
	s.byURL = byURL
	s.byProduct = byProduct
	s.tabMu.Unlock()
	// The watermark goes last: it claims the shard covers the queue up to
	// `covered`, so every structure backing that claim must already be
	// installed when a concurrent CoveredOffset call observes it.
	s.coveredOffset.Store(covered)
	return nil
}
