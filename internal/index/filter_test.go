package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"jdvs/internal/core"
	"jdvs/internal/vecmath"
)

// filterAttrs gives image i deterministic skewed attributes: category 1
// covers ~0.1% of the corpus, category 2 ~1%, category 3 ~10%, category 4
// the rest; prices cycle through [100, 9999) cents and sales through
// [0, 100). The skew lets one corpus exercise every selectivity band the
// pushdown is specified for.
func filterAttrs(i, n int) core.Attrs {
	cat := uint16(4)
	switch {
	case i < n/1000:
		cat = 1
	case i < n/1000+n/100:
		cat = 2
	case i < n/1000+n/100+n/10:
		cat = 3
	}
	return core.Attrs{
		ProductID:  uint64(i + 1),
		URL:        fmt.Sprintf("jfs://filter/%d.jpg", i),
		Category:   cat,
		Sales:      uint32(i % 100),
		PriceCents: uint32(100 + (i*37)%9900),
	}
}

// buildFilterShard builds one shard over a clustered corpus with
// filterAttrs attributes; pqM > 0 trains a product quantizer, cfgMut (may
// be nil) tweaks the config before construction.
func buildFilterShard(t testing.TB, n, dim, nlists, pqM int, cfgMut func(*Config)) (*Shard, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(19))
	feats := clusteredFeatures(rng, n, dim, 24, 0.25)
	train := make([]float32, 0, min(n, 2000)*dim)
	for i := 0; i < min(n, 2000); i++ {
		train = append(train, feats[i]...)
	}
	cfg := Config{Dim: dim, NLists: nlists, DefaultNProbe: 8, SearchWorkers: 1, PQSubvectors: pqM}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Train(train, 5); err != nil {
		t.Fatal(err)
	}
	if pqM > 0 {
		if err := s.TrainPQ(train, 5); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range feats {
		if _, _, err := s.Insert(filterAttrs(i, n), f); err != nil {
			t.Fatal(err)
		}
	}
	return s, feats
}

// filterOracle is the post-filter reference: exact L2 over every valid
// image, the filter applied afterwards, then top-k — the semantics the
// pushdown must reproduce.
func filterOracle(s *Shard, feats [][]float32, req *core.SearchRequest) []uint32 {
	type cand struct {
		id uint32
		d  float32
	}
	var cands []cand
	for id := 0; id < len(feats); id++ {
		if !s.Valid(uint32(id)) {
			continue
		}
		a, ok := s.Attrs(uint32(id))
		if !ok {
			continue
		}
		h := core.Hit{Sales: a.Sales, PriceCents: a.PriceCents, Category: a.Category}
		if !req.AdmitsHit(&h) {
			continue
		}
		cands = append(cands, cand{uint32(id), vecmath.L2Squared(req.Feature, feats[id])})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	k := req.TopK
	if len(cands) > k {
		cands = cands[:k]
	}
	ids := make([]uint32, len(cands))
	for i, c := range cands {
		ids[i] = c.id
	}
	return ids
}

func filterQuery(rng *rand.Rand, feats [][]float32, dim int) []float32 {
	base := feats[rng.Intn(len(feats))]
	q := make([]float32, dim)
	for d := range q {
		q[d] = base[d] + float32(rng.NormFloat64()*0.05)
	}
	return q
}

// TestFilteredExactMatchesOracle: on the exact float path with every list
// probed, the pushed-down filter must return exactly what post-filtering a
// brute-force scan returns — across the selectivity sweep (0.1%, 1%, 10%,
// 100%), attribute predicates, and their combination. The 0.1% category
// holds fewer images than k, so it also pins the fewer-than-k contract:
// all matches come back.
func TestFilteredExactMatchesOracle(t *testing.T) {
	const n, dim, nlists = 4000, 32, 16
	s, feats := buildFilterShard(t, n, dim, nlists, 0, nil)
	cases := []struct {
		name string
		req  core.SearchRequest
	}{
		{"category=0.1%", core.SearchRequest{Category: 1}},
		{"category=1%", core.SearchRequest{Category: 2}},
		{"category=10%", core.SearchRequest{Category: 3}},
		{"category=100%", core.SearchRequest{Category: -1}},
		{"priceband", core.SearchRequest{Category: -1, MinPriceCents: 2000, MaxPriceCents: 5000}},
		{"minsales", core.SearchRequest{Category: -1, MinSales: 50}},
		{"combined", core.SearchRequest{Category: 3, MinPriceCents: 1000, MaxPriceCents: 8000, MinSales: 20}},
	}
	rng := rand.New(rand.NewSource(23))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for qi := 0; qi < 10; qi++ {
				req := tc.req
				req.Feature = filterQuery(rng, feats, dim)
				req.TopK = 10
				req.NProbe = nlists // full probe: the scan sees every admitted image
				resp, err := s.Search(&req)
				if err != nil {
					t.Fatal(err)
				}
				want := filterOracle(s, feats, &req)
				if len(resp.Hits) != len(want) {
					t.Fatalf("query %d: %d hits, oracle %d", qi, len(resp.Hits), len(want))
				}
				wantSet := make(map[uint32]bool, len(want))
				for _, id := range want {
					wantSet[id] = true
				}
				for _, h := range resp.Hits {
					if !wantSet[h.Image.Local] {
						t.Fatalf("query %d: hit %d not in oracle set", qi, h.Image.Local)
					}
					if !req.AdmitsHit(&h) {
						t.Fatalf("query %d: hit %d violates the filter", qi, h.Image.Local)
					}
				}
			}
		})
	}
	// The 0.1% category holds n/1000 images — fewer than k.
	if got := n / 1000; got >= 10 {
		t.Fatalf("corpus too large for the fewer-than-k case: category 1 has %d images", got)
	}
}

// TestFilteredEmptyCategory: a category no committed row has ever carried
// must return an empty page without probing a single list — the admission
// bitmap prices it at zero matches before probe selection. Categories
// outside the uint16 range are equally unsatisfiable.
func TestFilteredEmptyCategory(t *testing.T) {
	const n, dim, nlists = 1000, 16, 8
	s, feats := buildFilterShard(t, n, dim, nlists, 0, nil)
	for _, cat := range []int32{9, 77, 1 << 20} {
		req := &core.SearchRequest{Feature: feats[0], TopK: 10, NProbe: nlists, Category: cat}
		resp, err := s.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Hits) != 0 {
			t.Fatalf("category %d: %d hits, want 0", cat, len(resp.Hits))
		}
		if resp.Probed != 0 || resp.Scanned != 0 {
			t.Fatalf("category %d: probed %d scanned %d, want 0/0", cat, resp.Probed, resp.Scanned)
		}
	}
}

// TestFilteredRecallGuardrail is the accuracy gate on the filtered ADC
// path: at 1% selectivity, recall@10 against the exact post-filter oracle
// must stay at least 0.95 and every query must fill its page. Adaptive
// widening is what makes this pass at the default probe width — 1% of the
// corpus spread over all lists leaves too few admitted candidates in 8
// lists.
func TestFilteredRecallGuardrail(t *testing.T) {
	const n, dim, queries = 6000, 64, 60
	s, feats := buildFilterShard(t, n, dim, 32, 16, nil)
	defer s.Close()
	rng := rand.New(rand.NewSource(77))
	var hit, want int
	for qi := 0; qi < queries; qi++ {
		req := &core.SearchRequest{Feature: filterQuery(rng, feats, dim), TopK: 10, NProbe: 8, Category: 2}
		resp, err := s.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Hits) != 10 {
			t.Fatalf("query %d: %d hits, want a full page of 10", qi, len(resp.Hits))
		}
		truth := filterOracle(s, feats, req)
		truthSet := make(map[uint32]bool, len(truth))
		for _, id := range truth {
			truthSet[id] = true
		}
		want += len(truth)
		for _, h := range resp.Hits {
			if truthSet[h.Image.Local] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(want)
	t.Logf("filtered ADC recall@10 at 1%% selectivity over %d queries: %.4f", queries, recall)
	if recall < 0.95 {
		t.Fatalf("filtered recall@10 = %.4f, want >= 0.95", recall)
	}
}

// TestFilteredProbeWidening: a selective filter must widen the probe set
// (visible via Probed) up to FilterMaxNProbe, while unfiltered queries
// keep the configured width. At maximum selectivity the widening reaches
// every list, so all matches — fewer than k — come back.
func TestFilteredProbeWidening(t *testing.T) {
	const n, dim, nlists = 4000, 32, 32
	s, feats := buildFilterShard(t, n, dim, nlists, 0, func(c *Config) {
		c.DefaultNProbe = 2
		c.FilterMaxNProbe = nlists
	})
	rng := rand.New(rand.NewSource(5))
	q := filterQuery(rng, feats, dim)

	plain, err := s.Search(&core.SearchRequest{Feature: q, TopK: 10, Category: -1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Probed != 2 {
		t.Fatalf("unfiltered probe width %d, want the configured 2", plain.Probed)
	}

	oneP, err := s.Search(&core.SearchRequest{Feature: q, TopK: 10, Category: 2})
	if err != nil {
		t.Fatal(err)
	}
	if oneP.Probed <= 2 || oneP.Probed > nlists {
		t.Fatalf("1%% filter probed %d lists, want widened into (2, %d]", oneP.Probed, nlists)
	}
	if len(oneP.Hits) != 10 {
		t.Fatalf("1%% filter returned %d hits, want full page of 10", len(oneP.Hits))
	}

	tiny, err := s.Search(&core.SearchRequest{Feature: q, TopK: 10, Category: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Probed != nlists {
		t.Fatalf("0.1%% filter probed %d lists, want all %d", tiny.Probed, nlists)
	}
	if len(tiny.Hits) != n/1000 {
		t.Fatalf("0.1%% filter returned %d hits, want all %d matches", len(tiny.Hits), n/1000)
	}

	st := s.Stats()
	if st.FilteredSearches != 2 {
		t.Fatalf("FilteredSearches = %d, want 2 (the unfiltered query must not count)", st.FilteredSearches)
	}
}

// TestWidenKnobs pins the widening arithmetic and its caps.
func TestWidenKnobs(t *testing.T) {
	s := &Shard{cfg: Config{NLists: 64, DefaultNProbe: 8}}
	// 640 matches over 64 lists at k=10: 3·10·64/640 = 3 lists suffice —
	// never narrow below the requested width.
	if got := s.widenNProbe(8, 10, 640); got != 8 {
		t.Fatalf("abundant matches widened to %d, want 8", got)
	}
	// 64 matches: want 30 lists, below the derived cap of 8×8.
	if got := s.widenNProbe(8, 10, 64); got != 30 {
		t.Fatalf("1%%-ish matches widened to %d, want 30", got)
	}
	// 4 matches: want 480, clamped to the derived 8× cap.
	if got := s.widenNProbe(8, 10, 4); got != 64 {
		t.Fatalf("scarce matches widened to %d, want 64 (derived cap)", got)
	}
	s.cfg.FilterMaxNProbe = 16
	if got := s.widenNProbe(8, 10, 4); got != 16 {
		t.Fatalf("scarce matches widened to %d, want the FilterMaxNProbe cap 16", got)
	}
	// An explicit request wider than the cap is never narrowed.
	if got := s.widenNProbe(32, 10, 4); got != 32 {
		t.Fatalf("explicit wide nprobe narrowed to %d, want 32", got)
	}
	// Zero bitmap matches with a non-exhaustive bitmap: assume worst case.
	if got := s.widenNProbe(8, 10, 0); got != 16 {
		t.Fatalf("zero-match widening %d, want cap 16", got)
	}

	if got := s.widenRerank(100, 1); got != 100 {
		t.Fatalf("boost 1 changed rerank depth to %d", got)
	}
	if got := s.widenRerank(100, 3); got != 300 {
		t.Fatalf("boost 3 rerank depth %d, want 300", got)
	}
	if got := s.widenRerank(100, 8); got != 400 {
		t.Fatalf("boost 8 rerank depth %d, want derived cap 400", got)
	}
	s.cfg.FilterMaxRerankK = 150
	if got := s.widenRerank(100, 8); got != 150 {
		t.Fatalf("boost 8 rerank depth %d, want FilterMaxRerankK cap 150", got)
	}
}

// TestFilteredAdmissionTailFallback: rows appended after a cached
// predicate bitmap was built lie beyond its coverage and must still be
// admitted (or rejected) correctly via the per-candidate fallback.
func TestFilteredAdmissionTailFallback(t *testing.T) {
	const n, dim, nlists = 1000, 16, 8
	s, feats := buildFilterShard(t, n, dim, nlists, 0, nil)
	req := &core.SearchRequest{Feature: append([]float32(nil), feats[3]...), TopK: 10, NProbe: nlists, Category: -1, MinSales: 120}
	// No image has sales ≥ 120 yet; this search materialises (and caches)
	// an all-zero predicate bitmap.
	resp, err := s.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) != 0 {
		t.Fatalf("pre-append search returned %d hits, want 0", len(resp.Hits))
	}
	// Append one matching and one non-matching image, both with the query
	// vector itself (distance 0 — they'd rank first if admitted).
	match := core.Attrs{ProductID: 5001, URL: "jfs://filter/tail-match.jpg", Category: 4, Sales: 150, PriceCents: 500}
	if _, _, err := s.Insert(match, req.Feature); err != nil {
		t.Fatal(err)
	}
	skew := make([]float32, dim)
	copy(skew, req.Feature)
	skew[0] += 1e-3
	miss := core.Attrs{ProductID: 5002, URL: "jfs://filter/tail-miss.jpg", Category: 4, Sales: 10, PriceCents: 500}
	if _, _, err := s.Insert(miss, skew); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) != 1 {
		t.Fatalf("post-append search returned %d hits, want exactly the appended match", len(resp.Hits))
	}
	if resp.Hits[0].ProductID != 5001 {
		t.Fatalf("post-append search returned product %d, want 5001", resp.Hits[0].ProductID)
	}
}

// TestFilteredSnapshotRoundtrip: a snapshot-loaded replica rebuilds its
// per-category bitmaps from the forward records and must filter exactly
// like the shard that wrote the snapshot — including after a category move
// applied on the replica.
func TestFilteredSnapshotRoundtrip(t *testing.T) {
	const n, dim, nlists = 2000, 16, 8
	s, feats := buildFilterShard(t, n, dim, nlists, 0, nil)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	replica, err := New(Config{Dim: dim, NLists: nlists, DefaultNProbe: 8, SearchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	check := func(stage string) {
		for qi := 0; qi < 5; qi++ {
			req := &core.SearchRequest{
				Feature: filterQuery(rng, feats, dim), TopK: 10, NProbe: nlists,
				Category: 2, MinPriceCents: 500, MaxPriceCents: 9000,
			}
			want := filterOracle(replica, feats, req)
			resp, err := replica.Search(req)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Hits) != len(want) {
				t.Fatalf("%s: %d hits, oracle %d", stage, len(resp.Hits), len(want))
			}
			wantSet := make(map[uint32]bool, len(want))
			for _, id := range want {
				wantSet[id] = true
			}
			for _, h := range resp.Hits {
				if !wantSet[h.Image.Local] {
					t.Fatalf("%s: hit %d not in oracle set", stage, h.Image.Local)
				}
			}
		}
	}
	check("loaded")
	// Move a product between categories on the replica: bitmap maintenance
	// must hold on rebuilt directories too.
	if _, err := replica.UpdateAttrs(uint64(n/2+1), 5, 5, 777, 2); err != nil {
		t.Fatal(err)
	}
	check("after category move")
}

// TestFilteredConcurrentCategoryMoves runs filtered scans against a writer
// relocating products between the scanned categories — the -race stress
// for the category-bitmap publish protocol. Results during a move are
// advisory (the §2.3 visibility window), so the assertions are bounds and
// liveness, not exact sets.
func TestFilteredConcurrentCategoryMoves(t *testing.T) {
	const n, dim, nlists = 2000, 16, 8
	s, feats := buildFilterShard(t, n, dim, nlists, 0, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single real-time writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pid := uint64(rng.Intn(n) + 1)
			cat := uint16(2 + i%2)
			if _, err := s.UpdateAttrs(pid, uint32(i%100), 5, uint32(100+i%9000), cat); err != nil {
				t.Errorf("UpdateAttrs: %v", err)
				return
			}
		}
	}()
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for qi := 0; qi < 150; qi++ {
				req := &core.SearchRequest{
					Feature: filterQuery(rng, feats, dim), TopK: 10, NProbe: nlists,
					Category: 2, MinSales: 10,
				}
				resp, err := s.Search(req)
				if err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				if len(resp.Hits) > 10 {
					t.Errorf("filtered search returned %d hits, want <= 10", len(resp.Hits))
					return
				}
				for _, h := range resp.Hits {
					if h.Image.Local >= n {
						t.Errorf("hit id %d out of range", h.Image.Local)
						return
					}
				}
			}
		}(w)
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}
