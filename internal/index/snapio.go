package index

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"jdvs/internal/bitmapx"
	"jdvs/internal/kmeans"
	"jdvs/internal/pq"
)

// writeCodebook serialises a codebook: [4B K][4B Dim][K*Dim float32].
func writeCodebook(w io.Writer, cb *kmeans.Codebook) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(cb.K))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(cb.Dim))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(cb.Centroids))
	for i, v := range cb.Centroids {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readCodebook(r io.Reader) (*kmeans.Codebook, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	k := int(binary.LittleEndian.Uint32(hdr[0:4]))
	dim := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if k <= 0 || dim <= 0 || k > 1<<20 || dim > 1<<14 {
		return nil, fmt.Errorf("index: corrupt codebook header (K=%d Dim=%d)", k, dim)
	}
	buf := make([]byte, 4*k*dim)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	cents := make([]float32, k*dim)
	for i := range cents {
		cents[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return &kmeans.Codebook{K: k, Dim: dim, Centroids: cents}, nil
}

// writePQCodebook serialises a product quantizer:
// [4B M][4B Dim][M*KPerSub*(Dim/M) float32]. The centroid count per
// subquantizer (256 or 16) is not part of this section — the enclosing
// snapshot's bit-width byte decides it, and readPQCodebook receives it.
func writePQCodebook(w io.Writer, cb *pq.Codebook) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(cb.M))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(cb.Dim))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(cb.Centroids))
	for i, v := range cb.Centroids {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readPQCodebook(r io.Reader, bits int) (*pq.Codebook, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	m := int(binary.LittleEndian.Uint32(hdr[0:4]))
	dim := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if m <= 0 || dim <= 0 || dim > 1<<14 || m > dim || dim%m != 0 {
		return nil, fmt.Errorf("index: corrupt pq codebook header (M=%d Dim=%d)", m, dim)
	}
	kPerSub := pq.NCentroids
	if bits == 4 {
		kPerSub = pq.NCentroids4
	}
	cb := &pq.Codebook{
		M:         m,
		Dim:       dim,
		SubDim:    dim / m,
		Bits:      bits,
		Centroids: make([]float32, m*kPerSub*(dim/m)),
	}
	buf := make([]byte, 4*len(cb.Centroids))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for i := range cb.Centroids {
		cb.Centroids[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	if err := cb.Valid(); err != nil {
		return nil, err
	}
	return cb, nil
}

// writeBitmap serialises the validity bitmap: [4B words][words*8B].
func writeBitmap(w io.Writer, b *bitmapx.Bitmap) error {
	words := b.Snapshot()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(words)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*len(words))
	for i, v := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	_, err := w.Write(buf)
	return err
}

func readBitmap(r io.Reader, b *bitmapx.Bitmap) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > 1<<26 { // 512 MiB of bitmap words: corruption guard
		return fmt.Errorf("index: corrupt bitmap header (%d words)", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	b.Restore(words)
	return nil
}
