package index

import (
	"fmt"
	"math/rand"
	"testing"

	"jdvs/internal/core"
	"jdvs/internal/topk"
	"jdvs/internal/vecmath"
)

func benchShard(b *testing.B, n int) (*Shard, [][]float32) {
	b.Helper()
	const dim = 64
	s, err := New(Config{Dim: dim, NLists: 64, DefaultNProbe: 8})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train := make([]float32, 2_000*dim)
	for i := range train {
		train[i] = float32(rng.NormFloat64())
	}
	if err := s.Train(train, 1); err != nil {
		b.Fatal(err)
	}
	feats := make([][]float32, n)
	for i := 0; i < n; i++ {
		f := make([]float32, dim)
		for d := range f {
			f[d] = float32(rng.NormFloat64())
		}
		feats[i] = f
		a := core.Attrs{
			ProductID: uint64(i + 1),
			URL:       fmt.Sprintf("jfs://bench/p%d.jpg", i),
			Category:  uint16(i % 8),
		}
		if _, _, err := s.Insert(a, f); err != nil {
			b.Fatal(err)
		}
	}
	return s, feats
}

// BenchmarkSearch measures the full per-partition query path: probe
// selection, list scans, distance computation, top-k and result assembly.
func BenchmarkSearch(b *testing.B) {
	for _, n := range []int{10_000, 50_000} {
		b.Run(fmt.Sprintf("images=%d", n), func(b *testing.B) {
			s, feats := benchShard(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := &core.SearchRequest{Feature: feats[i%len(feats)], TopK: 10, NProbe: 8, Category: -1}
				if _, err := s.Search(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchWorkers compares the serial scan against the parallel
// intra-shard scan (§2.4 multi-thread searching) across probe widths and
// worker counts. Parallel wins over serial at nprobe ≥ 8 on multi-core;
// workers=1 is the baseline serial path.
func BenchmarkSearchWorkers(b *testing.B) {
	s, feats := benchShard(b, 50_000)
	for _, nprobe := range []int{8, 16, 32} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("nprobe=%d/workers=%d", nprobe, workers), func(b *testing.B) {
				s.SetSearchWorkers(workers)
				defer s.SetSearchWorkers(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					req := &core.SearchRequest{Feature: feats[i%len(feats)], TopK: 10, NProbe: nprobe, Category: -1}
					if _, err := s.Search(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkADCScan pits the product-quantized scan paths against the
// exact float scan over the same corpus at the same probe count:
// path=exact reads a dim×4-byte feature row per candidate, bits=8 reads
// an M-byte code and sums M table lookups, bits=4 streams packed blocks
// through the fast-scan kernel at M/2 bytes per code. Every quantized
// variant exactly re-ranks its top RerankK. The corpus is sized so
// feature rows spill out of cache — the condition the ADC path exists
// for. Each batch variant pushes the same 8 queries per iteration —
// batch=1 as 8 sequential Search calls, batch=8 as one SearchBatch — so
// ns/op is directly comparable across batch sizes.
func BenchmarkADCScan(b *testing.B) {
	const n, dim, m = 100_000, 64, 16
	rng := rand.New(rand.NewSource(41))
	feats := clusteredFeatures(rng, n, dim, 64, 0.25)
	train := make([]float32, 0, 2000*dim)
	for i := 0; i < 2000; i++ {
		train = append(train, feats[i]...)
	}
	build := func(pqM, bits int) *Shard {
		s, err := New(Config{Dim: dim, NLists: 64, DefaultNProbe: 8, SearchWorkers: 1, PQSubvectors: pqM, PQBits: bits})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Train(train, 1); err != nil {
			b.Fatal(err)
		}
		if pqM > 0 {
			if err := s.TrainPQ(train, 1); err != nil {
				b.Fatal(err)
			}
		}
		for i, f := range feats {
			a := core.Attrs{ProductID: uint64(i + 1), URL: fmt.Sprintf("jfs://adc/%d.jpg", i)}
			if _, _, err := s.Insert(a, f); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	b.Run("path=exact", func(b *testing.B) {
		s := build(0, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := &core.SearchRequest{Feature: feats[(i*37)%n], TopK: 10, NProbe: 8, Category: -1}
			if _, err := s.Search(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, bits := range []int{8, 4} {
		s := build(m, bits)
		for _, batch := range []int{1, 8} {
			b.Run(fmt.Sprintf("path=adc/bits=%d/batch=%d", bits, batch), func(b *testing.B) {
				reqs := make([]*core.SearchRequest, 8)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for q := range reqs {
						reqs[q] = &core.SearchRequest{Feature: feats[((i*8+q)*37)%n], TopK: 10, NProbe: 8, Category: -1}
					}
					if batch == 1 {
						for _, req := range reqs {
							if _, err := s.Search(req); err != nil {
								b.Fatal(err)
							}
						}
					} else {
						_, errs := s.SearchBatch(reqs)
						for _, err := range errs {
							if err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			})
		}
	}
}

// filteredScanBaseline is the pre-pushdown admission strategy kept as the
// benchmark baseline: probe the same lists and decide every candidate with
// a validity-bit read plus a forward lookup, instead of one pre-built
// admission bitmap. sel and the probe buffers are caller-owned so the
// baseline pays no per-query allocations the real path doesn't.
func filteredScanBaseline(s *Shard, req *core.SearchRequest, probe []int, probeDist []float32, sel *topk.Selector) ([]int, []float32) {
	probe, probeDist = vecmath.TopCentroidsInto(probe, probeDist, req.Feature, s.codebook.Centroids, s.cfg.Dim, req.NProbe)
	sel.ResetK(req.TopK)
	for _, l := range probe {
		s.inv.Scan(l, func(id uint32) bool {
			if !s.valid.Get(id) {
				return true
			}
			sales, _, price, cat, ok := s.fwd.Numeric(id)
			if !ok {
				return true
			}
			if req.Category >= 0 && int32(cat) != req.Category {
				return true
			}
			if !req.MatchesAttrs(sales, price) {
				return true
			}
			row := s.feats.Row(id)
			if row == nil {
				return true
			}
			sel.Push(uint64(id), vecmath.L2Squared(req.Feature, row))
			return true
		})
	}
	sel.Sorted()
	return probe, probeDist
}

// BenchmarkFilteredScan pits the bitmap-admission scan against the
// per-candidate-lookup baseline over one skewed corpus at every
// selectivity band. Probe widening is pinned off (FilterMaxNProbe below
// the query width) so both paths scan the identical lists and the
// difference is pure admission cost; the 100% band uses a price floor
// every image passes, so the filtered machinery runs without rejecting
// anything.
func BenchmarkFilteredScan(b *testing.B) {
	const n, dim, nlists, nprobe = 50_000, 64, 64, 8
	rng := rand.New(rand.NewSource(43))
	feats := clusteredFeatures(rng, n, dim, 48, 0.25)
	train := make([]float32, 0, 2000*dim)
	for i := 0; i < 2000; i++ {
		train = append(train, feats[i]...)
	}
	s, err := New(Config{Dim: dim, NLists: nlists, DefaultNProbe: nprobe, SearchWorkers: 1, FilterMaxNProbe: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Train(train, 1); err != nil {
		b.Fatal(err)
	}
	for i, f := range feats {
		a := filterAttrs(i, n)
		if _, _, err := s.Insert(a, f); err != nil {
			b.Fatal(err)
		}
	}
	bands := []struct {
		name string
		req  core.SearchRequest
	}{
		{"selectivity=0.1%", core.SearchRequest{Category: 1}},
		{"selectivity=1%", core.SearchRequest{Category: 2}},
		{"selectivity=10%", core.SearchRequest{Category: 3}},
		{"selectivity=100%", core.SearchRequest{Category: -1, MinPriceCents: 1}},
	}
	for _, band := range bands {
		req := band.req
		req.TopK = 10
		req.NProbe = nprobe
		b.Run(band.name+"/path=bitmap", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := req
				r.Feature = feats[(i*37)%n]
				if _, err := s.Search(&r); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(band.name+"/path=lookup", func(b *testing.B) {
			sel := topk.New(req.TopK)
			var probe []int
			var probeDist []float32
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := req
				r.Feature = feats[(i*37)%n]
				probe, probeDist = filteredScanBaseline(s, &r, probe, probeDist, sel)
			}
		})
	}
}

// BenchmarkInsertFresh measures indexing a brand-new image (forward
// append + feature row + cluster assign + inverted append + bitmap).
func BenchmarkInsertFresh(b *testing.B) {
	s, _ := benchShard(b, 1_000)
	rng := rand.New(rand.NewSource(9))
	const dim = 64
	feats := make([][]float32, 4096)
	for i := range feats {
		f := make([]float32, dim)
		for d := range f {
			f[d] = float32(rng.NormFloat64())
		}
		feats[i] = f
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.Attrs{ProductID: uint64(10_000 + i), URL: fmt.Sprintf("jfs://fresh/p%d.jpg", i)}
		if _, _, err := s.Insert(a, feats[i%len(feats)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertReuse measures the re-listing path (§2.3): bitmap flip
// plus attribute refresh, no structural work.
func BenchmarkInsertReuse(b *testing.B) {
	s, _ := benchShard(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.Attrs{ProductID: uint64(i%10_000 + 1), URL: fmt.Sprintf("jfs://bench/p%d.jpg", i%10_000)}
		if _, reused, err := s.Insert(a, nil); err != nil || !reused {
			b.Fatal("reuse path broke")
		}
	}
}

// BenchmarkRemoveProduct measures deletion: one bitmap flip per image.
func BenchmarkRemoveProduct(b *testing.B) {
	s, _ := benchShard(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%10_000 + 1)
		if i%2 == 0 {
			_, _ = s.RemoveProduct(id)
		} else {
			_, _, _ = s.Insert(core.Attrs{ProductID: id, URL: fmt.Sprintf("jfs://bench/p%d.jpg", i%10_000)}, nil)
		}
	}
}

// BenchmarkUpdateAttrs measures the Fig. 7 product-level numeric update.
func BenchmarkUpdateAttrs(b *testing.B) {
	s, _ := benchShard(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.UpdateAttrs(uint64(i%10_000+1), uint32(i), 50, 999, uint16(i%8)); err != nil {
			b.Fatal(err)
		}
	}
}
