package index

import (
	"fmt"
	"math/rand"
	"testing"

	"jdvs/internal/core"
)

// modelImage is the reference state for one image URL.
type modelImage struct {
	id    core.ImageID
	attrs core.Attrs
	valid bool
}

// TestShardMatchesModel drives a shard through long random operation
// sequences (insert fresh, re-insert, remove by URL and by product, update
// attrs by URL and by product) and checks it against a plain-map reference
// model after every operation batch. This is the invariant the whole
// real-time indexing path rests on: the shard is a faithful, queryable
// materialisation of the event stream.
func TestShardMatchesModel(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			t.Parallel()
			runShardModelTrial(t, int64(trial))
		})
	}
}

func runShardModelTrial(t *testing.T, seed int64) {
	s, rng := testShard(t, 8)
	rng = rand.New(rand.NewSource(seed*31 + 7))

	model := make(map[string]*modelImage) // url → state
	products := make(map[uint64][]string) // product → urls
	var urls []string                     // insertion order, for random picks
	newAttrs := func(pid uint64, url string) core.Attrs {
		return core.Attrs{
			ProductID:  pid,
			Sales:      uint32(rng.Intn(100000)),
			Praise:     uint32(rng.Intn(101)),
			PriceCents: uint32(rng.Intn(1000000)),
			Category:   uint16(rng.Intn(5)),
			URL:        url,
		}
	}

	const ops = 2000
	nextPID := uint64(1)
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 4 || len(urls) == 0: // insert a fresh image
			pid := nextPID
			if rng.Intn(3) > 0 && len(products) > 0 {
				// Sometimes attach another image to an existing product.
				for p := range products {
					pid = p
					break
				}
			} else {
				nextPID++
			}
			url := fmt.Sprintf("jfs://model/%d-%d.jpg", seed, len(urls))
			a := newAttrs(pid, url)
			id, reused, err := s.Insert(a, randFeature(rng))
			if err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			if reused {
				t.Fatalf("op %d: fresh insert reported reuse", op)
			}
			model[url] = &modelImage{id: id, attrs: a, valid: true}
			products[pid] = append(products[pid], url)
			urls = append(urls, url)

		case k < 6: // re-insert an existing image (reuse path)
			url := urls[rng.Intn(len(urls))]
			m := model[url]
			pid := m.attrs.ProductID
			if rng.Intn(3) == 0 { // sometimes re-list under a different product
				pid = nextPID
				nextPID++
			}
			a := newAttrs(pid, url)
			id, reused, err := s.Insert(a, nil)
			if err != nil {
				t.Fatalf("op %d re-insert: %v", op, err)
			}
			if !reused || id != m.id {
				t.Fatalf("op %d: reuse broken (id %d vs %d, reused=%v)", op, id, m.id, reused)
			}
			if pid != m.attrs.ProductID {
				old := m.attrs.ProductID
				kept := products[old][:0]
				for _, u := range products[old] {
					if u != url {
						kept = append(kept, u)
					}
				}
				if len(kept) == 0 {
					delete(products, old)
				} else {
					products[old] = kept
				}
				products[pid] = append(products[pid], url)
				m.attrs.ProductID = pid
			}
			m.attrs.Sales, m.attrs.Praise, m.attrs.PriceCents = a.Sales, a.Praise, a.PriceCents
			m.attrs.Category = a.Category
			m.valid = true

		case k < 7: // remove one image by URL
			url := urls[rng.Intn(len(urls))]
			m := model[url]
			changed, err := s.RemoveImageURL(url)
			if err != nil {
				t.Fatalf("op %d remove url: %v", op, err)
			}
			if changed != m.valid {
				t.Fatalf("op %d: remove reported %v, model valid=%v", op, changed, m.valid)
			}
			m.valid = false

		case k < 8: // remove a whole product
			url := urls[rng.Intn(len(urls))]
			pid := model[url].attrs.ProductID
			if _, err := s.RemoveProduct(pid); err != nil {
				t.Fatalf("op %d remove product: %v", op, err)
			}
			for _, u := range products[pid] {
				model[u].valid = false
			}

		case k < 9: // update attrs by URL
			url := urls[rng.Intn(len(urls))]
			m := model[url]
			sales, praise, price := uint32(rng.Intn(1000)), uint32(rng.Intn(101)), uint32(rng.Intn(10000))
			category := uint16(rng.Intn(5))
			if err := s.UpdateAttrsURL(url, sales, praise, price, category); err != nil {
				t.Fatalf("op %d update url: %v", op, err)
			}
			m.attrs.Sales, m.attrs.Praise, m.attrs.PriceCents = sales, praise, price
			m.attrs.Category = category

		default: // update attrs product-wide
			url := urls[rng.Intn(len(urls))]
			pid := model[url].attrs.ProductID
			sales, praise, price := uint32(rng.Intn(1000)), uint32(rng.Intn(101)), uint32(rng.Intn(10000))
			category := uint16(rng.Intn(5))
			if _, err := s.UpdateAttrs(pid, sales, praise, price, category); err != nil {
				t.Fatalf("op %d update product: %v", op, err)
			}
			for _, u := range products[pid] {
				m := model[u]
				m.attrs.Sales, m.attrs.Praise, m.attrs.PriceCents = sales, praise, price
				m.attrs.Category = category
			}
		}

		// Spot-check a few random URLs after every operation.
		for probe := 0; probe < 3 && len(urls) > 0; probe++ {
			url := urls[rng.Intn(len(urls))]
			m := model[url]
			if got := s.Valid(m.id); got != m.valid {
				t.Fatalf("op %d: url %s validity %v, model %v", op, url, got, m.valid)
			}
			a, ok := s.Attrs(m.id)
			if !ok {
				t.Fatalf("op %d: url %s attrs missing", op, url)
			}
			if a != m.attrs {
				t.Fatalf("op %d: url %s attrs %+v, model %+v", op, url, a, m.attrs)
			}
		}
	}

	// Full sweep at the end.
	validCount := 0
	for url, m := range model {
		if s.Valid(m.id) != m.valid {
			t.Fatalf("final: url %s validity mismatch", url)
		}
		if m.valid {
			validCount++
		}
		a, _ := s.Attrs(m.id)
		if a != m.attrs {
			t.Fatalf("final: url %s attrs %+v, model %+v", url, a, m.attrs)
		}
	}
	st := s.Stats()
	if st.Images != len(model) {
		t.Fatalf("final: shard has %d images, model %d", st.Images, len(model))
	}
	if st.ValidImages != validCount {
		t.Fatalf("final: shard has %d valid, model %d", st.ValidImages, validCount)
	}

	// Every valid image is findable by self-query at full probe width;
	// every invalid one is not.
	checked := 0
	for url, m := range model {
		if checked >= 50 {
			break
		}
		checked++
		f := s.Feature(m.id)
		if f == nil {
			t.Fatalf("final: url %s lost its feature row", url)
		}
		resp, err := s.Search(&core.SearchRequest{Feature: f, TopK: len(model), NProbe: 8, Category: -1})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, h := range resp.Hits {
			if h.Image.Local == m.id {
				found = true
			}
		}
		if found != m.valid {
			t.Fatalf("final: url %s searchable=%v, model valid=%v", url, found, m.valid)
		}
	}
}
