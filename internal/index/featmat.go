package index

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// featMat is the in-shard feature matrix: row i holds the feature vector of
// image ID i, aligned with the forward index. Rows live in fixed-size
// chunks behind an atomically published directory, so distance computation
// on the search path reads rows lock-free while the (single) real-time
// indexing writer appends.
type featMat struct {
	dim int

	mu     sync.Mutex
	dir    atomic.Pointer[[]*featChunk]
	length atomic.Uint32
}

const featRowsPerChunk = 1 << 12 // 4096 rows per chunk

type featChunk struct {
	rows []float32 // featRowsPerChunk × dim, allocated once
}

func newFeatMat(dim int) *featMat {
	m := &featMat{dim: dim}
	dir := []*featChunk{}
	m.dir.Store(&dir)
	return m
}

// Len returns the number of committed rows.
func (m *featMat) Len() int { return int(m.length.Load()) }

// Append stores f as the next row and returns its row index. f must have
// exactly dim components.
func (m *featMat) Append(f []float32) (uint32, error) {
	if len(f) != m.dim {
		return 0, fmt.Errorf("index: feature dim %d, shard dim %d", len(f), m.dim)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.length.Load()
	chunks := *m.dir.Load()
	ci := int(id / featRowsPerChunk)
	if ci >= len(chunks) {
		next := make([]*featChunk, ci+1)
		copy(next, chunks)
		for i := len(chunks); i <= ci; i++ {
			next[i] = &featChunk{rows: make([]float32, featRowsPerChunk*m.dim)}
		}
		m.dir.Store(&next)
		chunks = next
	}
	off := int(id%featRowsPerChunk) * m.dim
	copy(chunks[ci].rows[off:off+m.dim], f)
	m.length.Store(id + 1) // publish
	return id, nil
}

// Row returns row id as a sub-slice of chunk storage. Rows are immutable
// once committed; callers must not modify the result. Returns nil for
// uncommitted ids.
func (m *featMat) Row(id uint32) []float32 {
	if id >= m.length.Load() {
		return nil
	}
	chunks := *m.dir.Load()
	off := int(id%featRowsPerChunk) * m.dim
	return chunks[id/featRowsPerChunk].rows[off : off+m.dim]
}

// writeTo serialises the matrix.
func (m *featMat) writeTo(w io.Writer) (int64, error) {
	var written int64
	var hdr [8]byte
	n := m.length.Load()
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(m.dim))
	binary.LittleEndian.PutUint32(hdr[4:8], n)
	k, err := w.Write(hdr[:])
	written += int64(k)
	if err != nil {
		return written, err
	}
	buf := make([]byte, 4*m.dim)
	for id := uint32(0); id < n; id++ {
		row := m.Row(id)
		for i, v := range row {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		k, err = w.Write(buf)
		written += int64(k)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// readFrom replaces the matrix contents. Not concurrent-safe.
func (m *featMat) readFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [8]byte
	k, err := io.ReadFull(r, hdr[:])
	read += int64(k)
	if err != nil {
		return read, err
	}
	dim := int(binary.LittleEndian.Uint32(hdr[0:4]))
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if dim != m.dim {
		return read, fmt.Errorf("index: snapshot dim %d, shard dim %d", dim, m.dim)
	}
	fresh := newFeatMat(dim)
	buf := make([]byte, 4*dim)
	row := make([]float32, dim)
	for id := uint32(0); id < n; id++ {
		k, err = io.ReadFull(r, buf)
		read += int64(k)
		if err != nil {
			return read, err
		}
		for i := range row {
			row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		if _, err := fresh.Append(row); err != nil {
			return read, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dir.Store(fresh.dir.Load())
	m.length.Store(fresh.length.Load())
	return read, nil
}
