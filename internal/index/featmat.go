package index

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// featMat is the in-shard feature matrix: row i holds the feature vector
// of image ID i. The lock-free chunked storage lives in chunkMat; this
// wrapper owns the float32 snapshot codec.
type featMat struct {
	chunkMat[float32]
}

const featRowsPerChunk = 1 << 12 // 4096 rows per chunk

func newFeatMat(dim int) *featMat {
	m := &featMat{}
	m.init("feature dim", dim, featRowsPerChunk)
	return m
}

// writeTo serialises the matrix: [4B dim][4B rows][rows×dim float32] —
// the shared rowStore codec, byte-identical to the mmap store's.
func (m *featMat) writeTo(w io.Writer) (int64, error) {
	return writeFloatRows(w, m.width, m.length.Load(), m.Row)
}

// heapBytes reports the chunk storage held on the Go heap: every
// allocated chunk pins perChunk×dim×4 bytes whether or not it is full.
func (m *featMat) heapBytes() int64 {
	chunks := len(*m.dir.Load())
	return int64(chunks) * int64(m.perChunk) * int64(m.width) * 4
}

// Close is a no-op: chunk storage is plain heap memory, reclaimed by GC.
func (m *featMat) Close() error { return nil }

// readFrom replaces the matrix contents. Not concurrent-safe.
func (m *featMat) readFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [8]byte
	k, err := io.ReadFull(r, hdr[:])
	read += int64(k)
	if err != nil {
		return read, err
	}
	dim := int(binary.LittleEndian.Uint32(hdr[0:4]))
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if dim != m.width {
		return read, fmt.Errorf("index: snapshot dim %d, shard dim %d", dim, m.width)
	}
	fresh := newFeatMat(dim)
	buf := make([]byte, 4*dim)
	row := make([]float32, dim)
	for id := uint32(0); id < n; id++ {
		k, err = io.ReadFull(r, buf)
		read += int64(k)
		if err != nil {
			return read, err
		}
		for i := range row {
			row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		if _, err := fresh.Append(row); err != nil {
			return read, err
		}
	}
	m.replace(&fresh.chunkMat)
	return read, nil
}
