package index

import (
	"math/rand"
	"testing"

	"jdvs/internal/core"
)

// batchRequests synthesises a mixed batch: plain queries, category-scoped
// queries, varying TopK and NProbe — the shapes the collector will feed
// SearchBatch in production.
func batchRequests(rng *rand.Rand, feats [][]float32, n int) []*core.SearchRequest {
	reqs := make([]*core.SearchRequest, n)
	for i := range reqs {
		base := feats[rng.Intn(len(feats))]
		q := make([]float32, len(base))
		for d := range q {
			q[d] = base[d] + float32(rng.NormFloat64()*0.05)
		}
		req := &core.SearchRequest{Feature: q, TopK: 5 + i%10, NProbe: 4 + i%5, Category: -1}
		if i%4 == 3 {
			req.Category = int32(i % 4)
		}
		reqs[i] = req
	}
	return reqs
}

// requireSameResponse fails unless got matches want field for field.
func requireSameResponse(t *testing.T, label string, got, want *core.SearchResponse) {
	t.Helper()
	if got.Scanned != want.Scanned || got.Probed != want.Probed {
		t.Fatalf("%s: scanned/probed %d/%d, want %d/%d", label, got.Scanned, got.Probed, want.Scanned, want.Probed)
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("%s: %d hits, want %d", label, len(got.Hits), len(want.Hits))
	}
	for i := range want.Hits {
		if got.Hits[i] != want.Hits[i] {
			t.Fatalf("%s hit %d: %+v, want %+v", label, i, got.Hits[i], want.Hits[i])
		}
	}
}

// runBatchMatches runs the same request set batched and unbatched against
// one shard and requires identical responses — the batched path's core
// correctness contract.
func runBatchMatches(t *testing.T, s *Shard, feats [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 4; trial++ {
		reqs := batchRequests(rng, feats, 2+trial*5) // 2, 7, 12, 17 members
		resps, errs := s.SearchBatch(reqs)
		for i, req := range reqs {
			if errs[i] != nil {
				t.Fatalf("trial %d query %d: %v", trial, i, errs[i])
			}
			want, err := s.Search(req)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResponse(t, "batched", resps[i], want)
		}
	}
}

// TestSearchBatchMatchesSearch8Bit: batched execution on the 8-bit ADC
// path must return exactly the per-query Search results.
func TestSearchBatchMatchesSearch8Bit(t *testing.T) {
	_, quant, feats := buildPQPair(t, 3000, 32, 16, 8)
	runBatchMatches(t, quant, feats)
}

// TestSearchBatchMatchesSearch4Bit: same contract on the 4-bit fast-scan
// path, where the batch reuses one id snapshot and one block load across
// members.
func TestSearchBatchMatchesSearch4Bit(t *testing.T) {
	_, quant, feats := buildPQBitsPair(t, 3000, 32, 16, 8, 4)
	runBatchMatches(t, quant, feats)
}

// TestSearchBatchExactFallback: shards without a quantizer serve batches
// as per-query exact searches with identical results.
func TestSearchBatchExactFallback(t *testing.T) {
	exact, _, feats := buildPQPair(t, 1000, 32, 16, 8)
	rng := rand.New(rand.NewSource(3))
	reqs := batchRequests(rng, feats, 6)
	resps, errs := exact.SearchBatch(reqs)
	for i, req := range reqs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := exact.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResponse(t, "exact fallback", resps[i], want)
	}
}

// TestSearchBatchPerQueryErrors: a bad member fails alone; the rest of
// the batch still answers, and empty-filter members get their empty page.
func TestSearchBatchPerQueryErrors(t *testing.T) {
	_, quant, feats := buildPQBitsPair(t, 1000, 32, 16, 8, 4)
	good := feats[0]
	reqs := []*core.SearchRequest{
		{Feature: good, TopK: 5, NProbe: 4, Category: -1},
		{Feature: good[:16], TopK: 5, NProbe: 4, Category: -1}, // wrong dim
		{Feature: good, TopK: 5, NProbe: 4, Category: 9999},    // never-seen category
		{Feature: feats[7], TopK: 3, NProbe: 4, Category: -1},
	}
	resps, errs := quant.SearchBatch(reqs)
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("good members errored: %v / %v", errs[0], errs[3])
	}
	if errs[1] == nil {
		t.Fatal("wrong-dim member did not error")
	}
	if resps[1] != nil {
		t.Fatal("errored member produced a response")
	}
	if errs[2] != nil || resps[2] == nil || len(resps[2].Hits) != 0 {
		t.Fatalf("never-seen category: err=%v resp=%+v", errs[2], resps[2])
	}
	for _, i := range []int{0, 3} {
		want, err := quant.Search(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		requireSameResponse(t, "mixed batch", resps[i], want)
	}
	// Empty and singleton batches.
	if resps, errs := quant.SearchBatch(nil); len(resps) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch: %d resps, %d errs", len(resps), len(errs))
	}
	one, oneErrs := quant.SearchBatch(reqs[:1])
	if oneErrs[0] != nil {
		t.Fatal(oneErrs[0])
	}
	want, err := quant.Search(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	requireSameResponse(t, "singleton batch", one[0], want)
}

// TestSearchBatchDuplicateSingleFlight: identical requests inside a batch
// are answered once and every duplicate still gets exactly the response an
// unbatched Search returns, as a caller-owned copy.
func TestSearchBatchDuplicateSingleFlight(t *testing.T) {
	for _, bits := range []int{8, 4} {
		_, quant, feats := buildPQBitsPair(t, 1500, 32, 16, 8, bits)
		hot := &core.SearchRequest{Feature: feats[3], TopK: 7, NProbe: 5, Category: -1}
		other := &core.SearchRequest{Feature: feats[9], TopK: 7, NProbe: 5, Category: -1}
		// Same feature but different parameters must NOT be deduplicated.
		narrow := &core.SearchRequest{Feature: feats[3], TopK: 3, NProbe: 2, Category: -1}
		reqs := []*core.SearchRequest{hot, other, hot, narrow, hot, hot}
		resps, errs := quant.SearchBatch(reqs)
		for i, req := range reqs {
			if errs[i] != nil {
				t.Fatalf("bits=%d query %d: %v", bits, i, errs[i])
			}
			want, err := quant.Search(req)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResponse(t, "deduped batch", resps[i], want)
		}
		if resps[0] == resps[2] || resps[2] == resps[4] {
			t.Fatalf("bits=%d: duplicates share a response struct", bits)
		}
		// Hit slices must not alias either: batch members belong to
		// concurrent RPC handlers that stamp partition ids into their
		// hits after the batch returns.
		if len(resps[0].Hits) > 0 && &resps[0].Hits[0] == &resps[2].Hits[0] {
			t.Fatalf("bits=%d: duplicates share a hit backing array", bits)
		}
	}
}

// TestSearchBatchFiltered: predicate-filtered members inside a batch keep
// the adaptive probe/re-rank widening and exact filtering of the
// unbatched path.
func TestSearchBatchFiltered(t *testing.T) {
	_, quant, feats := buildPQBitsPair(t, 2000, 32, 16, 8, 4)
	reqs := []*core.SearchRequest{
		{Feature: feats[0], TopK: 10, NProbe: 4, Category: 2},
		{Feature: feats[1], TopK: 10, NProbe: 4, Category: -1, MinSales: 1},
		{Feature: feats[2], TopK: 10, NProbe: 4, Category: 1},
	}
	resps, errs := quant.SearchBatch(reqs)
	for i, req := range reqs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := quant.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResponse(t, "filtered batch", resps[i], want)
		if req.Category >= 0 {
			for _, h := range resps[i].Hits {
				if int32(h.Category) != req.Category {
					t.Fatalf("query %d leaked category %d", i, h.Category)
				}
			}
		}
	}
}
