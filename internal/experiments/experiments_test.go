package experiments

import (
	"strings"
	"testing"
	"time"
)

// The experiment harnesses are exercised at miniature scale: the point is
// that the pipelines run end to end and the structural invariants hold
// (counts add up, proportions track the paper, renders carry the rows);
// cmd/jdvs-bench runs them at full scale.

func TestRunTable1SmallScale(t *testing.T) {
	res, err := RunTable1(Table1Config{
		Events:     3_000,
		Partitions: 2,
		Products:   400,
		Seed:       5,
	})
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if res.Total != 3_000 {
		t.Fatalf("total = %d, want 3000", res.Total)
	}
	if res.AttrUpdates+res.Additions+res.Deletions != res.Total {
		t.Fatalf("counts don't add up: %+v", res)
	}
	// Proportions within generous tolerance of Table 1.
	frac := func(n int64) float64 { return float64(n) / float64(res.Total) }
	if f := frac(res.Additions); f < 0.45 || f > 0.62 {
		t.Errorf("additions fraction %.3f outside Table 1 band", f)
	}
	if f := frac(res.AttrUpdates); f < 0.25 || f > 0.40 {
		t.Errorf("attr updates fraction %.3f outside Table 1 band", f)
	}
	// The reuse ratio is the headline claim: the overwhelming majority of
	// additions must avoid extraction.
	if res.Additions > 0 {
		reuse := float64(res.ReusedAdditions) / float64(res.Additions)
		if reuse < 0.9 {
			t.Errorf("reuse ratio %.3f, want >= 0.9 (paper: 0.985)", reuse)
		}
	}
	if res.FreshExtractions == 0 {
		t.Error("no fresh extractions at all — the mix lost its fresh-add component")
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "AttrUpdate", "reusing stored features"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig11SmallScale(t *testing.T) {
	res, err := RunFig11(Fig11Config{
		Events:      4_000,
		DayDuration: 1200 * time.Millisecond,
		Partitions:  2,
		Products:    400,
		ExtractWork: 10,
		Seed:        6,
	})
	if err != nil {
		t.Fatalf("RunFig11: %v", err)
	}
	// All events accounted for across the 24 hours.
	var total int64
	for h := 0; h < 24; h++ {
		total += res.Series.Kinds[h].Total()
	}
	if total != 4_000 {
		t.Fatalf("hourly totals sum to %d, want 4000", total)
	}
	// The peak must land in the late-morning band the diurnal shape puts
	// it in (small samples wobble between 10:00 and 12:00).
	if res.PeakHour < 9 || res.PeakHour > 13 {
		t.Errorf("peak hour %d, want late morning (paper: 11)", res.PeakHour)
	}
	if res.Avg <= 0 || res.P99 < res.P90 || res.P90 < 0 {
		t.Errorf("latency stats inconsistent: avg=%v p90=%v p99=%v", res.Avg, res.P90, res.P99)
	}
	out := res.Render()
	if !strings.Contains(out, "peak hour") || !strings.Contains(out, "11:00") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestRunFig12SmallScale(t *testing.T) {
	res, err := RunFig12(Fig12Config{
		Threads:    []int{4, 8},
		Duration:   400 * time.Millisecond,
		Partitions: 2,
		Brokers:    1,
		Blenders:   1,
		Products:   300,
		UpdateRate: 500,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("RunFig12: %v", err)
	}
	if len(res.Without) != 2 || len(res.With) != 2 {
		t.Fatalf("points: %d/%d", len(res.Without), len(res.With))
	}
	for i := range res.Without {
		if res.Without[i].QPS <= 0 || res.With[i].QPS <= 0 {
			t.Fatalf("zero QPS: %+v %+v", res.Without[i], res.With[i])
		}
		if res.Without[i].Errors > 0 || res.With[i].Errors > 0 {
			t.Fatalf("query errors: %+v %+v", res.Without[i], res.With[i])
		}
	}
	if res.AppliedDuringRun == 0 {
		t.Fatal("no real-time updates applied during the 'with' pass — baseline comparison invalid")
	}
	out := res.Render()
	for _, want := range []string{"Figure 12", "normalised", "Response time"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunFig13SmallScale(t *testing.T) {
	res, err := RunFig13(Fig13Config{
		Threads:    []int{1, 4},
		Duration:   400 * time.Millisecond,
		Partitions: 2,
		Brokers:    1,
		Blenders:   1,
		Products:   300,
		Seed:       8,
	})
	if err != nil {
		t.Fatalf("RunFig13: %v", err)
	}
	if len(res.Sweep) != 2 {
		t.Fatalf("sweep has %d points", len(res.Sweep))
	}
	if res.Best.QPS <= 0 {
		t.Fatalf("best = %+v", res.Best)
	}
	if len(res.CDF) == 0 {
		t.Fatal("no CDF")
	}
	last := res.CDF[len(res.CDF)-1]
	if last.Fraction != 1.0 {
		t.Fatalf("CDF does not reach 1.0: %+v", last)
	}
	if res.MaxResp < res.P99Resp {
		t.Fatalf("max %v < p99 %v", res.MaxResp, res.P99Resp)
	}
	out := res.Render()
	for _, want := range []string{"Figure 13", "saturation", "CDF"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunFilteredSmallScale(t *testing.T) {
	res, err := RunFiltered(FilteredConfig{
		Selectivity: 0.1, // 10 categories over a tiny corpus
		Threads:     2,
		Duration:    400 * time.Millisecond,
		Partitions:  2,
		Brokers:     1,
		Blenders:    1,
		Products:    300,
		Seed:        12,
	})
	if err != nil {
		t.Fatalf("RunFiltered: %v", err)
	}
	if res.Categories != 10 {
		t.Fatalf("derived %d categories, want 10", res.Categories)
	}
	if res.Unscoped.QPS <= 0 || res.Scoped.QPS <= 0 {
		t.Fatalf("no load measured: %+v", res)
	}
	if res.Unscoped.Errors != 0 || res.Scoped.Errors != 0 {
		t.Fatalf("query errors: unscoped %d, scoped %d", res.Unscoped.Errors, res.Scoped.Errors)
	}
	// 300 products × ≥1 image over 10 categories leaves ≥ 10 images per
	// category with overwhelming probability; widening must fill the page.
	if res.Scoped.FullPageRate < 0.99 {
		t.Fatalf("scoped full-page rate %.3f, want ≈ 1", res.Scoped.FullPageRate)
	}
	out := res.Render()
	for _, want := range []string{"Filtered search", "unscoped", "scoped", "full-page"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunHedgeSmallScale(t *testing.T) {
	res, err := RunHedge(HedgeConfig{
		Duration:     800 * time.Millisecond,
		Partitions:   2,
		Replicas:     2,
		Brokers:      1,
		Blenders:     1,
		Products:     300,
		Concurrency:  2,
		SlowDelay:    80 * time.Millisecond,
		SlowFraction: 0.2,
		Seed:         5,
	})
	if err != nil {
		t.Fatalf("RunHedge: %v", err)
	}
	if res.Plain.QPS <= 0 || res.Hedged.QPS <= 0 {
		t.Fatalf("no load measured: %+v", res)
	}
	if res.Hedged.Hedges == 0 || res.Hedged.Wins == 0 {
		t.Fatalf("hedged side never hedged: %+v", res.Hedged)
	}
	if res.Plain.Hedges != 0 {
		t.Fatalf("plain side hedged %d times with hedging disabled", res.Plain.Hedges)
	}
	// The injected 80ms mode must dominate the plain tail. The hedged
	// side's extreme percentiles still contain its own pre-warm-up
	// stragglers (the window needs samples before it can hedge), so the
	// robust improvement signal at this tiny scale is the mean, which the
	// ~20%-slow plain run cannot match once hedging kicks in.
	if res.Plain.P99 < 60*time.Millisecond {
		t.Fatalf("plain p99 %v does not show the injected slow mode", res.Plain.P99)
	}
	if res.Hedged.Mean >= res.Plain.Mean*3/4 {
		t.Fatalf("hedging did not improve mean latency: plain %v, hedged %v", res.Plain.Mean, res.Hedged.Mean)
	}
	out := res.Render()
	for _, want := range []string{"no hedging", "hedge@p", "win rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchedSmallScale(t *testing.T) {
	res, err := RunBatched(BatchedConfig{
		Duration:  400 * time.Millisecond,
		Threads:   4,
		Products:  300,
		QueryPool: 32,
		Seed:      9,
	})
	if err != nil {
		t.Fatalf("RunBatched: %v", err)
	}
	if res.Unbatched.QPS <= 0 || res.Batched.QPS <= 0 {
		t.Fatalf("no load measured: %+v", res)
	}
	if res.Unbatched.Errors != 0 || res.Batched.Errors != 0 {
		t.Fatalf("query errors: unbatched %d, batched %d", res.Unbatched.Errors, res.Batched.Errors)
	}
	// The equality audit is the experiment's correctness half: at any
	// scale, both sides must answer every pool query identically.
	if res.Replayed != 32 {
		t.Fatalf("replayed %d pool queries, want 32", res.Replayed)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d of %d replayed queries mismatched between sides", res.Mismatches, res.Replayed)
	}
	out := res.Render()
	for _, want := range []string{"Batched query execution", "unbatched", "replayed, 0 mismatched", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
