package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/metrics"
	"jdvs/internal/msg"
	"jdvs/internal/workload"
)

// Fig11Config scales the Fig. 11 reproduction: a simulated 24-hour day of
// real-time index updates whose hourly rates follow the paper's diurnal
// curve (peak at 11:00). Event latency is measured end to end — enqueue to
// applied — so busy hours exhibit the queueing-driven tail the paper's
// Fig. 11(b) shows.
type Fig11Config struct {
	// Events is the total event count for the simulated day
	// (default 48,000).
	Events int
	// DayDuration is the real-time length of the simulated day
	// (default 12s — each simulated hour is 500ms).
	DayDuration time.Duration
	// Partitions and Products size the cluster (defaults 4 / 2,000).
	Partitions int
	Products   int
	// ExtractWork is the simulated CNN cost factor for fresh additions
	// (default 300 — fresh extractions cost ~1ms, making bursts queue).
	ExtractWork int
	// Seed drives generation.
	Seed int64
}

func (c *Fig11Config) fill() {
	if c.Events <= 0 {
		c.Events = 48_000
	}
	if c.DayDuration <= 0 {
		c.DayDuration = 12 * time.Second
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Products <= 0 {
		c.Products = 2_000
	}
	if c.ExtractWork <= 0 {
		c.ExtractWork = 300
	}
}

// Fig11Result carries the hourly series of Figs. 11(a) and 11(b).
type Fig11Result struct {
	Config Fig11Config
	Series *metrics.HourlySeries
	// PeakHour is the hour with the highest total update count; the paper
	// reports 11:00.
	PeakHour int
	// Overall latency statistics across the whole day.
	Avg, P90, P99 time.Duration
	Wall          time.Duration
}

// RunFig11 executes the experiment.
func RunFig11(cfg Fig11Config) (*Fig11Result, error) {
	cfg.fill()
	series := metrics.NewHourlySeries()
	var overall metrics.Histogram

	var applied int64
	var mu sync.Mutex
	done := make(chan struct{})
	target := int64(cfg.Events)

	// Simulated event time → hour lookup is carried in EventTimeNanos: the
	// producer stamps each event with its simulated hour (encoded as
	// hour*1e9 nanos into the simulated day).
	c, err := cluster.Start(cluster.Config{
		Partitions:  cfg.Partitions,
		NLists:      32,
		ExtractWork: cfg.ExtractWork,
		Catalog: catalog.Config{
			Products:   cfg.Products,
			Categories: 12,
			Seed:       cfg.Seed,
		},
		OnApplied: func(u *msg.ProductUpdate, kind string, reused bool, lat time.Duration) {
			hour := int(u.EventTimeNanos / 1e9)
			series.RecordUpdate(hour, kind, lat)
			overall.Record(lat)
			mu.Lock()
			applied++
			if applied == target {
				close(done)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	defer c.Close()

	gen := workload.NewMix(workload.MixConfig{Seed: cfg.Seed + 1}, c.Catalog, c.Images)

	// Pre-generate the day's events and their hours.
	type timed struct {
		u    *msg.ProductUpdate
		hour int
	}
	events := make([]timed, 0, cfg.Events)
	for len(events) < cfg.Events {
		u, _, _, err := gen.Next()
		if err != nil {
			return nil, fmt.Errorf("fig11: generate: %w", err)
		}
		for _, url := range u.ImageURLs {
			if len(events) == cfg.Events {
				break
			}
			per := *u
			per.ImageURLs = []string{url}
			events = append(events, timed{u: &per})
		}
	}
	for i := range events {
		events[i].hour = workload.HourOfEvent(i, len(events), workload.DiurnalShape)
		events[i].u.EventTimeNanos = int64(events[i].hour) * 1e9
	}

	// Inject hour by hour: each hour's events are published as a burst at
	// the start of its real-time slice, then the producer sleeps out the
	// slice. Busy hours therefore accumulate backlog — end-to-end latency
	// (enqueue → applied) rises with load, as in production.
	start := time.Now()
	slice := cfg.DayDuration / 24
	idx := 0
	for h := 0; h < 24; h++ {
		hourStart := time.Now()
		for idx < len(events) && events[idx].hour == h {
			if err := c.Publish(events[idx].u); err != nil {
				return nil, fmt.Errorf("fig11: publish: %w", err)
			}
			idx++
		}
		if rest := slice - time.Since(hourStart); rest > 0 && h < 23 {
			time.Sleep(rest)
		}
	}
	drainTimeout := time.NewTimer(10 * time.Minute)
	defer drainTimeout.Stop()
	select {
	case <-done:
	case <-drainTimeout.C:
		return nil, fmt.Errorf("fig11: drain timeout (%d/%d)", applied, target)
	}
	wall := time.Since(start)

	res := &Fig11Result{Config: cfg, Series: series, Wall: wall}
	peak, peakN := 0, int64(-1)
	for h := 0; h < 24; h++ {
		if n := series.Kinds[h].Total(); n > peakN {
			peak, peakN = h, n
		}
	}
	res.PeakHour = peak
	res.Avg = overall.Mean()
	res.P90 = overall.Percentile(90)
	res.P99 = overall.Percentile(99)
	return res, nil
}

// Render prints the hourly table (Fig. 11(a) counts + Fig. 11(b)
// latencies) plus the summary line the paper quotes.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11. Real time indexing over a simulated day (%d events in %s)\n\n",
		r.Config.Events, fmtDur(r.Config.DayDuration))
	b.WriteString(r.Series.Table())
	fmt.Fprintf(&b, "\npeak hour: %02d:00 (paper: 11:00)\n", r.PeakHour)
	fmt.Fprintf(&b, "day-wide latency: avg %s, p90 %s, p99 %s\n", fmtDur(r.Avg), fmtDur(r.P90), fmtDur(r.P99))
	fmt.Fprintf(&b, "(paper, production scale: avg 132ms, p90 223ms, p99 816ms)\n")
	return b.String()
}
