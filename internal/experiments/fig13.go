package experiments

import (
	"fmt"
	"strings"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/metrics"
	"jdvs/internal/workload"
)

// Fig13Config scales the Fig. 13 reproduction: query throughput versus
// client thread count (the saturation curve of Fig. 13(a)) and the full
// response-time CDF at the saturating concurrency (Fig. 13(b)).
type Fig13Config struct {
	// Threads is the sweep (default 1..35 odd counts, matching the
	// paper's x-axis 1,3,5,...,35).
	Threads []int
	// Duration is the measurement window per thread count (default 2s).
	Duration time.Duration
	// Cluster sizing (defaults 8 / 3 / 3 / 4,000).
	Partitions, Brokers, Blenders, Products int
	// CDFPoints caps the rendered CDF resolution (default 24).
	CDFPoints int
	// PQSubvectors/RerankK switch the searchers to the product-quantized
	// ADC scan; 0 keeps the exact float scan.
	PQSubvectors int
	RerankK      int
	// FeatureStore/SpillDir tier the searchers' raw feature rows
	// (cluster.Config fields of the same names).
	FeatureStore string
	SpillDir     string
	// Seed drives generation.
	Seed int64
}

func (c *Fig13Config) fill() {
	if len(c.Threads) == 0 {
		for n := 1; n <= 35; n += 2 {
			c.Threads = append(c.Threads, n)
		}
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Brokers <= 0 {
		c.Brokers = 3
	}
	if c.Blenders <= 0 {
		c.Blenders = 3
	}
	if c.Products <= 0 {
		c.Products = 4_000
	}
	if c.CDFPoints <= 0 {
		c.CDFPoints = 24
	}
}

// Fig13Point is one sweep measurement.
type Fig13Point struct {
	Threads int
	QPS     float64
	Mean    time.Duration
	P99     time.Duration
	Errors  int64
}

// Fig13Result carries the sweep and the max-throughput latency CDF.
type Fig13Result struct {
	Config Fig13Config
	Sweep  []Fig13Point
	// Best is the saturating measurement; CDF its latency distribution.
	Best    Fig13Point
	CDF     []metrics.CDFPoint
	MaxResp time.Duration
	P99Resp time.Duration
}

// RunFig13 executes the experiment.
func RunFig13(cfg Fig13Config) (*Fig13Result, error) {
	cfg.fill()
	c, err := cluster.Start(cluster.Config{
		Partitions:   cfg.Partitions,
		Brokers:      cfg.Brokers,
		Blenders:     cfg.Blenders,
		NLists:       64,
		PQSubvectors: cfg.PQSubvectors,
		RerankK:      cfg.RerankK,
		FeatureStore: cfg.FeatureStore,
		SpillDir:     cfg.SpillDir,
		Catalog: catalog.Config{
			Products:   cfg.Products,
			Categories: 12,
			Seed:       cfg.Seed,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}
	defer c.Close()

	res := &Fig13Result{Config: cfg}
	var bestLatency *metrics.Histogram
	for i, n := range cfg.Threads {
		lr, err := workload.RunQueryLoad(workload.QueryLoadConfig{
			Addr:        c.FrontendAddr(),
			Concurrency: n,
			Duration:    cfg.Duration,
			TopK:        10,
			Seed:        cfg.Seed + int64(i),
		}, c.Catalog)
		if err != nil {
			return nil, fmt.Errorf("fig13, %d threads: %w", n, err)
		}
		p := Fig13Point{
			Threads: n,
			QPS:     lr.QPS,
			Mean:    lr.Latency.Mean(),
			P99:     lr.Latency.Percentile(99),
			Errors:  lr.Errors,
		}
		res.Sweep = append(res.Sweep, p)
		if p.QPS > res.Best.QPS {
			res.Best = p
			bestLatency = lr.Latency
		}
	}
	if bestLatency != nil {
		res.CDF = bestLatency.CDF(cfg.CDFPoints)
		res.MaxResp = bestLatency.Max()
		res.P99Resp = bestLatency.Percentile(99)
	}
	return res, nil
}

// Render prints the Fig. 13(a) sweep and the Fig. 13(b) CDF series.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13. Query performance scalability\n\n")
	b.WriteString("(a) Throughput vs concurrent client threads\n")
	row(&b, "threads", "QPS", "mean", "p99", "errors")
	for _, p := range r.Sweep {
		row(&b, p.Threads, fmt.Sprintf("%.0f", p.QPS), fmtDur(p.Mean), fmtDur(p.P99), p.Errors)
	}
	fmt.Fprintf(&b, "\nsaturation: %.0f QPS at %d threads (paper: ≈1800 QPS, saturating in the 1–35 thread sweep)\n",
		r.Best.QPS, r.Best.Threads)
	b.WriteString("\n(b) Response time CDF at maximum throughput\n")
	row(&b, "latency", "CDF")
	for _, p := range r.CDF {
		row(&b, fmtDur(p.Latency), fmt.Sprintf("%.4f", p.Fraction))
	}
	fmt.Fprintf(&b, "\nmax response %s, p99 %s (paper: max 2.1s, p99 0.3s)\n", fmtDur(r.MaxResp), fmtDur(r.P99Resp))
	return b.String()
}
