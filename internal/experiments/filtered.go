package experiments

import (
	"fmt"
	"strings"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/workload"
)

// FilteredConfig parameterises the filtered-search workload: the same
// query stream run twice against one cluster — once unscoped, once with
// every query scoped to its product's category (plus an always-true price
// floor, so the predicate machinery is exercised too). The catalog's
// category count is derived from the target selectivity, so a scoped query
// admits ≈ Selectivity of the corpus and the searchers' bitmap-admission
// pushdown (with adaptive probe widening) is what keeps the result page
// full.
type FilteredConfig struct {
	// Selectivity is the fraction of the corpus one scoped query admits
	// (default 0.01 — the 1% band the recall gate is pinned at). The
	// catalog gets round(1/Selectivity) categories.
	Selectivity float64
	// Threads is the client concurrency (default 8).
	Threads int
	// Duration is the measurement window per side (default 2s).
	Duration time.Duration
	// Cluster sizing (defaults 4 / 2 / 2 / 4,000).
	Partitions, Brokers, Blenders, Products int
	// PQSubvectors/RerankK switch the searchers to the product-quantized
	// ADC scan; 0 keeps the exact float scan.
	PQSubvectors int
	RerankK      int
	// FilterMaxNProbe / FilterMaxRerankK cap the searchers' adaptive
	// widening on filtered queries (cluster.Config fields of the same
	// names; 0 derives the defaults).
	FilterMaxNProbe  int
	FilterMaxRerankK int
	// Seed drives generation.
	Seed int64
}

func (c *FilteredConfig) fill() {
	if c.Selectivity <= 0 || c.Selectivity > 1 {
		c.Selectivity = 0.01
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Brokers <= 0 {
		c.Brokers = 2
	}
	if c.Blenders <= 0 {
		c.Blenders = 2
	}
	if c.Products <= 0 {
		c.Products = 4_000
	}
}

// FilteredPoint is one side's measurement.
type FilteredPoint struct {
	QPS          float64
	Mean         time.Duration
	P99          time.Duration
	Queries      int64
	Errors       int64
	FullPageRate float64
}

// FilteredResult carries both sides.
type FilteredResult struct {
	Config     FilteredConfig
	Categories int
	Unscoped   FilteredPoint
	Scoped     FilteredPoint
}

// RunFiltered executes the experiment.
func RunFiltered(cfg FilteredConfig) (*FilteredResult, error) {
	cfg.fill()
	categories := int(1/cfg.Selectivity + 0.5)
	if categories < 1 {
		categories = 1
	}
	c, err := cluster.Start(cluster.Config{
		Partitions:       cfg.Partitions,
		Brokers:          cfg.Brokers,
		Blenders:         cfg.Blenders,
		NLists:           64,
		PQSubvectors:     cfg.PQSubvectors,
		RerankK:          cfg.RerankK,
		FilterMaxNProbe:  cfg.FilterMaxNProbe,
		FilterMaxRerankK: cfg.FilterMaxRerankK,
		Catalog: catalog.Config{
			Products:   cfg.Products,
			Categories: categories,
			Seed:       cfg.Seed,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("filtered: %w", err)
	}
	defer c.Close()

	blobs, blobCats := workload.MakeScopedQueryBlobs(c.Catalog, 64, cfg.Seed)
	res := &FilteredResult{Config: cfg, Categories: categories}
	run := func(scoped bool) (FilteredPoint, error) {
		lc := workload.QueryLoadConfig{
			Addr:        c.FrontendAddr(),
			Concurrency: cfg.Threads,
			Duration:    cfg.Duration,
			TopK:        10,
			Blobs:       blobs,
			Seed:        cfg.Seed,
		}
		if scoped {
			lc.BlobCategories = blobCats
			lc.MinPriceCents = 1 // always true, but engages the predicate path
		}
		lr, err := workload.RunQueryLoad(lc, nil)
		if err != nil {
			return FilteredPoint{}, err
		}
		p := FilteredPoint{
			QPS:     lr.QPS,
			Mean:    lr.Latency.Mean(),
			P99:     lr.Latency.Percentile(99),
			Queries: lr.Queries,
			Errors:  lr.Errors,
		}
		if lr.Queries > 0 {
			p.FullPageRate = float64(lr.FullPages) / float64(lr.Queries)
		}
		return p, nil
	}
	if res.Unscoped, err = run(false); err != nil {
		return nil, fmt.Errorf("filtered, unscoped side: %w", err)
	}
	if res.Scoped, err = run(true); err != nil {
		return nil, fmt.Errorf("filtered, scoped side: %w", err)
	}
	return res, nil
}

// Render prints both sides.
func (r *FilteredResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Filtered search workload (selectivity %.2g ⇒ %d categories, %d products)\n\n",
		r.Config.Selectivity, r.Categories, r.Config.Products)
	row(&b, "side", "QPS", "mean", "p99", "queries", "errors", "full-page")
	p := r.Unscoped
	row(&b, "unscoped", fmt.Sprintf("%.0f", p.QPS), fmtDur(p.Mean), fmtDur(p.P99), p.Queries, p.Errors, fmt.Sprintf("%.3f", p.FullPageRate))
	p = r.Scoped
	row(&b, "scoped", fmt.Sprintf("%.0f", p.QPS), fmtDur(p.Mean), fmtDur(p.P99), p.Queries, p.Errors, fmt.Sprintf("%.3f", p.FullPageRate))
	b.WriteString("\nscoped queries admit only their product's category; bitmap admission plus\n" +
		"adaptive probe widening is what keeps the scoped full-page rate near 1.\n")
	return b.String()
}
