// Package experiments regenerates every table and figure of the paper's
// evaluation (§3) against the real system: scaled-down workloads with the
// paper's exact proportions and shapes drive the full cluster, and each
// runner renders rows/series in the same form the paper reports.
//
// Absolute numbers differ from the paper's production hardware; the
// relations the paper claims — the Table 1 reuse ratio, the diurnal rate
// and latency shape of Fig. 11, the <10% real-time-indexing overhead of
// Fig. 12, the saturation curve and tail CDF of Fig. 13 — are what these
// harnesses measure. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// scalePct renders a ratio as a percentage string.
func scalePct(num, den int64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// row formats one aligned table row.
func row(b *strings.Builder, cols ...interface{}) {
	for i, c := range cols {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(b, "%14v", c)
	}
	b.WriteByte('\n')
}

// fmtDur rounds a duration for display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
