package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/msg"
	"jdvs/internal/workload"
)

// Fig12Config scales the Fig. 12 reproduction: query throughput and
// response time with and without concurrent real-time indexing, at the
// paper's client concurrencies (50, 100, 200). The paper's testbed holds
// 100,000 images on 20 searchers; the defaults scale that down — pass
// bigger numbers to cmd/jdvs-bench for a full-size run.
type Fig12Config struct {
	// Threads are the emulated user counts (default {50, 100, 200}).
	Threads []int
	// Duration is the measurement window per setting (default 3s).
	Duration time.Duration
	// Partitions, Brokers, Blenders, Products size the cluster
	// (defaults 8 / 3 / 3 / 4,000 ≈ 8k images).
	Partitions, Brokers, Blenders, Products int
	// UpdateRate is the real-time indexing load in events/sec while
	// measuring "with real time index" (default 2,000).
	UpdateRate int
	// PQSubvectors/RerankK switch the searchers to the product-quantized
	// ADC scan (cluster.Config fields of the same names); 0 keeps the
	// exact float scan.
	PQSubvectors int
	RerankK      int
	// FeatureStore/SpillDir tier the searchers' raw feature rows
	// (cluster.Config fields of the same names): "mmap" spends shard RAM
	// on ADC codes instead of floats.
	FeatureStore string
	SpillDir     string
	// Seed drives generation.
	Seed int64
}

func (c *Fig12Config) fill() {
	if len(c.Threads) == 0 {
		c.Threads = []int{50, 100, 200}
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.Brokers <= 0 {
		c.Brokers = 3
	}
	if c.Blenders <= 0 {
		c.Blenders = 3
	}
	if c.Products <= 0 {
		c.Products = 4_000
	}
	if c.UpdateRate <= 0 {
		c.UpdateRate = 2_000
	}
}

// Fig12Point is one (threads, mode) measurement.
type Fig12Point struct {
	Threads  int
	QPS      float64
	MeanResp time.Duration
	P99Resp  time.Duration
	Errors   int64
}

// Fig12Result pairs the two modes per thread count.
type Fig12Result struct {
	Config  Fig12Config
	Without []Fig12Point // no concurrent real-time indexing load
	With    []Fig12Point // concurrent real-time indexing at UpdateRate
	// AppliedDuringRun counts RT updates applied while measuring the
	// "with" mode — proof the competing load was real.
	AppliedDuringRun int64
}

// RunFig12 executes the experiment: one cluster, each thread count
// measured twice (quiet queue, then live update stream).
func RunFig12(cfg Fig12Config) (*Fig12Result, error) {
	cfg.fill()
	var applied atomic.Int64
	c, err := cluster.Start(cluster.Config{
		Partitions:   cfg.Partitions,
		Brokers:      cfg.Brokers,
		Blenders:     cfg.Blenders,
		NLists:       64,
		PQSubvectors: cfg.PQSubvectors,
		RerankK:      cfg.RerankK,
		FeatureStore: cfg.FeatureStore,
		SpillDir:     cfg.SpillDir,
		Catalog: catalog.Config{
			Products:   cfg.Products,
			Categories: 12,
			Seed:       cfg.Seed,
		},
		OnApplied: func(u *msg.ProductUpdate, kind string, reused bool, lat time.Duration) {
			applied.Add(1)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("fig12: %w", err)
	}
	defer c.Close()

	res := &Fig12Result{Config: cfg}
	// Blobs are generated once, before any update stream owns the catalog.
	blobs := workload.MakeQueryBlobs(c.Catalog, 64, cfg.Seed+9)
	measure := func(threads int, seed int64, dur time.Duration) (Fig12Point, error) {
		lr, err := workload.RunQueryLoad(workload.QueryLoadConfig{
			Addr:        c.FrontendAddr(),
			Concurrency: threads,
			Duration:    dur,
			TopK:        10,
			Blobs:       blobs,
			Seed:        seed,
		}, c.Catalog)
		if err != nil {
			return Fig12Point{}, err
		}
		return Fig12Point{
			Threads:  threads,
			QPS:      lr.QPS,
			MeanResp: lr.Latency.Mean(),
			P99Resp:  lr.Latency.Percentile(99),
			Errors:   lr.Errors,
		}, nil
	}
	warmup := cfg.Duration / 4
	if warmup > time.Second {
		warmup = time.Second
	}

	// The two modes are measured back to back per thread count (with a
	// warmup before each measurement) so machine-level drift hits both
	// equally — the overhead ratio is what matters.
	gen := workload.NewMix(workload.MixConfig{Seed: cfg.Seed + 100}, c.Catalog, c.Images)
	appliedBefore := applied.Load()
	for i, n := range cfg.Threads {
		if _, err := measure(n, cfg.Seed+500+int64(i), warmup); err != nil {
			return nil, fmt.Errorf("fig12 warmup, %d threads: %w", n, err)
		}
		wo, err := measure(n, cfg.Seed+int64(i), cfg.Duration)
		if err != nil {
			return nil, fmt.Errorf("fig12 without, %d threads: %w", n, err)
		}
		res.Without = append(res.Without, wo)

		stop := make(chan struct{})
		updaterDone := make(chan error, 1)
		go func() {
			updaterDone <- streamUpdates(c, gen, cfg.UpdateRate, stop)
		}()
		if _, err := measure(n, cfg.Seed+1500+int64(i), warmup); err != nil {
			close(stop)
			<-updaterDone
			return nil, fmt.Errorf("fig12 warmup-with, %d threads: %w", n, err)
		}
		wi, err := measure(n, cfg.Seed+1000+int64(i), cfg.Duration)
		close(stop)
		if uerr := <-updaterDone; uerr != nil {
			return nil, fmt.Errorf("fig12 updater: %w", uerr)
		}
		if err != nil {
			return nil, fmt.Errorf("fig12 with, %d threads: %w", n, err)
		}
		res.With = append(res.With, wi)
	}
	res.AppliedDuringRun = applied.Load() - appliedBefore
	return res, nil
}

// streamUpdates publishes per-image events at approximately rate/sec until
// stop closes.
func streamUpdates(c *cluster.Cluster, gen *workload.MixGen, rate int, stop <-chan struct{}) error {
	const tick = 10 * time.Millisecond
	perTick := rate / 100
	if perTick < 1 {
		perTick = 1
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
		}
		sent := 0
		for sent < perTick {
			u, _, _, err := gen.Next()
			if err != nil {
				return err
			}
			for _, url := range u.ImageURLs {
				if sent == perTick {
					break
				}
				per := *u
				per.ImageURLs = []string{url}
				per.EventTimeNanos = time.Now().UnixNano()
				if err := c.Publish(&per); err != nil {
					return err
				}
				sent++
			}
		}
	}
}

// Render prints the Fig. 12(a) normalised-throughput rows and the
// Fig. 12(b) response-time rows.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12. Performance with and without real time indexing (update load %d ev/s)\n\n", r.Config.UpdateRate)
	b.WriteString("(a) Throughput, normalised to the no-real-time baseline per thread count\n")
	row(&b, "threads", "QPS w/o RT", "QPS with RT", "normalised", "overhead")
	for i := range r.Without {
		wo, wi := r.Without[i], r.With[i]
		norm := 0.0
		if wo.QPS > 0 {
			norm = wi.QPS / wo.QPS
		}
		row(&b, wo.Threads,
			fmt.Sprintf("%.0f", wo.QPS),
			fmt.Sprintf("%.0f", wi.QPS),
			fmt.Sprintf("%.3f", norm),
			fmt.Sprintf("%.1f%%", 100*(1-norm)))
	}
	b.WriteString("(paper: overhead < 10% at every thread count)\n\n")
	b.WriteString("(b) Response time\n")
	row(&b, "threads", "mean w/o RT", "mean with RT", "p99 w/o RT", "p99 with RT")
	for i := range r.Without {
		wo, wi := r.Without[i], r.With[i]
		row(&b, wo.Threads, fmtDur(wo.MeanResp), fmtDur(wi.MeanResp), fmtDur(wo.P99Resp), fmtDur(wi.P99Resp))
	}
	b.WriteString("(paper: means similar in both modes, < 100ms average)\n")
	fmt.Fprintf(&b, "\nreal-time updates applied during the 'with' pass: %d\n", r.AppliedDuringRun)
	return b.String()
}
