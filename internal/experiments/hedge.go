package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/workload"
)

// HedgeConfig parameterises the hedging demonstration: the same replicated
// cluster with an injected slow replica is driven twice — hedging disabled,
// then enabled — and the query-latency tails are compared. This is the
// CLI-visible version of the broker package's tail-latency benchmark
// (jdvs-bench -experiment hedge -slow-replica-ms 200 -slow-replica-frac 0.2).
type HedgeConfig struct {
	// Duration is the measurement window per side (default 3s).
	Duration time.Duration
	// Cluster sizing (defaults 4 partitions × 2 replicas, 2 brokers,
	// 2 blenders, 2,000 products).
	Partitions, Replicas, Brokers, Blenders, Products int
	// Concurrency is the number of closed-loop query clients (default 4).
	Concurrency int
	// SlowDelay is the latency injected into the last replica of every
	// partition (default 200ms); SlowFraction is the fraction of that
	// replica's searches it applies to (default 0.2).
	SlowDelay    time.Duration
	SlowFraction float64
	// PQSubvectors/RerankK switch the searchers to the product-quantized
	// ADC scan; 0 keeps the exact float scan.
	PQSubvectors int
	RerankK      int
	// FeatureStore/SpillDir tier the searchers' raw feature rows
	// (cluster.Config fields of the same names).
	FeatureStore string
	SpillDir     string
	// Seed drives generation.
	Seed int64
}

func (c *HedgeConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Brokers <= 0 {
		c.Brokers = 2
	}
	if c.Blenders <= 0 {
		c.Blenders = 2
	}
	if c.Products <= 0 {
		c.Products = 2_000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.SlowDelay <= 0 {
		c.SlowDelay = 200 * time.Millisecond
	}
	if c.SlowFraction <= 0 {
		c.SlowFraction = 0.2
	}
}

// HedgeSide is one side of the comparison.
type HedgeSide struct {
	Hedged  bool
	QPS     float64
	Mean    time.Duration
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Max     time.Duration
	Errors  int64
	Hedges  int64
	Wins    int64
	Cancels int64
	Queries int64 // broker-tier query count, the hedge budget's denominator
}

// HedgeResult carries both sides.
type HedgeResult struct {
	Config   HedgeConfig
	Plain    HedgeSide
	Hedged   HedgeSide
	Quantile float64 // effective hedge quantile used
}

// RunHedge executes the experiment.
func RunHedge(cfg HedgeConfig) (*HedgeResult, error) {
	cfg.fill()
	res := &HedgeResult{Config: cfg}
	// The injected slow mode is deliberately heavy (default 20% of one
	// replica's requests, ~10% of attempts per group under round-robin), so
	// trigger below the slow mass instead of at the production-default p95,
	// which such a fixture would push into the slow mode itself.
	res.Quantile = 85
	for _, hedged := range []bool{false, true} {
		side, err := runHedgeSide(cfg, hedged, res.Quantile)
		if err != nil {
			return nil, err
		}
		if hedged {
			res.Hedged = *side
		} else {
			res.Plain = *side
		}
	}
	return res, nil
}

func runHedgeSide(cfg HedgeConfig, hedged bool, quantile float64) (*HedgeSide, error) {
	hq := quantile
	if !hedged {
		hq = -1 // disable
	}
	c, err := cluster.Start(cluster.Config{
		Partitions:          cfg.Partitions,
		Replicas:            cfg.Replicas,
		Brokers:             cfg.Brokers,
		Blenders:            cfg.Blenders,
		NLists:              32,
		PQSubvectors:        cfg.PQSubvectors,
		RerankK:             cfg.RerankK,
		FeatureStore:        cfg.FeatureStore,
		SpillDir:            cfg.SpillDir,
		SlowReplicaDelay:    cfg.SlowDelay,
		SlowReplicaFraction: cfg.SlowFraction,
		HedgeQuantile:       hq,
		HedgeMaxFraction:    0.25,
		HedgeWarmup:         16,
		Catalog: catalog.Config{
			Products:   cfg.Products,
			Categories: 8,
			Seed:       cfg.Seed,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("hedge (hedged=%v): %w", hedged, err)
	}
	defer c.Close()

	lr, err := workload.RunQueryLoad(workload.QueryLoadConfig{
		Addr:        c.FrontendAddr(),
		Concurrency: cfg.Concurrency,
		Duration:    cfg.Duration,
		TopK:        10,
		Seed:        cfg.Seed,
	}, c.Catalog)
	if err != nil {
		return nil, fmt.Errorf("hedge load (hedged=%v): %w", hedged, err)
	}
	side := &HedgeSide{
		Hedged: hedged,
		QPS:    lr.QPS,
		Mean:   lr.Latency.Mean(),
		P50:    lr.Latency.Percentile(50),
		P95:    lr.Latency.Percentile(95),
		P99:    lr.Latency.Percentile(99),
		Max:    lr.Latency.Max(),
		Errors: lr.Errors,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("hedge stats (hedged=%v): %w", hedged, err)
	}
	for _, br := range st.Brokers {
		side.Hedges += br.Hedges
		side.Wins += br.HedgeWins
		side.Cancels += br.HedgeCancels
		side.Queries += br.Queries
	}
	return side, nil
}

// Render prints the comparison table.
func (r *HedgeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hedged replica requests vs. a slow replica (+%s on %.0f%% of one replica's requests)\n\n",
		fmtDur(r.Config.SlowDelay), 100*r.Config.SlowFraction)
	row(&b, "mode", "QPS", "mean", "p50", "p95", "p99", "max", "errors")
	for _, s := range []*HedgeSide{&r.Plain, &r.Hedged} {
		mode := "no hedging"
		if s.Hedged {
			mode = fmt.Sprintf("hedge@p%.0f", r.Quantile)
		}
		row(&b, mode, fmt.Sprintf("%.0f", s.QPS), fmtDur(s.Mean), fmtDur(s.P50),
			fmtDur(s.P95), fmtDur(s.P99), fmtDur(s.Max), s.Errors)
	}
	if r.Hedged.Queries > 0 {
		winRate := "n/a"
		if r.Hedged.Hedges > 0 {
			winRate = scalePct(r.Hedged.Wins, r.Hedged.Hedges)
		}
		fmt.Fprintf(&b, "\nhedges: %d over %d broker queries (%s of volume), win rate %s, %d losers cancelled\n",
			r.Hedged.Hedges, r.Hedged.Queries, scalePct(r.Hedged.Hedges, r.Hedged.Queries), winRate, r.Hedged.Cancels)
	}
	if r.Plain.P99 > 0 {
		fmt.Fprintf(&b, "p99 with hedging = %s of p99 without\n", scalePct(int64(r.Hedged.P99), int64(r.Plain.P99)))
	}
	return b.String()
}
