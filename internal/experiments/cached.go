package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/workload"
)

// CachedConfig parameterises the caching workload: the same zipf-skewed
// query stream run against two otherwise identical clusters — one with
// both cache levels disabled, one with the blender feature cache and the
// broker result cache enabled. E-commerce query traffic is heavily skewed
// (the same hero images hit search constantly), which is exactly what a
// content-hash feature cache plus a watermark-invalidated result cache
// monetise; the comparison measures how much closed-loop throughput the
// two levels together recover.
type CachedConfig struct {
	// ZipfS is the query skew exponent (default 1.1). Must be > 1 to skew;
	// the pool's rank-0 image is the hottest.
	ZipfS float64
	// Threads is the client concurrency (default 8).
	Threads int
	// Duration is the measurement window per side (default 2s).
	Duration time.Duration
	// Cluster sizing (defaults 2 / 1 / 1 / 1,000).
	Partitions, Brokers, Blenders, Products int
	// QueryPool is the number of distinct query images (default 512 — a
	// few hundred distinct hot images, zipf-weighted).
	QueryPool int
	// ExtractWork is the simulated CNN cost in extra forward passes per
	// extraction (default 256): the cost block the feature cache elides,
	// standing in for a real CNN's tens of milliseconds.
	ExtractWork int
	// FeatureCacheSize / ResultCacheSize size the cached side's two levels
	// (defaults: half the query pool each, so the tail of the zipf
	// distribution does not fit and LRU churn is part of the measurement).
	FeatureCacheSize int
	ResultCacheSize  int
	// ResultCacheMaxLag is the staleness slack in queue offsets (default 0:
	// any covered-shard advance invalidates).
	ResultCacheMaxLag int64
	// Seed drives generation.
	Seed int64
}

func (c *CachedConfig) fill() {
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Partitions <= 0 {
		c.Partitions = 2
	}
	if c.Brokers <= 0 {
		c.Brokers = 1
	}
	if c.Blenders <= 0 {
		c.Blenders = 1
	}
	if c.Products <= 0 {
		c.Products = 1_000
	}
	if c.QueryPool <= 0 {
		c.QueryPool = 512
	}
	if c.ExtractWork <= 0 {
		c.ExtractWork = 256
	}
	if c.FeatureCacheSize <= 0 {
		c.FeatureCacheSize = c.QueryPool / 2
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = c.QueryPool / 2
	}
}

// CachedSide is one side's measurement.
type CachedSide struct {
	Cached  bool
	QPS     float64
	Mean    time.Duration
	P50     time.Duration
	P99     time.Duration
	Queries int64
	Errors  int64
	// Cache counters, scraped from the cached side's stats endpoints
	// (zero on the uncached side).
	FeatureHits   int64
	FeatureMisses int64
	ResultHits    int64
	ResultMisses  int64
}

// CachedResult carries both sides.
type CachedResult struct {
	Config   CachedConfig
	Uncached CachedSide
	Cached   CachedSide
}

// Speedup is the closed-loop QPS ratio cached / uncached.
func (r *CachedResult) Speedup() float64 {
	if r.Uncached.QPS <= 0 {
		return 0
	}
	return r.Cached.QPS / r.Uncached.QPS
}

// RunCached executes the experiment.
func RunCached(cfg CachedConfig) (*CachedResult, error) {
	cfg.fill()
	res := &CachedResult{Config: cfg}
	for _, cached := range []bool{false, true} {
		side, err := runCachedSide(cfg, cached)
		if err != nil {
			return nil, err
		}
		if cached {
			res.Cached = *side
		} else {
			res.Uncached = *side
		}
	}
	return res, nil
}

func runCachedSide(cfg CachedConfig, cached bool) (*CachedSide, error) {
	ccfg := cluster.Config{
		Partitions:  cfg.Partitions,
		Brokers:     cfg.Brokers,
		Blenders:    cfg.Blenders,
		NLists:      32,
		ExtractWork: cfg.ExtractWork,
		Catalog: catalog.Config{
			Products:   cfg.Products,
			Categories: 8,
			Seed:       cfg.Seed,
		},
	}
	if cached {
		ccfg.FeatureCacheSize = cfg.FeatureCacheSize
		ccfg.ResultCacheSize = cfg.ResultCacheSize
		ccfg.ResultCacheMaxLag = cfg.ResultCacheMaxLag
	}
	c, err := cluster.Start(ccfg)
	if err != nil {
		return nil, fmt.Errorf("cached (cached=%v): %w", cached, err)
	}
	defer c.Close()

	blobs := workload.MakeQueryBlobs(c.Catalog, cfg.QueryPool, cfg.Seed)
	lr, err := workload.RunQueryLoad(workload.QueryLoadConfig{
		Addr:        c.FrontendAddr(),
		Concurrency: cfg.Threads,
		Duration:    cfg.Duration,
		TopK:        10,
		Blobs:       blobs,
		ZipfS:       cfg.ZipfS,
		Seed:        cfg.Seed,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("cached load (cached=%v): %w", cached, err)
	}
	side := &CachedSide{
		Cached:  cached,
		QPS:     lr.QPS,
		Mean:    lr.Latency.Mean(),
		P50:     lr.Latency.Percentile(50),
		P99:     lr.Latency.Percentile(99),
		Queries: lr.Queries,
		Errors:  lr.Errors,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("cached stats (cached=%v): %w", cached, err)
	}
	for _, bl := range st.Blenders {
		side.FeatureHits += bl.FeatureCacheHits
		side.FeatureMisses += bl.FeatureCacheMisses
	}
	for _, br := range st.Brokers {
		side.ResultHits += br.ResultCacheHits
		side.ResultMisses += br.ResultCacheMisses
	}
	return side, nil
}

// Render prints the comparison table.
func (r *CachedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Two-level caching under zipf-skewed queries (s=%.2f, pool %d, feature cache %d, result cache %d)\n\n",
		r.Config.ZipfS, r.Config.QueryPool, r.Config.FeatureCacheSize, r.Config.ResultCacheSize)
	row(&b, "mode", "QPS", "mean", "p50", "p99", "queries", "errors")
	for _, s := range []*CachedSide{&r.Uncached, &r.Cached} {
		mode := "uncached"
		if s.Cached {
			mode = "cached"
		}
		row(&b, mode, fmt.Sprintf("%.0f", s.QPS), fmtDur(s.Mean), fmtDur(s.P50), fmtDur(s.P99), s.Queries, s.Errors)
	}
	s := &r.Cached
	if n := s.FeatureHits + s.FeatureMisses; n > 0 {
		fmt.Fprintf(&b, "\nfeature cache: %s hit rate (%d hits / %d lookups)\n",
			scalePct(s.FeatureHits, n), s.FeatureHits, n)
	}
	if n := s.ResultHits + s.ResultMisses; n > 0 {
		fmt.Fprintf(&b, "result cache:  %s hit rate (%d hits / %d lookups)\n",
			scalePct(s.ResultHits, n), s.ResultHits, n)
	}
	fmt.Fprintf(&b, "closed-loop speedup: %.2fx\n", r.Speedup())
	return b.String()
}
