package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/msg"
	"jdvs/internal/workload"
)

// Table1Config scales the Table 1 reproduction. The paper's day saw 977M
// image updates (315M attribute updates, 521M additions of which 513M
// reused features, 141M deletions); we stream Events updates with those
// proportions through the live real-time indexing path and count what the
// system actually did.
type Table1Config struct {
	// Events is the number of per-image update events (default 97,700 —
	// 1:10,000 of the paper's day).
	Events int
	// Partitions and Products size the cluster (defaults 4 / 2,000).
	Partitions int
	Products   int
	// Seed drives catalog and mix generation.
	Seed int64
}

func (c *Table1Config) fill() {
	if c.Events <= 0 {
		c.Events = 97_700
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Products <= 0 {
		c.Products = 2_000
	}
}

// Table1Result is the measured update mix.
type Table1Result struct {
	Config Table1Config
	// Counts by kind, as applied by the searchers (not merely generated).
	Total       int64
	AttrUpdates int64
	Additions   int64
	Deletions   int64
	// ReusedAdditions is additions that reused existing features/records;
	// FreshExtractions is CNN invocations during the run.
	ReusedAdditions  int64
	FreshExtractions int64
	// Wall is the end-to-end run time; ApplyRate the sustained updates/sec.
	Wall      time.Duration
	ApplyRate float64
}

// RunTable1 executes the experiment.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	cfg.fill()
	res := &Table1Result{Config: cfg}

	var mu sync.Mutex
	var applied, attrs, adds, dels, reusedAdds int64
	done := make(chan struct{})
	target := int64(cfg.Events)

	c, err := cluster.Start(cluster.Config{
		Partitions: cfg.Partitions,
		NLists:     32,
		Catalog: catalog.Config{
			Products:   cfg.Products,
			Categories: 12,
			Seed:       cfg.Seed,
		},
		OnApplied: func(u *msg.ProductUpdate, kind string, reused bool, lat time.Duration) {
			mu.Lock()
			applied++
			switch kind {
			case "update":
				attrs++
			case "addition":
				adds++
				if reused {
					reusedAdds++
				}
			case "deletion":
				dels++
			}
			if applied == target {
				close(done)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	defer c.Close()

	extractionsBefore := c.Extractor.Calls()
	gen := workload.NewMix(workload.MixConfig{Seed: cfg.Seed + 1}, c.Catalog, c.Images)

	start := time.Now()
	published := int64(0)
	for published < target {
		u, _, _, err := gen.Next()
		if err != nil {
			return nil, fmt.Errorf("table1: generate: %w", err)
		}
		// Stream per-image events until the target count is reached
		// exactly: publish image by image.
		for _, url := range u.ImageURLs {
			if published == target {
				break
			}
			per := *u
			per.ImageURLs = []string{url}
			per.EventTimeNanos = time.Now().UnixNano()
			if err := c.Publish(&per); err != nil {
				return nil, fmt.Errorf("table1: publish: %w", err)
			}
			published++
		}
	}
	drainTimeout := time.NewTimer(10 * time.Minute)
	defer drainTimeout.Stop()
	select {
	case <-done:
	case <-drainTimeout.C:
		return nil, fmt.Errorf("table1: drain timeout (%d/%d applied)", applied, target)
	}
	res.Wall = time.Since(start)

	mu.Lock()
	res.Total = applied
	res.AttrUpdates = attrs
	res.Additions = adds
	res.Deletions = dels
	res.ReusedAdditions = reusedAdds
	mu.Unlock()
	res.FreshExtractions = c.Extractor.Calls() - extractionsBefore
	if res.Wall > 0 {
		res.ApplyRate = float64(res.Total) / res.Wall.Seconds()
	}
	return res, nil
}

// Render prints the result in the paper's Table 1 form, with the paper's
// row alongside for comparison.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Number of Image Updates (scaled 1:%d)\n",
		int64(workload.Table1Total)*1_000_000/max64(r.Total, 1))
	row(&b, "", "Total", "AttrUpdate", "ImageAddition", "ImageDeletion")
	row(&b, "paper (M)", workload.Table1Total, workload.Table1AttrUpdates, workload.Table1Additions, workload.Table1Deletions)
	row(&b, "measured", r.Total, r.AttrUpdates, r.Additions, r.Deletions)
	fmt.Fprintf(&b, "\nadditions reusing stored features: %d / %d (%s; paper: 513/521 = 98.5%%)\n",
		r.ReusedAdditions, r.Additions, scalePct(r.ReusedAdditions, r.Additions))
	fmt.Fprintf(&b, "fresh CNN extractions performed:   %d\n", r.FreshExtractions)
	fmt.Fprintf(&b, "wall time %s, sustained %.0f updates/sec\n", fmtDur(r.Wall), r.ApplyRate)
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
