package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/core"
	"jdvs/internal/search/client"
	"jdvs/internal/workload"
)

// BatchedConfig parameterises the batched-execution workload: the same
// zipf-skewed concurrent query stream run against two otherwise identical
// PQ clusters — one answering every searcher query alone, one collecting
// concurrent queries into windows and executing them through
// index.SearchBatch. Under skewed e-commerce traffic the collector's
// batches carry overlapping probe sets and outright duplicate hot
// queries, which is the work a batched scan amortises: one pass over each
// probed list's code blocks and one scan per distinct query. The searcher
// scan — the subject — is made to dominate the closed loop the way it does
// at production corpus sizes: extraction is pinned cheap (ExtractWork 1),
// the blender feature cache is enabled on BOTH sides (warmed by the
// replay pass, so query-side CNN cost drops out of the comparison — it is
// the cached experiment's subject), and the corpus/probe width are sized
// so list scanning is most of each query's cost.
type BatchedConfig struct {
	// ZipfS is the query skew exponent (default 2.0; must be > 1 to skew).
	// The default models burst-hour hero-image traffic — the hottest query
	// image draws roughly half the stream — which is the regime the
	// collector is for; milder skew shrinks the overlap a window collects
	// and the speedup with it.
	ZipfS float64
	// Threads is the client concurrency (default 16: window size scales
	// with the clients concurrently waiting, and the win scales with the
	// duplicates a window holds, so thin concurrency understates batching
	// the same way thin skew does).
	Threads int
	// Duration is the measurement window per side (default 2s).
	Duration time.Duration
	// Cluster sizing (defaults 1 / 1 / 1 / 40,000). One partition keeps
	// the whole corpus under a single searcher — the component whose batch
	// collector is under test — instead of splitting the scan cost across
	// fan-out plumbing.
	Partitions, Brokers, Blenders, Products int
	// QueryPool is the number of distinct query images (default 256).
	QueryPool int
	// NProbe is the probe width each query carries (default 32 of the 64
	// inverted lists, so list scanning is the dominant per-query cost
	// whichever lists the seed's hot queries land in).
	NProbe int
	// PQBits selects the searchers' code bit width (default 4 — the
	// fast-scan path batching was built around; 8 exercises the byte-code
	// batch path).
	PQBits int
	// BatchWindow / BatchMaxQueries shape the batched side's collector
	// (defaults 1ms / three-quarters of Threads — at any instant some
	// clients are in the extraction or merge stages of their previous
	// query, so a window that waits for every client to arrive mostly
	// waits out its timer). The unbatched side runs with the window unset.
	BatchWindow     time.Duration
	BatchMaxQueries int
	// Seed drives generation.
	Seed int64
}

func (c *BatchedConfig) fill() {
	if c.ZipfS <= 1 {
		c.ZipfS = 2.0
	}
	if c.Threads <= 0 {
		c.Threads = 16
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.Brokers <= 0 {
		c.Brokers = 1
	}
	if c.Blenders <= 0 {
		c.Blenders = 1
	}
	if c.Products <= 0 {
		c.Products = 40_000
	}
	if c.QueryPool <= 0 {
		c.QueryPool = 256
	}
	if c.NProbe <= 0 {
		c.NProbe = 32
	}
	if c.PQBits <= 0 {
		c.PQBits = 4
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = time.Millisecond
	}
	if c.BatchMaxQueries <= 0 {
		c.BatchMaxQueries = c.Threads * 3 / 4
		if c.BatchMaxQueries < 2 {
			c.BatchMaxQueries = 2
		}
	}
}

// BatchedSide is one side's measurement.
type BatchedSide struct {
	Batched bool
	QPS     float64
	Mean    time.Duration
	P50     time.Duration
	P99     time.Duration
	Queries int64
	Errors  int64
}

// BatchedResult carries both sides plus the result-equality audit: every
// pool query replayed once on each side and compared hit for hit.
type BatchedResult struct {
	Config     BatchedConfig
	Unbatched  BatchedSide
	Batched    BatchedSide
	Replayed   int
	Mismatches int
}

// Speedup is the closed-loop QPS ratio batched / unbatched.
func (r *BatchedResult) Speedup() float64 {
	if r.Unbatched.QPS <= 0 {
		return 0
	}
	return r.Batched.QPS / r.Unbatched.QPS
}

// RunBatched executes the experiment.
func RunBatched(cfg BatchedConfig) (*BatchedResult, error) {
	cfg.fill()
	res := &BatchedResult{Config: cfg}
	// Per-query responses from each side's replay pass, compared after
	// both sides run: the two clusters are built from the same seed, so a
	// correct batched path answers every query identically.
	var pages [2][]*core.SearchResponse
	for _, batched := range []bool{false, true} {
		side, replayed, err := runBatchedSide(cfg, batched)
		if err != nil {
			return nil, err
		}
		if batched {
			res.Batched = *side
			pages[1] = replayed
		} else {
			res.Unbatched = *side
			pages[0] = replayed
		}
	}
	res.Replayed = len(pages[0])
	for i := range pages[0] {
		if !samePage(pages[0][i], pages[1][i]) {
			res.Mismatches++
		}
	}
	return res, nil
}

func runBatchedSide(cfg BatchedConfig, batched bool) (*BatchedSide, []*core.SearchResponse, error) {
	ccfg := cluster.Config{
		Partitions:   cfg.Partitions,
		Brokers:      cfg.Brokers,
		Blenders:     cfg.Blenders,
		NLists:       64,
		PQSubvectors: 16,
		PQBits:       cfg.PQBits,
		ExtractWork:  1,
		// Both sides get the feature cache, sized to the whole pool and
		// warmed by the replay pass: the comparison isolates the searcher
		// collector, not the query-side CNN.
		FeatureCacheSize: cfg.QueryPool,
		Catalog: catalog.Config{
			Products:   cfg.Products,
			Categories: 8,
			Seed:       cfg.Seed,
		},
	}
	if batched {
		ccfg.BatchWindow = cfg.BatchWindow
		ccfg.BatchMaxQueries = cfg.BatchMaxQueries
	}
	c, err := cluster.Start(ccfg)
	if err != nil {
		return nil, nil, fmt.Errorf("batched (batched=%v): %w", batched, err)
	}
	defer c.Close()

	blobs := workload.MakeQueryBlobs(c.Catalog, cfg.QueryPool, cfg.Seed)

	// Replay every pool query once, sequentially, for the equality audit.
	// On the batched side each of these runs as a lone single-query batch.
	// The pass doubles as the feature-cache warmup on both sides.
	replayed, err := replayPool(c.FrontendAddr(), blobs, cfg.NProbe)
	if err != nil {
		return nil, nil, fmt.Errorf("batched replay (batched=%v): %w", batched, err)
	}

	lr, err := workload.RunQueryLoad(workload.QueryLoadConfig{
		Addr:        c.FrontendAddr(),
		Concurrency: cfg.Threads,
		Duration:    cfg.Duration,
		TopK:        10,
		NProbe:      cfg.NProbe,
		Blobs:       blobs,
		ZipfS:       cfg.ZipfS,
		Seed:        cfg.Seed,
	}, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("batched load (batched=%v): %w", batched, err)
	}
	return &BatchedSide{
		Batched: batched,
		QPS:     lr.QPS,
		Mean:    lr.Latency.Mean(),
		P50:     lr.Latency.Percentile(50),
		P99:     lr.Latency.Percentile(99),
		Queries: lr.Queries,
		Errors:  lr.Errors,
	}, replayed, nil
}

func replayPool(addr string, blobs [][]byte, nprobe int) ([]*core.SearchResponse, error) {
	cl, err := client.Dial(addr, 1)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	out := make([]*core.SearchResponse, len(blobs))
	for i, blob := range blobs {
		resp, err := cl.Query(ctx, &core.QueryRequest{
			ImageBlob:     blob,
			TopK:          10,
			NProbe:        nprobe,
			CategoryScope: core.AllCategories,
		})
		if err != nil {
			return nil, fmt.Errorf("pool query %d: %w", i, err)
		}
		out[i] = resp
	}
	return out, nil
}

// samePage reports whether two result pages agree hit for hit on identity,
// distance and ranking score.
func samePage(a, b *core.SearchResponse) bool {
	if len(a.Hits) != len(b.Hits) {
		return false
	}
	for i := range a.Hits {
		ha, hb := &a.Hits[i], &b.Hits[i]
		if ha.ProductID != hb.ProductID || ha.URL != hb.URL ||
			ha.Dist != hb.Dist || ha.Score != hb.Score {
			return false
		}
	}
	return true
}

// Render prints the comparison table.
func (r *BatchedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Batched query execution under zipf-skewed concurrency (s=%.2f, pool %d, %d clients, %d-bit PQ, window %s, max %d)\n\n",
		r.Config.ZipfS, r.Config.QueryPool, r.Config.Threads, r.Config.PQBits,
		r.Config.BatchWindow, r.Config.BatchMaxQueries)
	row(&b, "mode", "QPS", "mean", "p50", "p99", "queries", "errors")
	for _, s := range []*BatchedSide{&r.Unbatched, &r.Batched} {
		mode := "unbatched"
		if s.Batched {
			mode = "batched"
		}
		row(&b, mode, fmt.Sprintf("%.0f", s.QPS), fmtDur(s.Mean), fmtDur(s.P50), fmtDur(s.P99), s.Queries, s.Errors)
	}
	fmt.Fprintf(&b, "\nper-query results: %d replayed, %d mismatched\n", r.Replayed, r.Mismatches)
	fmt.Fprintf(&b, "closed-loop speedup: %.2fx\n", r.Speedup())
	return b.String()
}
