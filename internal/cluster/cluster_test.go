package cluster

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/core"
	"jdvs/internal/msg"
)

func startTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func smallConfig() Config {
	return Config{
		Partitions: 3,
		Brokers:    2,
		Blenders:   2,
		NLists:     16,
		Catalog:    catalog.Config{Products: 150, Categories: 6, Seed: 37},
	}
}

func TestTopologyShape(t *testing.T) {
	c := startTestCluster(t, smallConfig())
	if c.Partitions() != 3 || c.Replicas() != 1 {
		t.Fatalf("topology %d/%d", c.Partitions(), c.Replicas())
	}
	if c.FrontendAddr() == "" {
		t.Fatal("no frontend address")
	}
	// Every partition's searcher holds some images, and together they hold
	// every valid catalog image exactly once.
	total := 0
	for p := 0; p < c.Partitions(); p++ {
		st := c.Searcher(p, 0).Shard().Stats()
		if st.Images == 0 {
			t.Fatalf("partition %d is empty — hash placement broken", p)
		}
		total += st.Images
	}
	wantImages := 0
	for i := range c.Catalog.Products {
		wantImages += len(c.Catalog.Products[i].ImageURLs)
	}
	if total != wantImages {
		t.Fatalf("shards hold %d images, catalog has %d", total, wantImages)
	}
}

func TestQueryThroughFullStack(t *testing.T) {
	c := startTestCluster(t, smallConfig())
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	hits := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		target := &c.Catalog.Products[i*7%len(c.Catalog.Products)]
		resp, err := cl.Query(ctx, &core.QueryRequest{
			ImageBlob:     c.Catalog.QueryImage(target).Encode(),
			TopK:          10,
			CategoryScope: core.AllCategories,
		})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		for _, h := range resp.Hits {
			if h.ProductID == target.ID {
				hits++
				break
			}
		}
	}
	// Recall across the full stack: query photos are noisy, so demand a
	// strong majority rather than perfection.
	if hits < trials*8/10 {
		t.Fatalf("recall %d/%d through full stack", hits, trials)
	}
}

func TestReplicasServeAfterPrimaryDeath(t *testing.T) {
	cfg := smallConfig()
	cfg.Replicas = 2
	c := startTestCluster(t, cfg)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Kill the primary replica of every partition.
	for p := 0; p < c.Partitions(); p++ {
		c.Searcher(p, 0).Close()
	}
	target := &c.Catalog.Products[0]
	resp, err := cl.Query(ctx, &core.QueryRequest{
		ImageBlob:     c.Catalog.QueryImage(target).Encode(),
		TopK:          5,
		CategoryScope: core.AllCategories,
	})
	if err != nil {
		t.Fatalf("query with all primaries dead: %v", err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("no hits from replicas")
	}
}

func TestRealTimeUpdateVisibleThroughStack(t *testing.T) {
	c := startTestCluster(t, smallConfig())
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	target := &c.Catalog.Products[9]
	// Attribute update: new sales figure must appear in results.
	if err := c.Publish(c.UpdateAttrsEvent(target, 123456, 88, 777)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}
	resp, err := cl.Query(ctx, &core.QueryRequest{
		ImageBlob:     c.Catalog.QueryImage(target).Encode(),
		TopK:          10,
		CategoryScope: core.AllCategories,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range resp.Hits {
		if h.ProductID == target.ID {
			found = true
			if h.Sales != 123456 || h.Praise != 88 || h.PriceCents != 777 {
				t.Fatalf("stale attributes in results: %+v", h)
			}
		}
	}
	if !found {
		t.Fatal("target product not in results")
	}
}

func TestOnAppliedObserver(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	cfg := smallConfig()
	cfg.OnApplied = func(u *msg.ProductUpdate, kind string, reused bool, lat time.Duration) {
		mu.Lock()
		counts[kind]++
		mu.Unlock()
	}
	c := startTestCluster(t, cfg)

	target := &c.Catalog.Products[1]
	if err := c.Publish(c.RemoveProductEvent(target)); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(c.AddProductEvent(target)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}
	mu.Lock()
	defer mu.Unlock()
	n := len(target.ImageURLs)
	if counts["deletion"] != n || counts["addition"] != n {
		t.Fatalf("observer counts = %v, want %d each", counts, n)
	}
}

func TestDisableRealTime(t *testing.T) {
	cfg := smallConfig()
	cfg.DisableRealTime = true
	c := startTestCluster(t, cfg)
	target := &c.Catalog.Products[0]
	if err := c.Publish(c.RemoveProductEvent(target)); err != nil {
		t.Fatal(err)
	}
	// Without real-time indexing nothing drains.
	if c.WaitForDrain(300 * time.Millisecond) {
		t.Fatal("drain succeeded with real-time indexing disabled")
	}
	// And the searcher still serves the stale (pre-removal) state.
	part := c.Searcher(0, 0)
	if part.Applied() != 0 {
		t.Fatalf("searcher applied %d updates with RT disabled", part.Applied())
	}
}

func TestFeatureReuseAcrossRemoveReAdd(t *testing.T) {
	c := startTestCluster(t, smallConfig())
	extractionsAfterBootstrap := c.Extractor.Calls()

	// Remove and re-add: zero new extractions (features cached in both the
	// shard and the feature DB).
	target := &c.Catalog.Products[5]
	if err := c.Publish(c.RemoveProductEvent(target)); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(c.AddProductEvent(target)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}
	if got := c.Extractor.Calls(); got != extractionsAfterBootstrap {
		t.Fatalf("re-add extracted features: %d calls, was %d", got, extractionsAfterBootstrap)
	}
}

func TestBrokerPartitionAssignmentCoversAll(t *testing.T) {
	cfg := smallConfig()
	cfg.Partitions = 5
	cfg.Brokers = 2
	c := startTestCluster(t, cfg)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Query products until we have seen hits from every partition: proves
	// the broker subsets jointly cover all partitions.
	seen := map[core.PartitionID]bool{}
	for i := 0; i < len(c.Catalog.Products) && len(seen) < 5; i += 3 {
		target := &c.Catalog.Products[i]
		resp, err := cl.Query(ctx, &core.QueryRequest{
			ImageBlob:     c.Catalog.QueryImage(target).Encode(),
			TopK:          10,
			CategoryScope: core.AllCategories,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range resp.Hits {
			seen[h.Image.Partition] = true
		}
	}
	if len(seen) != 5 {
		t.Fatalf("hits from %d partitions, want 5 (broker assignment gap)", len(seen))
	}
}

// TestHedgingThroughFullStack runs a replicated cluster whose injected
// slow replica (SlowReplicaDelay on the last replica of each partition)
// delays every one of its searches, and checks that the brokers' hedged
// requests keep full-stack query latency at the fast replica's level once
// the latency windows are warm — the end-to-end version of the broker
// package's hedge tests.
func TestHedgingThroughFullStack(t *testing.T) {
	cfg := Config{
		Partitions: 2,
		Replicas:   2,
		Brokers:    1,
		Blenders:   1,
		NLists:     16,
		Catalog:    catalog.Config{Products: 80, Categories: 4, Seed: 11},
		// The slow replica answers every search 150ms late; with a 50/50
		// fast/slow sample mix, trigger at p40 — safely inside the fast
		// mass even if a window snapshot happens to hold a few more slow
		// samples than fast ones (the production default p95 targets rare
		// tails, not a half-slow fixture).
		SlowReplicaDelay:    150 * time.Millisecond,
		SlowReplicaFraction: 1,
		HedgeQuantile:       40,
		HedgeMinDelay:       2 * time.Millisecond,
		HedgeMaxFraction:    1,
		HedgeWarmup:         8,
	}
	c := startTestCluster(t, cfg)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	query := func(i int) time.Duration {
		target := &c.Catalog.Products[i%len(c.Catalog.Products)]
		startAt := time.Now()
		resp, err := cl.Query(ctx, &core.QueryRequest{
			ImageBlob:     c.Catalog.QueryImage(target).Encode(),
			TopK:          5,
			CategoryScope: core.AllCategories,
		})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(resp.Hits) == 0 {
			t.Fatalf("query %d returned no hits", i)
		}
		return time.Since(startAt)
	}

	// Warm every partition group past its window refresh interval.
	for i := 0; i < 40; i++ {
		query(i)
	}
	// The 100ms threshold sits far above fast-path full-stack latency even
	// under the race detector's slowdown, and well below the 150ms
	// injected mode.
	slowCount := 0
	for i := 0; i < 20; i++ {
		if query(40+i) > 100*time.Millisecond {
			slowCount++
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var hedges, wins int64
	for _, br := range st.Brokers {
		hedges += br.Hedges
		wins += br.HedgeWins
	}
	if hedges == 0 || wins == 0 {
		t.Fatalf("no hedging through the full stack: %s", st)
	}
	// Without hedging, every query whose round-robin primary is the slow
	// replica (half of them, per partition) would take 150ms+. With
	// hedging, the occasional straggler is tolerated but the pattern must
	// be broken.
	if slowCount > 5 {
		t.Fatalf("%d/20 post-warmup queries still ran at slow-replica latency; hedging ineffective\n%s", slowCount, st)
	}
}

// TestQueryThroughFullStackPQ runs the full-stack recall check with the
// searchers on the product-quantized ADC scan path: every shard must carry
// codes in lockstep and end-to-end recall must hold up through the
// over-fetch + exact re-rank.
func TestQueryThroughFullStackPQ(t *testing.T) {
	cfg := smallConfig()
	cfg.PQSubvectors = -1 // dimension-derived M
	c := startTestCluster(t, cfg)
	for p := 0; p < c.Partitions(); p++ {
		shard := c.Searcher(p, 0).Shard()
		if !shard.PQEnabled() {
			t.Fatalf("partition %d serving without PQ", p)
		}
		if st := shard.Stats(); st.PQCodes != st.Images {
			t.Fatalf("partition %d: %d codes for %d images", p, st.PQCodes, st.Images)
		}
	}
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	hits := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		target := &c.Catalog.Products[i*7%len(c.Catalog.Products)]
		resp, err := cl.Query(ctx, &core.QueryRequest{
			ImageBlob:     c.Catalog.QueryImage(target).Encode(),
			TopK:          10,
			CategoryScope: core.AllCategories,
		})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		for _, h := range resp.Hits {
			if h.ProductID == target.ID {
				hits++
				break
			}
		}
	}
	if hits < trials*8/10 {
		t.Fatalf("recall %d/%d through full stack with PQ", hits, trials)
	}
}

// TestQueryThroughFullStackMmapTiering runs the PQ full-stack test with
// every searcher shard's raw feature rows tiered onto mmap spill files:
// full indexing, snapshot distribution and queries must work unchanged,
// with the shards' feature heap spent on codes instead of floats, and a
// Reindex must materialise the receivers' fresh shards on the same store.
func TestQueryThroughFullStackMmapTiering(t *testing.T) {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("mmap feature store needs a mmap platform")
	}
	cfg := smallConfig()
	cfg.PQSubvectors = -1
	cfg.FeatureStore = "mmap"
	cfg.SpillDir = t.TempDir()
	c := startTestCluster(t, cfg)
	for p := 0; p < c.Partitions(); p++ {
		shard := c.Searcher(p, 0).Shard()
		if !shard.PQEnabled() {
			t.Fatalf("partition %d serving without PQ", p)
		}
		st := shard.Stats()
		if ramBytes := int64(st.Images) * int64(shard.Config().Dim) * 4; st.FeatureHeapBytes > ramBytes/2 {
			t.Fatalf("partition %d: feature heap %d bytes with mmap tiering (ram store would hold >= %d)",
				p, st.FeatureHeapBytes, ramBytes)
		}
	}
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	query := func(tag string) {
		t.Helper()
		hits := 0
		const trials = 20
		for i := 0; i < trials; i++ {
			target := &c.Catalog.Products[i*7%len(c.Catalog.Products)]
			resp, err := cl.Query(ctx, &core.QueryRequest{
				ImageBlob:     c.Catalog.QueryImage(target).Encode(),
				TopK:          10,
				CategoryScope: core.AllCategories,
			})
			if err != nil {
				t.Fatalf("%s query %d: %v", tag, i, err)
			}
			for _, h := range resp.Hits {
				if h.ProductID == target.ID {
					hits++
					break
				}
			}
		}
		if hits < trials*8/10 {
			t.Fatalf("%s: recall %d/%d through full stack with mmap tiering", tag, hits, trials)
		}
	}
	query("bootstrap")

	// The streamed snapshot push must land on mmap-backed shards too.
	if err := c.Reindex(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < c.Partitions(); p++ {
		shard := c.Searcher(p, 0).Shard()
		if got := shard.Config().FeatureStore; got != "mmap" {
			t.Fatalf("partition %d: reindexed shard on store %q", p, got)
		}
	}
	query("post-reindex")
}
