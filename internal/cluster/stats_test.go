package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"jdvs/internal/core"
)

func TestStatsAggregation(t *testing.T) {
	c := startTestCluster(t, smallConfig())
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// Drive some traffic so the counters move.
	for i := 0; i < 5; i++ {
		blob := c.Catalog.QueryImage(&c.Catalog.Products[i]).Encode()
		if _, err := cl.Query(ctx, &core.QueryRequest{ImageBlob: blob, TopK: 5, CategoryScope: core.AllCategories}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Publish(c.UpdateAttrsEvent(&c.Catalog.Products[0], 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if len(st.Searchers) != c.Partitions() {
		t.Fatalf("stats cover %d searchers, want %d", len(st.Searchers), c.Partitions())
	}
	if st.Frontend.Queries != 5 {
		t.Fatalf("frontend saw %d queries, want 5", st.Frontend.Queries)
	}
	var blenderQueries, searcherApplied int64
	for _, b := range st.Blenders {
		blenderQueries += b.Queries
	}
	for _, s := range st.Searchers {
		searcherApplied += s.Applied
	}
	if blenderQueries != 5 {
		t.Fatalf("blenders saw %d queries, want 5", blenderQueries)
	}
	if searcherApplied != int64(len(c.Catalog.Products[0].ImageURLs)) {
		t.Fatalf("searchers applied %d updates, want %d", searcherApplied, len(c.Catalog.Products[0].ImageURLs))
	}
	wantImages := 0
	for i := range c.Catalog.Products {
		wantImages += len(c.Catalog.Products[i].ImageURLs)
	}
	if st.TotalImages() != wantImages {
		t.Fatalf("TotalImages = %d, want %d", st.TotalImages(), wantImages)
	}
	if st.TotalValid() != wantImages {
		t.Fatalf("TotalValid = %d, want %d", st.TotalValid(), wantImages)
	}
	out := st.String()
	for _, want := range []string{"frontend:", "blender 0:", "broker 0:", "searcher p0:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestStatsFailsOnDeadNode(t *testing.T) {
	c := startTestCluster(t, smallConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c.Searcher(0, 0).Close()
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("stats succeeded with a dead searcher")
	}
}
