// Package cluster wires the full system of Fig. 1 into a running topology:
// a synthetic catalog feeding the message queue, the full-indexing
// bootstrap, P×R searcher nodes (P partitions × R replicas), brokers over
// partition subsets, blenders over all brokers, and one front-end load
// balancer — all communicating over real TCP sockets.
//
// The default topology mirrors the paper's testbed shape (§3.2: 1 Nginx
// front end, 6 blender/broker servers, 20 searchers) scaled to whatever the
// caller asks for.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"jdvs/internal/cache"
	"jdvs/internal/catalog"
	"jdvs/internal/cnn"
	"jdvs/internal/core"
	"jdvs/internal/featuredb"
	"jdvs/internal/imagestore"
	"jdvs/internal/imaging"
	"jdvs/internal/index"
	"jdvs/internal/indexer"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
	"jdvs/internal/ranking"
	"jdvs/internal/search/blender"
	"jdvs/internal/search/broker"
	"jdvs/internal/search/client"
	"jdvs/internal/search/frontend"
	"jdvs/internal/search/searcher"
)

// Config sizes a cluster. Zero values take the defaults noted.
type Config struct {
	// Partitions is the number of index partitions / searcher groups
	// (default 4).
	Partitions int
	// Replicas is the number of searchers per partition (default 1) —
	// "each partition can have multiple copies for availability" (§2.4).
	Replicas int
	// Brokers is the broker count (default 2); partition p is served by
	// broker p mod Brokers.
	Brokers int
	// Blenders is the blender count (default 2).
	Blenders int

	// Dim is the feature dimensionality (default cnn.DefaultDim).
	Dim int
	// NLists is the IVF cluster count per shard (default 64).
	NLists int
	// ListInitialCap pre-allocates each inverted list in every shard
	// (index.Config.ListInitialCap; 0 takes inverted.DefaultInitialCap).
	// Size it to expected images per list to avoid migration churn while
	// bulk-loading.
	ListInitialCap int
	// DefaultNProbe is the per-searcher probe width (default 8).
	DefaultNProbe int
	// SearchWorkers is the intra-query scan parallelism inside each
	// searcher shard (index.Config.SearchWorkers): probed inverted lists
	// are striped across this many goroutines per query. 0 derives the
	// width from GOMAXPROCS; 1 scans serially.
	SearchWorkers int
	// PQSubvectors switches the searchers' shard scan to product-quantized
	// ADC codes with exact re-rank (index.Config.PQSubvectors): the number
	// of code bytes per image, which must divide Dim. 0 keeps the exact
	// float scan; negative derives a dimension-based default. RerankK is
	// the ADC over-fetch depth re-ranked exactly per query (0 derives
	// 10×TopK).
	PQSubvectors int
	RerankK      int
	// PQBits selects the searchers' PQ code bit width
	// (index.Config.PQBits): 8 (default) keeps byte codes, 4 packs two
	// 16-centroid subquantizers per byte and scans them through the
	// blocked fast-scan kernel — half the code memory per image at a
	// deeper default re-rank. Only meaningful with PQSubvectors set.
	PQBits int
	// BatchWindow / BatchMaxQueries enable batched query execution on
	// every searcher (searcher.Config fields of the same names):
	// concurrent searches arriving within the window run as one
	// SearchBatch pass over the shard. Zero window disables batching.
	BatchWindow     time.Duration
	BatchMaxQueries int
	// FilterMaxNProbe / FilterMaxRerankK cap the adaptive widening the
	// searchers apply to filtered queries (category scope or price/sales
	// predicates): a selective filter raises nprobe — and the ADC re-rank
	// depth by the same factor — so the page still fills
	// (index.Config.FilterMaxNProbe / FilterMaxRerankK; 0 derives 8× the
	// base width resp. 4× the unfiltered depth).
	FilterMaxNProbe  int
	FilterMaxRerankK int
	// FeatureStore selects where each searcher shard keeps its raw
	// feature rows (index.Config.FeatureStore): "ram" (default) holds
	// dim×4 bytes per image on the heap; "mmap" tiers the rows onto an
	// unlinked spill file read through the page cache, so a shard's RAM
	// budget is spent on the M-byte ADC codes instead of floats —
	// several× more images per searcher at the same RAM. SpillDir is
	// where the spill files go (default the OS temp dir).
	FeatureStore string
	SpillDir     string
	// SnapshotChunkSize bounds each chunk when Reindex streams the fresh
	// shards to the searcher fleet over RPC (default rpc.DefaultChunkSize;
	// see searcher.PushOptions). Tests use small values to force
	// multi-chunk transfers.
	SnapshotChunkSize int
	// PushTimeout bounds the whole snapshot distribution fan-out of one
	// Reindex (default 5m). Size it to shard bytes / link throughput: the
	// chunked sender pays one round trip per chunk.
	PushTimeout time.Duration

	// HedgeQuantile, HedgeMinDelay and HedgeMaxFraction tune the brokers'
	// hedged replica requests (broker.Config): once a partition group's
	// observed HedgeQuantile latency elapses without an answer, the query
	// is hedged to the next replica, budgeted to HedgeMaxFraction of query
	// volume. Zero values take the broker defaults (p95 / 1ms / 0.1);
	// HedgeQuantile < 0 disables hedging. HedgeWarmup (attempts before a
	// group starts hedging; broker default 50) is exposed mainly so tests
	// and demos converge quickly.
	HedgeQuantile    float64
	HedgeMinDelay    time.Duration
	HedgeMaxFraction float64
	HedgeWarmup      int

	// FeatureCacheSize enables the blenders' content-hash feature cache
	// (blender.Config.FeatureCacheSize): a repeated query image skips
	// decode, detection, and the CNN pass. The same size also fronts the
	// indexing resolver with a content-hash cache, so a duplicate image
	// under a new URL reuses the extracted feature. 0 disables.
	FeatureCacheSize int
	// ResultCacheSize / ResultCacheMaxLag / ResultCachePoll tune the
	// brokers' watermark-invalidated result cache (broker.Config fields of
	// the same names): up to ResultCacheSize encoded pages per broker,
	// served only while no covered shard's applied offset has advanced
	// more than ResultCacheMaxLag past the page's snapshot, with
	// watermarks re-read every ResultCachePoll. 0 disables the cache.
	ResultCacheSize   int
	ResultCacheMaxLag int64
	ResultCachePoll   time.Duration

	// SlowReplicaDelay and SlowReplicaFraction inject artificial latency
	// into the LAST replica of every partition (searcher.Config
	// SearchDelay/SearchDelayFraction): roughly SlowReplicaFraction of
	// that replica's searches sleep SlowReplicaDelay. A fault injector for
	// demonstrating hedging end-to-end (jdvs-bench -slow-replica-ms); zero
	// disables. With Replicas == 1 the only replica is the slow one.
	SlowReplicaDelay    time.Duration
	SlowReplicaFraction float64

	// FeatureSeed seeds the shared CNN so all tiers embed identically.
	FeatureSeed int64
	// ExtractWork is the simulated CNN cost factor (extra forward passes
	// per extraction; default 0).
	ExtractWork int

	// Catalog configures the synthetic corpus indexed at bootstrap.
	Catalog catalog.Config

	// RealTime enables the searchers' real-time indexing loops
	// (default true; set DisableRealTime to turn off — the "W/O Real Time
	// Index" baseline of Fig. 12).
	DisableRealTime bool

	// OnApplied observes applied real-time updates on the primary replica
	// of every partition (harnesses build Table 1 / Fig. 11 from it).
	OnApplied searcher.AppliedFunc
}

func (c *Config) fill() {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Brokers <= 0 {
		c.Brokers = 2
	}
	if c.Brokers > c.Partitions {
		c.Brokers = c.Partitions
	}
	if c.Blenders <= 0 {
		c.Blenders = 2
	}
	if c.Dim <= 0 {
		c.Dim = cnn.DefaultDim
	}
	if c.NLists <= 0 {
		c.NLists = 64
	}
	if c.DefaultNProbe <= 0 {
		c.DefaultNProbe = 8
	}
}

// Cluster is a running system.
type Cluster struct {
	cfg Config

	Queue     *mq.Queue
	Images    *imagestore.Store
	Features  *featuredb.DB
	Extractor *cnn.Extractor
	Catalog   *catalog.Catalog

	resolver  *indexer.Resolver
	searchers [][]*searcher.Searcher // [partition][replica]
	brokers   []*broker.Broker
	blenders  []*blender.Blender
	front     *frontend.Frontend

	seq atomic.Uint64
}

// Start builds the corpus, runs the initial full indexing, and brings the
// whole topology up. Callers must Close the cluster.
func Start(cfg Config) (*Cluster, error) {
	cfg.fill()
	c := &Cluster{
		cfg:      cfg,
		Queue:    mq.New(),
		Images:   imagestore.New(),
		Features: featuredb.New(),
		Extractor: cnn.New(cnn.Config{
			Dim:        cfg.Dim,
			Seed:       cfg.FeatureSeed,
			WorkFactor: cfg.ExtractWork,
		}),
	}
	c.resolver = &indexer.Resolver{
		DB:        c.Features,
		Images:    c.Images,
		Extractor: c.Extractor,
		Features:  cache.New[[]float32](cfg.FeatureCacheSize),
	}

	if err := c.Queue.CreateTopic(indexer.UpdatesTopic, cfg.Partitions); err != nil {
		return nil, err
	}

	// Corpus: generate the catalog and enqueue the initial listing events —
	// the "day's message log" the first full indexing replays.
	cat, err := catalog.Generate(cfg.Catalog, c.Images)
	if err != nil {
		return nil, fmt.Errorf("cluster: generate catalog: %w", err)
	}
	c.Catalog = cat
	for i := range cat.Products {
		if _, err := indexer.RouteUpdate(c.Queue, c.AddProductEvent(&cat.Products[i])); err != nil {
			return nil, fmt.Errorf("cluster: bootstrap feed: %w", err)
		}
	}

	// Full indexing (Figs. 2–3).
	full, err := indexer.NewFull(indexer.FullConfig{
		Partitions: cfg.Partitions,
		Shard: index.Config{
			Dim:              cfg.Dim,
			NLists:           cfg.NLists,
			ListInitialCap:   cfg.ListInitialCap,
			DefaultNProbe:    cfg.DefaultNProbe,
			SearchWorkers:    cfg.SearchWorkers,
			PQSubvectors:     cfg.PQSubvectors,
			PQBits:           cfg.PQBits,
			RerankK:          cfg.RerankK,
			FilterMaxNProbe:  cfg.FilterMaxNProbe,
			FilterMaxRerankK: cfg.FilterMaxRerankK,
			FeatureStore:     cfg.FeatureStore,
			SpillDir:         cfg.SpillDir,
		},
		Seed: cfg.FeatureSeed,
	}, c.resolver)
	if err != nil {
		return nil, err
	}
	shards, _, err := full.Build(c.Queue)
	if err != nil {
		return nil, fmt.Errorf("cluster: full indexing: %w", err)
	}

	if err := c.startTiers(shards); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// startTiers launches searchers, brokers, blenders and the frontend over
// the freshly built shards.
func (c *Cluster) startTiers(shards []*index.Shard) error {
	cfg := c.cfg

	// Searchers: replica 0 serves the built shard; further replicas load a
	// snapshot copy so they maintain independent index state.
	c.searchers = make([][]*searcher.Searcher, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		startOffset, err := c.Queue.Len(indexer.UpdatesTopic, p)
		if err != nil {
			return err
		}
		for r := 0; r < cfg.Replicas; r++ {
			shard := shards[p]
			if r > 0 {
				shard, err = cloneShard(shards[p])
				if err != nil {
					return fmt.Errorf("cluster: clone partition %d: %w", p, err)
				}
			}
			var queue *mq.Queue
			if !cfg.DisableRealTime {
				queue = c.Queue
			}
			var onApplied searcher.AppliedFunc
			if r == 0 {
				onApplied = cfg.OnApplied
			}
			scfg := searcher.Config{
				Partition:       core.PartitionID(p),
				Shard:           shard,
				Resolver:        c.resolver,
				Queue:           queue,
				StartOffset:     startOffset,
				OnApplied:       onApplied,
				BatchWindow:     cfg.BatchWindow,
				BatchMaxQueries: cfg.BatchMaxQueries,
			}
			if r == cfg.Replicas-1 {
				// Fault injection targets the last replica of each
				// partition (the only one when Replicas == 1).
				scfg.SearchDelay = cfg.SlowReplicaDelay
				scfg.SearchDelayFraction = cfg.SlowReplicaFraction
			}
			s, err := searcher.New(scfg)
			if err != nil {
				return fmt.Errorf("cluster: start searcher p%d r%d: %w", p, r, err)
			}
			c.searchers[p] = append(c.searchers[p], s)
		}
	}

	// Brokers: broker j serves partitions p where p mod Brokers == j.
	for j := 0; j < cfg.Brokers; j++ {
		var groups [][]string
		for p := j; p < cfg.Partitions; p += cfg.Brokers {
			var replicas []string
			for _, s := range c.searchers[p] {
				replicas = append(replicas, s.Addr())
			}
			groups = append(groups, replicas)
		}
		b, err := broker.New(broker.Config{
			PartitionReplicas: groups,
			HedgeQuantile:     cfg.HedgeQuantile,
			HedgeMinDelay:     cfg.HedgeMinDelay,
			HedgeMaxFraction:  cfg.HedgeMaxFraction,
			HedgeWarmup:       cfg.HedgeWarmup,
			ResultCacheSize:   cfg.ResultCacheSize,
			ResultCacheMaxLag: cfg.ResultCacheMaxLag,
			ResultCachePoll:   cfg.ResultCachePoll,
		})
		if err != nil {
			return fmt.Errorf("cluster: start broker %d: %w", j, err)
		}
		c.brokers = append(c.brokers, b)
	}

	brokerAddrs := make([]string, len(c.brokers))
	for i, b := range c.brokers {
		brokerAddrs[i] = b.Addr()
	}

	classifier, err := c.buildClassifier()
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Blenders; i++ {
		bl, err := blender.New(blender.Config{
			Brokers:          brokerAddrs,
			Extractor:        c.Extractor,
			Classifier:       classifier,
			Ranker:           ranking.New(ranking.DefaultWeights()),
			FeatureCacheSize: cfg.FeatureCacheSize,
		})
		if err != nil {
			return fmt.Errorf("cluster: start blender %d: %w", i, err)
		}
		c.blenders = append(c.blenders, bl)
	}

	blenderAddrs := make([]string, len(c.blenders))
	for i, b := range c.blenders {
		blenderAddrs[i] = b.Addr()
	}
	front, err := frontend.New(frontend.Config{Blenders: blenderAddrs})
	if err != nil {
		return fmt.Errorf("cluster: start frontend: %w", err)
	}
	c.front = front
	return nil
}

// buildClassifier derives category prototypes by extracting features from a
// clean (noise-free) render of each category's prototype latent.
func (c *Cluster) buildClassifier() (*cnn.Classifier, error) {
	if len(c.Catalog.Categories) == 0 {
		return nil, errors.New("cluster: catalog has no categories")
	}
	dim := c.Extractor.Dim()
	protos := make([]float32, 0, len(c.Catalog.Categories)*dim)
	rng := rand.New(rand.NewSource(c.cfg.FeatureSeed + 1))
	for _, cat := range c.Catalog.Categories {
		img := imaging.Generate(rng, cat.Prototype, cat.ID, imaging.GenConfig{Noise: 1e-4, PayloadBytes: 64})
		f, err := c.Extractor.Extract(img)
		if err != nil {
			return nil, fmt.Errorf("cluster: prototype extract: %w", err)
		}
		protos = append(protos, f...)
	}
	return cnn.NewClassifier(dim, protos)
}

// cloneShard deep-copies a shard via its snapshot codec.
func cloneShard(s *index.Shard) (*index.Shard, error) {
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		return nil, err
	}
	dup, err := index.New(s.Config())
	if err != nil {
		return nil, err
	}
	if err := dup.LoadSnapshot(&buf); err != nil {
		return nil, err
	}
	return dup, nil
}

// FrontendAddr returns the cluster's single client-facing endpoint.
func (c *Cluster) FrontendAddr() string { return c.front.Addr() }

// Client dials the frontend.
func (c *Cluster) Client() (*client.Client, error) {
	return client.Dial(c.front.Addr(), 4)
}

// Searcher returns the replica r searcher of partition p (for failure
// injection in tests).
func (c *Cluster) Searcher(p, r int) *searcher.Searcher { return c.searchers[p][r] }

// Partitions returns the partition count.
func (c *Cluster) Partitions() int { return c.cfg.Partitions }

// Replicas returns the per-partition replica count.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// nextSeq mints a monotone event sequence number.
func (c *Cluster) nextSeq() uint64 { return c.seq.Add(1) }

// AddProductEvent builds the listing event for p (all images).
func (c *Cluster) AddProductEvent(p *catalog.Product) *msg.ProductUpdate {
	return &msg.ProductUpdate{
		Type:           msg.TypeAddProduct,
		ProductID:      p.ID,
		Category:       p.Category,
		Sales:          p.Sales,
		Praise:         p.Praise,
		PriceCents:     p.PriceCents,
		ImageURLs:      append([]string(nil), p.ImageURLs...),
		EventTimeNanos: time.Now().UnixNano(),
		Seq:            c.nextSeq(),
	}
}

// RemoveProductEvent builds the delisting event for p.
func (c *Cluster) RemoveProductEvent(p *catalog.Product) *msg.ProductUpdate {
	return &msg.ProductUpdate{
		Type:           msg.TypeRemoveProduct,
		ProductID:      p.ID,
		ImageURLs:      append([]string(nil), p.ImageURLs...),
		EventTimeNanos: time.Now().UnixNano(),
		Seq:            c.nextSeq(),
	}
}

// UpdateAttrsEvent builds a numeric attribute update event for p.
func (c *Cluster) UpdateAttrsEvent(p *catalog.Product, sales, praise, price uint32) *msg.ProductUpdate {
	return &msg.ProductUpdate{
		Type:           msg.TypeUpdateAttrs,
		ProductID:      p.ID,
		Category:       p.Category,
		Sales:          sales,
		Praise:         praise,
		PriceCents:     price,
		ImageURLs:      append([]string(nil), p.ImageURLs...),
		EventTimeNanos: time.Now().UnixNano(),
		Seq:            c.nextSeq(),
	}
}

// Publish routes an update event into the queue (per-image, hash placed).
func (c *Cluster) Publish(u *msg.ProductUpdate) error {
	_, err := indexer.RouteUpdate(c.Queue, u)
	return err
}

// WaitForDrain blocks until every primary searcher has consumed its
// partition's backlog or the timeout elapses. It reports whether the
// backlog fully drained — used by tests and the freshness example to bound
// "sub-second update" claims.
func (c *Cluster) WaitForDrain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		var produced int64
		for p := 0; p < c.cfg.Partitions; p++ {
			n, err := c.Queue.Len(indexer.UpdatesTopic, p)
			if err != nil {
				return false
			}
			produced += n
		}
		// Applied counts only post-bootstrap events; the bootstrap feed was
		// consumed by full indexing, not the real-time loop.
		var applied int64
		for p := 0; p < c.cfg.Partitions; p++ {
			applied += c.searchers[p][0].Applied()
		}
		if applied >= produced-c.bootstrapLen() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// bootstrapLen returns the number of per-image messages produced by the
// initial catalog feed (consumed by full indexing, not the RT loop).
func (c *Cluster) bootstrapLen() int64 {
	var n int64
	for i := range c.Catalog.Products {
		n += int64(len(c.Catalog.Products[i].ImageURLs))
	}
	return n
}

// Reindex performs the periodic full indexing cycle of §2.2 against the
// complete update log and distributes the fresh shards to every running
// searcher over the chunked snapshot-streaming RPC path — the same wire
// machinery a multi-host deployment uses — hot-swapping each with zero
// downtime: in-flight searches finish on the old index, new searches see
// the new one. Each replica materialises its own shard from the stream, so
// replicas never share index state. Real-time consumers keep their queue
// positions; events they re-apply on top of the fresh index are idempotent
// (additions reuse, deletions flip bits, attribute updates overwrite).
func (c *Cluster) Reindex() error {
	full, err := indexer.NewFull(indexer.FullConfig{
		Partitions: c.cfg.Partitions,
		Shard: index.Config{
			Dim:              c.cfg.Dim,
			NLists:           c.cfg.NLists,
			ListInitialCap:   c.cfg.ListInitialCap,
			DefaultNProbe:    c.cfg.DefaultNProbe,
			SearchWorkers:    c.cfg.SearchWorkers,
			PQSubvectors:     c.cfg.PQSubvectors,
			PQBits:           c.cfg.PQBits,
			RerankK:          c.cfg.RerankK,
			FilterMaxNProbe:  c.cfg.FilterMaxNProbe,
			FilterMaxRerankK: c.cfg.FilterMaxRerankK,
			FeatureStore:     c.cfg.FeatureStore,
			SpillDir:         c.cfg.SpillDir,
		},
		Seed: c.cfg.FeatureSeed,
	}, c.resolver)
	if err != nil {
		return err
	}
	shards, _, err := full.Build(c.Queue)
	if err != nil {
		return fmt.Errorf("cluster: reindex: %w", err)
	}
	// Push every partition to every replica concurrently. Serialising a
	// shard is read-only, so one built shard can feed all its replicas'
	// streams at once.
	pushTimeout := c.cfg.PushTimeout
	if pushTimeout <= 0 {
		pushTimeout = 5 * time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), pushTimeout)
	defer cancel()
	opts := searcher.PushOptions{ChunkSize: c.cfg.SnapshotChunkSize}
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	for p := 0; p < c.cfg.Partitions; p++ {
		for r, s := range c.searchers[p] {
			wg.Add(1)
			go func(p, r int, s *searcher.Searcher) {
				defer wg.Done()
				if err := searcher.PushSnapshotWith(ctx, s.Addr(), shards[p], opts); err != nil {
					select {
					case errs <- fmt.Errorf("cluster: reindex push p%d r%d: %w", p, r, err):
					default:
					}
				}
			}(p, r, s)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// StartPeriodicReindex launches the periodic full indexing cycle of §2.2
// ("building the full index for all images is performed every week") at
// the given interval. The returned stop function halts the cycle and waits
// for any in-flight rebuild; errors from individual cycles go to onErr
// (nil to ignore).
func (c *Cluster) StartPeriodicReindex(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			if err := c.Reindex(); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// Close tears the topology down in dependency order.
func (c *Cluster) Close() {
	if c.front != nil {
		c.front.Close()
	}
	for _, b := range c.blenders {
		b.Close()
	}
	for _, b := range c.brokers {
		b.Close()
	}
	if c.Queue != nil {
		c.Queue.Close() // unblocks searcher RT loops
	}
	for _, group := range c.searchers {
		for _, s := range group {
			s.Close()
		}
	}
}
