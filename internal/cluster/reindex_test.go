package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/core"
)

func TestReindexFoldsLiveUpdates(t *testing.T) {
	c := startTestCluster(t, smallConfig())
	target := &c.Catalog.Products[4]
	if err := c.Publish(c.RemoveProductEvent(target)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}
	if err := c.Reindex(); err != nil {
		t.Fatalf("Reindex: %v", err)
	}
	// The rebuilt shards must exclude the removed product's images
	// entirely ("only the valid images are used to create the full index").
	for p := 0; p < c.Partitions(); p++ {
		shard := c.Searcher(p, 0).Shard()
		for _, url := range target.ImageURLs {
			if shard.HasURL(url) {
				t.Fatalf("removed image %s present in rebuilt partition %d", url, p)
			}
		}
	}
	// And everything else survives.
	total := 0
	for p := 0; p < c.Partitions(); p++ {
		total += c.Searcher(p, 0).Shard().Stats().Images
	}
	want := 0
	for i := range c.Catalog.Products {
		if c.Catalog.Products[i].ID != target.ID {
			want += len(c.Catalog.Products[i].ImageURLs)
		}
	}
	if total != want {
		t.Fatalf("rebuilt shards hold %d images, want %d", total, want)
	}
}

func TestReindexZeroDowntimeUnderLoad(t *testing.T) {
	c := startTestCluster(t, smallConfig())
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			blob := c.Catalog.QueryImage(&c.Catalog.Products[w]).Encode()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.Query(ctx, &core.QueryRequest{
					ImageBlob: blob, TopK: 5, CategoryScope: core.AllCategories,
				}); err != nil {
					t.Errorf("query failed during reindex: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 3; i++ {
		if err := c.Reindex(); err != nil {
			t.Fatalf("Reindex %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestReindexStreamsMultiChunk forces the snapshot distribution of a full
// reindex through many small chunks, across replicas, end to end: the
// whole fleet must swap to streamed shards and answer queries afterwards.
func TestReindexStreamsMultiChunk(t *testing.T) {
	cfg := smallConfig()
	cfg.Replicas = 2
	cfg.SnapshotChunkSize = 2048
	c := startTestCluster(t, cfg)

	target := &c.Catalog.Products[7]
	if err := c.Publish(c.RemoveProductEvent(target)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}
	if err := c.Reindex(); err != nil {
		t.Fatalf("Reindex: %v", err)
	}

	// Every replica of every partition installed a streamed snapshot and
	// excludes the removed product.
	for p := 0; p < c.Partitions(); p++ {
		for r := 0; r < c.Replicas(); r++ {
			s := c.Searcher(p, r)
			if got := s.SnapshotLoads(); got != 1 {
				t.Fatalf("p%d r%d SnapshotLoads = %d, want 1", p, r, got)
			}
			if got := s.LoadSessions(); got != 0 {
				t.Fatalf("p%d r%d has %d sessions left", p, r, got)
			}
			for _, url := range target.ImageURLs {
				if s.Shard().HasURL(url) {
					t.Fatalf("removed image %s survived the streamed reindex on p%d r%d", url, p, r)
				}
			}
		}
	}

	// Queries still flow through the full topology.
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	alive := &c.Catalog.Products[10]
	resp, err := cl.Query(ctx, &core.QueryRequest{
		ImageBlob: c.Catalog.QueryImage(alive).Encode(), TopK: 5, CategoryScope: core.AllCategories,
	})
	if err != nil {
		t.Fatalf("query after streamed reindex: %v", err)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("no hits after streamed reindex")
	}
}

func TestStartPeriodicReindex(t *testing.T) {
	cfg := Config{
		Partitions: 2,
		NLists:     16,
		Catalog:    catalog.Config{Products: 120, Categories: 4, Seed: 53},
	}
	c := startTestCluster(t, cfg)

	target := &c.Catalog.Products[2]
	if err := c.Publish(c.RemoveProductEvent(target)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}

	var errMu sync.Mutex
	var cycleErr error
	stop := c.StartPeriodicReindex(50*time.Millisecond, func(err error) {
		errMu.Lock()
		cycleErr = err
		errMu.Unlock()
	})
	defer stop()

	// Within a few cycles the removed product must be physically absent
	// from the served shards (not merely invalid).
	deadline := time.Now().Add(5 * time.Second)
	for {
		gone := true
		for p := 0; p < c.Partitions(); p++ {
			shard := c.Searcher(p, 0).Shard()
			for _, url := range target.ImageURLs {
				if shard.HasURL(url) {
					gone = false
				}
			}
		}
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic reindex never rebuilt the shards")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	errMu.Lock()
	defer errMu.Unlock()
	if cycleErr != nil {
		t.Fatalf("reindex cycle error: %v", cycleErr)
	}
}

// TestReindexCarriesCoveredOffsetsAndPQ: the rebuilt shards a Reindex
// distributes must carry the replayed queue offsets (so lagging real-time
// consumers skip the covered span) and, when configured, the product
// quantizer — both surviving the chunked push to every searcher.
func TestReindexCarriesCoveredOffsetsAndPQ(t *testing.T) {
	cfg := smallConfig()
	cfg.PQSubvectors = -1
	cfg.SnapshotChunkSize = 16 << 10 // force multi-chunk pushes
	c := startTestCluster(t, cfg)

	// Generate some post-bootstrap traffic, drain it, then rebuild.
	target := &c.Catalog.Products[2]
	if err := c.Publish(c.UpdateAttrsEvent(target, 7, 8, 9)); err != nil {
		t.Fatal(err)
	}
	if !c.WaitForDrain(5 * time.Second) {
		t.Fatal("drain timeout")
	}
	if err := c.Reindex(); err != nil {
		t.Fatalf("Reindex: %v", err)
	}
	for p := 0; p < c.Partitions(); p++ {
		wantOff, err := c.Queue.Len("product-updates", p)
		if err != nil {
			t.Fatal(err)
		}
		shard := c.Searcher(p, 0).Shard()
		if got := shard.CoveredOffset(); got != wantOff {
			t.Fatalf("partition %d pushed covered offset %d, want %d", p, got, wantOff)
		}
		if !shard.PQEnabled() {
			t.Fatalf("partition %d lost PQ through reindex push", p)
		}
		if st := shard.Stats(); st.PQCodes != st.Images {
			t.Fatalf("partition %d: %d codes for %d images after push", p, st.PQCodes, st.Images)
		}
	}
}
