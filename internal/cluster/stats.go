package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"jdvs/internal/rpc"
	"jdvs/internal/search"
	"jdvs/internal/search/blender"
	"jdvs/internal/search/broker"
	"jdvs/internal/search/frontend"
	"jdvs/internal/search/searcher"
)

// Stats aggregates every tier's counters, fetched over the same RPC
// endpoints production monitoring would scrape.
type Stats struct {
	Searchers []searcher.Stats `json:"searchers"`
	Brokers   []broker.Stats   `json:"brokers"`
	Blenders  []blender.Stats  `json:"blenders"`
	Frontend  frontend.Stats   `json:"frontend"`
}

// TotalImages sums indexed images across primary searchers.
func (s *Stats) TotalImages() int {
	n := 0
	for _, st := range s.Searchers {
		n += st.Index.Images
	}
	return n
}

// TotalValid sums currently searchable images across primary searchers.
func (s *Stats) TotalValid() int {
	n := 0
	for _, st := range s.Searchers {
		n += st.Index.ValidImages
	}
	return n
}

// String renders a compact operational summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frontend: %d queries (%d retries, %d failures) over %d blenders\n",
		s.Frontend.Queries, s.Frontend.Retries, s.Frontend.Failures, s.Frontend.Blenders)
	for i, bl := range s.Blenders {
		fmt.Fprintf(&b, "blender %d: %d queries, %d broker failures\n", i, bl.Queries, bl.Failures)
	}
	for i, br := range s.Brokers {
		fmt.Fprintf(&b, "broker %d: %d queries over %d partitions, %d searcher failures, %d hedges (%d wins, %d cancels)\n",
			i, br.Queries, br.Partitions, br.Failures, br.Hedges, br.HedgeWins, br.HedgeCancels)
		for _, g := range br.Groups {
			fmt.Fprintf(&b, "  group %d: %d replicas, %d samples, p50 %dµs p95 %dµs p99 %dµs\n",
				g.Partition, g.Replicas, g.Samples, g.P50Micros, g.P95Micros, g.P99Micros)
		}
	}
	for _, st := range s.Searchers {
		fmt.Fprintf(&b, "searcher p%d: %d images (%d valid), %d searches, %d rt-updates (avg %dµs, p99 %dµs)\n",
			st.Partition, st.Index.Images, st.Index.ValidImages, st.Searches,
			st.Applied, st.RTAvgMicros, st.RTP99Micros)
	}
	return b.String()
}

// fetchStats calls MethodStats on addr and decodes into out.
func fetchStats(ctx context.Context, addr string, out interface{}) error {
	c, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	raw, err := c.Call(ctx, search.MethodStats, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// Stats scrapes every tier. Nodes that are down contribute an error — the
// caller decides whether partial stats are acceptable.
func (c *Cluster) Stats(ctx context.Context) (*Stats, error) {
	out := &Stats{}
	for p := 0; p < c.cfg.Partitions; p++ {
		var st searcher.Stats
		if err := fetchStats(ctx, c.searchers[p][0].Addr(), &st); err != nil {
			return nil, fmt.Errorf("cluster: stats from searcher p%d: %w", p, err)
		}
		out.Searchers = append(out.Searchers, st)
	}
	for i, b := range c.brokers {
		var st broker.Stats
		if err := fetchStats(ctx, b.Addr(), &st); err != nil {
			return nil, fmt.Errorf("cluster: stats from broker %d: %w", i, err)
		}
		out.Brokers = append(out.Brokers, st)
	}
	for i, b := range c.blenders {
		var st blender.Stats
		if err := fetchStats(ctx, b.Addr(), &st); err != nil {
			return nil, fmt.Errorf("cluster: stats from blender %d: %w", i, err)
		}
		out.Blenders = append(out.Blenders, st)
	}
	if err := fetchStats(ctx, c.front.Addr(), &out.Frontend); err != nil {
		return nil, fmt.Errorf("cluster: stats from frontend: %w", err)
	}
	return out, nil
}
