package mq

import (
	"testing"
	"time"
)

func BenchmarkProduce(b *testing.B) {
	q := New()
	if err := q.CreateTopic("t", 4); err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Produce("t", i&3, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProduceKeyed(b *testing.B) {
	q := New()
	if err := q.CreateTopic("t", 16); err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := q.ProduceKeyed("t", "jfs://img/p123/0.jpg", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProduceConsume measures the end-to-end hop a real-time update
// takes through the queue.
func BenchmarkProduceConsume(b *testing.B) {
	q := New()
	if err := q.CreateTopic("t", 1); err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	c, err := q.NewConsumer("t", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Produce("t", 0, payload); err != nil {
			b.Fatal(err)
		}
		msgs, err := c.Poll(1, time.Second)
		if err != nil || len(msgs) != 1 {
			b.Fatalf("poll: %v %d", err, len(msgs))
		}
	}
}
