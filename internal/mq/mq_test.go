package mq

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestQueue(t *testing.T, topic string, parts int) *Queue {
	t.Helper()
	q := New()
	if err := q.CreateTopic(topic, parts); err != nil {
		t.Fatalf("CreateTopic: %v", err)
	}
	t.Cleanup(q.Close)
	return q
}

func TestCreateTopicValidation(t *testing.T) {
	q := New()
	defer q.Close()
	if err := q.CreateTopic("t", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if err := q.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	if err := q.CreateTopic("t", 3); err != nil {
		t.Fatalf("idempotent recreation failed: %v", err)
	}
	if err := q.CreateTopic("t", 5); err == nil {
		t.Fatal("partition resize accepted")
	}
	if q.Partitions("t") != 3 {
		t.Fatalf("Partitions = %d", q.Partitions("t"))
	}
	if q.Partitions("missing") != 0 {
		t.Fatal("missing topic has partitions")
	}
}

func TestProduceConsumeOrder(t *testing.T) {
	q := newTestQueue(t, "t", 1)
	const n = 100
	for i := 0; i < n; i++ {
		off, err := q.Produce("t", 0, []byte(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatalf("Produce: %v", err)
		}
		if off != int64(i) {
			t.Fatalf("offset %d, want %d", off, i)
		}
	}
	c, err := q.NewConsumer("t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for len(got) < n {
		msgs, err := c.Poll(7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			got = append(got, string(m.Payload))
		}
	}
	if len(got) != n {
		t.Fatalf("consumed %d, want %d", len(got), n)
	}
	for i, s := range got {
		if s != fmt.Sprintf("m%d", i) {
			t.Fatalf("order violated at %d: %q", i, s)
		}
	}
}

func TestPayloadCopiedAtBoundary(t *testing.T) {
	q := newTestQueue(t, "t", 1)
	buf := []byte("original")
	if _, err := q.Produce("t", 0, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "MUTATED!")
	c, _ := q.NewConsumer("t", 0, 0)
	msgs, err := c.Poll(1, 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("poll: %v %v", msgs, err)
	}
	if string(msgs[0].Payload) != "original" {
		t.Fatalf("payload aliased producer buffer: %q", msgs[0].Payload)
	}
}

func TestUnknownTopicAndPartition(t *testing.T) {
	q := newTestQueue(t, "t", 2)
	if _, err := q.Produce("nope", 0, nil); err == nil {
		t.Fatal("produce to unknown topic succeeded")
	}
	if _, err := q.Produce("t", 5, nil); err == nil {
		t.Fatal("produce to unknown partition succeeded")
	}
	if _, err := q.NewConsumer("nope", 0, 0); err == nil {
		t.Fatal("consumer on unknown topic succeeded")
	}
}

func TestProduceKeyedStablePlacement(t *testing.T) {
	q := newTestQueue(t, "t", 8)
	p1, _, err := q.ProduceKeyed("t", "some-url", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := q.ProduceKeyed("t", "some-url", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("same key landed on partitions %d and %d", p1, p2)
	}
	if p1 != int(PartitionFor("some-url", 8)) {
		t.Fatalf("placement disagrees with PartitionFor")
	}
}

func TestPollBlocksUntilProduce(t *testing.T) {
	q := newTestQueue(t, "t", 1)
	c, _ := q.NewConsumer("t", 0, 0)
	start := time.Now()
	go func() {
		time.Sleep(30 * time.Millisecond)
		_, _ = q.Produce("t", 0, []byte("late"))
	}()
	msgs, err := c.Poll(1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload) != "late" {
		t.Fatalf("poll returned %v", msgs)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("poll returned before the message was produced")
	}
}

func TestPollTimeout(t *testing.T) {
	q := newTestQueue(t, "t", 1)
	c, _ := q.NewConsumer("t", 0, 0)
	start := time.Now()
	msgs, err := c.Poll(1, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if msgs != nil {
		t.Fatalf("timeout returned messages: %v", msgs)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("poll returned after %s, want ~50ms", el)
	}
}

func TestCloseDrainsThenErrors(t *testing.T) {
	q := New()
	if err := q.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Produce("t", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if _, err := q.Produce("t", 0, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("produce after close: %v", err)
	}
	c, _ := q.NewConsumer("t", 0, 0)
	msgs, err := c.Poll(10, 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("drain after close: %v %v", msgs, err)
	}
	if _, err := c.Poll(10, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain poll: %v", err)
	}
}

func TestCloseWakesBlockedConsumer(t *testing.T) {
	q := New()
	if err := q.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	c, _ := q.NewConsumer("t", 0, 0)
	done := make(chan error, 1)
	go func() {
		_, err := c.Poll(1, time.Minute)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("woke with %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked consumer not woken by Close")
	}
}

func TestReplayFromOffset(t *testing.T) {
	q := newTestQueue(t, "t", 1)
	for i := 0; i < 10; i++ {
		if _, err := q.Produce("t", 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := q.NewConsumer("t", 0, 7)
	msgs, err := c.Poll(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || msgs[0].Payload[0] != 7 {
		t.Fatalf("replay from 7: %v", msgs)
	}
	// SeekTo rewinds.
	c.SeekTo(0)
	msgs, _ = c.Poll(100, 0)
	if len(msgs) != 10 {
		t.Fatalf("replay from 0 after SeekTo: %d msgs", len(msgs))
	}
	if c.Offset() != 10 {
		t.Fatalf("Offset = %d, want 10", c.Offset())
	}
}

func TestConcurrentProducersOneConsumer(t *testing.T) {
	q := newTestQueue(t, "t", 1)
	const producers, per = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := q.Produce("t", 0, []byte{byte(p)}); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(p)
	}
	consumed := make(chan int, 1)
	go func() {
		c, _ := q.NewConsumer("t", 0, 0)
		n := 0
		for n < producers*per {
			msgs, err := c.Poll(64, time.Second)
			if err != nil || msgs == nil {
				break
			}
			n += len(msgs)
		}
		consumed <- n
	}()
	wg.Wait()
	select {
	case n := <-consumed:
		if n != producers*per {
			t.Fatalf("consumed %d, want %d", n, producers*per)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer stalled")
	}
}
