// Package mq is the message queue substrate of Figs. 2 and 4: a
// topic/partition-structured, strictly ordered, replayable message log.
//
// It plays both roles the paper assigns to messaging infrastructure:
//
//   - the message log — "all product update messages of a day are buffered
//     in a message log" and replayed in order by the periodic full indexing
//     (Fig. 2); consumers can therefore (re)attach at any historical offset;
//   - the live queue — real-time indexing tails each partition and applies
//     every event "instantly" (Fig. 4); Poll blocks until messages arrive.
//
// Messages within a partition are totally ordered and immutable once
// produced. Partitioning mirrors the index partitioning (hash of image URL
// / product key), so each searcher consumes exactly one partition.
package mq

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Message is one enqueued payload with its partition-local offset.
type Message struct {
	Offset   int64
	Payload  []byte
	Enqueued time.Time
}

// ErrClosed is returned by operations on a closed queue.
var ErrClosed = errors.New("mq: queue closed")

// partition is an append-only message log with blocking consumption.
type partition struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []Message
	closed bool
}

func newPartition() *partition {
	p := &partition{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *partition) produce(payload []byte, now time.Time) (int64, error) {
	// Copy at the boundary: the caller may reuse its buffer.
	dup := make([]byte, len(payload))
	copy(dup, payload)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	off := int64(len(p.msgs))
	p.msgs = append(p.msgs, Message{Offset: off, Payload: dup, Enqueued: now})
	p.cond.Broadcast()
	return off, nil
}

// poll returns up to max messages starting at offset, blocking up to wait
// for at least one. A zero wait polls without blocking.
func (p *partition) poll(offset int64, max int, wait time.Duration) ([]Message, error) {
	deadline := time.Now().Add(wait)
	var timer *time.Timer
	if wait > 0 {
		timer = time.AfterFunc(wait, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		defer timer.Stop()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if offset < int64(len(p.msgs)) {
			end := offset + int64(max)
			if end > int64(len(p.msgs)) {
				end = int64(len(p.msgs))
			}
			out := make([]Message, end-offset)
			copy(out, p.msgs[offset:end])
			return out, nil
		}
		if p.closed {
			return nil, ErrClosed
		}
		if wait <= 0 || !time.Now().Before(deadline) {
			return nil, nil
		}
		p.cond.Wait()
	}
}

func (p *partition) length() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.msgs))
}

func (p *partition) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
}

// Queue is a set of named topics, each with a fixed number of partitions.
type Queue struct {
	mu     sync.RWMutex
	topics map[string][]*partition
	closed bool
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{topics: make(map[string][]*partition)}
}

// CreateTopic creates topic with n partitions. Creating an existing topic
// with the same partition count is a no-op; with a different count it is an
// error (resizing would break the URL-hash placement contract).
func (q *Queue) CreateTopic(topic string, n int) error {
	if n <= 0 {
		return fmt.Errorf("mq: topic %q needs at least one partition", topic)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if ps, ok := q.topics[topic]; ok {
		if len(ps) != n {
			return fmt.Errorf("mq: topic %q already has %d partitions, not %d", topic, len(ps), n)
		}
		return nil
	}
	ps := make([]*partition, n)
	for i := range ps {
		ps[i] = newPartition()
	}
	q.topics[topic] = ps
	return nil
}

// Partitions returns the partition count of topic, or 0 if it does not
// exist.
func (q *Queue) Partitions(topic string) int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return len(q.topics[topic])
}

func (q *Queue) partition(topic string, part int) (*partition, error) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	ps, ok := q.topics[topic]
	if !ok {
		return nil, fmt.Errorf("mq: unknown topic %q", topic)
	}
	if part < 0 || part >= len(ps) {
		return nil, fmt.Errorf("mq: partition %d out of range for topic %q (%d partitions)", part, topic, len(ps))
	}
	return ps[part], nil
}

// Produce appends payload to the given partition of topic and returns its
// offset.
func (q *Queue) Produce(topic string, part int, payload []byte) (int64, error) {
	p, err := q.partition(topic, part)
	if err != nil {
		return 0, err
	}
	return p.produce(payload, time.Now())
}

// ProduceKeyed appends payload to the partition selected by hashing key —
// the same FNV placement used for index partitioning, so an image's update
// events always land on the searcher that owns it.
func (q *Queue) ProduceKeyed(topic, key string, payload []byte) (int, int64, error) {
	q.mu.RLock()
	n := len(q.topics[topic])
	q.mu.RUnlock()
	if n == 0 {
		return 0, 0, fmt.Errorf("mq: unknown topic %q", topic)
	}
	part := int(PartitionFor(key, n))
	off, err := q.Produce(topic, part, payload)
	return part, off, err
}

// PartitionFor returns the partition that key hashes to among n partitions.
func PartitionFor(key string, n int) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // hash.Write never fails
	return h.Sum32() % uint32(n)
}

// Len returns the number of messages in the given partition.
func (q *Queue) Len(topic string, part int) (int64, error) {
	p, err := q.partition(topic, part)
	if err != nil {
		return 0, err
	}
	return p.length(), nil
}

// Close shuts the queue down: producers fail and blocked consumers wake
// with ErrClosed once they drain remaining messages.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for _, ps := range q.topics {
		for _, p := range ps {
			p.close()
		}
	}
}

// Consumer reads one partition sequentially from a starting offset. It is
// not safe for concurrent use; each real-time indexer owns one consumer.
type Consumer struct {
	q      *Queue
	topic  string
	part   int
	offset int64
}

// NewConsumer attaches to topic/partition at offset (0 replays from the
// beginning of the log, mirroring full indexing's daily replay).
func (q *Queue) NewConsumer(topic string, part int, offset int64) (*Consumer, error) {
	if _, err := q.partition(topic, part); err != nil {
		return nil, err
	}
	return &Consumer{q: q, topic: topic, part: part, offset: offset}, nil
}

// Poll returns up to max messages, blocking up to wait for at least one.
// It returns (nil, nil) on timeout and ErrClosed once the queue is closed
// and drained.
func (c *Consumer) Poll(max int, wait time.Duration) ([]Message, error) {
	p, err := c.q.partition(c.topic, c.part)
	if err != nil {
		return nil, err
	}
	msgs, err := p.poll(c.offset, max, wait)
	if err != nil {
		return nil, err
	}
	if len(msgs) > 0 {
		c.offset = msgs[len(msgs)-1].Offset + 1
	}
	return msgs, nil
}

// Offset returns the next offset the consumer will read.
func (c *Consumer) Offset() int64 { return c.offset }

// SeekTo repositions the consumer.
func (c *Consumer) SeekTo(offset int64) { c.offset = offset }
