package mq

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Persistence for the message log: §2.2 buffers "all product update
// messages of a day" and replays them during full indexing, so the log
// must survive process boundaries (the offline indexer reads a saved log;
// operations move logs between machines). The format is a sequential dump
// of every topic, partition and message.
//
// Snapshots are taken under each partition's lock in turn, so a snapshot
// of a quiescent queue is exact; with live producers it is a consistent
// prefix per partition.

const (
	persistMagic   = "JDVSMQLG"
	persistVersion = 1
	// maxPersistStr bounds decoded names/payload sizes as corruption guards.
	maxPersistName    = 1 << 12
	maxPersistPayload = 64 << 20
)

// WriteTo serialises the queue's full contents.
func (q *Queue) WriteTo(w io.Writer) (int64, error) {
	var written int64
	n, err := io.WriteString(w, persistMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	n, err = w.Write([]byte{persistVersion})
	written += int64(n)
	if err != nil {
		return written, err
	}

	q.mu.RLock()
	topics := make(map[string][]*partition, len(q.topics))
	for name, ps := range q.topics {
		topics[name] = ps
	}
	q.mu.RUnlock()

	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(topics)))
	n, err = w.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	for name, ps := range topics {
		k, err := writeString(w, name)
		written += k
		if err != nil {
			return written, err
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(ps)))
		n, err = w.Write(hdr[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
		for _, p := range ps {
			k, err := p.writeTo(w)
			written += k
			if err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

func (p *partition) writeTo(w io.Writer) (int64, error) {
	p.mu.Lock()
	msgs := make([]Message, len(p.msgs))
	copy(msgs, p.msgs)
	p.mu.Unlock()

	var written int64
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(msgs)))
	n, err := w.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, m := range msgs {
		binary.LittleEndian.PutUint64(hdr[:], uint64(m.Enqueued.UnixNano()))
		n, err = w.Write(hdr[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(m.Payload)))
		n, err = w.Write(lenBuf[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
		n, err = w.Write(m.Payload)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadFrom restores a queue from a WriteTo stream into this queue, which
// must be empty (fresh from New).
func (q *Queue) ReadFrom(r io.Reader) (int64, error) {
	var read int64
	magic := make([]byte, len(persistMagic)+1)
	n, err := io.ReadFull(r, magic)
	read += int64(n)
	if err != nil {
		return read, fmt.Errorf("mq: log header: %w", err)
	}
	if string(magic[:len(persistMagic)]) != persistMagic {
		return read, fmt.Errorf("mq: bad log magic %q", magic[:len(persistMagic)])
	}
	if magic[len(persistMagic)] != persistVersion {
		return read, fmt.Errorf("mq: unsupported log version %d", magic[len(persistMagic)])
	}
	var hdr [8]byte
	n, err = io.ReadFull(r, hdr[:4])
	read += int64(n)
	if err != nil {
		return read, err
	}
	nTopics := int(binary.LittleEndian.Uint32(hdr[:4]))
	for t := 0; t < nTopics; t++ {
		name, k, err := readString(r)
		read += k
		if err != nil {
			return read, err
		}
		n, err = io.ReadFull(r, hdr[:4])
		read += int64(n)
		if err != nil {
			return read, err
		}
		nParts := int(binary.LittleEndian.Uint32(hdr[:4]))
		if err := q.CreateTopic(name, nParts); err != nil {
			return read, err
		}
		for part := 0; part < nParts; part++ {
			n, err = io.ReadFull(r, hdr[:8])
			read += int64(n)
			if err != nil {
				return read, err
			}
			count := binary.LittleEndian.Uint64(hdr[:8])
			for m := uint64(0); m < count; m++ {
				n, err = io.ReadFull(r, hdr[:8])
				read += int64(n)
				if err != nil {
					return read, err
				}
				enq := time.Unix(0, int64(binary.LittleEndian.Uint64(hdr[:8])))
				var lenBuf [4]byte
				n, err = io.ReadFull(r, lenBuf[:])
				read += int64(n)
				if err != nil {
					return read, err
				}
				size := int(binary.LittleEndian.Uint32(lenBuf[:]))
				if size > maxPersistPayload {
					return read, fmt.Errorf("mq: corrupt log: %d-byte payload", size)
				}
				payload := make([]byte, size)
				n, err = io.ReadFull(r, payload)
				read += int64(n)
				if err != nil {
					return read, err
				}
				p, err := q.partition(name, part)
				if err != nil {
					return read, err
				}
				if _, err := p.produce(payload, enq); err != nil {
					return read, err
				}
			}
		}
	}
	return read, nil
}

func writeString(w io.Writer, s string) (int64, error) {
	var hdr [2]byte
	if len(s) > maxPersistName {
		return 0, fmt.Errorf("mq: name too long (%d bytes)", len(s))
	}
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(s)))
	n, err := w.Write(hdr[:])
	if err != nil {
		return int64(n), err
	}
	k, err := io.WriteString(w, s)
	return int64(n + k), err
}

func readString(r io.Reader) (string, int64, error) {
	var hdr [2]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		return "", int64(n), err
	}
	size := int(binary.LittleEndian.Uint16(hdr[:]))
	if size > maxPersistName {
		return "", int64(n), fmt.Errorf("mq: corrupt log: %d-byte name", size)
	}
	buf := make([]byte, size)
	k, err := io.ReadFull(r, buf)
	return string(buf), int64(n + k), err
}
