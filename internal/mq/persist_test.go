package mq

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestPersistRoundtrip(t *testing.T) {
	q := New()
	defer q.Close()
	if err := q.CreateTopic("updates", 3); err != nil {
		t.Fatal(err)
	}
	if err := q.CreateTopic("audit", 1); err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{} // "topic/part" → payloads in order
	for i := 0; i < 500; i++ {
		part := i % 3
		payload := fmt.Sprintf("updates-%d", i)
		if _, err := q.Produce("updates", part, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("updates/%d", part)
		want[key] = append(want[key], payload)
	}
	if _, err := q.Produce("audit", 0, []byte("only-one")); err != nil {
		t.Fatal(err)
	}
	want["audit/0"] = []string{"only-one"}

	var buf bytes.Buffer
	if _, err := q.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	restored := New()
	defer restored.Close()
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if restored.Partitions("updates") != 3 || restored.Partitions("audit") != 1 {
		t.Fatalf("topic shapes lost: %d/%d", restored.Partitions("updates"), restored.Partitions("audit"))
	}
	for key, payloads := range want {
		var topic string
		var part int
		if _, err := fmt.Sscanf(key, "%s", &topic); err != nil {
			t.Fatal(err)
		}
		fmt.Sscanf(key, "updates/%d", &part)
		if key == "audit/0" {
			topic, part = "audit", 0
		} else {
			topic = "updates"
		}
		c, err := restored.NewConsumer(topic, part, 0)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for {
			msgs, err := c.Poll(1024, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(msgs) == 0 {
				break
			}
			for _, m := range msgs {
				got = append(got, string(m.Payload))
			}
		}
		if len(got) != len(payloads) {
			t.Fatalf("%s: %d messages, want %d", key, len(got), len(payloads))
		}
		for i := range payloads {
			if got[i] != payloads[i] {
				t.Fatalf("%s message %d: %q, want %q", key, i, got[i], payloads[i])
			}
		}
	}
}

func TestPersistEnqueueTimesSurvive(t *testing.T) {
	q := New()
	defer q.Close()
	if err := q.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Produce("t", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c, _ := q.NewConsumer("t", 0, 0)
	orig, err := c.Poll(1, 0)
	if err != nil || len(orig) != 1 {
		t.Fatal("produce/poll failed")
	}

	var buf bytes.Buffer
	if _, err := q.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	defer restored.Close()
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rc, _ := restored.NewConsumer("t", 0, 0)
	got, err := rc.Poll(1, 0)
	if err != nil || len(got) != 1 {
		t.Fatal("restored poll failed")
	}
	if !got[0].Enqueued.Equal(orig[0].Enqueued) {
		t.Fatalf("enqueue time drifted: %v vs %v", got[0].Enqueued, orig[0].Enqueued)
	}
}

func TestReadFromRejectsCorruption(t *testing.T) {
	q := New()
	defer q.Close()
	if err := q.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := q.Produce("t", i%2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := q.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncations at many boundaries.
	for _, cut := range []int{0, 4, 8, 9, buf.Len() / 2, buf.Len() - 1} {
		fresh := New()
		if _, err := fresh.ReadFrom(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncated log (%d bytes) accepted", cut)
		}
		fresh.Close()
	}
	// Bad magic.
	bad := append([]byte("NOTALOG!!"), buf.Bytes()[9:]...)
	fresh := New()
	defer fresh.Close()
	if _, err := fresh.ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

// Property: any set of payloads survives the roundtrip byte-for-byte.
func TestPersistRoundtripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		q := New()
		defer q.Close()
		if err := q.CreateTopic("t", 1); err != nil {
			return false
		}
		for _, p := range payloads {
			if len(p) > 4096 {
				p = p[:4096]
			}
			if _, err := q.Produce("t", 0, p); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if _, err := q.WriteTo(&buf); err != nil {
			return false
		}
		restored := New()
		defer restored.Close()
		if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			return false
		}
		c, err := restored.NewConsumer("t", 0, 0)
		if err != nil {
			return false
		}
		i := 0
		for {
			msgs, err := c.Poll(64, 0)
			if err != nil {
				return false
			}
			if len(msgs) == 0 {
				break
			}
			for _, m := range msgs {
				want := payloads[i]
				if len(want) > 4096 {
					want = want[:4096]
				}
				if !bytes.Equal(m.Payload, want) {
					return false
				}
				i++
			}
		}
		return i == len(payloads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
