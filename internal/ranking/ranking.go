// Package ranking implements the blender's final result ranking (§2.4):
// after the nearest images come back from the brokers, "the similar
// products are ranked according to their sales, praise, price and other
// attributes".
//
// The score blends visual similarity with normalised business signals.
// Weights are configurable; the defaults keep similarity dominant (a
// visually wrong result is never rescued by sales volume) with business
// attributes breaking ties among close matches — the behaviour visible in
// the paper's Fig. 14 examples, where the same item in different shops is
// ordered by attractiveness.
package ranking

import (
	"math"
	"sort"

	"jdvs/internal/core"
)

// Weights configures the blended score.
type Weights struct {
	// Similarity weights the visual match, mapped as 1/(1+(dist/SimScale)²)
	// — a kernel that stays discriminative at the small distances where
	// near-duplicates live, so a markedly closer match cannot be buried by
	// business signals.
	Similarity float64
	// SimScale is the distance at which similarity halves (default 0.2;
	// unit-norm feature spaces put same-product photos well inside it).
	SimScale float64
	// Sales weights log-scaled sales volume.
	Sales float64
	// Praise weights the praise rate (0..100).
	Praise float64
	// Price penalises expensive items (log-scaled, relative to the most
	// expensive candidate).
	Price float64
}

// DefaultWeights keeps similarity dominant with business tiebreaks.
func DefaultWeights() Weights {
	return Weights{Similarity: 1.0, SimScale: 0.2, Sales: 0.08, Praise: 0.04, Price: 0.03}
}

// Ranker scores and orders hits. The zero value uses DefaultWeights.
type Ranker struct {
	w      Weights
	filled bool
}

// New returns a Ranker with the given weights.
func New(w Weights) *Ranker { return &Ranker{w: w, filled: true} }

func (r *Ranker) weights() Weights {
	if !r.filled {
		return DefaultWeights()
	}
	return r.w
}

// Filter returns the hits for which keep is true, reusing the input
// slice's backing array. The blender applies it with SearchRequest.AdmitsHit
// before ranking: searchers push predicates down into the shard scan, but a
// hit can drift out of the filter between the scan and the response (a
// concurrent attribute update), and an older searcher that predates the
// predicate wire extension does not filter at all — the post-merge re-check
// restores exact semantics either way.
func Filter(hits []core.Hit, keep func(*core.Hit) bool) []core.Hit {
	out := hits[:0]
	for i := range hits {
		if keep(&hits[i]) {
			out = append(out, hits[i])
		}
	}
	return out
}

// Rank deduplicates hits by product (keeping each product's visually
// closest image), scores them, and returns the top k ordered by descending
// score. The input slice is not modified.
func (r *Ranker) Rank(hits []core.Hit, k int) []core.Hit {
	if len(hits) == 0 || k <= 0 {
		return nil
	}
	// Dedup by product: a product with five near-identical photos should
	// occupy one result slot, not five (Fig. 14 shows distinct products).
	best := make(map[uint64]core.Hit, len(hits))
	for _, h := range hits {
		cur, ok := best[h.ProductID]
		if !ok || h.Dist < cur.Dist {
			best[h.ProductID] = h
		}
	}
	out := make([]core.Hit, 0, len(best))
	var maxSales uint32
	var maxPrice uint32
	for _, h := range best {
		if h.Sales > maxSales {
			maxSales = h.Sales
		}
		if h.PriceCents > maxPrice {
			maxPrice = h.PriceCents
		}
		out = append(out, h)
	}
	w := r.weights()
	if w.SimScale <= 0 {
		w.SimScale = DefaultWeights().SimScale
	}
	logMaxSales := math.Log1p(float64(maxSales))
	logMaxPrice := math.Log1p(float64(maxPrice))
	for i := range out {
		h := &out[i]
		nd := float64(h.Dist) / w.SimScale
		sim := 1 / (1 + nd*nd)
		score := w.Similarity * sim
		if logMaxSales > 0 {
			score += w.Sales * math.Log1p(float64(h.Sales)) / logMaxSales
		}
		score += w.Praise * float64(h.Praise) / 100
		if logMaxPrice > 0 {
			score -= w.Price * math.Log1p(float64(h.PriceCents)) / logMaxPrice
		}
		h.Score = score
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		// Deterministic ordering for equal scores.
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ProductID < out[j].ProductID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
