package ranking

import (
	"testing"

	"jdvs/internal/core"
)

func hit(pid uint64, dist float32, sales, praise, price uint32) core.Hit {
	return core.Hit{ProductID: pid, Dist: dist, Sales: sales, Praise: praise, PriceCents: price}
}

func TestRankEmpty(t *testing.T) {
	r := New(DefaultWeights())
	if got := r.Rank(nil, 5); got != nil {
		t.Fatalf("Rank(nil) = %v", got)
	}
	if got := r.Rank([]core.Hit{hit(1, 0, 0, 0, 0)}, 0); got != nil {
		t.Fatalf("Rank(k=0) = %v", got)
	}
}

func TestZeroValueRankerUsesDefaults(t *testing.T) {
	var r Ranker
	got := r.Rank([]core.Hit{hit(1, 0.1, 10, 50, 100)}, 5)
	if len(got) != 1 || got[0].Score == 0 {
		t.Fatalf("zero ranker output: %+v", got)
	}
}

func TestDedupKeepsClosestImage(t *testing.T) {
	r := New(DefaultWeights())
	hits := []core.Hit{
		hit(1, 0.9, 10, 50, 100),
		hit(1, 0.1, 10, 50, 100), // same product, closer image
		hit(2, 0.5, 10, 50, 100),
	}
	got := r.Rank(hits, 10)
	if len(got) != 2 {
		t.Fatalf("dedup failed: %+v", got)
	}
	for _, h := range got {
		if h.ProductID == 1 && h.Dist != 0.1 {
			t.Fatalf("kept the farther image: %+v", h)
		}
	}
}

func TestSimilarityDominates(t *testing.T) {
	r := New(DefaultWeights())
	// A visually wrong match with stellar business metrics must not beat a
	// visually close match with poor metrics.
	hits := []core.Hit{
		hit(1, 0.05, 0, 0, 1),            // close, no sales
		hit(2, 2.0, 1_000_000, 100, 100), // far, blockbuster
	}
	got := r.Rank(hits, 2)
	if got[0].ProductID != 1 {
		t.Fatalf("business metrics overrode similarity: %+v", got)
	}
}

func TestBusinessTiebreak(t *testing.T) {
	r := New(DefaultWeights())
	// Visually identical: sales/praise break the tie.
	hits := []core.Hit{
		hit(1, 0.3, 5, 10, 5000),
		hit(2, 0.3, 50_000, 98, 5000),
	}
	got := r.Rank(hits, 2)
	if got[0].ProductID != 2 {
		t.Fatalf("tiebreak ignored business attributes: %+v", got)
	}
}

func TestPricePenalty(t *testing.T) {
	r := New(Weights{Similarity: 1, Price: 0.5})
	hits := []core.Hit{
		hit(1, 0.3, 0, 0, 1_000_000), // expensive
		hit(2, 0.3, 0, 0, 100),       // cheap
	}
	got := r.Rank(hits, 2)
	if got[0].ProductID != 2 {
		t.Fatalf("price penalty not applied: %+v", got)
	}
}

func TestTruncationToK(t *testing.T) {
	r := New(DefaultWeights())
	var hits []core.Hit
	for i := 0; i < 30; i++ {
		hits = append(hits, hit(uint64(i+1), float32(i)*0.1, 0, 0, 100))
	}
	got := r.Rank(hits, 6)
	if len(got) != 6 {
		t.Fatalf("len = %d, want 6", len(got))
	}
}

func TestScoresMonotoneInOutput(t *testing.T) {
	r := New(DefaultWeights())
	var hits []core.Hit
	for i := 0; i < 20; i++ {
		hits = append(hits, hit(uint64(i+1), float32(i%7)*0.2, uint32(i*100), uint32(i%101), uint32(100+i)))
	}
	got := r.Rank(hits, 20)
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("scores not descending at %d: %v > %v", i, got[i].Score, got[i-1].Score)
		}
	}
}

func TestDeterministicOrderOnTies(t *testing.T) {
	r := New(DefaultWeights())
	hits := []core.Hit{
		hit(3, 0.5, 10, 10, 10),
		hit(1, 0.5, 10, 10, 10),
		hit(2, 0.5, 10, 10, 10),
	}
	a := r.Rank(append([]core.Hit(nil), hits...), 3)
	b := r.Rank([]core.Hit{hits[2], hits[0], hits[1]}, 3)
	for i := range a {
		if a[i].ProductID != b[i].ProductID {
			t.Fatalf("tie order input-dependent: %+v vs %+v", a, b)
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	r := New(DefaultWeights())
	hits := []core.Hit{hit(2, 0.9, 1, 1, 1), hit(1, 0.1, 1, 1, 1)}
	_ = r.Rank(hits, 2)
	if hits[0].ProductID != 2 || hits[1].ProductID != 1 {
		t.Fatalf("input reordered: %+v", hits)
	}
	if hits[0].Score != 0 {
		t.Fatalf("input scores mutated: %+v", hits)
	}
}

func TestFilter(t *testing.T) {
	hits := []core.Hit{
		hit(1, 0.1, 5, 0, 100),
		hit(2, 0.2, 50, 0, 100),
		hit(3, 0.3, 7, 0, 100),
		hit(4, 0.4, 90, 0, 100),
	}
	got := Filter(hits, func(h *core.Hit) bool { return h.Sales >= 10 })
	if len(got) != 2 || got[0].ProductID != 2 || got[1].ProductID != 4 {
		t.Fatalf("Filter kept %+v", got)
	}
	// In-place: the result reuses the input's backing array.
	if &got[0] != &hits[0] {
		t.Fatal("Filter allocated a new backing array")
	}
	if out := Filter(hits[:0], func(*core.Hit) bool { return true }); len(out) != 0 {
		t.Fatalf("Filter(empty) = %+v", out)
	}
	if out := Filter(got, func(*core.Hit) bool { return false }); len(out) != 0 {
		t.Fatalf("Filter(none pass) = %+v", out)
	}
}
