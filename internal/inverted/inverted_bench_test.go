package inverted

import (
	"math/rand"
	"testing"
)

// BenchmarkAppend measures the real-time insertion hot path (Fig. 8):
// write the ID, publish the aux position.
func BenchmarkAppend(b *testing.B) {
	ix := New(64, 1024)
	rng := rand.New(rand.NewSource(1))
	lists := make([]int, b.N)
	for i := range lists {
		lists[i] = rng.Intn(64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Append(lists[i], uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ix.Flush()
}

// BenchmarkScan measures the search-side scan of one fully built list.
func BenchmarkScan(b *testing.B) {
	for _, size := range []int{1_000, 100_000} {
		name := "list=1k"
		if size == 100_000 {
			name = "list=100k"
		}
		b.Run(name, func(b *testing.B) {
			ix := New(1, 1024)
			for i := 0; i < size; i++ {
				if err := ix.Append(0, uint32(i)); err != nil {
					b.Fatal(err)
				}
			}
			ix.Flush()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sum uint64
				ix.Scan(0, func(id uint32) bool {
					sum += uint64(id)
					return true
				})
				if sum == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// BenchmarkScanDuringAppends measures reader throughput while the single
// writer appends — the paper's concurrent search/update workload.
func BenchmarkScanDuringAppends(b *testing.B) {
	ix := New(1, 1024)
	for i := 0; i < 50_000; i++ {
		if err := ix.Append(0, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 50_000; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = ix.Append(0, uint32(i))
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ix.Scan(0, func(uint32) bool {
			n++
			return n < 10_000 // bounded scan per op
		})
	}
	b.StopTimer()
	close(stop)
	<-done
}
