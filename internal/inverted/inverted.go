// Package inverted implements the paper's real-time inverted index
// (Figs. 5, 8 and 9).
//
// The index is a fixed set of N inverted lists, one per feature cluster
// (IVF). Each list stores image IDs in a pre-allocated array and carries an
// auxiliary "position of the last element" counter (§2.3, Fig. 5) through
// which appends are published: the writer stores the element first and then
// advances the counter with an atomic store, so concurrent searches scan a
// stable, fully initialised prefix without taking any lock.
//
// When a list's pre-allocated memory is exhausted, the expansion protocol of
// Fig. 9 kicks in: a new list of double capacity is allocated, new image IDs
// are appended to the new list, and a background process copies the old
// contents across; "the current inverted list continues to serve the
// requests until [the] background process finishes copying", after which an
// atomic pointer swap retires the old list. Readers additionally scan the
// committed tail of the in-progress new list so that freshly inserted images
// are searchable immediately — the sub-second freshness guarantee is never
// suspended, even mid-expansion.
//
// Appends are serialised per index (each partition has exactly one real-time
// indexing writer, per Fig. 4); reads are always lock-free.
package inverted

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultInitialCap is the pre-allocated capacity of each inverted list.
const DefaultInitialCap = 64

// list is one immutable-capacity segment of an inverted list. data[0:base)
// is reserved for the background copy of the predecessor's contents and must
// not be read until this segment becomes the current head; data[base:n) is
// the committed tail of freshly appended IDs, readable immediately.
type list struct {
	data []uint32
	base int          // prefix reserved for migration copy
	n    atomic.Int64 // committed length (the auxiliary last-position entry)
	next atomic.Pointer[list]
}

func newList(capacity, base int) *list {
	l := &list{data: make([]uint32, capacity), base: base}
	l.n.Store(int64(base))
	return l
}

// Index is a set of N inverted lists. The zero value is not usable; call
// New.
type Index struct {
	lists []atomic.Pointer[list]

	mu        sync.Mutex // serialises appends and expansion decisions
	migrating []atomic.Bool
	wg        sync.WaitGroup

	total atomic.Int64 // total committed IDs across lists
}

// New returns an index with n lists, each pre-allocated to initialCap
// entries (DefaultInitialCap if initialCap <= 0).
func New(n, initialCap int) *Index {
	if n <= 0 {
		panic("inverted: list count must be positive")
	}
	if initialCap <= 0 {
		initialCap = DefaultInitialCap
	}
	ix := &Index{
		lists:     make([]atomic.Pointer[list], n),
		migrating: make([]atomic.Bool, n),
	}
	for i := range ix.lists {
		ix.lists[i].Store(newList(initialCap, 0))
	}
	return ix
}

// Lists returns the number of inverted lists (the IVF cluster count N).
func (ix *Index) Lists() int { return len(ix.lists) }

// Len returns the total number of committed image IDs across all lists.
func (ix *Index) Len() int { return int(ix.total.Load()) }

// AuxLastPos returns the auxiliary last-element position of list c — the
// number of committed entries, as maintained by the aux array of Fig. 5.
func (ix *Index) AuxLastPos(c int) int {
	l := ix.lists[c].Load()
	n := int(l.n.Load())
	for nx := l.next.Load(); nx != nil; nx = nx.next.Load() {
		n += int(nx.n.Load()) - nx.base
		l = nx
	}
	return n
}

// Append adds image id to the end of inverted list c (Fig. 8). It is safe
// to call concurrently with Scan; concurrent Appends are serialised
// internally.
func (ix *Index) Append(c int, id uint32) error {
	if c < 0 || c >= len(ix.lists) {
		return fmt.Errorf("inverted: list %d out of range [0,%d)", c, len(ix.lists))
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()

	// Walk to the tail segment of the migration chain: new IDs always go to
	// the most recent segment.
	l := ix.lists[c].Load()
	//jdvs:publish-ok Append holds ix.mu, the sole-writer lock; this is the writer locating its own tail, not a reader snapshot, so the length-before-pointer order is moot
	for nx := l.next.Load(); nx != nil; nx = nx.next.Load() {
		l = nx
	}
	pos := l.n.Load()
	if int(pos) == len(l.data) {
		// Expansion (Fig. 9): allocate a double-size segment whose prefix is
		// reserved for the background copy; append into its tail.
		nl := newList(len(l.data)*2, len(l.data))
		l.next.Store(nl)
		ix.startMigration(c)
		l = nl
		pos = l.n.Load()
	}
	l.data[pos] = id
	l.n.Store(pos + 1) // publish
	ix.total.Add(1)
	return nil
}

// startMigration launches the background copy process for list c if one is
// not already running. Caller holds mu.
func (ix *Index) startMigration(c int) {
	if !ix.migrating[c].CompareAndSwap(false, true) {
		return
	}
	ix.wg.Add(1)
	go func() {
		defer ix.wg.Done()
		defer ix.migrating[c].Store(false)
		for {
			cur := ix.lists[c].Load()
			nx := cur.next.Load()
			if nx == nil {
				return
			}
			// cur is full and immutable (appends moved to nx when it
			// filled); nx.data[0:nx.base) is reserved for this copy.
			copy(nx.data[:nx.base], cur.data)
			// Retire cur: readers arriving after this swap see the merged
			// segment; readers still holding cur continue to read its
			// immutable data plus nx's committed tail.
			ix.lists[c].Store(nx)
		}
	}()
}

// Flush blocks until all in-progress background migrations complete. It is
// primarily for tests and snapshotting.
func (ix *Index) Flush() {
	// New migrations can only start from Append; callers quiesce appends
	// before snapshotting, so waiting on the current set is sufficient.
	ix.wg.Wait()
}

// Scan invokes fn for every committed image ID in list c, in insertion
// order. fn returning false stops the scan early. Scan is lock-free and
// safe concurrently with Append and with background migration.
func (ix *Index) Scan(c int, fn func(id uint32) bool) {
	if c < 0 || c >= len(ix.lists) {
		return
	}
	l := ix.lists[c].Load()
	// Head segment: readable from 0. If this segment was reached directly
	// from lists[c], its reserved prefix (if any) has already been filled by
	// the completed migration that made it the head — except when it is
	// mid-migration, in which case only [base:n) is valid; but a segment
	// with base>0 only becomes the head after its prefix copy completed, so
	// scanning [0:n) here is always safe.
	n := int(l.n.Load())
	for i := 0; i < n; i++ {
		if !fn(l.data[i]) {
			return
		}
	}
	// Follow the migration chain: each successor's committed tail holds IDs
	// appended after the predecessor filled.
	for nx := l.next.Load(); nx != nil; nx = nx.next.Load() {
		n := int(nx.n.Load())
		for i := nx.base; i < n; i++ {
			if !fn(nx.data[i]) {
				return
			}
		}
	}
}

// ListLen returns the committed length of list c (including migration
// tails).
func (ix *Index) ListLen(c int) int { return ix.AuxLastPos(c) }

// Capacity returns the currently allocated capacity of list c's head
// segment chain (for memory accounting and the expansion tests).
func (ix *Index) Capacity(c int) int {
	l := ix.lists[c].Load()
	capSum := len(l.data)
	for nx := l.next.Load(); nx != nil; nx = nx.next.Load() {
		capSum = len(nx.data) // successor supersedes predecessor's storage
	}
	return capSum
}

// WriteTo serialises the index. Appends must be quiesced; migrations are
// flushed first.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.Flush()
	var written int64
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(ix.lists)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ix.Len()))
	k, err := w.Write(hdr[:])
	written += int64(k)
	if err != nil {
		return written, err
	}
	var lenBuf [4]byte
	elem := make([]byte, 0, 4096)
	for c := range ix.lists {
		elem = elem[:0]
		ix.Scan(c, func(id uint32) bool {
			var e [4]byte
			binary.LittleEndian.PutUint32(e[:], id)
			elem = append(elem, e[:]...)
			return true
		})
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(elem)/4))
		k, err = w.Write(lenBuf[:])
		written += int64(k)
		if err != nil {
			return written, err
		}
		k, err = w.Write(elem)
		written += int64(k)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadFrom replaces the index contents from a WriteTo stream. It must not
// run concurrently with readers or writers.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [8]byte
	k, err := io.ReadFull(r, hdr[:])
	read += int64(k)
	if err != nil {
		return read, err
	}
	nLists := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if nLists <= 0 {
		return read, errors.New("inverted: corrupt snapshot: zero lists")
	}
	lists := make([]atomic.Pointer[list], nLists)
	migrating := make([]atomic.Bool, nLists)
	var total int64
	var lenBuf [4]byte
	for c := 0; c < nLists; c++ {
		k, err = io.ReadFull(r, lenBuf[:])
		read += int64(k)
		if err != nil {
			return read, err
		}
		n := int(binary.LittleEndian.Uint32(lenBuf[:]))
		capacity := DefaultInitialCap
		for capacity < n {
			capacity *= 2
		}
		l := newList(capacity, 0)
		raw := make([]byte, 4*n)
		k, err = io.ReadFull(r, raw)
		read += int64(k)
		if err != nil {
			return read, err
		}
		for i := 0; i < n; i++ {
			l.data[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		l.n.Store(int64(n))
		total += int64(n)
		lists[c].Store(l)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.lists = lists
	ix.migrating = migrating
	ix.total.Store(total)
	return read, nil
}
