package inverted

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func collect(ix *Index, c int) []uint32 {
	var out []uint32
	ix.Scan(c, func(id uint32) bool {
		out = append(out, id)
		return true
	})
	return out
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero lists")
		}
	}()
	New(0, 8)
}

func TestAppendScanOrder(t *testing.T) {
	ix := New(4, 8)
	for i := uint32(0); i < 5; i++ {
		if err := ix.Append(2, i); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(ix, 2)
	if len(got) != 5 {
		t.Fatalf("scan returned %v", got)
	}
	for i, id := range got {
		if id != uint32(i) {
			t.Fatalf("insertion order violated: %v", got)
		}
	}
	if ix.ListLen(2) != 5 || ix.AuxLastPos(2) != 5 {
		t.Fatalf("aux position = %d, want 5", ix.AuxLastPos(2))
	}
	if got := collect(ix, 0); len(got) != 0 {
		t.Fatalf("untouched list non-empty: %v", got)
	}
	if ix.Len() != 5 {
		t.Fatalf("total = %d, want 5", ix.Len())
	}
}

func TestAppendOutOfRange(t *testing.T) {
	ix := New(2, 8)
	if err := ix.Append(2, 1); err == nil {
		t.Fatal("append to list 2 of 2 succeeded")
	}
	if err := ix.Append(-1, 1); err == nil {
		t.Fatal("append to list -1 succeeded")
	}
}

func TestScanEarlyStop(t *testing.T) {
	ix := New(1, 8)
	for i := uint32(0); i < 6; i++ {
		if err := ix.Append(0, i); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint32
	ix.Scan(0, func(id uint32) bool {
		seen = append(seen, id)
		return len(seen) < 3
	})
	if len(seen) != 3 {
		t.Fatalf("early stop scanned %d", len(seen))
	}
}

// TestExpansionPreservesContents drives a list through several doublings
// (Fig. 9) and verifies nothing is lost or reordered.
func TestExpansionPreservesContents(t *testing.T) {
	ix := New(2, 4) // tiny initial capacity forces many expansions
	const n = 5000
	for i := uint32(0); i < n; i++ {
		if err := ix.Append(1, i); err != nil {
			t.Fatal(err)
		}
	}
	ix.Flush()
	got := collect(ix, 1)
	if len(got) != n {
		t.Fatalf("scan returned %d ids, want %d", len(got), n)
	}
	for i, id := range got {
		if id != uint32(i) {
			t.Fatalf("order violated at %d: %d", i, id)
		}
	}
	if ix.Capacity(1) < n {
		t.Fatalf("capacity %d below length %d", ix.Capacity(1), n)
	}
}

// TestFreshAppendsVisibleDuringMigration verifies the paper's freshness
// guarantee: an ID appended mid-expansion is immediately scannable, before
// the background copy completes.
func TestFreshAppendsVisibleDuringMigration(t *testing.T) {
	ix := New(1, 4)
	// Fill to capacity: next append triggers expansion.
	for i := uint32(0); i < 4; i++ {
		if err := ix.Append(0, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Append(0, 100); err != nil { // lands in the new segment
		t.Fatal(err)
	}
	// Immediately (no Flush) the new ID must be visible.
	got := collect(ix, 0)
	found := false
	for _, id := range got {
		if id == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("freshly appended id invisible during migration: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("scan returned %v, want all 5 ids", got)
	}
}

// TestConcurrentAppendScan is the paper's central concurrency claim:
// searches scan while real-time indexing appends, lock-free, including
// across expansions. Run with -race.
func TestConcurrentAppendScan(t *testing.T) {
	ix := New(4, 8)
	const total = 30000
	var produced atomic.Uint32
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single writer, as per the partition model
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewSource(41))
		for i := uint32(0); i < total; i++ {
			if err := ix.Append(rng.Intn(4), i); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			produced.Store(i + 1)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Invariant: every scanned prefix is fully initialised:
				// ids are strictly less than the produced watermark read
				// *after* the scan (writer publishes id then watermark, so
				// any visible id must be < post-scan watermark + 1... use
				// pre-read lower bound instead: id < produced_after).
				for c := 0; c < 4; c++ {
					ix.Scan(c, func(id uint32) bool {
						if id >= total {
							t.Errorf("garbage id %d scanned", id)
							return false
						}
						return true
					})
				}
				before := produced.Load()
				seen := 0
				for c := 0; c < 4; c++ {
					seen += ix.ListLen(c)
				}
				after := produced.Load()
				// Everything the writer had published before our reads must
				// be visible (publication is monotone)...
				if uint32(seen) < before {
					t.Errorf("scanned %d ids but %d were already produced", seen, before)
					return
				}
				// ...and we can see at most one id the test's watermark has
				// not caught up to yet: the writer commits inside Append
				// first and stores `produced` after it returns, so committed
				// leads produced by at most the single in-flight append.
				if uint32(seen) > after+1 {
					t.Errorf("scanned %d ids but only %d produced", seen, after)
					return
				}
			}
		}()
	}
	wg.Wait()
	ix.Flush()
	seen := 0
	for c := 0; c < 4; c++ {
		seen += len(collect(ix, c))
	}
	if seen != total {
		t.Fatalf("final scan found %d, want %d", seen, total)
	}
}

// TestMigrationChain forces a second expansion while the first copy may
// still be running (append bursts far beyond one doubling).
func TestMigrationChain(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		ix := New(1, 2)
		const n = 4096
		for i := uint32(0); i < n; i++ {
			if err := ix.Append(0, i); err != nil {
				t.Fatal(err)
			}
		}
		// Scan before flush: must see all committed ids despite chained
		// migrations.
		got := collect(ix, 0)
		if len(got) != n {
			t.Fatalf("trial %d: pre-flush scan %d ids, want %d", trial, len(got), n)
		}
		ix.Flush()
		got = collect(ix, 0)
		for i, id := range got {
			if id != uint32(i) {
				t.Fatalf("trial %d: order violated after chain", trial)
			}
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	ix := New(8, 4)
	rng := rand.New(rand.NewSource(42))
	want := make([][]uint32, 8)
	for i := uint32(0); i < 2000; i++ {
		c := rng.Intn(8)
		if err := ix.Append(c, i); err != nil {
			t.Fatal(err)
		}
		want[c] = append(want[c], i)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	restored := New(8, 4)
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if restored.Len() != ix.Len() {
		t.Fatalf("restored %d ids, want %d", restored.Len(), ix.Len())
	}
	for c := 0; c < 8; c++ {
		got := collect(restored, c)
		if len(got) != len(want[c]) {
			t.Fatalf("list %d: %d ids, want %d", c, len(got), len(want[c]))
		}
		for i := range want[c] {
			if got[i] != want[c][i] {
				t.Fatalf("list %d entry %d: got %d want %d", c, i, got[i], want[c][i])
			}
		}
	}
}

func TestReadFromTruncated(t *testing.T) {
	ix := New(4, 4)
	for i := uint32(0); i < 100; i++ {
		if err := ix.Append(int(i%4), i); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, buf.Len() / 3, buf.Len() - 2} {
		restored := New(4, 4)
		if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
}

// Property: for any append sequence, Scan returns exactly the appended ids
// per list, in order.
func TestScanMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		ix := New(4, 2)
		model := make([][]uint32, 4)
		for i, op := range ops {
			c := int(op % 4)
			if err := ix.Append(c, uint32(i)); err != nil {
				return false
			}
			model[c] = append(model[c], uint32(i))
		}
		ix.Flush()
		for c := 0; c < 4; c++ {
			got := collect(ix, c)
			if len(got) != len(model[c]) {
				return false
			}
			for i := range got {
				if got[i] != model[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAuxPositionMonotone verifies the auxiliary last-position only moves
// forward while appends race with reads.
func TestAuxPositionMonotone(t *testing.T) {
	ix := New(1, 4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := uint32(0); i < 10000; i++ {
			if err := ix.Append(0, i); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	prev := 0
	for {
		select {
		case <-done:
			wg.Wait()
			if final := ix.AuxLastPos(0); final != 10000 {
				t.Fatalf("final aux pos %d, want 10000", final)
			}
			return
		default:
		}
		cur := ix.AuxLastPos(0)
		if cur < prev {
			t.Fatalf("aux position went backwards: %d -> %d", prev, cur)
		}
		prev = cur
		time.Sleep(time.Microsecond)
	}
}
