package workload

import (
	"testing"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/cluster"
	"jdvs/internal/imagestore"
	"jdvs/internal/msg"
)

func TestMixProportionsMatchTable1(t *testing.T) {
	images := imagestore.New()
	cat, err := catalog.Generate(catalog.Config{Products: 2000, Categories: 8, Seed: 41}, images)
	if err != nil {
		t.Fatal(err)
	}
	g := NewMix(MixConfig{Seed: 1}, cat, images)

	const n = 40000
	counts := map[Kind]int{}
	freshAdds := 0
	for i := 0; i < n; i++ {
		u, kind, fresh, err := g.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if u == nil || u.Type == 0 {
			t.Fatalf("event %d malformed: %+v", i, u)
		}
		counts[kind]++
		if fresh {
			if kind != KindAddition {
				t.Fatalf("fresh non-addition at %d", i)
			}
			freshAdds++
		}
	}
	frac := func(k Kind) float64 { return float64(counts[k]) / n }
	within := func(got, want, tol float64) bool { return got > want-tol && got < want+tol }
	if !within(frac(KindAttrUpdate), float64(Table1AttrUpdates)/Table1Total, 0.02) {
		t.Errorf("attr updates fraction %.3f, want ≈ %.3f", frac(KindAttrUpdate), float64(Table1AttrUpdates)/Table1Total)
	}
	if !within(frac(KindAddition), float64(Table1Additions)/Table1Total, 0.02) {
		t.Errorf("additions fraction %.3f, want ≈ %.3f", frac(KindAddition), float64(Table1Additions)/Table1Total)
	}
	if !within(frac(KindDeletion), float64(Table1Deletions)/Table1Total, 0.02) {
		t.Errorf("deletions fraction %.3f, want ≈ %.3f", frac(KindDeletion), float64(Table1Deletions)/Table1Total)
	}
	// Fresh additions ≈ 1.5% of additions (8/521).
	freshFrac := float64(freshAdds) / float64(counts[KindAddition])
	if !within(freshFrac, Table1FreshAddsShare, 0.01) {
		t.Errorf("fresh-add fraction %.4f, want ≈ %.4f", freshFrac, Table1FreshAddsShare)
	}
}

func TestMixEventConsistency(t *testing.T) {
	images := imagestore.New()
	cat, err := catalog.Generate(catalog.Config{Products: 100, Seed: 43}, images)
	if err != nil {
		t.Fatal(err)
	}
	g := NewMix(MixConfig{Seed: 2}, cat, images)
	listed := map[uint64]bool{}
	for i := range cat.Products {
		listed[cat.Products[i].ID] = true
	}
	for i := 0; i < 5000; i++ {
		u, kind, fresh, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch kind {
		case KindDeletion:
			if u.Type != msg.TypeRemoveProduct {
				t.Fatalf("deletion with type %v", u.Type)
			}
			if !listed[u.ProductID] {
				t.Fatalf("deleted a product that was not listed: %d", u.ProductID)
			}
			listed[u.ProductID] = false
		case KindAddition:
			if u.Type != msg.TypeAddProduct {
				t.Fatalf("addition with type %v", u.Type)
			}
			if fresh && listed[u.ProductID] {
				t.Fatalf("fresh add of existing product %d", u.ProductID)
			}
			listed[u.ProductID] = true
			// Fresh products' images must be uploaded.
			if fresh {
				for _, url := range u.ImageURLs {
					if !images.Has(url) {
						t.Fatalf("fresh product image %s not uploaded", url)
					}
				}
			}
		case KindAttrUpdate:
			if u.Type != msg.TypeUpdateAttrs {
				t.Fatalf("update with type %v", u.Type)
			}
		}
		if len(u.ImageURLs) == 0 {
			t.Fatalf("event %d has no image URLs", i)
		}
	}
}

func TestHourOfEventFollowsShape(t *testing.T) {
	const total = 100000
	counts := [24]int{}
	for i := 0; i < total; i++ {
		h := HourOfEvent(i, total, DiurnalShape)
		if h < 0 || h > 23 {
			t.Fatalf("hour %d out of range", h)
		}
		counts[h]++
	}
	// Peak hour is 11:00, trough is 04:00 — as in Fig. 11(a).
	peak := 0
	for h := 1; h < 24; h++ {
		if counts[h] > counts[peak] {
			peak = h
		}
	}
	if peak != 11 {
		t.Fatalf("peak hour %d, want 11; counts=%v", peak, counts)
	}
	if counts[4] >= counts[11]/10 {
		t.Fatalf("trough not deep enough: 4h=%d 11h=%d", counts[4], counts[11])
	}
	// Monotone event index → monotone hour.
	prev := 0
	for i := 0; i < total; i += 1000 {
		h := HourOfEvent(i, total, DiurnalShape)
		if h < prev {
			t.Fatalf("hour went backwards at event %d", i)
		}
		prev = h
	}
}

func TestRunQueryLoadAgainstCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-backed load test")
	}
	c, err := cluster.Start(cluster.Config{
		Partitions: 2,
		NLists:     16,
		Catalog:    catalog.Config{Products: 100, Categories: 4, Seed: 47},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := RunQueryLoad(QueryLoadConfig{
		Addr:        c.FrontendAddr(),
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		TopK:        5,
		Seed:        1,
	}, c.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d query errors", res.Errors)
	}
	if res.QPS <= 0 {
		t.Fatalf("QPS = %v", res.QPS)
	}
	if res.Latency.Count() != uint64(res.Queries) {
		t.Fatalf("histogram count %d != queries %d", res.Latency.Count(), res.Queries)
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunQueryLoadValidation(t *testing.T) {
	cat, err := catalog.Generate(catalog.Config{Products: 1, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunQueryLoad(QueryLoadConfig{Addr: "x"}, cat); err == nil {
		t.Fatal("zero concurrency accepted")
	}
	empty := &catalog.Catalog{}
	if _, err := RunQueryLoad(QueryLoadConfig{Addr: "x", Concurrency: 1}, empty); err == nil {
		t.Fatal("empty catalog accepted")
	}
}
