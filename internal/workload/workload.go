// Package workload generates the evaluation's traffic: the Table 1 update
// mix (315M attribute updates : 521M additions — 513M of them re-additions
// — : 141M deletions), the diurnal hourly rate shape of Fig. 11(a) peaking
// at 11:00, and the concurrent query-client emulation of §3.2 ("the client
// machine emulates a different number of concurrent users by sending image
// query requests to the visual search system").
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"jdvs/internal/catalog"
	"jdvs/internal/core"
	"jdvs/internal/imagestore"
	"jdvs/internal/metrics"
	"jdvs/internal/msg"
	"jdvs/internal/search/client"
)

// Table 1 proportions (millions of image updates on 2018-08-04).
const (
	Table1AttrUpdates    = 315
	Table1Additions      = 521
	Table1ReusedAdds     = 513
	Table1Deletions      = 141
	Table1Total          = 977
	Table1FreshAddsShare = float64(Table1Additions-Table1ReusedAdds) / float64(Table1Additions)
)

// MixConfig parameterises an update-event generator.
type MixConfig struct {
	// Weights for each event kind; defaults are Table 1's proportions.
	AttrWeight, AddWeight, DeleteWeight float64
	// FreshAddFraction is the share of additions that are brand-new
	// products requiring feature extraction (default Table1FreshAddsShare
	// ≈ 1.5%).
	FreshAddFraction float64
	// Seed drives event selection.
	Seed int64
}

func (c *MixConfig) fill() {
	if c.AttrWeight <= 0 && c.AddWeight <= 0 && c.DeleteWeight <= 0 {
		c.AttrWeight = Table1AttrUpdates
		c.AddWeight = Table1Additions
		c.DeleteWeight = Table1Deletions
	}
	if c.FreshAddFraction <= 0 {
		c.FreshAddFraction = Table1FreshAddsShare
	}
}

// MixGen emits update events with the configured mix against a catalog.
// Additions of existing products exercise the feature-reuse path
// ("products which were removed from the market and put back again",
// §3.1); fresh additions mint a new product, upload its images, and force
// extraction. Not safe for concurrent use.
type MixGen struct {
	cfg    MixConfig
	cat    *catalog.Catalog
	images *imagestore.Store
	rng    *rand.Rand

	listed   []int // indices into cat.Products currently on the market
	delisted []int
	pos      map[uint64]int // productID → slice position bookkeeping

	nextID uint64
	seq    uint64
}

// NewMix builds a generator. All catalog products start listed.
func NewMix(cfg MixConfig, cat *catalog.Catalog, images *imagestore.Store) *MixGen {
	cfg.fill()
	g := &MixGen{
		cfg:    cfg,
		cat:    cat,
		images: images,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		pos:    make(map[uint64]int),
	}
	for i := range cat.Products {
		g.listed = append(g.listed, i)
		if cat.Products[i].ID >= g.nextID {
			g.nextID = cat.Products[i].ID + 1
		}
	}
	return g
}

// Kind labels generated events for accounting.
type Kind string

// Event kinds as counted in Table 1.
const (
	KindAttrUpdate Kind = "update"
	KindAddition   Kind = "addition"
	KindDeletion   Kind = "deletion"
)

// Next emits the next event. fresh reports whether the event is an
// addition of a never-before-seen product (extraction required).
func (g *MixGen) Next() (u *msg.ProductUpdate, kind Kind, fresh bool, err error) {
	total := g.cfg.AttrWeight + g.cfg.AddWeight + g.cfg.DeleteWeight
	x := g.rng.Float64() * total
	g.seq++
	switch {
	case x < g.cfg.AttrWeight:
		return g.attrUpdate()
	case x < g.cfg.AttrWeight+g.cfg.AddWeight:
		return g.addition()
	default:
		return g.deletion()
	}
}

func (g *MixGen) attrUpdate() (*msg.ProductUpdate, Kind, bool, error) {
	if len(g.listed) == 0 {
		return g.addition() // nothing to update; degrade to an addition
	}
	idx := g.listed[g.rng.Intn(len(g.listed))]
	p := &g.cat.Products[idx]
	p.Sales += uint32(g.rng.Intn(50))
	p.Praise = uint32(g.rng.Intn(101))
	return &msg.ProductUpdate{
		Type:       msg.TypeUpdateAttrs,
		ProductID:  p.ID,
		Category:   p.Category,
		Sales:      p.Sales,
		Praise:     p.Praise,
		PriceCents: p.PriceCents,
		ImageURLs:  append([]string(nil), p.ImageURLs...),
		Seq:        g.seq,
	}, KindAttrUpdate, false, nil
}

func (g *MixGen) addition() (*msg.ProductUpdate, Kind, bool, error) {
	fresh := g.rng.Float64() < g.cfg.FreshAddFraction
	if !fresh && len(g.delisted) == 0 && len(g.listed) == 0 {
		fresh = true
	}
	if fresh {
		p, err := g.cat.NewProduct(g.nextID)
		if err != nil {
			return nil, "", false, err
		}
		g.nextID++
		if g.images != nil {
			if err := g.cat.UploadImages(&p, g.images); err != nil {
				return nil, "", false, err
			}
		}
		g.cat.Products = append(g.cat.Products, p)
		g.listed = append(g.listed, len(g.cat.Products)-1)
		return g.event(msg.TypeAddProduct, &g.cat.Products[len(g.cat.Products)-1]), KindAddition, true, nil
	}
	// Re-addition: prefer a delisted product (the put-back-on-market path);
	// fall back to re-announcing a listed one (idempotent reuse).
	var idx int
	if len(g.delisted) > 0 {
		j := g.rng.Intn(len(g.delisted))
		idx = g.delisted[j]
		g.delisted[j] = g.delisted[len(g.delisted)-1]
		g.delisted = g.delisted[:len(g.delisted)-1]
		g.listed = append(g.listed, idx)
	} else {
		idx = g.listed[g.rng.Intn(len(g.listed))]
	}
	return g.event(msg.TypeAddProduct, &g.cat.Products[idx]), KindAddition, false, nil
}

func (g *MixGen) deletion() (*msg.ProductUpdate, Kind, bool, error) {
	if len(g.listed) == 0 {
		return g.addition()
	}
	j := g.rng.Intn(len(g.listed))
	idx := g.listed[j]
	g.listed[j] = g.listed[len(g.listed)-1]
	g.listed = g.listed[:len(g.listed)-1]
	g.delisted = append(g.delisted, idx)
	return g.event(msg.TypeRemoveProduct, &g.cat.Products[idx]), KindDeletion, false, nil
}

func (g *MixGen) event(t msg.Type, p *catalog.Product) *msg.ProductUpdate {
	return &msg.ProductUpdate{
		Type:       t,
		ProductID:  p.ID,
		Category:   p.Category,
		Sales:      p.Sales,
		Praise:     p.Praise,
		PriceCents: p.PriceCents,
		ImageURLs:  append([]string(nil), p.ImageURLs...),
		Seq:        g.seq,
	}
}

// DiurnalShape is the relative hourly rate of real-time index updates over
// a day, shaped like Fig. 11(a): a deep overnight trough, a fast morning
// ramp to the 11:00 peak, a lunch dip, and an evening shoulder.
var DiurnalShape = [24]float64{
	12, 8, 5, 4, 3, 4, // 00–05
	8, 15, 30, 52, 70, 80, // 06–11 (peak 80 at 11:00)
	68, 60, 58, 55, 52, 50, // 12–17
	55, 60, 58, 45, 30, 18, // 18–23
}

// HourOfEvent maps event i of total onto an hour 0..23 following shape's
// cumulative distribution — event streams generated with it reproduce the
// hourly rate curve.
func HourOfEvent(i, total int, shape [24]float64) int {
	var sum float64
	for _, v := range shape {
		sum += v
	}
	target := (float64(i) + 0.5) / float64(total) * sum
	var acc float64
	for h := 0; h < 24; h++ {
		acc += shape[h]
		if target <= acc {
			return h
		}
	}
	return 23
}

// QueryLoadConfig parameterises a concurrent query run.
type QueryLoadConfig struct {
	// Addr is the frontend (or blender) address.
	Addr string
	// Concurrency is the number of emulated users. Required.
	Concurrency int
	// Duration bounds the run (default 3s). Queries in flight at the
	// deadline complete and are counted.
	Duration time.Duration
	// TopK and NProbe shape each query (defaults 10 / 0 = searcher
	// default).
	TopK, NProbe int
	// QueryPool is how many distinct query images to pre-generate
	// (default 64).
	QueryPool int
	// Blobs, when non-nil, supplies pre-encoded query images and the
	// catalog is not touched — required when another goroutine (an update
	// generator) owns the catalog during the run.
	Blobs [][]byte
	// BlobCategories, when non-nil, scopes each query to the category of
	// its blob (aligned index-for-index with Blobs — MakeScopedQueryBlobs
	// builds the pair): the category-skewed filtered workload. Nil
	// searches all categories.
	BlobCategories []int32
	// MinPriceCents / MaxPriceCents / MinSales are attribute predicates
	// attached to every query (0 = unbounded), pushed down into the
	// searchers' bitmap-admission scan.
	MinPriceCents uint32
	MaxPriceCents uint32
	MinSales      uint32
	// ZipfS, when > 1, skews blob selection with a zipf distribution of
	// exponent s over the query pool (rank 0 hottest) — the heavy-skew
	// shape of e-commerce query traffic, where a few hero images dominate.
	// <= 1 keeps the uniform pick.
	ZipfS float64
	// Seed selects query products.
	Seed int64
	// Conns caps client connections (default min(Concurrency, 16)).
	Conns int
}

// MakeQueryBlobs pre-generates n encoded query photos of random catalog
// products, for passing to RunQueryLoad as QueryLoadConfig.Blobs.
func MakeQueryBlobs(cat *catalog.Catalog, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	blobs := make([][]byte, n)
	for i := range blobs {
		p := &cat.Products[rng.Intn(len(cat.Products))]
		blobs[i] = cat.QueryImage(p).Encode()
	}
	return blobs
}

// MakeScopedQueryBlobs pre-generates n encoded query photos of random
// catalog products along with each query product's own category, for the
// category-scoped filtered workload (QueryLoadConfig.Blobs +
// BlobCategories).
func MakeScopedQueryBlobs(cat *catalog.Catalog, n int, seed int64) ([][]byte, []int32) {
	rng := rand.New(rand.NewSource(seed))
	blobs := make([][]byte, n)
	cats := make([]int32, n)
	for i := range blobs {
		p := &cat.Products[rng.Intn(len(cat.Products))]
		blobs[i] = cat.QueryImage(p).Encode()
		cats[i] = int32(p.Category)
	}
	return blobs, cats
}

// QueryLoadResult summarises a run.
type QueryLoadResult struct {
	Queries int64
	Errors  int64
	// FullPages counts queries whose response filled the whole TopK page —
	// the page-fill rate selective filters threaten.
	FullPages int64
	Wall      time.Duration
	QPS       float64
	Latency   *metrics.Histogram
}

// RunQueryLoad emulates cfg.Concurrency users issuing back-to-back visual
// queries against a running cluster, exactly like the §3.2 client machine.
func RunQueryLoad(cfg QueryLoadConfig, cat *catalog.Catalog) (*QueryLoadResult, error) {
	if cfg.Concurrency <= 0 {
		return nil, errors.New("workload: Concurrency must be positive")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.QueryPool <= 0 {
		cfg.QueryPool = 64
	}
	if cfg.Conns <= 0 {
		cfg.Conns = cfg.Concurrency
		if cfg.Conns > 16 {
			cfg.Conns = 16
		}
	}
	blobs := cfg.Blobs
	if blobs == nil {
		if cat == nil || len(cat.Products) == 0 {
			return nil, errors.New("workload: empty catalog and no pre-generated blobs")
		}
		blobs = MakeQueryBlobs(cat, cfg.QueryPool, cfg.Seed)
	}

	cl, err := client.Dial(cfg.Addr, cfg.Conns)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	if cfg.BlobCategories != nil && len(cfg.BlobCategories) != len(blobs) {
		return nil, errors.New("workload: BlobCategories must align with Blobs")
	}

	res := &QueryLoadResult{Latency: &metrics.Histogram{}}
	var queries, errs, fullPages atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var zipf *rand.Zipf
			if cfg.ZipfS > 1 && len(blobs) > 1 {
				zipf = rand.NewZipf(local, cfg.ZipfS, 1, uint64(len(blobs)-1))
			}
			for time.Now().Before(deadline) {
				bi := 0
				if zipf != nil {
					bi = int(zipf.Uint64())
				} else {
					bi = local.Intn(len(blobs))
				}
				// CategoryScope -1 searches all categories (the §3.2
				// clients measure raw retrieval throughput); the filtered
				// workload scopes each query to its product's category.
				scope := int32(-1)
				if cfg.BlobCategories != nil {
					scope = cfg.BlobCategories[bi]
				}
				q := &core.QueryRequest{
					ImageBlob:     blobs[bi],
					TopK:          cfg.TopK,
					NProbe:        cfg.NProbe,
					CategoryScope: scope,
					MinPriceCents: cfg.MinPriceCents,
					MaxPriceCents: cfg.MaxPriceCents,
					MinSales:      cfg.MinSales,
				}
				t0 := time.Now()
				resp, err := cl.Query(ctx, q)
				lat := time.Since(t0)
				if err != nil {
					errs.Add(1)
					continue
				}
				queries.Add(1)
				if len(resp.Hits) >= cfg.TopK {
					fullPages.Add(1)
				}
				res.Latency.Record(lat)
			}
		}(w)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Queries = queries.Load()
	res.Errors = errs.Load()
	res.FullPages = fullPages.Load()
	if res.Wall > 0 {
		res.QPS = float64(res.Queries) / res.Wall.Seconds()
	}
	return res, nil
}

// String renders a one-line summary.
func (r *QueryLoadResult) String() string {
	return fmt.Sprintf("queries=%d errors=%d wall=%s qps=%.1f avg=%s p99=%s max=%s",
		r.Queries, r.Errors, r.Wall.Round(time.Millisecond), r.QPS,
		r.Latency.Mean().Round(time.Microsecond),
		r.Latency.Percentile(99).Round(time.Microsecond),
		r.Latency.Max().Round(time.Microsecond))
}
