// Package cnn is the simulated deep feature extractor.
//
// The production system runs a convolutional network on GPUs to turn a
// product photo into a high-dimensional feature vector, detect the item in
// the picture and identify its category (§2.4). Reproducing that would
// require model weights and cgo inference bindings, so this package
// substitutes a deterministic network with the two properties the
// surrounding system actually depends on:
//
//  1. Locality: visually similar images (nearby latents) map to nearby
//     feature vectors, so ANN recall, IVF clustering and ranking behave
//     like the real pipeline. The embedding is a seeded random projection
//     of the image latent followed by a tanh nonlinearity and L2
//     normalisation — a fixed one-layer network.
//  2. Cost: extraction is by far the most expensive operation in the
//     indexing path, which is why the paper goes to such lengths to reuse
//     features (513M of 521M daily additions reuse cached features, §3.1).
//     The Extractor burns a configurable, deterministic amount of CPU per
//     call so that reuse-vs-extract trade-offs are measurable.
//
// Extractors built with the same seed and dimensions are identical across
// processes, so blenders and indexers extract byte-identical features.
package cnn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"jdvs/internal/imaging"
	"jdvs/internal/vecmath"
)

// DefaultDim is the default feature dimensionality.
const DefaultDim = 64

// Config parameterises an Extractor.
type Config struct {
	// Dim is the output feature dimensionality (DefaultDim if 0).
	Dim int
	// Seed derives the projection weights; equal seeds give identical
	// networks.
	Seed int64
	// WorkFactor controls simulated inference cost: the number of extra
	// dummy network passes per extraction. 0 means just the real pass.
	// Each pass is O(Dim·LatentDim) multiply-accumulates.
	WorkFactor int
}

// Extractor is a deterministic feature embedding network. It is immutable
// after construction and safe for concurrent use.
type Extractor struct {
	dim    int
	work   int
	proj   []float32 // dim × LatentDim row-major weights
	bias   []float32
	nCalls atomic.Int64
}

// New builds an extractor from cfg.
func New(cfg Config) *Extractor {
	dim := cfg.Dim
	if dim <= 0 {
		dim = DefaultDim
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Extractor{
		dim:  dim,
		work: cfg.WorkFactor,
		proj: make([]float32, dim*imaging.LatentDim),
		bias: make([]float32, dim),
	}
	scale := 1 / math.Sqrt(float64(imaging.LatentDim))
	for i := range e.proj {
		e.proj[i] = float32(rng.NormFloat64() * scale)
	}
	for i := range e.bias {
		e.bias[i] = float32(rng.NormFloat64() * 0.01)
	}
	return e
}

// Dim returns the output feature dimensionality.
func (e *Extractor) Dim() int { return e.dim }

// Calls returns the number of Extract invocations, for measuring how often
// the dedup path avoided extraction.
func (e *Extractor) Calls() int64 { return e.nCalls.Load() }

// ErrNilImage is returned when extraction is attempted on a nil image.
var ErrNilImage = errors.New("cnn: nil image")

// Extract embeds the image's content into a unit-norm feature vector.
func (e *Extractor) Extract(im *imaging.Image) ([]float32, error) {
	if im == nil {
		return nil, ErrNilImage
	}
	e.nCalls.Add(1)
	out := e.forward(im.Latent[:])
	// Simulated inference cost: extra forward passes whose results feed a
	// checksum that is folded into nothing — the work cannot be elided.
	var sink float32
	for w := 0; w < e.work; w++ {
		tmp := e.forward(im.Latent[:])
		sink += tmp[w%e.dim]
	}
	if math.IsNaN(float64(sink)) {
		// Unreachable: tanh output is always finite. The check exists so
		// the compiler cannot prove the dummy passes dead.
		return nil, fmt.Errorf("cnn: numeric fault (sink=%f)", sink)
	}
	return out, nil
}

// ExtractBytes decodes an encoded image blob and embeds it.
func (e *Extractor) ExtractBytes(blob []byte) ([]float32, error) {
	im, err := imaging.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("cnn: decode before extract: %w", err)
	}
	return e.Extract(im)
}

func (e *Extractor) forward(latent []float32) []float32 {
	out := make([]float32, e.dim)
	for i := 0; i < e.dim; i++ {
		row := e.proj[i*imaging.LatentDim : (i+1)*imaging.LatentDim]
		out[i] = tanh32(vecmath.Dot(row, latent) + e.bias[i])
	}
	vecmath.Normalize(out)
	return out
}

func tanh32(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}

// Detection is the result of running the simulated item detector.
type Detection struct {
	X, Y, W, H uint16
}

// Detect locates the item in the picture. The synthetic image carries its
// object window, so detection reads it out — the downstream contract
// (search operates on the detected item's features) is identical to the
// production detector's.
func Detect(im *imaging.Image) (Detection, error) {
	if im == nil {
		return Detection{}, ErrNilImage
	}
	return Detection{X: im.ObjX, Y: im.ObjY, W: im.ObjW, H: im.ObjH}, nil
}

// Classifier assigns a feature vector to the nearest category prototype —
// the "product category of the item is identified" step of §2.4.
type Classifier struct {
	dim        int
	prototypes []float32 // nCat × dim
}

// NewClassifier builds a nearest-prototype classifier. prototypes is a flat
// row-major matrix of one feature-space prototype per category; category i
// is row i.
func NewClassifier(dim int, prototypes []float32) (*Classifier, error) {
	if dim <= 0 || len(prototypes) == 0 || len(prototypes)%dim != 0 {
		return nil, fmt.Errorf("cnn: bad prototype matrix (%d floats, dim %d)", len(prototypes), dim)
	}
	dup := make([]float32, len(prototypes))
	copy(dup, prototypes)
	return &Classifier{dim: dim, prototypes: dup}, nil
}

// Classify returns the category whose prototype is nearest to feature.
func (c *Classifier) Classify(feature []float32) (uint16, error) {
	if len(feature) != c.dim {
		return 0, fmt.Errorf("cnn: feature dim %d, classifier dim %d", len(feature), c.dim)
	}
	idx, _ := vecmath.NearestCentroid(feature, c.prototypes, c.dim)
	return uint16(idx), nil
}

// Categories returns the number of categories the classifier knows.
func (c *Classifier) Categories() int { return len(c.prototypes) / c.dim }
