package cnn

import (
	"math"
	"math/rand"
	"testing"

	"jdvs/internal/imaging"
	"jdvs/internal/vecmath"
)

func genImage(rng *rand.Rand, base []float32, noise float64) *imaging.Image {
	return imaging.Generate(rng, base, 0, imaging.GenConfig{Noise: noise, PayloadBytes: 64})
}

func randLatent(rng *rand.Rand) []float32 {
	v := make([]float32, imaging.LatentDim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestExtractUnitNorm(t *testing.T) {
	e := New(Config{Dim: 32, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		f, err := e.Extract(genImage(rng, randLatent(rng), 0.1))
		if err != nil {
			t.Fatal(err)
		}
		if len(f) != 32 {
			t.Fatalf("dim = %d", len(f))
		}
		if n := vecmath.Norm(f); math.Abs(float64(n)-1) > 1e-5 {
			t.Fatalf("norm = %v, want 1", n)
		}
	}
}

func TestExtractNil(t *testing.T) {
	e := New(Config{Seed: 1})
	if _, err := e.Extract(nil); err == nil {
		t.Fatal("nil image accepted")
	}
}

// TestLocality is the property the whole search stack depends on: photos
// of the same product embed much closer together than photos of different
// products.
func TestLocality(t *testing.T) {
	e := New(Config{Dim: 64, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	var same, diff []float64
	for trial := 0; trial < 60; trial++ {
		baseA := randLatent(rng)
		baseB := randLatent(rng)
		fa1, err := e.Extract(genImage(rng, baseA, 0.05))
		if err != nil {
			t.Fatal(err)
		}
		fa2, err := e.Extract(genImage(rng, baseA, 0.05))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := e.Extract(genImage(rng, baseB, 0.05))
		if err != nil {
			t.Fatal(err)
		}
		same = append(same, float64(vecmath.L2Squared(fa1, fa2)))
		diff = append(diff, float64(vecmath.L2Squared(fa1, fb)))
	}
	meanSame, meanDiff := mean(same), mean(diff)
	if meanSame*5 > meanDiff {
		t.Fatalf("locality too weak: same-product dist %v vs different %v", meanSame, meanDiff)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestDeterministicAcrossInstances: extractors with the same seed embed
// identically — blenders and indexers must agree byte-for-byte.
func TestDeterministicAcrossInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	img := genImage(rng, randLatent(rng), 0.1)
	e1 := New(Config{Dim: 48, Seed: 77})
	e2 := New(Config{Dim: 48, Seed: 77})
	f1, err := e1.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := e2.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("component %d differs: %v vs %v", i, f1[i], f2[i])
		}
	}
	// Different seeds differ.
	e3 := New(Config{Dim: 48, Seed: 78})
	f3, err := e3.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	identical := true
	for i := range f1 {
		if f1[i] != f3[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestExtractBytes(t *testing.T) {
	e := New(Config{Dim: 16, Seed: 6})
	rng := rand.New(rand.NewSource(7))
	img := genImage(rng, randLatent(rng), 0.1)
	fromImg, err := e.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	fromBytes, err := e.ExtractBytes(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromImg {
		if fromImg[i] != fromBytes[i] {
			t.Fatal("ExtractBytes disagrees with Extract")
		}
	}
	if _, err := e.ExtractBytes([]byte("junk")); err == nil {
		t.Fatal("garbage blob accepted")
	}
}

func TestCallsCounter(t *testing.T) {
	e := New(Config{Dim: 16, Seed: 8})
	rng := rand.New(rand.NewSource(9))
	img := genImage(rng, randLatent(rng), 0.1)
	for i := 0; i < 5; i++ {
		if _, err := e.Extract(img); err != nil {
			t.Fatal(err)
		}
	}
	if e.Calls() != 5 {
		t.Fatalf("Calls = %d, want 5", e.Calls())
	}
}

func TestDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	img := genImage(rng, randLatent(rng), 0.1)
	d, err := Detect(img)
	if err != nil {
		t.Fatal(err)
	}
	if d.X != img.ObjX || d.Y != img.ObjY || d.W != img.ObjW || d.H != img.ObjH {
		t.Fatalf("Detect = %+v, image window %+v", d, img)
	}
	if _, err := Detect(nil); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(0, []float32{1}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := NewClassifier(4, []float32{1, 2, 3}); err == nil {
		t.Fatal("ragged prototype matrix accepted")
	}
	c, err := NewClassifier(2, []float32{0, 0, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Categories() != 2 {
		t.Fatalf("Categories = %d", c.Categories())
	}
	if _, err := c.Classify([]float32{1}); err == nil {
		t.Fatal("wrong-dim feature accepted")
	}
}

// TestClassifierAccuracy: features of category-prototype images classify
// back to their category with high accuracy.
func TestClassifierAccuracy(t *testing.T) {
	const nCats = 8
	e := New(Config{Dim: 64, Seed: 11})
	rng := rand.New(rand.NewSource(12))

	protoLatents := make([][]float32, nCats)
	protoFeats := make([]float32, 0, nCats*64)
	for c := 0; c < nCats; c++ {
		protoLatents[c] = randLatent(rng)
		f, err := e.Extract(genImage(rng, protoLatents[c], 1e-4))
		if err != nil {
			t.Fatal(err)
		}
		protoFeats = append(protoFeats, f...)
	}
	cls, err := NewClassifier(64, protoFeats)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for c := 0; c < nCats; c++ {
		for i := 0; i < 25; i++ {
			f, err := e.Extract(genImage(rng, protoLatents[c], 0.15))
			if err != nil {
				t.Fatal(err)
			}
			got, err := cls.Classify(f)
			if err != nil {
				t.Fatal(err)
			}
			if int(got) == c {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("classifier accuracy %.2f, want >= 0.9", acc)
	}
}

// TestWorkFactorCost: higher WorkFactor must cost measurably more work
// (the reuse-vs-extract trade-off depends on it). Checked via extra passes
// producing identical embeddings, not wall time (timing is flaky in CI).
func TestWorkFactorSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	img := genImage(rng, randLatent(rng), 0.1)
	fast := New(Config{Dim: 32, Seed: 14, WorkFactor: 0})
	slow := New(Config{Dim: 32, Seed: 14, WorkFactor: 8})
	f1, err := fast.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := slow.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("WorkFactor changed the embedding")
		}
	}
}
