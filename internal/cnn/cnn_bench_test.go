package cnn

import (
	"math/rand"
	"testing"
)

// BenchmarkExtract measures the simulated CNN at different cost factors —
// the knob Fig. 11's queueing behaviour depends on.
func BenchmarkExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	img := genImage(rng, randLatent(rng), 0.1)
	for _, work := range []int{0, 50, 300} {
		name := map[int]string{0: "work=0", 50: "work=50", 300: "work=300"}[work]
		b.Run(name, func(b *testing.B) {
			e := New(Config{Dim: 64, Seed: 2, WorkFactor: work})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Extract(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExtractBytes(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	blob := genImage(rng, randLatent(rng), 0.1).Encode()
	e := New(Config{Dim: 64, Seed: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExtractBytes(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	e := New(Config{Dim: 64, Seed: 6})
	protos := make([]float32, 0, 20*64)
	for c := 0; c < 20; c++ {
		f, err := e.Extract(genImage(rng, randLatent(rng), 1e-4))
		if err != nil {
			b.Fatal(err)
		}
		protos = append(protos, f...)
	}
	cls, err := NewClassifier(64, protos)
	if err != nil {
		b.Fatal(err)
	}
	q, err := e.Extract(genImage(rng, randLatent(rng), 0.1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cls.Classify(q); err != nil {
			b.Fatal(err)
		}
	}
}
