// Package kmeans trains the IVF codebook used by the inverted index.
//
// The paper (§2.2) classifies every image into one of N inverted lists by
// running "the k-mean algorithm on a set of training data set (i.e., image
// features)" and assigning each image to its nearest centroid. This package
// implements k-means++ seeding followed by Lloyd iterations, fully
// deterministic for a given seed so that index builds are reproducible.
package kmeans

import (
	"errors"
	"fmt"
	"math/rand"

	"jdvs/internal/vecmath"
)

// Config controls a training run.
type Config struct {
	// K is the number of centroids (inverted lists). Required, > 0.
	K int
	// Dim is the feature dimensionality. Required, > 0.
	Dim int
	// MaxIters bounds Lloyd iterations. Defaults to 25.
	MaxIters int
	// Tolerance stops iteration early when the mean squared centroid
	// movement falls below it. Defaults to 1e-4.
	Tolerance float64
	// Seed makes the run deterministic. A zero seed is a valid seed.
	Seed int64
}

func (c *Config) fill() error {
	if c.K <= 0 {
		return errors.New("kmeans: K must be positive")
	}
	if c.Dim <= 0 {
		return errors.New("kmeans: Dim must be positive")
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 25
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-4
	}
	return nil
}

// Codebook is a trained set of centroids: a flat row-major K×Dim matrix.
type Codebook struct {
	K         int
	Dim       int
	Centroids []float32
	// Iters is the number of Lloyd iterations actually performed.
	Iters int
}

// Assign returns the index of the centroid nearest to v.
func (cb *Codebook) Assign(v []float32) int {
	idx, _ := vecmath.NearestCentroid(v, cb.Centroids, cb.Dim)
	return idx
}

// AssignN returns the indices of the n nearest centroids in ascending
// distance order (for multi-probe search).
func (cb *Codebook) AssignN(v []float32, n int) []int {
	return vecmath.TopCentroids(v, cb.Centroids, cb.Dim, n)
}

// Centroid returns centroid i as a sub-slice of the flat matrix. Callers
// must not modify it.
func (cb *Codebook) Centroid(i int) []float32 {
	return cb.Centroids[i*cb.Dim : (i+1)*cb.Dim]
}

// Train runs k-means over the training vectors. data is a flat row-major
// matrix of n rows of cfg.Dim columns. If fewer distinct vectors than K are
// supplied, the surplus centroids are seeded from random perturbations of
// existing rows so the codebook always has exactly K usable centroids.
func Train(cfg Config, data []float32) (*Codebook, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("kmeans: data length %d is not a multiple of dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if n == 0 {
		return nil, errors.New("kmeans: no training data")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	row := func(i int) []float32 { return data[i*cfg.Dim : (i+1)*cfg.Dim] }

	centroids := seedPlusPlus(cfg, data, n, rng)

	assign := make([]int, n)
	counts := make([]int, cfg.K)
	sums := make([]float32, cfg.K*cfg.Dim)
	iters := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		iters = iter + 1
		// Assignment step.
		for i := 0; i < n; i++ {
			idx, _ := vecmath.NearestCentroid(row(i), centroids, cfg.Dim)
			assign[i] = idx
		}
		// Update step.
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			vecmath.Add(sums[c*cfg.Dim:(c+1)*cfg.Dim], row(i))
		}
		var movement float64
		for c := 0; c < cfg.K; c++ {
			dst := centroids[c*cfg.Dim : (c+1)*cfg.Dim]
			if counts[c] == 0 {
				// Empty cluster: reseed from a random data row so no
				// inverted list is permanently dead.
				src := row(rng.Intn(n))
				movement += float64(vecmath.L2Squared(dst, src))
				copy(dst, src)
				continue
			}
			inv := 1 / float32(counts[c])
			moved := float32(0)
			for d := 0; d < cfg.Dim; d++ {
				nv := sums[c*cfg.Dim+d] * inv
				diff := nv - dst[d]
				moved += diff * diff
				dst[d] = nv
			}
			movement += float64(moved)
		}
		if movement/float64(cfg.K) < cfg.Tolerance {
			break
		}
	}
	return &Codebook{K: cfg.K, Dim: cfg.Dim, Centroids: centroids, Iters: iters}, nil
}

// seedPlusPlus performs k-means++ initialisation: the first centroid is a
// uniform random row; each subsequent centroid is sampled with probability
// proportional to its squared distance from the nearest centroid chosen so
// far.
func seedPlusPlus(cfg Config, data []float32, n int, rng *rand.Rand) []float32 {
	centroids := make([]float32, cfg.K*cfg.Dim)
	row := func(i int) []float32 { return data[i*cfg.Dim : (i+1)*cfg.Dim] }

	copy(centroids[:cfg.Dim], row(rng.Intn(n)))
	// minDist[i] is the squared distance from row i to its nearest centroid
	// chosen so far; maintained incrementally so seeding is O(K·n·Dim).
	minDist := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		minDist[i] = float64(vecmath.L2Squared(row(i), centroids[:cfg.Dim]))
		total += minDist[i]
	}
	for c := 1; c < cfg.K; c++ {
		dst := centroids[c*cfg.Dim : (c+1)*cfg.Dim]
		if total == 0 {
			// All points coincide with existing centroids; perturb a random
			// row slightly so that we still end up with K distinct lists.
			src := row(rng.Intn(n))
			for d := 0; d < cfg.Dim; d++ {
				dst[d] = src[d] + float32(rng.NormFloat64()*1e-3)
			}
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i := 0; i < n; i++ {
			acc += minDist[i]
			if acc >= target {
				pick = i
				break
			}
		}
		copy(dst, row(pick))
		total = 0
		for i := 0; i < n; i++ {
			if d := float64(vecmath.L2Squared(row(i), dst)); d < minDist[i] {
				minDist[i] = d
			}
			total += minDist[i]
		}
	}
	return centroids
}
