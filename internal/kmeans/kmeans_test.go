package kmeans

import (
	"math/rand"
	"testing"

	"jdvs/internal/vecmath"
)

// gaussianBlobs generates n points around k well-separated centers.
func gaussianBlobs(rng *rand.Rand, k, n, dim int, sep, noise float64) (data []float32, centers []float32, labels []int) {
	centers = make([]float32, k*dim)
	for c := 0; c < k; c++ {
		for d := 0; d < dim; d++ {
			centers[c*dim+d] = float32(rng.NormFloat64() * sep)
		}
	}
	data = make([]float32, 0, n*dim)
	labels = make([]int, 0, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		labels = append(labels, c)
		for d := 0; d < dim; d++ {
			data = append(data, centers[c*dim+d]+float32(rng.NormFloat64()*noise))
		}
	}
	return data, centers, labels
}

func TestTrainValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		data []float32
	}{
		{"zero K", Config{K: 0, Dim: 2}, []float32{1, 2}},
		{"zero Dim", Config{K: 2, Dim: 0}, []float32{1, 2}},
		{"ragged data", Config{K: 2, Dim: 3}, []float32{1, 2}},
		{"empty data", Config{K: 2, Dim: 2}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Train(tt.cfg, tt.data); err == nil {
				t.Errorf("Train(%+v) succeeded, want error", tt.cfg)
			}
		})
	}
}

func TestTrainRecoversSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k, n, dim = 6, 1200, 8
	data, _, labels := gaussianBlobs(rng, k, n, dim, 10, 0.2)

	cb, err := Train(Config{K: k, Dim: dim, Seed: 1}, data)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if cb.K != k || cb.Dim != dim {
		t.Fatalf("codebook shape %dx%d, want %dx%d", cb.K, cb.Dim, k, dim)
	}

	// With well-separated blobs, points of the same true cluster must land
	// in the same codebook cell for the overwhelming majority of pairs.
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		assign[i] = cb.Assign(data[i*dim : (i+1)*dim])
	}
	// Majority cell per true label.
	cellOf := make(map[int]map[int]int)
	for i, lab := range labels {
		if cellOf[lab] == nil {
			cellOf[lab] = make(map[int]int)
		}
		cellOf[lab][assign[i]]++
	}
	agree := 0
	for i, lab := range labels {
		best, bestN := -1, 0
		for cell, cnt := range cellOf[lab] {
			if cnt > bestN {
				best, bestN = cell, cnt
			}
		}
		if assign[i] == best {
			agree++
		}
	}
	if frac := float64(agree) / float64(n); frac < 0.95 {
		t.Errorf("cluster purity %.3f, want >= 0.95", frac)
	}
}

// TestAssignIsNearestCentroid verifies the core IVF invariant: Assign
// always returns the argmin-distance centroid.
func TestAssignIsNearestCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const k, n, dim = 16, 400, 6
	data, _, _ := gaussianBlobs(rng, 4, n, dim, 3, 1.0)
	cb, err := Train(Config{K: k, Dim: dim, Seed: 2}, data)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for trial := 0; trial < 200; trial++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64() * 4)
		}
		got := cb.Assign(v)
		want := 0
		wantDist := vecmath.L2Squared(v, cb.Centroid(0))
		for c := 1; c < k; c++ {
			if d := vecmath.L2Squared(v, cb.Centroid(c)); d < wantDist {
				want, wantDist = c, d
			}
		}
		if got != want {
			t.Fatalf("Assign = %d (dist %v), argmin = %d (dist %v)",
				got, vecmath.L2Squared(v, cb.Centroid(got)), want, wantDist)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, _, _ := gaussianBlobs(rng, 3, 300, 4, 5, 0.5)
	a, err := Train(Config{K: 8, Dim: 4, Seed: 99}, data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(Config{K: 8, Dim: 4, Seed: 99}, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatalf("same seed produced different centroids at %d", i)
		}
	}
}

func TestTrainMoreCentroidsThanPoints(t *testing.T) {
	// 3 distinct points, 8 centroids: all centroids must still be usable
	// (no NaNs, assignment still works).
	data := []float32{0, 0, 10, 0, 0, 10}
	cb, err := Train(Config{K: 8, Dim: 2, Seed: 3}, data)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for i, v := range cb.Centroids {
		if v != v { // NaN check
			t.Fatalf("centroid component %d is NaN", i)
		}
	}
	if got := cb.Assign([]float32{9, 1}); got < 0 || got >= 8 {
		t.Fatalf("Assign out of range: %d", got)
	}
}

func TestTrainIdenticalPoints(t *testing.T) {
	// All points identical: seeding must not divide by zero.
	data := make([]float32, 50*3)
	for i := range data {
		data[i] = 1
	}
	cb, err := Train(Config{K: 4, Dim: 3, Seed: 4}, data)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if cb.Assign([]float32{1, 1, 1}) < 0 {
		t.Fatal("assignment failed")
	}
}

func TestAssignNWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data, _, _ := gaussianBlobs(rng, 4, 400, 4, 5, 0.5)
	cb, err := Train(Config{K: 16, Dim: 4, Seed: 5}, data)
	if err != nil {
		t.Fatal(err)
	}
	v := []float32{1, 2, 3, 4}
	got := cb.AssignN(v, 5)
	if len(got) != 5 {
		t.Fatalf("AssignN(5) returned %d lists", len(got))
	}
	if got[0] != cb.Assign(v) {
		t.Fatalf("AssignN[0]=%d disagrees with Assign=%d", got[0], cb.Assign(v))
	}
	seen := make(map[int]bool)
	for _, c := range got {
		if seen[c] {
			t.Fatalf("AssignN returned duplicate list %d", c)
		}
		seen[c] = true
	}
}

// TestLloydReducesInertia checks that training lowers total within-cluster
// distance versus the initial seeding (a monotonicity sanity check).
func TestLloydReducesInertia(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const k, n, dim = 8, 800, 6
	data, _, _ := gaussianBlobs(rng, k, n, dim, 6, 1.0)

	inertia := func(cb *Codebook) float64 {
		var total float64
		for i := 0; i < n; i++ {
			_, d := vecmath.NearestCentroid(data[i*dim:(i+1)*dim], cb.Centroids, dim)
			total += float64(d)
		}
		return total
	}
	one, err := Train(Config{K: k, Dim: dim, Seed: 10, MaxIters: 1}, data)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Train(Config{K: k, Dim: dim, Seed: 10, MaxIters: 30}, data)
	if err != nil {
		t.Fatal(err)
	}
	if iFull, iOne := inertia(full), inertia(one); iFull > iOne*1.001 {
		t.Errorf("30-iter inertia %.1f worse than 1-iter %.1f", iFull, iOne)
	}
}
