// Package imagestore is the image store of Fig. 2: the blob service the
// indexing pipeline pulls product images from by URL ("the images of new
// added products during the day are pulled from an image store and their
// high dimensional features are extracted").
//
// It wraps the sharded KV substrate with image-specific semantics: blobs
// are immutable once stored, and a typed miss error distinguishes "image
// not yet uploaded" (retryable) from corruption.
package imagestore

import (
	"errors"
	"fmt"
	"sync/atomic"

	"jdvs/internal/core"
	"jdvs/internal/kv"
)

// ErrNotFound is returned when no blob exists for a URL.
var ErrNotFound = errors.New("imagestore: image not found")

// Store maps image URLs to immutable encoded image blobs.
type Store struct {
	kv   *kv.Store
	gets atomic.Int64
	puts atomic.Int64
}

// New returns an empty store.
func New() *Store {
	return &Store{kv: kv.NewStore()}
}

// Put stores blob under url's canonical form (core.NormalizeURL), so a
// variant spelling of an already-uploaded URL addresses the same blob.
// Re-uploading the same URL is allowed (product photo refresh) and
// replaces the blob.
func (s *Store) Put(url string, blob []byte) error {
	if url == "" {
		return errors.New("imagestore: empty url")
	}
	s.kv.Put(core.NormalizeURL(url), blob)
	s.puts.Add(1)
	return nil
}

// Get returns the blob for url (normalised before lookup).
func (s *Store) Get(url string) ([]byte, error) {
	b, ok := s.kv.Get(core.NormalizeURL(url))
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, url)
	}
	s.gets.Add(1)
	return b, nil
}

// Has reports whether a blob exists for url (normalised before lookup).
func (s *Store) Has(url string) bool { return s.kv.Has(core.NormalizeURL(url)) }

// Len returns the number of stored images.
func (s *Store) Len() int { return s.kv.Len() }

// Stats returns cumulative get/put counts.
func (s *Store) Stats() (gets, puts int64) { return s.gets.Load(), s.puts.Load() }
