package imagestore

import (
	"errors"
	"testing"
)

func TestPutGet(t *testing.T) {
	s := New()
	if err := s.Put("jfs://a", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("jfs://a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "blob" {
		t.Fatalf("Get = %q", got)
	}
	if !s.Has("jfs://a") || s.Has("jfs://b") {
		t.Fatal("Has wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	_, err := s.Get("jfs://missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestEmptyURLRejected(t *testing.T) {
	s := New()
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty URL accepted")
	}
}

func TestReuploadReplaces(t *testing.T) {
	s := New()
	if err := s.Put("u", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("u", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("u")
	if string(got) != "v2" {
		t.Fatalf("Get = %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStats(t *testing.T) {
	s := New()
	_ = s.Put("a", []byte("1"))
	_ = s.Put("b", []byte("2"))
	_, _ = s.Get("a")
	_, _ = s.Get("missing") // misses don't count as gets
	gets, puts := s.Stats()
	if gets != 1 || puts != 2 {
		t.Fatalf("stats = %d,%d, want 1,2", gets, puts)
	}
}
