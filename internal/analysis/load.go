package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	// Standard marks GOROOT packages: loaded decl-only as type context,
	// never analyzed.
	Standard bool
	// Target marks packages named by the load patterns (as opposed to
	// dependencies pulled in for type information). Only targets get
	// diagnostics; non-standard non-targets still run analyzers so their
	// facts are available downstream.
	Target bool

	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Errors holds type-check errors. The checker refuses to run
	// analyzers over a package that failed to check.
	Errors []error

	imports []string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load lists patterns (plus their full dependency closure) with the go
// command from dir, parses every package from source, and type-checks the
// lot in dependency order — entirely offline: the only inputs are the
// module under dir and GOROOT. Test files are not loaded; the analyzers
// check production code, and fixtures seed violations in ordinary files.
//
// Standard-library dependencies are checked with IgnoreFuncBodies (their
// exported API is all dependents need), so a whole-repo load stays in the
// low seconds.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	listed, err := goList(dir, append([]string{"-e", "-deps", "-json"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	targets, err := goList(dir, append([]string{"-e", "-json"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	targetSet := map[string]bool{}
	for _, t := range targets {
		targetSet[t.ImportPath] = true
	}

	byPath := map[string]*listedPackage{}
	order := make([]string, 0, len(listed))
	for _, lp := range listed {
		if _, dup := byPath[lp.ImportPath]; dup {
			continue
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp.ImportPath)
	}

	// Topological order: dependencies before dependents. `go list -deps`
	// already emits this order, but the fact mechanism depends on it, so
	// establish it explicitly.
	sorted := topoSort(order, byPath)

	fset := token.NewFileSet()
	pkgs := make([]*Package, 0, len(sorted))
	typesByPath := map[string]*types.Package{}
	sizes := types.SizesFor("gc", runtime.GOARCH)

	for _, path := range sorted {
		lp := byPath[path]
		if lp.ImportPath == "unsafe" {
			typesByPath["unsafe"] = types.Unsafe
			pkgs = append(pkgs, &Package{ImportPath: "unsafe", Standard: true, Types: types.Unsafe})
			continue
		}
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			return nil, nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			Target:     targetSet[lp.ImportPath],
			imports:    lp.Imports,
		}
		mode := parser.ParseComments | parser.SkipObjectResolution
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, mode)
			if err != nil {
				return nil, nil, fmt.Errorf("analysis: parse %s: %w", filepath.Join(lp.Dir, name), err)
			}
			p.Files = append(p.Files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		cfg := &types.Config{
			Importer:         mapImporter(typesByPath),
			Sizes:            sizes,
			IgnoreFuncBodies: lp.Standard,
			Error:            func(err error) { p.Errors = append(p.Errors, err) },
		}
		tp, _ := cfg.Check(lp.ImportPath, fset, p.Files, info)
		p.Types = tp
		p.TypesInfo = info
		typesByPath[lp.ImportPath] = tp
		if lp.Standard {
			// Dependencies only contribute type context; drop their
			// syntax so a whole-repo load stays small.
			p.Files = nil
			p.TypesInfo = nil
			p.Errors = nil
		}
		pkgs = append(pkgs, p)
	}
	return fset, pkgs, nil
}

// mapImporter resolves imports against already-checked packages,
// including the standard library's vendored copies ("golang.org/x/..."
// inside GOROOT resolves as "vendor/golang.org/x/...").
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok && p != nil {
		return p, nil
	}
	if p, ok := m["vendor/"+path]; ok && p != nil {
		return p, nil
	}
	if p, ok := m["internal/"+path]; ok && p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("analysis: import %q not loaded", path)
}

func topoSort(order []string, byPath map[string]*listedPackage) []string {
	sorted := make([]string, 0, len(order))
	state := map[string]int{} // 0 new, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		lp, ok := byPath[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		deps := append([]string(nil), lp.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			visit(dep)
		}
		state[path] = 2
		sorted = append(sorted, path)
	}
	for _, path := range order {
		visit(path)
	}
	return sorted
}

// listCacheDir, when non-empty, holds raw `go list` output keyed by the
// invocation (dir + args). See SetListCache.
var listCacheDir string

// SetListCache directs goList to memoize its raw JSON output under dir.
// The cache key covers only the working directory and argument list, not
// the module contents, so the caller owns invalidation: it is meant for
// CI, where the cache directory itself is keyed on a hash of every .go
// file and go.mod, and a source change swaps in an empty directory.
// Passing "" disables caching (the default).
func SetListCache(dir string) { listCacheDir = dir }

// goList shells out to the go command once. CGO is disabled so the file
// lists (and the net resolver et al.) stay pure Go and type-checkable
// from source.
func goList(dir string, args []string) ([]*listedPackage, error) {
	var cachePath string
	if listCacheDir != "" {
		sum := sha256.Sum256([]byte(dir + "\x00" + joinArgs(args)))
		cachePath = filepath.Join(listCacheDir, fmt.Sprintf("golist-%x.json", sum[:12]))
		if out, err := os.ReadFile(cachePath); err == nil {
			if pkgs, err := decodeListed(out); err == nil {
				return pkgs, nil
			}
			// Corrupt entry: fall through and overwrite it.
		}
	}
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", args, err, stderr.String())
	}
	if cachePath != "" {
		// Best-effort: an unwritable cache slows the run down, nothing
		// else.
		if err := os.MkdirAll(listCacheDir, 0o755); err == nil {
			tmp := cachePath + ".tmp"
			if err := os.WriteFile(tmp, out, 0o644); err == nil {
				os.Rename(tmp, cachePath)
			}
		}
	}
	return decodeListed(out)
}

func joinArgs(args []string) string {
	var b bytes.Buffer
	for _, a := range args {
		b.WriteString(a)
		b.WriteByte(0)
	}
	return b.String()
}

func decodeListed(out []byte) ([]*listedPackage, error) {
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
