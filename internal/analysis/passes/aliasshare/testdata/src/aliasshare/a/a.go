// Package a seeds the three aliasing handoff shapes. batchRace is the
// single-flight batch-dedup race reproduced verbatim from the serving
// path's pre-fix SearchBatch; batchFixed is the shipped deep-copy fix.
package a

import (
	"fixtures/src/aliasshare/core"
	"fixtures/src/aliasshare/internal/cache"
)

// batchRace is the PR 9 shape: deduplicated queries alias the leader's
// response into every follower slot, and per-slot waiters then race on
// the shared Hits backing.
func batchRace(leaderOf []int, resps []*core.SearchResponse, errs []error) {
	for i, j := range leaderOf {
		if j == i {
			continue
		}
		errs[i] = errs[j]
		if r := resps[j]; r != nil {
			resps[i] = r // want `aliases one element of resps into another slot`
		}
	}
}

// batchFixed is the shipped fix: copy the struct, clone the Hits
// backing. The lattice tracks the per-field kill, so this is clean.
func batchFixed(leaderOf []int, resps []*core.SearchResponse, errs []error) {
	for i, j := range leaderOf {
		if j == i {
			continue
		}
		errs[i] = errs[j]
		if r := resps[j]; r != nil {
			cp := *r
			// Deep-copy the hits: batch members belong to concurrent
			// callers; aliased hit slices would race.
			cp.Hits = append([]core.Hit(nil), r.Hits...)
			resps[i] = &cp
		}
	}
}

// batchShallow copies the struct but keeps the Hits backing aliased —
// the subtle wrong version of the fix.
func batchShallow(leaderOf []int, resps []*core.SearchResponse) {
	for i, j := range leaderOf {
		if j == i {
			continue
		}
		if r := resps[j]; r != nil {
			cp := *r
			resps[i] = &cp // want `aliases one element of resps into another slot`
		}
	}
}

type resultCache struct {
	entries *cache.Cache[cached]
}

type cached struct {
	resp  []byte
	marks []int64
}

// putShared publishes a value whose slices the caller still holds.
func (rc *resultCache) putShared(key string, resp []byte, marks []int64) {
	rc.entries.Put(key, cached{resp: resp, marks: marks}, int64(len(resp))) // want `retains mutable state reachable through parameter`
}

// putCopied deep-copies before publication.
func (rc *resultCache) putCopied(key string, resp []byte, marks []int64) {
	c := cached{
		resp:  append([]byte(nil), resp...),
		marks: append([]int64(nil), marks...),
	}
	rc.entries.Put(key, c, int64(len(c.resp)))
}

// putJustified carries the escape hatch: the page bytes are write-once
// by contract.
func (rc *resultCache) putJustified(key string, resp []byte, marks []int64) {
	//jdvs:alias-ok page bytes and watermark snapshot are write-once after assembly; no producer mutation follows publication
	rc.entries.Put(key, cached{resp: resp, marks: marks}, int64(len(resp)))
}

// putFresh stores a freshly built value: clean.
func (rc *resultCache) putFresh(key string, n int) {
	c := cached{resp: make([]byte, n), marks: make([]int64, 4)}
	rc.entries.Put(key, c, int64(n))
}

type waiter struct {
	ch chan *core.SearchResponse
}

// fanoutShared broadcasts one mutable response to every waiter.
func fanoutShared(waiters []waiter, resp *core.SearchResponse) {
	for _, w := range waiters {
		w.ch <- resp // want `same mutable value is sent to a receiver on every iteration`
	}
}

// fanoutPerSlot sends each waiter its own slot: the payload names the
// loop index, so it is per-iteration.
func fanoutPerSlot(waiters []waiter, resps []*core.SearchResponse) {
	for i, w := range waiters {
		w.ch <- resps[1+i]
	}
}

// fanoutCopied sends a per-iteration deep copy.
func fanoutCopied(waiters []waiter, resp *core.SearchResponse) {
	for _, w := range waiters {
		cp := *resp
		cp.Hits = append([]core.Hit(nil), resp.Hits...)
		w.ch <- &cp
	}
}

// signalFanout broadcasts a value-free signal: nothing mutable crosses.
func signalFanout(done []chan struct{}) {
	for _, ch := range done {
		ch <- struct{}{}
	}
}

// growInPlace: s[i] = append(s[i], ...) recirculates the slot's own
// backing; no second consumer gains a reference.
func growInPlace(perPartition [][]core.Hit, h core.Hit, p int) {
	perPartition[p] = append(perPartition[p], h)
	perPartition[p] = perPartition[p][:len(perPartition[p])-1]
}

// crossSlotAppend seeds slot j's backing into slot i: still a shared
// element, still flagged.
func crossSlotAppend(perPartition [][]core.Hit, h core.Hit, i, j int) {
	perPartition[i] = append(perPartition[j], h) // want `aliases one element of perPartition into another slot`
}

// fanoutInlineLit constructs the payload at the send site: a fresh value
// per iteration even though no loop variable appears in it.
func fanoutInlineLit(waiters []waiter, err error) {
	for _, w := range waiters {
		w.ch <- &core.SearchResponse{Scanned: scannedFor(err)}
	}
}

func scannedFor(err error) int {
	if err != nil {
		return -1
	}
	return 0
}
