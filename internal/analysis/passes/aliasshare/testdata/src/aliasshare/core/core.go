// Package core mirrors the repo's hit/response types: Hit carries only
// value state, so cloning the Hits slice is a full deep copy.
package core

// Hit is one scored result.
type Hit struct {
	ID        uint32
	Score     float32
	Partition string
}

// SearchResponse is one query's results. Hits is the only reference
// field.
type SearchResponse struct {
	Hits    []Hit
	Scanned int
	Probed  int
}
