// Package cache mirrors the repo's internal/cache API surface: a
// size-bounded shared cache whose Put publishes the value to concurrent
// readers.
package cache

// Cache is a shared byte-budgeted cache.
type Cache[V any] struct {
	m map[string]V
}

// New returns a cache bounded to size bytes.
func New[V any](size int64) *Cache[V] {
	_ = size
	return &Cache[V]{m: map[string]V{}}
}

// Put stores value under key, charging bytes against the budget.
func (c *Cache[V]) Put(key string, value V, bytes int64) {
	_ = bytes
	c.m[key] = value
}

// Get returns the cached value.
func (c *Cache[V]) Get(key string) (V, bool) {
	v, ok := c.m[key]
	return v, ok
}
