// Package aliasshare flags values handed to another consumer — stored
// into the shared internal/cache.Cache, fanned out to the waiters of a
// loop, or aliased into a second slot of a shared result slice — that
// still retain mutable slice/map state reachable by the producer. The
// type system cannot see the handoff; -race sees it only on an exercised
// interleaving. This is the exact shape of the batch-dedup race fixed in
// the single-flight search path: deduplicated queries aliased one
// *SearchResponse into several response slots, and two waiters then
// raced on the shared Hits backing. The blessed fix is the deep copy
//
//	cp := *r
//	cp.Hits = append([]core.Hit(nil), r.Hits...)
//	resps[i] = &cp
//
// which the analyzer's escape/alias lattice recognizes: the dereference
// copies the parameter's interior aliasing onto cp's fields and the
// cloned append kills it field by field.
//
// Three handoff shapes are checked:
//
//   - slot aliasing: s[i] = x where x may alias another element of s —
//     two per-slot consumers now share one mutable object;
//   - cache publication: Cache.Put of a value that may alias state
//     reachable through a parameter, receiver field, package variable or
//     shared slice element;
//   - loop fan-out: a channel send inside a loop whose payload is the
//     same mutable value every iteration.
//
// Call results are assumed fresh and interface values alias-free, so the
// pass under-reports rather than cry wolf on a hard CI gate.
//
// The escape hatch is `//jdvs:alias-ok <reason>`; the reason must name
// why sharing is safe (single consumer, immutable-by-contract, etc).
package aliasshare

import (
	"go/ast"
	"go/token"
	"go/types"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "aliasshare",
	Doc:  "flag cached, fanned-out or slot-aliased values that retain producer-reachable mutable state",
	Run:  run,
}

const directive = "alias-ok"

func run(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		fn := analysis.EnclosingFunc(stack[:len(stack)-1])
		if fn == nil {
			return true
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkSlotAlias(pass, fn, s, stack)
		case *ast.CallExpr:
			checkCachePut(pass, fn, s, stack)
		case *ast.SendStmt:
			checkLoopFanout(pass, fn, s, stack)
		}
		return true
	})
	return nil
}

// checkSlotAlias flags s[i] = x where x may alias another element of s.
func checkSlotAlias(pass *analysis.Pass, fn ast.Node, as *ast.AssignStmt, stack []ast.Node) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		baseID, ok := ast.Unparen(ix.X).(*ast.Ident)
		if !ok {
			continue
		}
		baseVar, ok := pass.TypesInfo.Uses[baseID].(*types.Var)
		if !ok {
			continue
		}
		sl, ok := pass.TypesInfo.Types[ix.X].Type.Underlying().(*types.Slice)
		if !ok || !hasMutableState(sl.Elem()) {
			continue
		}
		if sameSlotRewrite(ix, as.Rhs[i]) {
			// s[i] = append(s[i], ...) and s[i] = s[i][:n] grow or trim a
			// slot in place; the alias is the slot itself, not a second
			// consumer.
			continue
		}
		al := pass.FuncAliasing(pass.FuncCFG(fn))
		for o := range al.OriginsAt(as.Rhs[i], stack) {
			if o.Kind == analysis.OriginElem && o.Obj == baseVar {
				if !pass.DirectiveAt(as.Pos(), directive) {
					pass.Reportf(as.Pos(),
						"assignment aliases one element of %s into another slot; per-slot consumers then share one mutable object — deep-copy the element first, or annotate //jdvs:alias-ok with the single-consumer argument",
						baseVar.Name())
				}
				break
			}
		}
	}
}

// sameSlotRewrite reports whether rhs rewrites the exact slot lhs names:
// an append / slice / index chain whose innermost base prints as the same
// expression as lhs. Self-rewrites recirculate the slot's own value, so
// no second consumer gains a reference.
func sameSlotRewrite(lhs *ast.IndexExpr, rhs ast.Expr) bool {
	want := types.ExprString(lhs)
	e := ast.Unparen(rhs)
	for {
		switch x := e.(type) {
		case *ast.CallExpr:
			fn, ok := ast.Unparen(x.Fun).(*ast.Ident)
			if !ok || fn.Name != "append" || len(x.Args) == 0 {
				return false
			}
			e = ast.Unparen(x.Args[0])
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		default:
			return types.ExprString(e) == want
		}
	}
}

// checkCachePut flags Cache.Put of a value that may alias
// producer-reachable mutable state.
func checkCachePut(pass *analysis.Pass, fn ast.Node, call *ast.CallExpr, stack []ast.Node) {
	if !isCachePut(pass, call) || len(call.Args) < 2 {
		return
	}
	value := call.Args[1]
	if tv, ok := pass.TypesInfo.Types[value]; !ok || !hasMutableState(tv.Type) {
		return
	}
	al := pass.FuncAliasing(pass.FuncCFG(fn))
	for o := range al.OriginsAt(value, stack) {
		var via string
		switch o.Kind {
		case analysis.OriginParam:
			via = "parameter"
		case analysis.OriginField:
			via = "receiver field"
		case analysis.OriginGlobal:
			via = "package variable"
		case analysis.OriginElem:
			via = "shared slice element"
		default:
			continue
		}
		name := ""
		if o.Obj != nil {
			name = " " + o.Obj.Name()
		}
		if !pass.DirectiveAt(call.Pos(), directive) {
			pass.Reportf(call.Pos(),
				"value stored into the shared cache retains mutable state reachable through %s%s; the producer can mutate it after publication — deep-copy before Put, or annotate //jdvs:alias-ok with the immutability argument",
				via, name)
		}
		return
	}
}

// checkLoopFanout flags a channel send inside a loop whose payload is
// the same mutable value on every iteration.
func checkLoopFanout(pass *analysis.Pass, fn ast.Node, send *ast.SendStmt, stack []ast.Node) {
	loop := enclosingLoop(stack, fn)
	if loop == nil {
		return
	}
	if tv, ok := pass.TypesInfo.Types[send.Value]; !ok || !hasMutableState(tv.Type) {
		return
	}
	// A payload naming any variable assigned by the loop is
	// per-iteration: resps[1+i] with i the range index fans out distinct
	// slots. Only a loop-invariant payload is a broadcast.
	loopVars := varsAssignedIn(pass, loop)
	variant := false
	ast.Inspect(send.Value, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && loopVars[v] {
				variant = true
			}
		}
		return !variant
	})
	if variant {
		return
	}
	// Fresh state allocated inside the loop body (no loop vars involved
	// but a per-iteration make/literal) would still be variant; origins
	// distinguish: anything non-fresh reaching the send is shared. A
	// payload constructed at the send site itself — a composite literal,
	// &literal, or call — is evaluated anew every iteration, so a Fresh
	// origin there is per-iteration, not a broadcast.
	inline := isInlineAlloc(send.Value)
	al := pass.FuncAliasing(pass.FuncCFG(fn))
	shared := false
	for o := range al.OriginsAt(send.Value, stack) {
		if o.Kind == analysis.OriginUnknown || (inline && o.Kind == analysis.OriginFresh) {
			continue
		}
		shared = true
		break
	}
	if !shared {
		return
	}
	if !pass.DirectiveAt(send.Pos(), directive) {
		pass.Reportf(send.Pos(),
			"the same mutable value is sent to a receiver on every iteration of this loop; the consumers share its slice/map state — send a per-iteration copy, or annotate //jdvs:alias-ok with the single-receiver argument")
	}
}

// isInlineAlloc reports whether e constructs its value where it stands:
// a composite literal, a pointer to one, or a call result.
func isInlineAlloc(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// enclosingLoop returns the innermost for/range statement in stack that
// is inside fn, or nil.
func enclosingLoop(stack []ast.Node, fn ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncDecl, *ast.FuncLit:
			if stack[i] == fn {
				return nil
			}
			return nil
		}
	}
	return nil
}

// varsAssignedIn collects every variable assigned anywhere in the loop:
// range key/value, init/post vars, and body assignments. Nested function
// literals are included — a per-iteration closure capture is still
// per-iteration.
func varsAssignedIn(pass *analysis.Pass, loop ast.Node) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	add := func(id *ast.Ident) {
		var obj types.Object
		if o, ok := pass.TypesInfo.Defs[id]; ok {
			obj = o
		} else if o, ok := pass.TypesInfo.Uses[id]; ok {
			obj = o
		}
		if v, ok := obj.(*types.Var); ok {
			out[v] = true
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					add(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				add(id)
			}
		case *ast.RangeStmt:
			if id, ok := s.Key.(*ast.Ident); ok {
				add(id)
			}
			if id, ok := s.Value.(*ast.Ident); ok {
				add(id)
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							add(name)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// isCachePut recognizes a Put method call on internal/cache.Cache (by
// import-path suffix, so fixture modules mirroring the layout match).
func isCachePut(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Cache" || named.Obj().Pkg() == nil {
		return false
	}
	return pathHasSuffix(named.Obj().Pkg().Path(), "internal/cache")
}

func pathHasSuffix(p, s string) bool {
	if p == s {
		return true
	}
	return len(p) > len(s) && p[len(p)-len(s)-1] == '/' && p[len(p)-len(s):] == s
}

// hasMutableState reports whether values of t carry mutable reference
// state worth protecting: slices, maps, pointers-to-structs-with-them,
// or structs containing them. Interfaces and strings do not count.
func hasMutableState(t types.Type) bool {
	return mutable(t, 0)
}

func mutable(t types.Type, depth int) bool {
	if depth > 4 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	case *types.Pointer:
		return mutable(u.Elem(), depth+1)
	case *types.Chan:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if mutable(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return mutable(u.Elem(), depth+1)
	}
	return false
}
