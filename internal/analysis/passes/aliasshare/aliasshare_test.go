package aliasshare_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/aliasshare"
)

func TestAliasShare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), aliasshare.Analyzer, "aliasshare/...")
}
