// Package knobthread enforces the knob-threading contract: a tuning knob
// added to index.Config must not silently stop at one layer. Every
// exported field of index.Config must (1) have a same-named field in
// cluster.Config — the in-process cluster harness that experiments and
// jdvs-bench drive — and (2) be referenced in cmd/jdvsd, the per-node
// daemon, where a knob becomes a flag. PRs 1–5 each threaded knobs by
// hand (SearchWorkers, PQSubvectors, RerankK, FeatureStore, SpillDir);
// this pass is what notices the one that gets forgotten.
//
// Fields that are deliberately not runtime knobs carry `//jdvs:noknob
// <reason>` on their declaration.
//
// Cross-package flow uses the checker's fact mechanism: the pass exports
// the index.Config field list when it analyzes internal/index, and the
// downstream passes (internal/cluster, cmd/jdvsd — both import
// internal/index, so dependency order guarantees the fact exists)
// consume it. Packages are identified by import-path suffix so the pass
// works identically on the real module and on test fixtures mirroring
// its layout.
package knobthread

import (
	"go/ast"
	"go/types"
	"strings"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "knobthread",
	Doc:  "every exported index.Config field must reach cluster.Config and a jdvsd flag",
	Run:  run,
}

const (
	indexPkg   = "internal/index"
	clusterPkg = "internal/cluster"
	daemonPkg  = "cmd/jdvsd"
	factKey    = "config-fields"
)

type knobField struct {
	Name   string
	Exempt bool
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	switch {
	case hasSuffix(path, indexPkg):
		fields := configFields(pass)
		if fields != nil {
			pass.ExportFact(factKey, fields)
		}
	case hasSuffix(path, clusterPkg):
		checkCluster(pass)
	case hasSuffix(path, daemonPkg):
		checkDaemon(pass)
	}
	return nil
}

func hasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// configFields extracts the exported fields of the package's Config
// struct, marking `//jdvs:noknob`-annotated ones exempt.
func configFields(pass *analysis.Pass) []knobField {
	var fields []knobField
	spec, st := findConfig(pass)
	if spec == nil {
		return nil
	}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if !name.IsExported() {
				continue
			}
			exempt := pass.DirectiveAt(name.Pos(), "noknob") || fieldDocDirective(pass, f, "noknob")
			fields = append(fields, knobField{Name: name.Name, Exempt: exempt})
		}
	}
	return fields
}

func fieldDocDirective(pass *analysis.Pass, f *ast.Field, name string) bool {
	if f.Doc == nil {
		return false
	}
	for _, c := range f.Doc.List {
		if strings.HasPrefix(c.Text, "//jdvs:"+name) {
			// Doc-comment directives bypass the line index; record the
			// hit so the directiverot audit counts them as live.
			pass.MarkDirectiveUsed(c.Pos(), name)
			return true
		}
	}
	return false
}

func findConfig(pass *analysis.Pass) (*ast.TypeSpec, *ast.StructType) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Config" {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return ts, st
				}
			}
		}
	}
	return nil, nil
}

// checkCluster requires a same-named cluster.Config field for every
// non-exempt index.Config field.
func checkCluster(pass *analysis.Pass) {
	fact, ok := pass.ImportFact(indexPkg, factKey)
	if !ok {
		return // index package not part of this load
	}
	indexFields := fact.([]knobField)
	spec, st := findConfig(pass)
	if spec == nil {
		return
	}
	have := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			have[name.Name] = true
		}
	}
	for _, f := range indexFields {
		if f.Exempt || have[f.Name] {
			continue
		}
		pass.Reportf(spec.Pos(), "index.Config.%s is not threaded into cluster.Config; add the field (and its jdvsd flag) or annotate it //jdvs:noknob in index.Config", f.Name)
	}
}

// checkDaemon requires every non-exempt index.Config field to be
// referenced as a struct-field write or composite-literal key somewhere
// in the daemon — the shape flag wiring takes. Matching is by field
// name: a knob threaded through an intermediate config (e.g.
// searcher.Config.SearchWorkers) still counts, which is the point — the
// contract is that the knob reaches the binary at all.
func checkDaemon(pass *analysis.Pass) {
	fact, ok := pass.ImportFact(indexPkg, factKey)
	if !ok {
		return
	}
	indexFields := fact.([]knobField)

	referenced := map[string]bool{}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v.IsField() {
			referenced[id.Name] = true
		}
		return true
	})
	pos := pass.Files[0].Name.Pos()
	for _, f := range indexFields {
		if f.Exempt || referenced[f.Name] {
			continue
		}
		pass.Reportf(pos, "index.Config.%s is not surfaced as a jdvsd flag (no field reference in this package); wire a flag or annotate it //jdvs:noknob in index.Config", f.Name)
	}
}
