// Package index mirrors the repo's internal/index config surface.
package index

// Config carries per-shard knobs.
type Config struct {
	// Dim is threaded everywhere.
	Dim int
	// NProbe is threaded into cluster.Config but never became a daemon
	// flag.
	NProbe int
	// ListCap never left this package.
	ListCap int
	// ScratchSlack is a build-time tuning constant, deliberately not a
	// runtime knob.
	//jdvs:noknob build-time constant, not runtime-tunable
	ScratchSlack int

	internalState int
}

// New uses cfg.
func New(cfg Config) int { return cfg.Dim + cfg.NProbe + cfg.ListCap + cfg.ScratchSlack }
