// Package cluster mirrors the repo's in-process cluster config layer.
package cluster

import "fixtures/src/knobthread/internal/index"

// Config threads shard knobs to the harness — except ListCap, which was
// forgotten.
type Config struct { // want `index\.Config\.ListCap is not threaded into cluster\.Config`
	Partitions int
	Dim        int
	NProbe     int
}

// Boot builds a shard config from the cluster one.
func Boot(cfg Config) int {
	return index.New(index.Config{Dim: cfg.Dim, NProbe: cfg.NProbe})
}
