// Command jdvsd mirrors the repo's per-node daemon: knobs surface here
// as flags. Dim is wired; NProbe and ListCap are not.
package main // want `index\.Config\.NProbe is not surfaced as a jdvsd flag` `index\.Config\.ListCap is not surfaced as a jdvsd flag`

import (
	"flag"

	"fixtures/src/knobthread/internal/index"
)

func main() {
	dim := flag.Int("dim", 64, "feature dimensionality")
	flag.Parse()
	index.New(index.Config{Dim: *dim})
}
