package knobthread_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/knobthread"
)

func TestKnobThread(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), knobthread.Analyzer, "knobthread/...")
}
