package a

type node struct {
	val  int
	next *node
}

func badField(p *node) int {
	if p == nil {
		return p.val // want `nil dereference in field selection`
	}
	return p.val
}

func badElse(p *node) int {
	if p != nil {
		return p.val
	} else {
		return p.val // want `nil dereference in field selection`
	}
}

func badLoad(p *node) node {
	if p == nil {
		return *p // want `nil dereference in load`
	}
	return *p
}

func badCall(fn func() int) int {
	if fn == nil {
		return fn() // want `call of nil function`
	}
	return fn()
}

func badIndex(xs []int) int {
	if xs == nil {
		return xs[0] // want `index of nil slice`
	}
	return xs[0]
}

func okReassigned(p *node) int {
	if p == nil {
		p = &node{}
		return p.val
	}
	return p.val
}

func okMethodOnNil(p *node) int {
	// Method calls on nil receivers are legal; walk handles nil.
	if p == nil {
		return p.walk()
	}
	return p.walk()
}

func (p *node) walk() int {
	if p == nil {
		return 0
	}
	return p.val
}

func okMapRead(m map[string]int) int {
	// Reading a nil map is defined behavior.
	if m == nil {
		return m["k"]
	}
	return m["k"]
}
