package nilness_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nilness.Analyzer, "nilness/...")
}
