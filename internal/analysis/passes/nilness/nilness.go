// Package nilness is a stdlib-only stand-in for the stock
// golang.org/x/tools nilness pass (the build environment is offline, so
// the x/tools module cannot be fetched). It covers the subset of the
// stock pass that has bitten this codebase: dereferencing a value inside
// the branch that just proved it nil.
//
// The pass matches `if x == nil { ... }` (and the else arm of
// `if x != nil`) and reports field selections, calls, index expressions
// and explicit dereferences of x inside that branch, up to the first
// reassignment of x. It is intraprocedural and syntactic — no SSA — so
// it catches strictly fewer bugs than the stock pass and no extra ones.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "report dereferences of values the guarding condition proved nil (lite, stdlib-only)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		obj, eq := nilComparison(pass, ifStmt.Cond)
		if obj == nil {
			return true
		}
		var branch *ast.BlockStmt
		if eq {
			branch = ifStmt.Body
		} else if b, ok := ifStmt.Else.(*ast.BlockStmt); ok {
			branch = b
		}
		if branch == nil {
			return true
		}
		checkBranch(pass, branch, obj)
		return true
	})
	return nil
}

// nilComparison matches `x == nil` (eq=true) and `x != nil` (eq=false)
// for an identifier x of a nilable type.
func nilComparison(pass *analysis.Pass, cond ast.Expr) (types.Object, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	expr, other := bin.X, bin.Y
	if tv, ok := pass.TypesInfo.Types[other]; !ok || !tv.IsNil() {
		if tv, ok := pass.TypesInfo.Types[expr]; !ok || !tv.IsNil() {
			return nil, false
		}
		expr, other = other, expr
	}
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, false
	}
	return obj, bin.Op == token.EQL
}

// checkBranch reports dereferences of obj inside branch that occur
// before any reassignment of obj.
func checkBranch(pass *analysis.Pass, branch *ast.BlockStmt, obj types.Object) {
	// Find the first position at which obj is assigned a new value
	// inside the branch; uses beyond it are no longer provably nil.
	killed := token.Pos(0)
	ast.Inspect(branch, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj {
					if killed == 0 || as.Pos() < killed {
						killed = as.Pos()
					}
				}
			}
		}
		return true
	})

	ast.Inspect(branch, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SelectorExpr:
			if isObjUse(pass, v.X, obj) && inRange(v.Pos(), killed) {
				// Only field selections through a pointer panic; method
				// calls on nil receivers are legal Go.
				if sel, ok := pass.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal {
					if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
						pass.Reportf(v.Pos(), "nil dereference in field selection")
					}
				}
			}
		case *ast.StarExpr:
			if isObjUse(pass, v.X, obj) && inRange(v.Pos(), killed) {
				pass.Reportf(v.Pos(), "nil dereference in load")
			}
		case *ast.CallExpr:
			if isObjUse(pass, v.Fun, obj) && inRange(v.Pos(), killed) {
				pass.Reportf(v.Pos(), "call of nil function")
			}
		case *ast.IndexExpr:
			if isObjUse(pass, v.X, obj) && inRange(v.Pos(), killed) {
				switch obj.Type().Underlying().(type) {
				case *types.Slice:
					pass.Reportf(v.Pos(), "index of nil slice")
				}
			}
		}
		return true
	})
}

func isObjUse(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func inRange(pos, killed token.Pos) bool {
	return killed == 0 || pos < killed
}
