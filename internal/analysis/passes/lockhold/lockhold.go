// Package lockhold enforces the no-blocking-under-lock contract on the
// shard, broker and stream-session mutexes: a critical section guards
// in-memory state transitions, never I/O. An RPC, channel operation,
// file/mmap write or sleep inside one stalls every reader and writer
// behind the lock — in this codebase that means queries missing their
// deadline because a snapshot chunk was draining to disk under the
// session mutex.
//
// The pass is a per-function, source-order approximation: it tracks
// mutexes locked and unlocked in the function body (a deferred unlock
// holds to function end), and flags blocking operations — calls into
// net/rpc-like packages, file and io operations, time.Sleep,
// WaitGroup.Wait, channel sends/receives, and selects without a default
// — issued while any mutex is held. Closures are analyzed as their own
// (unlocked) functions, so blocking work handed to another goroutine is
// fine; a helper that blocks, called under the lock, is missed — keep
// critical sections small enough to read. `//jdvs:blocking-ok <reason>`
// on the operation (or the enclosing function declaration) asserts the
// operation cannot actually block there.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation (RPC, channel op, file/mmap I/O, sleep) while holding a mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		c.fn = n
		c.stmts(body.List, map[string]token.Pos{})
		return true // nested FuncLits start their own (empty) lock state
	})
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   ast.Node
}

// stmts processes a statement list in source order, threading the held
// set through; it returns the set as of the end of the list.
func (c *checker) stmts(list []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	for _, s := range list {
		held = c.stmt(s, held)
	}
	return held
}

func (c *checker) branch(s ast.Stmt, held map[string]token.Pos) {
	if s == nil {
		return
	}
	cp := make(map[string]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	c.stmt(s, cp)
}

func (c *checker) stmt(s ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := c.mutexOp(st.X); ok {
			switch op {
			case "lock":
				held[key] = st.Pos()
			case "unlock":
				delete(held, key)
			}
			return held
		}
		c.scan(st.X, held)
	case *ast.DeferStmt:
		// A deferred unlock means "held to function end", which the
		// default (never removing the key) already models. Other
		// deferred work runs during return with unknowable ordering
		// against deferred unlocks; it is not checked.
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks;
		// its body is analyzed as its own function.
	case *ast.SendStmt:
		c.reportBlocked(st.Pos(), "channel send", held)
		c.scan(st.Chan, held)
		c.scan(st.Value, held)
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.ReturnStmt, *ast.DeclStmt:
		c.scan(s, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = c.stmt(st.Init, held)
		}
		c.scan(st.Cond, held)
		c.branch(st.Body, held)
		c.branch(st.Else, held)
	case *ast.ForStmt:
		if st.Init != nil {
			held = c.stmt(st.Init, held)
		}
		if st.Cond != nil {
			c.scan(st.Cond, held)
		}
		c.branch(st.Body, held)
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[st.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				c.reportBlocked(st.Pos(), "channel receive (range)", held)
			}
		}
		c.scan(st.X, held)
		c.branch(st.Body, held)
	case *ast.BlockStmt:
		held = c.stmts(st.List, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.reportBlocked(st.Pos(), "select without default", held)
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				for _, b := range cc.Body {
					c.branch(b, held)
				}
			}
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = c.stmt(st.Init, held)
		}
		if st.Tag != nil {
			c.scan(st.Tag, held)
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					c.branch(b, held)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					c.branch(b, held)
				}
			}
		}
	case *ast.LabeledStmt:
		held = c.stmt(st.Stmt, held)
	}
	return held
}

// scan walks an expression (or expression-bearing statement) for
// blocking operations, without descending into function literals.
func (c *checker) scan(n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				c.reportBlocked(v.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if desc, ok := c.blockingCall(v); ok {
				c.reportBlocked(v.Pos(), desc, held)
			}
		}
		return true
	})
}

func (c *checker) reportBlocked(pos token.Pos, what string, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	if c.pass.DirectiveAt(pos, "blocking-ok") || c.pass.FuncDirective(c.fn, "blocking-ok") {
		return
	}
	// Name one held mutex (the earliest-locked) for the message.
	var key string
	var at token.Pos
	for k, p := range held {
		if key == "" || p < at {
			key, at = k, p
		}
	}
	c.pass.Reportf(pos, "%s while holding %s (locked at %s); move it outside the critical section or annotate //jdvs:blocking-ok", what, strings.TrimSuffix(strings.TrimSuffix(key, "/W"), "/R"), c.pass.Fset.Position(at))
}

// mutexOp classifies e as a lock or unlock call on a sync mutex,
// returning a key identifying (mutex expression, read-vs-write class).
func (c *checker) mutexOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := c.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	rt := recv.Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	rname := ""
	if named, isNamed := rt.(*types.Named); isNamed {
		rname = named.Obj().Name()
	}
	if rname != "Mutex" && rname != "RWMutex" && rname != "Locker" {
		return "", "", false
	}
	base := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return base + "/W", "lock", true
	case "RLock":
		return base + "/R", "lock", true
	case "Unlock":
		return base + "/W", "unlock", true
	case "RUnlock":
		return base + "/R", "unlock", true
	}
	return "", "", false
}

// blockingPkgs block on (nearly) every call.
var blockingPkgs = map[string]bool{
	"net/http": true,
	"net/rpc":  true,
	"os/exec":  true,
}

// blockingFuncs lists (package, function-or-method) pairs that block.
var blockingFuncs = map[string]map[string]bool{
	"time": {"Sleep": true},
	"os": {
		"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
		"WriteString": true, "Sync": true, "Truncate": true,
		"ReadFile": true, "WriteFile": true, "Open": true, "OpenFile": true,
		"Create": true, "CreateTemp": true, "Rename": true, "Remove": true,
		"RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	},
	"io": {
		"Read": true, "Write": true, "ReadByte": true, "WriteByte": true,
		"ReadRune": true, "ReadFull": true, "ReadAll": true, "Copy": true,
		"CopyN": true, "CopyBuffer": true, "WriteString": true,
	},
	"bufio": {"Flush": true},
	// net.Conn/Listener I/O entry points. Close and Addr accessors are
	// deliberately absent: Close on a TCP conn without SO_LINGER does
	// not block, and flagging it forbids the common close-under-mutex
	// shutdown idiom for no latency win.
	"net": {
		"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
		"Accept": true, "AcceptTCP": true, "Dial": true, "DialTimeout": true,
		"Listen": true, "ListenTCP": true, "ListenPacket": true,
	},
	"syscall": {
		"Read": true, "Write": true, "Pread": true, "Pwrite": true,
		"Fsync": true, "Ftruncate": true, "Fallocate": true,
		"Mmap": true, "Munmap": true,
	},
}

// blockingCall classifies a call as blocking. The callee must resolve to
// a named function or method; calls through function values are not
// classified (their declarations are checked where they block).
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := c.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	// Project RPC layers: any package whose import path ends in "rpc"
	// talks to sockets on every exported entry point. Calls within the
	// rpc package to its own helpers are exempt — their bodies are
	// analyzed directly, and most are in-memory bookkeeping.
	if last := path[strings.LastIndex(path, "/")+1:]; last == "rpc" && !blockingPkgs[path] && path != c.pass.Pkg.Path() {
		return "RPC call " + name, true
	}
	if blockingPkgs[path] {
		return "call to " + path + "." + name, true
	}
	if path == "sync" {
		recv := fn.Type().(*types.Signature).Recv()
		if name == "Wait" && recv != nil && strings.Contains(types.TypeString(recv.Type(), nil), "WaitGroup") {
			return "WaitGroup.Wait", true
		}
		return "", false
	}
	if names, ok := blockingFuncs[path]; ok && names[name] {
		return "call to " + path + "." + name, true
	}
	return "", false
}

// calleeFunc resolves the called function or method object.
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := c.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
