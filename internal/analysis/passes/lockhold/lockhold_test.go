package lockhold_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockhold.Analyzer, "lockhold/...")
}
