// Package a seeds blocking operations inside and outside mutex critical
// sections.
package a

import (
	"os"
	"sync"
	"time"

	"fixtures/src/lockhold/rpc"
)

type session struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	state   int
	cli     *rpc.Client
	f       *os.File
	updates chan int
	done    chan struct{}
}

// badRPCUnderLock is the canonical violation: a socket round trip while
// every other session operation queues behind mu.
func (s *session) badRPCUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.cli.Call("x", nil) // want `RPC call Call while holding s.mu`
	return err
}

func (s *session) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding s.mu`
	s.mu.Unlock()
}

func (s *session) badFileWrite(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Write(b) // want `os.Write while holding s.mu`
	return err
}

func (s *session) badChanSend(v int) {
	s.mu.Lock()
	s.updates <- v // want `channel send while holding s.mu`
	s.mu.Unlock()
}

func (s *session) badChanRecv() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.updates // want `channel receive while holding s.rw`
}

func (s *session) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while holding s.mu`
	case <-s.done:
	case v := <-s.updates:
		s.state = v
	}
}

// okUnlockFirst releases the mutex before the round trip.
func (s *session) okUnlockFirst() error {
	s.mu.Lock()
	method := "x"
	s.mu.Unlock()
	_, err := s.cli.Call(method, nil)
	return err
}

// okBranchUnlock: the early-return path unlocks before blocking.
func (s *session) okBranchUnlock(fast bool) error {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		_, err := s.cli.Call("fast", nil)
		return err
	}
	s.state++
	s.mu.Unlock()
	return nil
}

// okNonBlockingSelect: a default arm makes the select a poll.
func (s *session) okNonBlockingSelect() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// okGoroutine: the blocking work runs on a fresh goroutine that holds no
// lock.
func (s *session) okGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_, _ = s.cli.Call("async", nil)
	}()
}

// okAnnotated asserts the send cannot block (buffered, sized to the
// maximum outstanding count).
func (s *session) okAnnotated(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updates <- v //jdvs:blocking-ok buffer sized to max outstanding updates
}

// okNoLock blocks freely with nothing held.
func (s *session) okNoLock() {
	time.Sleep(time.Millisecond)
	<-s.done
}
