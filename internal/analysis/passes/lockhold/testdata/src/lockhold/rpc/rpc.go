// Package rpc stands in for the project's RPC layer: every entry point
// talks to a socket.
package rpc

type Client struct{}

func (c *Client) Call(method string, body []byte) ([]byte, error) { return body, nil }

func Dial(addr string) (*Client, error) { return &Client{}, nil }
