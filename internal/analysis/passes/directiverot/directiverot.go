// Package directiverot audits the `//jdvs:` escape hatches themselves.
// A directive is a claim that an invariant holds for reasons its
// analyzer cannot see; the claim rots when the code it excused changes.
// Three states are flagged:
//
//   - unknown name: the directive matches no registered analyzer, so it
//     suppresses nothing and never did (usually a typo: //jdvs:nolok);
//   - missing justification: the directive carries no reason text, so
//     the next reader cannot re-evaluate the claim;
//   - dead suppression: the directive's analyzer ran in this invocation
//     and hit no finding on the directive's lines — the code it excused
//     is gone or was fixed, and the stale annotation now only misleads.
//
// Dead-suppression auditing needs the owning analyzer's hits, so the
// checker shares one directive index per package across the whole suite
// and registers directiverot last. A `-only directiverot` run skips the
// dead check (the owners did not run) and still reports unknown names
// and missing reasons.
//
// directiverot has no escape hatch of its own: deleting or re-justifying
// the directive is the fix.
package directiverot

import (
	"sort"
	"strings"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "directiverot",
	Doc:  "flag //jdvs: directives that are unknown, unjustified, or no longer suppress any finding",
	Run:  run,
}

// owners maps each directive name to the analyzer whose findings it
// suppresses. New analyzers with escape hatches register here.
var owners = map[string]string{
	"nolock":      "atomicmix",
	"pinned":      "mmappin",
	"blocking-ok": "lockhold",
	"noknob":      "knobthread",
	"nostat":      "statcount",
	"publish-ok":  "publishorder",
	"alias-ok":    "aliasshare",
	"pool-ok":     "poolreturn",
	"timer-ok":    "timerstop",
}

func run(pass *analysis.Pass) error {
	for _, d := range pass.Directives() {
		owner, ok := owners[d.Name]
		if !ok {
			pass.Reportf(d.Pos,
				"unknown directive //jdvs:%s suppresses nothing (known: %s); fix the name or delete it",
				d.Name, knownNames())
			continue
		}
		if d.Reason == "" {
			pass.Reportf(d.Pos,
				"//jdvs:%s has no justification; state why the %s invariant holds here so the claim can be re-evaluated",
				d.Name, owner)
		}
		if d.Hits == 0 && pass.SuiteContains(owner) {
			pass.Reportf(d.Pos,
				"//jdvs:%s suppresses no %s finding on this line; the code it excused is gone — delete the directive",
				d.Name, owner)
		}
	}
	return nil
}

func knownNames() string {
	names := make([]string, 0, len(owners))
	for n := range owners {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
