package directiverot_test

import (
	"testing"

	"jdvs/internal/analysis"
	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/directiverot"
	"jdvs/internal/analysis/passes/timerstop"
)

// TestDirectiveRot runs the audit behind a live owner (timerstop), the
// way the checker always runs it: last, over the shared directive index.
func TestDirectiveRot(t *testing.T) {
	analysistest.RunSuite(t, analysistest.TestData(t),
		[]*analysis.Analyzer{timerstop.Analyzer, directiverot.Analyzer},
		"directiverot/...")
}
