// Package a seeds directive states: live, stale, unjustified, unknown.
// The test runs the suite [timerstop, directiverot], so timer-ok
// directives have a live owner.
package a

import "time"

func work()          {}
func done() chan int { return nil }

// liveDirective suppresses a real timerstop finding and carries a
// reason: both audits pass.
func liveDirective(d time.Duration) {
	for {
		select {
		case <-done():
			return
		//jdvs:timer-ok the loop exits after the first tick in every configuration
		case <-time.After(d):
			work()
		}
	}
}

// staleDirective excuses code that no longer violates anything.
func staleDirective(d time.Duration) {
	//jdvs:timer-ok this drain used to sit in the accept loop // want `suppresses no timerstop finding`
	t := time.NewTimer(d)
	<-t.C
	work()
}

// unjustified suppresses a live finding but gives the next reader
// nothing to re-evaluate.
func unjustified(d time.Duration) {
	for {
		select {
		case <-done():
			return
		/* want `has no justification` */ //jdvs:timer-ok
		case <-time.After(d):
			work()
		}
	}
}

// typoDirective names no analyzer.
func typoDirective() {
	//jdvs:timer-okk stop is deferred upstream // want `unknown directive`
	work()
}
