// Package atomicmix enforces the first rule of the shard's lock-free
// publish protocol: a word that is ever accessed through sync/atomic is
// atomic forever. chunkMat, the inverted lists and every Stats counter
// publish plain writes to readers via an atomic store; a single plain
// load or store of the same word reintroduces the data race the protocol
// exists to prevent — and -race only catches it on an exercised
// interleaving.
//
// Two access styles are checked:
//
//   - Function-style atomics: any field or variable passed by address to
//     a sync/atomic function (atomic.AddInt64(&s.n, 1), ...) must be
//     accessed through sync/atomic everywhere in the package. Plain
//     reads and writes are flagged. Sites that are provably
//     pre-publication (a constructor filling a struct nothing else can
//     see yet) carry a `//jdvs:nolock <reason>` annotation.
//
//   - Typed atomics (atomic.Int64, atomic.Pointer[T], ...): the checker
//     flags uses that go around the method set — copying the value,
//     comparing it, or ranging over a slice of them — which silently
//     read the underlying word non-atomically. (go vet's copylocks
//     catches assignment copies; comparison and range escape it.)
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag plain accesses to words that are accessed atomically elsewhere",
	Run:  run,
}

// atomicFuncPrefixes are the sync/atomic function families that take the
// address of the word.
var atomicFuncPrefixes = []string{
	"Add", "And", "Or", "CompareAndSwap", "Load", "Store", "Swap",
}

func run(pass *analysis.Pass) error {
	atomicWords := map[types.Object]token.Pos{}

	// Pass 1: every &x handed to a sync/atomic function marks x's
	// variable as an atomic word.
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicFunc(pass, call) || len(call.Args) == 0 {
			return true
		}
		if obj := addressedVar(pass, call.Args[0]); obj != nil {
			if _, seen := atomicWords[obj]; !seen {
				atomicWords[obj] = call.Pos()
			}
		}
		return true
	})

	// Pass 2: any other use of those variables must itself be atomic.
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, watched := atomicWords[obj]; !watched {
			return true
		}
		if ctx := classifyUse(pass, stack); ctx != "" {
			if !pass.DirectiveAt(id.Pos(), "nolock") {
				pass.Reportf(id.Pos(), "plain %s of %s, which is accessed atomically elsewhere in this package; use sync/atomic or annotate //jdvs:nolock with the publication argument", ctx, id.Name)
			}
		}
		return true
	})

	// Typed atomics: flag value-style uses that bypass the method set.
	checkTypedAtomics(pass)
	return nil
}

// isAtomicFunc reports whether call invokes a sync/atomic package-level
// function from one of the address-taking families.
func isAtomicFunc(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	if obj.Type().(*types.Signature).Recv() != nil {
		return false // typed-atomic method, e.g. (*Int64).Add
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(obj.Name(), p) {
			return true
		}
	}
	return false
}

// addressedVar resolves &x (through parens and indexing) to the variable
// or struct field being atomically accessed.
func addressedVar(pass *analysis.Pass, arg ast.Expr) types.Object {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	expr := ast.Unparen(un.X)
	for {
		if ix, ok := expr.(*ast.IndexExpr); ok {
			expr = ast.Unparen(ix.X)
			continue
		}
		break
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// classifyUse decides whether the identifier use at the top of stack is a
// plain (non-atomic) access, returning "read"/"write" when it is and ""
// when it is a legitimate atomic operand or another allowed context.
func classifyUse(pass *analysis.Pass, stack []ast.Node) string {
	// Walk outward from the ident through the expression that denotes
	// the variable (selector/index/paren chains).
	i := len(stack) - 1
	expr := stack[i].(ast.Expr)
	for i > 0 {
		parent := stack[i-1]
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if p.Sel == expr {
				// ident is the field being selected: the denoted
				// variable is the whole selector.
				expr, i = p, i-1
				continue
			}
			if p.X == expr {
				// ident is the receiver; the watched word is accessed
				// via a further selection — not a use of the word
				// itself... unless the selection denotes the watched
				// field, handled when the Sel ident is visited.
				return ""
			}
		case *ast.IndexExpr:
			if p.X == expr {
				expr, i = p, i-1
				continue
			}
		case *ast.ParenExpr:
			expr, i = p, i-1
			continue
		}
		break
	}
	if i == 0 {
		return ""
	}
	switch p := stack[i-1].(type) {
	case *ast.UnaryExpr:
		if p.Op != token.AND {
			return "read"
		}
		// &x: legitimate when the address feeds a sync/atomic call
		// (directly — atomic.Add(&x, 1)); passing the address elsewhere
		// is allowed, the accesses through it are checked at their own
		// sites.
		return ""
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == expr {
				return "write"
			}
		}
		return "read"
	case *ast.IncDecStmt:
		return "write"
	case *ast.KeyValueExpr:
		if p.Key == expr {
			// Composite-literal field key: the literal is a fresh,
			// unpublished value.
			return ""
		}
		return "read"
	case *ast.ValueSpec, *ast.Field:
		return "" // declaration
	default:
		return "read"
	}
}

// checkTypedAtomics flags uses of sync/atomic struct types (atomic.Int64
// et al.) as plain values.
func checkTypedAtomics(pass *analysis.Pass) {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok || !isTypedAtomic(pass, expr) {
			return true
		}
		// Only variable-denoting expressions; skip type names and
		// nested sub-expressions handled at their outermost node.
		switch expr.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch p := stack[len(stack)-2].(type) {
		case *ast.SelectorExpr:
			// p.X == expr: method access (x.counter.Load()); p.Sel ==
			// expr: the enclosing selector denotes the same value and is
			// classified itself.
			return true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return true // &x.counter: pointer use is fine
			}
		case *ast.IndexExpr:
			if p.X == expr {
				return true // elem of an atomic-typed array: ring[i]
			}
		case *ast.ValueSpec, *ast.Field, *ast.CompositeLit, *ast.ArrayType, *ast.StarExpr, *ast.MapType, *ast.ChanType, *ast.FuncType:
			return true // type or declaration position
		case *ast.RangeStmt:
			return true // range-value copies are reported separately
		}
		if pass.DirectiveAt(expr.Pos(), "nolock") {
			return true
		}
		pass.Reportf(expr.Pos(), "sync/atomic value used as a plain value (copied or compared); go through its method set")
		return true
	})

	// Ranging over a slice/array of atomics copies each element.
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || rng.Value == nil {
			return true
		}
		var vt types.Type
		if id, ok := rng.Value.(*ast.Ident); ok {
			if def := pass.TypesInfo.Defs[id]; def != nil {
				vt = def.Type()
			} else if use := pass.TypesInfo.Uses[id]; use != nil {
				vt = use.Type()
			}
		} else if tv, ok := pass.TypesInfo.Types[rng.Value]; ok {
			vt = tv.Type
		}
		if vt != nil && isAtomicNamed(vt) {
			if !pass.DirectiveAt(rng.Value.Pos(), "nolock") {
				pass.Reportf(rng.Value.Pos(), "range value copies sync/atomic elements; range over indices instead")
			}
		}
		return true
	})
}

func isTypedAtomic(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsType() || !tv.IsValue() {
		return false
	}
	return isAtomicNamed(tv.Type)
}

func isAtomicNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
