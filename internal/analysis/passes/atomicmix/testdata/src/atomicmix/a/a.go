// Package a seeds mixed plain/atomic accesses for the atomicmix
// analyzer: the publish counter of a chunkMat-style matrix accessed with
// and without sync/atomic.
package a

import "sync/atomic"

var published int64

type mat struct {
	length int64
	rows   []float64
	plain  int // never touched atomically: free to access directly
	typed  atomic.Int64
	ring   []atomic.Int64
}

// append publishes a row with the atomic-length protocol.
func (m *mat) append(v float64) {
	m.rows = append(m.rows, v)
	atomic.AddInt64(&m.length, 1)
	atomic.AddInt64(&published, 1)
}

func (m *mat) lenAtomic() int64 { return atomic.LoadInt64(&m.length) }

// badLen reads the published length without the atomic load the writer
// pairs with.
func (m *mat) badLen() int64 {
	return m.length // want `plain read of length, which is accessed atomically elsewhere`
}

// badReset writes the counter plainly.
func (m *mat) badReset() {
	m.length = 0 // want `plain write of length, which is accessed atomically elsewhere`
	m.length++   // want `plain write of length, which is accessed atomically elsewhere`
}

func badGlobal() int64 {
	return published // want `plain read of published, which is accessed atomically elsewhere`
}

// initBeforePublish is a constructor: nothing else can see m yet, which
// is exactly what the nolock annotation asserts.
func initBeforePublish() *mat {
	m := &mat{}
	m.length = 0 //jdvs:nolock fresh value, not yet published
	return m
}

func (m *mat) plainFieldOK() int {
	m.plain++
	return m.plain
}

// Typed atomics: the method set is the only legal access.
func (m *mat) typedOK() int64 {
	m.typed.Add(1)
	return m.typed.Load()
}

func (m *mat) typedCopy() int64 {
	x := m.typed // want `plain value`
	return x.Load()
}

func (m *mat) typedCompare(o *mat) bool {
	return m.typed == o.typed // want `plain value` `plain value`
}

func (m *mat) typedRange() int64 {
	var sum int64
	for _, slot := range m.ring { // want `range value copies sync/atomic elements`
		sum += slot.Load()
	}
	for i := range m.ring {
		sum += m.ring[i].Load()
	}
	return sum
}

func (m *mat) typedAddr() *atomic.Int64 { return &m.typed }
