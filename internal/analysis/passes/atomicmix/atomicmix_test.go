package atomicmix_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicmix.Analyzer, "atomicmix/...")
}
