package mmappin_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/mmappin"
)

func TestMmapPin(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), mmappin.Analyzer, "mmappin/...")
}
