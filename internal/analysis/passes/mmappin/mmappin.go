// Package mmappin enforces the mmap finalizer-pinning contract from the
// feature-row tiering work: a raw row handed out by a rowStore may point
// into mmap'd memory whose finalizer unmaps it the moment the owning
// shard becomes unreachable — which, under Go's precise liveness, can
// happen while a method on that very shard is still running. Any
// function that obtains rows (calls .Row or takes the method value) must
// therefore either pin the owner with runtime.KeepAlive after the last
// row use, or be annotated `//jdvs:pinned <why the caller holds the
// pin>` when it hands rows to a caller that is contractually pinned.
//
// The checker is presence-based (a KeepAlive anywhere in the function
// satisfies it): ordering bugs stay on the human, but the one failure
// mode PR 5 actually hit — a row-dereferencing function with no pin at
// all — can't come back silently.
package mmappin

import (
	"go/ast"
	"go/types"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mmappin",
	Doc:  "functions reading raw rowStore rows must runtime.KeepAlive the owner or be annotated //jdvs:pinned",
	Run:  run,
}

// rowStoreTypes are the type names whose Row method yields possibly
// mmap-backed memory. featMat rows are heap chunks and chunkMat is the
// generic heap core, so neither is listed; the interface is, because a
// rowStore-typed value may be the mmap store.
var rowStoreTypes = map[string]bool{
	"rowStore": true,
	"mmapMat":  true,
}

func run(pass *analysis.Pass) error {
	type funcInfo struct {
		rowUses []ast.Node
		pinned  bool
	}
	funcs := map[ast.Node]*funcInfo{}
	var order []ast.Node
	// parentFunc records lexical nesting so a KeepAlive in an enclosing
	// function also covers closures it contains.
	parentFunc := map[ast.Node]ast.Node{}

	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if _, ok := funcs[n]; !ok {
				funcs[n] = &funcInfo{}
				order = append(order, n)
				if outer := analysis.EnclosingFunc(stack[:len(stack)-1]); outer != nil {
					parentFunc[n] = outer
				}
			}
			return true
		}
		fn := analysis.EnclosingFunc(stack)
		if fn == nil {
			return true
		}
		fi := funcs[fn]
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == "Row" && isRowStoreRecv(pass, e) && !isRowDecl(fn, e) {
				fi.rowUses = append(fi.rowUses, e)
			}
			if isKeepAlive(pass, e) {
				fi.pinned = true
			}
		}
		return true
	})

	for _, fn := range order {
		fi := funcs[fn]
		if len(fi.rowUses) == 0 {
			continue
		}
		covered := fi.pinned
		for p := parentFunc[fn]; !covered && p != nil; p = parentFunc[p] {
			covered = funcs[p].pinned
		}
		if covered || pass.FuncDirective(fn, "pinned") {
			continue
		}
		for _, use := range fi.rowUses {
			pass.Reportf(use.Pos(), "raw row obtained from a rowStore without pinning its owner: add runtime.KeepAlive(<owner>) after the last row use, or annotate the function //jdvs:pinned with the caller's pin")
		}
	}
	return nil
}

// isRowStoreRecv reports whether sel's receiver is (a pointer to) one of
// the row-yielding store types.
func isRowStoreRecv(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return rowStoreTypes[named.Obj().Name()]
}

// isRowDecl reports whether fn is a method on one of the store types
// themselves: the store's own implementation manages the mapping's
// lifetime and is reviewed as such, not via call-site pins.
func isRowDecl(fn ast.Node, _ *ast.SelectorExpr) bool {
	decl, ok := fn.(*ast.FuncDecl)
	if !ok || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X // generic receiver
	}
	id, ok := t.(*ast.Ident)
	return ok && rowStoreTypes[id.Name]
}

// isKeepAlive reports whether sel denotes runtime.KeepAlive.
func isKeepAlive(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "KeepAlive" && fn.Pkg() != nil && fn.Pkg().Path() == "runtime"
}
