// Package a seeds the PR 5 finalizer hazard: raw rows read from a
// rowStore after the owning shard's last (liveness-visible) use, with and
// without the runtime.KeepAlive pin.
package a

import "runtime"

type rowStore interface {
	Row(id uint32) []float32
	Len() int
}

type mmapMat struct {
	data []float32
	dim  int
}

func (m *mmapMat) Row(id uint32) []float32 {
	return m.data[int(id)*m.dim : (int(id)+1)*m.dim]
}

func (m *mmapMat) Len() int { return len(m.data) / m.dim }

type shard struct {
	feats rowStore
}

// searchPinned is the contractually correct shape: the pin outlives every
// row dereference.
func (s *shard) searchPinned(q []float32) float32 {
	defer runtime.KeepAlive(s)
	best := float32(0)
	for id := uint32(0); int(id) < s.feats.Len(); id++ {
		row := s.feats.Row(id)
		best += row[0] * q[0]
	}
	return best
}

// searchUnpinned reads rows with no pin anywhere: the store's finalizer
// may unmap mid-loop once s is no longer referenced.
func (s *shard) searchUnpinned(q []float32) float32 {
	best := float32(0)
	for id := uint32(0); int(id) < s.feats.Len(); id++ {
		row := s.feats.Row(id) // want `without pinning its owner`
		best += row[0] * q[0]
	}
	return best
}

// rowMethodValue passes the accessor itself along; the rows it yields
// escape this frame with nothing pinned.
func (s *shard) rowMethodValue(consume func(func(uint32) []float32)) {
	consume(s.feats.Row) // want `without pinning its owner`
}

// accessor hands a single row to the caller, who is documented to hold
// the pin.
//
//jdvs:pinned caller holds the query-scope KeepAlive
func (s *shard) accessor(id uint32) []float32 {
	return s.feats.Row(id)
}

// closureCovered: the KeepAlive in the enclosing function covers the
// worker closure it spawns and waits for.
func (s *shard) closureCovered(ids []uint32) float32 {
	defer runtime.KeepAlive(s)
	var sum float32
	add := func(id uint32) {
		sum += s.feats.Row(id)[0]
	}
	for _, id := range ids {
		add(id)
	}
	return sum
}

// directMmap reads from a concrete mmap-backed store.
func directMmap(m *mmapMat) float32 {
	return m.Row(0)[0] // want `without pinning its owner`
}
