// Package unusedwrite is a stdlib-only stand-in for the stock
// golang.org/x/tools unusedwrite pass (the build environment is offline,
// so the x/tools module cannot be fetched). It reports writes to fields
// of a local struct variable whose value is never read again — almost
// always a sign that the author meant to mutate through a pointer and
// instead mutated a copy.
//
// Without SSA the pass is deliberately conservative: a variable is only
// eligible if it is a local non-pointer struct that is never
// address-taken, never receives a method call, and never appears inside
// a closure or defer; a write is only reported if it sits outside any
// loop and no read of the variable follows it in source order.
package unusedwrite

import (
	"go/ast"
	"go/token"
	"go/types"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "report field writes to a local struct copy that is never read afterwards (lite, stdlib-only)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

type fieldWrite struct {
	assign *ast.AssignStmt
	sel    *ast.SelectorExpr
	obj    types.Object
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	locals := eligibleLocals(pass, body)
	if len(locals) == 0 {
		return
	}

	// Classify every identifier mention of each eligible local as a
	// read or a write target, and collect field writes.
	var writes []fieldWrite
	writeIdents := map[*ast.Ident]bool{} // idents that only name a write destination
	reads := map[types.Object][]token.Pos{}

	analysisWithBody(body, func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				// `v = ...` overwrites the whole value: the ident is a
				// write destination, not a read.
				if obj := identObj(pass, l); obj != nil && locals[obj] {
					writeIdents[l] = true
				}
			case *ast.SelectorExpr:
				if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
					if obj := identObj(pass, id); obj != nil && locals[obj] {
						if sel, ok := pass.TypesInfo.Selections[l]; ok && sel.Kind() == types.FieldVal {
							writeIdents[id] = true
							if !insideLoop(stack) {
								writes = append(writes, fieldWrite{assign: as, sel: l, obj: obj})
							}
						}
					}
				}
			}
		}
		return true
	})

	analysisWithBody(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || writeIdents[id] {
			return true
		}
		if obj := identObj(pass, id); obj != nil && locals[obj] {
			reads[obj] = append(reads[obj], id.Pos())
		}
		return true
	})

	for _, w := range writes {
		lastRead := token.Pos(0)
		for _, p := range reads[w.obj] {
			if p > lastRead {
				lastRead = p
			}
		}
		if lastRead > w.assign.End() {
			continue
		}
		pass.Reportf(w.assign.Pos(), "unused write to field %s: %s is a copy that is never read afterwards", w.sel.Sel.Name, w.obj.Name())
	}
}

// eligibleLocals returns local non-pointer struct variables that are
// safe to reason about positionally: never address-taken, no method
// calls, not mentioned inside closures or defers.
func eligibleLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	locals := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if _, isStruct := obj.Type().Underlying().(*types.Struct); isStruct {
			locals[obj] = true
		}
		return true
	})
	if len(locals) == 0 {
		return locals
	}

	disqualify := func(obj types.Object) { delete(locals, obj) }
	analysisWithBody(body, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
					if obj := identObj(pass, id); obj != nil {
						disqualify(obj)
					}
				}
			}
		case *ast.SelectorExpr:
			// A method call (or method value) takes the address of an
			// addressable receiver implicitly.
			if sel, ok := pass.TypesInfo.Selections[v]; ok && sel.Kind() != types.FieldVal {
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
					if obj := identObj(pass, id); obj != nil {
						disqualify(obj)
					}
				}
			}
		case *ast.Ident:
			if obj := identObj(pass, v); obj != nil && locals[obj] {
				for _, anc := range stack {
					switch anc.(type) {
					case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
						disqualify(obj)
					}
				}
			}
		}
		return true
	})
	return locals
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func insideLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// analysisWithBody runs a parent-stack walk over a single function body.
func analysisWithBody(body *ast.BlockStmt, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}
