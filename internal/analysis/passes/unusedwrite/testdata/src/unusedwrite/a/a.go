package a

type point struct{ x, y int }

// badCopyWrite mutates a copy obtained from a range or assignment and
// never reads it back.
func badCopyWrite(src point) int {
	p := src
	p.x = 1 // want `unused write to field x: p is a copy that is never read afterwards`
	return src.x
}

func badDoubleWrite(src point) {
	p := src
	p.x = 1 // want `unused write to field x`
	p.y = 2 // want `unused write to field y`
}

func okReadBack(src point) int {
	p := src
	p.x = 1
	return p.x
}

func okAddressTaken(src point) *point {
	p := src
	p.x = 1
	return &p
}

func okPassedOn(src point) {
	p := src
	p.x = 1
	use(p)
}

func okInLoop(src point) int {
	p := src
	total := 0
	for i := 0; i < 3; i++ {
		total += p.x
		p.x = i // read on the next iteration; loop writes are skipped
	}
	return total
}

func okClosure(src point) func() int {
	p := src
	p.x = 1
	return func() int { return p.x }
}

func use(point) {}
