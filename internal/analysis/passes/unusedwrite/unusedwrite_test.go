package unusedwrite_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/unusedwrite"
)

func TestUnusedWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), unusedwrite.Analyzer, "unusedwrite/...")
}
