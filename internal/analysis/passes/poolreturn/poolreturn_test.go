package poolreturn_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/poolreturn"
)

func TestPoolReturn(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poolreturn.Analyzer, "poolreturn/...")
}
