// Package a seeds sync.Pool borrow/return shapes, mirroring the scratch
// pools on the batch search path.
package a

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type scratch struct {
	buf  []byte
	hits []int
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}
var lutPool = sync.Pool{New: func() any { return make([]byte, 256) }}

func use(*scratch)    {}
func useBytes([]byte) {}

// deferCovered returns the buffer on every exit via defer.
func deferCovered(fail bool) error {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	if fail {
		return errFail
	}
	use(sc)
	return nil
}

// closureCovered is the SearchBatch shape: a deferred closure Puts the
// members of every borrow in a loop.
func closureCovered(n int) {
	members := make([]*scratch, 0, n)
	defer func() {
		for _, m := range members {
			scratchPool.Put(m)
		}
	}()
	for i := 0; i < n; i++ {
		sc := scratchPool.Get().(*scratch)
		members = append(members, sc)
		use(sc)
	}
}

// allPathsCovered puts on both branches without a defer.
func allPathsCovered(fail bool) {
	sc := scratchPool.Get().(*scratch)
	if fail {
		scratchPool.Put(sc)
		return
	}
	use(sc)
	scratchPool.Put(sc)
}

// earlyReturnLeaks misses the Put on the error path.
func earlyReturnLeaks(fail bool) error {
	sc := scratchPool.Get().(*scratch) // want `not returned to the pool on every exit`
	if fail {
		return errFail
	}
	use(sc)
	scratchPool.Put(sc)
	return nil
}

// panicPathIsFine: a borrow lost to an unwinding goroutine is harmless.
func panicPathIsFine(fail bool) {
	sc := scratchPool.Get().(*scratch)
	if fail {
		panic("boom")
	}
	use(sc)
	scratchPool.Put(sc)
}

// loopReborrow puts before continue and re-Gets next iteration: clean.
func loopReborrow(n int) {
	for i := 0; i < n; i++ {
		sc := scratchPool.Get().(*scratch)
		if i%2 == 0 {
			scratchPool.Put(sc)
			continue
		}
		use(sc)
		scratchPool.Put(sc)
	}
}

// otherPoolDoesNotCover: the deferred Put returns to a different pool.
func otherPoolDoesNotCover() {
	lut := lutPool.Get().([]byte) // want `not returned to the pool on every exit`
	defer scratchPool.Put(&scratch{})
	useBytes(lut)
}

// useAfterPut touches the buffer after the pool may have handed it out.
func useAfterPut() {
	sc := scratchPool.Get().(*scratch)
	scratchPool.Put(sc)
	use(sc) // want `used after the buffer it derives from was returned`
}

// derivedUseAfterPut: state chained off the borrow is just as stale.
func derivedUseAfterPut() {
	sc := scratchPool.Get().(*scratch)
	buf := sc.buf
	scratchPool.Put(sc)
	useBytes(buf) // want `used after the buffer it derives from was returned`
}

// escapeWithDeferredPut returns pooled state the defer recycles.
func escapeWithDeferredPut() []byte {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	return sc.buf // want `derives from a pooled buffer that the deferred Put recycles`
}

// copyOutIsClean: the append copies the bytes out of the borrow.
func copyOutIsClean() []byte {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	return append([]byte(nil), sc.buf...)
}

// justifiedLeak carries the escape hatch.
func justifiedLeak(fail bool) error {
	//jdvs:pool-ok the borrow transfers to the response writer, which Puts it after the flush
	sc := scratchPool.Get().(*scratch)
	if fail {
		return errFail
	}
	use(sc)
	return nil
}
