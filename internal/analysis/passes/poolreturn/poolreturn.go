// Package poolreturn checks the scratch-pool discipline on the serving
// path: every sync.Pool.Get is matched by a Put on every non-panicking
// exit, and nothing derived from the pooled buffer outlives the Put. A
// missed Put silently degrades the pool to an allocator under exactly
// the load the pool exists for; a buffer that escapes past its Put is
// recycled under a caller still holding it — the same lost-update shape
// as the batch-dedup race, but through the allocator.
//
// Coverage rules, in order:
//
//   - a defer containing a Put on the same pool object covers every
//     exit (including a deferred closure that Puts members in a loop —
//     the SearchBatch shape);
//   - otherwise every path from the Get to the function exit must pass a
//     Put on the same pool. Paths that die in a panic are exempt: a
//     pool entry lost to an unwinding goroutine is harmless.
//
// Escape rules:
//
//   - a use of the pooled value (or anything chain-derived from it:
//     sc.buf, sc.hits[:n]) reachable after the Put is flagged;
//   - a return of a chain-derived value while a deferred Put will
//     recycle the buffer is flagged. Derivation stops at call results:
//     append(nil, sc.buf...) copies out and is clean.
//
// The escape hatch is `//jdvs:pool-ok <reason>`; the reason must say who
// returns the value or why the escape cannot outlive the borrow.
package poolreturn

import (
	"go/ast"
	"go/types"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolreturn",
	Doc:  "check sync.Pool values are Put back on all exits and do not escape past the Put",
	Run:  run,
}

const directive = "pool-ok"

// A poolUse is one Get call with its binding.
type poolUse struct {
	get     *ast.CallExpr
	pos     analysis.NodePos
	pool    types.Object // the pool variable/field
	bindVar *types.Var   // LHS var of the Get assignment, if any
	bindDef ast.Node     // the assignment node
}

func run(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body == nil {
				return false
			}
			checkFunc(pass, n)
		}
		return true
	})
	return nil
}

func checkFunc(pass *analysis.Pass, fn ast.Node) {
	cfg := pass.FuncCFG(fn)
	du := pass.ReachingDefs(cfg)

	var gets []*poolUse
	var puts []struct {
		call *ast.CallExpr
		pos  analysis.NodePos
		pool types.Object
	}

	body := funcBody(fn)
	if body == nil {
		return
	}
	var walkStack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			walkStack = walkStack[:len(walkStack)-1]
			return false
		}
		walkStack = append(walkStack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested function: its own checkFunc call
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, pool := poolCall(pass, call)
		switch method {
		case "Get":
			u := &poolUse{get: call, pos: cfg.NodePos(call, walkStack), pool: pool}
			u.bindVar, u.bindDef = bindingOf(pass, walkStack)
			gets = append(gets, u)
		case "Put":
			// A deferred Put executes at function exit, not at its
			// lexical position; it covers paths (deferredPut) but cannot
			// make later uses stale.
			for _, anc := range walkStack {
				if _, ok := anc.(*ast.DeferStmt); ok {
					return true
				}
			}
			puts = append(puts, struct {
				call *ast.CallExpr
				pos  analysis.NodePos
				pool types.Object
			}{call, cfg.NodePos(call, walkStack), pool})
		}
		return true
	})
	if len(gets) == 0 {
		return
	}

	for _, g := range gets {
		deferred := deferredPut(pass, cfg, g.pool)

		if !deferred {
			isPut := func(n ast.Node) bool {
				found := false
				ast.Inspect(n, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if method, pool := poolCall(pass, c); method == "Put" && pool == g.pool {
							found = true
						}
					}
					return !found
				})
				return found
			}
			if !g.pos.Valid() || cfg.PathAvoiding(g.pos, isPut) {
				if !pass.DirectiveAt(g.get.Pos(), directive) {
					pass.Reportf(g.get.Pos(),
						"sync.Pool value from %s.Get is not returned to the pool on every exit; Put it on all paths (a deferred Put covers them), or annotate //jdvs:pool-ok with the owner argument",
						poolName(g.pool))
				}
				continue
			}
		}

		if g.bindVar == nil {
			continue
		}
		derivedVars, derivedDefs := derivedClosure(pass, body, g.bindVar, g.bindDef)

		// Uses after an inline Put of the same pool, still bound to this
		// borrow (a reaching def in the derived set), are use-after-free
		// against the pool.
		checkUseAfterPut(pass, cfg, du, body, g, puts, derivedVars, derivedDefs)

		// A deferred Put recycles the buffer the moment the function
		// returns: returning derived state hands the caller a buffer the
		// pool already owns.
		if deferred {
			checkReturnEscape(pass, body, g, derivedVars)
		}
	}
}

func checkUseAfterPut(pass *analysis.Pass, cfg *analysis.CFG, du *analysis.DefUse, body *ast.BlockStmt, g *poolUse, puts []struct {
	call *ast.CallExpr
	pos  analysis.NodePos
	pool types.Object
}, derivedVars map[*types.Var]bool, derivedDefs map[ast.Node]bool) {
	var walkStack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			walkStack = walkStack[:len(walkStack)-1]
			return false
		}
		walkStack = append(walkStack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !derivedVars[v] {
			return true
		}
		upos := cfg.NodePos(id, walkStack)
		if !upos.Valid() {
			return true
		}
		// Still this borrow? At least one reaching def must be the Get
		// binding or a derived assignment.
		live := false
		for _, def := range du.DefsAt(v, upos) {
			if def == g.bindDef || derivedDefs[def] {
				live = true
				break
			}
		}
		if !live {
			return true
		}
		for _, p := range puts {
			if p.pool != g.pool || !p.pos.Valid() {
				continue
			}
			if containsNode(p.call, id) {
				continue // the Put's own argument
			}
			if cfg.ReachableAfter(p.pos, upos, false) {
				if !pass.DirectiveAt(id.Pos(), directive) {
					pass.Reportf(id.Pos(),
						"%s may be used after the buffer it derives from was returned to %s; the pool can hand it to another goroutine — move the use before the Put, or annotate //jdvs:pool-ok with the ownership argument",
						id.Name, poolName(g.pool))
				}
				return true
			}
		}
		return true
	})
}

func checkReturnEscape(pass *analysis.Pass, body *ast.BlockStmt, g *poolUse, derivedVars map[*types.Var]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			root := chainRoot(res)
			if root == nil {
				continue
			}
			if v, ok := pass.TypesInfo.Uses[root].(*types.Var); ok && derivedVars[v] {
				if !pass.DirectiveAt(ret.Pos(), directive) {
					pass.Reportf(ret.Pos(),
						"%s derives from a pooled buffer that the deferred Put recycles when this function returns; copy the data out, or annotate //jdvs:pool-ok with the ownership argument",
						root.Name)
				}
			}
		}
		return true
	})
}

// derivedClosure computes, flow-insensitively, the variables
// chain-derived from the Get binding (x := sc.buf, y := x[:n]) and the
// assignment nodes that establish derivation. Call results are fresh and
// stop the chain.
func derivedClosure(pass *analysis.Pass, body *ast.BlockStmt, bind *types.Var, bindDef ast.Node) (map[*types.Var]bool, map[ast.Node]bool) {
	vars := map[*types.Var]bool{bind: true}
	defs := map[ast.Node]bool{}
	if bindDef != nil {
		defs[bindDef] = true
	}
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var lv *types.Var
				if o, ok := pass.TypesInfo.Defs[lid].(*types.Var); ok {
					lv = o
				} else if o, ok := pass.TypesInfo.Uses[lid].(*types.Var); ok {
					lv = o
				}
				if lv == nil || vars[lv] {
					continue
				}
				root := chainRoot(as.Rhs[i])
				if root == nil {
					continue
				}
				if rv, ok := pass.TypesInfo.Uses[root].(*types.Var); ok && vars[rv] {
					vars[lv] = true
					defs[as] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return vars, defs
		}
	}
}

// chainRoot unwraps selector/index/slice/star/paren/type-assert chains
// to the root identifier; call expressions (copies, conversions) stop
// the chain.
func chainRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// bindingOf returns the variable the enclosing assignment binds the Get
// result to, looking through a type assertion (sc := pool.Get().(*T)).
func bindingOf(pass *analysis.Pass, stack []ast.Node) (*types.Var, ast.Node) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) >= 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						return v, s
					}
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						return v, s
					}
				}
			}
			return nil, nil
		case *ast.FuncDecl, *ast.FuncLit:
			return nil, nil
		}
	}
	return nil, nil
}

// deferredPut reports whether any defer in the function contains a Put
// on pool (directly or inside a deferred closure).
func deferredPut(pass *analysis.Pass, cfg *analysis.CFG, pool types.Object) bool {
	for _, d := range cfg.Defers {
		found := false
		ast.Inspect(d.Call, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if method, p := poolCall(pass, c); method == "Put" && p == pool {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// poolCall classifies call as a Get/Put method call on a sync.Pool and
// returns the pool's root object.
func poolCall(pass *analysis.Pass, call *ast.CallExpr) (method string, pool types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	name := sel.Sel.Name
	if name != "Get" && name != "Put" {
		return "", nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", nil
	}
	// The pool's identity: the final selector component (field or var).
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return name, pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		return name, pass.TypesInfo.Uses[x.Sel]
	case *ast.UnaryExpr:
		if inner, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return name, pass.TypesInfo.Uses[inner]
		}
	}
	return "", nil
}

func poolName(o types.Object) string {
	if o == nil {
		return "the pool"
	}
	return o.Name()
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

func containsNode(n, target ast.Node) bool {
	if n == target {
		return true
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if m == target {
			found = true
		}
		return !found
	})
	return found
}
