// Command goodcmd demonstrates a conventional command comment.
package main

func main() {}
