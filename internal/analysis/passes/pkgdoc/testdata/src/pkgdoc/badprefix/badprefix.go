// Frobs things for the fixture. // want `does not follow godoc convention`
package badprefix

func Frob() int { return 1 }
