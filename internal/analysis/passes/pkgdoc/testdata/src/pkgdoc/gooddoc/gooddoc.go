// Package gooddoc demonstrates a conventional package comment.
package gooddoc

func Frob() int { return 1 }
