package nodoc // want `package nodoc has no package comment`

func Frob() int { return 1 }
