// Package main is the wrong opening for an executable. // want `start it with "Command "`
package main

func main() {}
