// Package pkgdoc enforces the documentation contract the docs/ tree
// depends on: every package carries a package comment, and the comment
// follows godoc convention — `Package <name> ...` for libraries,
// `Command <name> ...` for main packages — so `go doc` output and the
// architecture docs stay navigable as the tree grows. A missing comment
// is reported once per package, on the package clause of its first file.
package pkgdoc

import (
	"go/ast"
	"strings"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "pkgdoc",
	Doc:  "every package must carry a conventional godoc package comment",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	var docs []*ast.File
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			docs = append(docs, f)
		}
	}
	if len(docs) == 0 {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"package %s has no package comment; add one starting %q",
				pass.Pkg.Name(), wantPrefix(pass.Pkg.Name()))
		}
		return nil
	}
	for _, f := range docs {
		if prefix := wantPrefix(pass.Pkg.Name()); !strings.HasPrefix(f.Doc.Text(), prefix) {
			pass.Reportf(f.Doc.Pos(),
				"package comment for %s does not follow godoc convention; start it with %q",
				pass.Pkg.Name(), prefix)
		}
	}
	return nil
}

// wantPrefix is the conventional first words of the package comment:
// godoc keys library docs on "Package <name>", and this repo documents
// executables as "Command <name>".
func wantPrefix(name string) string {
	if name == "main" {
		return "Command "
	}
	return "Package " + name + " "
}
