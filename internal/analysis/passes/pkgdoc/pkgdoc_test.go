package pkgdoc_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/pkgdoc"
)

func TestPkgDoc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), pkgdoc.Analyzer, "pkgdoc/...")
}
