package timerstop_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/timerstop"
)

func TestTimerStop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), timerstop.Analyzer, "timerstop/...")
}
