// Package timerstop checks timer hygiene on long-running serving loops:
//
//   - time.After inside a loop allocates a fresh timer and channel every
//     iteration; none is collectable until it fires. On a hot accept or
//     batch-window loop that is unbounded timer churn — use one
//     time.NewTimer and Reset it, or Stop it per iteration (the batcher
//     idiom). A one-shot time.After outside a loop is idiomatic and not
//     flagged.
//
//   - a time.NewTimer must be stopped — or drained (<-t.C: a fired
//     timer holds nothing) — on every non-panicking path; a
//     time.NewTicker must be stopped on every such path, and drains do
//     not help (tickers re-arm). A deferred Stop covers all exits.
//
// time.AfterFunc is exempt: its callback firing is the cleanup.
//
// The escape hatch is `//jdvs:timer-ok <reason>`; the reason must bound
// the leak (loop exits after one iteration, process-lifetime ticker in
// main, etc).
package timerstop

import (
	"go/ast"
	"go/token"
	"go/types"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "timerstop",
	Doc:  "flag time.After in loops and NewTimer/NewTicker without Stop on some path",
	Run:  run,
}

const directive = "timer-ok"

func run(pass *analysis.Pass) error {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch timeFunc(pass, call) {
		case "After":
			if loopWithin(stack) != nil && !pass.DirectiveAt(call.Pos(), directive) {
				pass.Reportf(call.Pos(),
					"time.After in a loop allocates an uncollectable timer every iteration; hoist a time.NewTimer and Reset/Stop it, or annotate //jdvs:timer-ok with the bound argument")
			}
		case "Tick":
			if !pass.DirectiveAt(call.Pos(), directive) {
				pass.Reportf(call.Pos(),
					"time.Tick's ticker can never be stopped; use time.NewTicker with a deferred Stop, or annotate //jdvs:timer-ok with the process-lifetime argument")
			}
		case "NewTimer":
			checkStopped(pass, call, stack, true)
		case "NewTicker":
			checkStopped(pass, call, stack, false)
		}
		return true
	})
	return nil
}

// checkStopped verifies the timer/ticker bound at call is stopped (or,
// for timers, drained) on every non-panicking path.
func checkStopped(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, drainCounts bool) {
	fn := analysis.EnclosingFunc(stack[:len(stack)-1])
	if fn == nil {
		return
	}
	kind := "time.NewTimer"
	if !drainCounts {
		kind = "time.NewTicker"
	}
	v := boundVar(pass, stack)
	if v == nil {
		// Unassigned: <-time.NewTimer(d).C blocks until the timer fires
		// and holds nothing after — fine. An unassigned ticker can never
		// be stopped.
		if !drainCounts && !pass.DirectiveAt(call.Pos(), directive) {
			pass.Reportf(call.Pos(),
				"%s result is not bound to a variable, so its Stop can never be called; bind it and defer Stop, or annotate //jdvs:timer-ok with the lifetime argument", kind)
		}
		return
	}

	cfg := pass.FuncCFG(fn)
	covers := func(n ast.Node) bool { return stopsOrDrains(pass, n, v, drainCounts) }

	// A deferred Stop (or deferred closure stopping it) covers all exits.
	for _, d := range cfg.Defers {
		if covers(d.Call) {
			return
		}
	}
	pos := cfg.NodePos(call, stack)
	if !pos.Valid() {
		return
	}
	if cfg.PathAvoiding(pos, covers) {
		if !pass.DirectiveAt(call.Pos(), directive) {
			remedy := "Stop it on every path or defer the Stop"
			if drainCounts {
				remedy = "Stop it on every path (a drained <-" + v.Name() + ".C also settles it)"
			}
			pass.Reportf(call.Pos(),
				"%s is not stopped on every path out of %s; %s, or annotate //jdvs:timer-ok with the bound argument",
				kind, funcName(fn), remedy)
		}
	}
}

// stopsOrDrains reports whether n contains v.Stop() or (when drains
// count) a receive from v.C.
func stopsOrDrains(pass *analysis.Pass, n ast.Node, v *types.Var, drainCounts bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch x := m.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if drainCounts && x.Op == token.ARROW {
				if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "C" {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// boundVar returns the variable the enclosing assignment binds the
// constructor result to.
func boundVar(pass *analysis.Pass, stack []ast.Node) *types.Var {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						return v
					}
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						return v
					}
				}
			}
			return nil
		case *ast.ValueSpec:
			if len(s.Names) == 1 {
				if v, ok := pass.TypesInfo.Defs[s.Names[0]].(*types.Var); ok {
					return v
				}
			}
			return nil
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// loopWithin returns the innermost for/range enclosing the tip of stack
// within the same function, or nil.
func loopWithin(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// timeFunc returns the name of the time-package function call, or "".
func timeFunc(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// A method such as time.Time.After, not the package function.
		return ""
	}
	return fn.Name()
}

func funcName(fn ast.Node) string {
	if fd, ok := fn.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return "this function literal"
}
