// Package a seeds timer lifecycle shapes, mirroring the batcher's
// collection-window idiom.
package a

import "time"

func work()           {}
func done() chan int  { return nil }
func full() chan bool { return nil }

// batcherIdiom is the collection-window shape: one branch stops the
// timer, the other drains it. Every path settles the timer.
func batcherIdiom(window time.Duration) {
	timer := time.NewTimer(window)
	select {
	case <-full():
		timer.Stop()
	case <-timer.C:
	}
	work()
}

// deferStop covers all exits.
func deferStop(d time.Duration, fail bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	if fail {
		return
	}
	work()
}

// leakyBranch misses the Stop when the select takes the data branch.
func leakyBranch(d time.Duration) {
	t := time.NewTimer(d) // want `not stopped on every path`
	select {
	case <-done():
		work()
	case <-t.C:
	}
}

// afterInLoop allocates a timer per iteration.
func afterInLoop(d time.Duration) {
	for {
		select {
		case <-done():
			work()
		case <-time.After(d): // want `time.After in a loop`
			return
		}
	}
}

// afterOneShot outside a loop is idiomatic.
func afterOneShot(d time.Duration) {
	select {
	case <-done():
		work()
	case <-time.After(d):
	}
}

// justifiedAfter carries the escape hatch.
func justifiedAfter(d time.Duration) {
	for {
		select {
		case <-done():
			return
		//jdvs:timer-ok loop exits after the first tick in every configuration; at most one extra timer lives
		case <-time.After(d):
			work()
		}
	}
}

// tickerStopped: deferred Stop covers the ticker.
func tickerStopped(d time.Duration) {
	tk := time.NewTicker(d)
	defer tk.Stop()
	for range tk.C {
		work()
	}
}

// tickerLeaks: no Stop anywhere.
func tickerLeaks(d time.Duration) {
	tk := time.NewTicker(d) // want `not stopped on every path`
	for range tk.C {
		work()
	}
}

// drainIsNotEnoughForTicker: tickers re-arm; only Stop settles them.
func drainIsNotEnoughForTicker(d time.Duration) {
	tk := time.NewTicker(d) // want `not stopped on every path`
	<-tk.C
	work()
}

// drainSettlesTimer: a fired one-shot timer holds nothing.
func drainSettlesTimer(d time.Duration) {
	t := time.NewTimer(d)
	<-t.C
	work()
}

// unboundTicker can never be stopped.
func unboundTicker(d time.Duration) {
	<-time.NewTicker(d).C // want `Stop can never be called`
	work()
}

// unboundTimerFires: blocks until fire, then holds nothing.
func unboundTimerFires(d time.Duration) {
	<-time.NewTimer(d).C
	work()
}

// afterFuncExempt: the callback firing is the cleanup.
func afterFuncExempt(d time.Duration) {
	time.AfterFunc(d, work)
}

// tickLeaks: time.Tick's ticker is unstoppable.
func tickLeaks(d time.Duration) {
	for range time.Tick(d) { // want `time.Tick's ticker can never be stopped`
		work()
	}
}

// methodAfterIsNotTimeAfter: time.Time.After shares a name with the
// package function but allocates no timer; deadline polls are clean.
func methodAfterIsNotTimeAfter(deadline time.Time) {
	for !time.Now().After(deadline) {
		work()
	}
}
