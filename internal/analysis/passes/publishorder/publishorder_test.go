package publishorder_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/publishorder"
)

func TestPublishOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), publishorder.Analyzer, "publishorder/...")
}
