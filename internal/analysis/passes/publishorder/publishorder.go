// Package publishorder checks the ordering half of the shard's lock-free
// publish protocol (atomicmix checks the atomicity half). chunkMat,
// codeBlocks, the inverted lists and the COW category bitmaps all share
// one shape: a writer fills an element region with plain stores, then
// publishes it with a single atomic store of the length (or a pointer
// swap); readers load the length first and never index past it. The
// protocol is correct only if the order holds on every path:
//
//   - Writers: after the publishing store of a structure, no plain write
//     to that structure's element region — and no atomic pointer store on
//     it — may execute before the next publish. A write after the publish
//     is visible to readers admitted by the new length without any
//     happens-before edge. Storing length 0 is the inverse operation
//     ("unpublish": snapshot load, teardown) and re-opens the region for
//     writes until the next publish.
//
//   - Readers: in a function that loads both the atomic length and the
//     atomic chunk-directory pointer of the same structure, the length
//     must be loaded first on every path. Loading the directory first
//     admits torn pairs: a grow() may swap the directory between the two
//     loads, and the length bound then indexes the wrong backing.
//
// Loop iterations are handled by ignoring paths through loop back edges:
// a write in iteration i+1 naturally executes after the store that
// published iteration i and is not a violation.
//
// The escape hatch is `//jdvs:publish-ok <reason>` on the flagged line
// (or the line above); the reason must name the fence or exclusion that
// makes the reorder safe.
package publishorder

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "publishorder",
	Doc:  "check element writes precede atomic publish stores and length loads precede directory loads",
	Run:  run,
}

const directive = "publish-ok"

// atomicIntTypes are the sync/atomic counter types used as published
// lengths. Bool is deliberately absent: a flag load does not bound an
// index.
var atomicIntTypes = map[string]bool{
	"Int32": true, "Int64": true, "Uint32": true, "Uint64": true, "Uintptr": true,
}

// atomicPtrTypes are the sync/atomic types holding chunk directories.
var atomicPtrTypes = map[string]bool{
	"Pointer": true, "Value": true,
}

// An atomicOp is one method call on a sync/atomic value: its CFG
// position, the root object the atomic lives under (the receiver of
// m.length.Store), and its classification.
type atomicOp struct {
	call *ast.CallExpr
	pos  analysis.NodePos
	base types.Object
	arg  ast.Expr // Store argument, nil for Load
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var (
		intStores []atomicOp // length publishes / unpublishes
		ptrStores []atomicOp
		intLoads  []atomicOp
		ptrLoads  []atomicOp
	)
	cfg := pass.FuncCFG(fn)

	analysis.WithStack([]*ast.File{fileOf(pass, fn)}, func(n ast.Node, stack []ast.Node) bool {
		if n == fn {
			return true
		}
		if fd, ok := n.(*ast.FuncDecl); ok && fd != fn {
			return false // other top-level decls
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals get their own CFGs; keep this one intraprocedural
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, method, base := atomicCall(pass, call)
		if base == nil || !withinFunc(fn, n) {
			return true
		}
		op := atomicOp{call: call, pos: cfg.NodePos(call, stack), base: base}
		switch {
		case kind == "int" && method == "Store":
			if len(call.Args) == 1 {
				op.arg = call.Args[0]
			}
			intStores = append(intStores, op)
		case kind == "ptr" && (method == "Store" || method == "Swap" || method == "CompareAndSwap"):
			ptrStores = append(ptrStores, op)
		case kind == "int" && method == "Load":
			intLoads = append(intLoads, op)
		case kind == "ptr" && method == "Load":
			ptrLoads = append(ptrLoads, op)
		}
		return true
	})

	checkWriter(pass, fn, cfg, intStores, ptrStores)
	checkReader(pass, fn, cfg, intLoads, ptrLoads)
}

// bodyLocal reports whether obj is declared inside fn's body. A publish
// on a body-local structure is a constructor or snapshot builder filling
// an object no reader can reach yet; receivers, parameters and globals
// are the shared structures the protocol governs.
func bodyLocal(fn *ast.FuncDecl, obj types.Object) bool {
	return obj.Pos() >= fn.Body.Pos() && obj.Pos() < fn.Body.End()
}

// checkWriter flags element writes and pointer stores that may execute
// after a publish of the same structure, with no unpublish in between.
func checkWriter(pass *analysis.Pass, fn *ast.FuncDecl, cfg *analysis.CFG, intStores, ptrStores []atomicOp) {
	if len(intStores) == 0 {
		return
	}
	du := pass.ReachingDefs(cfg)

	// Publishes store a value that may be non-zero; unpublishes store a
	// constant zero.
	var publishes []atomicOp
	isUnpublish := func(n ast.Node) bool {
		for _, s := range intStores {
			if s.arg != nil && isConstZero(pass, s.arg) && containsNode(n, s.call) {
				return true
			}
		}
		return false
	}
	for _, s := range intStores {
		if s.arg != nil && !isConstZero(pass, s.arg) && s.pos.Valid() && !bodyLocal(fn, s.base) {
			publishes = append(publishes, s)
		}
	}
	if len(publishes) == 0 {
		return
	}

	// Element writes: assignments through an index expression (or copy()
	// into one) whose base derives from the published structure.
	var walkStack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			walkStack = walkStack[:len(walkStack)-1]
			return false
		}
		walkStack = append(walkStack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack := walkStack
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if root := indexWriteRoot(lhs); root != nil {
					checkElemWrite(pass, cfg, du, publishes, isUnpublish, root, lhs.Pos(), stack)
				}
			}
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "copy" && len(s.Args) == 2 {
				if root := sliceRoot(s.Args[0]); root != nil {
					checkElemWrite(pass, cfg, du, publishes, isUnpublish, root, s.Pos(), stack)
				}
			}
		}
		return true
	})

	// Atomic pointer stores on the same base after its publish swap the
	// directory out from under already-admitted readers.
	for _, ps := range ptrStores {
		if !ps.pos.Valid() {
			continue
		}
		for _, pub := range publishes {
			if pub.base != ps.base {
				continue
			}
			if cfg.ReachableAfterAvoiding(pub.pos, ps.pos, isUnpublish) {
				if !pass.DirectiveAt(ps.call.Pos(), directive) {
					pass.Reportf(ps.call.Pos(),
						"atomic pointer store on %s may execute after its publishing length store; swap the directory before publishing, or annotate //jdvs:publish-ok with the exclusion argument",
						baseName(ps.base))
				}
				break
			}
		}
	}
}

func checkElemWrite(pass *analysis.Pass, cfg *analysis.CFG, du *analysis.DefUse, publishes []atomicOp, isUnpublish func(ast.Node) bool, root *ast.Ident, at token.Pos, stack []ast.Node) {
	wpos := cfg.NodePos(root, stack)
	if !wpos.Valid() {
		return
	}
	for _, pub := range publishes {
		if !du.DerivedFrom(root, wpos, pub.base) {
			continue
		}
		if cfg.ReachableAfterAvoiding(pub.pos, wpos, isUnpublish) {
			if !pass.DirectiveAt(at, directive) {
				pass.Reportf(at,
					"plain write to the element region of %s may execute after its publishing atomic store; readers admitted by the new length can observe it without a happens-before edge — write before the publish, or annotate //jdvs:publish-ok with the fence argument",
					baseName(pub.base))
			}
			return
		}
	}
}

// checkReader flags directory-pointer loads reachable before any length
// load of the same structure.
func checkReader(pass *analysis.Pass, fn *ast.FuncDecl, cfg *analysis.CFG, intLoads, ptrLoads []atomicOp) {
	if len(intLoads) == 0 || len(ptrLoads) == 0 {
		return
	}
	du := pass.ReachingDefs(cfg)
	indexRoots := collectIndexRoots(cfg, fn)
	// The load-order invariant bounds element access; a function that
	// never indexes data derived from the base (a stats snapshot loading
	// a pointer and a watermark, say) has no bound to violate.
	indexesBase := func(base types.Object) bool {
		for _, ir := range indexRoots {
			if du.DerivedFrom(ir.root, ir.pos, base) {
				return true
			}
		}
		return false
	}
	for _, pl := range ptrLoads {
		if !pl.pos.Valid() {
			continue
		}
		// Only structures whose length is also consulted in this
		// function are in scope: pairing by base keeps per-segment
		// lengths (inverted) and writer-context-only helpers out.
		var lengthLoads []atomicOp
		for _, il := range intLoads {
			if il.base == pl.base {
				lengthLoads = append(lengthLoads, il)
			}
		}
		if len(lengthLoads) == 0 || !indexesBase(pl.base) {
			continue
		}
		isLenLoad := func(n ast.Node) bool {
			for _, il := range lengthLoads {
				if containsNode(n, il.call) {
					return true
				}
			}
			return false
		}
		if cfg.PathToAvoiding(pl.pos, isLenLoad) {
			if !pass.DirectiveAt(pl.call.Pos(), directive) {
				pass.Reportf(pl.call.Pos(),
					"directory pointer of %s is loaded before its atomic length on some path; load the length first so the bound matches the backing, or annotate //jdvs:publish-ok with the exclusion argument",
					baseName(pl.base))
			}
		}
	}
}

// indexRoot is the root identifier of one index or slice expression in a
// function body, with its CFG position for dataflow queries.
type indexRoot struct {
	root *ast.Ident
	pos  analysis.NodePos
}

// collectIndexRoots gathers the roots of every index/slice expression in
// fn (reads and writes alike), skipping nested function literals.
func collectIndexRoots(cfg *analysis.CFG, fn *ast.FuncDecl) []indexRoot {
	var roots []indexRoot
	var walkStack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			walkStack = walkStack[:len(walkStack)-1]
			return false
		}
		walkStack = append(walkStack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var base ast.Expr
		switch x := n.(type) {
		case *ast.IndexExpr:
			base = x.X
		case *ast.SliceExpr:
			base = x.X
		default:
			return true
		}
		if root := rootIdent(base); root != nil {
			if pos := cfg.NodePos(root, walkStack); pos.Valid() {
				roots = append(roots, indexRoot{root: root, pos: pos})
			}
		}
		return true
	})
	return roots
}

// atomicCall classifies call as a method on a sync/atomic value and
// returns ("int"|"ptr", method, root object), or zeroes.
func atomicCall(pass *analysis.Pass, call *ast.CallExpr) (kind, method string, base types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", nil
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return "", "", nil
	}
	tn := named.Obj().Name()
	switch {
	case atomicIntTypes[tn]:
		kind = "int"
	case atomicPtrTypes[tn]:
		kind = "ptr"
	default:
		return "", "", nil
	}
	root := rootIdent(sel.X)
	if root == nil {
		return "", "", nil
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		return "", "", nil
	}
	return kind, fn.Name(), obj
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// rootIdent returns the leftmost identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// indexWriteRoot returns the root identifier when lhs writes through an
// index expression (chunks[ci].rows[off] = v, l.data[pos] = id).
func indexWriteRoot(lhs ast.Expr) *ast.Ident {
	hasIndex := false
	e := lhs
loop:
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			hasIndex = true
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			break loop
		}
	}
	if !hasIndex {
		return nil
	}
	return rootIdent(lhs)
}

// sliceRoot returns the root identifier of a slice-typed expression
// (the copy() destination), unwrapping slicing.
func sliceRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return rootIdent(e)
		}
	}
}

func isConstZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}

// containsNode reports whether target is n or a descendant of n.
func containsNode(n, target ast.Node) bool {
	if n == target {
		return true
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if m == target {
			found = true
		}
		return !found
	})
	return found
}

func withinFunc(fn *ast.FuncDecl, n ast.Node) bool {
	return n.Pos() >= fn.Body.Pos() && n.End() <= fn.Body.End()
}

func baseName(o types.Object) string { return o.Name() }

func fileOf(pass *analysis.Pass, n ast.Node) *ast.File {
	for _, f := range pass.Files {
		if n.Pos() >= f.Pos() && n.End() <= f.End() {
			return f
		}
	}
	return nil
}
