module fixtures

go 1.23
