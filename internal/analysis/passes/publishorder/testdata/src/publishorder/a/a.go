// Package a seeds publish-protocol orderings, good and bad, mirroring
// the chunkMat / inverted-list shapes from internal/index.
package a

import "sync/atomic"

type chunk struct{ rows []float32 }

type mat struct {
	width  int
	length atomic.Uint32
	dir    atomic.Pointer[[]*chunk]
}

// appendGood fills the element region, then publishes.
func (m *mat) appendGood(row []float32) {
	id := m.length.Load()
	chunks := *m.dir.Load()
	off := int(id) * m.width
	copy(chunks[0].rows[off:off+m.width], row)
	m.length.Store(id + 1)
}

// appendBad publishes first: the admitted reader can observe the copy.
func (m *mat) appendBad(row []float32) {
	id := m.length.Load()
	chunks := *m.dir.Load()
	m.length.Store(id + 1)
	off := int(id) * m.width
	copy(chunks[0].rows[off:off+m.width], row) // want `plain write to the element region of m`
}

// growBad swaps the directory after the publish admitted readers to it.
func (m *mat) growBad(next []*chunk) {
	id := m.length.Load()
	m.length.Store(id + 1)
	m.dir.Store(&next) // want `atomic pointer store on m`
}

// growGood swaps the directory before publishing the new bound.
func (m *mat) growGood(next []*chunk) {
	id := m.length.Load()
	m.dir.Store(&next)
	m.length.Store(id + 1)
}

// loadSnapshot unpublishes (Store 0), rewrites the region, republishes —
// the snapshot-load idiom from mmapMat.readFrom.
func (m *mat) loadSnapshot(rows []float32) {
	m.length.Store(0)
	chunks := *m.dir.Load()
	copy(chunks[0].rows, rows)
	m.length.Store(uint32(len(rows)))
}

// appendMany is the loop-carried case: iteration i+1 writes after the
// store that published iteration i. Crossing the back edge is the
// protocol working, not a violation.
func (m *mat) appendMany(rowsIn [][]float32) {
	for _, row := range rowsIn {
		id := m.length.Load()
		chunks := *m.dir.Load()
		off := int(id) * m.width
		copy(chunks[0].rows[off:off+m.width], row)
		m.length.Store(id + 1)
	}
}

// appendJustified carries the escape hatch: suppressed, no finding.
func (m *mat) appendJustified(row []float32) {
	id := m.length.Load()
	chunks := *m.dir.Load()
	m.length.Store(id + 1)
	//jdvs:publish-ok readers are quiesced by the caller; this path runs only during single-threaded recovery
	copy(chunks[0].rows[:m.width], row)
}

// rowGood loads the length before the directory on every path.
func (m *mat) rowGood(id uint32) []float32 {
	if id >= m.length.Load() {
		return nil
	}
	chunks := *m.dir.Load()
	off := int(id) * m.width
	return chunks[0].rows[off : off+m.width]
}

// rowBad loads the directory first: a concurrent grow can swap it
// between the two loads and the bound indexes the wrong backing.
func (m *mat) rowBad(id uint32) []float32 {
	chunks := *m.dir.Load() // want `directory pointer of m is loaded before its atomic length`
	if id >= m.length.Load() {
		return nil
	}
	off := int(id) * m.width
	return chunks[0].rows[off : off+m.width]
}

// rowMaybe guards the length load behind a condition: the unguarded
// path still reaches the directory load first.
func (m *mat) rowMaybe(id uint32, checked bool) []float32 {
	if checked {
		if id >= m.length.Load() {
			return nil
		}
	}
	chunks := *m.dir.Load() // want `directory pointer of m is loaded before its atomic length`
	off := int(id) * m.width
	return chunks[0].rows[off : off+m.width]
}

type list struct {
	data []uint32
	n    atomic.Int64
}

// appendListGood is the inverted-list shape: element store, then the
// position publish.
func (l *list) appendListGood(id uint32) {
	pos := l.n.Load()
	l.data[pos] = id
	l.n.Store(pos + 1)
}

// appendListBad publishes the position before storing the element.
func (l *list) appendListBad(id uint32) {
	pos := l.n.Load()
	l.n.Store(pos + 1)
	l.data[pos] = id // want `plain write to the element region of l`
}

// scanList has a per-list length but no directory pointer: out of the
// reader rule's scope by construction.
func (l *list) scanList() uint32 {
	n := l.n.Load()
	var last uint32
	for i := int64(0); i < n; i++ {
		last = l.data[i]
	}
	return last
}

// newMat is the constructor shape: every store targets a body-local
// structure no reader can reach yet, so ordering is unconstrained.
func newMat(width int, rows []float32) *mat {
	m := &mat{width: width}
	m.length.Store(1)
	dir := []*chunk{{rows: make([]float32, width)}}
	m.dir.Store(&dir)
	copy(dir[0].rows, rows)
	return m
}

// statsSnapshot loads the directory pointer and an unrelated counter of
// the same structure but never indexes anything derived from it: there
// is no bound to violate, so load order is free.
func (m *mat) statsSnapshot() (int, uint32) {
	chunks := *m.dir.Load()
	return len(chunks), m.length.Load()
}

// sizeHintIsNotDerivation: a make() size hint taken from the published
// structure does not make the fresh map an element region of it.
func (m *mat) sizeHintIsNotDerivation(ids []uint32) map[uint32]int {
	byID := make(map[uint32]int, m.length.Load())
	m.length.Store(m.length.Load() + 1)
	for i, id := range ids {
		byID[id] = i
	}
	return byID
}
