// Package statcount enforces the counted-error-path contract in the
// serving tiers (searcher, broker, rpc): an error branch that swallows
// the error — neither returning it, wrapping it, assigning it onward nor
// panicking — is dropping work, and dropped work must be visible in a
// Stats counter (searcher.Stats.Dropped, broker failures, ...). PR 2's
// poison-message accounting and PR 3's failed-attempt counting both
// exist because silently swallowed errors had already cost a debugging
// session each.
//
// The pass flags `if err != nil { ... }` bodies that make no further use
// of err and contain no counter increment. A counter increment is a
// method call named Add/Inc/Incr/Count/Record, a sync/atomic Add, or a
// ++/+= on a struct field. Branches that are intentionally uncounted
// (e.g. best-effort cleanup) carry `//jdvs:nostat <reason>`.
package statcount

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"jdvs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statcount",
	Doc:  "error paths that drop work in searcher/broker/rpc must increment a Stats counter",
	Run:  run,
}

// targetSuffixes are the serving-tier packages under contract.
var targetSuffixes = []string{
	"internal/search/searcher",
	"internal/search/broker",
	"internal/rpc",
}

var counterNames = map[string]bool{
	"Add": true, "Inc": true, "Incr": true, "Count": true, "Record": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	match := false
	for _, s := range targetSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			match = true
			break
		}
	}
	if !match {
		return nil
	}

	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		errObj := errNilCheck(pass, ifStmt.Cond)
		if errObj == nil {
			return true
		}
		if usesObj(pass, ifStmt.Body, errObj) || hasCounter(pass, ifStmt.Body) || hasPanic(pass, ifStmt.Body) {
			return true
		}
		if pass.DirectiveAt(ifStmt.Pos(), "nostat") {
			return true
		}
		pass.Reportf(ifStmt.Pos(), "error path drops work without using %s or incrementing a Stats counter; count the drop or annotate //jdvs:nostat", errObj.Name())
		return true
	})
	return nil
}

// errNilCheck matches `X != nil` where X is an error-typed identifier,
// returning X's object.
func errNilCheck(pass *analysis.Pass, cond ast.Expr) types.Object {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return nil
	}
	expr, other := bin.X, bin.Y
	if tv, ok := pass.TypesInfo.Types[other]; !ok || !tv.IsNil() {
		if tv, ok := pass.TypesInfo.Types[expr]; !ok || !tv.IsNil() {
			return nil
		}
		expr, other = other, expr
	}
	_ = other
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !isErrorType(obj.Type()) {
		return nil
	}
	return obj
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func usesObj(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func hasPanic(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCounter looks for any recognized counter increment in body.
func hasCounter(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
					if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && strings.HasPrefix(fn.Name(), "Add") {
						found = true
						return false
					}
					// Method increments: x.dropped.Add(1),
					// stats.IncDropped(), w.Record(d) ...
					if fn.Type().(*types.Signature).Recv() != nil {
						for name := range counterNames {
							if fn.Name() == name || strings.HasPrefix(fn.Name(), name) {
								found = true
								return false
							}
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if v.Tok == token.INC {
				if _, ok := ast.Unparen(v.X).(*ast.SelectorExpr); ok {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 {
				if _, ok := ast.Unparen(v.Lhs[0]).(*ast.SelectorExpr); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
