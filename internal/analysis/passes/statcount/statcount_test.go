package statcount_test

import (
	"testing"

	"jdvs/internal/analysis/analysistest"
	"jdvs/internal/analysis/passes/statcount"
)

func TestStatCount(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), statcount.Analyzer, "statcount/...")
}
