// Package searcher mirrors the serving-tier shape the statcount contract
// covers: a consume loop where errors either propagate, get counted, or
// silently drop work.
package searcher

import (
	"errors"
	"sync/atomic"
)

type stats struct {
	dropped    atomic.Int64
	applyFails int64
}

type searcher struct {
	stats stats
	queue []func() error
}

var errPoison = errors.New("poison")

// okPropagated returns the error onward.
func (s *searcher) okPropagated() error {
	for _, apply := range s.queue {
		if err := apply(); err != nil {
			return err
		}
	}
	return nil
}

// okCountedAtomic drops the message but counts it.
func (s *searcher) okCountedAtomic() {
	for _, apply := range s.queue {
		if err := apply(); err != nil {
			s.stats.dropped.Add(1)
			continue
		}
	}
}

// okCountedPlain counts through a field increment.
func (s *searcher) okCountedPlain() {
	for _, apply := range s.queue {
		if err := apply(); err != nil {
			s.stats.applyFails++
			continue
		}
	}
}

// okWrapped uses the error even though it does not return it directly.
func (s *searcher) okWrapped() error {
	var last error
	for _, apply := range s.queue {
		if err := apply(); err != nil {
			last = errors.Join(errPoison, err)
			continue
		}
	}
	return last
}

// badSilentDrop swallows the error: the message is gone and no counter
// moved.
func (s *searcher) badSilentDrop() {
	for _, apply := range s.queue {
		if err := apply(); err != nil { // want `error path drops work without using err or incrementing a Stats counter`
			continue
		}
	}
}

// okAnnotated documents why this drop is deliberately uncounted.
func (s *searcher) okAnnotated() {
	for _, apply := range s.queue {
		//jdvs:nostat best-effort prefetch, failure is not dropped work
		if err := apply(); err != nil {
			continue
		}
	}
}
