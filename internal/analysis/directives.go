package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation escape hatches. Every analyzer that enforces a convention
// offers one `//jdvs:<name>` directive so a human can assert the
// invariant holds for reasons the analyzer cannot see; the directive's
// required trailing comment documents that reason in place. A directive
// suppresses findings of its analyzer on the same source line and on the
// line directly below it (so it can sit above a statement), and a
// directive on a func declaration covers the whole function where the
// analyzer says so.
//
// Directive comments look like:
//
//	//jdvs:nolock reason this plain access is safe
//
// The directive name runs to the first space; everything after is the
// justification. The directiverot audit pass flags directives with an
// empty justification and directives that never suppressed a finding
// during the run, so every use is recorded when it matches.

// A DirectiveUse is one //jdvs: comment found in a package, plus how
// many findings it suppressed during the current checker run.
type DirectiveUse struct {
	Name   string
	Reason string
	Pos    token.Pos
	// Hits counts DirectiveAt/FuncDirective matches. The checker shares
	// the index across all analyzers of a package, so by the time the
	// last-registered analyzer (directiverot) runs, Hits reflects the
	// whole suite.
	Hits int
}

// directiveIndex holds every directive of one package, addressable by
// file and line.
type directiveIndex struct {
	all    []*DirectiveUse
	byLine map[*token.File]map[int][]*DirectiveUse
}

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	ix := &directiveIndex{byLine: map[*token.File]map[int][]*DirectiveUse{}}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines := ix.byLine[tf]
		if lines == nil {
			lines = map[int][]*DirectiveUse{}
			ix.byLine[tf] = lines
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				u := &DirectiveUse{Name: name, Reason: reason, Pos: c.Pos()}
				ix.all = append(ix.all, u)
				ln := tf.Line(c.Pos())
				lines[ln] = append(lines[ln], u)
			}
		}
	}
	return ix
}

// Directives returns every //jdvs: directive in the package's files,
// with hit counts accumulated so far in this run. Used by directiverot.
func (p *Pass) Directives() []*DirectiveUse {
	p.buildDirectives()
	return p.directives.all
}

// DirectiveAt reports whether a `//jdvs:name` directive is attached to
// the line containing pos or to the line immediately above it. A match
// counts as a hit: passes consult directives only when suppressing a
// finding, so a hit means the directive is live.
func (p *Pass) DirectiveAt(pos token.Pos, name string) bool {
	p.buildDirectives()
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	lines := p.directives.byLine[tf]
	ln := tf.Line(pos)
	found := false
	for _, d := range lines[ln] {
		if d.Name == name {
			d.Hits++
			found = true
		}
	}
	if found {
		return true
	}
	for _, d := range lines[ln-1] {
		if d.Name == name {
			d.Hits++
			found = true
		}
	}
	return found
}

// FuncDirective reports whether fn (a *ast.FuncDecl or *ast.FuncLit)
// carries the directive: on its declaration line, the line above it, or
// anywhere in a FuncDecl's doc comment.
func (p *Pass) FuncDirective(fn ast.Node, name string) bool {
	if decl, ok := fn.(*ast.FuncDecl); ok && decl.Doc != nil {
		p.buildDirectives()
		for _, c := range decl.Doc.List {
			if d, _, ok := parseDirective(c.Text); ok && d == name {
				p.hitAt(c.Pos(), name)
				return true
			}
		}
	}
	return p.DirectiveAt(fn.Pos(), name)
}

// MarkDirectiveUsed records a suppression hit for the directive named
// name at pos. Passes that locate directives through their own AST walks
// (doc-comment scans the line index cannot see) call this so the
// directiverot audit still counts the directive as live.
func (p *Pass) MarkDirectiveUsed(pos token.Pos, name string) {
	p.buildDirectives()
	p.hitAt(pos, name)
}

// hitAt records a hit for the directive named name at pos (used when a
// match was located through the AST rather than the line index).
func (p *Pass) hitAt(pos token.Pos, name string) {
	tf := p.Fset.File(pos)
	if tf == nil {
		return
	}
	for _, d := range p.directives.byLine[tf][tf.Line(pos)] {
		if d.Name == name {
			d.Hits++
		}
	}
}

func (p *Pass) buildDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = buildDirectiveIndex(p.Fset, p.Files)
}

// parseDirective extracts the name and trailing justification from a
// `//jdvs:name reason...` comment.
func parseDirective(text string) (name, reason string, ok bool) {
	const prefix = "//jdvs:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
	} else {
		name = rest
	}
	if name == "" {
		return "", "", false
	}
	return name, reason, true
}
