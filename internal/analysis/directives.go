package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation escape hatches. Every analyzer that enforces a convention
// offers one `//jdvs:<name>` directive so a human can assert the
// invariant holds for reasons the analyzer cannot see; the directive's
// required trailing comment documents that reason in place. A directive
// suppresses findings of its analyzer on the same source line and on the
// line directly below it (so it can sit above a statement), and a
// directive on a func declaration covers the whole function where the
// analyzer says so.
//
// Directive comments look like:
//
//	//jdvs:nolock reason this plain access is safe
//
// The directive name runs to the first space; everything after is the
// justification (recommended, not enforced).

// DirectiveAt reports whether a `//jdvs:name` directive is attached to
// the line containing pos or to the line immediately above it.
func (p *Pass) DirectiveAt(pos token.Pos, name string) bool {
	p.buildDirectives()
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	lines := p.directives[tf]
	ln := tf.Line(pos)
	for _, d := range lines[ln] {
		if d == name {
			return true
		}
	}
	for _, d := range lines[ln-1] {
		if d == name {
			return true
		}
	}
	return false
}

// FuncDirective reports whether fn (a *ast.FuncDecl or *ast.FuncLit)
// carries the directive: on its declaration line, the line above it, or
// anywhere in a FuncDecl's doc comment.
func (p *Pass) FuncDirective(fn ast.Node, name string) bool {
	if decl, ok := fn.(*ast.FuncDecl); ok && decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if d, ok := parseDirective(c.Text); ok && d == name {
				return true
			}
		}
	}
	return p.DirectiveAt(fn.Pos(), name)
}

func (p *Pass) buildDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = map[*token.File]map[int][]string{}
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines := p.directives[tf]
		if lines == nil {
			lines = map[int][]string{}
			p.directives[tf] = lines
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parseDirective(c.Text); ok {
					ln := tf.Line(c.Pos())
					lines[ln] = append(lines[ln], d)
				}
			}
		}
	}
}

// parseDirective extracts the name from a `//jdvs:name ...` comment.
func parseDirective(text string) (string, bool) {
	const prefix = "//jdvs:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}
