// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the project's own
// framework.
//
// Fixtures live in a testdata/ directory holding a self-contained module
// (a go.mod plus packages under src/); the go tool never folds testdata
// into the enclosing build, so fixtures may freely seed contract
// violations. An expectation is a trailing comment on the offending
// line:
//
//	c.hits++ // want `accessed atomically elsewhere`
//
// Each backquoted or quoted string is a regexp that must match one
// diagnostic reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"jdvs/internal/analysis"
)

// TestData returns the testdata directory of the caller's package.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads ./src/<pkg> (recursively for "<pkg>/..." patterns) from the
// fixture module at dir, applies a, and checks expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunSuite(t, dir, []*analysis.Analyzer{a}, pkgs...)
}

// RunSuite is Run for several analyzers applied together in order. The
// directiverot audit needs it: its dead-suppression check reads the
// directive hits recorded by the analyzers registered before it in the
// same run.
func RunSuite(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "./src/" + p
	}
	fset, loaded, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	findings, err := analysis.RunAnalyzers(fset, loaded, analyzers)
	if err != nil {
		t.Fatalf("run %s: %v", analyzers[0].Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, pkg := range loaded {
		if !pkg.Target {
			continue
		}
		for _, f := range pkg.Files {
			collectWants(t, fset, f, func(file string, line int, e *expectation) {
				k := key{file, line}
				wants[k] = append(wants[k], e)
			})
		}
	}

	for _, fd := range findings {
		k := key{fd.Pos.Filename, fd.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if w.re.MatchString(fd.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posString(fd.Pos.Filename, fd.Pos.Line), fd.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", posString(k.file, k.line), w.re)
			}
		}
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func posString(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, add func(string, int, *expectation)) {
	t.Helper()
	tf := fset.File(f.Pos())
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// Line or block comment; block comments (used to attach an
			// expectation before a line-comment directive) drop the
			// closing delimiter so it does not trail the last pattern.
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
			idx := strings.Index(text, "want ")
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(text[idx+len("want "):])
			pos := fset.Position(c.Pos())
			for rest != "" {
				var lit string
				switch rest[0] {
				case '`':
					end := strings.Index(rest[1:], "`")
					if end < 0 {
						t.Fatalf("%s:%d: unterminated want pattern", tf.Name(), pos.Line)
					}
					lit = rest[1 : 1+end]
					rest = strings.TrimSpace(rest[end+2:])
				case '"':
					var err error
					q := rest
					// Find the closing quote via Unquote on growing
					// prefixes — want strings are short.
					endq := -1
					for i := 1; i < len(q); i++ {
						if q[i] == '"' && q[i-1] != '\\' {
							endq = i
							break
						}
					}
					if endq < 0 {
						t.Fatalf("%s:%d: unterminated want pattern", tf.Name(), pos.Line)
					}
					lit, err = strconv.Unquote(q[:endq+1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", tf.Name(), pos.Line, q[:endq+1], err)
					}
					rest = strings.TrimSpace(q[endq+1:])
				default:
					t.Fatalf("%s:%d: want patterns must be quoted or backquoted, got %q", tf.Name(), pos.Line, rest)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", tf.Name(), pos.Line, lit, err)
				}
				add(pos.Filename, pos.Line, &expectation{re: re})
			}
		}
	}
}
