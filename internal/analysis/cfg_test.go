package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc type-checks src (a complete file body without the package
// clause) and returns the named function plus the supporting machinery.
func parseFunc(t *testing.T, src, name string) (*token.FileSet, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "a.go", "package p\n\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, info, fd
		}
	}
	t.Fatalf("no func %s", name)
	return nil, nil, nil
}

// findCall locates the CallExpr whose source text contains want.
func findCall(t *testing.T, fset *token.FileSet, fn *ast.FuncDecl, want string) (*ast.CallExpr, []ast.Node) {
	t.Helper()
	var call *ast.CallExpr
	var stack, result []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		if c, ok := n.(*ast.CallExpr); ok && call == nil {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == want {
				call = c
				result = append([]ast.Node(nil), stack...)
			}
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == want {
				call = c
				result = append([]ast.Node(nil), stack...)
			}
		}
		return true
	}
	ast.Inspect(fn, walk)
	if call == nil {
		t.Fatalf("no call %s in %s", want, fn.Name.Name)
	}
	return call, result
}

func TestCFGOrdering(t *testing.T) {
	src := `
func f(cond bool) {
	a()
	if cond {
		b()
		return
	}
	c()
	d()
}
func a() {}
func b() {}
func c() {}
func d() {}
`
	fset, _, fn := parseFunc(t, src, "f")
	cfg := BuildCFG(fn)

	a, as := findCall(t, fset, fn, "a")
	b, bs := findCall(t, fset, fn, "b")
	c, cs := findCall(t, fset, fn, "c")
	d, ds := findCall(t, fset, fn, "d")
	pa, pb := cfg.NodePos(a, as), cfg.NodePos(b, bs)
	pc, pd := cfg.NodePos(c, cs), cfg.NodePos(d, ds)
	for i, p := range []NodePos{pa, pb, pc, pd} {
		if !p.Valid() {
			t.Fatalf("call %d did not resolve to a CFG position", i)
		}
	}

	if !cfg.ReachableAfter(pa, pb, false) || !cfg.ReachableAfter(pa, pc, false) {
		t.Errorf("b and c must be reachable after a")
	}
	if cfg.ReachableAfter(pb, pc, false) {
		t.Errorf("c must not be reachable after b (b's branch returns)")
	}
	if cfg.ReachableAfter(pc, pb, false) {
		t.Errorf("b must not be reachable after c")
	}
	if !cfg.ReachableAfter(pc, pd, false) {
		t.Errorf("d must be reachable after c")
	}
}

func TestCFGLoopBackEdges(t *testing.T) {
	src := `
func f(n int) {
	for i := 0; i < n; i++ {
		w()
		p()
	}
}
func w() {}
func p() {}
`
	fset, _, fn := parseFunc(t, src, "f")
	cfg := BuildCFG(fn)
	w, ws := findCall(t, fset, fn, "w")
	p, ps := findCall(t, fset, fn, "p")
	pw, pp := cfg.NodePos(w, ws), cfg.NodePos(p, ps)

	// Within one iteration w precedes p; w after p requires the back edge.
	if !cfg.ReachableAfter(pw, pp, false) {
		t.Errorf("p must be reachable after w without back edges")
	}
	if cfg.ReachableAfter(pp, pw, false) {
		t.Errorf("w after p should require a back edge")
	}
	if !cfg.ReachableAfter(pp, pw, true) {
		t.Errorf("w must be reachable after p when following back edges")
	}
}

func TestCFGPathAvoiding(t *testing.T) {
	src := `
func covered(cond bool) {
	get()
	if cond {
		put()
		return
	}
	put()
}
func leaky(cond bool) {
	get()
	if cond {
		return
	}
	put()
}
func get() {}
func put() {}
`
	isPut := func(fset *token.FileSet) func(ast.Node) bool {
		return func(n ast.Node) bool {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "put" {
						found = true
					}
				}
				return !found
			})
			return found
		}
	}

	fset, _, fn := parseFunc(t, src, "covered")
	cfg := BuildCFG(fn)
	g, gs := findCall(t, fset, fn, "get")
	if cfg.PathAvoiding(cfg.NodePos(g, gs), isPut(fset)) {
		t.Errorf("covered: every exit passes put, PathAvoiding must be false")
	}

	fset2, _, fn2 := parseFunc(t, src, "leaky")
	cfg2 := BuildCFG(fn2)
	g2, gs2 := findCall(t, fset2, fn2, "get")
	if !cfg2.PathAvoiding(cfg2.NodePos(g2, gs2), isPut(fset2)) {
		t.Errorf("leaky: the early return skips put, PathAvoiding must be true")
	}
}

func TestCFGPathToAvoiding(t *testing.T) {
	src := `
func reader(cond bool) {
	if cond {
		loadLen()
	}
	loadDir()
}
func ordered() {
	loadLen()
	loadDir()
}
func loadLen() {}
func loadDir() {}
`
	isLen := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "loadLen" {
					found = true
				}
			}
			return !found
		})
		return found
	}

	fset, _, fn := parseFunc(t, src, "reader")
	cfg := BuildCFG(fn)
	d, ds := findCall(t, fset, fn, "loadDir")
	if !cfg.PathToAvoiding(cfg.NodePos(d, ds), isLen) {
		t.Errorf("reader: the cond=false path reaches loadDir with no loadLen")
	}

	fset2, _, fn2 := parseFunc(t, src, "ordered")
	cfg2 := BuildCFG(fn2)
	d2, ds2 := findCall(t, fset2, fn2, "loadDir")
	if cfg2.PathToAvoiding(cfg2.NodePos(d2, ds2), isLen) {
		t.Errorf("ordered: loadLen always precedes loadDir")
	}
}

func TestCFGSelectAndDefer(t *testing.T) {
	src := `
func f(ch chan int, done chan struct{}) {
	defer cleanup()
	select {
	case v := <-ch:
		use(v)
	case <-done:
		return
	}
	tail()
}
func cleanup() {}
func use(int) {}
func tail() {}
`
	fset, _, fn := parseFunc(t, src, "f")
	cfg := BuildCFG(fn)
	if len(cfg.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(cfg.Defers))
	}
	u, us := findCall(t, fset, fn, "use")
	tl, ts := findCall(t, fset, fn, "tail")
	pu, pt := cfg.NodePos(u, us), cfg.NodePos(tl, ts)
	if !pu.Valid() || !pt.Valid() {
		t.Fatal("select-branch calls did not resolve")
	}
	if !cfg.ReachableAfter(pu, pt, false) {
		t.Errorf("tail must be reachable after the first select branch")
	}
}

func TestCFGPanicEdge(t *testing.T) {
	src := `
func f(cond bool) {
	get()
	if cond {
		panic("boom")
	}
	put()
}
func get() {}
func put() {}
`
	fset, _, fn := parseFunc(t, src, "f")
	cfg := BuildCFG(fn)
	g, gs := findCall(t, fset, fn, "get")
	isPut := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "put" {
					found = true
				}
			}
			return !found
		})
		return found
	}
	// The only put-free exit is the panic; PathAvoiding skips panic
	// edges, so the function counts as covered.
	if cfg.PathAvoiding(cfg.NodePos(g, gs), isPut) {
		t.Errorf("panic-only escape must not count as a leak")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	src := `
func f(x int) {
	switch x {
	case 0:
		a()
		fallthrough
	case 1:
		b()
	default:
		c()
	}
}
func a() {}
func b() {}
func c() {}
`
	fset, _, fn := parseFunc(t, src, "f")
	cfg := BuildCFG(fn)
	a, as := findCall(t, fset, fn, "a")
	b, bs := findCall(t, fset, fn, "b")
	c, cs := findCall(t, fset, fn, "c")
	pa, pb, pc := cfg.NodePos(a, as), cfg.NodePos(b, bs), cfg.NodePos(c, cs)
	if !cfg.ReachableAfter(pa, pb, false) {
		t.Errorf("fallthrough: b must be reachable after a")
	}
	if cfg.ReachableAfter(pa, pc, false) {
		t.Errorf("default must not be reachable after case 0's body")
	}
}

func TestNodePosClimbsStack(t *testing.T) {
	src := `
func f() int {
	return g() + 1
}
func g() int { return 0 }
`
	fset, _, fn := parseFunc(t, src, "f")
	cfg := BuildCFG(fn)
	call, stack := findCall(t, fset, fn, "g")
	// The call itself is not a registered node; its ReturnStmt is.
	pos := cfg.NodePos(call, stack)
	if !pos.Valid() {
		t.Fatal("NodePos must climb the stack to the enclosing statement")
	}
	if _, ok := pos.Block.Nodes[pos.Index].(*ast.ReturnStmt); !ok {
		t.Errorf("resolved to %T, want *ast.ReturnStmt", pos.Block.Nodes[pos.Index])
	}
}
