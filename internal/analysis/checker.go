package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one reported diagnostic, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to every loaded non-standard
// package in dependency order (so facts flow upstream → downstream) and
// returns the findings from target packages, sorted by position.
//
// Packages that failed to type-check abort the run: analyzers assume
// complete type information, and a finding produced from broken types is
// noise.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	facts := newFactStore()
	suite := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		suite[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		if pkg.Standard || pkg.Types == nil {
			continue
		}
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("analysis: %s does not type-check: %v", pkg.ImportPath, pkg.Errors[0])
		}
		// One directive index per package, shared by every analyzer's
		// pass: suppression hits recorded by early analyzers are visible
		// to the directiverot audit, which registers last.
		dirs := buildDirectiveIndex(fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				facts:      facts,
				directives: dirs,
				suite:      suite,
			}
			target := pkg.Target
			pass.report = func(d Diagnostic) {
				if target {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      fset.Position(d.Pos),
						Message:  d.Message,
					})
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
