package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A simple may-alias / escape lattice over a function CFG, built for the
// aliasshare contract: a value handed to another consumer (a cache, a
// waiter channel, a second slot of a shared result slice) must not
// retain mutable slice/map state the producer — or a sibling consumer —
// can still reach. The abstraction tracks, per local variable, the set
// of Origins its mutable backing state may alias:
//
//   - OriginFresh: allocated at a known site in this function (make,
//     new, composite literal, a call result, append onto a nil slice, an
//     explicit clone). Fresh state has exactly one owner until shared.
//   - OriginParam / OriginField / OriginGlobal: state reachable through
//     a parameter, a receiver/struct field, or a package-level variable
//     — the producer (or its callers) retain access.
//   - OriginElem: an element of a tracked local slice; two loads of
//     elements of the same slice may alias each other, which is exactly
//     the PR 9 batch-dedup shape (resps[i] = resps[j]).
//
// Struct values additionally track per-field origins for their
// reference-typed fields, so the blessed deep-copy idiom
//
//	cp := *r
//	cp.Hits = append([]core.Hit(nil), r.Hits...)
//
// analyzes as fresh: the dereference copies r's interior aliasing onto
// cp's fields, and the append of a cloned slice kills it field by field.
// Calls are assumed to return fresh state; interface values (error) are
// treated as alias-free. Both choices under-report by design — the
// analyzers built on this lattice gate hard CI, so a false positive
// costs more than a miss.

// OriginKind classifies where aliased state may live.
type OriginKind uint8

const (
	OriginFresh OriginKind = iota
	OriginParam
	OriginField
	OriginGlobal
	OriginElem
	OriginUnknown
)

func (k OriginKind) String() string {
	switch k {
	case OriginFresh:
		return "fresh"
	case OriginParam:
		return "parameter"
	case OriginField:
		return "field"
	case OriginGlobal:
		return "package variable"
	case OriginElem:
		return "slice element"
	default:
		return "unknown"
	}
}

// An Origin is one abstract source of mutable state.
type Origin struct {
	Kind OriginKind
	// Obj names the root: the parameter/receiver/global variable, or the
	// slice variable for OriginElem. Nil for fresh/unknown.
	Obj types.Object
	// LoopVariant marks an OriginElem indexed by a variable assigned
	// inside the sink's enclosing loop: each iteration names a distinct
	// element, so fanning such elements out one per waiter is not
	// sharing.
	LoopVariant bool
}

// originSet is a small set of origins.
type originSet map[Origin]struct{}

func (s originSet) add(o Origin) { s[o] = struct{}{} }

func (s originSet) union(o originSet) originSet {
	if len(o) == 0 {
		return s
	}
	if s == nil {
		s = originSet{}
	}
	for k := range o {
		s[k] = struct{}{}
	}
	return s
}

func (s originSet) clone() originSet {
	c := make(originSet, len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

// valueTaint abstracts one variable's aliasing: the origins of the value
// itself (for pointer/slice/map-typed variables) plus per-field origins
// for struct-typed variables whose fields carry references.
type valueTaint struct {
	origins originSet
	fields  map[string]originSet
}

func (t *valueTaint) clone() *valueTaint {
	if t == nil {
		return nil
	}
	c := &valueTaint{origins: t.origins.clone()}
	if t.fields != nil {
		c.fields = make(map[string]originSet, len(t.fields))
		for k, v := range t.fields {
			c.fields[k] = v.clone()
		}
	}
	return c
}

// all returns every origin reachable through the value: its own plus its
// tracked fields'.
func (t *valueTaint) all() originSet {
	if t == nil {
		return nil
	}
	out := t.origins.clone()
	if out == nil {
		out = originSet{}
	}
	for _, fs := range t.fields {
		out = out.union(fs)
	}
	return out
}

// merge unions o into t, reporting change (for the fixpoint).
func (t *valueTaint) merge(o *valueTaint) bool {
	if o == nil {
		return false
	}
	changed := false
	for k := range o.origins {
		if _, ok := t.origins[k]; !ok {
			if t.origins == nil {
				t.origins = originSet{}
			}
			t.origins.add(k)
			changed = true
		}
	}
	for f, os := range o.fields {
		if t.fields == nil {
			t.fields = map[string]originSet{}
		}
		cur := t.fields[f]
		for k := range os {
			if _, ok := cur[k]; !ok {
				if cur == nil {
					cur = originSet{}
					t.fields[f] = cur
				}
				cur.add(k)
				changed = true
			}
		}
	}
	return changed
}

// aliasState maps tracked locals to their taint at one program point.
type aliasState map[*types.Var]*valueTaint

func (s aliasState) clone() aliasState {
	c := make(aliasState, len(s))
	for k, v := range s {
		c[k] = v.clone()
	}
	return c
}

func (s aliasState) mergeFrom(o aliasState) bool {
	changed := false
	for v, t := range o {
		cur, ok := s[v]
		if !ok {
			s[v] = t.clone()
			changed = true
			continue
		}
		if cur.merge(t) {
			changed = true
		}
	}
	return changed
}

// Aliasing is the per-function fixpoint solution: block-entry states
// plus the evaluator analyzers query at sink positions.
type Aliasing struct {
	cfg  *CFG
	info *types.Info
	in   []aliasState
}

// FuncAliasing solves the alias lattice for c, cached per (Pass, CFG).
func (p *Pass) FuncAliasing(c *CFG) *Aliasing {
	if p.aliasing == nil {
		p.aliasing = map[*CFG]*Aliasing{}
	}
	if a, ok := p.aliasing[c]; ok {
		return a
	}
	a := solveAliasing(c, p.TypesInfo)
	p.aliasing[c] = a
	return a
}

func solveAliasing(c *CFG, info *types.Info) *Aliasing {
	a := &Aliasing{cfg: c, info: info, in: make([]aliasState, len(c.Blocks))}
	for i := range a.in {
		a.in[i] = aliasState{}
	}
	work := make([]*Block, len(c.Blocks))
	copy(work, c.Blocks)
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		state := a.in[blk.Index].clone()
		for _, n := range blk.Nodes {
			a.transfer(state, n)
		}
		for _, s := range blk.Succs {
			if a.in[s.Index].mergeFrom(state) {
				work = append(work, s)
			}
		}
	}
	return a
}

// OriginsAt evaluates expr's origins at its CFG position, resolved from
// stack (a WithStack ancestor stack containing the node).
func (a *Aliasing) OriginsAt(expr ast.Expr, stack []ast.Node) originSet {
	pos := a.cfg.NodePos(expr, stack)
	if !pos.Valid() {
		return originSet{Origin{Kind: OriginUnknown}: {}}
	}
	state := a.in[pos.Block.Index].clone()
	for _, n := range pos.Block.Nodes[:pos.Index] {
		a.transfer(state, n)
	}
	return a.eval(state, expr).all()
}

// transfer applies one node's assignments to state.
func (a *Aliasing) transfer(state aliasState, n ast.Node) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			// Evaluate all RHS before assigning (tuple semantics).
			vals := make([]*valueTaint, len(s.Rhs))
			for i := range s.Rhs {
				vals[i] = a.eval(state, s.Rhs[i])
			}
			for i, lhs := range s.Lhs {
				a.assign(state, lhs, vals[i])
			}
			return
		}
		// Multi-value RHS (call, map index, receive): call results are
		// fresh; others conservative.
		for _, lhs := range s.Lhs {
			a.assign(state, lhs, &valueTaint{origins: originSet{Origin{Kind: OriginFresh}: {}}})
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t *valueTaint
					if i < len(vs.Values) {
						t = a.eval(state, vs.Values[i])
					} else {
						t = &valueTaint{origins: originSet{Origin{Kind: OriginFresh}: {}}}
					}
					a.assign(state, name, t)
				}
			}
		}
	case *ast.RangeStmt:
		// Key is an index (no aliasing); value aliases elements of X.
		if id, ok := s.Value.(*ast.Ident); ok {
			xt := a.eval(state, s.X)
			elemOrigins := originSet{}
			if root := rootVarOf(a.info, s.X); root != nil {
				elemOrigins.add(Origin{Kind: OriginElem, Obj: root})
			} else {
				elemOrigins = xt.all()
			}
			a.assign(state, id, &valueTaint{origins: elemOrigins})
		}
	}
}

// assign stores taint into an lvalue: a whole-variable strong update, or
// a per-field update for v.F = x.
func (a *Aliasing) assign(state aliasState, lhs ast.Expr, t *valueTaint) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if v := asLocalVar(a.info, l); v != nil {
			state[v] = t.clone()
		}
	case *ast.SelectorExpr:
		// v.F = x: strong per-field update when v is a tracked local
		// struct (or pointer to one we materialized via deref-copy).
		if id, ok := l.X.(*ast.Ident); ok {
			if v := asLocalVar(a.info, id); v != nil {
				cur, ok := state[v]
				if !ok {
					cur = &valueTaint{}
					state[v] = cur
				}
				if cur.fields == nil {
					cur.fields = map[string]originSet{}
				}
				os := t.all()
				if onlyFresh(os) {
					delete(cur.fields, l.Sel.Name)
				} else {
					cur.fields[l.Sel.Name] = os
				}
			}
		}
	}
	// Index/star stores (s[i] = x, *p = x) mutate the pointed-to state;
	// the sinks themselves inspect those directly.
}

func onlyFresh(os originSet) bool {
	for o := range os {
		if o.Kind != OriginFresh {
			return false
		}
	}
	return true
}

// eval computes the taint of an expression under state.
func (a *Aliasing) eval(state aliasState, e ast.Expr) *valueTaint {
	fresh := func() *valueTaint {
		return &valueTaint{origins: originSet{Origin{Kind: OriginFresh}: {}}}
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return &valueTaint{}
		}
		obj := a.info.Uses[x]
		if obj == nil {
			obj = a.info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return &valueTaint{}
		}
		if lv := asLocalVar(a.info, x); lv != nil {
			if t, ok := state[lv]; ok {
				return t.clone()
			}
			// Untracked local: parameters carry producer-reachable state.
			if isParamOf(lv, a.cfg.Fn, a.info) {
				return &valueTaint{origins: originSet{Origin{Kind: OriginParam, Obj: lv}: {}}}
			}
			return &valueTaint{}
		}
		if v.IsField() {
			return &valueTaint{origins: originSet{Origin{Kind: OriginField, Obj: v}: {}}}
		}
		// Package-level variable, or a captured outer-function local —
		// either way state another goroutine/frame can reach.
		return &valueTaint{origins: originSet{Origin{Kind: OriginGlobal, Obj: v}: {}}}
	case *ast.SelectorExpr:
		// Reading x.F: fields of tracked struct locals use the per-field
		// map; anything else is state behind the base.
		if id, ok := x.X.(*ast.Ident); ok {
			if v := asLocalVar(a.info, id); v != nil {
				if t, ok := state[v]; ok {
					if fs, ok := t.fields[x.Sel.Name]; ok {
						return &valueTaint{origins: fs.clone()}
					}
					if onlyFresh(t.origins) {
						return fresh()
					}
					return &valueTaint{origins: t.origins.clone()}
				}
			}
		}
		base := a.eval(state, x.X)
		bo := base.all()
		if len(bo) == 0 || onlyFresh(bo) {
			// Field of an untracked or fresh base: the receiver path
			// makes it field state.
			if sel, ok := a.info.Selections[x]; ok {
				if fv, ok := sel.Obj().(*types.Var); ok {
					return &valueTaint{origins: originSet{Origin{Kind: OriginField, Obj: fv}: {}}}
				}
			}
			return &valueTaint{origins: originSet{Origin{Kind: OriginUnknown}: {}}}
		}
		return &valueTaint{origins: bo}
	case *ast.IndexExpr:
		// s[i]: elements of a tracked slice may alias each other.
		if root := rootVarOf(a.info, x.X); root != nil {
			return &valueTaint{origins: originSet{Origin{Kind: OriginElem, Obj: root, LoopVariant: false}: {}}}
		}
		return a.eval(state, x.X)
	case *ast.SliceExpr:
		return a.eval(state, x.X)
	case *ast.StarExpr:
		// *p: a struct copy whose reference fields alias p's interior.
		pt := a.eval(state, x.X)
		t := &valueTaint{}
		if st := derefStruct(a.info.Types[x].Type); st != nil {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if hasMutableRefs(f.Type()) {
					os := pt.all()
					if len(os) == 0 {
						os = originSet{Origin{Kind: OriginUnknown}: {}}
					}
					if t.fields == nil {
						t.fields = map[string]originSet{}
					}
					t.fields[f.Name()] = os
				}
			}
			return t
		}
		return &valueTaint{origins: pt.all()}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &v: exposes v's interior; &T{...} evaluates the literal.
			inner := a.eval(state, x.X)
			out := &valueTaint{origins: originSet{Origin{Kind: OriginFresh}: {}}}
			if inner != nil {
				out.fields = map[string]originSet{}
				for f, os := range inner.fields {
					out.fields[f] = os.clone()
				}
				for o := range inner.origins {
					if o.Kind != OriginFresh {
						out.origins.add(o)
					}
				}
			}
			return out
		}
		if x.Op == token.ARROW {
			return fresh() // received values: sender's problem
		}
		return &valueTaint{}
	case *ast.CompositeLit:
		t := &valueTaint{origins: originSet{Origin{Kind: OriginFresh}: {}}}
		if st := derefStruct(a.info.Types[x].Type); st != nil {
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				os := a.eval(state, kv.Value).all()
				if !onlyFresh(os) && len(os) > 0 {
					if t.fields == nil {
						t.fields = map[string]originSet{}
					}
					t.fields[key.Name] = os
				}
			}
		}
		return t
	case *ast.CallExpr:
		if isCloneCall(a.info, x) || isMakeOrNew(x) {
			return fresh()
		}
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			// append(dst, elems...): fresh when dst is provably fresh/nil
			// and the element type carries no references of its own.
			dst := a.eval(state, x.Args[0])
			do := dst.all()
			if len(do) == 0 || onlyFresh(do) {
				if tv, ok := a.info.Types[x.Args[0]]; ok {
					if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !hasMutableRefs(sl.Elem()) {
						return fresh()
					}
				}
				// Element type itself aliases: union in the sources.
				t := fresh()
				for _, arg := range x.Args[1:] {
					t.origins = t.origins.union(a.eval(state, arg).all())
				}
				return t
			}
			t := &valueTaint{origins: do}
			for _, arg := range x.Args[1:] {
				t.origins = t.origins.union(a.eval(state, arg).all())
			}
			return t
		}
		// Other calls: assumed to return freshly allocated state. An
		// accessor returning internal state is missed by design (see the
		// package comment): this lattice under-reports.
		return fresh()
	case *ast.TypeAssertExpr:
		return a.eval(state, x.X)
	case *ast.BasicLit, *ast.FuncLit:
		return fresh()
	}
	return &valueTaint{}
}

// rootVarOf returns the local/param variable at the root of a simple
// index base (resps, or q.sc-style chains return nil).
func rootVarOf(info *types.Info, e ast.Expr) *types.Var {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}

func derefStruct(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	st, _ := u.(*types.Struct)
	return st
}

// hasMutableRefs reports whether values of t carry mutable reference
// state: slices, maps, pointers, channels, or structs containing them.
// Strings and interfaces do not count (strings are immutable; interface
// dynamic state is invisible to this intraprocedural lattice).
func hasMutableRefs(t types.Type) bool {
	return hasMutableRefs1(t, 0)
}

func hasMutableRefs1(t types.Type, depth int) bool {
	if depth > 4 {
		return true // deep nesting: assume the worst
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasMutableRefs1(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return hasMutableRefs1(u.Elem(), depth+1)
	}
	return false
}

// isCloneCall recognizes the explicit deep-copy idioms.
func isCloneCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			p, n := fn.Pkg().Path(), fn.Name()
			if (p == "slices" || p == "maps" || p == "bytes" || p == "strings") && n == "Clone" {
				return true
			}
		}
	}
	return false
}

func isMakeOrNew(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && (id.Name == "make" || id.Name == "new")
}

// isParamOf reports whether v is a parameter/receiver of fn.
func isParamOf(v *types.Var, fn ast.Node, info *types.Info) bool {
	var lists []*ast.FieldList
	switch f := fn.(type) {
	case *ast.FuncDecl:
		lists = fieldLists(f)
	case *ast.FuncLit:
		lists = []*ast.FieldList{f.Type.Params}
	}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if info.Defs[name] == v {
					return true
				}
			}
		}
	}
	return false
}
