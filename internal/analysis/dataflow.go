package analysis

import (
	"go/ast"
	"go/types"
)

// Reaching definitions over a function CFG: which assignments may have
// produced the value a use observes. publishorder uses it to decide
// whether the base of an element write was derived from the structure
// being published (chunks := *m.dir.Load(); chunks[i] = v writes m's
// element region); poolreturn uses it to tell a pooled value obtained by
// this iteration's Get from one re-obtained after a Put.

// A DefUse holds the reaching-definition solution for one CFG.
type DefUse struct {
	cfg  *CFG
	info *types.Info

	// defsOf maps a variable to its definition sites (each an ast.Node:
	// the AssignStmt/ValueSpec/RangeStmt/IncDecStmt, or the FuncDecl/
	// FuncLit for parameters and receivers).
	defsOf map[*types.Var][]int
	sites  []defSite
	// in[b] is the bitset of definitions reaching block b's entry.
	in []bitset
}

type defSite struct {
	v    *types.Var
	node ast.Node
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) orChanged(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// ReachingDefs solves reaching definitions for c. The solution is cached
// per (Pass, CFG).
func (p *Pass) ReachingDefs(c *CFG) *DefUse {
	if p.defuse == nil {
		p.defuse = map[*CFG]*DefUse{}
	}
	if du, ok := p.defuse[c]; ok {
		return du
	}
	du := solveReachingDefs(c, p.TypesInfo)
	p.defuse[c] = du
	return du
}

func solveReachingDefs(c *CFG, info *types.Info) *DefUse {
	du := &DefUse{cfg: c, info: info, defsOf: map[*types.Var][]int{}}

	addSite := func(v *types.Var, node ast.Node) int {
		id := len(du.sites)
		du.sites = append(du.sites, defSite{v: v, node: node})
		du.defsOf[v] = append(du.defsOf[v], id)
		return id
	}

	// Parameters, receivers and named results define at entry.
	entryDefs := []int{}
	if fd, ok := c.Fn.(*ast.FuncDecl); ok {
		for _, fl := range fieldLists(fd) {
			for _, field := range fl.List {
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						entryDefs = append(entryDefs, addSite(v, c.Fn))
					}
				}
			}
		}
	} else if fl, ok := c.Fn.(*ast.FuncLit); ok {
		for _, f := range fl.Type.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					entryDefs = append(entryDefs, addSite(v, c.Fn))
				}
			}
		}
	}

	// Enumerate definition sites per block node.
	type nodeDefs struct {
		ids []int
	}
	perNode := map[ast.Node]*nodeDefs{}
	record := func(n ast.Node, id *ast.Ident) {
		v := asLocalVar(info, id)
		if v == nil {
			return
		}
		nd := perNode[n]
		if nd == nil {
			nd = &nodeDefs{}
			perNode[n] = nd
		}
		nd.ids = append(nd.ids, addSite(v, n))
	}
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			collectDefs(n, func(id *ast.Ident) { record(n, id) })
		}
	}

	nDefs := len(du.sites)
	du.in = make([]bitset, len(c.Blocks))
	out := make([]bitset, len(c.Blocks))
	for i := range du.in {
		du.in[i] = newBitset(nDefs)
		out[i] = newBitset(nDefs)
	}
	for _, d := range entryDefs {
		du.in[c.Entry.Index].set(d)
	}

	transfer := func(blk *Block, state bitset) {
		for _, n := range blk.Nodes {
			nd := perNode[n]
			if nd == nil {
				continue
			}
			for _, id := range nd.ids {
				// Kill every other def of the same variable, then gen.
				for _, other := range du.defsOf[du.sites[id].v] {
					state.clear(other)
				}
				state.set(id)
			}
		}
	}

	// Worklist iteration to fixpoint: in[b] only ever grows (union over
	// predecessors' outs) and out = transfer(in) is monotone in it.
	work := make([]*Block, len(c.Blocks))
	copy(work, c.Blocks)
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		state := du.in[blk.Index].clone()
		transfer(blk, state)
		if eq(out[blk.Index], state) {
			continue
		}
		out[blk.Index] = state
		for _, s := range blk.Succs {
			if du.in[s.Index].orChanged(state) {
				work = append(work, s)
			}
		}
	}
	return du
}

func eq(a, b bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DefsAt returns the definition nodes of v that may reach position pos.
func (d *DefUse) DefsAt(v *types.Var, pos NodePos) []ast.Node {
	if !pos.ok {
		return nil
	}
	ids := d.defsOf[v]
	if len(ids) == 0 {
		return nil
	}
	state := d.in[pos.Block.Index].clone()
	// Replay the block prefix to the query point.
	for _, n := range pos.Block.Nodes[:pos.Index] {
		collectDefs(n, func(id *ast.Ident) {
			dv := asLocalVar(d.info, id)
			if dv == nil {
				return
			}
			for _, other := range d.defsOf[dv] {
				state.clear(other)
			}
			for _, sid := range d.defsOf[dv] {
				if d.sites[sid].node == n {
					state.set(sid)
				}
			}
		})
	}
	var nodes []ast.Node
	for _, id := range ids {
		if state.has(id) {
			nodes = append(nodes, d.sites[id].node)
		}
	}
	return nodes
}

// DerivedFrom reports whether the value of ident `use` at pos may be
// derived — through chains of local assignments — from the object root
// (a variable, typically a receiver). It walks reaching definitions
// transitively: chunks := *m.dir.Load() makes chunks derived from m.
func (d *DefUse) DerivedFrom(use *ast.Ident, pos NodePos, root types.Object) bool {
	v := asLocalVar(d.info, use)
	if obj := d.info.Uses[use]; obj == root {
		return true
	}
	if v == nil {
		return false
	}
	seen := map[*types.Var]bool{}
	var fromVar func(v *types.Var, at NodePos) bool
	fromVar = func(v *types.Var, at NodePos) bool {
		if v == root {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		for _, def := range d.DefsAt(v, at) {
			rhs := rhsFor(def, v, d.info)
			if rhs == nil {
				continue
			}
			found := false
			ast.Inspect(rhs, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && isBuiltinAlloc(d.info, call) {
					// make/new results are fresh: a size hint such as
					// make(map[K]V, s.fwd.Len()) does not alias s.
					return false
				}
				if id, ok := n.(*ast.Ident); ok {
					if d.info.Uses[id] == root {
						found = true
						return false
					}
					if rv := asLocalVar2(d.info, id); rv != nil && rv != v {
						defPos, ok := d.cfg.pos[def]
						if ok && fromVar(rv, defPos) {
							found = true
							return false
						}
					}
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
	return fromVar(v, pos)
}

// isBuiltinAlloc reports whether call invokes the make or new builtin.
func isBuiltinAlloc(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "make" || b.Name() == "new")
}

// rhsFor extracts the expression assigned to v by definition node def.
func rhsFor(def ast.Node, v *types.Var, info *types.Info) ast.Expr {
	switch n := def.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if asLocalVar(info, id) == v || info.Uses[id] == v {
				if len(n.Rhs) == len(n.Lhs) {
					return n.Rhs[i]
				}
				if len(n.Rhs) == 1 {
					return n.Rhs[0]
				}
			}
		}
	case *ast.ValueSpec:
		for i, name := range n.Names {
			if asLocalVar(info, name) == v {
				if i < len(n.Values) {
					return n.Values[i]
				}
			}
		}
	case *ast.RangeStmt:
		return n.X
	}
	return nil
}

// collectDefs calls fn for every identifier the node (re)defines.
func collectDefs(n ast.Node, fn func(*ast.Ident)) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				fn(id)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			fn(id)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						fn(name)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := s.Key.(*ast.Ident); ok {
			fn(id)
		}
		if id, ok := s.Value.(*ast.Ident); ok {
			fn(id)
		}
	}
}

// fieldLists returns the receiver, parameter and named-result lists of a
// declaration — every identifier defined at function entry.
func fieldLists(fd *ast.FuncDecl) []*ast.FieldList {
	var out []*ast.FieldList
	if fd.Recv != nil {
		out = append(out, fd.Recv)
	}
	if fd.Type.Params != nil {
		out = append(out, fd.Type.Params)
	}
	if fd.Type.Results != nil {
		out = append(out, fd.Type.Results)
	}
	return out
}

// asLocalVar resolves id to the *types.Var it defines or assigns;
// package-level and field objects return nil (their defs cannot be
// tracked intraprocedurally).
func asLocalVar(info *types.Info, id *ast.Ident) *types.Var {
	var obj types.Object
	if o, ok := info.Defs[id]; ok {
		obj = o
	} else if o, ok := info.Uses[id]; ok {
		obj = o
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return nil // package scope
	}
	return v
}

// asLocalVar2 is asLocalVar restricted to uses (reads on a RHS).
func asLocalVar2(info *types.Info, id *ast.Ident) *types.Var {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return nil
	}
	return v
}
