package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// findIdentUse locates the i-th use (0-based) of name inside fn,
// returning the ident and its ancestor stack.
func findIdentUse(t *testing.T, fn *ast.FuncDecl, info *types.Info, name string, nth int) (*ast.Ident, []ast.Node) {
	t.Helper()
	var stack []ast.Node
	var id *ast.Ident
	var result []ast.Node
	count := 0
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		if x, ok := n.(*ast.Ident); ok && x.Name == name && id == nil {
			if _, isUse := info.Uses[x]; isUse {
				if count == nth {
					id = x
					result = append([]ast.Node(nil), stack...)
				}
				count++
			}
		}
		return true
	})
	if id == nil {
		t.Fatalf("use #%d of %q not found", nth, name)
	}
	return id, result
}

func TestReachingDefsBranch(t *testing.T) {
	src := `
func f(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	return x
}
`
	fset, info, fn := parseFunc(t, src, "f")
	_ = fset
	cfg := BuildCFG(fn)
	du := solveReachingDefs(cfg, info)

	use, stack := findIdentUse(t, fn, info, "x", 1) // the `return x` read (use 0 is the branch LHS)
	v := asLocalVar2(info, use)
	if v == nil {
		t.Fatal("x did not resolve to a local var")
	}
	defs := du.DefsAt(v, cfg.NodePos(use, stack))
	if len(defs) != 2 {
		t.Fatalf("defs reaching `return x` = %d, want 2 (init + branch)", len(defs))
	}
}

func TestReachingDefsKill(t *testing.T) {
	src := `
func f() int {
	x := 1
	x = 2
	return x
}
`
	_, info, fn := parseFunc(t, src, "f")
	cfg := BuildCFG(fn)
	du := solveReachingDefs(cfg, info)

	use, stack := findIdentUse(t, fn, info, "x", 1) // the `return x` read
	v := asLocalVar2(info, use)
	defs := du.DefsAt(v, cfg.NodePos(use, stack))
	if len(defs) != 1 {
		t.Fatalf("defs reaching `return x` = %d, want 1 (the reassignment kills the init)", len(defs))
	}
}

func TestDerivedFrom(t *testing.T) {
	src := `
type M struct{ rows []int }

func (m *M) write(i, v int) {
	rows := m.rows
	alias := rows
	alias[i] = v
}

func (m *M) fresh(i, v int) {
	local := make([]int, 8)
	local[i] = v
}
`
	_, info, fn := parseFunc(t, src, "write")
	cfg := BuildCFG(fn)
	du := solveReachingDefs(cfg, info)

	// The receiver object.
	recv := info.Defs[fn.Recv.List[0].Names[0]]
	use, stack := findIdentUse(t, fn, info, "alias", 0) // alias[i] = v
	if !du.DerivedFrom(use, cfg.NodePos(use, stack), recv) {
		t.Errorf("alias must be derived from the receiver through rows")
	}

	_, info2, fn2 := parseFunc(t, src, "fresh")
	cfg2 := BuildCFG(fn2)
	du2 := solveReachingDefs(cfg2, info2)
	recv2 := info2.Defs[fn2.Recv.List[0].Names[0]]
	use2, stack2 := findIdentUse(t, fn2, info2, "local", 0)
	if du2.DerivedFrom(use2, cfg2.NodePos(use2, stack2), recv2) {
		t.Errorf("a make()d local is not derived from the receiver")
	}
}

func TestAliasingParamTaint(t *testing.T) {
	src := `
type R struct {
	Hits    []int
	Scanned int
}

func tainted(r *R) *R {
	out := r
	return out
}

func deepCopied(r *R) *R {
	cp := *r
	cp.Hits = append([]int(nil), r.Hits...)
	return &cp
}
`
	_, info, fn := parseFunc(t, src, "tainted")
	cfg := BuildCFG(fn)
	al := solveAliasing(cfg, info)
	use, stack := findIdentUse(t, fn, info, "out", 0) // return out
	os := al.OriginsAt(use, stack)
	if !hasKind(os, OriginParam) {
		t.Errorf("out aliases the parameter; origins = %v", kinds(os))
	}

	_, info2, fn2 := parseFunc(t, src, "deepCopied")
	cfg2 := BuildCFG(fn2)
	al2 := solveAliasing(cfg2, info2)
	// The &cp in `return &cp`.
	var addr ast.Expr
	var addrStack []ast.Node
	var walkStack []ast.Node
	ast.Inspect(fn2, func(n ast.Node) bool {
		if n == nil {
			walkStack = walkStack[:len(walkStack)-1]
			return false
		}
		walkStack = append(walkStack, n)
		if u, ok := n.(*ast.UnaryExpr); ok && addr == nil {
			addr = u
			addrStack = append([]ast.Node(nil), walkStack...)
		}
		return true
	})
	os2 := al2.OriginsAt(addr, addrStack)
	if hasKind(os2, OriginParam) {
		t.Errorf("the deep-copy idiom must clear parameter taint; origins = %v", kinds(os2))
	}
}

func TestAliasingPartialCopyStaysTainted(t *testing.T) {
	// The PR 9 bug shape: copying the struct but NOT cloning the slice
	// field leaves the field aliased to the parameter.
	src := `
type R struct {
	Hits    []int
	Scanned int
}

func shallow(r *R) *R {
	cp := *r
	return &cp
}
`
	_, info, fn := parseFunc(t, src, "shallow")
	cfg := BuildCFG(fn)
	al := solveAliasing(cfg, info)
	var addr ast.Expr
	var addrStack, walkStack []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			walkStack = walkStack[:len(walkStack)-1]
			return false
		}
		walkStack = append(walkStack, n)
		if u, ok := n.(*ast.UnaryExpr); ok && addr == nil {
			addr = u
			addrStack = append([]ast.Node(nil), walkStack...)
		}
		return true
	})
	os := al.OriginsAt(addr, addrStack)
	if !hasKind(os, OriginParam) && !hasKind(os, OriginUnknown) {
		t.Errorf("a shallow struct copy retains the parameter's slice state; origins = %v", kinds(os))
	}
}

func TestAliasingElemOrigin(t *testing.T) {
	src := `
func f(resps []*int) {
	v := resps[0]
	_ = v
}
`
	_, info, fn := parseFunc(t, src, "f")
	cfg := BuildCFG(fn)
	al := solveAliasing(cfg, info)
	use, stack := findIdentUse(t, fn, info, "v", 0) // _ = v
	os := al.OriginsAt(use, stack)
	if !hasKind(os, OriginElem) {
		t.Errorf("an indexed load must carry the slice-element origin; origins = %v", kinds(os))
	}
}

func hasKind(os originSet, k OriginKind) bool {
	for o := range os {
		if o.Kind == k {
			return true
		}
	}
	return false
}

func kinds(os originSet) []string {
	var out []string
	for o := range os {
		out = append(out, o.Kind.String())
	}
	return out
}
