// Package analysis is a self-contained project-invariant analysis
// framework modelled on golang.org/x/tools/go/analysis, built only on the
// standard library (the build environment is offline, so x/tools itself
// cannot be vendored). It exists to machine-check the concurrency and
// configuration contracts the jdvs codebase otherwise maintains by
// convention — the atomic-length lock-free publish, mmap finalizer
// pinning, no-blocking-under-lock, knob threading across layers, and
// counted error paths — via the analyzers under passes/ and the
// cmd/jdvs-vet multichecker.
//
// The model mirrors x/tools deliberately: an Analyzer holds a Run
// function over a Pass; a Pass exposes one type-checked package and a
// Report sink; analyzers exchange cross-package information through
// facts exported by upstream packages and imported downstream (the
// checker runs packages in dependency order, so a fact exported by
// internal/index is visible when internal/cluster is analyzed). If the
// toolchain environment ever gains x/tools, the passes port almost
// line-for-line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the one-paragraph contract statement, shown by
	// `jdvs-vet help`.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report/Reportf and may export facts for downstream packages.
	Run func(pass *Pass) error
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	// Fset is shared by every package in the load.
	Fset *token.FileSet
	// Files are the package's parsed non-test Go files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries full expression/selection/use information for
	// Files.
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *factStore

	// suite names every analyzer in the current run. The directiverot
	// audit consults it so a directive is only called dead when the
	// analyzer it belongs to actually ran (a `-only` run must not flag
	// every other analyzer's directives as stale).
	suite map[string]bool

	// directives indexes //jdvs: comments. The checker shares one index
	// across every pass run on the same package so the directiverot audit
	// (always registered last) can see which directives suppressed a live
	// finding of an earlier analyzer. A pass built outside the checker
	// (unit tests) constructs its own lazily.
	directives *directiveIndex

	// Per-function engine caches, keyed by the CFG so analyzers that
	// share a function pay for construction and fixpoints once.
	cfgs     map[ast.Node]*CFG
	defuse   map[*CFG]*DefUse
	aliasing map[*CFG]*Aliasing
}

// SuiteContains reports whether the analyzer named name is part of the
// current checker run.
func (p *Pass) SuiteContains(name string) bool { return p.suite[name] }

// FuncCFG returns the control-flow graph of fn (a *ast.FuncDecl or
// *ast.FuncLit), built on first request and cached for the pass.
func (p *Pass) FuncCFG(fn ast.Node) *CFG {
	if p.cfgs == nil {
		p.cfgs = map[ast.Node]*CFG{}
	}
	if c, ok := p.cfgs[fn]; ok {
		return c
	}
	c := BuildCFG(fn)
	p.cfgs[fn] = c
	return c
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportFact publishes value under key for downstream packages analyzed
// later in dependency order. Facts are namespaced per analyzer.
func (p *Pass) ExportFact(key string, value any) {
	p.facts.set(p.Pkg.Path(), p.Analyzer.Name, key, value)
}

// ImportFact retrieves a fact exported by the named package (any package
// earlier in the dependency order) under the same analyzer. The package
// is identified by import-path suffix match when an exact match is
// absent, so analyzers keyed on layout ("internal/index") work across
// the real module and test fixtures alike.
func (p *Pass) ImportFact(pkgPath, key string) (any, bool) {
	return p.facts.get(p.Analyzer.Name, pkgPath, key)
}

// factStore holds facts for one checker run.
type factStore struct {
	m map[factKey]any
}

type factKey struct {
	pkg, analyzer, key string
}

func newFactStore() *factStore { return &factStore{m: map[factKey]any{}} }

func (s *factStore) set(pkg, analyzer, key string, v any) {
	s.m[factKey{pkg, analyzer, key}] = v
}

func (s *factStore) get(analyzer, pkg, key string) (any, bool) {
	if v, ok := s.m[factKey{pkg, analyzer, key}]; ok {
		return v, true
	}
	// Suffix match: fixture modules mirror the repo layout under their
	// own module path.
	for k, v := range s.m {
		if k.analyzer == analyzer && k.key == key && pathHasSuffix(k.pkg, pkg) {
			return v, true
		}
	}
	return nil, false
}

// pathHasSuffix reports whether import path p ends with the
// slash-separated suffix s ("fixtures/internal/index" has suffix
// "internal/index" but not "ternal/index").
func pathHasSuffix(p, s string) bool {
	if p == s {
		return true
	}
	if len(p) > len(s) && p[len(p)-len(s)-1] == '/' && p[len(p)-len(s):] == s {
		return true
	}
	return false
}
