package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the function-level control-flow engine the concurrency
// analyzers (publishorder, poolreturn, timerstop, aliasshare) are built
// on. PR 6's passes were per-statement AST walks; the contracts added
// since — "every element write precedes the publishing store", "every
// Get is Put on every exit", "a timer is stopped on every
// non-terminating path" — are statements about *orderings along paths*,
// which need a real CFG.
//
// The construction mirrors golang.org/x/tools/go/cfg in shape (basic
// blocks of statement/expression nodes, branch/loop/switch/select
// lowering, a synthetic exit block) but stays stdlib-only like the rest
// of the framework. Panics are modelled as edges to Exit that queries
// can ignore: a pool entry lost or a timer leaked on a panicking path is
// not a serving-path leak.

// A CFG is the control-flow graph of one function body. Build one via
// Pass.FuncCFG, which caches per function.
type CFG struct {
	Fn     ast.Node // *ast.FuncDecl or *ast.FuncLit
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic sink: returns, panics and falling off the end
	// all edge here.
	Exit *Block
	// Defers collects the function's defer statements in source order.
	// Deferred work runs at every exit, so path queries usually treat a
	// matching deferred call as covering all paths.
	Defers []*ast.DeferStmt

	pos map[ast.Node]NodePos
}

// A Block is a straight-line run of nodes: statements, plus the
// condition/tag/range expressions that control branching. Execution
// enters at Nodes[0] and leaves by one of Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// panics marks a block whose (single) successor edge models a panic
	// unwind rather than normal control flow.
	panics bool
	// back[i] marks Succs[i] as a loop back edge (computed after
	// construction by a DFS over the finished graph).
	back []bool
}

// NodePos locates a node inside a CFG.
type NodePos struct {
	Block *Block
	Index int // position in Block.Nodes
	ok    bool
}

// Valid reports whether the position resolved.
func (p NodePos) Valid() bool { return p.ok }

// NodePos resolves n — or, failing that, the nearest enclosing node on
// stack — to its CFG position. Analyzers typically hold a WithStack
// stack whose tip is an interesting expression; the CFG registers
// statements and controlling expressions, so the resolver climbs until
// it finds one.
func (c *CFG) NodePos(n ast.Node, stack []ast.Node) NodePos {
	if p, ok := c.pos[n]; ok {
		return p
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if p, ok := c.pos[stack[i]]; ok {
			return p
		}
		if stack[i] == c.Fn {
			break
		}
	}
	return NodePos{}
}

// ReachableAfter reports whether dst can execute after src on some path.
// With followBack false the path may not traverse a loop back edge —
// "later in the same iteration", which is the ordering the publish
// protocol cares about (a write in iteration i+1 naturally follows the
// store that published iteration i).
func (c *CFG) ReachableAfter(src, dst NodePos, followBack bool) bool {
	if !src.ok || !dst.ok {
		return false
	}
	if src.Block == dst.Block && dst.Index > src.Index {
		return true
	}
	seen := make([]bool, len(c.Blocks))
	var queue []*Block
	push := func(b *Block, from *Block, backIdx int) {
		if from != nil && !followBack && from.back[backIdx] {
			return
		}
		if !seen[b.Index] {
			seen[b.Index] = true
			queue = append(queue, b)
		}
	}
	for i, s := range src.Block.Succs {
		push(s, src.Block, i)
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == dst.Block {
			return true
		}
		for i, s := range b.Succs {
			push(s, b, i)
		}
	}
	return false
}

// ReachableAfterAvoiding reports whether dst can execute after src on a
// back-edge-free path that does not pass through a node for which avoid
// returns true. publishorder uses it with avoid = "unpublish store": a
// write after a publish is only a violation if no unpublish intervenes.
func (c *CFG) ReachableAfterAvoiding(src, dst NodePos, avoid func(ast.Node) bool) bool {
	if !src.ok || !dst.ok {
		return false
	}
	if src.Block == dst.Block && dst.Index > src.Index {
		clear := true
		for _, n := range src.Block.Nodes[src.Index+1 : dst.Index] {
			if avoid(n) {
				clear = false
				break
			}
		}
		if clear {
			return true
		}
	}
	// Leave src's block: the remainder of the block must be avoid-free to
	// continue past it.
	for _, n := range src.Block.Nodes[src.Index+1:] {
		if avoid(n) {
			return false
		}
	}
	seen := make([]bool, len(c.Blocks))
	var queue []*Block
	for i, s := range src.Block.Succs {
		if src.Block.back[i] {
			continue
		}
		if !seen[s.Index] {
			seen[s.Index] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == dst.Block {
			// Check the prefix before dst within its block.
			blocked := false
			for _, n := range b.Nodes[:dst.Index] {
				if avoid(n) {
					blocked = true
					break
				}
			}
			if !blocked {
				return true
			}
			// The block may still be transited (past dst) if avoid-free
			// overall; handled by the generic scan below.
		}
		blocked := false
		for _, n := range b.Nodes {
			if avoid(n) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		for i, s := range b.Succs {
			if b.back[i] {
				continue
			}
			if !seen[s.Index] {
				seen[s.Index] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

// PathAvoiding reports whether execution can flow from just after `from`
// to the function exit without executing any node for which avoid
// returns true. Panic edges are not followed: a path that dies in a
// panic is not a leak. This is the "must pass" primitive: poolreturn
// asks PathAvoiding(get, isPut) — true means some exit skips the Put.
func (c *CFG) PathAvoiding(from NodePos, avoid func(ast.Node) bool) bool {
	if !from.ok {
		return false
	}
	// Remainder of the source block after the node itself.
	for _, n := range from.Block.Nodes[from.Index+1:] {
		if avoid(n) {
			return false
		}
	}
	return c.search(from.Block, c.Exit, avoid, true)
}

// PathToAvoiding reports whether execution can reach `to` from function
// entry without first executing an avoiding node — the reader-ordering
// primitive: publishorder asks whether a directory load is reachable
// with no length load before it.
func (c *CFG) PathToAvoiding(to NodePos, avoid func(ast.Node) bool) bool {
	if !to.ok {
		return false
	}
	if c.Entry == to.Block {
		// A loop re-entering the entry block replays it from the top and
		// meets the same prefix, so the direct check is exact.
		return !blockedBefore(to, avoid)
	}
	// Any path must traverse the whole entry block first.
	for _, n := range c.Entry.Nodes {
		if avoid(n) {
			return false
		}
	}
	return c.search(c.Entry, to.Block, avoid, false) && !blockedBefore(to, avoid)
}

// blockedBefore reports whether an avoid node precedes to within its own
// block.
func blockedBefore(to NodePos, avoid func(ast.Node) bool) bool {
	for _, n := range to.Block.Nodes[:to.Index] {
		if avoid(n) {
			return true
		}
	}
	return false
}

// search is a block-granular BFS from -> to. A block containing an avoid
// node blocks traversal through it (blocks are straight-line, so any
// path through the block executes the node). skipPanic drops panic
// edges. The start block's own nodes are not re-examined (callers handle
// the partial block).
func (c *CFG) search(from, to *Block, avoid func(ast.Node) bool, skipPanic bool) bool {
	seen := make([]bool, len(c.Blocks))
	queue := []*Block{}
	expand := func(b *Block) {
		if skipPanic && b.panics {
			return
		}
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				queue = append(queue, s)
			}
		}
	}
	expand(from)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == to {
			return true
		}
		blocked := false
		for _, n := range b.Nodes {
			if avoid(n) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		expand(b)
	}
	return false
}

// BuildCFG constructs the CFG for fn's body. Nested function literals
// are opaque single nodes: they get their own CFGs.
func BuildCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	c := &CFG{Fn: fn, pos: map[ast.Node]NodePos{}}
	b := &builder{cfg: c, labels: map[string]*labelFrame{}}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	if body != nil {
		b.stmts(body.List)
	}
	b.edge(b.cur, c.Exit) // fall off the end
	for _, g := range b.gotos {
		if lf := b.labels[g.label]; lf != nil {
			b.edge(g.from, lf.target)
		}
	}
	c.markBackEdges()
	return c
}

type labelFrame struct {
	target  *Block // the labeled statement's block (goto/continue target)
	breakTo *Block // set for labeled loops/switches
	contTo  *Block
	isLoop  bool
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	cfg *CFG
	cur *Block

	// Innermost-first stacks of break/continue targets.
	breaks []*Block
	conts  []*Block

	labels map[string]*labelFrame
	// pendingLabel names the label attached to the next loop/switch.
	pendingLabel string
	gotos        []pendingGoto
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	from.back = append(from.back, false)
}

func (b *builder) add(n ast.Node) {
	b.cfg.pos[n] = NodePos{Block: b.cur, Index: len(b.cur.Nodes), ok: true}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.ExprStmt:
		b.add(st)
		if isPanic(st.X) {
			b.cur.panics = true
			b.edge(b.cur, b.cfg.Exit)
			b.cur = b.newBlock()
		}
	case *ast.DeferStmt:
		b.add(st)
		b.cfg.Defers = append(b.cfg.Defers, st)
	case *ast.BlockStmt:
		b.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmts(st.Body.List)
		b.edge(b.cur, after)
		if st.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(st.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after
	case *ast.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		if st.Cond != nil {
			b.cur = head
			b.add(st.Cond)
			b.edge(head, body)
			b.edge(head, after)
		} else {
			b.edge(head, body)
		}
		b.pushLoop(after, head)
		b.cur = body
		b.stmts(st.Body.List)
		if st.Post != nil {
			b.stmt(st.Post)
		}
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(st) // the range head: X evaluation + key/value assignment
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(after, head)
		b.cur = body
		b.stmts(st.Body.List)
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = after
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchBody(st.Body, nil)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Assign)
		b.switchBody(st.Body, nil)
	case *ast.SelectStmt:
		src := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, after)
		for _, cl := range st.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(src, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			b.edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after
	case *ast.BranchStmt:
		b.add(st)
		switch st.Tok {
		case token.BREAK:
			if t := b.branchTarget(st.Label, true); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.branchTarget(st.Label, false); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			if st.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name})
			}
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled structurally by switchBody.
		}
	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[st.Label.Name] = &labelFrame{target: target}
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""
	case *ast.GoStmt:
		// The spawned goroutine's body is its own CFG; the statement
		// itself is a plain node.
		b.add(st)
	case nil:
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, EmptyStmt, ...
		b.add(s)
	}
}

// switchBody lowers the case clauses of a switch/type-switch: each
// clause is a block reached from the dispatch point; fallthrough chains
// clause bodies.
func (b *builder) switchBody(body *ast.BlockStmt, _ *Block) {
	src := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, after)
	if lbl := b.pendingLabel; lbl != "" {
		b.labels[lbl].breakTo = after
		b.pendingLabel = ""
	}
	hasDefault := false
	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(src, blk)
		clauseBlocks = append(clauseBlocks, blk)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		b.cur = clauseBlocks[i]
		fallsThrough := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmts(cc.Body)
		if fallsThrough && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(src, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *builder) pushLoop(breakTo, contTo *Block) {
	b.breaks = append(b.breaks, breakTo)
	b.conts = append(b.conts, contTo)
	if lbl := b.pendingLabel; lbl != "" {
		b.labels[lbl].breakTo = breakTo
		b.labels[lbl].contTo = contTo
		b.labels[lbl].isLoop = true
		b.pendingLabel = ""
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *builder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		lf := b.labels[label.Name]
		if lf == nil {
			return nil
		}
		if isBreak {
			return lf.breakTo
		}
		return lf.contTo
	}
	if isBreak {
		if len(b.breaks) == 0 {
			return nil
		}
		return b.breaks[len(b.breaks)-1]
	}
	if len(b.conts) == 0 {
		return nil
	}
	return b.conts[len(b.conts)-1]
}

func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// markBackEdges classifies each edge by an iterative DFS: an edge to a
// block currently on the DFS stack is a back edge.
func (c *CFG) markBackEdges() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(c.Blocks))
	type frame struct {
		b  *Block
		si int
	}
	var stack []frame
	color[c.Entry.Index] = grey
	stack = append(stack, frame{b: c.Entry})
	for len(stack) > 0 {
		top := len(stack) - 1
		f := stack[top]
		if f.si >= len(f.b.Succs) {
			color[f.b.Index] = black
			stack = stack[:top]
			continue
		}
		stack[top].si++
		s := f.b.Succs[f.si]
		switch color[s.Index] {
		case grey:
			f.b.back[f.si] = true
		case white:
			color[s.Index] = grey
			stack = append(stack, frame{b: s})
		}
	}
}
