package analysis

import "go/ast"

// WithStack walks every node of every file, calling fn with the node and
// the stack of its ancestors (stack[0] is the *ast.File, stack[len-1] is
// n itself). fn returning false prunes the subtree. It is the
// parent-aware traversal most passes need (x/tools gets this from
// go/ast/inspector; this is the same contract on a plain ast.Inspect).
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// Prune: ast.Inspect will not send the matching nil, so
				// pop now.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// EnclosingFunc returns the innermost function declaration or literal in
// stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
