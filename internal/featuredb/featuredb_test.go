package featuredb

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"jdvs/internal/core"
)

func sampleEntry() *Entry {
	return &Entry{
		Feature: []float32{0.5, -0.25, 1.0},
		Attrs: core.Attrs{
			ProductID:  42,
			Sales:      100,
			Praise:     95,
			PriceCents: 1999,
			Category:   3,
		},
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	db := New()
	const url = "jfs://img/p42/0.jpg"
	db.Put(url, sampleEntry())
	got, err := db.Get(url)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	want := sampleEntry()
	if len(got.Feature) != len(want.Feature) {
		t.Fatalf("feature dim %d", len(got.Feature))
	}
	for i := range want.Feature {
		if got.Feature[i] != want.Feature[i] {
			t.Fatal("feature corrupted")
		}
	}
	// The URL is reconstructed from the key.
	want.Attrs.URL = url
	if got.Attrs != want.Attrs {
		t.Fatalf("attrs = %+v, want %+v", got.Attrs, want.Attrs)
	}
}

func TestGetMissing(t *testing.T) {
	db := New()
	_, err := db.Get("nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if db.Has("nope") {
		t.Fatal("Has on empty db")
	}
}

func TestGetOrComputeCachesAndCounts(t *testing.T) {
	db := New()
	const url = "jfs://img/p1/0.jpg"
	calls := 0
	extract := func() ([]float32, error) {
		calls++
		return []float32{1, 2, 3}, nil
	}
	e, reused, err := db.GetOrCompute(url, core.Attrs{ProductID: 1}, extract)
	if err != nil || reused {
		t.Fatalf("first compute: reused=%v err=%v", reused, err)
	}
	if calls != 1 || len(e.Feature) != 3 {
		t.Fatalf("extract calls = %d", calls)
	}
	// Second call: cache hit, no extraction.
	e2, reused, err := db.GetOrCompute(url, core.Attrs{ProductID: 1}, extract)
	if err != nil || !reused {
		t.Fatalf("second compute: reused=%v err=%v", reused, err)
	}
	if calls != 1 {
		t.Fatalf("extract re-ran: %d calls", calls)
	}
	if e2.Feature[0] != 1 {
		t.Fatal("cached feature wrong")
	}
	hits, misses := db.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d,%d, want 1,1", hits, misses)
	}
	db.ResetStats()
	if h, m := db.Stats(); h != 0 || m != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestGetOrComputeExtractError(t *testing.T) {
	db := New()
	boom := errors.New("gpu on fire")
	_, _, err := db.GetOrCompute("u", core.Attrs{}, func() ([]float32, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Nothing cached on failure.
	if db.Has("u") {
		t.Fatal("failed extraction cached")
	}
	if db.Len() != 0 {
		t.Fatal("db grew on failure")
	}
}

func TestEmptyFeature(t *testing.T) {
	db := New()
	db.Put("u", &Entry{Feature: nil, Attrs: core.Attrs{ProductID: 9}})
	got, err := db.Get("u")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Feature) != 0 || got.Attrs.ProductID != 9 {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestConcurrentGetOrCompute(t *testing.T) {
	db := New()
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				url := fmt.Sprintf("jfs://img/p%d/0.jpg", i%20)
				e, _, err := db.GetOrCompute(url, core.Attrs{ProductID: uint64(i % 20)}, func() ([]float32, error) {
					return []float32{float32(i % 20)}, nil
				})
				if err != nil {
					t.Errorf("GetOrCompute: %v", err)
					return
				}
				if len(e.Feature) != 1 {
					t.Errorf("bad feature %v", e.Feature)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != 20 {
		t.Fatalf("db has %d entries, want 20", db.Len())
	}
	hits, misses := db.Stats()
	if hits+misses != workers*200 {
		t.Fatalf("stats don't add up: %d+%d != %d", hits, misses, workers*200)
	}
	if misses < 20 {
		t.Fatalf("misses = %d, want >= 20", misses)
	}
}

func TestCorruptEntry(t *testing.T) {
	db := New()
	db.kv.Put("bad", []byte{1, 2}) // garbage value
	if _, err := db.Get("bad"); err == nil {
		t.Fatal("corrupt entry accepted")
	}
}
