// Package featuredb is the feature database of Fig. 2: for every image URL
// it stores the extracted high-dimensional feature vector together with the
// owning product's attributes ("the feature database contains each image's
// high dimensional features and its corresponding product's attributes").
//
// Its central protocol is check-before-extract: the indexing pipeline
// "always checks if an image's features have been previously extracted to
// avoid the repeated feature extraction" (§2.1). GetOrCompute implements
// that protocol atomically enough for the single-writer-per-partition model
// the paper uses, and the hit/miss counters let the evaluation reproduce
// the reuse ratios of Table 1.
package featuredb

import (
	"errors"
	"fmt"
	"sync/atomic"

	"jdvs/internal/core"
	"jdvs/internal/kv"
)

// Entry is the stored record for one image.
type Entry struct {
	Feature []float32
	Attrs   core.Attrs
}

// ErrNotFound is returned when no entry exists for a URL.
var ErrNotFound = errors.New("featuredb: entry not found")

// DB is a feature database backed by the sharded KV substrate.
type DB struct {
	kv     *kv.Store
	hits   atomic.Int64 // lookups answered from the DB (extraction avoided)
	misses atomic.Int64 // lookups that required extraction
}

// New returns an empty feature database.
func New() *DB {
	return &DB{kv: kv.NewStore()}
}

// encodeEntry layout: feature | attrs (fixed numerics) | url-less.
// The URL is the key, so it is not duplicated in the value.
func encodeEntry(e *Entry) []byte {
	dst := make([]byte, 0, 8+4*len(e.Feature)+24)
	dst = core.AppendFeature(dst, e.Feature)
	dst = appendAttrs(dst, e.Attrs)
	return dst
}

func appendAttrs(dst []byte, a core.Attrs) []byte {
	var buf [22]byte
	putUint64(buf[0:8], a.ProductID)
	putUint32(buf[8:12], a.Sales)
	putUint32(buf[12:16], a.Praise)
	putUint32(buf[16:20], a.PriceCents)
	putUint16(buf[20:22], a.Category)
	return append(dst, buf[:]...)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
func putUint32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
func putUint16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}
func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
func getUint32(b []byte) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}

func decodeEntry(b []byte, url string) (*Entry, error) {
	f, rest, err := core.DecodeFeature(b)
	if err != nil {
		return nil, fmt.Errorf("featuredb: corrupt entry for %q: %w", url, err)
	}
	if len(rest) < 22 {
		return nil, fmt.Errorf("featuredb: corrupt attrs for %q", url)
	}
	return &Entry{
		Feature: f,
		Attrs: core.Attrs{
			ProductID:  getUint64(rest[0:8]),
			Sales:      getUint32(rest[8:12]),
			Praise:     getUint32(rest[12:16]),
			PriceCents: getUint32(rest[16:20]),
			Category:   uint16(rest[20]) | uint16(rest[21])<<8,
			URL:        url,
		},
	}, nil
}

// Get returns the entry for url.
func (db *DB) Get(url string) (*Entry, error) {
	b, ok := db.kv.Get(url)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, url)
	}
	return decodeEntry(b, url)
}

// Has reports whether features were previously extracted for url.
func (db *DB) Has(url string) bool { return db.kv.Has(url) }

// Put stores (or overwrites) the entry for url.
func (db *DB) Put(url string, e *Entry) {
	db.kv.Put(url, encodeEntry(e))
}

// GetOrCompute returns the stored feature for url, or invokes extract to
// compute it, stores the result, and returns it. The hit/miss counters
// feed Table 1's reuse accounting.
func (db *DB) GetOrCompute(url string, attrs core.Attrs, extract func() ([]float32, error)) (*Entry, bool, error) {
	if b, ok := db.kv.Get(url); ok {
		e, err := decodeEntry(b, url)
		if err != nil {
			return nil, false, err
		}
		db.hits.Add(1)
		return e, true, nil
	}
	f, err := extract()
	if err != nil {
		return nil, false, fmt.Errorf("featuredb: extract for %q: %w", url, err)
	}
	e := &Entry{Feature: f, Attrs: attrs}
	db.kv.Put(url, encodeEntry(e))
	db.misses.Add(1)
	return e, false, nil
}

// Stats returns (hits, misses): lookups that reused stored features vs
// lookups that extracted fresh ones.
func (db *DB) Stats() (hits, misses int64) {
	return db.hits.Load(), db.misses.Load()
}

// ResetStats zeroes the counters (between experiment phases).
func (db *DB) ResetStats() {
	db.hits.Store(0)
	db.misses.Store(0)
}

// Len returns the number of stored entries.
func (db *DB) Len() int { return db.kv.Len() }
