package rpc

import (
	"context"
	"testing"
)

func benchServer(b *testing.B) string {
	b.Helper()
	s := NewServer()
	s.Handle(1, func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return addr
}

// BenchmarkCallSequential measures single-connection round-trip latency.
func BenchmarkCallSequential(b *testing.B) {
	addr := benchServer(b)
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 256)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, 1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallConcurrent measures multiplexed throughput on one
// connection — the searcher fan-in pattern.
func BenchmarkCallConcurrent(b *testing.B) {
	addr := benchServer(b)
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 256)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Call(ctx, 1, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkCallPooled measures the pooled client used between tiers.
func BenchmarkCallPooled(b *testing.B) {
	addr := benchServer(b)
	p, err := DialPool(addr, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	payload := make([]byte, 256)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Call(ctx, 1, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
