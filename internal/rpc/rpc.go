// Package rpc is the wire substrate connecting the search tiers of Fig. 10
// (frontend → blender → broker → searcher) and the KV/feature services: a
// minimal multiplexed request/response protocol over TCP built only on the
// standard library.
//
// Frame layout (little endian):
//
//	request:  [4B frameLen][8B requestID][2B method][payload...]
//	response: [4B frameLen][8B requestID][1B status][payload or error text]
//
// frameLen counts the bytes after the length word. Requests multiplex
// freely over one connection: a client issues concurrent calls and matches
// responses by request ID, so a single searcher connection sustains the
// fan-out concurrency the three-level architecture needs without a
// connection per in-flight query.
//
// Payloads larger than MaxFrame move through the chunked streaming
// protocol (StreamSender / StreamServer, stream.go): a begin/chunk/commit
// session of checksummed, sequence-numbered chunks with an idle-timeout
// reaper on the receiving side.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

const (
	// MaxFrame bounds a frame to guard against corrupt length words.
	MaxFrame = 64 << 20

	statusOK  = 0
	statusErr = 1

	reqHeader  = 8 + 2
	respHeader = 8 + 1
)

var (
	// ErrClosed is returned by calls on a closed client or server.
	ErrClosed = errors.New("rpc: connection closed")
	// ErrFrameTooLarge is returned when a frame exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("rpc: frame too large")
)

// RemoteError is an error string propagated from a handler to the caller.
type RemoteError struct {
	Method uint16
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error (method %d): %s", e.Method, e.Msg)
}

// Handler processes one request payload and returns a response payload.
type Handler func(payload []byte) ([]byte, error)

// Server dispatches incoming requests to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[uint16]Handler
	lis      net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[uint16]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers h for method. It must be called before Serve.
func (s *Server) Handle(method uint16, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen binds to addr ("host:port"; ":0" picks a free port) and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = lis.Close()
		return "", ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(lis)
	return lis.Addr().String(), nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := lis.Accept()
		//jdvs:nostat accept fails only when the listener closes; shutdown, not dropped work
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	var handlerWG sync.WaitGroup
	defer handlerWG.Wait()
	for {
		frame, err := readFrame(conn)
		//jdvs:nostat read failure is connection teardown; in-flight handlers drain via handlerWG, nothing is dropped
		if err != nil {
			return
		}
		if len(frame) < reqHeader {
			return // malformed: drop the connection
		}
		reqID := binary.LittleEndian.Uint64(frame[0:8])
		method := binary.LittleEndian.Uint16(frame[8:10])
		payload := frame[reqHeader:]
		s.mu.Lock()
		h := s.handlers[method]
		s.mu.Unlock()
		handlerWG.Add(1)
		go func() {
			defer handlerWG.Done()
			var resp []byte
			var herr error
			if h == nil {
				herr = fmt.Errorf("unknown method %d", method)
			} else {
				resp, herr = h(payload)
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			if herr != nil {
				_ = writeResponse(conn, reqID, statusErr, []byte(herr.Error()))
				return
			}
			_ = writeResponse(conn, reqID, statusOK, resp)
		}()
	}
}

// Addr returns the server's bound address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops accepting, closes all connections and waits for in-flight
// handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.lis != nil {
		_ = s.lis.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func writeResponse(w io.Writer, reqID uint64, status byte, payload []byte) error {
	hdr := make([]byte, 4+respHeader)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(respHeader+len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], reqID)
	hdr[12] = status
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is a multiplexed connection to one server. It is safe for
// concurrent use.
type Client struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan result
	closed  bool
	err     error

	nextID atomic.Uint64
	done   chan struct{}
}

type result struct {
	payload []byte
	err     error
}

// Dial connects to addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan result),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	var readErr error
	for {
		frame, err := readFrame(c.conn)
		if err != nil {
			readErr = err
			break
		}
		if len(frame) < respHeader {
			readErr = errors.New("rpc: malformed response frame")
			break
		}
		reqID := binary.LittleEndian.Uint64(frame[0:8])
		status := frame[8]
		payload := frame[respHeader:]
		c.mu.Lock()
		ch, ok := c.pending[reqID]
		if ok {
			delete(c.pending, reqID)
		}
		c.mu.Unlock()
		if !ok {
			continue // caller gave up (context cancelled)
		}
		if status == statusOK {
			ch <- result{payload: payload}
		} else {
			ch <- result{err: &RemoteError{Msg: string(payload)}}
		}
	}
	c.failAll(readErr)
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	if err == nil {
		err = ErrClosed
	}
	c.err = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		//jdvs:blocking-ok pending channels are buffered (cap 1) and get exactly one send, so this never blocks
		ch <- result{err: fmt.Errorf("%w (%v)", ErrClosed, err)}
	}
	close(c.done)
	_ = c.conn.Close()
}

// Call sends a request and waits for its response or ctx cancellation.
func (c *Client) Call(ctx context.Context, method uint16, payload []byte) ([]byte, error) {
	id := c.nextID.Add(1)
	ch := make(chan result, 1)

	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	frame := make([]byte, 4+reqHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(reqHeader+len(payload)))
	binary.LittleEndian.PutUint64(frame[4:12], id)
	binary.LittleEndian.PutUint16(frame[12:14], method)
	copy(frame[4+reqHeader:], payload)

	c.writeMu.Lock()
	//jdvs:blocking-ok writeMu exists only to serialize frame writes on the socket; it guards no other state
	_, werr := c.conn.Write(frame)
	c.writeMu.Unlock()
	if werr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.failAll(werr)
		return nil, fmt.Errorf("rpc: write: %w", werr)
	}

	select {
	case r := <-ch:
		if r.err != nil {
			if re, ok := r.err.(*RemoteError); ok {
				re.Method = method
			}
			return nil, r.err
		}
		return r.payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Close tears the connection down; outstanding calls fail with ErrClosed.
func (c *Client) Close() {
	c.failAll(ErrClosed)
}

// Pool is a fixed-size set of clients to one address, dealt out
// round-robin. Searcher fan-in traffic is heavily concurrent; a small pool
// avoids head-of-line blocking on one TCP connection's write path.
type Pool struct {
	clients []*Client
	next    atomic.Uint64
}

// DialPool opens n connections to addr.
func DialPool(addr string, n int) (*Pool, error) {
	if n <= 0 {
		n = 1
	}
	p := &Pool{clients: make([]*Client, 0, n)}
	for i := 0; i < n; i++ {
		c, err := Dial(addr)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Call issues the request on the next connection in round-robin order.
func (p *Pool) Call(ctx context.Context, method uint16, payload []byte) ([]byte, error) {
	// The modulo is computed in uint64 before any narrowing: converting the
	// counter to int first would go negative after 2³¹ calls on a 32-bit
	// platform and panic the index expression.
	c := p.clients[p.next.Add(1)%uint64(len(p.clients))]
	return c.Call(ctx, method, payload)
}

// Close closes every connection in the pool.
func (p *Pool) Close() {
	for _, c := range p.clients {
		if c != nil {
			c.Close()
		}
	}
}
