package rpc

// This file implements the chunked streaming transfer: a session-oriented
// protocol layered on the plain request/response frames, used to move
// payloads larger than MaxFrame (full-index snapshots, §2.2's distribution
// step) without ever materialising them in one buffer on either side.
//
// A transfer is four methods, whose IDs the application supplies via
// StreamMethods:
//
//	begin:  empty                                   → [8B sessionID]
//	chunk:  [8B sessionID][8B seq][4B crc32c][data] → empty
//	commit: [8B sessionID][8B chunks][8B bytes][4B crc32c(stream)] → empty
//	abort:  [8B sessionID]                          → empty
//
// Chunks carry a strictly sequential sequence number and a CRC-32C over
// their data; commit re-states the chunk count, total byte count and the
// running CRC-32C of the whole stream, so a reordered, duplicated, torn or
// corrupted transfer can never be installed. The receiver enforces an idle
// timeout between chunks: a sender that vanishes mid-stream leaves nothing
// behind once the timeout reaps its session.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"
)

const (
	// DefaultChunkSize is the default streamed-chunk data size: well under
	// MaxFrame so chunk frames never brush the frame ceiling, large enough
	// to amortise per-chunk round trips.
	DefaultChunkSize = 4 << 20

	// chunkHeaderLen is [8B session][8B seq][4B crc32c].
	chunkHeaderLen = 8 + 8 + 4
	// commitLen is [8B session][8B chunks][8B bytes][4B crc32c].
	commitLen = 8 + 8 + 8 + 4

	// MaxChunkData bounds one chunk's data so its request frame stays under
	// MaxFrame.
	MaxChunkData = MaxFrame - reqHeader - chunkHeaderLen
)

var (
	// ErrUnknownSession is returned for a chunk/commit referencing a session
	// the server does not hold (never begun, already finished, or reaped by
	// the idle timeout).
	ErrUnknownSession = errors.New("rpc: unknown stream session")
	// ErrSessionLimit is returned by begin when the server already holds its
	// maximum number of in-flight sessions.
	ErrSessionLimit = errors.New("rpc: too many stream sessions")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// StreamMethods names the four RPC method IDs one chunked-transfer protocol
// instance uses.
type StreamMethods struct {
	Begin, Chunk, Commit, Abort uint16
}

// EncodeStreamSession encodes a bare session reference (begin response,
// abort request).
func EncodeStreamSession(id uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, id)
	return b
}

// DecodeStreamSession decodes a bare session reference.
func DecodeStreamSession(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("rpc: stream session payload is %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// EncodeStreamChunk builds a chunk payload for data with its CRC-32C.
func EncodeStreamChunk(session, seq uint64, data []byte) []byte {
	b := make([]byte, chunkHeaderLen+len(data))
	binary.LittleEndian.PutUint64(b[0:8], session)
	binary.LittleEndian.PutUint64(b[8:16], seq)
	binary.LittleEndian.PutUint32(b[16:20], crc32.Checksum(data, crcTable))
	copy(b[chunkHeaderLen:], data)
	return b
}

// DecodeStreamChunk splits a chunk payload and verifies its checksum. The
// returned data aliases p.
func DecodeStreamChunk(p []byte) (session, seq uint64, data []byte, err error) {
	if len(p) < chunkHeaderLen {
		return 0, 0, nil, fmt.Errorf("rpc: stream chunk payload is %d bytes, want >= %d", len(p), chunkHeaderLen)
	}
	session = binary.LittleEndian.Uint64(p[0:8])
	seq = binary.LittleEndian.Uint64(p[8:16])
	sum := binary.LittleEndian.Uint32(p[16:20])
	data = p[chunkHeaderLen:]
	if got := crc32.Checksum(data, crcTable); got != sum {
		return 0, 0, nil, fmt.Errorf("rpc: stream chunk %d checksum mismatch (got %08x, want %08x)", seq, got, sum)
	}
	return session, seq, data, nil
}

// EncodeStreamCommit builds a commit payload restating the transfer totals.
func EncodeStreamCommit(session, chunks, bytes uint64, sum uint32) []byte {
	b := make([]byte, commitLen)
	binary.LittleEndian.PutUint64(b[0:8], session)
	binary.LittleEndian.PutUint64(b[8:16], chunks)
	binary.LittleEndian.PutUint64(b[16:24], bytes)
	binary.LittleEndian.PutUint32(b[24:28], sum)
	return b
}

// DecodeStreamCommit splits a commit payload.
func DecodeStreamCommit(p []byte) (session, chunks, bytes uint64, sum uint32, err error) {
	if len(p) != commitLen {
		return 0, 0, 0, 0, fmt.Errorf("rpc: stream commit payload is %d bytes, want %d", len(p), commitLen)
	}
	return binary.LittleEndian.Uint64(p[0:8]),
		binary.LittleEndian.Uint64(p[8:16]),
		binary.LittleEndian.Uint64(p[16:24]),
		binary.LittleEndian.Uint32(p[24:28]),
		nil
}

// StreamSender uploads a byte stream to a server as a chunked session. It
// is an io.Writer: producers serialise straight into it and it ships a
// chunk each time its buffer fills, so peak sender memory is O(chunk), not
// O(stream). The begin call is lazy — issued only when the stream outgrows
// one chunk — so a stream that fits in a single chunk sends nothing;
// Finish then reports streamed=false and the caller can deliver Buffered()
// however it likes (e.g. a legacy single-frame method).
//
// Not safe for concurrent use.
type StreamSender struct {
	ctx       context.Context
	c         *Client
	m         StreamMethods
	chunkSize int

	begun   bool
	session uint64
	buf     []byte
	seq     uint64
	total   uint64
	sum     uint32
	err     error // sticky
}

// NewStreamSender prepares a sender over c. chunkSize <= 0 takes
// DefaultChunkSize; values above MaxChunkData are capped.
func NewStreamSender(ctx context.Context, c *Client, m StreamMethods, chunkSize int) *StreamSender {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize > MaxChunkData {
		chunkSize = MaxChunkData
	}
	return &StreamSender{ctx: ctx, c: c, m: m, chunkSize: chunkSize}
}

// Write implements io.Writer, shipping a chunk whenever the buffer fills.
func (s *StreamSender) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	written := 0
	for len(p) > 0 {
		space := s.chunkSize - len(s.buf)
		if space == 0 {
			if err := s.flush(); err != nil {
				return written, err
			}
			space = s.chunkSize
		}
		if space > len(p) {
			space = len(p)
		}
		s.buf = append(s.buf, p[:space]...)
		p = p[space:]
		written += space
	}
	return written, nil
}

// flush ships the buffered chunk, beginning the session first if needed.
func (s *StreamSender) flush() error {
	if !s.begun {
		resp, err := s.c.Call(s.ctx, s.m.Begin, nil)
		if err != nil {
			s.err = err
			return err
		}
		id, err := DecodeStreamSession(resp)
		if err != nil {
			s.err = err
			return err
		}
		s.session = id
		s.begun = true
	}
	if _, err := s.c.Call(s.ctx, s.m.Chunk, EncodeStreamChunk(s.session, s.seq, s.buf)); err != nil {
		s.err = err
		return err
	}
	s.sum = crc32.Update(s.sum, crcTable, s.buf)
	s.seq++
	s.total += uint64(len(s.buf))
	s.buf = s.buf[:0]
	return nil
}

// Finish completes the transfer. If the whole stream fit inside one chunk
// no session was ever begun: Finish sends nothing and returns
// streamed=false, leaving the bytes in Buffered(). Otherwise it flushes
// the tail chunk and commits the session, which installs the stream
// server-side.
func (s *StreamSender) Finish() (streamed bool, err error) {
	if s.err != nil {
		return s.begun, s.err
	}
	if !s.begun {
		return false, nil
	}
	if len(s.buf) > 0 {
		if err := s.flush(); err != nil {
			return true, err
		}
	}
	if _, err := s.c.Call(s.ctx, s.m.Commit, EncodeStreamCommit(s.session, s.seq, s.total, s.sum)); err != nil {
		s.err = err
		return true, err
	}
	return true, nil
}

// Buffered returns the bytes still held locally (the whole stream when
// Finish reported streamed=false).
func (s *StreamSender) Buffered() []byte { return s.buf }

// Abort tears down a begun session server-side, best effort. Safe to call
// whether or not a session was begun; never call it after a successful
// Finish.
func (s *StreamSender) Abort() {
	if !s.begun {
		return
	}
	// Use a fresh context: Abort is typically called on the failure path
	// where s.ctx may already be cancelled, and the reap must still go out.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _ = s.c.Call(ctx, s.m.Abort, EncodeStreamSession(s.session))
}

// StreamSink consumes one inbound stream on the receiving side. The
// StreamServer calls Write for each verified chunk in order, then exactly
// one of Commit (stream complete and totals verified — install it) or
// Abort (tear down without side effects).
type StreamSink interface {
	io.Writer
	Commit() error
	Abort()
}

// StreamServer tracks inbound chunked-transfer sessions for a Server. Its
// Handle* methods are rpc Handlers; Register installs all four. Sessions
// that go idle longer than the configured timeout are reaped (their sink
// aborted), so a crashed sender cannot pin receiver state forever.
type StreamServer struct {
	open        func() (StreamSink, error)
	idleTimeout time.Duration
	maxSessions int

	mu       sync.Mutex
	sessions map[uint64]*streamSession
	pending  int // begins past the limit check, sink still opening
	nextID   uint64
	closed   bool
}

type streamSession struct {
	id      uint64
	sink    StreamSink
	nextSeq uint64
	bytes   uint64
	sum     uint32
	timer   *time.Timer
	epoch   uint64 // invalidates in-flight timer fires
}

const (
	// DefaultStreamIdleTimeout reaps sessions whose sender stalled.
	DefaultStreamIdleTimeout = 30 * time.Second
	// DefaultMaxStreamSessions bounds concurrent in-flight transfers.
	DefaultMaxStreamSessions = 8
)

// NewStreamServer builds a session tracker. open is invoked per begin to
// create the session's sink. idleTimeout <= 0 takes
// DefaultStreamIdleTimeout; maxSessions <= 0 takes
// DefaultMaxStreamSessions.
func NewStreamServer(open func() (StreamSink, error), idleTimeout time.Duration, maxSessions int) *StreamServer {
	if idleTimeout <= 0 {
		idleTimeout = DefaultStreamIdleTimeout
	}
	if maxSessions <= 0 {
		maxSessions = DefaultMaxStreamSessions
	}
	return &StreamServer{
		open:        open,
		idleTimeout: idleTimeout,
		maxSessions: maxSessions,
		sessions:    make(map[uint64]*streamSession),
	}
}

// Register installs the four stream handlers on srv.
func (ss *StreamServer) Register(srv *Server, m StreamMethods) {
	srv.Handle(m.Begin, ss.HandleBegin)
	srv.Handle(m.Chunk, ss.HandleChunk)
	srv.Handle(m.Commit, ss.HandleCommit)
	srv.Handle(m.Abort, ss.HandleAbort)
}

// Sessions returns the number of in-flight sessions.
func (ss *StreamServer) Sessions() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.sessions)
}

// arm (re)starts sess's idle timer. Caller holds ss.mu.
func (ss *StreamServer) arm(sess *streamSession) {
	sess.epoch++
	epoch := sess.epoch
	sess.timer = time.AfterFunc(ss.idleTimeout, func() {
		ss.mu.Lock()
		cur, ok := ss.sessions[sess.id]
		if !ok || cur != sess || sess.epoch != epoch {
			ss.mu.Unlock()
			return // finished or superseded while we were firing
		}
		delete(ss.sessions, sess.id)
		ss.mu.Unlock()
		sess.sink.Abort()
	})
}

// disarm invalidates any pending idle fire. Caller holds ss.mu.
func (sess *streamSession) disarm() {
	sess.epoch++
	if sess.timer != nil {
		sess.timer.Stop()
	}
}

// HandleBegin opens a session and returns its ID.
func (ss *StreamServer) HandleBegin([]byte) ([]byte, error) {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil, ErrClosed
	}
	// Count begins whose sink is still opening toward the limit, so
	// concurrent begins cannot race past it while open() runs unlocked.
	if len(ss.sessions)+ss.pending >= ss.maxSessions {
		ss.mu.Unlock()
		return nil, ErrSessionLimit
	}
	ss.pending++
	ss.nextID++
	id := ss.nextID
	ss.mu.Unlock()

	sink, err := ss.open()

	ss.mu.Lock()
	ss.pending--
	if err != nil {
		ss.mu.Unlock()
		return nil, err
	}
	if ss.closed {
		ss.mu.Unlock()
		sink.Abort()
		return nil, ErrClosed
	}
	sess := &streamSession{id: id, sink: sink}
	ss.sessions[id] = sess
	ss.arm(sess)
	ss.mu.Unlock()
	return EncodeStreamSession(id), nil
}

// take removes the session from the table, disarming its timer, so the
// caller owns its sink exclusively. Returns nil if the session is unknown.
func (ss *StreamServer) take(id uint64) *streamSession {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sess, ok := ss.sessions[id]
	if !ok {
		return nil
	}
	delete(ss.sessions, id)
	sess.disarm()
	return sess
}

// HandleChunk verifies and applies one chunk.
func (ss *StreamServer) HandleChunk(payload []byte) ([]byte, error) {
	if len(payload) < chunkHeaderLen {
		// Too short to even name a session; if the sender is gone the idle
		// timer reaps whatever it had open.
		return nil, fmt.Errorf("rpc: stream chunk payload is %d bytes, want >= %d", len(payload), chunkHeaderLen)
	}
	id := binary.LittleEndian.Uint64(payload[0:8])
	seq := binary.LittleEndian.Uint64(payload[8:16])
	sum := binary.LittleEndian.Uint32(payload[16:20])
	data := payload[chunkHeaderLen:]
	// Own the session while writing: chunks of one session are serialised
	// by the sender, so removal + reinsert is race-free and keeps the idle
	// timer from firing mid-write.
	sess := ss.take(id)
	if sess == nil {
		return nil, ErrUnknownSession
	}
	// The header parsed, so the session is identifiable: a corrupt or
	// out-of-order chunk dooms the transfer and the session is torn down
	// now rather than lingering until the idle timeout.
	if got := crc32.Checksum(data, crcTable); got != sum {
		sess.sink.Abort()
		return nil, fmt.Errorf("rpc: stream session %d chunk %d checksum mismatch (got %08x, want %08x)", id, seq, got, sum)
	}
	if seq != sess.nextSeq {
		sess.sink.Abort()
		return nil, fmt.Errorf("rpc: stream session %d chunk out of order (got seq %d, want %d)", id, seq, sess.nextSeq)
	}
	if _, err := sess.sink.Write(data); err != nil {
		sess.sink.Abort()
		return nil, err
	}
	sess.nextSeq++
	sess.bytes += uint64(len(data))
	sess.sum = crc32.Update(sess.sum, crcTable, data)

	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		sess.sink.Abort()
		return nil, ErrClosed
	}
	ss.sessions[id] = sess
	ss.arm(sess)
	ss.mu.Unlock()
	return nil, nil
}

// HandleCommit verifies the transfer totals and installs the stream via
// the sink.
func (ss *StreamServer) HandleCommit(payload []byte) ([]byte, error) {
	id, chunks, total, sum, err := DecodeStreamCommit(payload)
	if err != nil {
		return nil, err
	}
	sess := ss.take(id)
	if sess == nil {
		return nil, ErrUnknownSession
	}
	if chunks != sess.nextSeq || total != sess.bytes || sum != sess.sum {
		sess.sink.Abort()
		return nil, fmt.Errorf("rpc: stream session %d commit mismatch (got %d chunks/%d bytes/%08x, have %d/%d/%08x)",
			id, chunks, total, sum, sess.nextSeq, sess.bytes, sess.sum)
	}
	return nil, sess.sink.Commit()
}

// HandleAbort tears a session down. Aborting an unknown (already finished
// or reaped) session is not an error.
func (ss *StreamServer) HandleAbort(payload []byte) ([]byte, error) {
	id, err := DecodeStreamSession(payload)
	if err != nil {
		return nil, err
	}
	if sess := ss.take(id); sess != nil {
		sess.sink.Abort()
	}
	return nil, nil
}

// Close aborts every in-flight session and rejects new ones.
func (ss *StreamServer) Close() {
	ss.mu.Lock()
	ss.closed = true
	var reap []*streamSession
	for id, sess := range ss.sessions {
		delete(ss.sessions, id)
		sess.disarm()
		reap = append(reap, sess)
	}
	ss.mu.Unlock()
	for _, sess := range reap {
		sess.sink.Abort()
	}
}
