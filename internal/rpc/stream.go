package rpc

// This file implements the chunked streaming transfer: a session-oriented
// protocol layered on the plain request/response frames, used to move
// payloads larger than MaxFrame (full-index snapshots, §2.2's distribution
// step) without ever materialising them in one buffer on either side.
//
// A transfer is four methods, whose IDs the application supplies via
// StreamMethods:
//
//	begin:  empty                                   → [8B sessionID]
//	chunk:  [8B sessionID][8B seq][4B crc32c][data] → empty
//	commit: [8B sessionID][8B chunks][8B bytes][4B crc32c(stream)] → empty
//	abort:  [8B sessionID]                          → empty
//
// Chunks carry a sequential sequence number and a CRC-32C over their data;
// commit re-states the chunk count, total byte count and the running
// CRC-32C of the whole stream, so a duplicated, torn or corrupted transfer
// can never be installed. The sender pipelines a small window of chunk
// requests over the multiplexed connection to hide per-chunk round trips;
// the receiver buffers chunks up to StreamReorderWindow ahead of the next
// expected sequence number and feeds the sink strictly in order (anything
// further out of sequence kills the transfer). The receiver also enforces
// an idle timeout between chunks: a sender that vanishes mid-stream leaves
// nothing behind once the timeout reaps its session.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"
)

const (
	// DefaultChunkSize is the default streamed-chunk data size: well under
	// MaxFrame so chunk frames never brush the frame ceiling, large enough
	// to amortise per-chunk round trips.
	DefaultChunkSize = 4 << 20

	// chunkHeaderLen is [8B session][8B seq][4B crc32c].
	chunkHeaderLen = 8 + 8 + 4
	// commitLen is [8B session][8B chunks][8B bytes][4B crc32c].
	commitLen = 8 + 8 + 8 + 4

	// MaxChunkData bounds one chunk's data so its request frame stays under
	// MaxFrame.
	MaxChunkData = MaxFrame - reqHeader - chunkHeaderLen

	// DefaultStreamWindow is the number of chunk requests a StreamSender
	// keeps in flight by default. One chunk per round trip makes WAN
	// throughput chunkSize/RTT; a small pipeline window hides the round
	// trips without materially raising peak memory (window × chunk size).
	DefaultStreamWindow = 4

	// StreamReorderWindow bounds how far ahead of the next expected
	// sequence number the receiver accepts a chunk. Pipelined chunks are
	// dispatched concurrently over one multiplexed connection, so the
	// server may process them slightly out of order; chunks within the
	// window are buffered and written in sequence, chunks beyond it kill
	// the session. A chunk is acknowledged only once it has reached the
	// sink in order (buffered chunks park their handler until the gap
	// fills), so a well-behaved sender — whose in-flight window is capped
	// to this — can never legitimately run past it: an acknowledged
	// sequence number implies every earlier one was written.
	StreamReorderWindow = 16
)

var (
	// ErrUnknownSession is returned for a chunk/commit referencing a session
	// the server does not hold (never begun, already finished, or reaped by
	// the idle timeout).
	ErrUnknownSession = errors.New("rpc: unknown stream session")
	// ErrSessionLimit is returned by begin when the server already holds its
	// maximum number of in-flight sessions.
	ErrSessionLimit = errors.New("rpc: too many stream sessions")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// StreamMethods names the four RPC method IDs one chunked-transfer protocol
// instance uses.
type StreamMethods struct {
	Begin, Chunk, Commit, Abort uint16
}

// EncodeStreamSession encodes a bare session reference (begin response,
// abort request).
func EncodeStreamSession(id uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, id)
	return b
}

// DecodeStreamSession decodes a bare session reference.
func DecodeStreamSession(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("rpc: stream session payload is %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// EncodeStreamChunk builds a chunk payload for data with its CRC-32C.
func EncodeStreamChunk(session, seq uint64, data []byte) []byte {
	b := make([]byte, chunkHeaderLen+len(data))
	binary.LittleEndian.PutUint64(b[0:8], session)
	binary.LittleEndian.PutUint64(b[8:16], seq)
	binary.LittleEndian.PutUint32(b[16:20], crc32.Checksum(data, crcTable))
	copy(b[chunkHeaderLen:], data)
	return b
}

// DecodeStreamChunk splits a chunk payload and verifies its checksum. The
// returned data aliases p.
func DecodeStreamChunk(p []byte) (session, seq uint64, data []byte, err error) {
	if len(p) < chunkHeaderLen {
		return 0, 0, nil, fmt.Errorf("rpc: stream chunk payload is %d bytes, want >= %d", len(p), chunkHeaderLen)
	}
	session = binary.LittleEndian.Uint64(p[0:8])
	seq = binary.LittleEndian.Uint64(p[8:16])
	sum := binary.LittleEndian.Uint32(p[16:20])
	data = p[chunkHeaderLen:]
	if got := crc32.Checksum(data, crcTable); got != sum {
		return 0, 0, nil, fmt.Errorf("rpc: stream chunk %d checksum mismatch (got %08x, want %08x)", seq, got, sum)
	}
	return session, seq, data, nil
}

// EncodeStreamCommit builds a commit payload restating the transfer totals.
func EncodeStreamCommit(session, chunks, bytes uint64, sum uint32) []byte {
	b := make([]byte, commitLen)
	binary.LittleEndian.PutUint64(b[0:8], session)
	binary.LittleEndian.PutUint64(b[8:16], chunks)
	binary.LittleEndian.PutUint64(b[16:24], bytes)
	binary.LittleEndian.PutUint32(b[24:28], sum)
	return b
}

// DecodeStreamCommit splits a commit payload.
func DecodeStreamCommit(p []byte) (session, chunks, bytes uint64, sum uint32, err error) {
	if len(p) != commitLen {
		return 0, 0, 0, 0, fmt.Errorf("rpc: stream commit payload is %d bytes, want %d", len(p), commitLen)
	}
	return binary.LittleEndian.Uint64(p[0:8]),
		binary.LittleEndian.Uint64(p[8:16]),
		binary.LittleEndian.Uint64(p[16:24]),
		binary.LittleEndian.Uint32(p[24:28]),
		nil
}

// StreamSender uploads a byte stream to a server as a chunked session. It
// is an io.Writer: producers serialise straight into it and it ships a
// chunk each time its buffer fills, so peak sender memory is
// O(window × chunk), not O(stream). The begin call is lazy — issued only
// when the stream outgrows one chunk — so a stream that fits in a single
// chunk sends nothing; Finish then reports streamed=false and the caller
// can deliver Buffered() however it likes (e.g. a legacy single-frame
// method).
//
// Chunk requests are pipelined: up to the configured window (default
// DefaultStreamWindow) are in flight concurrently over the multiplexed
// connection, so sustained throughput is window×chunkSize per round trip
// instead of one. The receiver reorders within StreamReorderWindow, which
// the window is capped to.
//
// Not safe for concurrent use.
type StreamSender struct {
	ctx       context.Context
	c         *Client
	m         StreamMethods
	chunkSize int
	window    int

	begun   bool
	session uint64
	buf     []byte
	seq     uint64
	total   uint64
	sum     uint32
	err     error // sticky

	// In-flight chunk machinery, created on first flush.
	sem  chan struct{} // window slots
	free chan []byte   // recycled chunk buffers
	wg   sync.WaitGroup

	asyncMu  sync.Mutex
	asyncErr error // first failure from an in-flight chunk call
}

// NewStreamSender prepares a sender over c. chunkSize <= 0 takes
// DefaultChunkSize; values above MaxChunkData are capped. The pipeline
// window defaults to DefaultStreamWindow; see SetWindow.
func NewStreamSender(ctx context.Context, c *Client, m StreamMethods, chunkSize int) *StreamSender {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize > MaxChunkData {
		chunkSize = MaxChunkData
	}
	return &StreamSender{ctx: ctx, c: c, m: m, chunkSize: chunkSize, window: DefaultStreamWindow}
}

// SetWindow adjusts how many chunk requests may be in flight at once
// (1 restores strict one-chunk-per-round-trip sending). Values are
// clamped to [1, StreamReorderWindow]. Must be called before the first
// Write.
func (s *StreamSender) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	if n > StreamReorderWindow {
		n = StreamReorderWindow
	}
	s.window = n
}

// Write implements io.Writer, shipping a chunk whenever the buffer fills.
func (s *StreamSender) Write(p []byte) (int, error) {
	if s.err == nil {
		s.err = s.takeAsyncErr()
	}
	if s.err != nil {
		return 0, s.err
	}
	written := 0
	for len(p) > 0 {
		space := s.chunkSize - len(s.buf)
		if space == 0 {
			if err := s.flush(); err != nil {
				return written, err
			}
			space = s.chunkSize
		}
		if space > len(p) {
			space = len(p)
		}
		s.buf = append(s.buf, p[:space]...)
		p = p[space:]
		written += space
	}
	return written, nil
}

// takeAsyncErr promotes the first in-flight chunk failure to the sticky
// error.
func (s *StreamSender) takeAsyncErr() error {
	s.asyncMu.Lock()
	defer s.asyncMu.Unlock()
	return s.asyncErr
}

func (s *StreamSender) setAsyncErr(err error) {
	s.asyncMu.Lock()
	if s.asyncErr == nil {
		s.asyncErr = err
	}
	s.asyncMu.Unlock()
}

// flush dispatches the buffered chunk, beginning the session first if
// needed. The chunk request goes out asynchronously; flush only blocks
// when the pipeline window is full.
func (s *StreamSender) flush() error {
	if !s.begun {
		resp, err := s.c.Call(s.ctx, s.m.Begin, nil)
		if err != nil {
			s.err = err
			return err
		}
		id, err := DecodeStreamSession(resp)
		if err != nil {
			s.err = err
			return err
		}
		s.session = id
		s.begun = true
		s.sem = make(chan struct{}, s.window)
		s.free = make(chan []byte, s.window)
	}
	select {
	case s.sem <- struct{}{}:
	case <-s.ctx.Done():
		s.err = s.ctx.Err()
		return s.err
	}
	if err := s.takeAsyncErr(); err != nil {
		<-s.sem
		s.err = err
		return err
	}
	// Hand the filled buffer to the in-flight call and keep accounting in
	// dispatch (= sequence) order; flush itself is never concurrent.
	data := s.buf
	payload := EncodeStreamChunk(s.session, s.seq, data)
	s.sum = crc32.Update(s.sum, crcTable, data)
	s.seq++
	s.total += uint64(len(data))
	select {
	case b := <-s.free:
		s.buf = b[:0]
	default:
		s.buf = make([]byte, 0, s.chunkSize)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if _, err := s.c.Call(s.ctx, s.m.Chunk, payload); err != nil {
			s.setAsyncErr(err)
		}
		select {
		case s.free <- data:
		default:
		}
		<-s.sem
	}()
	return nil
}

// Finish completes the transfer. If the whole stream fit inside one chunk
// no session was ever begun: Finish sends nothing and returns
// streamed=false, leaving the bytes in Buffered(). Otherwise it flushes
// the tail chunk, drains the pipeline, and commits the session, which
// installs the stream server-side.
func (s *StreamSender) Finish() (streamed bool, err error) {
	if s.err != nil {
		return s.begun, s.err
	}
	if !s.begun {
		return false, nil
	}
	if len(s.buf) > 0 {
		if err := s.flush(); err != nil {
			s.wg.Wait()
			return true, err
		}
	}
	s.wg.Wait()
	if err := s.takeAsyncErr(); err != nil {
		s.err = err
		return true, err
	}
	if _, err := s.c.Call(s.ctx, s.m.Commit, EncodeStreamCommit(s.session, s.seq, s.total, s.sum)); err != nil {
		s.err = err
		return true, err
	}
	return true, nil
}

// Buffered returns the bytes still held locally (the whole stream when
// Finish reported streamed=false).
func (s *StreamSender) Buffered() []byte { return s.buf }

// Abort tears down a begun session server-side, best effort. Safe to call
// whether or not a session was begun; never call it after a successful
// Finish.
func (s *StreamSender) Abort() {
	if !s.begun {
		return
	}
	s.wg.Wait() // let in-flight chunks settle before reaping the session
	// Use a fresh context: Abort is typically called on the failure path
	// where s.ctx may already be cancelled, and the reap must still go out.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _ = s.c.Call(ctx, s.m.Abort, EncodeStreamSession(s.session))
}

// StreamSink consumes one inbound stream on the receiving side. The
// StreamServer calls Write for each verified chunk in order, then exactly
// one of Commit (stream complete and totals verified — install it) or
// Abort (tear down without side effects).
type StreamSink interface {
	io.Writer
	Commit() error
	Abort()
}

// StreamServer tracks inbound chunked-transfer sessions for a Server. Its
// Handle* methods are rpc Handlers; Register installs all four. Sessions
// that go idle longer than the configured timeout are reaped (their sink
// aborted), so a crashed sender cannot pin receiver state forever.
type StreamServer struct {
	open        func() (StreamSink, error)
	idleTimeout time.Duration
	maxSessions int

	mu       sync.Mutex
	sessions map[uint64]*streamSession
	pending  int // begins past the limit check, sink still opening
	nextID   uint64
	closed   bool
}

type streamSession struct {
	id    uint64
	sink  StreamSink
	timer *time.Timer
	epoch uint64 // invalidates in-flight timer fires; guarded by StreamServer.mu

	// mu serialises all sink access and ordering state: pipelined senders
	// dispatch chunks concurrently, so several chunk handlers (and the
	// idle reaper) can address one session at once.
	mu      sync.Mutex
	dead    bool // sink already committed or aborted; reject further use
	nextSeq uint64
	bytes   uint64
	sum     uint32
	// pending buffers chunks that arrived ahead of nextSeq (at most
	// StreamReorderWindow of them); they drain to the sink in sequence as
	// the gap fills. drained (a cond on mu) wakes the parked handlers of
	// buffered chunks when nextSeq advances or the session dies — a chunk
	// is only acknowledged once written, which is what keeps a pipelined
	// sender from ever outrunning the reorder window.
	pending map[uint64][]byte
	drained *sync.Cond
}

// writeOrdered writes data, then drains any buffered chunks that have
// become consecutive and wakes their parked handlers. Caller holds
// sess.mu.
func (sess *streamSession) writeOrdered(data []byte) error {
	for {
		if _, err := sess.sink.Write(data); err != nil {
			return err
		}
		sess.nextSeq++
		sess.bytes += uint64(len(data))
		sess.sum = crc32.Update(sess.sum, crcTable, data)
		next, ok := sess.pending[sess.nextSeq]
		if !ok {
			sess.drained.Broadcast()
			return nil
		}
		delete(sess.pending, sess.nextSeq)
		data = next
	}
}

const (
	// DefaultStreamIdleTimeout reaps sessions whose sender stalled.
	DefaultStreamIdleTimeout = 30 * time.Second
	// DefaultMaxStreamSessions bounds concurrent in-flight transfers.
	DefaultMaxStreamSessions = 8
)

// NewStreamServer builds a session tracker. open is invoked per begin to
// create the session's sink. idleTimeout <= 0 takes
// DefaultStreamIdleTimeout; maxSessions <= 0 takes
// DefaultMaxStreamSessions.
func NewStreamServer(open func() (StreamSink, error), idleTimeout time.Duration, maxSessions int) *StreamServer {
	if idleTimeout <= 0 {
		idleTimeout = DefaultStreamIdleTimeout
	}
	if maxSessions <= 0 {
		maxSessions = DefaultMaxStreamSessions
	}
	return &StreamServer{
		open:        open,
		idleTimeout: idleTimeout,
		maxSessions: maxSessions,
		sessions:    make(map[uint64]*streamSession),
	}
}

// Register installs the four stream handlers on srv.
func (ss *StreamServer) Register(srv *Server, m StreamMethods) {
	srv.Handle(m.Begin, ss.HandleBegin)
	srv.Handle(m.Chunk, ss.HandleChunk)
	srv.Handle(m.Commit, ss.HandleCommit)
	srv.Handle(m.Abort, ss.HandleAbort)
}

// Sessions returns the number of in-flight sessions.
func (ss *StreamServer) Sessions() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.sessions)
}

// arm (re)starts sess's idle timer. Caller holds ss.mu.
func (ss *StreamServer) arm(sess *streamSession) {
	sess.epoch++
	epoch := sess.epoch
	sess.timer = time.AfterFunc(ss.idleTimeout, func() {
		ss.mu.Lock()
		cur, ok := ss.sessions[sess.id]
		if !ok || cur != sess || sess.epoch != epoch {
			ss.mu.Unlock()
			return // finished or superseded while we were firing
		}
		delete(ss.sessions, sess.id)
		ss.mu.Unlock()
		sess.abortOnce()
	})
}

// abortOnce aborts the session's sink exactly once, waiting out any chunk
// write in progress and releasing any parked buffered-chunk handlers.
func (sess *streamSession) abortOnce() {
	sess.mu.Lock()
	already := sess.dead
	sess.dead = true
	sess.drained.Broadcast()
	sess.mu.Unlock()
	if !already {
		sess.sink.Abort()
	}
}

// kill removes the session from the table (if still there) and aborts its
// sink.
func (ss *StreamServer) kill(sess *streamSession) {
	ss.mu.Lock()
	if cur, ok := ss.sessions[sess.id]; ok && cur == sess {
		delete(ss.sessions, sess.id)
		sess.disarm()
	}
	ss.mu.Unlock()
	sess.abortOnce()
}

// disarm invalidates any pending idle fire. Caller holds ss.mu.
func (sess *streamSession) disarm() {
	sess.epoch++
	if sess.timer != nil {
		sess.timer.Stop()
	}
}

// HandleBegin opens a session and returns its ID.
func (ss *StreamServer) HandleBegin([]byte) ([]byte, error) {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil, ErrClosed
	}
	// Count begins whose sink is still opening toward the limit, so
	// concurrent begins cannot race past it while open() runs unlocked.
	if len(ss.sessions)+ss.pending >= ss.maxSessions {
		ss.mu.Unlock()
		return nil, ErrSessionLimit
	}
	ss.pending++
	ss.nextID++
	id := ss.nextID
	ss.mu.Unlock()

	sink, err := ss.open()

	ss.mu.Lock()
	ss.pending--
	if err != nil {
		ss.mu.Unlock()
		return nil, err
	}
	if ss.closed {
		ss.mu.Unlock()
		sink.Abort()
		return nil, ErrClosed
	}
	sess := &streamSession{id: id, sink: sink}
	sess.drained = sync.NewCond(&sess.mu)
	ss.sessions[id] = sess
	ss.arm(sess)
	ss.mu.Unlock()
	return EncodeStreamSession(id), nil
}

// take removes the session from the table, disarming its timer, so the
// caller owns its sink exclusively. Returns nil if the session is unknown.
func (ss *StreamServer) take(id uint64) *streamSession {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sess, ok := ss.sessions[id]
	if !ok {
		return nil
	}
	delete(ss.sessions, id)
	sess.disarm()
	return sess
}

// HandleChunk verifies and applies one chunk. Chunks of one session may be
// handled concurrently (the pipelined sender keeps a window in flight and
// the server runs one goroutine per request): in-order chunks stream to
// the sink immediately, chunks up to StreamReorderWindow ahead are
// buffered and drained in sequence, anything else dooms the transfer.
func (ss *StreamServer) HandleChunk(payload []byte) ([]byte, error) {
	if len(payload) < chunkHeaderLen {
		// Too short to even name a session; if the sender is gone the idle
		// timer reaps whatever it had open.
		return nil, fmt.Errorf("rpc: stream chunk payload is %d bytes, want >= %d", len(payload), chunkHeaderLen)
	}
	id := binary.LittleEndian.Uint64(payload[0:8])
	seq := binary.LittleEndian.Uint64(payload[8:16])
	sum := binary.LittleEndian.Uint32(payload[16:20])
	data := payload[chunkHeaderLen:]

	ss.mu.Lock()
	sess, ok := ss.sessions[id]
	if ok {
		// Hold the idle reaper off while this chunk is processed.
		sess.disarm()
	}
	ss.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSession
	}
	// The header parsed, so the session is identifiable: a corrupt,
	// duplicated or out-of-window chunk dooms the transfer and the session
	// is torn down now rather than lingering until the idle timeout.
	if got := crc32.Checksum(data, crcTable); got != sum {
		ss.kill(sess)
		return nil, fmt.Errorf("rpc: stream session %d chunk %d checksum mismatch (got %08x, want %08x)", id, seq, got, sum)
	}

	sess.mu.Lock()
	if sess.dead {
		sess.mu.Unlock()
		return nil, ErrUnknownSession
	}
	var ferr error
	buffered := false
	switch {
	case seq < sess.nextSeq:
		ferr = fmt.Errorf("rpc: stream session %d chunk %d duplicated (next seq %d)", id, seq, sess.nextSeq)
	case seq > sess.nextSeq+StreamReorderWindow:
		ferr = fmt.Errorf("rpc: stream session %d chunk %d beyond reorder window (next seq %d)", id, seq, sess.nextSeq)
	case seq > sess.nextSeq:
		if sess.pending == nil {
			sess.pending = make(map[uint64][]byte)
		}
		if _, dup := sess.pending[seq]; dup {
			ferr = fmt.Errorf("rpc: stream session %d chunk %d duplicated in reorder buffer", id, seq)
		} else {
			// data aliases this request's private frame; buffering it
			// needs no copy.
			sess.pending[seq] = data
			buffered = true
		}
	default:
		ferr = sess.writeOrdered(data)
	}
	sess.mu.Unlock()
	if ferr != nil {
		ss.kill(sess)
		return nil, ferr
	}

	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		sess.abortOnce()
		return nil, ErrClosed
	}
	if _, live := ss.sessions[id]; live {
		ss.arm(sess)
	}
	ss.mu.Unlock()

	if buffered {
		// Park until the gap fills and this chunk reaches the sink (or the
		// session dies — idle reaper, abort, or a doomed earlier chunk).
		// Responding only once written means an acknowledged chunk implies
		// all earlier ones were written, so a pipelined sender's window
		// bounds how far past nextSeq it can ever dispatch.
		sess.mu.Lock()
		for !sess.dead && sess.nextSeq <= seq {
			sess.drained.Wait()
		}
		delivered := sess.nextSeq > seq
		sess.mu.Unlock()
		if !delivered {
			return nil, fmt.Errorf("rpc: stream session %d aborted while chunk %d awaited its gap", id, seq)
		}
	}
	return nil, nil
}

// HandleCommit verifies the transfer totals and installs the stream via
// the sink.
func (ss *StreamServer) HandleCommit(payload []byte) ([]byte, error) {
	id, chunks, total, sum, err := DecodeStreamCommit(payload)
	if err != nil {
		return nil, err
	}
	sess := ss.take(id)
	if sess == nil {
		return nil, ErrUnknownSession
	}
	sess.mu.Lock()
	if sess.dead {
		sess.mu.Unlock()
		return nil, ErrUnknownSession
	}
	if len(sess.pending) != 0 || chunks != sess.nextSeq || total != sess.bytes || sum != sess.sum {
		sess.dead = true
		sess.drained.Broadcast()
		mismatch := fmt.Errorf("rpc: stream session %d commit mismatch (got %d chunks/%d bytes/%08x, have %d/%d/%08x, %d unsequenced)",
			id, chunks, total, sum, sess.nextSeq, sess.bytes, sess.sum, len(sess.pending))
		sess.mu.Unlock()
		sess.sink.Abort()
		return nil, mismatch
	}
	// Terminal: reject any stray chunk that races the commit.
	sess.dead = true
	sess.drained.Broadcast()
	cerr := sess.sink.Commit()
	sess.mu.Unlock()
	return nil, cerr
}

// HandleAbort tears a session down. Aborting an unknown (already finished
// or reaped) session is not an error.
func (ss *StreamServer) HandleAbort(payload []byte) ([]byte, error) {
	id, err := DecodeStreamSession(payload)
	if err != nil {
		return nil, err
	}
	if sess := ss.take(id); sess != nil {
		sess.abortOnce()
	}
	return nil, nil
}

// Close aborts every in-flight session and rejects new ones.
func (ss *StreamServer) Close() {
	ss.mu.Lock()
	ss.closed = true
	var reap []*streamSession
	for id, sess := range ss.sessions {
		delete(ss.sessions, id)
		sess.disarm()
		reap = append(reap, sess)
	}
	ss.mu.Unlock()
	for _, sess := range reap {
		sess.abortOnce()
	}
}
