package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

const (
	methodEcho uint16 = 1
	methodFail uint16 = 2
	methodSlow uint16 = 3
)

func startEchoServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle(methodEcho, func(p []byte) ([]byte, error) { return p, nil })
	s.Handle(methodFail, func(p []byte) ([]byte, error) { return nil, errors.New("handler says no") })
	s.Handle(methodSlow, func(p []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return p, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

func TestCallEcho(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(context.Background(), methodEcho, []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "hello" {
		t.Fatalf("echo = %q", resp)
	}
	// Empty payload.
	resp, err = c.Call(context.Background(), methodEcho, nil)
	if err != nil || len(resp) != 0 {
		t.Fatalf("empty echo = %q, %v", resp, err)
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), methodFail, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if re.Msg != "handler says no" || re.Method != methodFail {
		t.Fatalf("remote error = %+v", re)
	}
	// The connection survives handler errors.
	if _, err := c.Call(context.Background(), methodEcho, []byte("still alive")); err != nil {
		t.Fatalf("connection dead after remote error: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(context.Background(), 999, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown method error = %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	const workers, per = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				want := fmt.Sprintf("w%d-%d", w, i)
				resp, err := c.Call(context.Background(), methodEcho, []byte(want))
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if string(resp) != want {
					t.Errorf("cross-wired response: got %q want %q", resp, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSlowCallDoesNotBlockFast: responses multiplex out of order.
func TestSlowCallDoesNotBlockFast(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		if _, err := c.Call(context.Background(), methodSlow, []byte("slow")); err != nil {
			t.Errorf("slow call: %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the slow call get in first
	start := time.Now()
	if _, err := c.Call(context.Background(), methodEcho, []byte("fast")); err != nil {
		t.Fatalf("fast call: %v", err)
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("fast call waited %s behind slow call", el)
	}
	<-slowDone
}

func TestContextCancellation(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, methodSlow, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled call error = %v", err)
	}
	// Late response for the abandoned ID must not poison later calls.
	time.Sleep(250 * time.Millisecond)
	if _, err := c.Call(context.Background(), methodEcho, []byte("ok")); err != nil {
		t.Fatalf("connection unusable after cancellation: %v", err)
	}
}

func TestServerCloseFailsInflight(t *testing.T) {
	s, addr := startEchoServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), methodSlow, nil)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("in-flight call survived server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after server close")
	}
	// Subsequent calls fail fast.
	if _, err := c.Call(context.Background(), methodEcho, nil); err == nil {
		t.Fatal("call succeeded on dead connection")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr)
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), methodSlow, nil)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending call error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call hung after client close")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// TestMalformedFrameDropsConnection: a garbage length prefix must not
// crash the server; the offending connection is dropped, others live on.
func TestMalformedFrame(t *testing.T) {
	_, addr := startEchoServer(t)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Oversized frame length.
	var evil [4]byte
	binary.LittleEndian.PutUint32(evil[:], MaxFrame+1)
	if _, err := raw.Write(evil[:]); err != nil {
		t.Fatal(err)
	}
	// A healthy client still works.
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(context.Background(), methodEcho, []byte("ok")); err != nil {
		t.Fatalf("healthy client starved by malformed peer: %v", err)
	}
}

// TestShortFrame: a frame shorter than the request header drops the
// connection without panicking.
func TestShortFrame(t *testing.T) {
	_, addr := startEchoServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 3) // < reqHeader
	buf.Write(lenBuf[:])
	buf.Write([]byte{1, 2, 3})
	if _, err := raw.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Server must close the connection: the next read returns EOF.
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	one := make([]byte, 1)
	if _, err := raw.Read(one); err == nil {
		t.Fatal("server kept a connection after malformed frame")
	}
}

func TestPool(t *testing.T) {
	_, addr := startEchoServer(t)
	p, err := DialPool(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 30; i++ {
		want := fmt.Sprintf("req-%d", i)
		resp, err := p.Call(context.Background(), methodEcho, []byte(want))
		if err != nil || string(resp) != want {
			t.Fatalf("pool call %d: %q, %v", i, resp, err)
		}
	}
}

func TestPoolDialFailureCleansUp(t *testing.T) {
	if _, err := DialPool("127.0.0.1:1", 3); err == nil {
		t.Fatal("pool dial to closed port succeeded")
	}
}

func TestServerDoubleClose(t *testing.T) {
	s, _ := startEchoServer(t)
	s.Close()
	s.Close() // must not panic or deadlock
}
