package rpc

import (
	"bytes"
	"context"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

var testMethods = StreamMethods{Begin: 10, Chunk: 11, Commit: 12, Abort: 13}

// testSink records everything the StreamServer feeds it.
type testSink struct {
	mu        sync.Mutex
	buf       bytes.Buffer
	committed int
	aborted   int
}

func (k *testSink) Write(p []byte) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.buf.Write(p)
}

func (k *testSink) Commit() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.committed++
	return nil
}

func (k *testSink) Abort() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.aborted++
}

func (k *testSink) state() (data []byte, committed, aborted int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]byte(nil), k.buf.Bytes()...), k.committed, k.aborted
}

// streamFixture runs a Server with a StreamServer whose sinks are recorded.
type streamFixture struct {
	srv  *Server
	ss   *StreamServer
	addr string

	mu    sync.Mutex
	sinks []*testSink
}

func newStreamFixture(t *testing.T, idle time.Duration, maxSessions int) *streamFixture {
	t.Helper()
	f := &streamFixture{srv: NewServer()}
	f.ss = NewStreamServer(func() (StreamSink, error) {
		k := &testSink{}
		f.mu.Lock()
		f.sinks = append(f.sinks, k)
		f.mu.Unlock()
		return k, nil
	}, idle, maxSessions)
	f.ss.Register(f.srv, testMethods)
	addr, err := f.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.addr = addr
	t.Cleanup(func() {
		f.ss.Close()
		f.srv.Close()
	})
	return f
}

func (f *streamFixture) sink(t *testing.T, i int) *testSink {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	if i >= len(f.sinks) {
		t.Fatalf("sink %d never opened (have %d)", i, len(f.sinks))
	}
	return f.sinks[i]
}

func TestStreamChunkCodec(t *testing.T) {
	data := []byte("the quick brown fox")
	p := EncodeStreamChunk(7, 42, data)
	session, seq, got, err := DecodeStreamChunk(p)
	if err != nil {
		t.Fatal(err)
	}
	if session != 7 || seq != 42 || !bytes.Equal(got, data) {
		t.Fatalf("decoded (%d, %d, %q)", session, seq, got)
	}
	// Corrupt one data byte: the checksum must catch it.
	p[len(p)-1] ^= 0xff
	if _, _, _, err := DecodeStreamChunk(p); err == nil {
		t.Fatal("corrupt chunk decoded cleanly")
	}
	if _, _, _, err := DecodeStreamChunk([]byte("short")); err == nil {
		t.Fatal("truncated chunk decoded cleanly")
	}
}

func TestStreamCommitCodec(t *testing.T) {
	p := EncodeStreamCommit(1, 2, 3, 4)
	session, chunks, total, sum, err := DecodeStreamCommit(p)
	if err != nil {
		t.Fatal(err)
	}
	if session != 1 || chunks != 2 || total != 3 || sum != 4 {
		t.Fatalf("decoded (%d, %d, %d, %d)", session, chunks, total, sum)
	}
	if _, _, _, _, err := DecodeStreamCommit(p[:10]); err == nil {
		t.Fatal("truncated commit decoded cleanly")
	}
}

// TestStreamSenderSingleChunkFallback: a stream that fits in one chunk
// must not open a session at all — the caller delivers Buffered() itself.
func TestStreamSenderSingleChunkFallback(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := NewStreamSender(context.Background(), c, testMethods, 1024)
	if _, err := s.Write([]byte("small payload")); err != nil {
		t.Fatal(err)
	}
	streamed, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if streamed {
		t.Fatal("single-chunk stream reported streamed=true")
	}
	if string(s.Buffered()) != "small payload" {
		t.Fatalf("Buffered() = %q", s.Buffered())
	}
	f.mu.Lock()
	opened := len(f.sinks)
	f.mu.Unlock()
	if opened != 0 {
		t.Fatalf("%d sessions opened for an unstreamed payload", opened)
	}
}

// TestStreamRoundTripMultiChunk pushes a payload through many tiny chunks
// and checks the sink reassembles it byte-identically.
func TestStreamRoundTripMultiChunk(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(11))
	payload := make([]byte, 10000)
	rng.Read(payload)

	s := NewStreamSender(context.Background(), c, testMethods, 64)
	// Write in ragged pieces to exercise buffer splitting.
	for off := 0; off < len(payload); {
		n := 1 + rng.Intn(300)
		if off+n > len(payload) {
			n = len(payload) - off
		}
		if _, err := s.Write(payload[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	streamed, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !streamed {
		t.Fatal("multi-chunk stream reported streamed=false")
	}
	data, committed, aborted := f.sink(t, 0).state()
	if !bytes.Equal(data, payload) {
		t.Fatalf("sink got %d bytes, want %d (content mismatch: %v)", len(data), len(payload), !bytes.Equal(data, payload))
	}
	if committed != 1 || aborted != 0 {
		t.Fatalf("committed=%d aborted=%d", committed, aborted)
	}
	if n := f.ss.Sessions(); n != 0 {
		t.Fatalf("%d sessions left after commit", n)
	}
}

// begin opens a session by hand and returns its ID.
func beginSession(t *testing.T, c *Client) uint64 {
	t.Helper()
	resp, err := c.Call(context.Background(), testMethods.Begin, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := DecodeStreamSession(resp)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStreamSequenceViolationKillsSession(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)

	// Chunks within the reorder window are buffered, but a sequence number
	// beyond it can never come from a well-behaved sender.
	far := uint64(StreamReorderWindow + 1)
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, far, []byte("x"))); err == nil {
		t.Fatal("chunk beyond the reorder window accepted")
	}
	// The session is gone: even a correct chunk is now rejected.
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 0, []byte("x"))); err == nil {
		t.Fatal("chunk accepted on a killed session")
	}
	if _, committed, aborted := f.sink(t, 0).state(); committed != 0 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 0/1", committed, aborted)
	}
}

// TestStreamReorderWithinWindow: chunks arriving out of order — as a
// pipelined sender's concurrent requests may — are buffered and fed to
// the sink strictly in sequence.
func TestStreamReorderWithinWindow(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)

	parts := [][]byte{[]byte("alpha-"), []byte("beta-"), []byte("gamma-"), []byte("delta")}
	var sum uint32
	var total uint64
	for _, p := range parts {
		sum = crc32.Update(sum, crcTable, p)
		total += uint64(len(p))
	}
	// Deliver 2, 0, 3, 1 concurrently (a chunk ahead of the gap is only
	// acknowledged once written, so out-of-order delivery must overlap,
	// exactly as a pipelined sender's in-flight window does); every chunk
	// stays within the reorder window of the lowest undelivered sequence
	// number.
	var wg sync.WaitGroup
	errs := make([]error, len(parts))
	for i, seq := range []uint64{2, 0, 3, 1} {
		wg.Add(1)
		go func(i int, seq uint64) {
			defer wg.Done()
			// Stagger so the buffered chunks park before the gap fills.
			time.Sleep(time.Duration(i) * 10 * time.Millisecond)
			_, errs[i] = c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, seq, parts[seq]))
		}(i, seq)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("chunk call %d: %v", i, err)
		}
	}
	if _, err := c.Call(context.Background(), testMethods.Commit, EncodeStreamCommit(id, uint64(len(parts)), total, sum)); err != nil {
		t.Fatalf("commit: %v", err)
	}
	data, committed, aborted := f.sink(t, 0).state()
	if string(data) != "alpha-beta-gamma-delta" {
		t.Fatalf("sink reassembled %q", data)
	}
	if committed != 1 || aborted != 0 {
		t.Fatalf("committed=%d aborted=%d", committed, aborted)
	}
}

// TestStreamDuplicateChunkKillsSession: a sequence number delivered twice
// (already written, or already buffered) dooms the transfer.
func TestStreamDuplicateChunkKillsSession(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 0, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 0, []byte("x"))); err == nil {
		t.Fatal("duplicate chunk accepted")
	}
	if _, committed, aborted := f.sink(t, 0).state(); committed != 0 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 0/1", committed, aborted)
	}
}

// TestStreamCommitWithGapAborts: a commit while a buffered chunk still
// waits on a missing sequence number must not install the stream, and
// must release the parked chunk handler with an error rather than leaving
// it waiting forever.
func TestStreamCommitWithGapAborts(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)
	// seq 1 parks awaiting seq 0, which is never sent.
	chunkErr := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 1, []byte("b")))
		chunkErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the chunk buffer and park
	sum := crc32.Checksum([]byte("b"), crcTable)
	if _, err := c.Call(context.Background(), testMethods.Commit, EncodeStreamCommit(id, 2, 1, sum)); err == nil {
		t.Fatal("commit over a sequence gap accepted")
	}
	select {
	case err := <-chunkErr:
		if err == nil {
			t.Fatal("parked chunk acknowledged despite the gap never filling")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked chunk handler leaked past the aborted session")
	}
	if _, committed, aborted := f.sink(t, 0).state(); committed != 0 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 0/1", committed, aborted)
	}
}

// TestStreamParkedChunkReapedByIdleTimeout: a buffered chunk whose gap
// never fills (its sender died mid-window) must be released by the idle
// reaper, not parked forever.
func TestStreamParkedChunkReapedByIdleTimeout(t *testing.T) {
	f := newStreamFixture(t, 40*time.Millisecond, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 1, []byte("b"))); err == nil {
		t.Fatal("chunk parked on a never-filled gap was acknowledged")
	}
	if _, committed, aborted := f.sink(t, 0).state(); committed != 0 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 0/1", committed, aborted)
	}
}

// TestStreamPipelinedRoundTrip pushes a payload through many tiny chunks
// at several pipeline windows and checks byte-identical reassembly; the
// concurrent dispatch exercises the receiver's reorder path under real
// goroutine scheduling.
func TestStreamPipelinedRoundTrip(t *testing.T) {
	for _, window := range []int{1, 4, StreamReorderWindow} {
		f := newStreamFixture(t, 0, 0)
		c, err := Dial(f.addr)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(window)))
		payload := make([]byte, 40000)
		rng.Read(payload)

		s := NewStreamSender(context.Background(), c, testMethods, 128)
		s.SetWindow(window)
		for off := 0; off < len(payload); {
			n := 1 + rng.Intn(500)
			if off+n > len(payload) {
				n = len(payload) - off
			}
			if _, err := s.Write(payload[off : off+n]); err != nil {
				t.Fatalf("window=%d: %v", window, err)
			}
			off += n
		}
		streamed, err := s.Finish()
		if err != nil || !streamed {
			t.Fatalf("window=%d: streamed=%v err=%v", window, streamed, err)
		}
		data, committed, aborted := f.sink(t, 0).state()
		if !bytes.Equal(data, payload) {
			t.Fatalf("window=%d: sink got %d bytes, want %d", window, len(data), len(payload))
		}
		if committed != 1 || aborted != 0 {
			t.Fatalf("window=%d: committed=%d aborted=%d", window, committed, aborted)
		}
		c.Close()
	}
}

// TestStreamChecksumMismatchKillsSession: a corrupted chunk whose header
// still names the session must tear that session down immediately rather
// than leaving it to the idle reaper.
func TestStreamChecksumMismatchKillsSession(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)
	payload := EncodeStreamChunk(id, 0, []byte("soon to be corrupted"))
	payload[len(payload)-1] ^= 0xff
	if _, err := c.Call(context.Background(), testMethods.Chunk, payload); err == nil {
		t.Fatal("corrupt chunk accepted")
	}
	if n := f.ss.Sessions(); n != 0 {
		t.Fatalf("%d sessions left after corrupt chunk", n)
	}
	if _, committed, aborted := f.sink(t, 0).state(); committed != 0 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 0/1", committed, aborted)
	}
}

func TestStreamCommitMismatchAborts(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 0, []byte("abc"))); err != nil {
		t.Fatal(err)
	}
	// Claim two chunks were sent.
	if _, err := c.Call(context.Background(), testMethods.Commit, EncodeStreamCommit(id, 2, 3, 0)); err == nil {
		t.Fatal("commit with wrong totals accepted")
	}
	if _, committed, aborted := f.sink(t, 0).state(); committed != 0 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 0/1", committed, aborted)
	}
	if n := f.ss.Sessions(); n != 0 {
		t.Fatalf("%d sessions left after failed commit", n)
	}
}

func TestStreamIdleTimeoutReapsSession(t *testing.T) {
	f := newStreamFixture(t, 30*time.Millisecond, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)
	if f.ss.Sessions() != 1 {
		t.Fatal("session not registered")
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.ss.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, committed, aborted := f.sink(t, 0).state(); committed != 0 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 0/1", committed, aborted)
	}
	// The sender finds out on its next chunk.
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 0, []byte("x"))); err == nil {
		t.Fatal("chunk accepted on a reaped session")
	} else if !strings.Contains(err.Error(), ErrUnknownSession.Error()) {
		t.Fatalf("err = %v, want unknown session", err)
	}
}

func TestStreamExplicitAbort(t *testing.T) {
	f := newStreamFixture(t, 0, 0)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 0, []byte("partial"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), testMethods.Abort, EncodeStreamSession(id)); err != nil {
		t.Fatalf("abort: %v", err)
	}
	// Aborting an already-gone session is not an error (idempotent reap).
	if _, err := c.Call(context.Background(), testMethods.Abort, EncodeStreamSession(id)); err != nil {
		t.Fatalf("second abort: %v", err)
	}
	if _, committed, aborted := f.sink(t, 0).state(); committed != 0 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want 0/1", committed, aborted)
	}
}

func TestStreamSessionLimit(t *testing.T) {
	f := newStreamFixture(t, 0, 1)
	c, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	beginSession(t, c)
	if _, err := c.Call(context.Background(), testMethods.Begin, nil); err == nil {
		t.Fatal("second session accepted over the limit")
	} else if !strings.Contains(err.Error(), ErrSessionLimit.Error()) {
		t.Fatalf("err = %v, want session limit", err)
	}
}

// TestStreamSinkWriteErrorPropagates: a sink that rejects data must fail
// the chunk call and kill the session.
func TestStreamSinkWriteErrorPropagates(t *testing.T) {
	srv := NewServer()
	var aborted sync.WaitGroup
	aborted.Add(1)
	ss := NewStreamServer(func() (StreamSink, error) {
		return &failSink{onAbort: aborted.Done}, nil
	}, 0, 0)
	ss.Register(srv, testMethods)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer ss.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id := beginSession(t, c)
	if _, err := c.Call(context.Background(), testMethods.Chunk, EncodeStreamChunk(id, 0, []byte("x"))); err == nil {
		t.Fatal("chunk accepted by a failing sink")
	}
	aborted.Wait()
	if n := ss.Sessions(); n != 0 {
		t.Fatalf("%d sessions left after sink failure", n)
	}
}

type failSink struct{ onAbort func() }

func (k *failSink) Write([]byte) (int, error) { return 0, errors.New("sink full") }
func (k *failSink) Commit() error             { return nil }
func (k *failSink) Abort()                    { k.onAbort() }

// TestPoolCursorNearWrap: the pool's round-robin modulo is computed in
// uint64, so a counter past the int range must keep dealing connections
// instead of panicking with a negative index.
func TestPoolCursorNearWrap(t *testing.T) {
	srv := NewServer()
	srv.Handle(1, func(p []byte) ([]byte, error) { return p, nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := DialPool(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.next.Store(math.MaxUint64 - 4)
	for i := 0; i < 10; i++ {
		if _, err := p.Call(context.Background(), 1, []byte("ping")); err != nil {
			t.Fatalf("call %d across the counter wrap: %v", i, err)
		}
	}
}
