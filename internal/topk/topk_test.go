package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	New(0)
}

func TestSelectorBasics(t *testing.T) {
	s := New(3)
	if s.K() != 3 || s.Len() != 0 || s.Full() {
		t.Fatalf("fresh selector state wrong: k=%d len=%d full=%v", s.K(), s.Len(), s.Full())
	}
	if _, ok := s.WorstDist(); ok {
		t.Fatal("WorstDist should report not-full")
	}
	s.Push(1, 5)
	s.Push(2, 1)
	s.Push(3, 3)
	if !s.Full() {
		t.Fatal("selector should be full after 3 pushes")
	}
	if w, ok := s.WorstDist(); !ok || w != 5 {
		t.Fatalf("WorstDist = %v,%v, want 5,true", w, ok)
	}
	// A better candidate evicts the worst.
	if !s.Push(4, 2) {
		t.Fatal("better candidate rejected")
	}
	// A worse candidate is rejected.
	if s.Push(5, 100) {
		t.Fatal("worse candidate accepted")
	}
	got := s.Results()
	want := []Item{{2, 1}, {4, 2}, {3, 3}}
	if len(got) != len(want) {
		t.Fatalf("Results = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Results = %v, want %v", got, want)
		}
	}
	// Selector is reusable after Results.
	if s.Len() != 0 {
		t.Fatal("selector not drained after Results")
	}
	s.Push(9, 1)
	if s.Len() != 1 {
		t.Fatal("selector unusable after Results")
	}
}

func TestSelectorTieBreaksByID(t *testing.T) {
	s := New(4)
	s.Push(30, 1)
	s.Push(10, 1)
	s.Push(20, 1)
	got := s.Results()
	for i, want := range []uint64{10, 20, 30} {
		if got[i].ID != want {
			t.Fatalf("tie-break order wrong: %v", got)
		}
	}
}

// TestSelectorBoundaryTieKeepsSmallestID pins the push-order independence
// the parallel scan relies on: when candidates tie in distance at the k
// boundary, the smallest ID is retained no matter which arrived first.
func TestSelectorBoundaryTieKeepsSmallestID(t *testing.T) {
	for _, order := range [][]uint64{{9, 5}, {5, 9}} {
		s := New(1)
		for _, id := range order {
			s.Push(id, 2)
		}
		got := s.Results()
		if len(got) != 1 || got[0].ID != 5 {
			t.Fatalf("push order %v: retained %v, want ID 5", order, got)
		}
	}
}

// TestSelectorMatchesSortOracle compares against sorting the full candidate
// list, across many random workloads.
func TestSelectorMatchesSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(20)
		n := rng.Intn(200)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: uint64(i), Dist: float32(rng.Intn(50))} // duplicates likely
		}
		s := New(k)
		for _, it := range items {
			s.Push(it.ID, it.Dist)
		}
		got := s.Results()

		oracle := make([]Item, n)
		copy(oracle, items)
		sort.Slice(oracle, func(i, j int) bool {
			if oracle[i].Dist != oracle[j].Dist {
				return oracle[i].Dist < oracle[j].Dist
			}
			return oracle[i].ID < oracle[j].ID
		})
		if len(oracle) > k {
			oracle = oracle[:k]
		}
		if len(got) != len(oracle) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(oracle))
		}
		for i := range oracle {
			// Selection is by (Dist, ID), so retained items — including
			// which IDs survive a tie cut at the boundary — must match the
			// oracle exactly, independent of push order.
			if got[i] != oracle[i] {
				t.Fatalf("trial %d item %d: got %v, want %v\ngot:  %v\nwant: %v",
					trial, i, got[i], oracle[i], got, oracle)
			}
		}
	}
}

// Property: results are always sorted and never exceed k.
func TestSelectorResultsSortedProperty(t *testing.T) {
	f := func(dists []float32, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		s := New(k)
		for i, d := range dists {
			s.Push(uint64(i), d)
		}
		got := s.Results()
		if len(got) > k {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeBasics(t *testing.T) {
	a := []Item{{1, 1}, {3, 3}, {5, 5}}
	b := []Item{{2, 2}, {4, 4}, {6, 6}}
	got := Merge(4, a, b)
	want := []uint64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Merge = %v", got)
	}
	for i := range want {
		if got[i].ID != want[i] {
			t.Fatalf("Merge = %v, want ids %v", got, want)
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	if got := Merge(0, []Item{{1, 1}}); got != nil {
		t.Errorf("k=0 should merge to nil, got %v", got)
	}
	if got := Merge(5); got != nil {
		t.Errorf("no lists should merge to nil, got %v", got)
	}
	if got := Merge(5, nil, nil); got != nil {
		t.Errorf("empty lists should merge to nil, got %v", got)
	}
	// k larger than total.
	got := Merge(10, []Item{{1, 1}}, []Item{{2, 2}})
	if len(got) != 2 {
		t.Errorf("merge of 2 items with k=10: got %v", got)
	}
}

func TestResetKReconfigures(t *testing.T) {
	s := New(3)
	for i := 0; i < 5; i++ {
		s.Push(uint64(i), float32(i))
	}
	s.ResetK(5)
	if s.K() != 5 || s.Len() != 0 {
		t.Fatalf("after ResetK(5): k=%d len=%d", s.K(), s.Len())
	}
	for i := 0; i < 10; i++ {
		s.Push(uint64(i), float32(10-i))
	}
	got := s.Sorted()
	if len(got) != 5 {
		t.Fatalf("Sorted len = %d, want 5", len(got))
	}
	for i, it := range got {
		if want := uint64(9 - i); it.ID != want {
			t.Fatalf("Sorted[%d].ID = %d, want %d", i, it.ID, want)
		}
	}
	// Shrinking reuses the backing array and keeps selection correct.
	s.ResetK(2)
	for i := 0; i < 10; i++ {
		s.Push(uint64(i), float32(i))
	}
	got = s.Sorted()
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("after shrink: %v", got)
	}
}

func TestResetKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ResetK(0) did not panic")
		}
	}()
	New(1).ResetK(0)
}

// TestSortedMatchesResults checks the allocation-free drain returns the
// same sequence Results would.
func TestSortedMatchesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		a, b := New(k), New(k)
		for i := 0; i < rng.Intn(40); i++ {
			id, d := uint64(rng.Intn(100)), float32(rng.Intn(20))
			a.Push(id, d)
			b.Push(id, d)
		}
		got, want := a.Sorted(), b.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d item %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMergeIntoReusesBuffer(t *testing.T) {
	a := []Item{{1, 1}, {3, 3}}
	b := []Item{{2, 2}, {4, 4}}
	buf := make([]Item, 0, 8)
	got := MergeInto(buf, 3, a, b)
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Fatalf("MergeInto = %v", got)
	}
	if &got[:1][0] != &buf[:1][0] {
		t.Fatal("MergeInto reallocated despite sufficient capacity")
	}
	// A stale longer result is truncated, not retained.
	got = MergeInto(got, 1, a)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("MergeInto reuse = %v", got)
	}
	// More lists than the inline head buffer handles.
	var lists [][]Item
	for i := 0; i < 20; i++ {
		lists = append(lists, []Item{{uint64(i), float32(i)}})
	}
	got = MergeInto(nil, 20, lists...)
	if len(got) != 20 {
		t.Fatalf("wide MergeInto len = %d", len(got))
	}
	for i := range got {
		if got[i].ID != uint64(i) {
			t.Fatalf("wide MergeInto[%d] = %v", i, got[i])
		}
	}
}

// TestMergeMatchesSortOracle validates Merge against concatenate-and-sort.
func TestMergeMatchesSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		nLists := 1 + rng.Intn(5)
		k := 1 + rng.Intn(15)
		var lists [][]Item
		var all []Item
		id := uint64(0)
		for l := 0; l < nLists; l++ {
			n := rng.Intn(20)
			list := make([]Item, n)
			for i := range list {
				list[i] = Item{ID: id, Dist: float32(rng.Intn(30))}
				id++
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].Dist != list[j].Dist {
					return list[i].Dist < list[j].Dist
				}
				return list[i].ID < list[j].ID
			})
			lists = append(lists, list)
			all = append(all, list...)
		}
		got := Merge(k, lists...)
		sort.Slice(all, func(i, j int) bool {
			if all[i].Dist != all[j].Dist {
				return all[i].Dist < all[j].Dist
			}
			return all[i].ID < all[j].ID
		})
		if len(all) > k {
			all = all[:k]
		}
		if len(got) != len(all) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("trial %d: merge mismatch at %d:\ngot  %v\nwant %v", trial, i, got, all)
			}
		}
	}
}
