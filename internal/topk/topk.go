// Package topk implements bounded top-k selection over (id, distance) pairs
// and k-way merging of partial result lists.
//
// Searchers use a Selector to keep the k nearest images while scanning
// inverted lists; brokers and blenders use Merge to combine partial top-k
// lists from downstream nodes into a global top-k.
package topk

import "sort"

// Item is a candidate search result: an opaque 64-bit identifier and its
// distance to the query. Lower distance is better.
type Item struct {
	ID   uint64
	Dist float32
}

// Selector keeps the k smallest-distance items seen so far using a bounded
// binary max-heap: the root is the current worst of the best k, so a new
// candidate either beats the root (replace + sift down) or is rejected in
// O(1). Items are ordered by (Dist, ID), so among equal distances the
// smallest IDs are retained: the selection is a pure function of the
// candidate multiset, independent of push order — which is what lets a
// striped parallel scan reproduce the serial scan exactly even when
// distances tie at the k boundary. The zero Selector is not usable; call
// New.
type Selector struct {
	k    int
	heap []Item // max-heap on Dist
}

// New returns a Selector that retains the k closest items. k must be
// positive.
func New(k int) *Selector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Selector{k: k, heap: make([]Item, 0, k)}
}

// K returns the selector's capacity.
func (s *Selector) K() int { return s.k }

// Len returns the number of items currently held (≤ k).
func (s *Selector) Len() int { return len(s.heap) }

// Full reports whether the selector holds k items.
func (s *Selector) Full() bool { return len(s.heap) == s.k }

// WorstDist returns the largest distance among retained items, or +Inf-like
// sentinel behaviour: if the selector is not yet full it returns false in
// the second result, meaning every candidate should be pushed.
func (s *Selector) WorstDist() (float32, bool) {
	if len(s.heap) < s.k {
		return 0, false
	}
	return s.heap[0].Dist, true
}

// itemLess orders items by (Dist, ID) ascending — the selector's and
// Merge's shared total order.
func itemLess(a, b Item) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// Push offers a candidate. It returns true if the candidate was retained.
func (s *Selector) Push(id uint64, dist float32) bool {
	cand := Item{ID: id, Dist: dist}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, cand)
		s.siftUp(len(s.heap) - 1)
		return true
	}
	if !itemLess(cand, s.heap[0]) {
		return false
	}
	s.heap[0] = cand
	s.siftDown(0)
	return true
}

// Results returns the retained items sorted by ascending distance (ties
// broken by ascending ID for determinism). The selector is drained and may
// be reused afterwards.
func (s *Selector) Results() []Item {
	out := s.heap
	s.heap = make([]Item, 0, s.k)
	sortItems(out)
	return out
}

// Reset drops all retained items, keeping capacity.
func (s *Selector) Reset() { s.heap = s.heap[:0] }

// ResetK drops all retained items and reconfigures the selector to retain
// the k closest, reusing the existing backing array when it is large
// enough. It lets pooled selectors serve queries of varying k without
// reallocating. k must be positive.
func (s *Selector) ResetK(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	s.k = k
	if cap(s.heap) < k {
		s.heap = make([]Item, 0, k)
		return
	}
	s.heap = s.heap[:0]
}

// Sorted sorts the retained items in place by ascending distance (ties
// broken by ascending ID) and returns the selector's internal slice.
// Unlike Results it performs no allocation, which makes it the right
// drain for pooled per-query selectors. Sorting destroys the heap
// invariant: call Reset or ResetK before pushing again, and treat the
// returned slice as invalidated by any subsequent use of the selector.
func (s *Selector) Sorted() []Item {
	sortItems(s.heap)
	return s.heap
}

func (s *Selector) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(s.heap[parent], s.heap[i]) {
			return
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *Selector) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && itemLess(s.heap[largest], s.heap[l]) {
			largest = l
		}
		if r < n && itemLess(s.heap[largest], s.heap[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return itemLess(items[i], items[j]) })
}

// Merge combines several already-sorted partial top-k lists into a single
// sorted list of at most k items. Inputs must be sorted by ascending
// distance (as produced by Selector.Results); Merge does not verify this.
// Duplicate IDs are retained — deduplication is a ranking concern, not a
// selection concern.
func Merge(k int, lists ...[]Item) []Item {
	return MergeInto(nil, k, lists...)
}

// MergeInto is Merge appending into dst (sliced to zero length first), so
// per-query merge buffers can be pooled and reused without reallocating.
// dst must not overlap any of the input lists. It returns the extended
// slice.
func MergeInto(dst []Item, k int, lists ...[]Item) []Item {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return dst
	}
	// Small constant number of lists (scan workers per shard, searchers per
	// broker, brokers per blender): a repeated linear scan over list heads
	// beats heap overhead.
	var headsArr [16]int
	heads := headsArr[:]
	if len(lists) > len(headsArr) {
		heads = make([]int, len(lists))
	}
	out := dst
	if cap(out) < min(k, total) {
		out = make([]Item, 0, min(k, total))
	}
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			if itemLess(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
