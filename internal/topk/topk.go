// Package topk implements bounded top-k selection over (id, distance) pairs
// and k-way merging of partial result lists.
//
// Searchers use a Selector to keep the k nearest images while scanning
// inverted lists; brokers and blenders use Merge to combine partial top-k
// lists from downstream nodes into a global top-k.
package topk

import "sort"

// Item is a candidate search result: an opaque 64-bit identifier and its
// distance to the query. Lower distance is better.
type Item struct {
	ID   uint64
	Dist float32
}

// Selector keeps the k smallest-distance items seen so far using a bounded
// binary max-heap: the root is the current worst of the best k, so a new
// candidate either beats the root (replace + sift down) or is rejected in
// O(1). The zero Selector is not usable; call New.
type Selector struct {
	k    int
	heap []Item // max-heap on Dist
}

// New returns a Selector that retains the k closest items. k must be
// positive.
func New(k int) *Selector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Selector{k: k, heap: make([]Item, 0, k)}
}

// K returns the selector's capacity.
func (s *Selector) K() int { return s.k }

// Len returns the number of items currently held (≤ k).
func (s *Selector) Len() int { return len(s.heap) }

// Full reports whether the selector holds k items.
func (s *Selector) Full() bool { return len(s.heap) == s.k }

// WorstDist returns the largest distance among retained items, or +Inf-like
// sentinel behaviour: if the selector is not yet full it returns false in
// the second result, meaning every candidate should be pushed.
func (s *Selector) WorstDist() (float32, bool) {
	if len(s.heap) < s.k {
		return 0, false
	}
	return s.heap[0].Dist, true
}

// Push offers a candidate. It returns true if the candidate was retained.
func (s *Selector) Push(id uint64, dist float32) bool {
	if len(s.heap) < s.k {
		s.heap = append(s.heap, Item{ID: id, Dist: dist})
		s.siftUp(len(s.heap) - 1)
		return true
	}
	if dist >= s.heap[0].Dist {
		return false
	}
	s.heap[0] = Item{ID: id, Dist: dist}
	s.siftDown(0)
	return true
}

// Results returns the retained items sorted by ascending distance (ties
// broken by ascending ID for determinism). The selector is drained and may
// be reused afterwards.
func (s *Selector) Results() []Item {
	out := s.heap
	s.heap = make([]Item, 0, s.k)
	sortItems(out)
	return out
}

// Reset drops all retained items, keeping capacity.
func (s *Selector) Reset() { s.heap = s.heap[:0] }

func (s *Selector) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].Dist >= s.heap[i].Dist {
			return
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *Selector) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l].Dist > s.heap[largest].Dist {
			largest = l
		}
		if r < n && s.heap[r].Dist > s.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Dist != items[j].Dist {
			return items[i].Dist < items[j].Dist
		}
		return items[i].ID < items[j].ID
	})
}

// Merge combines several already-sorted partial top-k lists into a single
// sorted list of at most k items. Inputs must be sorted by ascending
// distance (as produced by Selector.Results); Merge does not verify this.
// Duplicate IDs are retained — deduplication is a ranking concern, not a
// selection concern.
func Merge(k int, lists ...[]Item) []Item {
	if k <= 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	// Small constant number of lists (searchers per broker, brokers per
	// blender): a repeated linear scan over list heads beats heap overhead.
	heads := make([]int, len(lists))
	out := make([]Item, 0, min(k, total))
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			a, b := l[heads[i]], lists[best][heads[best]]
			if a.Dist < b.Dist || (a.Dist == b.Dist && a.ID < b.ID) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
