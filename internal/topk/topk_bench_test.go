package topk

import (
	"math/rand"
	"testing"
)

// BenchmarkPush measures the scan-path hot loop: offering candidates to a
// full selector (most offers are rejected in O(1)).
func BenchmarkPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dists := make([]float32, 1<<16)
	for i := range dists {
		dists[i] = rng.Float32()
	}
	s := New(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(uint64(i), dists[i&(1<<16-1)])
	}
}

func BenchmarkResults(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(100)
		for j := 0; j < 1000; j++ {
			s.Push(uint64(j), rng.Float32())
		}
		if got := s.Results(); len(got) != 100 {
			b.Fatal("short results")
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	lists := make([][]Item, 8) // brokers merging 8 searchers
	for l := range lists {
		s := New(10)
		for j := 0; j < 200; j++ {
			s.Push(uint64(l*1000+j), rng.Float32())
		}
		lists[l] = s.Results()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Merge(10, lists...); len(got) != 10 {
			b.Fatal("short merge")
		}
	}
}
