package core

import "testing"

func TestNormalizeURL(t *testing.T) {
	tests := []struct {
		name, in, want string
	}{
		{"already canonical", "jfs://img.jd.local/p1/img2.jpg", "jfs://img.jd.local/p1/img2.jpg"},
		{"fragment stripped", "http://img.jd.local/a.jpg#share", "http://img.jd.local/a.jpg"},
		{"default http port", "http://img.jd.local:80/a.jpg", "http://img.jd.local/a.jpg"},
		{"default https port", "https://img.jd.local:443/a.jpg", "https://img.jd.local/a.jpg"},
		{"non-default port kept", "http://img.jd.local:8080/a.jpg", "http://img.jd.local:8080/a.jpg"},
		{"https keeps :80", "https://img.jd.local:80/a.jpg", "https://img.jd.local:80/a.jpg"},
		{"host lowercased", "http://IMG.JD.Local/a.jpg", "http://img.jd.local/a.jpg"},
		{"scheme lowercased", "HTTP://img.jd.local/a.jpg", "http://img.jd.local/a.jpg"},
		{"trailing slash stripped", "http://img.jd.local/dir/", "http://img.jd.local/dir"},
		{"root slash kept", "http://img.jd.local/", "http://img.jd.local/"},
		{"query preserved", "http://img.jd.local/a.jpg?w=200&h=200", "http://img.jd.local/a.jpg?w=200&h=200"},
		{"query plus fragment", "http://img.jd.local/a.jpg?w=200#x", "http://img.jd.local/a.jpg?w=200"},
		{"path case preserved", "http://img.jd.local/A.JPG", "http://img.jd.local/A.JPG"},
		{"all combined", "HTTP://IMG.JD.Local:80/p1/img.jpg/#frag", "http://img.jd.local/p1/img.jpg"},
		{"opaque key unchanged", "not a url at all", "not a url at all"},
		{"empty", "", ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := NormalizeURL(tc.in); got != tc.want {
				t.Errorf("NormalizeURL(%q) = %q; want %q", tc.in, got, tc.want)
			}
		})
	}
}

// TestNormalizeURLIdempotent checks that the canonical form is a fixed
// point — normalising twice must not drift, since both the indexing path
// and the query path normalise independently.
func TestNormalizeURLIdempotent(t *testing.T) {
	ins := []string{
		"HTTP://IMG.JD.Local:80/p1/img.jpg/#frag",
		"jfs://img.jd.local/p1/img2.jpg",
		"https://img.jd.local:443/dir/?q=1",
	}
	for _, in := range ins {
		once := NormalizeURL(in)
		if twice := NormalizeURL(once); twice != once {
			t.Errorf("not idempotent: %q → %q → %q", in, once, twice)
		}
	}
}
