package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImageRefPackUnpack(t *testing.T) {
	tests := []ImageRef{
		{0, 0},
		{1, 2},
		{65535, 4294967295},
		{7, 123456},
	}
	for _, r := range tests {
		if got := UnpackImageRef(r.Pack()); got != r {
			t.Errorf("roundtrip %+v -> %+v", r, got)
		}
	}
}

func TestImageRefPackProperty(t *testing.T) {
	f := func(p uint16, l uint32) bool {
		r := ImageRef{Partition: PartitionID(p), Local: l}
		return UnpackImageRef(r.Pack()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFeatureCodecRoundtrip(t *testing.T) {
	tests := [][]float32{
		nil,
		{},
		{1.5},
		{0, -1, 2.25, float32(math.Pi), -0.00001},
	}
	for _, f := range tests {
		enc := AppendFeature(nil, f)
		got, rest, err := DecodeFeature(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", f, err)
		}
		if len(rest) != 0 {
			t.Fatalf("leftover bytes: %d", len(rest))
		}
		if len(got) != len(f) {
			t.Fatalf("dim %d, want %d", len(got), len(f))
		}
		for i := range f {
			if got[i] != f[i] {
				t.Fatalf("component %d: %v != %v", i, got[i], f[i])
			}
		}
	}
}

func TestFeatureCodecCorruption(t *testing.T) {
	enc := AppendFeature(nil, []float32{1, 2, 3})
	for _, cut := range []int{0, 2, 5, len(enc) - 1} {
		if _, _, err := DecodeFeature(enc[:cut]); err == nil {
			t.Errorf("truncated feature (%d bytes) accepted", cut)
		}
	}
	// Oversized dim header.
	huge := AppendFeature(nil, nil)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeFeature(huge); err == nil {
		t.Error("absurd feature dim accepted")
	}
}

func sampleRequest() *SearchRequest {
	return &SearchRequest{
		Feature:  []float32{0.1, -0.5, 0.25, 1},
		TopK:     15,
		NProbe:   4,
		Category: -1,
	}
}

func TestSearchRequestRoundtrip(t *testing.T) {
	req := sampleRequest()
	got, err := DecodeSearchRequest(EncodeSearchRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.TopK != req.TopK || got.NProbe != req.NProbe || got.Category != req.Category {
		t.Fatalf("roundtrip: %+v vs %+v", got, req)
	}
	for i := range req.Feature {
		if got.Feature[i] != req.Feature[i] {
			t.Fatal("feature corrupted")
		}
	}
	// Negative category survives the uint32 transit.
	if got.Category != -1 {
		t.Fatalf("Category = %d, want -1", got.Category)
	}
}

func TestSearchRequestCorruption(t *testing.T) {
	enc := EncodeSearchRequest(sampleRequest())
	if _, err := DecodeSearchRequest(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := DecodeSearchRequest(enc[:len(enc)-3]); err == nil {
		t.Error("truncated request accepted")
	}
	bad := append([]byte{42}, enc[1:]...)
	if _, err := DecodeSearchRequest(bad); err == nil {
		t.Error("bad version accepted")
	}
}

func sampleResponse() *SearchResponse {
	return &SearchResponse{
		Scanned: 123,
		Probed:  8,
		Hits: []Hit{
			{
				Image:      ImageRef{3, 77},
				Dist:       0.25,
				ProductID:  999,
				Sales:      10,
				Praise:     95,
				PriceCents: 12999,
				Category:   4,
				URL:        "jfs://img/p999/0.jpg",
				Score:      0.87,
			},
			{Image: ImageRef{0, 1}, Dist: 1.5, ProductID: 5, URL: ""},
		},
	}
}

func TestSearchResponseRoundtrip(t *testing.T) {
	resp := sampleResponse()
	got, err := DecodeSearchResponse(EncodeSearchResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Scanned != resp.Scanned || got.Probed != resp.Probed || len(got.Hits) != len(resp.Hits) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range resp.Hits {
		if got.Hits[i] != resp.Hits[i] {
			t.Fatalf("hit %d: %+v vs %+v", i, got.Hits[i], resp.Hits[i])
		}
	}
}

func TestSearchResponseEmpty(t *testing.T) {
	got, err := DecodeSearchResponse(EncodeSearchResponse(&SearchResponse{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hits) != 0 {
		t.Fatalf("hits = %v", got.Hits)
	}
}

func TestSearchResponseCorruption(t *testing.T) {
	enc := EncodeSearchResponse(sampleResponse())
	for _, cut := range []int{0, 5, 13, 20, len(enc) - 1} {
		if _, err := DecodeSearchResponse(enc[:cut]); err == nil {
			t.Errorf("truncated response (%d bytes) accepted", cut)
		}
	}
}

// Property: response codec is identity for arbitrary hits.
func TestSearchResponseRoundtripProperty(t *testing.T) {
	f := func(part uint16, local uint32, dist float32, pid uint64, sales, praise, price uint32, cat uint16, url string, score float64) bool {
		if len(url) > 4096 {
			url = url[:4096]
		}
		if dist != dist || score != score { // skip NaN: != comparison below would fail spuriously
			return true
		}
		resp := &SearchResponse{Hits: []Hit{{
			Image: ImageRef{PartitionID(part), local}, Dist: dist, ProductID: pid,
			Sales: sales, Praise: praise, PriceCents: price, Category: cat, URL: url, Score: score,
		}}}
		got, err := DecodeSearchResponse(EncodeSearchResponse(resp))
		if err != nil || len(got.Hits) != 1 {
			return false
		}
		return got.Hits[0] == resp.Hits[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQueryRequestRoundtrip(t *testing.T) {
	q := &QueryRequest{
		ImageBlob:     []byte{1, 2, 3, 4, 5},
		TopK:          6,
		NProbe:        3,
		CategoryScope: AllCategories,
		AutoCategory:  true,
	}
	got, err := DecodeQueryRequest(EncodeQueryRequest(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.TopK != q.TopK || got.NProbe != q.NProbe ||
		got.CategoryScope != q.CategoryScope || got.AutoCategory != q.AutoCategory {
		t.Fatalf("roundtrip: %+v vs %+v", got, q)
	}
	if string(got.ImageBlob) != string(q.ImageBlob) {
		t.Fatal("blob corrupted")
	}
}

func TestQueryRequestCorruption(t *testing.T) {
	enc := EncodeQueryRequest(&QueryRequest{ImageBlob: []byte("img"), TopK: 1})
	if _, err := DecodeQueryRequest(enc[:10]); err == nil {
		t.Error("truncated query accepted")
	}
	if _, err := DecodeQueryRequest(append(enc, 0xff)); err == nil {
		t.Error("over-long query accepted")
	}
}

// Property: decoding arbitrary bytes never panics for any codec.
func TestDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = DecodeFeature(b)
		_, _ = DecodeSearchRequest(b)
		_, _ = DecodeSearchResponse(b)
		_, _ = DecodeQueryRequest(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
