package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImageRefPackUnpack(t *testing.T) {
	tests := []ImageRef{
		{0, 0},
		{1, 2},
		{65535, 4294967295},
		{7, 123456},
	}
	for _, r := range tests {
		if got := UnpackImageRef(r.Pack()); got != r {
			t.Errorf("roundtrip %+v -> %+v", r, got)
		}
	}
}

func TestImageRefPackProperty(t *testing.T) {
	f := func(p uint16, l uint32) bool {
		r := ImageRef{Partition: PartitionID(p), Local: l}
		return UnpackImageRef(r.Pack()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFeatureCodecRoundtrip(t *testing.T) {
	tests := [][]float32{
		nil,
		{},
		{1.5},
		{0, -1, 2.25, float32(math.Pi), -0.00001},
	}
	for _, f := range tests {
		enc := AppendFeature(nil, f)
		got, rest, err := DecodeFeature(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", f, err)
		}
		if len(rest) != 0 {
			t.Fatalf("leftover bytes: %d", len(rest))
		}
		if len(got) != len(f) {
			t.Fatalf("dim %d, want %d", len(got), len(f))
		}
		for i := range f {
			if got[i] != f[i] {
				t.Fatalf("component %d: %v != %v", i, got[i], f[i])
			}
		}
	}
}

func TestFeatureCodecCorruption(t *testing.T) {
	enc := AppendFeature(nil, []float32{1, 2, 3})
	for _, cut := range []int{0, 2, 5, len(enc) - 1} {
		if _, _, err := DecodeFeature(enc[:cut]); err == nil {
			t.Errorf("truncated feature (%d bytes) accepted", cut)
		}
	}
	// Oversized dim header.
	huge := AppendFeature(nil, nil)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeFeature(huge); err == nil {
		t.Error("absurd feature dim accepted")
	}
}

func sampleRequest() *SearchRequest {
	return &SearchRequest{
		Feature:       []float32{0.1, -0.5, 0.25, 1},
		TopK:          15,
		NProbe:        4,
		Category:      -1,
		MinPriceCents: 500,
		MaxPriceCents: 9900,
		MinSales:      3,
	}
}

// encodeSearchRequestLegacy emits the pre-predicate (PR ≤ 6) layout:
// identical version byte, 12-byte tail ending at Category.
func encodeSearchRequestLegacy(r *SearchRequest) []byte {
	dst := []byte{reqCodecVersion}
	dst = AppendFeature(dst, r.Feature)
	dst = appendU32(dst, uint32(r.TopK))
	dst = appendU32(dst, uint32(r.NProbe))
	return appendU32(dst, uint32(r.Category))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func TestSearchRequestRoundtrip(t *testing.T) {
	req := sampleRequest()
	got, err := DecodeSearchRequest(EncodeSearchRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.TopK != req.TopK || got.NProbe != req.NProbe || got.Category != req.Category {
		t.Fatalf("roundtrip: %+v vs %+v", got, req)
	}
	for i := range req.Feature {
		if got.Feature[i] != req.Feature[i] {
			t.Fatal("feature corrupted")
		}
	}
	// Negative category survives the uint32 transit.
	if got.Category != -1 {
		t.Fatalf("Category = %d, want -1", got.Category)
	}
	// Predicates survive the transit.
	if got.MinPriceCents != 500 || got.MaxPriceCents != 9900 || got.MinSales != 3 {
		t.Fatalf("predicates corrupted: %+v", got)
	}
}

// TestSearchRequestLegacyDecode: a request encoded by a pre-predicate
// binary must decode with unbounded predicates, and a predicate-bearing
// encoding truncated to the legacy tail (what an old decoder effectively
// reads) must still parse the base fields — the two directions of the
// version-1 tail-extension compatibility scheme.
func TestSearchRequestLegacyDecode(t *testing.T) {
	req := sampleRequest()
	got, err := DecodeSearchRequest(encodeSearchRequestLegacy(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.TopK != req.TopK || got.NProbe != req.NProbe || got.Category != req.Category {
		t.Fatalf("legacy decode mangled base fields: %+v", got)
	}
	if got.HasPredicates() {
		t.Fatalf("legacy request decoded with predicates: %+v", got)
	}
	// New encoding cut at the legacy tail boundary (12 bytes after the
	// feature) — the prefix an old reader consumes — still parses.
	enc := EncodeSearchRequest(req)
	got, err = DecodeSearchRequest(enc[:len(enc)-12])
	if err != nil {
		t.Fatal(err)
	}
	if got.TopK != req.TopK || got.Category != req.Category || got.HasPredicates() {
		t.Fatalf("legacy-prefix decode mangled fields: %+v", got)
	}
}

func TestSearchRequestCorruption(t *testing.T) {
	enc := EncodeSearchRequest(sampleRequest())
	if _, err := DecodeSearchRequest(nil); err == nil {
		t.Error("nil accepted")
	}
	// Cutting into the mandatory 12-byte base tail must fail (the 12-byte
	// predicate extension itself is optional, so cut past it too).
	if _, err := DecodeSearchRequest(enc[:len(enc)-15]); err == nil {
		t.Error("truncated request accepted")
	}
	bad := append([]byte{42}, enc[1:]...)
	if _, err := DecodeSearchRequest(bad); err == nil {
		t.Error("bad version accepted")
	}
}

func TestSearchRequestPredicateHelpers(t *testing.T) {
	r := &SearchRequest{Category: -1}
	if r.HasPredicates() {
		t.Fatal("zero request claims predicates")
	}
	if !r.MatchesAttrs(0, 0) || !r.AdmitsHit(&Hit{Category: 9}) {
		t.Fatal("unbounded request rejected an item")
	}
	r = &SearchRequest{Category: 2, MinPriceCents: 100, MaxPriceCents: 200, MinSales: 5}
	cases := []struct {
		sales, price uint32
		want         bool
	}{
		{5, 100, true},
		{5, 200, true},
		{4, 150, false}, // sales below minimum
		{9, 99, false},  // price below band
		{9, 201, false}, // price above band
	}
	for _, c := range cases {
		if got := r.MatchesAttrs(c.sales, c.price); got != c.want {
			t.Errorf("MatchesAttrs(%d, %d) = %v, want %v", c.sales, c.price, got, c.want)
		}
	}
	if r.AdmitsHit(&Hit{Category: 3, Sales: 9, PriceCents: 150}) {
		t.Error("AdmitsHit ignored the category scope")
	}
	if !r.AdmitsHit(&Hit{Category: 2, Sales: 9, PriceCents: 150}) {
		t.Error("AdmitsHit rejected a conforming hit")
	}
}

func sampleResponse() *SearchResponse {
	return &SearchResponse{
		Scanned: 123,
		Probed:  8,
		Hits: []Hit{
			{
				Image:      ImageRef{3, 77},
				Dist:       0.25,
				ProductID:  999,
				Sales:      10,
				Praise:     95,
				PriceCents: 12999,
				Category:   4,
				URL:        "jfs://img/p999/0.jpg",
				Score:      0.87,
			},
			{Image: ImageRef{0, 1}, Dist: 1.5, ProductID: 5, URL: ""},
		},
	}
}

func TestSearchResponseRoundtrip(t *testing.T) {
	resp := sampleResponse()
	got, err := DecodeSearchResponse(EncodeSearchResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Scanned != resp.Scanned || got.Probed != resp.Probed || len(got.Hits) != len(resp.Hits) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range resp.Hits {
		if got.Hits[i] != resp.Hits[i] {
			t.Fatalf("hit %d: %+v vs %+v", i, got.Hits[i], resp.Hits[i])
		}
	}
}

func TestSearchResponseEmpty(t *testing.T) {
	got, err := DecodeSearchResponse(EncodeSearchResponse(&SearchResponse{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hits) != 0 {
		t.Fatalf("hits = %v", got.Hits)
	}
}

func TestSearchResponseCorruption(t *testing.T) {
	enc := EncodeSearchResponse(sampleResponse())
	for _, cut := range []int{0, 5, 13, 20, len(enc) - 1} {
		if _, err := DecodeSearchResponse(enc[:cut]); err == nil {
			t.Errorf("truncated response (%d bytes) accepted", cut)
		}
	}
}

// Property: response codec is identity for arbitrary hits.
func TestSearchResponseRoundtripProperty(t *testing.T) {
	f := func(part uint16, local uint32, dist float32, pid uint64, sales, praise, price uint32, cat uint16, url string, score float64) bool {
		if len(url) > 4096 {
			url = url[:4096]
		}
		if dist != dist || score != score { // skip NaN: != comparison below would fail spuriously
			return true
		}
		resp := &SearchResponse{Hits: []Hit{{
			Image: ImageRef{PartitionID(part), local}, Dist: dist, ProductID: pid,
			Sales: sales, Praise: praise, PriceCents: price, Category: cat, URL: url, Score: score,
		}}}
		got, err := DecodeSearchResponse(EncodeSearchResponse(resp))
		if err != nil || len(got.Hits) != 1 {
			return false
		}
		return got.Hits[0] == resp.Hits[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQueryRequestRoundtrip(t *testing.T) {
	q := &QueryRequest{
		ImageBlob:     []byte{1, 2, 3, 4, 5},
		TopK:          6,
		NProbe:        3,
		CategoryScope: AllCategories,
		AutoCategory:  true,
	}
	got, err := DecodeQueryRequest(EncodeQueryRequest(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.TopK != q.TopK || got.NProbe != q.NProbe ||
		got.CategoryScope != q.CategoryScope || got.AutoCategory != q.AutoCategory {
		t.Fatalf("roundtrip: %+v vs %+v", got, q)
	}
	if string(got.ImageBlob) != string(q.ImageBlob) {
		t.Fatal("blob corrupted")
	}
}

// TestQueryRequestPredicatesRoundtrip: the v2 fields survive the codec.
func TestQueryRequestPredicatesRoundtrip(t *testing.T) {
	q := &QueryRequest{
		ImageBlob:     []byte("blob"),
		TopK:          4,
		CategoryScope: 7,
		MinPriceCents: 1000,
		MaxPriceCents: 5000,
		MinSales:      12,
	}
	got, err := DecodeQueryRequest(EncodeQueryRequest(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.MinPriceCents != 1000 || got.MaxPriceCents != 5000 || got.MinSales != 12 {
		t.Fatalf("predicates corrupted: %+v", got)
	}
	if got.CategoryScope != 7 || string(got.ImageBlob) != "blob" {
		t.Fatalf("base fields corrupted: %+v", got)
	}
}

// TestQueryRequestV1Decode: a legacy v1 query payload (hand-built to the
// old layout) still decodes, with unbounded predicates.
func TestQueryRequestV1Decode(t *testing.T) {
	blob := []byte{9, 8, 7}
	enc := []byte{queryCodecVersionV1, 1} // version, flags (AutoCategory)
	enc = appendU32(enc, 25)              // TopK
	enc = appendU32(enc, 6)               // NProbe
	scope := AllCategories
	enc = appendU32(enc, uint32(scope))
	enc = appendU32(enc, uint32(len(blob)))
	enc = append(enc, blob...)
	q, err := DecodeQueryRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if q.TopK != 25 || q.NProbe != 6 || q.CategoryScope != AllCategories || !q.AutoCategory {
		t.Fatalf("v1 decode mangled base fields: %+v", q)
	}
	if q.MinPriceCents != 0 || q.MaxPriceCents != 0 || q.MinSales != 0 {
		t.Fatalf("v1 decode invented predicates: %+v", q)
	}
	if string(q.ImageBlob) != string(blob) {
		t.Fatal("v1 blob corrupted")
	}
}

func TestQueryRequestCorruption(t *testing.T) {
	enc := EncodeQueryRequest(&QueryRequest{ImageBlob: []byte("img"), TopK: 1})
	if _, err := DecodeQueryRequest(enc[:10]); err == nil {
		t.Error("truncated query accepted")
	}
	if _, err := DecodeQueryRequest(append(enc, 0xff)); err == nil {
		t.Error("over-long query accepted")
	}
}

// Property: decoding arbitrary bytes never panics for any codec.
func TestDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = DecodeFeature(b)
		_, _ = DecodeSearchRequest(b)
		_, _ = DecodeSearchResponse(b)
		_, _ = DecodeQueryRequest(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
