package core

import (
	"net/url"
	"strings"
)

// NormalizeURL canonicalises an image URL so that equivalent re-shared
// spellings of the same resource key identically everywhere a URL is used
// as an identity: partition routing, the forward index's URL side-buffer,
// the feature DB, the image store, and the feature cache. Without this,
// "http://host/a.jpg#frag" and "http://HOST:80/a.jpg" index as distinct
// images and pay two CNN passes.
//
// The transform is deliberately conservative — only equivalences guaranteed
// by RFC 3986 semantics:
//
//   - scheme and host are lowercased
//   - the fragment is stripped (never sent to the server)
//   - an explicit default port is dropped (:80 for http, :443 for https)
//   - a single trailing slash on a non-root path is stripped
//
// Query strings are preserved verbatim: on image CDNs they select variants
// (resize, crop) and are part of the content identity. Input that does not
// parse as a URL is returned unchanged — opaque store keys stay usable.
func NormalizeURL(raw string) string {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" {
		return raw
	}
	u.Scheme = strings.ToLower(u.Scheme)
	u.Fragment = ""
	u.RawFragment = ""
	if host := u.Host; host != "" {
		host = strings.ToLower(host)
		switch {
		case u.Scheme == "http" && strings.HasSuffix(host, ":80"):
			host = strings.TrimSuffix(host, ":80")
		case u.Scheme == "https" && strings.HasSuffix(host, ":443"):
			host = strings.TrimSuffix(host, ":443")
		}
		u.Host = host
	}
	if p := u.Path; len(p) > 1 && strings.HasSuffix(p, "/") {
		u.Path = strings.TrimSuffix(p, "/")
		u.RawPath = strings.TrimSuffix(u.RawPath, "/")
	}
	return u.String()
}
