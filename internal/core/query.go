package core

import (
	"encoding/binary"
	"fmt"
)

// AllCategories is the CategoryScope value meaning "search every
// category". Category IDs start at 0, so the zero value of CategoryScope
// scopes to category 0 — always set CategoryScope explicitly (helpers in
// the public facade default it to AllCategories).
const AllCategories int32 = -1

// QueryRequest is the user-facing query carried from the front end to a
// blender: the raw query image plus retrieval parameters. The blender —
// not the client — extracts features ("when a blender receives an image
// query request, it extracts the features", §2.4).
type QueryRequest struct {
	// ImageBlob is the encoded query image.
	ImageBlob []byte
	// TopK is the number of final results wanted (default 10).
	TopK int
	// NProbe overrides the per-searcher probe width (0 = searcher default).
	NProbe int
	// CategoryScope restricts the search to the detected/declared category
	// when >= 0; pass -1 to search everything. When AutoCategory is set the
	// blender overrides this with its classifier's prediction.
	CategoryScope int32
	// AutoCategory asks the blender to detect the item and identify its
	// category (§2.4), then scope the search to it.
	AutoCategory bool
}

const queryCodecVersion = 1

// maxQueryBlob bounds the decoded query image as a corruption guard.
const maxQueryBlob = 32 << 20

// EncodeQueryRequest serialises a QueryRequest.
func EncodeQueryRequest(q *QueryRequest) []byte {
	dst := make([]byte, 0, 18+len(q.ImageBlob))
	dst = append(dst, queryCodecVersion)
	var flags byte
	if q.AutoCategory {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.TopK))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.NProbe))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.CategoryScope))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.ImageBlob)))
	dst = append(dst, q.ImageBlob...)
	return dst
}

// DecodeQueryRequest deserialises a QueryRequest.
func DecodeQueryRequest(b []byte) (*QueryRequest, error) {
	if len(b) < 18 || b[0] != queryCodecVersion {
		return nil, fmt.Errorf("%w: bad query header", ErrCodec)
	}
	q := &QueryRequest{
		AutoCategory:  b[1]&1 != 0,
		TopK:          int(binary.LittleEndian.Uint32(b[2:6])),
		NProbe:        int(binary.LittleEndian.Uint32(b[6:10])),
		CategoryScope: int32(binary.LittleEndian.Uint32(b[10:14])),
	}
	n := int(binary.LittleEndian.Uint32(b[14:18]))
	if n > maxQueryBlob {
		return nil, fmt.Errorf("%w: query blob %d bytes", ErrCodec, n)
	}
	if len(b[18:]) != n {
		return nil, fmt.Errorf("%w: query blob length mismatch", ErrCodec)
	}
	q.ImageBlob = make([]byte, n)
	copy(q.ImageBlob, b[18:])
	return q, nil
}
