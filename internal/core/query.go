package core

import (
	"encoding/binary"
	"fmt"
)

// AllCategories is the CategoryScope value meaning "search every
// category". Category IDs start at 0, so the zero value of CategoryScope
// scopes to category 0 — always set CategoryScope explicitly (helpers in
// the public facade default it to AllCategories).
const AllCategories int32 = -1

// QueryRequest is the user-facing query carried from the front end to a
// blender: the raw query image plus retrieval parameters. The blender —
// not the client — extracts features ("when a blender receives an image
// query request, it extracts the features", §2.4).
type QueryRequest struct {
	// ImageBlob is the encoded query image.
	ImageBlob []byte
	// TopK is the number of final results wanted (default 10).
	TopK int
	// NProbe overrides the per-searcher probe width (0 = searcher default).
	NProbe int
	// CategoryScope restricts the search to the detected/declared category
	// when >= 0; pass -1 to search everything. When AutoCategory is set the
	// blender overrides this with its classifier's prediction.
	CategoryScope int32
	// AutoCategory asks the blender to detect the item and identify its
	// category (§2.4), then scope the search to it.
	AutoCategory bool
	// MinPriceCents / MaxPriceCents bound result prices, inclusive; 0
	// means unbounded on that side. MinSales is the minimum sales count.
	// Carried into the fanned-out SearchRequest and pushed down into the
	// shard scans ("find similar but cheaper", in-stock-only).
	MinPriceCents uint32
	MaxPriceCents uint32
	MinSales      uint32
}

// Query codec versions: v1 has no predicate fields (the blob length
// follows CategoryScope directly); v2 inserts the three predicate words
// before the blob length. Unlike the search-request codec, the query
// decode requires an exact blob length, so the extension needs a version
// bump — both layouts are accepted on decode.
const (
	queryCodecVersionV1 = 1
	queryCodecVersion   = 2
)

// maxQueryBlob bounds the decoded query image as a corruption guard.
const maxQueryBlob = 32 << 20

// EncodeQueryRequest serialises a QueryRequest (v2 layout).
func EncodeQueryRequest(q *QueryRequest) []byte {
	dst := make([]byte, 0, 30+len(q.ImageBlob))
	dst = append(dst, queryCodecVersion)
	var flags byte
	if q.AutoCategory {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.TopK))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.NProbe))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.CategoryScope))
	dst = binary.LittleEndian.AppendUint32(dst, q.MinPriceCents)
	dst = binary.LittleEndian.AppendUint32(dst, q.MaxPriceCents)
	dst = binary.LittleEndian.AppendUint32(dst, q.MinSales)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.ImageBlob)))
	dst = append(dst, q.ImageBlob...)
	return dst
}

// DecodeQueryRequest deserialises a QueryRequest. Both the current (v2,
// predicate-bearing) and the legacy v1 layout are accepted; v1 queries
// decode with unbounded predicates.
func DecodeQueryRequest(b []byte) (*QueryRequest, error) {
	if len(b) < 18 || (b[0] != queryCodecVersion && b[0] != queryCodecVersionV1) {
		return nil, fmt.Errorf("%w: bad query header", ErrCodec)
	}
	q := &QueryRequest{
		AutoCategory:  b[1]&1 != 0,
		TopK:          int(binary.LittleEndian.Uint32(b[2:6])),
		NProbe:        int(binary.LittleEndian.Uint32(b[6:10])),
		CategoryScope: int32(binary.LittleEndian.Uint32(b[10:14])),
	}
	rest := b[14:]
	if b[0] == queryCodecVersion {
		if len(b) < 30 {
			return nil, fmt.Errorf("%w: short query header", ErrCodec)
		}
		q.MinPriceCents = binary.LittleEndian.Uint32(b[14:18])
		q.MaxPriceCents = binary.LittleEndian.Uint32(b[18:22])
		q.MinSales = binary.LittleEndian.Uint32(b[22:26])
		rest = b[26:]
	}
	n := int(binary.LittleEndian.Uint32(rest[0:4]))
	if n > maxQueryBlob {
		return nil, fmt.Errorf("%w: query blob %d bytes", ErrCodec, n)
	}
	if len(rest[4:]) != n {
		return nil, fmt.Errorf("%w: query blob length mismatch", ErrCodec)
	}
	q.ImageBlob = make([]byte, n)
	copy(q.ImageBlob, rest[4:])
	return q, nil
}
