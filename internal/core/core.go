// Package core defines the stable types shared across the indexing and
// search tiers: image references, product attributes, search requests and
// results, and their compact binary codecs used on the wire and in the
// feature database.
//
// Keeping these in one leaf package lets every tier (forward index,
// searcher, broker, blender, feature DB) agree on representation without
// import cycles.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// PartitionID identifies one index partition. The entire image index is
// "divided into multiple partitions by hashing the image's URL" (§2.4); a
// partition is owned by a single searcher node.
type PartitionID uint16

// ImageID is the sequential number of an image within one partition's
// forward index.
type ImageID = uint32

// ImageRef globally identifies an image: which partition it lives in and
// its sequential ID there.
type ImageRef struct {
	Partition PartitionID
	Local     ImageID
}

// Pack encodes the reference into one uint64 for use as a top-k item ID.
func (r ImageRef) Pack() uint64 {
	return uint64(r.Partition)<<32 | uint64(r.Local)
}

// UnpackImageRef reverses ImageRef.Pack.
func UnpackImageRef(v uint64) ImageRef {
	return ImageRef{Partition: PartitionID(v >> 32), Local: uint32(v)}
}

// Attrs is the set of product attributes carried by each image record: the
// numeric fields the paper stores in fixed-length forward index slots
// (product ID, sales, praise, price, category) plus the variable-length
// image URL kept in the side buffer.
type Attrs struct {
	ProductID  uint64
	Sales      uint32
	Praise     uint32
	PriceCents uint32
	Category   uint16
	URL        string
}

// Hit is one search result: an image reference, its feature-space distance
// to the query, the owning product's attributes, and the final blended
// ranking score assigned by the blender.
type Hit struct {
	Image      ImageRef
	Dist       float32
	ProductID  uint64
	Sales      uint32
	Praise     uint32
	PriceCents uint32
	Category   uint16
	URL        string
	Score      float64
}

// SearchRequest is the query fanned out from blender to brokers to
// searchers: the query image's extracted feature vector plus retrieval
// parameters.
type SearchRequest struct {
	// Feature is the query feature vector.
	Feature []float32
	// TopK is the number of nearest images each searcher returns.
	TopK int
	// NProbe is the number of inverted lists to probe per searcher.
	NProbe int
	// Category restricts results to one product category when >= 0.
	Category int32
	// MinPriceCents / MaxPriceCents bound the hit's price, inclusive; 0
	// means unbounded on that side. MinSales is the minimum sales count a
	// hit must carry. Searchers push these predicates down into the shard
	// scan (bitmap admission) rather than post-filtering the top-k, so
	// selective filters still return a full result page.
	MinPriceCents uint32
	MaxPriceCents uint32
	MinSales      uint32
}

// HasPredicates reports whether any attribute predicate (price band,
// minimum sales) is set. The category scope is not counted here: shards
// maintain per-category bitmaps and handle it separately from the
// forward-materialised predicate bitmaps.
func (r *SearchRequest) HasPredicates() bool {
	return r.MinPriceCents > 0 || r.MaxPriceCents > 0 || r.MinSales > 0
}

// MatchesAttrs reports whether an image with the given sales and price
// passes the request's attribute predicates — the single definition shared
// by the shard scan's bitmap build / tail fallback and the blender's
// post-merge re-check.
func (r *SearchRequest) MatchesAttrs(sales, price uint32) bool {
	if sales < r.MinSales {
		return false
	}
	if price < r.MinPriceCents {
		return false
	}
	if r.MaxPriceCents > 0 && price > r.MaxPriceCents {
		return false
	}
	return true
}

// AdmitsHit reports whether a hit passes both the category scope and the
// attribute predicates, as carried in the hit's own attribute copy.
func (r *SearchRequest) AdmitsHit(h *Hit) bool {
	if r.Category >= 0 && int32(h.Category) != r.Category {
		return false
	}
	return r.MatchesAttrs(h.Sales, h.PriceCents)
}

// SearchResponse carries a partial (searcher/broker) or final (blender)
// result set plus scan diagnostics.
type SearchResponse struct {
	Hits []Hit
	// Scanned is the number of candidate images whose distances were
	// computed; Probed is the number of inverted lists visited.
	Scanned int
	Probed  int
}

const (
	reqCodecVersion  = 1
	respCodecVersion = 1
	// MaxFeatureDim bounds decoded feature vectors as a corruption guard.
	MaxFeatureDim = 1 << 14
	// MaxHits bounds decoded hit lists as a corruption guard.
	MaxHits = 1 << 20
)

var (
	// ErrCodec is wrapped by all decoding errors in this package.
	ErrCodec = errors.New("core: codec error")
)

// AppendFeature appends the binary encoding of a feature vector to dst.
func AppendFeature(dst []byte, f []float32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f)))
	for _, v := range f {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// DecodeFeature decodes a feature vector from b, returning the vector and
// the remaining bytes.
func DecodeFeature(b []byte) ([]float32, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: short feature header", ErrCodec)
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n > MaxFeatureDim {
		return nil, nil, fmt.Errorf("%w: feature dim %d too large", ErrCodec, n)
	}
	b = b[4:]
	if len(b) < 4*n {
		return nil, nil, fmt.Errorf("%w: short feature body", ErrCodec)
	}
	f := make([]float32, n)
	for i := range f {
		f[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return f, b[4*n:], nil
}

// EncodeSearchRequest serialises a SearchRequest. The predicate fields
// ride as a 12-byte tail extension under the same version byte: decoders
// up to PR 6 read only the first 12 tail bytes and ignore the rest, so a
// predicate-bearing request still parses on an older searcher (which
// simply does not filter — the blender's post-merge re-check covers it),
// and an older request decodes here with zeroed (unbounded) predicates.
func EncodeSearchRequest(r *SearchRequest) []byte {
	dst := make([]byte, 0, 29+4*len(r.Feature))
	dst = append(dst, reqCodecVersion)
	dst = AppendFeature(dst, r.Feature)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.TopK))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.NProbe))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Category))
	dst = binary.LittleEndian.AppendUint32(dst, r.MinPriceCents)
	dst = binary.LittleEndian.AppendUint32(dst, r.MaxPriceCents)
	dst = binary.LittleEndian.AppendUint32(dst, r.MinSales)
	return dst
}

// DecodeSearchRequest deserialises a SearchRequest; a legacy 12-byte tail
// (no predicate extension) decodes with unbounded predicates.
func DecodeSearchRequest(b []byte) (*SearchRequest, error) {
	if len(b) < 1 || b[0] != reqCodecVersion {
		return nil, fmt.Errorf("%w: bad request version", ErrCodec)
	}
	f, rest, err := DecodeFeature(b[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) < 12 {
		return nil, fmt.Errorf("%w: short request tail", ErrCodec)
	}
	r := &SearchRequest{
		Feature:  f,
		TopK:     int(binary.LittleEndian.Uint32(rest[0:4])),
		NProbe:   int(binary.LittleEndian.Uint32(rest[4:8])),
		Category: int32(binary.LittleEndian.Uint32(rest[8:12])),
	}
	if len(rest) >= 24 {
		r.MinPriceCents = binary.LittleEndian.Uint32(rest[12:16])
		r.MaxPriceCents = binary.LittleEndian.Uint32(rest[16:20])
		r.MinSales = binary.LittleEndian.Uint32(rest[20:24])
	}
	return r, nil
}

// EncodeSearchResponse serialises a SearchResponse.
func EncodeSearchResponse(r *SearchResponse) []byte {
	size := 13
	for i := range r.Hits {
		size += 44 + len(r.Hits[i].URL)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, respCodecVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Scanned))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Probed))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Hits)))
	for i := range r.Hits {
		h := &r.Hits[i]
		dst = binary.LittleEndian.AppendUint64(dst, h.Image.Pack())
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(h.Dist))
		dst = binary.LittleEndian.AppendUint64(dst, h.ProductID)
		dst = binary.LittleEndian.AppendUint32(dst, h.Sales)
		dst = binary.LittleEndian.AppendUint32(dst, h.Praise)
		dst = binary.LittleEndian.AppendUint32(dst, h.PriceCents)
		dst = binary.LittleEndian.AppendUint16(dst, h.Category)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(h.Score))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(h.URL)))
		dst = append(dst, h.URL...)
	}
	return dst
}

// DecodeSearchResponse deserialises a SearchResponse.
func DecodeSearchResponse(b []byte) (*SearchResponse, error) {
	if len(b) < 13 || b[0] != respCodecVersion {
		return nil, fmt.Errorf("%w: bad response header", ErrCodec)
	}
	resp := &SearchResponse{
		Scanned: int(binary.LittleEndian.Uint32(b[1:5])),
		Probed:  int(binary.LittleEndian.Uint32(b[5:9])),
	}
	n := int(binary.LittleEndian.Uint32(b[9:13]))
	if n > MaxHits {
		return nil, fmt.Errorf("%w: hit count %d too large", ErrCodec, n)
	}
	b = b[13:]
	resp.Hits = make([]Hit, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 44 {
			return nil, fmt.Errorf("%w: short hit", ErrCodec)
		}
		var h Hit
		h.Image = UnpackImageRef(binary.LittleEndian.Uint64(b[0:8]))
		h.Dist = math.Float32frombits(binary.LittleEndian.Uint32(b[8:12]))
		h.ProductID = binary.LittleEndian.Uint64(b[12:20])
		h.Sales = binary.LittleEndian.Uint32(b[20:24])
		h.Praise = binary.LittleEndian.Uint32(b[24:28])
		h.PriceCents = binary.LittleEndian.Uint32(b[28:32])
		h.Category = binary.LittleEndian.Uint16(b[32:34])
		h.Score = math.Float64frombits(binary.LittleEndian.Uint64(b[34:42]))
		urlLen := int(binary.LittleEndian.Uint16(b[42:44]))
		b = b[44:]
		if len(b) < urlLen {
			return nil, fmt.Errorf("%w: short hit url", ErrCodec)
		}
		h.URL = string(b[:urlLen])
		b = b[urlLen:]
		resp.Hits = append(resp.Hits, h)
	}
	return resp, nil
}
