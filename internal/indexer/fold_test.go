package indexer

import (
	"fmt"
	"math/rand"
	"testing"

	"jdvs/internal/index"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
)

// TestFullBuildMatchesRealtimeState is the consistency contract between
// the two indexing paths (§2.2 vs §2.3): for any event sequence, the index
// built by replaying the log (full indexing) must agree with the index
// produced by applying the same events one by one (real-time indexing) on
// validity, attributes and membership.
func TestFullBuildMatchesRealtimeState(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			t.Parallel()
			runFoldTrial(t, int64(trial))
		})
	}
}

func runFoldTrial(t *testing.T, seed int64) {
	const partitions = 2
	f := newFixture(t, 25, partitions)
	rng := rand.New(rand.NewSource(seed*101 + 13))

	// Live shards: one per partition, fed event by event as the real-time
	// path would.
	liveShards := make([]*index.Shard, partitions)
	{
		// Shared codebook for determinism.
		ref := newShard(t, f)
		for p := range liveShards {
			s, err := index.New(index.Config{Dim: testDim, NLists: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetCodebook(ref.Codebook()); err != nil {
				t.Fatal(err)
			}
			liveShards[p] = s
		}
	}

	// Random event stream over the catalog.
	var seq uint64
	emit := func(u *msg.ProductUpdate) {
		seq++
		u.Seq = seq
		if _, err := RouteUpdate(f.queue, u); err != nil {
			t.Fatal(err)
		}
		// Apply per-image to the owning live shard, as searchers would.
		for _, url := range u.ImageURLs {
			per := *u
			per.ImageURLs = []string{url}
			p := int(mq.PartitionFor(url, partitions))
			if _, _, err := Apply(liveShards[p], f.res, &per); err != nil {
				t.Fatalf("live apply: %v", err)
			}
		}
	}

	listed := make(map[int]bool)
	for i := range f.cat.Products {
		emit(f.addEvent(&f.cat.Products[i], 0))
		listed[i] = true
	}
	for op := 0; op < 300; op++ {
		i := rng.Intn(len(f.cat.Products))
		p := &f.cat.Products[i]
		switch rng.Intn(3) {
		case 0: // toggle listing
			u := f.addEvent(p, 0)
			if listed[i] {
				u.Type = msg.TypeRemoveProduct
			}
			listed[i] = !listed[i]
			emit(u)
		case 1: // attr update
			u := f.addEvent(p, 0)
			u.Type = msg.TypeUpdateAttrs
			u.Sales = uint32(rng.Intn(100000))
			u.Praise = uint32(rng.Intn(101))
			u.PriceCents = uint32(rng.Intn(100000))
			emit(u)
		default: // re-add (possibly already listed)
			u := f.addEvent(p, 0)
			u.Sales = uint32(rng.Intn(100000))
			emit(u)
			listed[i] = true
		}
	}

	// Full build over the identical log.
	fi, err := NewFull(FullConfig{
		Partitions: partitions,
		Shard:      index.Config{Dim: testDim, NLists: 8},
		Seed:       1,
	}, f.res)
	if err != nil {
		t.Fatal(err)
	}
	builtShards, _, err := fi.Build(f.queue)
	if err != nil {
		t.Fatalf("full build: %v", err)
	}

	// Compare per image URL: validity in the full index == validity in the
	// live index; attributes match wherever both sides hold the image.
	for i := range f.cat.Products {
		p := &f.cat.Products[i]
		for _, url := range p.ImageURLs {
			part := int(mq.PartitionFor(url, partitions))
			live := liveShards[part]
			built := builtShards[part]

			liveValid := false
			if ids := live.ProductImages(p.ID); len(ids) > 0 {
				for _, id := range ids {
					if a, ok := live.Attrs(id); ok && a.URL == url {
						liveValid = live.Valid(id)
						// Attribute agreement when the full index holds it.
						if built.HasURL(url) {
							bids := built.ProductImages(p.ID)
							for _, bid := range bids {
								if ba, ok := built.Attrs(bid); ok && ba.URL == url {
									if ba != a {
										t.Fatalf("url %s: built attrs %+v != live %+v", url, ba, a)
									}
								}
							}
						}
					}
				}
			}
			builtHas := built.HasURL(url)
			// Full indexing only materialises currently-valid images; the
			// live path keeps invalid records around (bitmap off).
			if liveValid != builtHas {
				t.Fatalf("url %s: live valid=%v, full index has=%v (listed=%v)",
					url, liveValid, builtHas, listed[i])
			}
		}
	}
}
