// Package indexer implements the indexing sub-system of Figs. 2–4: the
// feature-resolution protocol shared by both indexing paths, the event
// routing that expands product updates into per-image messages placed by
// hash(URL), and the periodic full indexing that rebuilds every partition
// from the day's message log.
package indexer

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"jdvs/internal/cache"
	"jdvs/internal/cnn"
	"jdvs/internal/core"
	"jdvs/internal/featuredb"
	"jdvs/internal/imagestore"
	"jdvs/internal/index"
	"jdvs/internal/kmeans"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
	"jdvs/internal/pq"
)

// Resolver implements check-before-extract (Fig. 2): "the feature
// extraction process first checks if the image's features have been
// extracted through a distributed key-value store. If it is a new image,
// the features are extracted and stored in the feature database."
type Resolver struct {
	DB        *featuredb.DB
	Images    *imagestore.Store
	Extractor *cnn.Extractor
	// Features, when non-nil, is a content-hash-keyed feature cache layered
	// in front of the extractor: the feature DB dedups by URL, this dedups
	// by image bytes, so the same photo re-shared under a different URL
	// still skips the CNN pass.
	Features *cache.Cache[[]float32]
}

// Resolve returns the feature entry for url, extracting and caching it on
// first sight. reused reports whether extraction was avoided. The URL is
// normalised first so equivalent re-shared spellings share one entry.
func (r *Resolver) Resolve(url string, attrs core.Attrs) (entry *featuredb.Entry, reused bool, err error) {
	url = core.NormalizeURL(url)
	if attrs.URL != "" {
		attrs.URL = core.NormalizeURL(attrs.URL)
	}
	return r.DB.GetOrCompute(url, attrs, func() ([]float32, error) {
		blob, err := r.Images.Get(url)
		if err != nil {
			return nil, err
		}
		var key string
		if r.Features != nil {
			sum := sha256.Sum256(blob)
			key = string(sum[:])
			if f, ok := r.Features.Get(key); ok {
				return f, nil
			}
		}
		f, err := r.Extractor.ExtractBytes(blob)
		if err != nil {
			return nil, err
		}
		if r.Features != nil {
			r.Features.Put(key, f, int64(4*len(f)))
		}
		return f, nil
	})
}

// UpdatesTopic is the canonical topic name carrying product update events.
const UpdatesTopic = "product-updates"

// RouteUpdate expands one product-level update into per-image messages and
// produces each onto the partition selected by hashing its image URL — the
// same placement rule the index uses (§2.4), so every event lands on the
// searcher that owns the image. URLs are normalised here, at the mouth of
// the pipeline, so every downstream identity — partition hash, forward
// index, feature DB — sees one canonical spelling per image. It returns
// the number of per-image messages produced.
func RouteUpdate(q *mq.Queue, u *msg.ProductUpdate) (int, error) {
	if len(u.ImageURLs) == 0 {
		return 0, errors.New("indexer: update carries no image URLs")
	}
	n := 0
	for _, url := range u.ImageURLs {
		url = core.NormalizeURL(url)
		per := *u
		per.ImageURLs = []string{url}
		if _, _, err := q.ProduceKeyed(UpdatesTopic, url, per.Encode()); err != nil {
			return n, fmt.Errorf("indexer: route %s: %w", url, err)
		}
		n++
	}
	return n, nil
}

// Apply applies one decoded per-image update event to a shard, resolving
// features through the resolver exactly per Fig. 6's decision tree. It
// returns the kind of operation performed ("addition", "deletion",
// "update") and whether stored features/records were reused.
func Apply(s *index.Shard, r *Resolver, u *msg.ProductUpdate) (kind string, reused bool, err error) {
	switch u.Type {
	case msg.TypeAddProduct:
		if len(u.ImageURLs) != 1 {
			return "", false, fmt.Errorf("indexer: addition carries %d urls, want 1", len(u.ImageURLs))
		}
		url := u.ImageURLs[0]
		attrs := core.Attrs{
			ProductID:  u.ProductID,
			Sales:      u.Sales,
			Praise:     u.Praise,
			PriceCents: u.PriceCents,
			Category:   u.Category,
			URL:        url,
		}
		// Fresh listings and re-listings both resolve through the feature
		// DB (check-before-extract, Fig. 2). For a re-listed URL this is a
		// cache hit — extraction is still avoided, which is the reuse §2.3
		// promises ("we simply update its validity in the bitmap and reuse
		// its images' features") — but the resolved vector must reach the
		// shard: Insert compares it against the stored row and re-indexes
		// the image at its new location when the feature DB entry changed
		// since the URL was last indexed. The old fast path passed nil
		// here, which kept the §2.3 bitmap flip but meant a changed vector
		// never took effect until the next full rebuild.
		entry, hadFeatures, err := r.Resolve(url, attrs)
		if err != nil {
			return "", false, fmt.Errorf("indexer: resolve %s: %w", url, err)
		}
		_, _, err = s.Insert(attrs, entry.Feature)
		return "addition", hadFeatures, err

	case msg.TypeRemoveProduct:
		if len(u.ImageURLs) != 1 {
			return "", false, fmt.Errorf("indexer: deletion carries %d urls, want 1", len(u.ImageURLs))
		}
		_, err := s.RemoveImageURL(u.ImageURLs[0])
		if err != nil && errors.Is(err, index.ErrUnknownProduct) {
			// Deleting an image this shard never indexed: tolerated (the
			// product may have been listed before the index epoch).
			return "deletion", false, nil
		}
		return "deletion", false, err

	case msg.TypeUpdateAttrs:
		if len(u.ImageURLs) != 1 {
			return "", false, fmt.Errorf("indexer: attr update carries %d urls, want 1", len(u.ImageURLs))
		}
		err := s.UpdateAttrsURL(u.ImageURLs[0], u.Sales, u.Praise, u.PriceCents, u.Category)
		if err != nil && errors.Is(err, index.ErrUnknownProduct) {
			return "update", false, nil
		}
		return "update", false, err

	default:
		return "", false, fmt.Errorf("indexer: unknown event type %d", u.Type)
	}
}

// FullConfig parameterises a full indexing run.
type FullConfig struct {
	// Partitions is the number of index partitions to build. Required.
	Partitions int
	// Shard configures each partition's index. Required fields per
	// index.Config.
	Shard index.Config
	// TrainSample caps how many image features train the codebook
	// (default 10,000).
	TrainSample int
	// Seed drives k-means.
	Seed int64
}

// FullIndexer is the periodic full indexing of §2.2: it replays the day's
// message log in order, reconstructs final product state, resolves features
// (reusing previously extracted ones), trains the codebook, and builds
// fresh per-partition shards containing only the currently valid images.
type FullIndexer struct {
	cfg FullConfig
	res *Resolver
}

// NewFull returns a full indexer.
func NewFull(cfg FullConfig, res *Resolver) (*FullIndexer, error) {
	if cfg.Partitions <= 0 {
		return nil, errors.New("indexer: Partitions must be positive")
	}
	if cfg.TrainSample <= 0 {
		cfg.TrainSample = 10_000
	}
	if err := checkShardConfig(cfg.Shard); err != nil {
		return nil, err
	}
	// Resolve a derived PQ width here: Build decides whether to train a
	// quantizer from this field before any shard's own config validation
	// runs.
	if cfg.Shard.PQSubvectors < 0 {
		cfg.Shard.PQSubvectors = pq.DefaultSubvectors(cfg.Shard.Dim)
	}
	return &FullIndexer{cfg: cfg, res: res}, nil
}

func checkShardConfig(c index.Config) error {
	if c.Dim <= 0 || c.NLists <= 0 {
		return errors.New("indexer: shard config needs Dim and NLists")
	}
	return nil
}

// imageState is the replayed final state of one image URL.
type imageState struct {
	attrs core.Attrs
	valid bool
	seq   uint64
}

// Build replays every partition of the updates topic from offset 0 and
// returns freshly built shards (index p serves partition p) plus the
// codebook they share. Each shard records the queue offset its build
// covered (Shard.CoveredOffset), so distributing its snapshot tells the
// receiving searcher how far its real-time consumer may skip. When the
// shard config enables PQSubvectors, one product quantizer is trained on
// the same sample as the IVF codebook and installed on every shard, so
// ADC codes agree across replicas.
func (fi *FullIndexer) Build(q *mq.Queue) ([]*index.Shard, *kmeans.Codebook, error) {
	states, covered, err := fi.replay(q)
	if err != nil {
		return nil, nil, err
	}

	// Resolve features for valid images (check-before-extract: almost all
	// of these hit the feature DB because the real-time path already
	// extracted them).
	type resolved struct {
		attrs   core.Attrs
		feature []float32
	}
	perPartition := make([][]resolved, fi.cfg.Partitions)
	train := make([]float32, 0, fi.cfg.TrainSample*fi.cfg.Shard.Dim)
	trained := 0
	// Iterate the replayed states in sorted URL order: map order would make
	// image ID assignment and the training sample differ run to run, and a
	// full build must be a pure function of the log — two builds of the
	// same log serve byte-identical results (replica equality, experiment
	// result audits).
	urls := make([]string, 0, len(states))
	for url, st := range states {
		if st.valid {
			urls = append(urls, url)
		}
	}
	sort.Strings(urls)
	for _, url := range urls {
		st := states[url]
		entry, _, err := fi.res.Resolve(url, st.attrs)
		if err != nil {
			return nil, nil, fmt.Errorf("indexer: full build resolve %s: %w", url, err)
		}
		p := int(mq.PartitionFor(url, fi.cfg.Partitions))
		perPartition[p] = append(perPartition[p], resolved{attrs: st.attrs, feature: entry.Feature})
		if trained < fi.cfg.TrainSample {
			train = append(train, entry.Feature...)
			trained++
		}
	}
	if trained == 0 {
		return nil, nil, errors.New("indexer: no valid images to index")
	}

	cb, err := kmeans.Train(kmeans.Config{
		K:    fi.cfg.Shard.NLists,
		Dim:  fi.cfg.Shard.Dim,
		Seed: fi.cfg.Seed,
	}, train)
	if err != nil {
		return nil, nil, fmt.Errorf("indexer: train codebook: %w", err)
	}
	var pcb *pq.Codebook
	if fi.cfg.Shard.PQSubvectors > 0 {
		pcb, err = pq.Train(pq.Config{
			Dim:  fi.cfg.Shard.Dim,
			M:    fi.cfg.Shard.PQSubvectors,
			Bits: fi.cfg.Shard.PQBits,
			Seed: fi.cfg.Seed,
		}, train)
		if err != nil {
			return nil, nil, fmt.Errorf("indexer: train pq codebook: %w", err)
		}
	}

	shards := make([]*index.Shard, fi.cfg.Partitions)
	for p := range shards {
		s, err := index.New(fi.cfg.Shard)
		if err != nil {
			return nil, nil, err
		}
		if err := s.SetCodebook(cb); err != nil {
			return nil, nil, err
		}
		if pcb != nil {
			if err := s.SetPQCodebook(pcb); err != nil {
				return nil, nil, err
			}
		}
		for _, rv := range perPartition[p] {
			if _, _, err := s.Insert(rv.attrs, rv.feature); err != nil {
				return nil, nil, fmt.Errorf("indexer: full build insert %s: %w", rv.attrs.URL, err)
			}
		}
		if p < len(covered) {
			s.SetCoveredOffset(covered[p])
		}
		shards[p] = s
	}
	return shards, cb, nil
}

// replay folds the day's log into final per-image state, processing each
// partition's messages in order. It also returns, per partition, the next
// offset a consumer resuming after this replay should read.
func (fi *FullIndexer) replay(q *mq.Queue) (map[string]*imageState, []int64, error) {
	nParts := q.Partitions(UpdatesTopic)
	if nParts == 0 {
		return nil, nil, fmt.Errorf("indexer: topic %q does not exist", UpdatesTopic)
	}
	states := make(map[string]*imageState)
	covered := make([]int64, nParts)
	for p := 0; p < nParts; p++ {
		c, err := q.NewConsumer(UpdatesTopic, p, 0)
		if err != nil {
			return nil, nil, err
		}
		for {
			msgs, err := c.Poll(1024, 0)
			if err != nil {
				return nil, nil, fmt.Errorf("indexer: replay partition %d: %w", p, err)
			}
			if len(msgs) == 0 {
				break
			}
			for _, m := range msgs {
				u, err := msg.Decode(m.Payload)
				if err != nil {
					return nil, nil, fmt.Errorf("indexer: replay decode (partition %d offset %d): %w", p, m.Offset, err)
				}
				fi.fold(states, u)
			}
		}
		covered[p] = c.Offset()
	}
	return states, covered, nil
}

func (fi *FullIndexer) fold(states map[string]*imageState, u *msg.ProductUpdate) {
	for _, url := range u.ImageURLs {
		st := states[url]
		if st == nil {
			st = &imageState{}
			states[url] = st
		}
		switch u.Type {
		case msg.TypeAddProduct:
			st.valid = true
			st.attrs = core.Attrs{
				ProductID:  u.ProductID,
				Sales:      u.Sales,
				Praise:     u.Praise,
				PriceCents: u.PriceCents,
				Category:   u.Category,
				URL:        url,
			}
		case msg.TypeRemoveProduct:
			st.valid = false
		case msg.TypeUpdateAttrs:
			if st.attrs.URL != "" {
				st.attrs.Sales = u.Sales
				st.attrs.Praise = u.Praise
				st.attrs.PriceCents = u.PriceCents
				st.attrs.Category = u.Category
			}
		}
		st.seq = u.Seq
	}
}
