package indexer

import (
	"errors"
	"testing"

	"jdvs/internal/catalog"
	"jdvs/internal/cnn"
	"jdvs/internal/core"
	"jdvs/internal/featuredb"
	"jdvs/internal/imagestore"
	"jdvs/internal/index"
	"jdvs/internal/mq"
	"jdvs/internal/msg"
)

const testDim = 16

type fixture struct {
	queue  *mq.Queue
	images *imagestore.Store
	res    *Resolver
	cat    *catalog.Catalog
}

func newFixture(t *testing.T, products, partitions int) *fixture {
	t.Helper()
	f := &fixture{
		queue:  mq.New(),
		images: imagestore.New(),
	}
	t.Cleanup(f.queue.Close)
	if err := f.queue.CreateTopic(UpdatesTopic, partitions); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Generate(catalog.Config{Products: products, Categories: 4, Seed: 11}, f.images)
	if err != nil {
		t.Fatal(err)
	}
	f.cat = cat
	f.res = &Resolver{
		DB:        featuredb.New(),
		Images:    f.images,
		Extractor: cnn.New(cnn.Config{Dim: testDim, Seed: 5}),
	}
	return f
}

func (f *fixture) addEvent(p *catalog.Product, seq uint64) *msg.ProductUpdate {
	return &msg.ProductUpdate{
		Type:       msg.TypeAddProduct,
		ProductID:  p.ID,
		Category:   p.Category,
		Sales:      p.Sales,
		Praise:     p.Praise,
		PriceCents: p.PriceCents,
		ImageURLs:  append([]string(nil), p.ImageURLs...),
		Seq:        seq,
	}
}

func TestResolverChecksBeforeExtract(t *testing.T) {
	f := newFixture(t, 5, 2)
	p := &f.cat.Products[0]
	url := p.ImageURLs[0]

	entry, reused, err := f.res.Resolve(url, p.Attrs(url))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if reused {
		t.Fatal("first resolve reported reuse")
	}
	if len(entry.Feature) != testDim {
		t.Fatalf("feature dim %d", len(entry.Feature))
	}
	calls := f.res.Extractor.Calls()

	// Second resolve: must reuse, no new extraction.
	_, reused, err = f.res.Resolve(url, p.Attrs(url))
	if err != nil || !reused {
		t.Fatalf("second resolve: reused=%v err=%v", reused, err)
	}
	if f.res.Extractor.Calls() != calls {
		t.Fatal("re-resolve re-extracted")
	}
}

func TestResolverMissingImage(t *testing.T) {
	f := newFixture(t, 2, 1)
	_, _, err := f.res.Resolve("jfs://missing.jpg", core.Attrs{})
	if err == nil {
		t.Fatal("missing image resolved")
	}
	if !errors.Is(err, imagestore.ErrNotFound) {
		t.Fatalf("err = %v, want imagestore.ErrNotFound in chain", err)
	}
}

func TestRouteUpdateSplitsPerImage(t *testing.T) {
	f := newFixture(t, 3, 4)
	p := &f.cat.Products[0]
	n, err := RouteUpdate(f.queue, f.addEvent(p, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(p.ImageURLs) {
		t.Fatalf("routed %d messages, want %d", n, len(p.ImageURLs))
	}
	// Each message carries exactly one URL and sits on its hash partition.
	total := 0
	for part := 0; part < 4; part++ {
		c, err := f.queue.NewConsumer(UpdatesTopic, part, 0)
		if err != nil {
			t.Fatal(err)
		}
		msgs, err := c.Poll(100, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			u, err := msg.Decode(m.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if len(u.ImageURLs) != 1 {
				t.Fatalf("message carries %d urls", len(u.ImageURLs))
			}
			if want := int(mq.PartitionFor(u.ImageURLs[0], 4)); want != part {
				t.Fatalf("url %s on partition %d, want %d", u.ImageURLs[0], part, want)
			}
			total++
		}
	}
	if total != n {
		t.Fatalf("found %d routed messages, want %d", total, n)
	}
	// No URLs: error.
	if _, err := RouteUpdate(f.queue, &msg.ProductUpdate{Type: msg.TypeAddProduct}); err == nil {
		t.Fatal("urlless update routed")
	}
}

func newShard(t *testing.T, f *fixture) *index.Shard {
	t.Helper()
	s, err := index.New(index.Config{Dim: testDim, NLists: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Train on features of the catalog's images.
	train := make([]float32, 0, 64*testDim)
	for i := range f.cat.Products {
		p := &f.cat.Products[i]
		entry, _, err := f.res.Resolve(p.ImageURLs[0], p.Attrs(p.ImageURLs[0]))
		if err != nil {
			t.Fatal(err)
		}
		train = append(train, entry.Feature...)
	}
	if err := s.Train(train, 1); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestApplyLifecycle(t *testing.T) {
	f := newFixture(t, 10, 1)
	s := newShard(t, f)
	p := &f.cat.Products[0]
	url := p.ImageURLs[0]

	one := func(typ msg.Type) *msg.ProductUpdate {
		u := f.addEvent(p, 1)
		u.Type = typ
		u.ImageURLs = []string{url}
		return u
	}

	// Addition.
	kind, reused, err := Apply(s, f.res, one(msg.TypeAddProduct))
	if err != nil || kind != "addition" {
		t.Fatalf("add: kind=%q err=%v", kind, err)
	}
	// Features were already in the DB from shard training resolve: reused.
	if !reused {
		t.Fatal("expected feature reuse from feature DB")
	}
	if !s.HasURL(url) {
		t.Fatal("image not indexed")
	}

	// Attr update.
	upd := one(msg.TypeUpdateAttrs)
	upd.Sales = 31337
	kind, _, err = Apply(s, f.res, upd)
	if err != nil || kind != "update" {
		t.Fatalf("update: kind=%q err=%v", kind, err)
	}
	ids := s.ProductImages(p.ID)
	a, _ := s.Attrs(ids[0])
	if a.Sales != 31337 {
		t.Fatalf("sales = %d", a.Sales)
	}

	// Deletion.
	kind, _, err = Apply(s, f.res, one(msg.TypeRemoveProduct))
	if err != nil || kind != "deletion" {
		t.Fatalf("delete: kind=%q err=%v", kind, err)
	}
	if s.Valid(ids[0]) {
		t.Fatal("image valid after deletion")
	}

	// Re-addition: shard-level record reuse, no resolve needed.
	kind, reused, err = Apply(s, f.res, one(msg.TypeAddProduct))
	if err != nil || kind != "addition" || !reused {
		t.Fatalf("re-add: kind=%q reused=%v err=%v", kind, reused, err)
	}
	if !s.Valid(ids[0]) {
		t.Fatal("image invalid after re-add")
	}
}

func TestApplyToleratesUnknownTargets(t *testing.T) {
	f := newFixture(t, 3, 1)
	s := newShard(t, f)
	// Deleting / updating an image the shard never saw: tolerated no-ops.
	del := &msg.ProductUpdate{Type: msg.TypeRemoveProduct, ImageURLs: []string{"jfs://ghost.jpg"}}
	if _, _, err := Apply(s, f.res, del); err != nil {
		t.Fatalf("ghost delete errored: %v", err)
	}
	upd := &msg.ProductUpdate{Type: msg.TypeUpdateAttrs, ImageURLs: []string{"jfs://ghost.jpg"}}
	if _, _, err := Apply(s, f.res, upd); err != nil {
		t.Fatalf("ghost update errored: %v", err)
	}
}

func TestApplyValidation(t *testing.T) {
	f := newFixture(t, 3, 1)
	s := newShard(t, f)
	// Multi-URL messages must have been split by RouteUpdate.
	bad := f.addEvent(&f.cat.Products[0], 1)
	if len(bad.ImageURLs) < 2 {
		bad.ImageURLs = append(bad.ImageURLs, "jfs://extra.jpg")
	}
	if _, _, err := Apply(s, f.res, bad); err == nil {
		t.Fatal("multi-url addition applied")
	}
	if _, _, err := Apply(s, f.res, &msg.ProductUpdate{Type: 99, ImageURLs: []string{"u"}}); err == nil {
		t.Fatal("unknown type applied")
	}
}

func TestFullBuildFromLog(t *testing.T) {
	const partitions = 3
	f := newFixture(t, 30, partitions)
	var seq uint64
	// Feed: add everything, delete a few, update one, re-add one deleted.
	for i := range f.cat.Products {
		seq++
		if _, err := RouteUpdate(f.queue, f.addEvent(&f.cat.Products[i], seq)); err != nil {
			t.Fatal(err)
		}
	}
	removed := &f.cat.Products[2]
	stillGone := &f.cat.Products[4]
	for _, p := range []*catalog.Product{removed, stillGone} {
		seq++
		u := f.addEvent(p, seq)
		u.Type = msg.TypeRemoveProduct
		if _, err := RouteUpdate(f.queue, u); err != nil {
			t.Fatal(err)
		}
	}
	seq++
	upd := f.addEvent(&f.cat.Products[6], seq)
	upd.Type = msg.TypeUpdateAttrs
	upd.Sales = 424242
	if _, err := RouteUpdate(f.queue, upd); err != nil {
		t.Fatal(err)
	}
	seq++
	if _, err := RouteUpdate(f.queue, f.addEvent(removed, seq)); err != nil { // back on market
		t.Fatal(err)
	}

	fi, err := NewFull(FullConfig{
		Partitions: partitions,
		Shard:      index.Config{Dim: testDim, NLists: 8},
		Seed:       1,
	}, f.res)
	if err != nil {
		t.Fatal(err)
	}
	shards, cb, err := fi.Build(f.queue)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(shards) != partitions || cb == nil {
		t.Fatalf("built %d shards", len(shards))
	}

	find := func(url string) (int, bool) {
		for p, s := range shards {
			if s.HasURL(url) {
				return p, true
			}
		}
		return 0, false
	}
	// Images live on their hash partition.
	for i := range f.cat.Products {
		p := &f.cat.Products[i]
		if p == stillGone {
			continue
		}
		for _, url := range p.ImageURLs {
			part, ok := find(url)
			if !ok {
				t.Fatalf("image %s missing from full index", url)
			}
			if want := int(mq.PartitionFor(url, partitions)); part != want {
				t.Fatalf("image %s on partition %d, want %d", url, part, want)
			}
		}
	}
	// The still-deleted product is excluded ("only the valid images are
	// used to create the full index").
	for _, url := range stillGone.ImageURLs {
		if _, ok := find(url); ok {
			t.Fatalf("deleted product's image %s present in full index", url)
		}
	}
	// The re-added product is present.
	if _, ok := find(removed.ImageURLs[0]); !ok {
		t.Fatal("re-added product missing from full index")
	}
	// The attribute update is folded in.
	updated := &f.cat.Products[6]
	part, _ := find(updated.ImageURLs[0])
	ids := shards[part].ProductImages(updated.ID)
	if len(ids) == 0 {
		t.Fatal("updated product has no images on its partition")
	}
	a, _ := shards[part].Attrs(ids[0])
	if a.Sales != 424242 {
		t.Fatalf("full index lost the attr update: sales=%d", a.Sales)
	}
}

func TestFullBuildEmptyLog(t *testing.T) {
	f := newFixture(t, 2, 2)
	fi, err := NewFull(FullConfig{
		Partitions: 2,
		Shard:      index.Config{Dim: testDim, NLists: 4},
	}, f.res)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fi.Build(f.queue); err == nil {
		t.Fatal("empty log built an index")
	}
}

func TestNewFullValidation(t *testing.T) {
	f := newFixture(t, 2, 1)
	if _, err := NewFull(FullConfig{Partitions: 0, Shard: index.Config{Dim: 4, NLists: 2}}, f.res); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := NewFull(FullConfig{Partitions: 1}, f.res); err == nil {
		t.Fatal("missing shard config accepted")
	}
}

// TestFullBuildCoveredOffsetsAndPQ: every built shard records the queue
// offset its replay covered, and a PQ-configured build installs one shared
// product quantizer with codes for every inserted image.
func TestFullBuildCoveredOffsetsAndPQ(t *testing.T) {
	const partitions = 2
	f := newFixture(t, 20, partitions)
	var seq uint64
	for i := range f.cat.Products {
		seq++
		if _, err := RouteUpdate(f.queue, f.addEvent(&f.cat.Products[i], seq)); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := NewFull(FullConfig{
		Partitions: partitions,
		Shard:      index.Config{Dim: testDim, NLists: 8, PQSubvectors: 4, PQBits: 4},
		Seed:       1,
	}, f.res)
	if err != nil {
		t.Fatal(err)
	}
	shards, _, err := fi.Build(f.queue)
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range shards {
		want, err := f.queue.Len(UpdatesTopic, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.CoveredOffset(); got != want {
			t.Fatalf("partition %d covered offset %d, want queue length %d", p, got, want)
		}
		if !s.PQEnabled() {
			t.Fatalf("partition %d built without PQ despite PQSubvectors", p)
		}
		if st := s.Stats(); st.PQCodes != st.Images {
			t.Fatalf("partition %d: %d codes for %d images", p, st.PQCodes, st.Images)
		}
		// The configured bit width must survive the build: pq.Train defaults
		// to 8-bit when Bits is left unset, and SetPQCodebook installs
		// whatever width the codebook carries, so dropping PQBits here would
		// silently serve 8-bit codes from a 4-bit-configured cluster.
		if st := s.Stats(); st.PQBits != 4 {
			t.Fatalf("partition %d: built with %d-bit codes, want 4", p, st.PQBits)
		}
	}
	// Shards share one quantizer: identical centroids across partitions.
	a, b := shards[0].PQCodebook(), shards[1].PQCodebook()
	if a == nil || b == nil || len(a.Centroids) != len(b.Centroids) {
		t.Fatal("missing or mismatched pq codebooks")
	}
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatal("partitions trained divergent pq codebooks")
		}
	}
}

// TestApplyRelistChangedFeature: the wired real-time path must propagate
// a changed feature vector on re-listing. Apply resolves through the
// feature DB even for shard-known URLs (a cache hit — no extraction), so
// when the DB entry for a URL has changed since it was last indexed, the
// re-listing lands the image at its new index location instead of serving
// the stale vector until the next full rebuild.
func TestApplyRelistChangedFeature(t *testing.T) {
	f := newFixture(t, 10, 1)
	s := newShard(t, f)
	p := &f.cat.Products[0]
	url := p.ImageURLs[0]

	add := f.addEvent(p, 1)
	add.ImageURLs = []string{url}
	if _, _, err := Apply(s, f.res, add); err != nil {
		t.Fatal(err)
	}
	ids := s.ProductImages(p.ID)
	if len(ids) != 1 {
		t.Fatalf("indexed %v", ids)
	}
	oldID := ids[0]

	// Delist, then change the URL's stored features (re-extraction after a
	// model refresh, or the image content changed under the same URL).
	del := f.addEvent(p, 2)
	del.Type = msg.TypeRemoveProduct
	del.ImageURLs = []string{url}
	if _, _, err := Apply(s, f.res, del); err != nil {
		t.Fatal(err)
	}
	entry, err := f.res.DB.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	newFeat := append([]float32(nil), entry.Feature...)
	newFeat[0] += 2.5
	f.res.DB.Put(url, &featuredb.Entry{Feature: newFeat, Attrs: entry.Attrs})

	// Re-listing through the production path: no extraction (DB hit), but
	// the image serves the new vector.
	hits, misses := f.res.DB.Stats()
	readd := f.addEvent(p, 3)
	readd.ImageURLs = []string{url}
	kind, reused, err := Apply(s, f.res, readd)
	if err != nil || kind != "addition" || !reused {
		t.Fatalf("re-add: kind=%q reused=%v err=%v", kind, reused, err)
	}
	if h2, m2 := f.res.DB.Stats(); m2 != misses || h2 != hits+1 {
		t.Fatalf("re-listing extracted features: hits %d->%d misses %d->%d", hits, h2, misses, m2)
	}
	ids = s.ProductImages(p.ID)
	if len(ids) != 1 {
		t.Fatalf("product owns %v after re-listing", ids)
	}
	newID := ids[0]
	if newID == oldID {
		t.Fatal("changed-vector re-listing kept the stale generation")
	}
	if s.Valid(oldID) || !s.Valid(newID) {
		t.Fatalf("validity: old=%v new=%v", s.Valid(oldID), s.Valid(newID))
	}
	got := s.Feature(newID)
	for i := range newFeat {
		if got[i] != newFeat[i] {
			t.Fatalf("shard serves stale vector: got %v, want %v", got[:4], newFeat[:4])
		}
	}
	// The new location answers searches; the old vector's slot does not.
	resp, err := s.Search(&core.SearchRequest{Feature: newFeat, TopK: 1, NProbe: 8, Category: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) == 0 || resp.Hits[0].URL != url || resp.Hits[0].Dist != 0 {
		t.Fatalf("new vector does not find the re-listed image: %+v", resp.Hits)
	}
	if st := s.Stats(); st.FeatureRefreshes != 1 {
		t.Fatalf("FeatureRefreshes = %d, want 1", st.FeatureRefreshes)
	}
}

// TestApplyRelistUnchangedFeatureReuses: the common re-listing (feature
// DB entry unchanged) must stay the cheap §2.3 path — record reused, no
// new generation appended.
func TestApplyRelistUnchangedFeatureReuses(t *testing.T) {
	f := newFixture(t, 10, 1)
	s := newShard(t, f)
	p := &f.cat.Products[0]
	url := p.ImageURLs[0]
	add := f.addEvent(p, 1)
	add.ImageURLs = []string{url}
	if _, _, err := Apply(s, f.res, add); err != nil {
		t.Fatal(err)
	}
	del := f.addEvent(p, 2)
	del.Type = msg.TypeRemoveProduct
	del.ImageURLs = []string{url}
	if _, _, err := Apply(s, f.res, del); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	readd := f.addEvent(p, 3)
	readd.ImageURLs = []string{url}
	if _, reused, err := Apply(s, f.res, readd); err != nil || !reused {
		t.Fatalf("re-add: reused=%v err=%v", reused, err)
	}
	after := s.Stats()
	if after.Images != before.Images || after.FeatureRefreshes != 0 || after.ReusedInserts != before.ReusedInserts+1 {
		t.Fatalf("plain re-listing not reused: %+v -> %+v", before, after)
	}
}
