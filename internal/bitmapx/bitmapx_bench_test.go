package bitmapx

import "testing"

// BenchmarkSetClear measures the §2.3 deletion/re-listing primitive: one
// atomic bit flip.
func BenchmarkSetClear(b *testing.B) {
	bm := New(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint32(i) & (1<<20 - 1)
		if i&1 == 0 {
			bm.Set(id)
		} else {
			bm.Clear(id)
		}
	}
}

// BenchmarkGet measures the validity check on the search scan path.
func BenchmarkGet(b *testing.B) {
	bm := New(1 << 20)
	for i := uint32(0); i < 1<<20; i += 2 {
		bm.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var valid int
	for i := 0; i < b.N; i++ {
		if bm.Get(uint32(i) & (1<<20 - 1)) {
			valid++
		}
	}
	if valid < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkGetParallel models many search threads filtering concurrently.
func BenchmarkGetParallel(b *testing.B) {
	bm := New(1 << 20)
	for i := uint32(0); i < 1<<20; i += 3 {
		bm.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint32(0)
		for pb.Next() {
			bm.Get(i & (1<<20 - 1))
			i += 7
		}
	})
}
