package bitmapx

import "testing"

// BenchmarkSetClear measures the §2.3 deletion/re-listing primitive: one
// atomic bit flip.
func BenchmarkSetClear(b *testing.B) {
	bm := New(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint32(i) & (1<<20 - 1)
		if i&1 == 0 {
			bm.Set(id)
		} else {
			bm.Clear(id)
		}
	}
}

// BenchmarkGet measures the validity check on the search scan path.
func BenchmarkGet(b *testing.B) {
	bm := New(1 << 20)
	for i := uint32(0); i < 1<<20; i += 2 {
		bm.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var valid int
	for i := 0; i < b.N; i++ {
		if bm.Get(uint32(i) & (1<<20 - 1)) {
			valid++
		}
	}
	if valid < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkIntersect measures the per-query admission-bitmap build:
// snapshotting the validity bitmap into flat words and intersecting it
// with a category bitmap, with the fused count alongside. 1<<20 bits ≈ a
// 1M-image shard; the whole build is a few dozen µs, amortised against
// the list scan it replaces per-candidate forward lookups in.
func BenchmarkIntersect(b *testing.B) {
	valid := New(1 << 20)
	cat := New(1 << 20)
	for i := uint32(0); i < 1<<20; i++ {
		if i%3 != 0 {
			valid.Set(i)
		}
		if i%100 == 0 {
			cat.Set(i)
		}
	}
	var wv, wc, dst Words
	b.Run("snapshot+and", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wv = valid.AppendWords(wv[:0])
			wc = cat.AppendWords(wc[:0])
			dst = And(dst, wv, wc)
		}
	})
	b.Run("andcount", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if AndCount(wv, wc) < 0 {
				b.Fatal("impossible")
			}
		}
	})
	b.Run("range", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			dst.Range(func(uint32) bool { n++; return true })
		}
		if n < 0 {
			b.Fatal("impossible")
		}
	})
}

// BenchmarkGetParallel models many search threads filtering concurrently.
func BenchmarkGetParallel(b *testing.B) {
	bm := New(1 << 20)
	for i := uint32(0); i < 1<<20; i += 3 {
		bm.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint32(0)
		for pb.Next() {
			bm.Get(i & (1<<20 - 1))
			i += 7
		}
	})
}
