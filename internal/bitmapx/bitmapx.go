// Package bitmapx implements the concurrent validity bitmap at the heart of
// the paper's deletion and re-listing scheme (§2.2–2.3).
//
// Removing a product from the market never touches the forward or inverted
// indexes — the image's bit simply flips from 1 (valid) to 0 (invalid), and
// both the search scan and the full-indexing pass filter on the bit. When
// the product returns to market the bit flips back and all previously
// extracted features are reused.
//
// The bitmap must therefore support single-bit atomic updates concurrent
// with lock-free reads from search threads, and it must grow as new images
// are appended. Bits live in fixed-size chunks of atomic 64-bit words; the
// chunk directory is published through an atomic pointer, so readers never
// take a lock. Growth is serialised by a mutex but leaves existing chunks
// untouched, so in-flight readers remain correct.
package bitmapx

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// chunkBits is the number of bits per chunk. 1<<16 bits = 8 KiB words.
	chunkBits = 1 << 16
	wordsPer  = chunkBits / 64
)

type chunk struct {
	words [wordsPer]atomic.Uint64
}

// Bitmap is a growable concurrent bitmap. The zero value is an empty bitmap
// ready for use. Bits are addressed by uint32 image IDs; unset bits read as
// 0 (invalid).
type Bitmap struct {
	dir atomic.Pointer[[]*chunk]

	mu sync.Mutex // guards growth only

	// setCount tracks the number of 1 bits for O(1) Count. Updated with the
	// outcome of each atomic bit transition, so it is exact.
	setCount atomic.Int64
}

// New returns a bitmap pre-sized for n bits. n may be 0.
func New(n int) *Bitmap {
	b := &Bitmap{}
	if n > 0 {
		b.Grow(uint32(n - 1))
	}
	return b
}

func (b *Bitmap) chunks() []*chunk {
	p := b.dir.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Grow ensures the bitmap can address bit index id.
func (b *Bitmap) Grow(id uint32) {
	need := int(id/chunkBits) + 1
	if len(b.chunks()) >= need {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.chunks()
	if len(cur) >= need {
		return
	}
	next := make([]*chunk, need)
	copy(next, cur)
	for i := len(cur); i < need; i++ {
		next[i] = new(chunk)
	}
	b.dir.Store(&next)
}

// Set marks bit id as valid (1). The bitmap grows as needed. It reports
// whether the bit changed (false if it was already set).
func (b *Bitmap) Set(id uint32) bool {
	b.Grow(id)
	c := b.chunks()[id/chunkBits]
	w := &c.words[(id%chunkBits)/64]
	mask := uint64(1) << (id % 64)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			b.setCount.Add(1)
			return true
		}
	}
}

// Clear marks bit id as invalid (0). Clearing a bit beyond the current size
// is a no-op (it already reads as 0). It reports whether the bit changed.
func (b *Bitmap) Clear(id uint32) bool {
	chunks := b.chunks()
	ci := int(id / chunkBits)
	if ci >= len(chunks) {
		return false
	}
	w := &chunks[ci].words[(id%chunkBits)/64]
	mask := uint64(1) << (id % 64)
	for {
		old := w.Load()
		if old&mask == 0 {
			return false
		}
		if w.CompareAndSwap(old, old&^mask) {
			b.setCount.Add(-1)
			return true
		}
	}
}

// Get reports whether bit id is set. Reads are lock-free and safe
// concurrently with Set/Clear/Grow.
func (b *Bitmap) Get(id uint32) bool {
	chunks := b.chunks()
	ci := int(id / chunkBits)
	if ci >= len(chunks) {
		return false
	}
	w := chunks[ci].words[(id%chunkBits)/64].Load()
	return w&(uint64(1)<<(id%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return int(b.setCount.Load()) }

// Cap returns the number of addressable bits.
func (b *Bitmap) Cap() int { return len(b.chunks()) * chunkBits }

// Snapshot copies the bitmap's words into a plain []uint64 for
// serialisation. The snapshot is consistent per word (each word is read
// atomically) but not across words, matching the paper's semantics: the
// bitmap is advisory validity state, not a transactional log.
func (b *Bitmap) Snapshot() []uint64 {
	chunks := b.chunks()
	out := make([]uint64, len(chunks)*wordsPer)
	for ci, c := range chunks {
		for wi := range c.words {
			out[ci*wordsPer+wi] = c.words[wi].Load()
		}
	}
	return out
}

// Restore replaces the bitmap contents with the given words (as produced by
// Snapshot). It must not be called concurrently with writers.
func (b *Bitmap) Restore(words []uint64) {
	nChunks := (len(words) + wordsPer - 1) / wordsPer
	next := make([]*chunk, nChunks)
	var count int64
	for ci := 0; ci < nChunks; ci++ {
		next[ci] = new(chunk)
		for wi := 0; wi < wordsPer; wi++ {
			idx := ci*wordsPer + wi
			if idx >= len(words) {
				break
			}
			next[ci].words[wi].Store(words[idx])
			count += int64(popcount(words[idx]))
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dir.Store(&next)
	b.setCount.Store(count)
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// AppendWords appends the bitmap's current words to dst and returns the
// extended slice — Snapshot into a caller-reused buffer, for the per-query
// admission path where a fresh allocation per query would defeat the
// scratch pooling. Reads are lock-free; the same per-word (not cross-word)
// consistency as Snapshot applies. Typical use: w = b.AppendWords(w[:0]).
func (b *Bitmap) AppendWords(dst Words) Words {
	chunks := b.chunks()
	need := len(dst) + len(chunks)*wordsPer
	if cap(dst) < need {
		grown := make(Words, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for _, c := range chunks {
		for wi := range c.words {
			dst = append(dst, c.words[wi].Load())
		}
	}
	return dst
}

// Words is a flat, single-owner bitmap: the materialised form the search
// path intersects per query (validity ∧ category ∧ attribute predicates)
// before walking inverted lists. Unlike Bitmap it is not safe for
// concurrent mutation — it is scratch, built and consumed by one query.
// Bits beyond len(w)*64 read as 0.
type Words []uint64

// Get reports whether bit id is set.
func (w Words) Get(id uint32) bool {
	wi := int(id / 64)
	if wi >= len(w) {
		return false
	}
	return w[wi]&(uint64(1)<<(id%64)) != 0
}

// Count returns the number of set bits.
func (w Words) Count() int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// Range calls fn for each set bit in ascending order, skipping zero words
// without inspecting individual bits, until fn returns false. On sparse
// bitmaps (a selective filter over a large shard) this touches one word
// per 64 candidates instead of one branch per candidate.
func (w Words) Range(fn func(id uint32) bool) {
	for wi, x := range w {
		for x != 0 {
			bit := uint32(bits.TrailingZeros64(x))
			if !fn(uint32(wi)*64 + bit) {
				return
			}
			x &= x - 1
		}
	}
}

// And stores a ∧ b into dst (reusing its capacity) and returns it. The
// result covers min(len(a), len(b)) words — bits beyond either operand are
// absent (0) in the intersection, matching the admission semantics where a
// bitmap that was never grown to an id simply does not admit it. dst may
// alias a or b.
func And(dst, a, b Words) Words {
	n := min(len(a), len(b))
	if cap(dst) < n {
		dst = make(Words, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = a[i] & b[i]
	}
	return dst
}

// AndCount returns the number of set bits in a ∧ b without materialising
// the intersection — the selectivity estimate the scan widens nprobe from.
func AndCount(a, b Words) int {
	n := min(len(a), len(b))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}
