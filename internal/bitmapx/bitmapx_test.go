package bitmapx

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestZeroValueAndNew(t *testing.T) {
	var b Bitmap
	if b.Get(0) || b.Get(12345) {
		t.Fatal("zero bitmap has set bits")
	}
	if b.Count() != 0 {
		t.Fatal("zero bitmap count != 0")
	}
	nb := New(1000)
	if nb.Cap() < 1000 {
		t.Fatalf("New(1000).Cap() = %d", nb.Cap())
	}
}

func TestSetGetClear(t *testing.T) {
	b := New(0)
	ids := []uint32{0, 1, 63, 64, 65, 1000, 65535, 65536, 1 << 20}
	for _, id := range ids {
		if !b.Set(id) {
			t.Errorf("Set(%d) reported no change on first set", id)
		}
		if b.Set(id) {
			t.Errorf("Set(%d) reported change on second set", id)
		}
		if !b.Get(id) {
			t.Errorf("Get(%d) false after Set", id)
		}
	}
	if b.Count() != len(ids) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(ids))
	}
	for _, id := range ids {
		if !b.Clear(id) {
			t.Errorf("Clear(%d) reported no change", id)
		}
		if b.Clear(id) {
			t.Errorf("Clear(%d) reported change twice", id)
		}
		if b.Get(id) {
			t.Errorf("Get(%d) true after Clear", id)
		}
	}
	if b.Count() != 0 {
		t.Fatalf("Count = %d after clearing all, want 0", b.Count())
	}
}

func TestClearBeyondCapIsNoop(t *testing.T) {
	b := New(10)
	if b.Clear(1 << 25) {
		t.Fatal("Clear of never-grown bit reported a change")
	}
}

func TestNeighborBitsIndependent(t *testing.T) {
	b := New(0)
	b.Set(100)
	b.Set(101)
	b.Clear(100)
	if b.Get(100) {
		t.Fatal("bit 100 still set")
	}
	if !b.Get(101) {
		t.Fatal("clearing bit 100 disturbed bit 101")
	}
}

// Property: a random sequence of sets/clears leaves the bitmap agreeing
// with a map[uint32]bool model.
func TestBitmapMatchesModel(t *testing.T) {
	f := func(ops []uint32) bool {
		b := New(0)
		model := make(map[uint32]bool)
		for _, op := range ops {
			id := op >> 1 % (1 << 18)
			if op&1 == 0 {
				b.Set(id)
				model[id] = true
			} else {
				b.Clear(id)
				delete(model, id)
			}
		}
		for id, want := range model {
			if b.Get(id) != want {
				return false
			}
		}
		count := 0
		for range model {
			count++
		}
		return b.Count() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := New(0)
	set := make(map[uint32]bool)
	for i := 0; i < 5000; i++ {
		id := uint32(rng.Intn(1 << 19))
		b.Set(id)
		set[id] = true
	}
	words := b.Snapshot()

	restored := New(0)
	restored.Restore(words)
	if restored.Count() != b.Count() {
		t.Fatalf("restored count %d, want %d", restored.Count(), b.Count())
	}
	for id := range set {
		if !restored.Get(id) {
			t.Fatalf("bit %d lost in roundtrip", id)
		}
	}
}

func TestConcurrentSetClearDisjoint(t *testing.T) {
	b := New(0)
	const perWorker = 20000
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(w * perWorker)
			for i := uint32(0); i < perWorker; i++ {
				b.Set(base + i)
			}
			for i := uint32(0); i < perWorker; i += 2 {
				b.Clear(base + i)
			}
		}(w)
	}
	wg.Wait()
	if got, want := b.Count(), workers*perWorker/2; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		base := uint32(w * perWorker)
		if b.Get(base) {
			t.Fatalf("worker %d: even bit still set", w)
		}
		if !b.Get(base + 1) {
			t.Fatalf("worker %d: odd bit lost", w)
		}
	}
}

// TestConcurrentSameBit hammers a single bit from many goroutines; the
// change-reporting contract means exactly one Set wins per round.
func TestConcurrentSameBit(t *testing.T) {
	b := New(64)
	const rounds = 500
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		wins := make(chan struct{}, 16)
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.Set(7) {
					wins <- struct{}{}
				}
			}()
		}
		wg.Wait()
		close(wins)
		n := 0
		for range wins {
			n++
		}
		if n != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", r, n)
		}
		b.Clear(7)
	}
}

// TestWordsMatchesModel: Get/Count/Range over a materialised Words
// snapshot agree with a map model, across chunk boundaries.
func TestWordsMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := New(0)
	model := make(map[uint32]bool)
	for i := 0; i < 4000; i++ {
		id := uint32(rng.Intn(3 << 16)) // spans multiple 1<<16-bit chunks
		b.Set(id)
		model[id] = true
	}
	w := b.AppendWords(nil)
	if got := w.Count(); got != len(model) {
		t.Fatalf("Words.Count = %d, want %d", got, len(model))
	}
	for id := range model {
		if !w.Get(id) {
			t.Fatalf("Words.Get(%d) = false for a set bit", id)
		}
	}
	if w.Get(uint32(len(w))*64 + 5) {
		t.Fatal("Words.Get beyond length returned true")
	}
	var prev int64 = -1
	seen := 0
	w.Range(func(id uint32) bool {
		if int64(id) <= prev {
			t.Fatalf("Range out of order: %d after %d", id, prev)
		}
		prev = int64(id)
		if !model[id] {
			t.Fatalf("Range visited unset bit %d", id)
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("Range visited %d bits, want %d", seen, len(model))
	}
	// Early termination.
	calls := 0
	w.Range(func(uint32) bool { calls++; return calls < 3 })
	if calls != 3 {
		t.Fatalf("Range ignored early stop: %d calls", calls)
	}
}

// TestAppendWordsReuse: AppendWords into a recycled buffer must equal a
// fresh Snapshot.
func TestAppendWordsReuse(t *testing.T) {
	b := New(0)
	for _, id := range []uint32{0, 63, 64, 100000, 1 << 17} {
		b.Set(id)
	}
	scratch := make(Words, 7) // non-empty garbage to be truncated away
	got := b.AppendWords(scratch[:0])
	want := b.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("AppendWords produced %d words, Snapshot %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d: AppendWords %x, Snapshot %x", i, got[i], want[i])
		}
	}
}

// TestAndMatchesModel: And/AndCount agree with per-bit intersection,
// including operands of different lengths (missing words read as 0).
func TestAndMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := New(0)
	c := New(0)
	inA := make(map[uint32]bool)
	inBoth := make(map[uint32]bool)
	for i := 0; i < 3000; i++ {
		id := uint32(rng.Intn(2 << 16))
		a.Set(id)
		inA[id] = true
	}
	for i := 0; i < 3000; i++ {
		// Second bitmap deliberately shorter: ids only in the first chunk.
		id := uint32(rng.Intn(1 << 16))
		c.Set(id)
		if inA[id] {
			inBoth[id] = true
		}
	}
	wa := a.AppendWords(nil)
	wc := c.AppendWords(nil)
	got := And(nil, wa, wc)
	if len(got) != min(len(wa), len(wc)) {
		t.Fatalf("And produced %d words, want %d", len(got), min(len(wa), len(wc)))
	}
	if got.Count() != len(inBoth) {
		t.Fatalf("And count = %d, want %d", got.Count(), len(inBoth))
	}
	for id := range inBoth {
		if !got.Get(id) {
			t.Fatalf("intersection lost bit %d", id)
		}
	}
	if n := AndCount(wa, wc); n != len(inBoth) {
		t.Fatalf("AndCount = %d, want %d", n, len(inBoth))
	}
	// Aliased destination.
	aliased := And(wa, wa, wc)
	if aliased.Count() != len(inBoth) {
		t.Fatalf("aliased And count = %d, want %d", aliased.Count(), len(inBoth))
	}
}

func TestConcurrentGrowAndRead(t *testing.T) {
	b := New(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := uint32(0); ; id += 1000 {
			select {
			case <-stop:
				return
			default:
			}
			b.Set(id)
		}
	}()
	for i := 0; i < 100000; i++ {
		b.Get(uint32(i * 37)) // must never fault mid-growth
	}
	close(stop)
	wg.Wait()
}
