package pq

import (
	"math"
	"math/rand"
	"testing"
)

// packBlock interleaves n ≤ BlockCodes packed codes (mb bytes each) into
// one fast-scan block, the layout the shard's per-list code storage uses:
// blk[j*BlockCodes+i] = byte j of code i.
func packBlock(codes [][]byte, mb int) []byte {
	blk := make([]byte, mb*BlockCodes)
	for i, code := range codes {
		for j := 0; j < mb; j++ {
			blk[j*BlockCodes+i] = code[j]
		}
	}
	return blk
}

func randLUT(rng *rand.Rand, mb int) []float32 {
	lut := make([]float32, mb*32)
	for i := range lut {
		lut[i] = float32(rng.NormFloat64() * 3)
	}
	return lut
}

func randCodes(rng *rand.Rand, n, mb int) [][]byte {
	codes := make([][]byte, n)
	for i := range codes {
		codes[i] = make([]byte, mb)
		rng.Read(codes[i])
	}
	return codes
}

// TestScanBlock4MatchesGeneric is the kernel equivalence gate: whatever
// implementation ScanBlock4 bound at build time must return bit-identical
// distances to the portable kernel, across every packed width the index
// can produce and including adversarial nibble values (0x00, 0x0f, 0xf0,
// 0xff at every lane position).
func TestScanBlock4MatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mb := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 32} {
		for trial := 0; trial < 20; trial++ {
			lut := randLUT(rng, mb)
			blk := make([]byte, mb*BlockCodes)
			rng.Read(blk)
			if trial < 4 {
				// Saturate some lanes with the extreme nibble patterns.
				edge := []byte{0x00, 0x0f, 0xf0, 0xff}[trial]
				for j := 0; j < mb; j += 2 {
					for i := 0; i < BlockCodes; i++ {
						blk[j*BlockCodes+i] = edge
					}
				}
			}
			var got, want [BlockCodes]float32
			ScanBlock4(lut, blk, mb, &got)
			scanBlock4Generic(lut, blk, mb, &want)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("mb=%d trial=%d slot=%d: %s kernel %v, generic %v (bit patterns differ)",
						mb, trial, i, KernelName(), got[i], want[i])
				}
			}
		}
	}
}

// TestScanBlock4MatchesScalarPaths: the full-block kernel, the
// partial-block slot path and the per-code ADCDist4 must agree
// bit-for-bit — the index mixes all three within one query (full blocks
// via the kernel, the tail block via ADCDistBlockSlot) and batched vs
// unbatched execution must return exactly equal results.
func TestScanBlock4MatchesScalarPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, mb := range []int{1, 2, 4, 8, 16} {
		lut := randLUT(rng, mb)
		codes := randCodes(rng, BlockCodes, mb)
		blk := packBlock(codes, mb)
		var out [BlockCodes]float32
		ScanBlock4(lut, blk, mb, &out)
		for i, code := range codes {
			slot := ADCDistBlockSlot(lut, blk, mb, i)
			per := ADCDist4(lut, code)
			if math.Float32bits(out[i]) != math.Float32bits(slot) {
				t.Fatalf("mb=%d slot=%d: kernel %v, ADCDistBlockSlot %v", mb, i, out[i], slot)
			}
			if math.Float32bits(out[i]) != math.Float32bits(per) {
				t.Fatalf("mb=%d slot=%d: kernel %v, ADCDist4 %v", mb, i, out[i], per)
			}
		}
	}
}

// TestScanBlock4NibbleOrder pins the packing convention: byte j's low
// nibble is subquantizer 2j, high nibble 2j+1, and LUT rows 2j/2j+1 are
// the contiguous 32 floats at lut[j*32:].
func TestScanBlock4NibbleOrder(t *testing.T) {
	const mb = 2 // M = 4 subquantizers
	lut := make([]float32, mb*32)
	for m := 0; m < 2*mb; m++ {
		for c := 0; c < 16; c++ {
			lut[m*16+c] = float32(1000*m + c)
		}
	}
	code := []byte{0x21, 0x43} // subs: 1, 2, 3, 4
	want := float32(0*1000+1) + float32(1*1000+2) + float32(2*1000+3) + float32(3*1000+4)
	if got := ADCDist4(lut, code); got != want {
		t.Fatalf("ADCDist4 nibble order: got %v, want %v", got, want)
	}
	blk := packBlock([][]byte{code}, mb)
	var out [BlockCodes]float32
	ScanBlock4(lut, blk, mb, &out)
	if out[0] != want {
		t.Fatalf("ScanBlock4 nibble order: got %v, want %v", out[0], want)
	}
}
