// Package pq implements product quantization for the asymmetric-distance
// (ADC) scan path of the shard index.
//
// # Why
//
// The exact IVF scan reads a full Dim×4-byte float row out of the feature
// matrix for every probed candidate, so per-shard scan throughput is bound
// by memory bandwidth, not arithmetic — and shard capacity is bound by
// feature-matrix bytes. Production visual-search systems (Visual Search at
// Alibaba; Web-Scale Responsive Visual Search at Bing) scan compact
// quantized codes instead and only touch raw features for a final exact
// re-rank.
//
// # The math
//
// A feature vector of dimensionality Dim is split into M contiguous
// subvectors of Dim/M components. Each subspace m gets its own codebook of
// 256 centroids (trained by k-means over the training set's m-th
// subvectors), so a vector quantizes to M bytes — its nearest centroid
// index in every subspace. A 512-dim float vector (2 KiB) becomes, at
// M=64, a 64-byte code: 32× less memory traffic on the scan path.
//
// At query time the query vector is NOT quantized (that is the "asymmetric"
// in ADC — it keeps the quantization error one-sided). Instead a lookup
// table lut[m][c] = ‖query_m − centroid_{m,c}‖² is built once per query
// (M×256 squared distances over Dim/M components ≈ one exact scan of 256
// candidates, amortised over every candidate scanned). The approximate
// squared distance to a stored code is then
//
//	dist(q, code) ≈ Σ_m lut[m][code[m]]
//
// — M table lookups and adds per candidate instead of Dim subtract/
// multiply/adds over Dim×4 bytes of floats.
//
// # The trade-off
//
// ADC distances carry the subspace quantization error, so the scan
// over-fetches (RerankK ≥ k candidates) and the caller re-ranks that short
// list exactly against the raw feature rows before returning the final
// top-k. Memory per image drops from Dim×4 bytes to M bytes on the scan
// path (the raw rows remain, touched only RerankK times per query), and
// recall@k of the re-ranked result stays within a few percent of the exact
// scan when RerankK is a small multiple of k (the index package guards
// this with a recall test).
package pq

import (
	"errors"
	"fmt"

	"jdvs/internal/kmeans"
	"jdvs/internal/vecmath"
)

// NCentroids is the number of centroids per subquantizer. Fixed at 256 so
// one code component is exactly one byte.
const NCentroids = 256

// Config parameterises training.
type Config struct {
	// Dim is the full feature dimensionality. Required.
	Dim int
	// M is the number of subquantizers (code bytes per vector). Required;
	// must divide Dim.
	M int
	// MaxIters bounds each subquantizer's Lloyd iterations (default 15 —
	// subspace codebooks converge faster than the IVF codebook and there
	// are M of them to train).
	MaxIters int
	// Seed makes training deterministic. Subquantizer m trains with
	// Seed+m.
	Seed int64
}

func (c *Config) validate() error {
	if c.Dim <= 0 {
		return errors.New("pq: Dim must be positive")
	}
	if c.M <= 0 {
		return errors.New("pq: M must be positive")
	}
	if c.Dim%c.M != 0 {
		return fmt.Errorf("pq: M %d must divide Dim %d", c.M, c.Dim)
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 15
	}
	return nil
}

// Codebook is a trained product quantizer: M subquantizers of NCentroids
// centroids each over Dim/M-component subspaces.
type Codebook struct {
	Dim    int
	M      int
	SubDim int // Dim / M
	// Centroids is flat: subquantizer m's centroid c occupies
	// Centroids[(m*NCentroids+c)*SubDim : ...+SubDim].
	Centroids []float32
}

// Valid performs structural sanity checks (used when a codebook arrives
// from a snapshot rather than Train).
func (cb *Codebook) Valid() error {
	if cb.Dim <= 0 || cb.M <= 0 || cb.SubDim <= 0 || cb.M*cb.SubDim != cb.Dim {
		return fmt.Errorf("pq: inconsistent codebook shape (Dim=%d M=%d SubDim=%d)", cb.Dim, cb.M, cb.SubDim)
	}
	if len(cb.Centroids) != cb.M*NCentroids*cb.SubDim {
		return fmt.Errorf("pq: codebook has %d centroid floats, want %d", len(cb.Centroids), cb.M*NCentroids*cb.SubDim)
	}
	return nil
}

// subCentroids returns subquantizer m's flat NCentroids×SubDim matrix.
func (cb *Codebook) subCentroids(m int) []float32 {
	start := m * NCentroids * cb.SubDim
	return cb.Centroids[start : start+NCentroids*cb.SubDim]
}

// Train fits a product quantizer on the training vectors (flat row-major
// n×cfg.Dim). Fewer than NCentroids distinct subvectors is fine: the
// underlying k-means seeds surplus centroids from perturbed data rows.
func Train(cfg Config, data []float32) (*Codebook, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("pq: data length %d is not a multiple of dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if n == 0 {
		return nil, errors.New("pq: no training data")
	}
	subDim := cfg.Dim / cfg.M
	cb := &Codebook{
		Dim:       cfg.Dim,
		M:         cfg.M,
		SubDim:    subDim,
		Centroids: make([]float32, cfg.M*NCentroids*subDim),
	}
	// Train each subspace independently over the m-th subvector column
	// block, gathered contiguously for the kmeans kernel.
	sub := make([]float32, n*subDim)
	for m := 0; m < cfg.M; m++ {
		off := m * subDim
		for i := 0; i < n; i++ {
			copy(sub[i*subDim:(i+1)*subDim], data[i*cfg.Dim+off:i*cfg.Dim+off+subDim])
		}
		kcb, err := kmeans.Train(kmeans.Config{
			K:        NCentroids,
			Dim:      subDim,
			MaxIters: cfg.MaxIters,
			Seed:     cfg.Seed + int64(m),
		}, sub)
		if err != nil {
			return nil, fmt.Errorf("pq: train subquantizer %d: %w", m, err)
		}
		copy(cb.subCentroids(m), kcb.Centroids)
	}
	return cb, nil
}

// Encode quantizes v into code (len M): code[m] is the index of the
// nearest centroid of subquantizer m to v's m-th subvector.
func (cb *Codebook) Encode(v []float32, code []byte) error {
	if len(v) != cb.Dim {
		return fmt.Errorf("pq: encode dim %d, codebook dim %d", len(v), cb.Dim)
	}
	if len(code) != cb.M {
		return fmt.Errorf("pq: code length %d, want M=%d", len(code), cb.M)
	}
	for m := 0; m < cb.M; m++ {
		sub := v[m*cb.SubDim : (m+1)*cb.SubDim]
		best, _ := vecmath.NearestCentroid(sub, cb.subCentroids(m), cb.SubDim)
		code[m] = byte(best)
	}
	return nil
}

// Decode reconstructs the centroid approximation of code into out
// (len Dim) — the vector ADC distances are actually measured to. Used by
// tests to bound quantization error.
func (cb *Codebook) Decode(code []byte, out []float32) error {
	if len(code) != cb.M {
		return fmt.Errorf("pq: code length %d, want M=%d", len(code), cb.M)
	}
	if len(out) != cb.Dim {
		return fmt.Errorf("pq: decode dim %d, codebook dim %d", len(out), cb.Dim)
	}
	for m := 0; m < cb.M; m++ {
		cents := cb.subCentroids(m)
		c := int(code[m])
		copy(out[m*cb.SubDim:(m+1)*cb.SubDim], cents[c*cb.SubDim:(c+1)*cb.SubDim])
	}
	return nil
}

// LUTSize returns the float32 count of one query's distance table.
func (cb *Codebook) LUTSize() int { return cb.M * NCentroids }

// BuildLUT fills the per-query asymmetric distance table into lut, growing
// it if needed, and returns it: lut[m*NCentroids+c] is the squared L2
// distance between q's m-th subvector and centroid c of subquantizer m.
// Passing a retained buffer makes repeated queries allocation-free.
func (cb *Codebook) BuildLUT(q []float32, lut []float32) ([]float32, error) {
	if len(q) != cb.Dim {
		return nil, fmt.Errorf("pq: query dim %d, codebook dim %d", len(q), cb.Dim)
	}
	need := cb.LUTSize()
	if cap(lut) < need {
		lut = make([]float32, need)
	}
	lut = lut[:need]
	for m := 0; m < cb.M; m++ {
		sub := q[m*cb.SubDim : (m+1)*cb.SubDim]
		cents := cb.subCentroids(m)
		row := lut[m*NCentroids : (m+1)*NCentroids]
		for c := 0; c < NCentroids; c++ {
			row[c] = vecmath.L2Squared(sub, cents[c*cb.SubDim:(c+1)*cb.SubDim])
		}
	}
	return lut, nil
}

// ADCDist returns the asymmetric approximate squared distance of one code
// against a query's lookup table: Σ_m lut[m*NCentroids+code[m]]. The inner
// loop is unrolled by four like vecmath.L2Squared; four independent
// accumulators keep the adds off one dependency chain.
func ADCDist(lut []float32, code []byte) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(code); i += 4 {
		// Reslicing to a constant length lets the compiler prove every
		// byte-derived index (< 4×NCentroids) in bounds: one slice check
		// per four lookups instead of four.
		l := lut[:4*NCentroids]
		s0 += l[code[i]]
		s1 += l[NCentroids+int(code[i+1])]
		s2 += l[2*NCentroids+int(code[i+2])]
		s3 += l[3*NCentroids+int(code[i+3])]
		lut = lut[4*NCentroids:]
	}
	for ; i < len(code); i++ {
		s0 += lut[:NCentroids][code[i]]
		lut = lut[NCentroids:]
	}
	return s0 + s1 + s2 + s3
}

// ADCScan scores a contiguous block of n codes (codes holds n×m bytes,
// code i at codes[i*m:(i+1)*m]) against lut, writing distances into out
// and returning it. This is the benchmark kernel for the code-block layout
// the shard's code matrix stores; the shard scan itself scores per
// candidate via ADCDist because IVF candidates are scattered by image ID.
func ADCScan(lut []float32, codes []byte, m int, out []float32) []float32 {
	if m <= 0 || len(codes)%m != 0 {
		panic("pq: bad code block layout")
	}
	n := len(codes) / m
	if cap(out) < n {
		out = make([]float32, n)
	}
	out = out[:n]
	for i := 0; i < n; i++ {
		out[i] = ADCDist(lut, codes[i*m:(i+1)*m])
	}
	return out
}

// DefaultSubvectors picks an M for dim when the caller does not: the
// largest divisor of dim not exceeding dim/4 (4 components per subspace
// keeps quantization error low while still compressing 16× against
// float32 rows), floored at 1.
func DefaultSubvectors(dim int) int {
	if dim <= 0 {
		return 1
	}
	target := dim / 4
	if target < 1 {
		target = 1
	}
	for m := target; m > 1; m-- {
		if dim%m == 0 {
			return m
		}
	}
	return 1
}
