// Package pq implements product quantization for the asymmetric-distance
// (ADC) scan path of the shard index.
//
// # Why
//
// The exact IVF scan reads a full Dim×4-byte float row out of the feature
// matrix for every probed candidate, so per-shard scan throughput is bound
// by memory bandwidth, not arithmetic — and shard capacity is bound by
// feature-matrix bytes. Production visual-search systems (Visual Search at
// Alibaba; Web-Scale Responsive Visual Search at Bing) scan compact
// quantized codes instead and only touch raw features for a final exact
// re-rank.
//
// # The math
//
// A feature vector of dimensionality Dim is split into M contiguous
// subvectors of Dim/M components. Each subspace m gets its own codebook of
// 256 centroids (trained by k-means over the training set's m-th
// subvectors), so a vector quantizes to M bytes — its nearest centroid
// index in every subspace. A 512-dim float vector (2 KiB) becomes, at
// M=64, a 64-byte code: 32× less memory traffic on the scan path.
//
// At query time the query vector is NOT quantized (that is the "asymmetric"
// in ADC — it keeps the quantization error one-sided). Instead a lookup
// table lut[m][c] = ‖query_m − centroid_{m,c}‖² is built once per query
// (M×256 squared distances over Dim/M components ≈ one exact scan of 256
// candidates, amortised over every candidate scanned). The approximate
// squared distance to a stored code is then
//
//	dist(q, code) ≈ Σ_m lut[m][code[m]]
//
// — M table lookups and adds per candidate instead of Dim subtract/
// multiply/adds over Dim×4 bytes of floats.
//
// # The trade-off
//
// ADC distances carry the subspace quantization error, so the scan
// over-fetches (RerankK ≥ k candidates) and the caller re-ranks that short
// list exactly against the raw feature rows before returning the final
// top-k. Memory per image drops from Dim×4 bytes to M bytes on the scan
// path (the raw rows remain, touched only RerankK times per query), and
// recall@k of the re-ranked result stays within a few percent of the exact
// scan when RerankK is a small multiple of k (the index package guards
// this with a recall test).
//
// # 4-bit fast-scan mode
//
// With Bits=4 each subquantizer keeps only 16 centroids, so two
// subquantizers pack into one code byte (low nibble = even subquantizer,
// high nibble = odd). Code memory halves again (M/2 bytes per image) and
// the whole query LUT shrinks to M×16 floats — small enough to stay
// L1/register-resident while a scan streams code bytes. Codes are stored
// in the FAISS-style blocked "fast-scan" layout (see kernel_generic.go):
// groups of BlockCodes codes interleaved by packed-byte lane, so the
// kernel's inner loop is a pure table gather with no per-candidate pointer
// chasing. The coarser 16-centroid quantizer carries more error than the
// 256-centroid one, which the caller absorbs with a deeper exact re-rank
// (the index package's per-bit-width RerankK defaults).
package pq

import (
	"errors"
	"fmt"

	"jdvs/internal/kmeans"
	"jdvs/internal/vecmath"
)

// NCentroids is the number of centroids per subquantizer in the default
// 8-bit mode. Fixed at 256 so one code component is exactly one byte.
const NCentroids = 256

// NCentroids4 is the number of centroids per subquantizer in 4-bit mode:
// 16, so one code component is a nibble and two subquantizers share a
// byte.
const NCentroids4 = 16

// Config parameterises training.
type Config struct {
	// Dim is the full feature dimensionality. Required.
	Dim int
	// M is the number of subquantizers. Required; must divide Dim. In
	// 8-bit mode a code is M bytes; in 4-bit mode M must be even and a
	// code is M/2 bytes.
	M int
	// Bits is the centroid index width per subquantizer: 8 (256 centroids,
	// the default when zero) or 4 (16 centroids, fast-scan mode).
	Bits int
	// MaxIters bounds each subquantizer's Lloyd iterations (default 15 —
	// subspace codebooks converge faster than the IVF codebook and there
	// are M of them to train).
	MaxIters int
	// Seed makes training deterministic. Subquantizer m trains with
	// Seed+m.
	Seed int64
}

func (c *Config) validate() error {
	if c.Dim <= 0 {
		return errors.New("pq: Dim must be positive")
	}
	if c.M <= 0 {
		return errors.New("pq: M must be positive")
	}
	if c.Dim%c.M != 0 {
		return fmt.Errorf("pq: M %d must divide Dim %d", c.M, c.Dim)
	}
	switch c.Bits {
	case 0:
		c.Bits = 8
	case 8:
	case 4:
		if c.M%2 != 0 {
			return fmt.Errorf("pq: 4-bit codes pack two subquantizers per byte; M %d must be even", c.M)
		}
	default:
		return fmt.Errorf("pq: Bits must be 4 or 8, got %d", c.Bits)
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 15
	}
	return nil
}

// Codebook is a trained product quantizer: M subquantizers of KPerSub()
// centroids each over Dim/M-component subspaces.
type Codebook struct {
	Dim    int
	M      int
	SubDim int // Dim / M
	// Bits is the centroid index width per subquantizer: 8 or 4. Zero is
	// read as 8 so codebooks deserialized from pre-4-bit snapshots keep
	// working.
	Bits int
	// Centroids is flat: subquantizer m's centroid c occupies
	// Centroids[(m*KPerSub()+c)*SubDim : ...+SubDim].
	Centroids []float32
}

// KPerSub returns the number of centroids per subquantizer: 16 in 4-bit
// mode, 256 otherwise.
func (cb *Codebook) KPerSub() int {
	if cb.Bits == 4 {
		return NCentroids4
	}
	return NCentroids
}

// CodeBytes returns the packed code size in bytes: M in 8-bit mode, M/2
// in 4-bit mode.
func (cb *Codebook) CodeBytes() int {
	if cb.Bits == 4 {
		return cb.M / 2
	}
	return cb.M
}

// Valid performs structural sanity checks (used when a codebook arrives
// from a snapshot rather than Train).
func (cb *Codebook) Valid() error {
	if cb.Dim <= 0 || cb.M <= 0 || cb.SubDim <= 0 || cb.M*cb.SubDim != cb.Dim {
		return fmt.Errorf("pq: inconsistent codebook shape (Dim=%d M=%d SubDim=%d)", cb.Dim, cb.M, cb.SubDim)
	}
	switch cb.Bits {
	case 0, 8:
	case 4:
		if cb.M%2 != 0 {
			return fmt.Errorf("pq: 4-bit codebook with odd M %d", cb.M)
		}
	default:
		return fmt.Errorf("pq: codebook Bits must be 4 or 8, got %d", cb.Bits)
	}
	if len(cb.Centroids) != cb.M*cb.KPerSub()*cb.SubDim {
		return fmt.Errorf("pq: codebook has %d centroid floats, want %d", len(cb.Centroids), cb.M*cb.KPerSub()*cb.SubDim)
	}
	return nil
}

// subCentroids returns subquantizer m's flat KPerSub()×SubDim matrix.
func (cb *Codebook) subCentroids(m int) []float32 {
	k := cb.KPerSub()
	start := m * k * cb.SubDim
	return cb.Centroids[start : start+k*cb.SubDim]
}

// Train fits a product quantizer on the training vectors (flat row-major
// n×cfg.Dim). Fewer than KPerSub distinct subvectors is fine: the
// underlying k-means seeds surplus centroids from perturbed data rows.
func Train(cfg Config, data []float32) (*Codebook, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("pq: data length %d is not a multiple of dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if n == 0 {
		return nil, errors.New("pq: no training data")
	}
	subDim := cfg.Dim / cfg.M
	cb := &Codebook{
		Dim:    cfg.Dim,
		M:      cfg.M,
		SubDim: subDim,
		Bits:   cfg.Bits,
	}
	cb.Centroids = make([]float32, cfg.M*cb.KPerSub()*subDim)
	// Train each subspace independently over the m-th subvector column
	// block, gathered contiguously for the kmeans kernel.
	sub := make([]float32, n*subDim)
	for m := 0; m < cfg.M; m++ {
		off := m * subDim
		for i := 0; i < n; i++ {
			copy(sub[i*subDim:(i+1)*subDim], data[i*cfg.Dim+off:i*cfg.Dim+off+subDim])
		}
		kcb, err := kmeans.Train(kmeans.Config{
			K:        cb.KPerSub(),
			Dim:      subDim,
			MaxIters: cfg.MaxIters,
			Seed:     cfg.Seed + int64(m),
		}, sub)
		if err != nil {
			return nil, fmt.Errorf("pq: train subquantizer %d: %w", m, err)
		}
		copy(cb.subCentroids(m), kcb.Centroids)
	}
	return cb, nil
}

// Encode quantizes v into code (len CodeBytes()). In 8-bit mode code[m] is
// the index of the nearest centroid of subquantizer m to v's m-th
// subvector; in 4-bit mode byte j packs subquantizer 2j's index in the low
// nibble and 2j+1's in the high nibble.
func (cb *Codebook) Encode(v []float32, code []byte) error {
	if len(v) != cb.Dim {
		return fmt.Errorf("pq: encode dim %d, codebook dim %d", len(v), cb.Dim)
	}
	if len(code) != cb.CodeBytes() {
		return fmt.Errorf("pq: code length %d, want %d", len(code), cb.CodeBytes())
	}
	if cb.Bits == 4 {
		for j := range code {
			lo, _ := vecmath.NearestCentroid(v[(2*j)*cb.SubDim:(2*j+1)*cb.SubDim], cb.subCentroids(2*j), cb.SubDim)
			hi, _ := vecmath.NearestCentroid(v[(2*j+1)*cb.SubDim:(2*j+2)*cb.SubDim], cb.subCentroids(2*j+1), cb.SubDim)
			code[j] = byte(lo) | byte(hi)<<4
		}
		return nil
	}
	for m := 0; m < cb.M; m++ {
		sub := v[m*cb.SubDim : (m+1)*cb.SubDim]
		best, _ := vecmath.NearestCentroid(sub, cb.subCentroids(m), cb.SubDim)
		code[m] = byte(best)
	}
	return nil
}

// Decode reconstructs the centroid approximation of code into out
// (len Dim) — the vector ADC distances are actually measured to. Used by
// tests to bound quantization error.
func (cb *Codebook) Decode(code []byte, out []float32) error {
	if len(code) != cb.CodeBytes() {
		return fmt.Errorf("pq: code length %d, want %d", len(code), cb.CodeBytes())
	}
	if len(out) != cb.Dim {
		return fmt.Errorf("pq: decode dim %d, codebook dim %d", len(out), cb.Dim)
	}
	for m := 0; m < cb.M; m++ {
		c := cb.centroidIndex(code, m)
		cents := cb.subCentroids(m)
		copy(out[m*cb.SubDim:(m+1)*cb.SubDim], cents[c*cb.SubDim:(c+1)*cb.SubDim])
	}
	return nil
}

// centroidIndex extracts subquantizer m's centroid index from a packed
// code.
func (cb *Codebook) centroidIndex(code []byte, m int) int {
	if cb.Bits == 4 {
		b := code[m/2]
		if m%2 == 1 {
			return int(b >> 4)
		}
		return int(b & 0x0f)
	}
	return int(code[m])
}

// LUTSize returns the float32 count of one query's distance table:
// M×256 in 8-bit mode, M×16 in 4-bit mode.
func (cb *Codebook) LUTSize() int { return cb.M * cb.KPerSub() }

// BuildLUT fills the per-query asymmetric distance table into lut, growing
// it if needed, and returns it: lut[m*KPerSub()+c] is the squared L2
// distance between q's m-th subvector and centroid c of subquantizer m.
// Passing a retained buffer makes repeated queries allocation-free.
func (cb *Codebook) BuildLUT(q []float32, lut []float32) ([]float32, error) {
	if len(q) != cb.Dim {
		return nil, fmt.Errorf("pq: query dim %d, codebook dim %d", len(q), cb.Dim)
	}
	need := cb.LUTSize()
	if cap(lut) < need {
		lut = make([]float32, need)
	}
	lut = lut[:need]
	k := cb.KPerSub()
	for m := 0; m < cb.M; m++ {
		sub := q[m*cb.SubDim : (m+1)*cb.SubDim]
		cents := cb.subCentroids(m)
		row := lut[m*k : (m+1)*k]
		for c := 0; c < k; c++ {
			row[c] = vecmath.L2Squared(sub, cents[c*cb.SubDim:(c+1)*cb.SubDim])
		}
	}
	return lut, nil
}

// ADCDist returns the asymmetric approximate squared distance of one code
// against a query's lookup table: Σ_m lut[m*NCentroids+code[m]]. The inner
// loop is unrolled by four like vecmath.L2Squared; four independent
// accumulators keep the adds off one dependency chain.
func ADCDist(lut []float32, code []byte) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(code); i += 4 {
		// Reslicing to a constant length lets the compiler prove every
		// byte-derived index (< 4×NCentroids) in bounds: one slice check
		// per four lookups instead of four.
		l := lut[:4*NCentroids]
		s0 += l[code[i]]
		s1 += l[NCentroids+int(code[i+1])]
		s2 += l[2*NCentroids+int(code[i+2])]
		s3 += l[3*NCentroids+int(code[i+3])]
		lut = lut[4*NCentroids:]
	}
	for ; i < len(code); i++ {
		s0 += lut[:NCentroids][code[i]]
		lut = lut[NCentroids:]
	}
	return s0 + s1 + s2 + s3
}

// ADCDist4 returns the asymmetric approximate squared distance of one
// packed 4-bit code (len M/2) against a query's M×16 lookup table. Packed
// byte j covers subquantizers 2j (low nibble) and 2j+1 (high nibble),
// whose LUT rows are the contiguous 32 floats lut[j*32 : j*32+32].
//
// The summation shape (ascending byte lane, the lane's low+high pair
// summed before folding into the accumulator) is the kernel contract
// shared with ScanBlock4 and ADCDistBlockSlot: all three produce
// bit-identical distances for the same code, so full-block, tail and
// single-code paths can mix freely within one query.
func ADCDist4(lut []float32, code []byte) float32 {
	var s float32
	for j, b := range code {
		pair := lut[j*32 : j*32+32]
		s += pair[b&0x0f] + pair[16+(b>>4)]
	}
	return s
}

// ADCScan scores a contiguous block of n codes (codes holds n×m bytes,
// code i at codes[i*m:(i+1)*m]) against lut, writing distances into out
// and returning it. This is the benchmark kernel for the code-block layout
// the shard's code matrix stores; the shard scan itself scores per
// candidate via ADCDist because IVF candidates are scattered by image ID.
func ADCScan(lut []float32, codes []byte, m int, out []float32) []float32 {
	if m <= 0 || len(codes)%m != 0 {
		panic("pq: bad code block layout")
	}
	n := len(codes) / m
	if cap(out) < n {
		out = make([]float32, n)
	}
	out = out[:n]
	for i := 0; i < n; i++ {
		out[i] = ADCDist(lut, codes[i*m:(i+1)*m])
	}
	return out
}

// DefaultSubvectors picks an M for dim when the caller does not: the
// largest divisor of dim not exceeding dim/4 (4 components per subspace
// keeps quantization error low while still compressing 16× against
// float32 rows), floored at 1.
func DefaultSubvectors(dim int) int {
	if dim <= 0 {
		return 1
	}
	target := dim / 4
	if target < 1 {
		target = 1
	}
	for m := target; m > 1; m-- {
		if dim%m == 0 {
			return m
		}
	}
	return 1
}
