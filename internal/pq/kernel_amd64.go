//go:build amd64 && !purego

package pq

const kernelName = "amd64"

// ScanBlock4 scores one full fast-scan block of BlockCodes packed 4-bit
// codes (see kernel_generic.go for the layout and the bit-identical
// summation contract). This build binds the unrolled amd64 variant.
func ScanBlock4(lut []float32, blk []byte, mb int, out *[BlockCodes]float32) {
	scanBlock4AMD64(lut, blk, mb, out)
}

// scanBlock4AMD64 unrolls the 32-way nibble-shuffle gather four codes at
// a time. Converting each lane to fixed-size array pointers lets the
// compiler prove every nibble-derived index (≤ 15, ≤ 31 after the +16
// high-half offset) in bounds, so the inner loop is pure loads and adds
// with no slice checks; four independent code accumulations per step keep
// the LUT loads off one dependency chain.
func scanBlock4AMD64(lut []float32, blk []byte, mb int, out *[BlockCodes]float32) {
	for i := range out {
		out[i] = 0
	}
	for j := 0; j < mb; j++ {
		pair := (*[32]float32)(lut[j*32:])
		lane := (*[BlockCodes]byte)(blk[j*BlockCodes:])
		for i := 0; i < BlockCodes; i += 4 {
			b0, b1, b2, b3 := lane[i], lane[i+1], lane[i+2], lane[i+3]
			out[i] += pair[b0&0x0f] + pair[16+(b0>>4)]
			out[i+1] += pair[b1&0x0f] + pair[16+(b1>>4)]
			out[i+2] += pair[b2&0x0f] + pair[16+(b2>>4)]
			out[i+3] += pair[b3&0x0f] + pair[16+(b3>>4)]
		}
	}
}
