package pq

import (
	"math"
	"math/rand"
	"testing"

	"jdvs/internal/vecmath"
)

func TestConfig4BitValidation(t *testing.T) {
	data := make([]float32, 10*16)
	if _, err := Train(Config{Dim: 16, M: 4, Bits: 5}, data); err == nil {
		t.Fatal("Bits 5 accepted")
	}
	if _, err := Train(Config{Dim: 16, M: 1, Bits: 4}, data); err == nil {
		t.Fatal("odd M accepted for 4-bit codes")
	}
	cb, err := Train(Config{Dim: 16, M: 4, Bits: 4}, data)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Bits != 4 || cb.KPerSub() != NCentroids4 || cb.CodeBytes() != 2 {
		t.Fatalf("4-bit codebook shape: Bits=%d KPerSub=%d CodeBytes=%d", cb.Bits, cb.KPerSub(), cb.CodeBytes())
	}
	if len(cb.Centroids) != 4*NCentroids4*4 {
		t.Fatalf("4-bit centroid count %d, want %d", len(cb.Centroids), 4*NCentroids4*4)
	}
	if err := cb.Valid(); err != nil {
		t.Fatal(err)
	}
	cb.M = 3
	cb.SubDim = 16 / 3
	if err := cb.Valid(); err == nil {
		t.Fatal("Valid accepted odd-M 4-bit codebook")
	}
}

// TestEncodeDecode4Bit: packed nibble codes must round-trip through
// Decode onto real centroids, and quantize (reconstruction closer than a
// random other vector).
func TestEncodeDecode4Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const dim = 32
	data := clusteredData(rng, 1500, dim, 12, 0.15)
	cb, err := Train(Config{Dim: dim, M: 8, Bits: 4, Seed: 3}, data)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, cb.CodeBytes())
	dec := make([]float32, dim)
	var reconErr, crossErr float64
	for i := 0; i < 200; i++ {
		v := data[i*dim : (i+1)*dim]
		if err := cb.Encode(v, code); err != nil {
			t.Fatal(err)
		}
		if err := cb.Decode(code, dec); err != nil {
			t.Fatal(err)
		}
		// Every decoded subvector must be a real centroid of its own
		// subquantizer — this catches nibble-order mixups that plain
		// error bounds would miss.
		for m := 0; m < cb.M; m++ {
			c := cb.centroidIndex(code, m)
			cents := cb.subCentroids(m)
			for d := 0; d < cb.SubDim; d++ {
				if dec[m*cb.SubDim+d] != cents[c*cb.SubDim+d] {
					t.Fatalf("row %d sub %d: decode is not centroid %d", i, m, c)
				}
			}
		}
		reconErr += float64(vecmath.L2Squared(v, dec))
		w := data[((i+700)%1500)*dim : (((i+700)%1500)+1)*dim]
		crossErr += float64(vecmath.L2Squared(v, w))
	}
	if reconErr*5 > crossErr {
		t.Fatalf("4-bit reconstruction error %.3f not well below cross-vector distance %.3f", reconErr, crossErr)
	}
}

// TestADCDist4MatchesDecodedDistance: the 16-entry LUT sum must equal the
// exact distance to the code's centroid reconstruction, like the 8-bit
// path's TestADCDistMatchesDecodedDistance.
func TestADCDist4MatchesDecodedDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const dim = 24
	data := clusteredData(rng, 800, dim, 10, 0.3)
	cb, err := Train(Config{Dim: dim, M: 6, Bits: 4, Seed: 5}, data)
	if err != nil {
		t.Fatal(err)
	}
	q := data[:dim]
	lut, err := cb.BuildLUT(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lut) != cb.LUTSize() || cb.LUTSize() != 6*NCentroids4 {
		t.Fatalf("4-bit lut len %d, LUTSize %d", len(lut), cb.LUTSize())
	}
	code := make([]byte, cb.CodeBytes())
	dec := make([]float32, dim)
	for i := 100; i < 150; i++ {
		v := data[i*dim : (i+1)*dim]
		if err := cb.Encode(v, code); err != nil {
			t.Fatal(err)
		}
		if err := cb.Decode(code, dec); err != nil {
			t.Fatal(err)
		}
		adc := float64(ADCDist4(lut, code))
		exact := float64(vecmath.L2Squared(q, dec))
		if diff := math.Abs(adc - exact); diff > 1e-3*(1+exact) {
			t.Fatalf("row %d: ADC4 %.6f vs decoded-exact %.6f", i, adc, exact)
		}
	}
}
