package pq

import (
	"math"
	"math/rand"
	"testing"

	"jdvs/internal/vecmath"
)

// clusteredData synthesises n vectors of dim components drawn around nc
// cluster centres — the shape real image features have, and the shape PQ
// compresses well.
func clusteredData(rng *rand.Rand, n, dim, nc int, spread float64) []float32 {
	centres := make([]float32, nc*dim)
	for i := range centres {
		centres[i] = float32(rng.NormFloat64() * 4)
	}
	data := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		c := rng.Intn(nc)
		for d := 0; d < dim; d++ {
			data[i*dim+d] = centres[c*dim+d] + float32(rng.NormFloat64()*spread)
		}
	}
	return data
}

func TestConfigValidation(t *testing.T) {
	if _, err := Train(Config{Dim: 0, M: 4}, nil); err == nil {
		t.Fatal("Dim 0 accepted")
	}
	if _, err := Train(Config{Dim: 64, M: 0}, nil); err == nil {
		t.Fatal("M 0 accepted")
	}
	if _, err := Train(Config{Dim: 64, M: 7}, make([]float32, 64)); err == nil {
		t.Fatal("M not dividing Dim accepted")
	}
	if _, err := Train(Config{Dim: 8, M: 4}, make([]float32, 9)); err == nil {
		t.Fatal("ragged data accepted")
	}
	if _, err := Train(Config{Dim: 8, M: 4}, nil); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestTrainShapeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := clusteredData(rng, 500, 16, 8, 0.2)
	cb, err := Train(Config{Dim: 16, M: 4, Seed: 9}, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.Valid(); err != nil {
		t.Fatal(err)
	}
	if cb.SubDim != 4 || len(cb.Centroids) != 4*NCentroids*4 {
		t.Fatalf("shape M=%d SubDim=%d len=%d", cb.M, cb.SubDim, len(cb.Centroids))
	}
	cb2, err := Train(Config{Dim: 16, M: 4, Seed: 9}, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cb.Centroids {
		if cb.Centroids[i] != cb2.Centroids[i] {
			t.Fatalf("training is not deterministic (centroid float %d differs)", i)
		}
	}
}

// TestEncodeDecodeError: the centroid reconstruction of a code must be
// closer to the source vector than a random other vector is — i.e. the
// quantizer actually quantizes.
func TestEncodeDecodeError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const dim = 32
	data := clusteredData(rng, 2000, dim, 16, 0.15)
	cb, err := Train(Config{Dim: dim, M: 8, Seed: 3}, data)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, cb.M)
	dec := make([]float32, dim)
	var reconErr, crossErr float64
	for i := 0; i < 200; i++ {
		v := data[i*dim : (i+1)*dim]
		if err := cb.Encode(v, code); err != nil {
			t.Fatal(err)
		}
		if err := cb.Decode(code, dec); err != nil {
			t.Fatal(err)
		}
		reconErr += float64(vecmath.L2Squared(v, dec))
		w := data[((i+1000)%2000)*dim : (((i+1000)%2000)+1)*dim]
		crossErr += float64(vecmath.L2Squared(v, w))
	}
	if reconErr*10 > crossErr {
		t.Fatalf("reconstruction error %.3f not well below cross-vector distance %.3f", reconErr, crossErr)
	}
}

// TestADCDistMatchesDecodedDistance: the LUT sum must equal the exact
// distance between the query and the code's centroid reconstruction (up
// to float accumulation order).
func TestADCDistMatchesDecodedDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const dim = 24
	data := clusteredData(rng, 800, dim, 10, 0.3)
	cb, err := Train(Config{Dim: dim, M: 6, Seed: 5}, data)
	if err != nil {
		t.Fatal(err)
	}
	q := data[:dim]
	lut, err := cb.BuildLUT(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lut) != cb.LUTSize() {
		t.Fatalf("lut len %d, want %d", len(lut), cb.LUTSize())
	}
	code := make([]byte, cb.M)
	dec := make([]float32, dim)
	for i := 100; i < 150; i++ {
		v := data[i*dim : (i+1)*dim]
		if err := cb.Encode(v, code); err != nil {
			t.Fatal(err)
		}
		if err := cb.Decode(code, dec); err != nil {
			t.Fatal(err)
		}
		adc := float64(ADCDist(lut, code))
		exact := float64(vecmath.L2Squared(q, dec))
		if diff := math.Abs(adc - exact); diff > 1e-3*(1+exact) {
			t.Fatalf("row %d: ADC %.6f vs decoded-exact %.6f", i, adc, exact)
		}
	}
}

// TestADCDistOddM covers the unrolled kernel's tail loop (M not a
// multiple of 4).
func TestADCDistOddM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, m := range []int{1, 2, 3, 5, 7} {
		dim := m * 4
		data := clusteredData(rng, 400, dim, 6, 0.2)
		cb, err := Train(Config{Dim: dim, M: m, Seed: 1}, data)
		if err != nil {
			t.Fatal(err)
		}
		lut, err := cb.BuildLUT(data[:dim], nil)
		if err != nil {
			t.Fatal(err)
		}
		code := make([]byte, m)
		if err := cb.Encode(data[dim:2*dim], code); err != nil {
			t.Fatal(err)
		}
		var naive float32
		for i, c := range code {
			naive += lut[i*NCentroids+int(c)]
		}
		if got := ADCDist(lut, code); math.Abs(float64(got-naive)) > 1e-4*(1+math.Abs(float64(naive))) {
			t.Fatalf("M=%d: ADCDist %.6f, naive %.6f", m, got, naive)
		}
	}
}

func TestADCScanMatchesPerCode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim, m, n = 16, 4, 64
	data := clusteredData(rng, 500, dim, 8, 0.25)
	cb, err := Train(Config{Dim: dim, M: m, Seed: 2}, data)
	if err != nil {
		t.Fatal(err)
	}
	lut, err := cb.BuildLUT(data[:dim], nil)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]byte, n*m)
	for i := 0; i < n; i++ {
		if err := cb.Encode(data[i*dim:(i+1)*dim], codes[i*m:(i+1)*m]); err != nil {
			t.Fatal(err)
		}
	}
	out := ADCScan(lut, codes, m, nil)
	if len(out) != n {
		t.Fatalf("scan produced %d distances, want %d", len(out), n)
	}
	for i := 0; i < n; i++ {
		if want := ADCDist(lut, codes[i*m:(i+1)*m]); out[i] != want {
			t.Fatalf("code %d: block scan %.6f, per-code %.6f", i, out[i], want)
		}
	}
}

func TestDefaultSubvectors(t *testing.T) {
	cases := map[int]int{64: 16, 128: 32, 100: 25, 12: 3, 7: 1, 4: 1, 1: 1, 0: 1}
	for dim, want := range cases {
		if got := DefaultSubvectors(dim); got != want {
			t.Fatalf("DefaultSubvectors(%d) = %d, want %d", dim, got, want)
		}
	}
	for _, dim := range []int{64, 128, 100, 12, 96} {
		if m := DefaultSubvectors(dim); dim%m != 0 {
			t.Fatalf("DefaultSubvectors(%d) = %d does not divide", dim, m)
		}
	}
}

func TestBuildLUTReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const dim = 16
	data := clusteredData(rng, 300, dim, 4, 0.2)
	cb, err := Train(Config{Dim: dim, M: 4, Seed: 2}, data)
	if err != nil {
		t.Fatal(err)
	}
	lut, err := cb.BuildLUT(data[:dim], nil)
	if err != nil {
		t.Fatal(err)
	}
	lut2, err := cb.BuildLUT(data[dim:2*dim], lut)
	if err != nil {
		t.Fatal(err)
	}
	if &lut[0] != &lut2[0] {
		t.Fatal("BuildLUT reallocated a sufficient buffer")
	}
}
