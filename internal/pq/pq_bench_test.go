package pq

import (
	"fmt"
	"math/rand"
	"testing"

	"jdvs/internal/vecmath"
)

// benchSetup trains a quantizer over clustered vectors and returns the
// query LUT, the encoded code block, and the raw float rows for the exact
// baseline.
func benchSetup(b *testing.B, n, dim, m int) (lut []float32, codes []byte, rows []float32, q []float32) {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	rows = clusteredData(rng, n, dim, 32, 0.2)
	cb, err := Train(Config{Dim: dim, M: m, Seed: 1}, rows[:min(n, 2000)*dim])
	if err != nil {
		b.Fatal(err)
	}
	codes = make([]byte, n*m)
	for i := 0; i < n; i++ {
		if err := cb.Encode(rows[i*dim:(i+1)*dim], codes[i*m:(i+1)*m]); err != nil {
			b.Fatal(err)
		}
	}
	q = rows[:dim]
	lut, err = cb.BuildLUT(q, nil)
	if err != nil {
		b.Fatal(err)
	}
	return lut, codes, rows, q
}

// BenchmarkScanKernel compares the per-candidate scoring kernels over a
// contiguous block of n candidates: the exact float path reads dim×4
// bytes per candidate, the ADC path reads m bytes plus m table lookups.
// n is sized so the float rows exceed cache — the production condition
// the ADC path exists for — while the codes and LUT stay resident. This
// is the raw memory-bandwidth trade the IVF-ADC scan path buys.
func BenchmarkScanKernel(b *testing.B) {
	const n = 65536
	for _, shape := range []struct{ dim, m int }{{64, 16}, {128, 32}} {
		lut, codes, rows, q := benchSetup(b, n, shape.dim, shape.m)
		out := make([]float32, n)
		b.Run(fmt.Sprintf("dim=%d/path=exact", shape.dim), func(b *testing.B) {
			b.SetBytes(int64(n * shape.dim * 4))
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					out[j] = vecmath.L2Squared(q, rows[j*shape.dim:(j+1)*shape.dim])
				}
			}
		})
		b.Run(fmt.Sprintf("dim=%d/path=adc", shape.dim), func(b *testing.B) {
			b.SetBytes(int64(n * shape.m))
			for i := 0; i < b.N; i++ {
				ADCScan(lut, codes, shape.m, out)
			}
		})
	}
}

// BenchmarkBuildLUT is the per-query fixed cost the ADC path pays before
// scanning a single candidate; it amortises over the scan.
func BenchmarkBuildLUT(b *testing.B) {
	lut, _, _, q := benchSetup(b, 2048, 64, 16)
	rng := rand.New(rand.NewSource(21))
	data := clusteredData(rng, 2000, 64, 32, 0.2)
	cb, err := Train(Config{Dim: 64, M: 16, Seed: 1}, data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lut, err = cb.BuildLUT(q, lut)
		if err != nil {
			b.Fatal(err)
		}
	}
}
