//go:build !amd64 || purego

package pq

const kernelName = "generic"

// ScanBlock4 scores one full fast-scan block of BlockCodes packed 4-bit
// codes (see kernel_generic.go for the layout and the bit-identical
// summation contract). This build binds the portable kernel.
func ScanBlock4(lut []float32, blk []byte, mb int, out *[BlockCodes]float32) {
	scanBlock4Generic(lut, blk, mb, out)
}
