package pq

// This file defines the portable 4-bit fast-scan kernel and the blocked
// code layout it consumes. Optimized per-architecture variants live behind
// build tags (kernel_amd64.go), selected at compile time through the
// ScanBlock4 wrapper in kernel_fallback.go / kernel_amd64.go — the same
// seam shape as vecmath's scalar kernels, so adding an architecture never
// touches callers. Build with -tags purego to force the generic kernel on
// any architecture.
//
// # Blocked fast-scan layout
//
// A block holds BlockCodes packed 4-bit codes of mb = M/2 bytes each,
// interleaved by byte lane: blk[j*BlockCodes+i] is packed byte j of code
// i. Scoring a block therefore streams mb runs of BlockCodes consecutive
// bytes, each run scored against one 32-float LUT pair that stays in
// registers/L1 — a pure table gather with no per-candidate pointer
// chasing, which is what makes 4-bit codes faster (not just smaller) than
// the 8-bit per-candidate ADCDist walk.
//
// # Kernel contract
//
// Every implementation must produce bit-identical float32 distances: zero
// the accumulator, walk byte lanes in ascending order, and fold each
// lane's low+high LUT pair into the accumulator as one `acc += lo + hi`.
// The equivalence test in kernel_test.go enforces this against the
// generic kernel, and the index package relies on it so that generic and
// optimized builds — and full-block vs scalar-tail paths — return exactly
// equal search results.

// BlockCodes is the fast-scan block width: codes are stored and scored in
// groups of 32, matching the 32-way gather the optimized kernels unroll.
const BlockCodes = 32

// KernelName identifies the ScanBlock4 implementation compiled into this
// binary ("generic" or an architecture name) for logs and benchmarks.
func KernelName() string { return kernelName }

// scanBlock4Generic scores one full fast-scan block: blk holds
// mb*BlockCodes interleaved bytes, lut holds mb*32 floats, and out[i]
// receives code i's ADC distance.
func scanBlock4Generic(lut []float32, blk []byte, mb int, out *[BlockCodes]float32) {
	for i := range out {
		out[i] = 0
	}
	for j := 0; j < mb; j++ {
		pair := lut[j*32 : j*32+32]
		lane := blk[j*BlockCodes : j*BlockCodes+BlockCodes]
		for i, b := range lane {
			out[i] += pair[b&0x0f] + pair[16+(b>>4)]
		}
	}
}

// ADCDistBlockSlot scores the single code at slot within a (possibly
// partially filled) fast-scan block — the scalar tail path for the last
// block of an inverted list. Bit-identical to ScanBlock4's out[slot] on a
// full block (see the kernel contract above).
func ADCDistBlockSlot(lut []float32, blk []byte, mb, slot int) float32 {
	var s float32
	for j := 0; j < mb; j++ {
		b := blk[j*BlockCodes+slot]
		pair := lut[j*32 : j*32+32]
		s += pair[b&0x0f] + pair[16+(b>>4)]
	}
	return s
}
