// Package imaging is the synthetic product-image substrate.
//
// The real system stores JPEG product photos in an image store and runs a
// CNN over them. We cannot ship JD's photos, so a synthetic image is a
// small binary blob that carries exactly the information the rest of the
// system consumes:
//
//   - a latent content vector — images of the same product are generated
//     from nearby latents, so the (simulated) CNN embeds them close
//     together and nearest-neighbour search behaves realistically;
//   - an object window — what the paper's item detector finds (§2.4);
//   - a ground-truth category label — used only to validate classifier
//     accuracy in tests, never by the search path itself;
//   - an opaque pixel payload sized like a small JPEG, so that image-store
//     and network costs are representative.
//
// The blob format is versioned and self-describing; Decode validates
// structure and rejects corrupt inputs.
package imaging

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// LatentDim is the dimensionality of the latent content vector embedded in
// every synthetic image.
const LatentDim = 32

const (
	formatVersion = 1
	headerSize    = 1 + 2*6 + 2 + 4 // version + 6 uint16 geometry + category + payload len
	maxPayload    = 1 << 24
)

// ErrCorrupt is wrapped by all decode failures.
var ErrCorrupt = errors.New("imaging: corrupt image blob")

// Image is a decoded synthetic product image.
type Image struct {
	Width, Height uint16
	// Object window found by the detector (§2.4: "an item in the picture is
	// detected").
	ObjX, ObjY, ObjW, ObjH uint16
	// Category is the ground-truth category label used to evaluate the
	// simulated classifier; production code paths treat it as opaque.
	Category uint16
	// Latent is the content vector the simulated CNN embeds.
	Latent [LatentDim]float32
	// Payload is filler standing in for compressed pixel data.
	Payload []byte
}

// Encode serialises the image blob.
func (im *Image) Encode() []byte {
	size := headerSize + 4*LatentDim + len(im.Payload)
	dst := make([]byte, 0, size)
	dst = append(dst, formatVersion)
	for _, v := range [...]uint16{im.Width, im.Height, im.ObjX, im.ObjY, im.ObjW, im.ObjH} {
		dst = binary.LittleEndian.AppendUint16(dst, v)
	}
	dst = binary.LittleEndian.AppendUint16(dst, im.Category)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(im.Payload)))
	for _, v := range im.Latent {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	dst = append(dst, im.Payload...)
	return dst
}

// Decode parses an image blob.
func Decode(b []byte) (*Image, error) {
	if len(b) < headerSize+4*LatentDim {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(b))
	}
	if b[0] != formatVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, b[0])
	}
	im := &Image{}
	geo := []*uint16{&im.Width, &im.Height, &im.ObjX, &im.ObjY, &im.ObjW, &im.ObjH}
	off := 1
	for _, p := range geo {
		*p = binary.LittleEndian.Uint16(b[off:])
		off += 2
	}
	im.Category = binary.LittleEndian.Uint16(b[off:])
	off += 2
	payloadLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if payloadLen > maxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrCorrupt, payloadLen)
	}
	for i := 0; i < LatentDim; i++ {
		im.Latent[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	if len(b)-off != payloadLen {
		return nil, fmt.Errorf("%w: payload length mismatch (%d declared, %d present)", ErrCorrupt, payloadLen, len(b)-off)
	}
	im.Payload = make([]byte, payloadLen)
	copy(im.Payload, b[off:])
	return im, nil
}

// GenConfig controls synthetic image generation.
type GenConfig struct {
	// PayloadBytes is the filler payload size (default 2048).
	PayloadBytes int
	// Noise is the per-component Gaussian noise added to the base latent
	// (default 0.05): images of the same product differ by about this much.
	Noise float64
}

func (c *GenConfig) fill() {
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 2048
	}
	if c.Noise <= 0 {
		c.Noise = 0.05
	}
}

// Generate creates an image whose latent is base plus Gaussian noise. base
// must have LatentDim components.
func Generate(rng *rand.Rand, base []float32, category uint16, cfg GenConfig) *Image {
	if len(base) != LatentDim {
		panic(fmt.Sprintf("imaging: base latent has %d dims, want %d", len(base), LatentDim))
	}
	cfg.fill()
	im := &Image{
		Width:    800,
		Height:   800,
		Category: category,
	}
	// Object window: a random crop region strictly inside the frame.
	im.ObjW = uint16(200 + rng.Intn(400))
	im.ObjH = uint16(200 + rng.Intn(400))
	im.ObjX = uint16(rng.Intn(int(im.Width-im.ObjW) + 1))
	im.ObjY = uint16(rng.Intn(int(im.Height-im.ObjH) + 1))
	for i := range im.Latent {
		im.Latent[i] = base[i] + float32(rng.NormFloat64()*cfg.Noise)
	}
	im.Payload = make([]byte, cfg.PayloadBytes)
	// Deterministic pseudo-JPEG filler derived from the rng stream.
	for i := 0; i+8 <= len(im.Payload); i += 8 {
		binary.LittleEndian.PutUint64(im.Payload[i:], rng.Uint64())
	}
	return im
}
